package tango

// The benchmark harness regenerates every evaluation artifact of the
// paper (one bench per figure/table-equivalent, E1-E8; see DESIGN.md's
// per-experiment index) plus the ablations for the design choices the
// controller makes. Figure-shape numbers are attached to each bench run
// via b.ReportMetric, so `go test -bench . -benchmem` prints the
// reproduction alongside the usual ns/op.
//
// The E benches run the full simulated deployment; wall-clock per
// iteration is a few seconds (they cover tens of virtual minutes each).

import (
	"net/netip"
	"strconv"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/dataplane"
	"tango/internal/experiments"
	"tango/internal/packet"
	"tango/internal/perf"
	"tango/internal/simnet"
)

// BenchmarkEncap, BenchmarkDecap, and BenchmarkLinkTraverse are the
// perf-regression micro-benches: shared bodies live in internal/perf so
// the zero-allocs/op assertions (internal/perf tests) and the BENCH.json
// emitter (cmd/tango-bench) measure exactly what these report.

func BenchmarkEncap(b *testing.B) { perf.BenchEncap(b) }

// BenchmarkDecap measures the receiver program via the shared perf body.
func BenchmarkDecap(b *testing.B) { perf.BenchDecap(b) }

// BenchmarkLinkTraverse measures inject→link→deliver through the engine.
func BenchmarkLinkTraverse(b *testing.B) { perf.BenchLinkTraverse(b) }

// BenchmarkObsCounter measures one labelled counter increment — the
// per-packet cost the telemetry layer adds to every instrumented event.
func BenchmarkObsCounter(b *testing.B) { perf.BenchObsCounter(b) }

// BenchmarkObsHistogram measures one histogram observation (log2
// bucketing plus two atomic adds).
func BenchmarkObsHistogram(b *testing.B) { perf.BenchObsHistogram(b) }

// BenchmarkFlowEmit measures one flow-table packet emission (wheel batch
// drain + in-place stamp + send) over a live population of flows.
func BenchmarkFlowEmit(b *testing.B) { perf.BenchFlowEmit(b) }

// BenchmarkFlowArriveDepart measures one flow arrive/emit/depart cycle —
// the slot churn cost of the free-list flyweight table.
func BenchmarkFlowArriveDepart(b *testing.B) { perf.BenchFlowArriveDepart(b) }

func benchCfg(seed int64, d time.Duration) experiments.Config {
	return experiments.Config{Seed: seed, Duration: d}
}

func reportChecks(b *testing.B, r *experiments.Result) {
	b.Helper()
	pass := 0
	for _, c := range r.Checks {
		if c.Pass {
			pass++
		}
	}
	b.ReportMetric(float64(pass), "checks-pass")
	b.ReportMetric(float64(len(r.Checks)-pass), "checks-fail")
	if !r.Passed() {
		b.Fatalf("%s checks failed: %+v", r.ID, r.Checks)
	}
}

// BenchmarkE1PathDiscovery regenerates Figure 3 / §4.1: the iterative
// community-suppression discovery of 4 paths in each direction.
func BenchmarkE1PathDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E1PathDiscovery(benchCfg(int64(i)+1, 0))
		reportChecks(b, r)
	}
}

// BenchmarkE2OWDComparison regenerates Figure 4 (left) / the 30% claim.
func BenchmarkE2OWDComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E2OWDComparison(benchCfg(int64(i)+1, 10*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE3Jitter regenerates the §5 rolling-window jitter numbers.
func BenchmarkE3Jitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E3Jitter(benchCfg(int64(i)+1, 10*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE4RouteChange regenerates Figure 4 (middle).
func BenchmarkE4RouteChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E4RouteChange(benchCfg(int64(i)+1, 6*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE5Instability regenerates Figure 4 (right).
func BenchmarkE5Instability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E5Instability(benchCfg(int64(i)+1, 5*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE6InOrder regenerates the §5 head-of-line-blocking analysis.
func BenchmarkE6InOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E6InOrderImpact(benchCfg(int64(i)+1, 2*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE7MeasurementSoundness regenerates the §3/§4.2 clock-offset
// and RTT-attribution analysis.
func BenchmarkE7MeasurementSoundness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E7MeasurementSoundness(benchCfg(int64(i)+1, 3*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE9LossReorder regenerates the §3 loss/reorder accounting
// validation.
func BenchmarkE9LossReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E9LossReorder(benchCfg(int64(i)+1, 2*time.Minute))
		reportChecks(b, r)
	}
}

// BenchmarkE10MeshOverlay regenerates the §6 overlay-routing scenario:
// three pairwise deployments composed into a mesh that routes around a
// shared-provider incident.
func BenchmarkE10MeshOverlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E10MeshOverlay(benchCfg(int64(i)+1, 90*time.Second))
		reportChecks(b, r)
	}
}

// benchSwitch builds a standalone switch with one tunnel for data-plane
// microbenchmarks.
func benchSwitch(b *testing.B) (*simnet.Network, *dataplane.Switch, *dataplane.Tunnel) {
	b.Helper()
	w := simnet.New(1)
	n := w.AddNode("bench", 0)
	sw := dataplane.NewSwitch(n)
	tun := &dataplane.Tunnel{
		PathID:     1,
		Name:       "bench",
		LocalAddr:  netip.MustParseAddr("2001:db8:1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:2::1"),
		SrcPort:    40001,
	}
	sw.AddTunnel(tun)
	return w, sw, tun
}

func benchInner(size int) []byte {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(make([]byte, size))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// BenchmarkE8Encap measures the sender program (classify + encapsulate +
// timestamp + checksum) on 1 KiB payloads — the eBPF-feasibility stand-in.
func BenchmarkE8Encap(b *testing.B) {
	w, sw, tun := benchSwitch(b)
	inner := benchInner(1024)
	b.SetBytes(int64(len(inner)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SendOnTunnel(tun, inner)
		if i%4096 == 0 {
			b.StopTimer()
			w.Eng.RunAll() // drain queued delivery events outside timing
			b.StartTimer()
		}
	}
	b.StopTimer()
	w.Eng.RunAll()
}

// BenchmarkE8Decap measures the receiver program (parse + verify + OWD +
// decap) on 1 KiB payloads.
func BenchmarkE8Decap(b *testing.B) {
	w := simnet.New(2)
	n := w.AddNode("recv", 0)
	sw := dataplane.NewSwitch(n)
	tun := &dataplane.Tunnel{PathID: 1,
		LocalAddr:  netip.MustParseAddr("2001:db8:2::1"), // remote's view
		RemoteAddr: netip.MustParseAddr("2001:db8:1::1"),
	}
	// Build one encapsulated packet addressed to an owned endpoint.
	inner := benchInner(1024)
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(inner)
	hdr := &packet.Tango{Flags: packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagInner6, PathID: 1, SendTime: 1}
	udp := &packet.UDP{SrcPort: 40001, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(tun.RemoteAddr, tun.LocalAddr)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: tun.RemoteAddr, Dst: tun.LocalAddr}
	if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		b.Fatal(err)
	}
	outer := make([]byte, buf.Len())
	copy(outer, buf.Bytes())
	n.AddAddr(tun.LocalAddr)
	measured := 0
	sw.OnMeasure = func(dataplane.Measurement) { measured++ }
	b.SetBytes(int64(len(outer)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(outer)
	}
	b.StopTimer()
	if measured != b.N {
		b.Fatalf("measured %d of %d", measured, b.N)
	}
}

// BenchmarkRelayHop measures one full relay hop (parse + verify + decap +
// relay lookup + re-encapsulate onto the next segment) on 1 KiB payloads —
// the per-relay cost an overlay route adds over direct delivery
// (BenchmarkE8Decap is the direct-delivery baseline).
func BenchmarkRelayHop(b *testing.B) {
	w := simnet.New(3)
	nin := w.AddNode("relayIn", 0)
	nout := w.AddNode("relayOut", 0)
	nsink := w.AddNode("sink", 0)
	w.Connect(nout, nsink,
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)})
	nout.SetRoute(addr.MustParsePrefix("2001:db8:e2::/48"), nout.Ports()[0])

	swIn := dataplane.NewSwitch(nin)
	inTun := &dataplane.Tunnel{PathID: 1, Name: "seg1",
		LocalAddr:  netip.MustParseAddr("2001:db8:2::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:1::1")}
	swIn.AddTunnel(inTun)
	nin.AddAddr(inTun.LocalAddr)
	swOut := dataplane.NewSwitch(nout)
	swOut.AddTunnel(&dataplane.Tunnel{PathID: 1, Name: "seg2",
		LocalAddr:  netip.MustParseAddr("2001:db8:c1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:e2::1"), SrcPort: 41002})

	relay := dataplane.NewRelay()
	relay.AddRoute(addr.MustParsePrefix("2001:db8:cc::/48"), swOut)
	relay.Attach(swIn)

	// One relay-tagged packet whose inner destination is a further overlay
	// segment away.
	inner := benchInner(1024)
	inner[29] = 0xcc // rewrite inner dst to 2001:db8:cc::1, inside the relay prefix
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(inner)
	hdr := &packet.Tango{Flags: packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagInner6,
		ExtFlags: packet.TangoExtRelay, RelayTTL: 2, PathID: 1, SendTime: 1}
	udp := &packet.UDP{SrcPort: 40001, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(inTun.RemoteAddr, inTun.LocalAddr)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: inTun.RemoteAddr, Dst: inTun.LocalAddr}
	if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		b.Fatal(err)
	}
	outer := make([]byte, buf.Len())
	copy(outer, buf.Bytes())

	b.SetBytes(int64(len(outer)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nin.Inject(outer)
		if i%4096 == 0 {
			b.StopTimer()
			w.Eng.RunAll() // drain the egress segment's delivery events
			b.StartTimer()
		}
	}
	b.StopTimer()
	w.Eng.RunAll()
	if relay.Stats.Forwarded != uint64(b.N) {
		b.Fatalf("forwarded %d of %d", relay.Stats.Forwarded, b.N)
	}
}

// BenchmarkPacketSerialize measures the raw layer-stack serialization.
func BenchmarkPacketSerialize(b *testing.B) {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(make([]byte, 1024))
	hdr := &packet.Tango{Flags: packet.TangoFlagSeq | packet.TangoFlagTimestamp, PathID: 1, Seq: 1, SendTime: 1}
	udp := &packet.UDP{SrcPort: 1, DstPort: packet.TangoPort}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCadence sweeps the controller decision cadence
// (DESIGN.md §5): achieved OWD through an E4 event per cadence.
func BenchmarkAblationCadence(b *testing.B) {
	for _, cadence := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 10 * time.Second} {
		b.Run(cadence.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.AblationCadence(benchCfg(int64(i)+1, 0), cadence)
				b.ReportMetric(res.MeanTrueOWDMs, "meanOWD-ms")
				b.ReportMetric(float64(res.Switches), "switches")
			}
		})
	}
}

// BenchmarkAblationHysteresis sweeps the switching margin: flap count vs
// achieved delay under an unstable active path.
func BenchmarkAblationHysteresis(b *testing.B) {
	for _, m := range []float64{0.05, 0.5, 5.0} {
		b.Run("margin-"+strconv.FormatFloat(m, 'g', -1, 64)+"ms", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.AblationHysteresis(benchCfg(int64(i)+1, 0), m)
				b.ReportMetric(float64(res.Switches), "switches")
				b.ReportMetric(res.MeanTrueOWDMs, "meanOWD-ms")
			}
		})
	}
}

// BenchmarkAblationEstimator sweeps the EWMA smoothing factor on a spiky
// trace: fraction of time the estimate is >1 ms from the true floor.
func BenchmarkAblationEstimator(b *testing.B) {
	for _, alpha := range []float64{0.5, 0.05, 0.005} {
		b.Run("alpha-"+strconv.FormatFloat(alpha, 'g', -1, 64), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				misled := experiments.AblationEstimator(benchCfg(int64(i)+1, 0), alpha)
				b.ReportMetric(misled*100, "misled-pct")
			}
		})
	}
}

// BenchmarkAblationProbeRate sweeps the probe interval: detection latency
// of an E4 route change vs measurement traffic volume.
func BenchmarkAblationProbeRate(b *testing.B) {
	for _, ival := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		b.Run(ival.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.AblationProbeRate(benchCfg(int64(i)+1, 0), ival)
				b.ReportMetric(res.DetectionLatency.Seconds(), "detect-s")
				b.ReportMetric(float64(res.ProbesSent), "probes")
			}
		})
	}
}
