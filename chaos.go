package tango

import (
	"fmt"
	"time"

	"tango/internal/chaos"
	"tango/internal/obs"
)

// Chaos is the public handle on the deterministic fault-injection engine
// (internal/chaos) for a Mesh. Every provider trunk is registered as the
// fault target "trunk/<site>/<provider>" and every pairwise Tango edge
// server as "edge/<site>:<peer>"; faults fire at exact virtual instants,
// random storms are drawn from the mesh's seeded RNG streams, and the
// whole-network conservation and buffer-balance invariants are checked
// continuously — so a fault campaign either reproduces byte for byte
// from its seed or fails loudly.
type Chaos struct {
	m   *Mesh
	eng *chaos.Engine
}

// Chaos returns the mesh's fault-injection handle, creating it on first
// use. Creation registers every trunk line and edge speaker as a named
// target and starts conservation and buffer-balance checks on a 250 ms
// cadence.
func (m *Mesh) Chaos() (*Chaos, error) {
	if m.buildErr != nil {
		return nil, m.buildErr
	}
	if m.chaos != nil {
		return m.chaos, nil
	}
	ch := chaos.New(m.scenario.B.Eng())
	for _, site := range m.scenario.SiteNames {
		for prov, line := range m.scenario.Trunk[site] {
			ch.AddLine("trunk/"+site+"/"+prov, line)
		}
	}
	for key, e := range m.scenario.Edges {
		ch.AddSpeaker("edge/"+key, e.Speaker)
	}
	ch.Watch(chaos.Conservation("mesh", m.scenario.B.W))
	ch.Watch(chaos.BufferBalance("mesh", m.scenario.B.W))
	ch.StartChecks(250 * time.Millisecond)
	m.chaos = &Chaos{m: m, eng: ch}
	return m.chaos, nil
}

// Instrument registers fault counters and per-trunk drop counters in
// reg and journals chaos events (fault applies/reverts, withdrawals,
// invariant violations, queue drops) to j.
func (c *Chaos) Instrument(reg *obs.Registry, j *obs.Journal) {
	c.eng.Instrument(reg, j)
}

// trunk resolves a site/provider pair to its registered target name.
func (c *Chaos) trunk(site, provider string) (string, error) {
	name := "trunk/" + site + "/" + provider
	if c.eng.Line(name) == nil {
		return "", fmt.Errorf("tango: no trunk into site %q via provider %q", site, provider)
	}
	return name, nil
}

// LinkDown takes the provider trunk into site admin-down after in, for
// dur. Packets already in flight still arrive; everything offered while
// down is dropped at admission.
func (c *Chaos) LinkDown(site, provider string, in, dur time.Duration) error {
	name, err := c.trunk(site, provider)
	if err != nil {
		return err
	}
	c.eng.Schedule(chaos.LinkDown{Target: name, At: c.m.Now() + in, For: dur})
	return nil
}

// LossBurst sets the provider trunk into site to the given loss
// probability after in, restoring the previous probability after dur.
func (c *Chaos) LossBurst(site, provider string, in, dur time.Duration, loss float64) error {
	name, err := c.trunk(site, provider)
	if err != nil {
		return err
	}
	c.eng.Schedule(chaos.LossBurst{Target: name, At: c.m.Now() + in, For: dur, Loss: loss})
	return nil
}

// DelayShift adds delta of one-way delay on the provider trunk into site
// after in, removing it after dur.
func (c *Chaos) DelayShift(site, provider string, in, dur, delta time.Duration) error {
	name, err := c.trunk(site, provider)
	if err != nil {
		return err
	}
	c.eng.Schedule(chaos.DelayShift{Target: name, At: c.m.Now() + in, For: dur, Delta: delta})
	return nil
}

// WithdrawPath withdraws the pinned BGP prefix that site announces for
// path id of its Tango pair with peer — killing that path of the
// peer-to-site direction at the routing layer — and re-announces it with
// identical attributes after dur. The mesh must be established first
// (path prefixes exist only after establishment).
func (c *Chaos) WithdrawPath(site, peer string, id uint8, in, dur time.Duration) error {
	if c.m.mesh == nil {
		return fmt.Errorf("tango: mesh not established")
	}
	st := c.m.mesh.Member(site, peer)
	if st == nil {
		return fmt.Errorf("tango: no deployment %s:%s", site, peer)
	}
	pfx, err := st.PinnedPrefix(id)
	if err != nil {
		return err
	}
	c.eng.Schedule(chaos.Withdrawal{
		Speaker: "edge/" + site + ":" + peer,
		Prefix:  pfx,
		At:      c.m.Now() + in,
		For:     dur,
	})
	return nil
}

// Storm schedules n seeded-random faults — link flaps, loss bursts,
// delay shifts, withdrawals — uniformly over the window starting after
// in, and returns their labels in schedule order. The draw comes from
// the mesh's named RNG streams, so a storm replays exactly from the
// mesh seed.
func (c *Chaos) Storm(n int, in, window time.Duration) []string {
	return c.eng.ScheduleStorm(c.m.scenario.B.W.Streams.Stream("chaos-storm"), chaos.StormConfig{
		Faults: n,
		Start:  c.m.Now() + in,
		Window: window,
	})
}

// CheckNow runs every registered invariant once at the current instant.
func (c *Chaos) CheckNow() { c.eng.CheckNow() }

// Violations returns every invariant failure observed so far, rendered
// one per entry.
func (c *Chaos) Violations() []string {
	vs := c.eng.Violations()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Events returns the chaos event log — fault applications, reversions,
// and violations — one entry per line, in virtual-time order.
func (c *Chaos) Events() []string {
	entries := c.eng.Log()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("t=%s %s", e.At, e.Msg)
	}
	return out
}

// Targets returns the registered fault target names (trunks then edge
// speakers), sorted within each group.
func (c *Chaos) Targets() []string {
	return append(c.eng.LineNames(), c.eng.SpeakerNames()...)
}
