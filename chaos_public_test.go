package tango

import (
	"strings"
	"testing"
	"time"
)

// TestMeshChaosFaultCampaign drives the public chaos API end to end on
// the default three-site mesh: named targets resolve, faults apply and
// revert on schedule, a withdrawal round-trips through the edge speaker,
// and the always-on conservation invariants stay silent throughout.
func TestMeshChaosFaultCampaign(t *testing.T) {
	m := NewMesh(MeshOptions{Seed: 1})
	if err := m.Establish(); err != nil {
		t.Fatal(err)
	}
	ch, err := m.Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if ch2, _ := m.Chaos(); ch2 != ch {
		t.Fatal("second Chaos() call built a new engine")
	}
	if len(ch.Targets()) == 0 {
		t.Fatal("no fault targets registered")
	}

	if err := ch.LinkDown("nowhere", "NTT", time.Second, time.Second); err == nil {
		t.Fatal("bogus trunk target accepted")
	}
	if err := ch.WithdrawPath("ny", "nowhere", 1, time.Second, time.Second); err == nil {
		t.Fatal("bogus withdrawal target accepted")
	}

	paths, err := m.Paths("ny", "chi")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected multiple ny->chi paths, got %d", len(paths))
	}
	prov := paths[0].Provider

	if err := ch.LinkDown("chi", prov, time.Second, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ch.LossBurst("chi", prov, 6*time.Second, time.Second, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := ch.DelayShift("chi", prov, 8*time.Second, time.Second, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := ch.WithdrawPath("chi", "ny", 1, 2*time.Second, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	m.Run(12 * time.Second)
	ch.CheckNow()

	events := strings.Join(ch.Events(), "\n")
	for _, want := range []string{
		"apply link-down trunk/chi/" + prov,
		"revert link-down trunk/chi/" + prov,
		"apply loss-burst trunk/chi/" + prov,
		"apply delay-shift trunk/chi/" + prov,
		"apply withdraw edge/chi:ny",
		"revert withdraw edge/chi:ny",
	} {
		if !strings.Contains(events, want) {
			t.Fatalf("missing %q in event log:\n%s", want, events)
		}
	}
	if vs := ch.Violations(); len(vs) != 0 {
		t.Fatalf("invariant violations during campaign: %v", vs)
	}
}
