// Command tango-bench is the perf-regression harness's CLI face: it runs
// the dataplane micro-benchmarks (encap, decap, link traversal), the
// scheduler micro-benchmarks (timing wheel vs. the preserved binary-heap
// reference, at 10k pending events), the flow-table micros (steady
// emit and arrive/depart churn over a live population — see the flows
// field in BENCH.json), and the TE micros (an incremental move
// evaluation and a full Link-Guided Local Search convergence on a
// mesh-shaped placement instance) through testing.Benchmark, optionally
// times the full E2/E10 experiment reproductions and the whole suite
// serial-vs-parallel, and emits the results as machine-readable JSON for
// CI to archive and diff across commits.
//
// Usage:
//
//	tango-bench [-out BENCH.json] [-full] [-check] [-parallel N]
//	            [-shards N] [-e12] [-e14] [-sites N]
//	            [-history BENCH_HISTORY.json] [-compare FILE] [-tolerance 0.20]
//
// -check exits non-zero if any micro-benchmark allocates in steady state
// or if the timing wheel loses its margin over the reference heap on the
// schedule+fire micro, making both perf invariants enforceable outside
// `go test` (CI runs `tango-bench -check` as its bench smoke job).
//
// -shards N runs a reduced E12 storm mesh on N shard workers as a smoke
// test (its checks must pass for -check to succeed), and is recorded in
// the report metadata; CI runs the {1, 4} matrix. -e12 times the full
// 64-site / 10k-tunnel E12 at 1 worker vs. 8 and reports the speedup —
// with -check, on a machine with 8+ CPUs, a speedup below 3x fails.
// -e14 runs a reduced E14 discovery sweep (a generated internet swept
// by concurrent discoverers, scored against valley-free ground truth)
// and, with -check, fails if any of its checks fail. Every report
// records GOMAXPROCS so numbers stay comparable across machines and
// shard counts.
//
// -history appends this run (git SHA, timestamp, full report) to a JSON
// log so numbers accumulate across commits; pass -history ” to skip.
// -compare FILE diffs the run against a baseline report and exits
// non-zero on a >tolerance ns/op regression, any allocs/op increase, or
// a >2×tolerance experiment wall-clock regression (wall clocks are
// noisier than micros, so they get the wider band).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"tango/internal/experiments"
	"tango/internal/perf"
)

// MicroResult is one micro-benchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// ExperimentResult is the wall-clock cost of one full experiment
// reproduction (virtual-time duration fixed, so runs are comparable).
type ExperimentResult struct {
	Name        string  `json:"name"`
	WallClockMs float64 `json:"wall_clock_ms"`
	ChecksPass  bool    `json:"checks_pass"`
}

// SuiteResult compares the full experiment suite run serially against the
// same suite on a worker pool (one simulation engine per goroutine).
type SuiteResult struct {
	Experiments int     `json:"experiments"`
	Workers     int     `json:"workers"`
	SerialMs    float64 `json:"serial_ms"`
	ParallelMs  float64 `json:"parallel_ms"`
	Speedup     float64 `json:"speedup"`
}

// ShardResult is the E12 scale entry: the same 64-site / 10k-tunnel
// storm simulation timed at 1 shard worker vs. 8.
type ShardResult struct {
	Name       string  `json:"name"`
	Sites      int     `json:"sites"`
	Tunnels    int     `json:"tunnels"`
	Workers1Ms float64 `json:"workers1_ms"`
	Workers8Ms float64 `json:"workers8_ms"`
	Speedup    float64 `json:"speedup"`
	ChecksPass bool    `json:"checks_pass"`
}

// LoopbackResult records the two-process loopback run (-loopback):
// two tangod processes on real UDP sockets over 127.0.0.1, judged
// against the simulated E8-live reference, plus the sustained Tango
// frame rate measured from their /metrics scrapes.
type LoopbackResult struct {
	PathA       int     `json:"path_a"`
	PathB       int     `json:"path_b"`
	MatchesSim  bool    `json:"matches_sim"`
	ConvergedMs float64 `json:"converged_ms"`
	PPS         float64 `json:"pps"`
	Frames      uint64  `json:"frames"`
	WindowMs    float64 `json:"window_ms"`
}

// Report is the BENCH.json schema. GOMAXPROCS, Shards, and Flows are
// recorded so perf history stays comparable across machines, shard
// counts, and flow-table populations.
type Report struct {
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	// Flows is the flow-table population behind the FlowEmit and
	// FlowArriveDepart micros.
	Flows       int                `json:"flows,omitempty"`
	Micro       []MicroResult      `json:"micro"`
	Experiments []ExperimentResult `json:"experiments,omitempty"`
	Suite       *SuiteResult       `json:"suite,omitempty"`
	Shard       *ShardResult       `json:"shard,omitempty"`
	Loopback    *LoopbackResult    `json:"loopback,omitempty"`
}

// HistoryEntry is one record in the BENCH_HISTORY.json append log.
type HistoryEntry struct {
	SHA    string `json:"sha"`
	Time   string `json:"time"`
	Report Report `json:"report"`
}

// wheelHeapMargin is the acceptance bar -check enforces: the wheel's
// schedule+fire must cost at most this fraction of the heap's on the same
// machine, keeping the comparison meaningful across hardware.
const wheelHeapMargin = 0.75

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		out       = flag.String("out", "BENCH.json", "file to write results to ('-' for stdout)")
		full      = flag.Bool("full", false, "also time the full E2/E10 experiment reproductions")
		check     = flag.Bool("check", false, "exit non-zero on per-op allocations or a lost wheel-vs-heap margin")
		parallel  = flag.Int("parallel", 0, "also time the full suite serial vs. N workers (0 = skip)")
		shards    = flag.Int("shards", 0, "also run a reduced E12 storm mesh on N shard workers as a smoke test (0 = skip)")
		e12       = flag.Bool("e12", false, "also time the full E12 scale experiment at 1 shard worker vs. 8")
		e14       = flag.Bool("e14", false, "also run a reduced E14 discovery sweep as a smoke test")
		loopback  = flag.Bool("loopback", false, "also run the two-process UDP loopback deployment (E8-live) and record sustained pps")
		tangodBin = flag.String("tangod", "", "tangod binary for -loopback ('' builds ./cmd/tangod into a temp dir)")
		sites     = flag.Int("sites", 0, "override the site count for -shards/-e12/-e14 (0 = defaults: 12 smoke, 64 full, 16 sweep)")
		history   = flag.String("history", "BENCH_HISTORY.json", "append (sha, time, report) to this JSON log ('' = skip)")
		compare   = flag.String("compare", "", "baseline report to diff against; regressions exit non-zero")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression for -compare")
	)
	flag.Parse()

	micro := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Encap", perf.BenchEncap},
		{"Decap", perf.BenchDecap},
		{"LinkTraverse", perf.BenchLinkTraverse},
		{"SchedFire10k", perf.BenchSchedFire},
		{"SchedFire10kHeap", perf.BenchSchedFireHeap},
		{"Cancel10k", perf.BenchCancel},
		{"Cancel10kHeap", perf.BenchCancelHeap},
		{"ObsCounter", perf.BenchObsCounter},
		{"ObsHistogram", perf.BenchObsHistogram},
		{"FlowEmit", perf.BenchFlowEmit},
		{"FlowArriveDepart", perf.BenchFlowArriveDepart},
		{"TEMoveEval", perf.BenchTEMoveEval},
		{"SolverConverge", perf.BenchSolverConverge},
	}

	rep := Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Shards: *shards, Flows: perf.FlowBenchFlows}
	regressed := false
	for _, m := range micro {
		res := testing.Benchmark(m.fn)
		mr := MicroResult{
			Name:        m.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if res.Bytes > 0 && res.T > 0 {
			mr.MBPerSec = float64(res.Bytes*int64(res.N)) / 1e6 / res.T.Seconds()
		}
		rep.Micro = append(rep.Micro, mr)
		fmt.Printf("%-16s %12.1f ns/op %8d allocs/op %8d B/op\n",
			m.name, mr.NsPerOp, mr.AllocsPerOp, mr.BytesPerOp)
		if mr.AllocsPerOp != 0 {
			regressed = true
		}
	}
	if wheel, heap := findMicro(rep.Micro, "SchedFire10k"), findMicro(rep.Micro, "SchedFire10kHeap"); wheel != nil && heap != nil {
		fmt.Printf("%-16s %12.2fx heap schedule+fire cost (bar: <= %.2fx)\n",
			"wheel/heap", wheel.NsPerOp/heap.NsPerOp, wheelHeapMargin)
		if wheel.NsPerOp > wheelHeapMargin*heap.NsPerOp {
			fmt.Fprintf(os.Stderr, "FAIL: wheel schedule+fire %.1f ns/op exceeds %.2fx heap (%.1f ns/op)\n",
				wheel.NsPerOp, wheelHeapMargin, heap.NsPerOp)
			regressed = true
		}
	}

	if *full {
		drivers := []struct {
			name string
			fn   func(experiments.Config) *experiments.Result
			dur  time.Duration
		}{
			{"E2OWDComparison", experiments.E2OWDComparison, 10 * time.Minute},
			{"E10MeshOverlay", experiments.E10MeshOverlay, 90 * time.Second},
		}
		for _, d := range drivers {
			start := time.Now()
			res := d.fn(experiments.Config{Seed: 1, Duration: d.dur})
			elapsed := time.Since(start)
			rep.Experiments = append(rep.Experiments, ExperimentResult{
				Name:        d.name,
				WallClockMs: float64(elapsed.Nanoseconds()) / 1e6,
				ChecksPass:  res.Passed(),
			})
			fmt.Printf("%-16s %12.0f ms wall-clock  checks pass: %v\n",
				d.name, float64(elapsed.Milliseconds()), res.Passed())
		}
	}

	if *shards > 0 {
		smokeSites := *sites
		if smokeSites == 0 {
			smokeSites = 12
		}
		start := time.Now()
		res := experiments.E12ShardedStorm(experiments.Config{Seed: 1, Sites: smokeSites, Shards: *shards})
		elapsed := time.Since(start)
		rep.Experiments = append(rep.Experiments, ExperimentResult{
			Name:        fmt.Sprintf("E12Smoke%dw", *shards),
			WallClockMs: float64(elapsed.Nanoseconds()) / 1e6,
			ChecksPass:  res.Passed(),
		})
		fmt.Printf("E12 smoke (%d sites, %d workers) %8.0f ms wall-clock  checks pass: %v\n",
			smokeSites, *shards, float64(elapsed.Milliseconds()), res.Passed())
		if !res.Passed() {
			fmt.Fprintf(os.Stderr, "FAIL: E12 smoke checks failed at %d shard workers\n", *shards)
			regressed = true
		}
	}

	if *e12 {
		sr := timeShardScale(*sites)
		rep.Shard = sr
		fmt.Printf("E12 (%d sites, %d tunnels)  1 worker %.0f ms, 8 workers %.0f ms: %.2fx  checks pass: %v\n",
			sr.Sites, sr.Tunnels, sr.Workers1Ms, sr.Workers8Ms, sr.Speedup, sr.ChecksPass)
		if !sr.ChecksPass {
			fmt.Fprintln(os.Stderr, "FAIL: E12 checks failed")
			regressed = true
		}
		if runtime.NumCPU() >= 8 && sr.Speedup < 3.0 {
			fmt.Fprintf(os.Stderr, "FAIL: E12 speedup %.2fx at 8 workers is below the 3x bar on a %d-CPU machine\n",
				sr.Speedup, runtime.NumCPU())
			regressed = true
		}
	}

	if *e14 {
		sweepSites := *sites
		if sweepSites == 0 {
			sweepSites = 16
		}
		start := time.Now()
		res := experiments.E14DiscoverySweep(experiments.Config{Seed: 1, Sites: sweepSites, Shards: 4})
		elapsed := time.Since(start)
		rep.Experiments = append(rep.Experiments, ExperimentResult{
			Name:        "E14SweepSmoke",
			WallClockMs: float64(elapsed.Nanoseconds()) / 1e6,
			ChecksPass:  res.Passed(),
		})
		fmt.Printf("E14 sweep smoke (%d sites) %8.0f ms wall-clock  checks pass: %v\n",
			sweepSites, float64(elapsed.Milliseconds()), res.Passed())
		if !res.Passed() {
			fmt.Fprintln(os.Stderr, "FAIL: E14 sweep smoke checks failed")
			regressed = true
		}
	}

	if *loopback {
		lr, err := runLoopback(*tangodBin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopback: %v\n", err)
			regressed = true
		}
		if lr != nil {
			rep.Loopback = lr
			fmt.Printf("loopback (E8-live)  a->path %d, b->path %d (matches sim: %v)  converged %.0f ms  sustained %.0f frames/s\n",
				lr.PathA, lr.PathB, lr.MatchesSim, lr.ConvergedMs, lr.PPS)
			if !lr.MatchesSim {
				regressed = true
			}
		}
	}

	if *parallel > 0 {
		rep.Suite = timeSuite(*parallel)
		fmt.Printf("suite (%d exps)  serial %.0f ms, %d workers %.0f ms: %.2fx\n",
			rep.Suite.Experiments, rep.Suite.SerialMs, rep.Suite.Workers,
			rep.Suite.ParallelMs, rep.Suite.Speedup)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
		return 1
	} else {
		fmt.Printf("wrote %s\n", *out)
	}

	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			fmt.Fprintf(os.Stderr, "appending %s: %v\n", *history, err)
			return 1
		}
		fmt.Printf("appended %s\n", *history)
	}

	if *compare != "" {
		violations, err := compareAgainst(*compare, rep, *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comparing against %s: %v\n", *compare, err)
			return 1
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", v)
		}
		if len(violations) > 0 {
			return 1
		}
		fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", *compare, *tolerance*100)
	}

	if *check && regressed {
		fmt.Fprintln(os.Stderr, "FAIL: a perf invariant regressed (allocations on the fast path or wheel-vs-heap margin lost)")
		return 1
	}
	return 0
}

// runLoopback builds tangod if needed and runs the two-process loopback
// deployment, verifying it converges like the simulated reference first.
func runLoopback(bin string) (*LoopbackResult, error) {
	if r := experiments.E8LiveSim(experiments.Config{Seed: 1}); !r.Passed() {
		return nil, fmt.Errorf("simulated E8-live reference did not converge")
	}
	if bin == "" {
		dir, err := os.MkdirTemp("", "tango-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		bin = dir + "/tangod"
		build := exec.Command("go", "build", "-o", bin, "tango/cmd/tangod")
		if out, err := build.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build tangod: %v\n%s", err, out)
		}
	}
	rep, err := experiments.RunE8Loopback(experiments.LoopbackConfig{Tangod: bin, Measure: 2 * time.Second})
	if rep == nil {
		return nil, err
	}
	return &LoopbackResult{
		PathA:       rep.PathA,
		PathB:       rep.PathB,
		MatchesSim:  rep.MatchesSim,
		ConvergedMs: float64(rep.ConvergedIn.Nanoseconds()) / 1e6,
		PPS:         rep.PPS,
		Frames:      rep.Frames,
		WindowMs:    float64(rep.Window.Nanoseconds()) / 1e6,
	}, err
}

func findMicro(ms []MicroResult, name string) *MicroResult {
	for i := range ms {
		if ms[i].Name == name {
			return &ms[i]
		}
	}
	return nil
}

// timeSuite runs all eleven experiments twice — serially, then on a
// worker pool — with per-experiment default durations, and reports the
// wall clocks. Results are discarded; the runner's own test asserts the
// parallel results equal the serial ones.
func timeSuite(workers int) *SuiteResult {
	cfg := experiments.Config{Seed: 1}
	start := time.Now()
	serial := experiments.All(cfg)
	serialMs := float64(time.Since(start).Nanoseconds()) / 1e6

	jobs := []experiments.Job{
		{ID: "e1", Cfg: cfg, Run: experiments.E1PathDiscovery},
		{ID: "e2", Cfg: cfg, Run: experiments.E2OWDComparison},
		{ID: "e3", Cfg: cfg, Run: experiments.E3Jitter},
		{ID: "e4", Cfg: cfg, Run: experiments.E4RouteChange},
		{ID: "e5", Cfg: cfg, Run: experiments.E5Instability},
		{ID: "e6", Cfg: cfg, Run: experiments.E6InOrderImpact},
		{ID: "e7", Cfg: cfg, Run: experiments.E7MeasurementSoundness},
		{ID: "e8", Cfg: cfg, Run: experiments.E8DataPlaneCost},
		{ID: "e9", Cfg: cfg, Run: experiments.E9LossReorder},
		{ID: "e10", Cfg: cfg, Run: experiments.E10MeshOverlay},
		{ID: "e11", Cfg: cfg, Run: experiments.E11Failover},
	}
	start = time.Now()
	experiments.RunJobs(jobs, workers)
	parallelMs := float64(time.Since(start).Nanoseconds()) / 1e6

	return &SuiteResult{
		Experiments: len(serial),
		Workers:     workers,
		SerialMs:    serialMs,
		ParallelMs:  parallelMs,
		Speedup:     serialMs / parallelMs,
	}
}

// timeShardScale runs the full E12 scale experiment twice — 1 shard
// worker, then 8 — and reports the wall clocks. The two runs simulate the
// identical event sequence (the shard-invariance property), so the ratio
// is a clean measure of the parallel engine.
func timeShardScale(sites int) *ShardResult {
	cfg := experiments.Config{Seed: 1, Sites: sites, Shards: 1}
	start := time.Now()
	one := experiments.E12ShardedStorm(cfg)
	oneMs := float64(time.Since(start).Nanoseconds()) / 1e6
	cfg.Shards = 8
	start = time.Now()
	eight := experiments.E12ShardedStorm(cfg)
	eightMs := float64(time.Since(start).Nanoseconds()) / 1e6
	sr := &ShardResult{
		Name:       "E12ShardedStorm",
		Workers1Ms: oneMs,
		Workers8Ms: eightMs,
		Speedup:    oneMs / eightMs,
		ChecksPass: one.Passed() && eight.Passed(),
	}
	for _, row := range one.Rows {
		if len(row) != 2 {
			continue
		}
		switch row[0] {
		case "sites":
			sr.Sites, _ = strconv.Atoi(row[1])
		case "tunnels":
			sr.Tunnels, _ = strconv.Atoi(row[1])
		}
	}
	return sr
}

// gitSHA identifies the commit the numbers belong to; "unknown" outside a
// git checkout keeps the history usable from exported tarballs.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func appendHistory(path string, rep Report) error {
	var log []HistoryEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &log); err != nil {
			return fmt.Errorf("existing log is not a JSON array: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	log = append(log, HistoryEntry{
		SHA:    gitSHA(),
		Time:   time.Now().UTC().Format(time.RFC3339),
		Report: rep,
	})
	enc, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// compareAgainst diffs cur against the baseline report in path. Micros
// regress on ns/op beyond tolerance or any allocs/op increase;
// experiment wall clocks get twice the tolerance (they are noisier).
// Entries missing from the baseline are new and pass by definition.
func compareAgainst(path string, cur Report, tolerance float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, err
	}
	var violations []string
	for _, c := range cur.Micro {
		b := findMicro(base.Micro, c.Name)
		if b == nil {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (+%.0f%%, tolerance %.0f%%)",
				c.Name, c.NsPerOp, b.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, tolerance*100))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d — the zero-allocation invariant regressed",
				c.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	for _, c := range cur.Experiments {
		for _, b := range base.Experiments {
			if b.Name != c.Name {
				continue
			}
			if b.WallClockMs > 0 && c.WallClockMs > b.WallClockMs*(1+2*tolerance) {
				violations = append(violations, fmt.Sprintf(
					"%s: %.0f ms vs baseline %.0f ms (+%.0f%%, tolerance %.0f%%)",
					c.Name, c.WallClockMs, b.WallClockMs,
					(c.WallClockMs/b.WallClockMs-1)*100, 2*tolerance*100))
			}
		}
	}
	return violations, nil
}
