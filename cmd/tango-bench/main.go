// Command tango-bench is the perf-regression harness's CLI face: it runs
// the dataplane micro-benchmarks (encap, decap, link traversal) through
// testing.Benchmark, optionally times the full E2/E10 experiment
// reproductions, and emits the results as machine-readable JSON for CI
// to archive and diff across commits.
//
// Usage:
//
//	tango-bench [-out BENCH.json] [-full] [-check]
//
// -check exits non-zero if any micro-benchmark allocates in steady
// state, making the zero-allocation invariant enforceable outside `go
// test` (CI runs `tango-bench -check` as its bench smoke job).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"tango/internal/experiments"
	"tango/internal/perf"
)

// MicroResult is one micro-benchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// ExperimentResult is the wall-clock cost of one full experiment
// reproduction (virtual-time duration fixed, so runs are comparable).
type ExperimentResult struct {
	Name        string  `json:"name"`
	WallClockMs float64 `json:"wall_clock_ms"`
	ChecksPass  bool    `json:"checks_pass"`
}

// Report is the BENCH.json schema.
type Report struct {
	GoVersion   string             `json:"go_version,omitempty"`
	Micro       []MicroResult      `json:"micro"`
	Experiments []ExperimentResult `json:"experiments,omitempty"`
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		out   = flag.String("out", "BENCH.json", "file to write results to ('-' for stdout)")
		full  = flag.Bool("full", false, "also time the full E2/E10 experiment reproductions")
		check = flag.Bool("check", false, "exit non-zero if any micro-benchmark allocates per op")
	)
	flag.Parse()

	micro := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Encap", perf.BenchEncap},
		{"Decap", perf.BenchDecap},
		{"LinkTraverse", perf.BenchLinkTraverse},
	}

	rep := Report{}
	regressed := false
	for _, m := range micro {
		res := testing.Benchmark(m.fn)
		mr := MicroResult{
			Name:        m.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if res.Bytes > 0 && res.T > 0 {
			mr.MBPerSec = float64(res.Bytes*int64(res.N)) / 1e6 / res.T.Seconds()
		}
		rep.Micro = append(rep.Micro, mr)
		fmt.Printf("%-14s %12.1f ns/op %8d allocs/op %8d B/op\n",
			m.name, mr.NsPerOp, mr.AllocsPerOp, mr.BytesPerOp)
		if mr.AllocsPerOp != 0 {
			regressed = true
		}
	}

	if *full {
		drivers := []struct {
			name string
			fn   func(experiments.Config) *experiments.Result
			dur  time.Duration
		}{
			{"E2OWDComparison", experiments.E2OWDComparison, 10 * time.Minute},
			{"E10MeshOverlay", experiments.E10MeshOverlay, 90 * time.Second},
		}
		for _, d := range drivers {
			start := time.Now()
			res := d.fn(experiments.Config{Seed: 1, Duration: d.dur})
			elapsed := time.Since(start)
			rep.Experiments = append(rep.Experiments, ExperimentResult{
				Name:        d.name,
				WallClockMs: float64(elapsed.Nanoseconds()) / 1e6,
				ChecksPass:  res.Passed(),
			})
			fmt.Printf("%-14s %12.0f ms wall-clock  checks pass: %v\n",
				d.name, float64(elapsed.Milliseconds()), res.Passed())
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
		return 1
	} else {
		fmt.Printf("wrote %s\n", *out)
	}

	if *check && regressed {
		fmt.Fprintln(os.Stderr, "FAIL: a micro-benchmark allocates per op; the zero-allocation fast path has regressed")
		return 1
	}
	return 0
}
