// Command tango-lab regenerates the paper's evaluation: every figure and
// in-text number from §4.1 and §5 (plus the supporting analyses E6-E11
// from DESIGN.md) on the simulated Vultr deployment.
//
// Usage:
//
//	tango-lab [-run e1,e2,...|all] [-seed N] [-duration 2h] [-csv DIR]
//	          [-parallel N] [-shards N] [-sites N] [-flows N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Each experiment prints a table, the paper-vs-measured checks, and
// optionally writes figure series as CSV files into -csv DIR. The
// profile flags capture pprof data over the whole run, for digging into
// fast-path regressions the bench harness flags.
//
// -parallel N runs up to N experiments concurrently, one simulation
// engine per goroutine (N <= 0 means one per CPU). Experiments are fully
// isolated, so the reports are byte-identical to a serial run; output is
// buffered and printed in experiment order once all results are in.
//
// -shards N runs the sharding-aware experiments (e2, e10, e11, e12, e13,
// e15)
// on a partitioned network with N worker goroutines advancing the
// partitions in lock-stepped epochs. The partition layout is fixed by
// topology and seed, so any N produces the same report as -shards 1 —
// only wall-clock time changes. e12, the 64-site / 10k-tunnel storm
// scale test, e13, the million-concurrent-flow SLO run on the same
// mesh, e14, the discovery sweep over a generated 521-AS internet, and
// e15, the traffic-engineering comparison of greedy best-path steering
// against Link-Guided Local Search weights on the capacitated mesh, are
// not part of 'all' (they run minutes, not seconds); select them
// explicitly with -run e12/e13/e14/e15, and shrink them with -sites and
// -flows when smoke-testing. For e14, -shards sets the chunk-runner
// worker count and -sites the generated stub-site count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tango/internal/experiments"
)

func main() {
	// realMain returns instead of calling os.Exit so the profile-writing
	// defers always run, even when checks fail.
	os.Exit(realMain())
}

func realMain() int {
	var (
		run        = flag.String("run", "all", "comma-separated experiment ids (e1..e15) or 'all' (= e1..e11; e12/e13/e14/e15 are opt-in)")
		seed       = flag.Int64("seed", 1, "random seed (equal seeds reproduce exactly)")
		duration   = flag.Duration("duration", 0, "main measurement window of virtual time (0 = per-experiment default)")
		csvDir     = flag.String("csv", "", "directory to write figure series CSVs into")
		parallel   = flag.Int("parallel", 1, "run up to N experiments concurrently (<=0: one per CPU)")
		shards     = flag.Int("shards", 0, "advance sharding-aware experiments on N workers (0 = classic single engine)")
		sites      = flag.Int("sites", 0, "scale e12/e13/e15's wide mesh to N sites (0 = the full 64)")
		flows      = flag.Int("flows", 0, "scale e13's concurrent flow population (0 = the full 1M)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating cpu profile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // measure live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Config{Seed: *seed, Duration: *duration, Shards: *shards, Sites: *sites, Flows: *flows}
	drivers := map[string]func(experiments.Config) *experiments.Result{
		"e1":  experiments.E1PathDiscovery,
		"e2":  experiments.E2OWDComparison,
		"e3":  experiments.E3Jitter,
		"e4":  experiments.E4RouteChange,
		"e5":  experiments.E5Instability,
		"e6":  experiments.E6InOrderImpact,
		"e7":  experiments.E7MeasurementSoundness,
		"e8":  experiments.E8DataPlaneCost,
		"e9":  experiments.E9LossReorder,
		"e10": experiments.E10MeshOverlay,
		"e11": experiments.E11Failover,
		"e12": experiments.E12ShardedStorm,
		"e13": experiments.E13FlowStorm,
		"e14": experiments.E14DiscoverySweep,
		"e15": experiments.E15TrafficEngineering,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11"}

	var ids []string
	if *run == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := drivers[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", id, order)
				return 2
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("tango-lab: reproducing HotNets '22 \"It Takes Two to Tango\" (seed %d)\n\n", *seed)
	allPass := true
	start := time.Now()
	emit := func(res *experiments.Result) error {
		res.WriteText(os.Stdout)
		fmt.Println()
		if !res.Passed() {
			allPass = false
		}
		if *csvDir != "" {
			if err := writeSeries(*csvDir, res); err != nil {
				return err
			}
			return writeMetrics(*csvDir, res)
		}
		return nil
	}
	if *parallel == 1 {
		// Serial runs stream each report as it finishes.
		for _, id := range ids {
			if err := emit(drivers[id](cfg)); err != nil {
				fmt.Fprintf(os.Stderr, "writing CSVs: %v\n", err)
				return 1
			}
		}
	} else {
		jobs := make([]experiments.Job, len(ids))
		for i, id := range ids {
			jobs[i] = experiments.Job{ID: id, Cfg: cfg, Run: drivers[id]}
		}
		for _, res := range experiments.RunJobs(jobs, *parallel) {
			if err := emit(res); err != nil {
				fmt.Fprintf(os.Stderr, "writing CSVs: %v\n", err)
				return 1
			}
		}
	}
	fmt.Printf("completed %d experiment(s) in %v wall-clock\n", len(ids), time.Since(start).Round(time.Millisecond))
	if !allPass {
		fmt.Println("RESULT: some checks FAILED")
		return 1
	}
	fmt.Println("RESULT: all checks passed")
	return 0
}

func writeSeries(dir string, res *experiments.Result) error {
	for label, s := range res.Series {
		name := fmt.Sprintf("%s_%s.csv", strings.ToLower(res.ID), strings.ReplaceAll(label, "/", "_"))
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("   wrote %s\n", path)
	}
	return nil
}

// writeMetrics dumps the experiment's final observability snapshot as
// sorted JSON next to the CSV series. Keys are rendered instrument names
// ("tango_..._total{site=\"ny\"}"); sorting keeps the file diffable
// across runs.
func writeMetrics(dir string, res *experiments.Result) error {
	if len(res.Metrics) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	path := filepath.Join(dir, strings.ToLower(res.ID)+"_metrics.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "{")
	for i, k := range keys {
		sep := ","
		if i == len(keys)-1 {
			sep = ""
		}
		kb, err := json.Marshal(k)
		if err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(w, "  %s: %s%s\n", kb, strconv.FormatFloat(res.Metrics[k], 'g', -1, 64), sep)
	}
	fmt.Fprintln(w, "}")
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}
