// Command tango-pathdisc narrates the paper's §4.1 iterative path
// discovery algorithm round by round: announce the probe prefix, observe
// the AS path at the other edge, attach one more "do not export to <AS>"
// community, wait for BGP to reconverge, repeat until unreachable.
//
// Usage:
//
//	tango-pathdisc [-seed N] [-direction la-ny|ny-la] [-round-wait 2m]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/topo"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		direction = flag.String("direction", "la-ny", "traffic direction to discover paths for (la-ny or ny-la)")
		roundWait = flag.Duration("round-wait", 2*time.Minute, "virtual-time convergence wait per round")
	)
	flag.Parse()

	s, err := topo.NewVultrScenario(topo.ScenarioConfig{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("establishing BGP sessions and base routes (5 min virtual)...")
	s.Run(5 * time.Minute)

	var announcer, observer *topo.AS
	var probe addr.Prefix
	switch *direction {
	case "la-ny":
		// Paths for LA->NY traffic: the NY edge announces, LA observes.
		announcer, observer = s.EdgeNY, s.EdgeLA
		probe = addr.MustParsePrefix("2001:db8:100::/48")
	case "ny-la":
		announcer, observer = s.EdgeLA, s.EdgeNY
		probe = addr.MustParsePrefix("2001:db8:200::/48")
	default:
		fmt.Fprintf(os.Stderr, "unknown direction %q\n", *direction)
		os.Exit(2)
	}
	fmt.Printf("discovering %s paths: %s announces %v, %s observes\n\n",
		*direction, announcer.Name, probe, observer.Name)

	d := &control.Discoverer{
		Announcer: announcer.Speaker,
		Observer:  observer.Speaker,
		Probe:     probe,
		POPAS:     bgp.ASVultr,
		NameFor: func(a bgp.ASN) string {
			return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr})
		},
		RoundWait: *roundWait,
	}
	d.OnRound = func(round int, found *control.DiscoveredPath) {
		if found == nil {
			fmt.Printf("round %d: prefix unreachable — discovery complete\n", round)
			return
		}
		fmt.Printf("round %d: observed AS path [%v] -> delivered by %s\n",
			round, found.Path, found.ProviderName)
		fmt.Printf("         next: attach %v and re-announce\n",
			bgp.NoExportTo(found.ProviderASN))
	}
	var result []control.DiscoveredPath
	d.Run(func(paths []control.DiscoveredPath) { result = paths })
	s.Run(time.Duration(d.MaxRoundsOrDefault()+2) * *roundWait)

	fmt.Printf("\nexposed %d wide-area paths:\n", len(result))
	for i, p := range result {
		pin := control.PinCommunities(result, i)
		fmt.Printf("  path %d via %-7s pin with %v\n", i+1, p.ProviderName, pin)
	}
}
