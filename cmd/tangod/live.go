package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/transport/udp"
	"tango/internal/workload"
)

// liveOptions parameterizes -transport udp: one tangod process is one
// Tango endpoint on a real UDP socket, running the same switch /
// monitor / controller / reporter / prober stack the simulator runs —
// only the transport backend and the meaning of "now" differ.
type liveOptions struct {
	Site    string // site name (labels metrics, derives outer addresses)
	Listen  string // UDP bind address
	Peer    string // peer socket address to dial; empty = listen for a dialer
	Paths   string // outgoing path spec, e.g. "NTT:12ms,GTT:30ms,Cogent:20ms"
	Policy  string // min-delay | min-jitter | static
	Metrics string // HTTP address for /metrics and /trace; empty disables

	ProbeInterval time.Duration
	ReportEvery   time.Duration
	DecideEvery   time.Duration
	Duration      time.Duration // wall-clock run time; 0 = until signal

	AddrFile  string // write the bound socket address here (port discovery)
	ReadyFile string // write "ready" here once the pair is established
	Status    time.Duration
}

// livePolicy builds the steering policy for live operation. The dwell
// and staleness constants are wall-clock scaled: loopback deployments
// converge in hundreds of milliseconds, not simulated minutes.
func livePolicy(name string) (control.Policy, error) {
	switch name {
	case "min-delay":
		return &control.MinOWD{HysteresisMs: 1, MinDwell: 300 * time.Millisecond, StaleAfter: 5 * time.Second}, nil
	case "min-jitter":
		return &control.MinJitter{MinDwell: 300 * time.Millisecond, StaleAfter: 5 * time.Second}, nil
	case "static":
		return &control.Static{ID: 1}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// runLive is tangod's -transport udp main: bind, handshake, steer,
// report, shut down cleanly on signal or after -duration.
func runLive(o liveOptions) int {
	paths, err := udp.ParsePaths(o.Paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pol, err := livePolicy(o.Policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	reg := obs.NewRegistry()
	j := obs.NewJournal(4096)
	b, err := udp.New(udp.Config{Name: o.Site, Listen: o.Listen, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer b.Close()

	sw := dataplane.NewSwitch(b)
	sw.Instrument(reg, o.Site)
	mon := control.NewMonitor()
	mon.Instrument(reg, o.Site)

	// The handshake provisions everything: tunnels toward the peer's
	// endpoints, local endpoint ownership, and the measurement loop.
	// OnEstablished runs on the event goroutine, so the wiring below is
	// exactly the single-threaded wiring the simulator uses.
	var ctl *control.Controller
	var rep *control.Reporter
	var prb *workload.Prober
	established := make(chan struct{})
	sess := udp.NewSession(b, o.Site, paths)
	sess.OnEstablished = func(p *udp.Peer) {
		for _, ep := range sess.Endpoints() {
			b.AddAddr(ep)
		}
		for i, ps := range paths {
			sw.AddTunnel(&dataplane.Tunnel{
				PathID:     ps.ID,
				Name:       ps.Name,
				LocalAddr:  sess.SwitchAddr(),
				RemoteAddr: p.Endpoints[i],
				SrcPort:    uint16(41000 + i),
			})
		}
		mon.Attach(sw, func(id uint8) string {
			if int(id) >= 1 && int(id) <= len(p.Paths) {
				return p.Paths[id-1].Name
			}
			return fmt.Sprintf("path-%d", id)
		})
		ctl = control.NewController(b.Eng(), sw, pol)
		ctl.AttachFeedback(sw)
		ctl.Instrument(reg, j, o.Site)
		ctl.Start(o.DecideEvery)
		rep = control.NewReporter(b.Eng(), mon, sw, o.ReportEvery)
		rep.MaxAge = 5 * o.ReportEvery
		prb = workload.NewProber(b.Eng(), sw, sess.SwitchAddr(), p.SwitchAddr, o.ProbeInterval)
		close(established)
	}
	sess.OnError = func(err error) { fmt.Fprintf(os.Stderr, "tangod: session: %v\n", err) }

	b.Start()
	fmt.Printf("tangod: %s listening on %s (%d paths: %s)\n", o.Site, b.Addr(), len(paths), o.Paths)

	var srv *http.Server
	metricsAddr := ""
	if o.Metrics != "" {
		ln, err := net.Listen("tcp", o.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		metricsAddr = ln.Addr().String()
		srv = &http.Server{Handler: obs.Handler(reg, j)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		defer srv.Close()
		fmt.Printf("tangod: serving /metrics and /trace on %s\n", metricsAddr)
	}

	if o.AddrFile != "" {
		// JSON so harnesses learn both bound ports from one poll.
		blob, err := json.Marshal(map[string]string{"udp": b.Addr().String(), "metrics": metricsAddr})
		if err != nil {
			panic(err)
		}
		if err := writeFileAtomic(o.AddrFile, string(blob)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if o.Peer != "" {
		ua, err := net.ResolveUDPAddr("udp", o.Peer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Unmap 4-in-6 so the address family matches an IPv4-bound socket.
		ap := netip.AddrPortFrom(ua.AddrPort().Addr().Unmap(), ua.AddrPort().Port())
		b.Do(func() { sess.Dial(ap) })
	}

	select {
	case <-established:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "tangod: no peer established within 30s")
		return 1
	}
	fmt.Printf("tangod: established with %q\n", sess.Peer().Site)
	if o.ReadyFile != "" {
		if err := writeFileAtomic(o.ReadyFile, "ready"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var until <-chan time.Time
	if o.Duration > 0 {
		until = time.After(o.Duration)
	}
	status := time.NewTicker(o.Status)
	defer status.Stop()
loop:
	for {
		select {
		case <-status.C:
			printLiveStatus(b, ctl, mon)
		case s := <-sigc:
			fmt.Printf("tangod: %v, shutting down\n", s)
			break loop
		case <-until:
			break loop
		}
	}

	b.Do(func() {
		prb.Stop()
		rep.Stop()
		ctl.Stop()
		printLiveStatusLocked(b, ctl, mon)
	})
	return 0
}

// printLiveStatus snapshots the live stack under the event lock.
func printLiveStatus(b *udp.Backend, ctl *control.Controller, mon *control.Monitor) {
	b.Do(func() { printLiveStatusLocked(b, ctl, mon) })
}

// printLiveStatusLocked is printLiveStatus inside an existing Do.
func printLiveStatusLocked(b *udp.Backend, ctl *control.Controller, mon *control.Monitor) {
	st := b.Stats()
	fmt.Printf("%9v  tx %d rx %d frames; current path %d\n",
		time.Duration(b.Now()).Round(time.Second), st.TxFrames, st.RxFrames, ctl.Current())
	for _, e := range ctl.Estimates() {
		if !e.Valid {
			continue
		}
		fmt.Printf("            -> path %d  owd %9.3f ms  jitter %7.4f ms  n=%d (receiver clock domain)\n",
			e.ID, e.OWDMs, e.JitterMs, e.Samples)
	}
	for _, pm := range mon.Paths() {
		fmt.Printf("            <- %-7s mean %9.3f ms  n=%d\n", pm.Name, pm.Est.Value(), pm.OWD.N())
	}
}

// writeFileAtomic writes content and renames into place, so a polling
// reader never observes a partial file.
func writeFileAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
