// Command tangod runs a long-lived simulated Tango deployment and streams
// per-path statistics, like watching the paper's prototype live. Optional
// incidents can be scheduled to watch the controller react.
//
// Usage:
//
//	tangod [-seed N] [-hours 2] [-report 5m] [-policy min-delay|min-jitter|static]
//	       [-event none|route-shift|instability] [-event-at 1h]
//	       [-metrics :9090]
//
// With -metrics, tangod serves live observability over real HTTP while
// virtual time runs: GET /metrics is a Prometheus text scrape of every
// registered counter, gauge and histogram, and GET /trace?n=100 is a
// JSON tail of the structured trace journal (path switches, queue
// drops). All instruments are atomic, so scrapes never block the event
// loop.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"tango"
	"tango/internal/obs"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		hours   = flag.Float64("hours", 2, "virtual hours to run")
		report  = flag.Duration("report", 10*time.Minute, "virtual time between status reports")
		policy  = flag.String("policy", "min-delay", "path policy: min-delay, min-jitter, static")
		event   = flag.String("event", "none", "incident to inject on GTT NY->LA: none, route-shift, instability")
		eventAt = flag.Duration("event-at", time.Hour, "virtual time of the incident")
		metrics = flag.String("metrics", "", "serve Prometheus /metrics and JSON /trace on this address (e.g. :9090)")

		// -transport udp runs one real endpoint on a UDP socket instead
		// of the whole simulated deployment; see live.go.
		transport = flag.String("transport", "sim", "transport backend: sim (whole deployment, virtual time) or udp (one endpoint, real socket, wall time)")
		site      = flag.String("site", "site-a", "udp: site name (labels metrics, derives outer addresses)")
		listen    = flag.String("listen", "127.0.0.1:0", "udp: UDP bind address")
		peer      = flag.String("peer", "", "udp: peer socket address to dial; empty waits for a dialer")
		paths     = flag.String("paths", "NTT:12ms,GTT:30ms,Cogent:20ms", "udp: outgoing paths as NAME:DELAY,... (emulated one-way delays)")
		probeIv   = flag.Duration("probe-interval", 20*time.Millisecond, "udp: probe send interval per path")
		reportIv  = flag.Duration("report-every", 25*time.Millisecond, "udp: piggybacked report interval")
		decideIv  = flag.Duration("decide-every", 100*time.Millisecond, "udp: controller decision interval")
		duration  = flag.Duration("duration", 0, "udp: wall-clock run time; 0 runs until SIGINT/SIGTERM")
		addrFile  = flag.String("addr-file", "", "udp: write the bound socket address to this file")
		readyFile = flag.String("ready-file", "", "udp: write to this file once the pair is established")
		statusIv  = flag.Duration("status-every", 2*time.Second, "udp: wall-clock time between status prints")
	)
	flag.Parse()

	switch *transport {
	case "udp":
		os.Exit(runLive(liveOptions{
			Site: *site, Listen: *listen, Peer: *peer, Paths: *paths,
			Policy: *policy, Metrics: *metrics,
			ProbeInterval: *probeIv, ReportEvery: *reportIv, DecideEvery: *decideIv,
			Duration: *duration, AddrFile: *addrFile, ReadyFile: *readyFile, Status: *statusIv,
		}))
	case "sim":
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	var pol tango.Policy
	switch *policy {
	case "min-delay":
		pol = tango.PolicyMinDelay
	case "min-jitter":
		pol = tango.PolicyMinJitter
	case "static":
		pol = tango.PolicyStaticDefault
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	lab := tango.NewLab(tango.Options{Seed: *seed, PolicyNY: pol, PolicyLA: pol})
	fmt.Println("tangod: establishing (discovery, pinned prefixes, tunnels)...")
	if err := lab.Establish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range []*tango.Site{lab.NY(), lab.LA()} {
		s := s
		s.OnPathSwitch(func(at time.Duration, from, to string) {
			fmt.Printf("%9v  %s: controller switched %s -> %s\n", at.Round(time.Second), s.Name(), from, to)
		})
	}

	if *metrics != "" {
		reg := obs.NewRegistry()
		j := obs.NewJournal(4096)
		must(lab.Instrument(reg, j))
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: obs.Handler(reg, j)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		defer srv.Close()
		fmt.Printf("tangod: serving /metrics and /trace on %s\n", ln.Addr())
	}

	switch *event {
	case "route-shift":
		must(lab.InjectRouteShift("GTT", tango.NYtoLA, *eventAt, 10*time.Minute, 5*time.Millisecond))
		fmt.Printf("scheduled: GTT NY->LA +5ms internal route change at +%v for 10m\n", *eventAt)
	case "instability":
		must(lab.InjectInstability("GTT", tango.NYtoLA, *eventAt, 5*time.Minute, 0.05, 48*time.Millisecond))
		fmt.Printf("scheduled: GTT NY->LA instability window at +%v for 5m\n", *eventAt)
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown event %q\n", *event)
		os.Exit(2)
	}

	total := time.Duration(*hours * float64(time.Hour))
	for elapsed := time.Duration(0); elapsed < total; elapsed += *report {
		step := *report
		if total-elapsed < step {
			step = total - elapsed
		}
		lab.Run(step)
		printStatus(lab)
	}
	fmt.Println("tangod: done")
}

func printStatus(lab *tango.Lab) {
	fmt.Printf("%9v  status:\n", lab.Now().Round(time.Second))
	for _, s := range []*tango.Site{lab.NY(), lab.LA()} {
		fmt.Printf("           %s outgoing (measured at peer, raw clock domain):\n", s.Name())
		for _, p := range s.Paths() {
			mark := " "
			if p.Current {
				mark = "*"
			}
			fmt.Printf("            %s %-7s mean %9.3f ms  min %9.3f ms  jitter %7.4f ms  loss %5.3f%%  n=%d\n",
				mark, p.Provider, p.MeanOWDMs, p.MinOWDMs, p.JitterMs, p.LossRate*100, p.Samples)
		}
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
