package tango_test

import (
	"fmt"
	"time"

	"tango"
)

// Example_deployAndSteer brings up the paper's deployment, lets the
// measurement loop run, and shows the controller's choice. The run is
// fully deterministic, so the output is stable.
func Example_deployAndSteer() {
	lab := tango.NewLab(tango.Options{Seed: 42})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.Run(5 * time.Minute)

	for _, p := range lab.NY().Paths() {
		fmt.Printf("path %d via %s\n", p.ID, p.Provider)
	}
	fmt.Printf("data traffic rides %s\n", lab.NY().CurrentPath())
	// Output:
	// path 1 via NTT
	// path 2 via Telia
	// path 3 via GTT
	// path 4 via Level3
	// data traffic rides GTT
}

// Example_incident injects the paper's Figure 4 (middle) incident and
// watches the controller route around it using live one-way delays.
func Example_incident() {
	lab := tango.NewLab(tango.Options{Seed: 7})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.Run(3 * time.Minute) // settle on the best path

	if err := lab.InjectRouteShift("GTT", tango.NYtoLA, time.Minute, 10*time.Minute, 5*time.Millisecond); err != nil {
		panic(err)
	}
	before := lab.NY().CurrentPath()
	lab.Run(5 * time.Minute) // into the event
	during := lab.NY().CurrentPath()
	lab.Run(12 * time.Minute) // event over
	after := lab.NY().CurrentPath()
	fmt.Printf("before: %s, during: %s, after: %s\n", before, during, after)
	// Output:
	// before: GTT, during: Telia, after: GTT
}
