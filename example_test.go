package tango_test

import (
	"fmt"
	"sort"
	"time"

	"tango"
)

// Example_deployAndSteer brings up the paper's deployment, lets the
// measurement loop run, and shows the controller's choice. The run is
// fully deterministic, so the output is stable.
func Example_deployAndSteer() {
	lab := tango.NewLab(tango.Options{Seed: 42})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.Run(5 * time.Minute)

	for _, p := range lab.NY().Paths() {
		fmt.Printf("path %d via %s\n", p.ID, p.Provider)
	}
	fmt.Printf("data traffic rides %s\n", lab.NY().CurrentPath())
	// Output:
	// path 1 via NTT
	// path 2 via Telia
	// path 3 via GTT
	// path 4 via Level3
	// data traffic rides GTT
}

// Example_weightedSteering declares trunk capacities on the default
// three-site mesh and lets the capacity-aware optimizer split a demand
// across the ny-chi pair's discovered paths, instead of the controller's
// winner-take-all choice. Everything is a pure function of the seeds, so
// the placement is stable.
func Example_weightedSteering() {
	mesh := tango.NewMesh(tango.MeshOptions{Seed: 11})
	if err := mesh.Establish(); err != nil {
		panic(err)
	}
	// ny and chi share two providers; make NTT scarce at both ends so
	// the best split must lean on Telia.
	for _, site := range []string{"ny", "chi"} {
		if err := mesh.SetTrunkCapacity(site, "NTT", 4e6); err != nil {
			panic(err)
		}
		if err := mesh.SetTrunkCapacity(site, "Telia", 16e6); err != nil {
			panic(err)
		}
	}
	maxUtil, placed, err := mesh.OptimizeSteering(1, []tango.SteeringDemand{
		{Src: "ny", Dst: "chi", Class: 0, RateBps: 8e6},
		{Src: "chi", Dst: "ny", Class: 0, RateBps: 8e6},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("predicted max trunk utilization: %.3f\n", maxUtil)
	for _, p := range placed {
		names := make([]string, 0, len(p.Weights))
		for n := range p.Weights {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%s->%s:", p.Demand.Src, p.Demand.Dst)
		for _, n := range names {
			fmt.Printf(" %s %.3f", n, p.Weights[n])
		}
		fmt.Println()
	}
	// Output:
	// predicted max trunk utilization: 0.438
	// ny->chi: NTT 0.125 Telia 0.875
	// chi->ny: NTT 0.125 Telia 0.875
}

// Example_incident injects the paper's Figure 4 (middle) incident and
// watches the controller route around it using live one-way delays.
func Example_incident() {
	lab := tango.NewLab(tango.Options{Seed: 7})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.Run(3 * time.Minute) // settle on the best path

	if err := lab.InjectRouteShift("GTT", tango.NYtoLA, time.Minute, 10*time.Minute, 5*time.Millisecond); err != nil {
		panic(err)
	}
	before := lab.NY().CurrentPath()
	lab.Run(5 * time.Minute) // into the event
	during := lab.NY().CurrentPath()
	lab.Run(12 * time.Minute) // event over
	after := lab.NY().CurrentPath()
	fmt.Printf("before: %s, during: %s, after: %s\n", before, during, after)
	// Output:
	// before: GTT, during: Telia, after: GTT
}
