// Droneops is the paper's §2.2 motivating scenario: an access network
// (here, the NY site) streams drone telemetry to analytics VMs in a
// cost-effective cloud (the LA site) and needs predictable low latency.
// Mid-run, GTT — the best path — suffers the paper's Figure 4 incidents:
// first a +5 ms internal route change, later a 5-minute instability
// window with latency spikes. We run the same timeline twice, once pinned
// to the static best path and once with Tango's adaptive controller, and
// compare what the drone application experiences.
//
//	go run ./examples/droneops
package main

import (
	"fmt"
	"sort"
	"time"

	"tango"
)

const (
	telemetryPort   = 9100
	telemetryPeriod = 20 * time.Millisecond
	warmup          = 5 * time.Minute
	phase           = 10 * time.Minute
)

func main() {
	fmt.Println("drone telemetry NY -> LA through two GTT incidents")
	staticLat := run("BGP default path (no Tango)", tango.PolicyStaticDefault)
	delayLat := run("Tango adaptive (min-delay policy)", tango.PolicyMinDelay)
	jitterLat := run("Tango adaptive (min-jitter policy)", tango.PolicyMinJitter)

	fmt.Println("\ntelemetry latency during the incidents (ground truth):")
	fmt.Printf("  %-34s %10s %10s %10s\n", "strategy", "mean", "p99", "max")
	for _, row := range []struct {
		name string
		lat  []time.Duration
	}{
		{"BGP default (no Tango)", staticLat},
		{"Tango min-delay", delayLat},
		{"Tango min-jitter", jitterLat},
	} {
		mean, p99, max := stats(row.lat)
		fmt.Printf("  %-34s %10v %10v %10v\n", row.name, mean, p99, max)
	}
	fmt.Println("\nreading the table: the BGP default (NTT) never sees the GTT incidents")
	fmt.Println("but pays its constant ~30% delay premium. Min-delay tracks the lowest")
	fmt.Println("mean, which keeps it near GTT during the spike window — great mean,")
	fmt.Println("long tail. Min-jitter pays ~3 ms of mean to evacuate the spiky path")
	fmt.Println("entirely, collapsing p99/max — the trade §5 of the paper describes.")
}

// run executes one timeline and returns per-packet latencies of telemetry
// sent during the two incident windows.
func run(label string, policy tango.Policy) []time.Duration {
	fmt.Printf("\n=== %s\n", label)
	lab := tango.NewLab(tango.Options{Seed: 7, PolicyNY: policy})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.NY().OnPathSwitch(func(at time.Duration, from, to string) {
		fmt.Printf("  [%v] controller: %s -> %s\n", at.Round(time.Second), from, to)
	})
	lab.Run(warmup) // controllers settle (adaptive lands on GTT)

	// Telemetry stream with ground-truth latency accounting.
	sentAt := map[uint32]time.Duration{}
	var latencies []time.Duration
	var inWindow func(t time.Duration) bool

	src, dst := lab.NY().HostAddr(2), lab.LA().HostAddr(2)
	var seq uint32
	lab.LA().OnReceive(telemetryPort, func(d tango.Delivery) {
		if len(d.Payload) < 4 {
			return
		}
		s := uint32(d.Payload[0])<<24 | uint32(d.Payload[1])<<16 | uint32(d.Payload[2])<<8 | uint32(d.Payload[3])
		if t0, ok := sentAt[s]; ok {
			if inWindow(t0) {
				latencies = append(latencies, d.At-t0)
			}
			delete(sentAt, s)
		}
	})

	// The two incidents, at fixed offsets from "now".
	base := lab.Now()
	shiftAt := warmup
	instAt := warmup + phase
	must(lab.InjectRouteShift("GTT", tango.NYtoLA, shiftAt, 8*time.Minute, 5*time.Millisecond))
	must(lab.InjectInstability("GTT", tango.NYtoLA, instAt, 5*time.Minute, 0.15, 48*time.Millisecond))
	inWindow = func(t time.Duration) bool {
		rel := t - base
		return (rel >= shiftAt && rel < shiftAt+8*time.Minute) ||
			(rel >= instAt && rel < instAt+5*time.Minute)
	}

	// Drive the timeline, emitting telemetry every 20 ms.
	end := lab.Now() + warmup + 2*phase
	for lab.Now() < end {
		payload := []byte{byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq), 'd', 'r', 'o', 'n', 'e'}
		sentAt[seq] = lab.Now()
		seq++
		if err := lab.NY().Send(src, dst, telemetryPort, telemetryPort, payload); err != nil {
			panic(err)
		}
		lab.Run(telemetryPeriod)
	}
	fmt.Printf("  sent %d telemetry packets; final path: %s\n", seq, lab.NY().CurrentPath())
	return latencies
}

func stats(lat []time.Duration) (mean, p99, max time.Duration) {
	if len(lat) == 0 {
		return
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return (sum / time.Duration(len(s))).Round(10 * time.Microsecond),
		s[len(s)*99/100].Round(10 * time.Microsecond),
		s[len(s)-1].Round(10 * time.Microsecond)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
