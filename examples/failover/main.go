// Failover shows the speed gap between data-driven and control-plane
// recovery. The paper's architecture measures every exposed path
// continuously; when the active path blackholes, the sender's estimates
// go stale within seconds and the controller evacuates — no BGP
// convergence involved (BGP, with its several-minute timers, may never
// even notice a data-plane-only failure).
//
// We blackhole GTT's NY->LA trunk for two minutes while streaming
// heartbeats, and measure the outage the application observes.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"tango"
)

const (
	hbPort   = 9300
	hbPeriod = 10 * time.Millisecond
)

func main() {
	lab := tango.NewLab(tango.Options{Seed: 23})
	fmt.Println("establishing...")
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.NY().OnPathSwitch(func(at time.Duration, from, to string) {
		fmt.Printf("  [%v] NY controller: %s -> %s\n", at.Round(100*time.Millisecond), from, to)
	})
	lab.Run(3 * time.Minute)
	fmt.Printf("steady state: NY data traffic on %s\n", lab.NY().CurrentPath())

	// Heartbeats NY->LA; record arrival gaps.
	var lastArrival time.Duration
	var worstGap time.Duration
	received := 0
	lab.LA().OnReceive(hbPort, func(d tango.Delivery) {
		if lastArrival != 0 && d.At-lastArrival > worstGap {
			worstGap = d.At - lastArrival
		}
		lastArrival = d.At
		received++
	})

	// Blackhole the active path (100% loss) for 2 minutes, 30s from now.
	failAt := lab.Now() + 30*time.Second
	if err := lab.InjectLossBurst("GTT", tango.NYtoLA, 30*time.Second, 2*time.Minute, 1.0); err != nil {
		panic(err)
	}
	fmt.Println("scheduled: GTT NY->LA blackhole for 2 minutes, starting in 30s")

	src, dst := lab.NY().HostAddr(4), lab.LA().HostAddr(4)
	sent := 0
	end := lab.Now() + 5*time.Minute
	var recoveredAt time.Duration
	for lab.Now() < end {
		if err := lab.NY().Send(src, dst, hbPort, hbPort, []byte("hb")); err != nil {
			panic(err)
		}
		sent++
		lab.Run(hbPeriod)
		if recoveredAt == 0 && lab.Now() > failAt && lastArrival > failAt {
			recoveredAt = lastArrival
		}
	}

	fmt.Printf("\nheartbeats: sent %d, received %d (%.2f%% lost)\n",
		sent, received, 100*float64(sent-received)/float64(sent))
	fmt.Printf("worst application outage: %v\n", worstGap.Round(10*time.Millisecond))
	fmt.Printf("recovery: controller abandoned the dead path once its estimate went\n")
	fmt.Printf("stale (~10 s policy staleness + decision cadence); BGP never saw the\n")
	fmt.Printf("failure at all — the prefix stayed advertised the whole time.\n")
	if lab.NY().CurrentPath() == "GTT" {
		fmt.Println("and after the blackhole lifted, traffic returned to GTT.")
	}
}
