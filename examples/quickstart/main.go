// Quickstart: bring up the paper's two-datacenter deployment, watch
// discovery expose four wide-area paths in each direction, and see the
// controller move traffic off the BGP default onto the fastest path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"tango"
)

func main() {
	// One seed = one reproducible universe.
	lab := tango.NewLab(tango.Options{Seed: 42})

	fmt.Println("establishing Tango between Vultr NY and LA (virtual time)...")
	if err := lab.Establish(); err != nil {
		panic(err)
	}

	// Log every controller decision as it happens.
	for _, site := range []*tango.Site{lab.NY(), lab.LA()} {
		site := site
		site.OnPathSwitch(func(at time.Duration, from, to string) {
			fmt.Printf("  [%v] %s moved traffic %s -> %s\n", at.Round(time.Second), site.Name(), from, to)
		})
	}

	// Let probes flow and the controllers settle.
	lab.Run(5 * time.Minute)

	fmt.Println("\nNY's outgoing paths (one-way delay measured at LA; the raw values")
	fmt.Println("include the constant clock offset between the sites — differences")
	fmt.Println("between paths are what matter):")
	for _, p := range lab.NY().Paths() {
		mark := "  "
		if p.Current {
			mark = "->"
		}
		fmt.Printf(" %s path %d via %-7s AS path [%s]  mean %9.3f ms  jitter %.4f ms\n",
			mark, p.ID, p.Provider, p.ASPath, p.MeanOWDMs, p.JitterMs)
	}

	// Send an application packet and watch it arrive through the tunnel.
	got := make(chan tango.Delivery, 1)
	lab.LA().OnReceive(9000, func(d tango.Delivery) {
		select {
		case got <- d:
		default:
		}
	})
	src, dst := lab.NY().HostAddr(1), lab.LA().HostAddr(1)
	if err := lab.NY().Send(src, dst, 8000, 9000, []byte("hello from NY")); err != nil {
		panic(err)
	}
	lab.Run(time.Second)
	select {
	case d := <-got:
		fmt.Printf("\nLA received %q from %v (tunnelled over %s)\n",
			d.Payload, d.Src, lab.NY().CurrentPath())
	default:
		fmt.Println("\npacket did not arrive!")
	}
}
