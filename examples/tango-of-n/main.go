// Tango-of-N demonstrates the paper's §6 direction: pairwise Tango as the
// building block of a RON-like overlay. Three sites' POPs attach to
// different transit providers:
//
//	ny:  NTT, Telia        la:  NTT, GTT        chi: NTT, Telia, GTT
//
// NY and LA share only NTT, so the direct NY<->LA Tango pair exposes a
// single wide-area path — nothing to optimize over, exactly the situation
// §2 motivates. CHI shares a fast provider with each site, so composing
// two Tango pairs (NY<->CHI, CHI<->LA) into a relay exposes a second,
// fully disjoint route. When NTT suffers an internal route change, the
// direct pair can only ride it out; the overlay routes around it.
//
// This example uses the library's building blocks directly (the top-level
// tango.Lab is the two-site deployment; N-site composition is future
// work per the paper).
//
//	go run ./examples/tango-of-n
package main

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/core"
	"tango/internal/events"
	"tango/internal/packet"
	"tango/internal/topo"
)

const (
	appPort   = 9400
	relayPort = 9401
	appPeriod = 50 * time.Millisecond
)

func main() {
	t := topo.NewTriScenario(31)
	t.Run(5 * time.Minute)

	mk := func(a, b string) *core.Pair {
		spec := func(site, peer string) core.SiteSpec {
			key := site + ":" + peer
			return core.SiteSpec{
				Name:        key,
				Edge:        t.Edge(site, peer),
				POPAS:       t.POPs[site].ASN,
				Block:       t.Block[key],
				HostPrefix:  t.HostPrefix[key],
				ProbePrefix: t.Probe[key],
			}
		}
		p := core.NewPair(core.PairConfig{
			A: spec(a, b), B: spec(b, a),
			ProbeInterval: 10 * time.Millisecond,
			DecideEvery:   time.Second,
			NameFor:       topo.TriProviderName,
		})
		p.Establish()
		return p
	}
	fmt.Println("establishing three pairwise Tango deployments...")
	direct := mk("ny", "la")
	nyChi := mk("ny", "chi")
	chiLa := mk("chi", "la")
	for _, p := range []*core.Pair{direct, nyChi, chiLa} {
		if !p.RunUntilReady(2 * time.Hour) {
			panic("pair did not establish")
		}
	}

	show := func(label string, p *core.Pair) {
		names := make([]string, 0, len(p.A.OutPaths))
		for _, dp := range p.A.OutPaths {
			names = append(names, dp.ProviderName)
		}
		fmt.Printf("  %-9s exposes %d path(s): %v\n", label, len(names), names)
	}
	show("ny<->la", direct)
	show("ny<->chi", nyChi)
	show("chi<->la", chiLa)

	// CHI relay: packets arriving on the chi:ny server tagged for LA are
	// re-sent through the chi:la server's pair (an intra-DC hand-off).
	relayRecv(nyChi.B, chiLa) // nyChi.B is the chi:ny site

	// Ground-truth latency accounting for both routes.
	sentAt := map[uint32]time.Duration{}
	now := func() time.Duration { return t.B.W.Now() }
	directW, relayW := newWindow(), newWindow()
	sinkApp(direct.B, func(seq uint32) { // direct deliveries at la:ny
		if t0, ok := sentAt[seq]; ok {
			directW.add(now() - t0)
			delete(sentAt, seq)
		}
	})
	sinkApp(chiLa.B, func(seq uint32) { // relayed deliveries at la:chi
		if t0, ok := sentAt[seq]; ok {
			relayW.add(now() - t0)
			delete(sentAt, seq)
		}
	})
	// The incident: NTT's internal route toward LA lengthens by 8 ms
	// for 10 minutes — the direct pair's only path.
	lead := 3 * time.Minute
	eventDur := 10 * time.Minute
	(&events.RouteShift{
		Line:     t.Trunk["la"]["NTT"],
		At:       t.B.W.Now() + lead,
		Duration: eventDur,
		Delta:    8 * time.Millisecond,
	}).Schedule(t.B.Eng())
	fmt.Printf("\nscheduled: +8 ms NTT internal route change toward LA (the direct pair's only path)\n\n")

	var seq uint32
	phase := func(label string, dur time.Duration) {
		directW.reset()
		relayW.reset()
		end := t.B.W.Now() + dur
		for t.B.W.Now() < end {
			// One packet down each route per period.
			sentAt[seq] = t.B.W.Now()
			sendDirect(direct.A, seq)
			seq++
			sentAt[seq] = t.B.W.Now()
			sendViaRelay(nyChi.A, seq)
			seq++
			t.Run(appPeriod)
		}
		d, r := directW.mean(), relayW.mean()
		best := "direct"
		if r < d {
			best = "relay via CHI"
		}
		fmt.Printf("  %-22s direct %8.2f ms   relay via CHI %8.2f ms   -> overlay picks %s\n",
			label, ms(d), ms(r), best)
	}
	phase("before incident", lead)
	phase("during incident", eventDur-time.Minute)
	t.Run(3 * time.Minute) // let the reroute settle back
	phase("after incident", 2*time.Minute)

	fmt.Println("\na pair with one path has no choices; an overlay of pairs does (§6).")
}

// ---- app plumbing ----

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

type window struct {
	sum time.Duration
	n   int
}

func newWindow() *window              { return &window{} }
func (w *window) add(d time.Duration) { w.sum += d; w.n++ }
func (w *window) reset()              { w.sum, w.n = 0, 0 }
func (w *window) mean() time.Duration {
	if w.n == 0 {
		return 0
	}
	return w.sum / time.Duration(w.n)
}

func payload(seq uint32) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, seq)
	return b
}

// sendDirect sends an app packet from ny:la's host space to la:ny's.
func sendDirect(s *core.Site, seq uint32) {
	sendUDP(s, s.Peer(), appPort, payload(seq))
}

// sendViaRelay sends from ny:chi's host space to chi:ny, tagged for relay.
func sendViaRelay(s *core.Site, seq uint32) {
	sendUDP(s, s.Peer(), relayPort, payload(seq))
}

// relayRecv wires the CHI relay: relay-tagged packets arriving at the
// chi:ny site are re-sent through the chi:la pair.
func relayRecv(chiNY *core.Site, chiLa *core.Pair) {
	chiNY.AddSink(func(inner []byte) bool {
		seq, ok := parseApp(inner, relayPort)
		if !ok {
			return false
		}
		sendUDP(chiLa.A, chiLa.A.Peer(), appPort, payload(seq))
		return true
	})
}

// sinkApp collects app-port deliveries at a site.
func sinkApp(site *core.Site, fn func(seq uint32)) {
	site.AddSink(func(inner []byte) bool {
		seq, ok := parseApp(inner, appPort)
		if !ok {
			return false
		}
		fn(seq)
		return true
	})
}

func parseApp(inner []byte, port uint16) (uint32, bool) {
	// IPv6(40) + UDP(8): dst port at 42, payload at 48.
	if len(inner) < 52 || inner[0]>>4 != 6 || inner[6] != 17 {
		return 0, false
	}
	if binary.BigEndian.Uint16(inner[42:44]) != port {
		return 0, false
	}
	return binary.BigEndian.Uint32(inner[48:52]), true
}

// sendUDP builds and sends an inner UDP packet between the two sites'
// host prefixes through src's border switch.
func sendUDP(src, dst *core.Site, port uint16, pay []byte) {
	srcIP, err := src.Spec.HostPrefix.Host(7)
	if err != nil {
		panic(err)
	}
	dstIP, err := dst.Spec.HostPrefix.Host(7)
	if err != nil {
		panic(err)
	}
	pkt := buildUDP(srcIP, dstIP, port, pay)
	src.Send(pkt)
}

// buildUDP serializes an inner IPv6/UDP packet.
func buildUDP(src, dst netip.Addr, port uint16, pay []byte) []byte {
	buf := packet.NewSerializeBuffer()
	p := packet.Payload(pay)
	udp := &packet.UDP{SrcPort: port, DstPort: port}
	udp.SetNetworkForChecksum(src, dst)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &p); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
