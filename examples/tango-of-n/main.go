// Tango-of-N demonstrates the paper's §6 direction: pairwise Tango as the
// building block of a RON-like overlay, now a first-class deployment via
// tango.NewMesh. Three sites' POPs attach to different transit providers:
//
//	ny:  NTT, Telia        la:  NTT, GTT        chi: NTT, Telia, GTT
//
// NY and LA share only NTT, so the direct NY<->LA Tango pair exposes a
// single wide-area path — nothing to optimize over, exactly the situation
// §2 motivates. CHI shares a fast provider with each site, so the mesh
// composes the NY<->CHI and CHI<->LA pairs into a second, fully disjoint
// route and keeps both scored from live per-segment measurements. When
// NTT suffers an internal route change, the direct pair can only ride it
// out; the overlay routes around it.
//
//	go run ./examples/tango-of-n
package main

import (
	"encoding/binary"
	"fmt"
	"time"

	"tango"
)

const (
	appPort   = 9400
	appPeriod = 50 * time.Millisecond
)

func main() {
	mesh := tango.NewMesh(tango.MeshOptions{Seed: 31})
	fmt.Println("establishing three pairwise Tango deployments...")
	if err := mesh.Establish(); err != nil {
		panic(err)
	}

	for _, pair := range [][2]string{{"ny", "la"}, {"ny", "chi"}, {"chi", "la"}} {
		paths, err := mesh.Paths(pair[0], pair[1])
		if err != nil {
			panic(err)
		}
		names := make([]string, 0, len(paths))
		for _, p := range paths {
			names = append(names, p.Provider)
		}
		fmt.Printf("  %s<->%s exposes %d path(s): %v\n", pair[0], pair[1], len(names), names)
	}
	mesh.Run(2 * time.Minute) // let probes feed every segment's estimate

	fmt.Println("\nend-to-end routes ny->la (best first):")
	for _, r := range mesh.Routes("ny", "la") {
		kind := "direct"
		if r.Relayed() {
			kind = "relayed"
		}
		fmt.Printf("  %-14s %-8s score %7.2f ms\n", r, kind, r.OWDMs)
	}

	// Ground-truth latency accounting per route, fed by sequence-stamped
	// app packets; deliveries land at LA whichever member received them.
	sentAt := map[uint32]time.Duration{}
	onRoute := map[uint32]bool{} // seq -> was sent on the relayed route
	directW, relayW := newWindow(), newWindow()
	mesh.OnReceive("la", appPort, func(d tango.Delivery) {
		seq := binary.BigEndian.Uint32(d.Payload)
		t0, ok := sentAt[seq]
		if !ok {
			return
		}
		delete(sentAt, seq)
		if onRoute[seq] {
			relayW.add(d.At - t0)
		} else {
			directW.add(d.At - t0)
		}
		delete(onRoute, seq)
	})

	// The incident: NTT's internal route toward LA lengthens by 8 ms for
	// 10 minutes — the direct pair's only path.
	lead := 3 * time.Minute
	eventDur := 10 * time.Minute
	if err := mesh.InjectRouteShift("la", "NTT", lead, eventDur, 8*time.Millisecond); err != nil {
		panic(err)
	}
	fmt.Printf("\nscheduled: +8 ms NTT internal route change toward LA (the direct pair's only path)\n\n")

	routes := mesh.Routes("ny", "la")
	var direct, relayed tango.Route
	for _, r := range routes {
		if r.Relayed() {
			relayed = r
		} else {
			direct = r
		}
	}

	var seq uint32
	phase := func(label string, dur time.Duration) {
		directW.reset()
		relayW.reset()
		end := mesh.Now() + dur
		for mesh.Now() < end {
			// One packet down each route per period.
			for _, r := range []tango.Route{direct, relayed} {
				sentAt[seq] = mesh.Now()
				onRoute[seq] = r.Relayed()
				if err := mesh.Send(r, appPort, appPort, payload(seq)); err != nil {
					panic(err)
				}
				seq++
			}
			mesh.Run(appPeriod)
		}
		d, r := directW.mean(), relayW.mean()
		best, _ := mesh.BestRoute("ny", "la")
		pick := "direct"
		if best.Relayed() {
			pick = "relay via " + best.Via[0]
		}
		fmt.Printf("  %-22s direct %8.2f ms   relay via CHI %8.2f ms   -> overlay picks %s\n",
			label, ms(d), ms(r), pick)
	}
	phase("before incident", lead)
	phase("during incident", eventDur-time.Minute)
	mesh.Run(3 * time.Minute) // let the reroute settle back
	phase("after incident", 2*time.Minute)

	fwd, _ := mesh.RelayStats("chi")
	fmt.Printf("\nchi relayed %d packets end-to-end.\n", fwd)
	fmt.Println("a pair with one path has no choices; an overlay of pairs does (§6).")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

type window struct {
	sum time.Duration
	n   int
}

func newWindow() *window              { return &window{} }
func (w *window) add(d time.Duration) { w.sum += d; w.n++ }
func (w *window) reset()              { w.sum, w.n = 0, 0 }
func (w *window) mean() time.Duration {
	if w.n == 0 {
		return 0
	}
	return w.sum / time.Duration(w.n)
}

func payload(seq uint32) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, seq)
	return b
}
