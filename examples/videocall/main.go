// Videocall models an interactive application where delay *variation*
// hurts more than the mean: a video call plays frames through a jitter
// buffer, and every frame arriving after its playout deadline is a glitch.
// The paper's §5 jitter measurements (GTT ~0.01 ms vs Telia ~0.33 ms in a
// 1-second rolling window) are exactly what this workload cares about.
//
// We stream 50 frames/s from LA to NY under each policy and count
// deadline misses with a tight 3 ms jitter budget over the path's own
// minimum — comparing the BGP default, the min-delay policy, and the
// jitter-aware policy while Telia flaps and GTT suffers a brief
// instability window.
//
//	go run ./examples/videocall
package main

import (
	"fmt"
	"time"

	"tango"
)

const (
	framePort   = 9200
	framePeriod = 20 * time.Millisecond // 50 fps
	runtime     = 12 * time.Minute
	warmup      = 3 * time.Minute
)

func main() {
	fmt.Println("videocall LA -> NY: frame deadline misses per policy")
	fmt.Printf("  %-28s %10s %10s %10s %12s\n", "policy", "frames", "misses", "miss rate", "mean latency")
	for _, pc := range []struct {
		name   string
		policy tango.Policy
	}{
		{"BGP default (no Tango)", tango.PolicyStaticDefault},
		{"Tango min-delay", tango.PolicyMinDelay},
		{"Tango min-jitter", tango.PolicyMinJitter},
	} {
		frames, misses, mean := run(pc.policy)
		fmt.Printf("  %-28s %10d %10d %9.3f%% %12v\n",
			pc.name, frames, misses, 100*float64(misses)/float64(frames), mean.Round(10*time.Microsecond))
	}
	fmt.Println("\nthe trade: the BGP default never glitches but pays its constant delay")
	fmt.Println("premium on every frame; min-delay gets the lowest latency but rides the")
	fmt.Println("unstable path through the incident; min-jitter buys near-default")
	fmt.Println("smoothness at near-minimum latency — per-application path choice is the")
	fmt.Println("point of exposing multiple paths (paper §3, §5).")
}

func run(policy tango.Policy) (frames, misses int, meanLat time.Duration) {
	lab := tango.NewLab(tango.Options{Seed: 11, PolicyLA: policy})
	if err := lab.Establish(); err != nil {
		panic(err)
	}
	lab.Run(warmup)

	// A mid-call instability window on GTT in the LA->NY direction.
	if err := lab.InjectInstability("GTT", tango.LAtoNY, 3*time.Minute, 4*time.Minute, 0.10, 40*time.Millisecond); err != nil {
		panic(err)
	}

	// Jitter buffer model: the receiver adapts its playout point to the
	// minimum latency over the last ~5 seconds of frames (so it re-syncs
	// after a path switch); a frame arriving more than the jitter budget
	// above that floor is a glitch.
	const budget = 3 * time.Millisecond
	const window = 250 // frames (~5 s at 50 fps)
	var recent []time.Duration
	sentAt := map[uint32]time.Duration{}
	lab.NY().OnReceive(framePort, func(d tango.Delivery) {
		if len(d.Payload) < 4 {
			return
		}
		s := uint32(d.Payload[0])<<24 | uint32(d.Payload[1])<<16 | uint32(d.Payload[2])<<8 | uint32(d.Payload[3])
		t0, ok := sentAt[s]
		if !ok {
			return
		}
		delete(sentAt, s)
		lat := d.At - t0
		meanLat += lat
		recent = append(recent, lat)
		if len(recent) > window {
			recent = recent[1:]
		}
		floor := recent[0]
		for _, v := range recent {
			if v < floor {
				floor = v
			}
		}
		frames++
		if lat > floor+budget {
			misses++
		}
	})

	src, dst := lab.LA().HostAddr(3), lab.NY().HostAddr(3)
	var seq uint32
	end := lab.Now() + runtime
	for lab.Now() < end {
		payload := []byte{byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq), 'f', 'r', 'a', 'm', 'e'}
		sentAt[seq] = lab.Now()
		seq++
		if err := lab.LA().Send(src, dst, framePort, framePort, payload); err != nil {
			panic(err)
		}
		lab.Run(framePeriod)
	}
	if frames > 0 {
		meanLat /= time.Duration(frames)
	}
	return frames, misses, meanLat
}
