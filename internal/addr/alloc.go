package addr

import (
	"fmt"
	"net/netip"
)

// Alloc hands out consecutive subnets and host addresses from a parent
// block. The paper's deployment carves an institutional IPv6 allocation
// into four /48s per site (one per exposed path) plus host-addressing
// prefixes; Alloc is the bookkeeping for that.
type Alloc struct {
	parent  Prefix
	nextSub map[int]int // subnet length -> next index
}

// NewAlloc returns an allocator over the given parent block.
func NewAlloc(parent Prefix) *Alloc {
	return &Alloc{parent: parent, nextSub: make(map[int]int)}
}

// Parent returns the block being allocated from.
func (a *Alloc) Parent() Prefix { return a.parent }

// NextSubnet returns the next unused subnet of the given length.
// Subnets of different lengths are allocated from independent counters;
// callers that mix lengths should allocate all of one length first or
// accept possible overlap (the Tango scenarios use a single length per
// allocator, typically /48).
func (a *Alloc) NextSubnet(bits int) (Prefix, error) {
	idx := a.nextSub[bits]
	p, err := a.parent.Subnet(bits, idx)
	if err != nil {
		return Prefix{}, fmt.Errorf("addr: allocator exhausted: %w", err)
	}
	a.nextSub[bits] = idx + 1
	return p, nil
}

// MustNextSubnet is NextSubnet panicking on exhaustion; for scenario setup.
func (a *Alloc) MustNextSubnet(bits int) Prefix {
	p, err := a.NextSubnet(bits)
	if err != nil {
		panic(err)
	}
	return p
}

// HostAlloc hands out consecutive host addresses within one prefix,
// starting at .1 (index 0 is the network address, conventionally skipped).
type HostAlloc struct {
	p    Prefix
	next uint64
}

// NewHostAlloc returns a host allocator for prefix p.
func NewHostAlloc(p Prefix) *HostAlloc { return &HostAlloc{p: p, next: 1} }

// Next returns the next unused host address.
func (h *HostAlloc) Next() (netip.Addr, error) {
	ip, err := h.p.Host(h.next)
	if err != nil {
		return netip.Addr{}, err
	}
	h.next++
	return ip, nil
}

// MustNext is Next panicking on exhaustion; for scenario setup.
func (h *HostAlloc) MustNext() netip.Addr {
	ip, err := h.Next()
	if err != nil {
		panic(err)
	}
	return ip
}
