// Package addr provides IP addressing for the Tango simulator: prefix
// arithmetic, a longest-prefix-match routing trie, and address allocators.
//
// Tango's central trick is to "rethink prefixes as routes": the same edge
// network is reachable via several prefixes, each of which propagates over
// a different interdomain path. That makes prefix handling — containment,
// subnetting an institutional IPv6 block into per-tunnel /48s, and
// longest-prefix-match lookup in router FIBs — a first-class substrate.
package addr

import (
	"fmt"
	"net/netip"
)

// Prefix is an IP prefix in canonical (masked) form. It wraps netip.Prefix
// and guarantees the address is the network address (host bits zero), so
// Prefix values are comparable with == and usable as map keys.
type Prefix struct {
	p netip.Prefix
}

// MustParsePrefix parses a CIDR string, panicking on error. For use in
// tests, scenario construction, and package-level variables.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses a CIDR string into a canonical Prefix.
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{p.Masked()}, nil
}

// PrefixFrom builds a canonical Prefix from an address and length.
func PrefixFrom(ip netip.Addr, bits int) (Prefix, error) {
	p := netip.PrefixFrom(ip, bits)
	if !p.IsValid() {
		return Prefix{}, fmt.Errorf("addr: invalid prefix %v/%d", ip, bits)
	}
	return Prefix{p.Masked()}, nil
}

// IsValid reports whether p is a real prefix (the zero Prefix is not).
func (p Prefix) IsValid() bool { return p.p.IsValid() }

// Addr returns the network address.
func (p Prefix) Addr() netip.Addr { return p.p.Addr() }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return p.p.Bits() }

// Is6 reports whether the prefix is IPv6 (and not an IPv4-mapped address).
func (p Prefix) Is6() bool { return p.p.Addr().Is6() && !p.p.Addr().Is4In6() }

// Contains reports whether the prefix contains ip.
func (p Prefix) Contains(ip netip.Addr) bool { return p.p.Contains(ip) }

// Covers reports whether p contains the entire prefix q (p is equal to or
// less specific than q, over the same address family).
func (p Prefix) Covers(q Prefix) bool {
	return p.Bits() <= q.Bits() && p.p.Contains(q.p.Addr())
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool { return p.p.Overlaps(q.p) }

// String returns the CIDR notation.
func (p Prefix) String() string { return p.p.String() }

// Std returns the underlying netip.Prefix.
func (p Prefix) Std() netip.Prefix { return p.p }

// Compare orders prefixes by address then by length; usable for sorting
// route tables into a stable display order.
func (p Prefix) Compare(q Prefix) int {
	if c := p.p.Addr().Compare(q.p.Addr()); c != 0 {
		return c
	}
	switch {
	case p.Bits() < q.Bits():
		return -1
	case p.Bits() > q.Bits():
		return 1
	}
	return 0
}

// Subnet returns the idx-th subnet of length newBits carved out of p.
// For example Subnet(2001:db8::/32, 48, 5) = 2001:db8:5::/48.
func (p Prefix) Subnet(newBits, idx int) (Prefix, error) {
	if newBits < p.Bits() || newBits > p.p.Addr().BitLen() {
		return Prefix{}, fmt.Errorf("addr: cannot carve /%d from %v", newBits, p)
	}
	if idx < 0 {
		return Prefix{}, fmt.Errorf("addr: negative subnet index")
	}
	span := newBits - p.Bits()
	if span < 64 && uint64(idx) >= uint64(1)<<uint(span) {
		return Prefix{}, fmt.Errorf("addr: subnet index %d out of range for /%d in %v", idx, newBits, p)
	}
	b := p.p.Addr().As16()
	// Write idx into bits [p.Bits(), newBits) counting from the top of
	// the 128-bit address. IPv4 addresses are handled in 4-byte form.
	bitLen := p.p.Addr().BitLen()
	base := 128 - bitLen // offset of the address within the 16-byte array
	for i := 0; i < span; i++ {
		// Bit position (from the MSB of the address) of the i-th
		// lowest bit of idx.
		bitPos := newBits - 1 - i
		if idx&(1<<uint(i)) != 0 {
			byteIdx := (base + bitPos) / 8
			bitInByte := 7 - uint((base+bitPos)%8)
			b[byteIdx] |= 1 << bitInByte
		}
	}
	var ip netip.Addr
	if bitLen == 32 {
		var v4 [4]byte
		copy(v4[:], b[12:])
		ip = netip.AddrFrom4(v4)
	} else {
		ip = netip.AddrFrom16(b)
	}
	return PrefixFrom(ip, newBits)
}

// Host returns the idx-th usable address inside the prefix (idx 0 is the
// network address itself; most scenarios use idx >= 1).
func (p Prefix) Host(idx uint64) (netip.Addr, error) {
	b := p.p.Addr().As16()
	// Add idx to the low 64 bits (sufficient: scenarios never exceed
	// 2^64 hosts).
	var lo uint64
	for i := 8; i < 16; i++ {
		lo = lo<<8 | uint64(b[i])
	}
	lo += idx
	for i := 15; i >= 8; i-- {
		b[i] = byte(lo)
		lo >>= 8
	}
	if p.p.Addr().BitLen() == 32 {
		var v4 [4]byte
		copy(v4[:], b[12:])
		a := netip.AddrFrom4(v4)
		if !p.Contains(a) {
			return netip.Addr{}, fmt.Errorf("addr: host index %d overflows %v", idx, p)
		}
		return a, nil
	}
	a := netip.AddrFrom16(b)
	if !p.Contains(a) {
		return netip.Addr{}, fmt.Errorf("addr: host index %d overflows %v", idx, p)
	}
	return a, nil
}
