package addr

import (
	"net/netip"
	"testing"
)

func TestParsePrefixCanonicalizes(t *testing.T) {
	p, err := ParsePrefix("2001:db8::5/48")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "2001:db8::/48" {
		t.Fatalf("not masked: %v", p)
	}
	if !p.Is6() {
		t.Fatal("Is6 = false for IPv6 prefix")
	}
	p4 := MustParsePrefix("10.1.2.3/8")
	if p4.String() != "10.0.0.0/8" {
		t.Fatalf("not masked: %v", p4)
	}
	if p4.Is6() {
		t.Fatal("Is6 = true for IPv4 prefix")
	}
}

func TestParsePrefixError(t *testing.T) {
	if _, err := ParsePrefix("not-a-prefix"); err == nil {
		t.Fatal("expected error")
	}
	var zero Prefix
	if zero.IsValid() {
		t.Fatal("zero Prefix is valid")
	}
}

func TestPrefixCovers(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8:5::/48")
	if !a.Covers(b) {
		t.Fatal("/32 should cover its /48")
	}
	if b.Covers(a) {
		t.Fatal("/48 should not cover its /32")
	}
	if !a.Covers(a) {
		t.Fatal("prefix should cover itself")
	}
	c := MustParsePrefix("2001:db9::/48")
	if a.Covers(c) {
		t.Fatal("disjoint prefixes should not cover")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("Overlaps wrong")
	}
}

func TestSubnet(t *testing.T) {
	parent := MustParsePrefix("2001:db8::/32")
	cases := []struct {
		idx  int
		want string
	}{
		{0, "2001:db8::/48"},
		{1, "2001:db8:1::/48"},
		{5, "2001:db8:5::/48"},
		{255, "2001:db8:ff::/48"},
		{65535, "2001:db8:ffff::/48"},
	}
	for _, c := range cases {
		got, err := parent.Subnet(48, c.idx)
		if err != nil {
			t.Fatalf("Subnet(48,%d): %v", c.idx, err)
		}
		if got.String() != c.want {
			t.Fatalf("Subnet(48,%d) = %v, want %v", c.idx, got, c.want)
		}
	}
	if _, err := parent.Subnet(48, 65536); err == nil {
		t.Fatal("out-of-range subnet index accepted")
	}
	if _, err := parent.Subnet(16, 0); err == nil {
		t.Fatal("shorter-than-parent subnet accepted")
	}
	if _, err := parent.Subnet(48, -1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestSubnetIPv4(t *testing.T) {
	parent := MustParsePrefix("10.0.0.0/8")
	got, err := parent.Subnet(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "10.3.0.0/16" {
		t.Fatalf("Subnet = %v, want 10.3.0.0/16", got)
	}
	same, err := parent.Subnet(8, 0)
	if err != nil || same != parent {
		t.Fatalf("Subnet(8,0) = %v, %v", same, err)
	}
	if _, err := parent.Subnet(8, 1); err == nil {
		t.Fatal("index 1 with zero span accepted")
	}
}

func TestHost(t *testing.T) {
	p := MustParsePrefix("2001:db8:5::/48")
	h, err := p.Host(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.String() != "2001:db8:5::1" {
		t.Fatalf("Host(1) = %v", h)
	}
	h256, err := p.Host(256)
	if err != nil {
		t.Fatal(err)
	}
	if h256.String() != "2001:db8:5::100" {
		t.Fatalf("Host(256) = %v", h256)
	}

	p4 := MustParsePrefix("192.168.1.0/24")
	h4, err := p4.Host(10)
	if err != nil {
		t.Fatal(err)
	}
	if h4.String() != "192.168.1.10" {
		t.Fatalf("Host(10) = %v", h4)
	}
	if _, err := p4.Host(256); err == nil {
		t.Fatal("overflowing host index accepted")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8::/48")
	c := MustParsePrefix("2001:db9::/32")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Fatal("shorter prefix should sort first at same address")
	}
	if a.Compare(c) >= 0 {
		t.Fatal("lower address should sort first")
	}
	if a.Compare(a) != 0 {
		t.Fatal("self-compare nonzero")
	}
}

func TestPrefixAsMapKey(t *testing.T) {
	m := map[Prefix]int{}
	m[MustParsePrefix("2001:db8::1/48")] = 1
	m[MustParsePrefix("2001:db8::2/48")] = 2 // same canonical prefix
	if len(m) != 1 || m[MustParsePrefix("2001:db8::/48")] != 2 {
		t.Fatalf("canonicalization broken: %v", m)
	}
}

func TestPrefixFromInvalid(t *testing.T) {
	if _, err := PrefixFrom(netip.Addr{}, 8); err == nil {
		t.Fatal("invalid addr accepted")
	}
	if _, err := PrefixFrom(netip.MustParseAddr("10.0.0.1"), 64); err == nil {
		t.Fatal("overlong IPv4 prefix accepted")
	}
}
