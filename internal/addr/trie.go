package addr

import (
	"encoding/binary"
	"net/netip"
	"sort"
)

// Trie is a binary (one bit per level) longest-prefix-match trie mapping
// prefixes to arbitrary route values. It is the lookup structure behind
// every simulated router FIB and BGP Loc-RIB view.
//
// The zero value is an empty trie ready for use. IPv4 and IPv6 prefixes
// coexist: IPv4 keys live in a separate root so that 10.0.0.0/8 never
// matches an IPv6 lookup.
//
// Trie is not safe for concurrent mutation; the simulator is
// single-goroutine so routers never need locking.
type Trie[V any] struct {
	root4, root6 *trieNode[V]
	size         int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
	// pfx is stored for iteration/deletion bookkeeping.
	pfx Prefix
}

// Insert adds or replaces the value for prefix p.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if !p.IsValid() {
		panic("addr: Insert with invalid prefix")
	}
	root := t.rootFor(p.Addr(), true)
	n := root
	b := p.Addr().As16()
	base := 128 - p.Addr().BitLen()
	for i := 0; i < p.Bits(); i++ {
		bit := bitAt(b, base+i)
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.size++
	}
	n.val = v
	n.set = true
	n.pfx = p
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes left empty are pruned lazily on later operations; the
// trie stays correct either way.
func (t *Trie[V]) Delete(p Prefix) bool {
	root := t.rootFor(p.Addr(), false)
	if root == nil {
		return false
	}
	n := root
	b := p.Addr().As16()
	base := 128 - p.Addr().BitLen()
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(b, base+i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	n.set = false
	var zero V
	n.val = zero
	t.size--
	return true
}

// Lookup returns the value of the longest prefix containing ip. It is
// the per-packet forwarding primitive, so the descent reads the address
// as two 64-bit words kept in registers instead of indexing the byte
// array once per level.
func (t *Trie[V]) Lookup(ip netip.Addr) (V, Prefix, bool) {
	var best V
	var bestPfx Prefix
	found := false
	root := t.rootFor(ip, false)
	if root == nil {
		return best, bestPfx, false
	}
	n := root
	b := ip.As16()
	hi := binary.BigEndian.Uint64(b[:8])
	lo := binary.BigEndian.Uint64(b[8:])
	if n.set {
		best, bestPfx, found = n.val, n.pfx, true
	}
	base := 128 - ip.BitLen()
	for i := base; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = hi >> (63 - uint(i)) & 1
		} else {
			bit = lo >> (127 - uint(i)) & 1
		}
		n = n.child[bit]
		if n == nil {
			break
		}
		if n.set {
			best, bestPfx, found = n.val, n.pfx, true
		}
	}
	return best, bestPfx, found
}

// Get returns the value stored for exactly p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	var zero V
	root := t.rootFor(p.Addr(), false)
	if root == nil {
		return zero, false
	}
	n := root
	b := p.Addr().As16()
	base := 128 - p.Addr().BitLen()
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(b, base+i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored (prefix, value) pair in address order. The
// callback may not mutate the trie.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	walk(t.root4, fn)
	walk(t.root6, fn)
}

func walk[V any](n *trieNode[V], fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(n.pfx, n.val) {
		return false
	}
	return walk(n.child[0], fn) && walk(n.child[1], fn)
}

// Prefixes returns all stored prefixes sorted with Prefix.Compare.
func (t *Trie[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.size)
	t.Walk(func(p Prefix, _ V) bool { out = append(out, p); return true })
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func (t *Trie[V]) rootFor(ip netip.Addr, create bool) *trieNode[V] {
	if ip.BitLen() == 32 {
		if t.root4 == nil && create {
			t.root4 = &trieNode[V]{}
		}
		return t.root4
	}
	if t.root6 == nil && create {
		t.root6 = &trieNode[V]{}
	}
	return t.root6
}

// bitAt returns bit i (0 = MSB of the 16-byte array) of b.
func bitAt(b [16]byte, i int) int {
	return int(b[i/8]>>(7-uint(i%8))) & 1
}
