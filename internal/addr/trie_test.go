package addr

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestTrieBasicLPM(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("2001:db8::/32"), "aggregate")
	tr.Insert(MustParsePrefix("2001:db8:5::/48"), "tunnel5")
	tr.Insert(MustParsePrefix("::/0"), "default")

	cases := []struct {
		ip   string
		want string
	}{
		{"2001:db8:5::1", "tunnel5"},
		{"2001:db8:6::1", "aggregate"},
		{"2001:db9::1", "default"},
	}
	for _, c := range cases {
		v, _, ok := tr.Lookup(netip.MustParseAddr(c.ip))
		if !ok || v != c.want {
			t.Fatalf("Lookup(%s) = %q,%v want %q", c.ip, v, ok, c.want)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestTrieFamiliesSeparate(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "v4default")
	tr.Insert(MustParsePrefix("::/0"), "v6default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "v4net")

	if v, _, _ := tr.Lookup(netip.MustParseAddr("10.1.2.3")); v != "v4net" {
		t.Fatalf("v4 lookup = %q", v)
	}
	if v, _, _ := tr.Lookup(netip.MustParseAddr("2001::1")); v != "v6default" {
		t.Fatalf("v6 lookup = %q", v)
	}
}

func TestTrieNoMatch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("2001:db8::/32"), 1)
	if _, _, ok := tr.Lookup(netip.MustParseAddr("2002::1")); ok {
		t.Fatal("lookup outside stored prefixes matched")
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("v4 lookup in v6-only trie matched")
	}
}

func TestTrieReplaceAndDelete(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	if v, ok := tr.Get(p); !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !tr.Delete(p) {
		t.Fatal("Delete reported missing")
	}
	if tr.Delete(p) {
		t.Fatal("second Delete reported present")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("deleted prefix still matches")
	}
}

func TestTrieDeleteKeepsCoveringRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("2001:db8::/32"), "agg")
	tr.Insert(MustParsePrefix("2001:db8:5::/48"), "specific")
	tr.Delete(MustParsePrefix("2001:db8:5::/48"))
	v, pfx, ok := tr.Lookup(netip.MustParseAddr("2001:db8:5::1"))
	if !ok || v != "agg" || pfx.String() != "2001:db8::/32" {
		t.Fatalf("fallback lookup = %q %v %v", v, pfx, ok)
	}
}

func TestTrieGetExact(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("2001:db8::/32"), 7)
	if _, ok := tr.Get(MustParsePrefix("2001:db8::/48")); ok {
		t.Fatal("Get matched a non-inserted more-specific")
	}
	if _, ok := tr.Get(MustParsePrefix("2001:db8::/16")); ok {
		t.Fatal("Get matched a non-inserted less-specific")
	}
}

func TestTrieWalkAndPrefixes(t *testing.T) {
	var tr Trie[int]
	ins := []string{"10.0.0.0/8", "10.1.0.0/16", "2001:db8::/32", "::/0"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	seen := map[string]bool{}
	tr.Walk(func(p Prefix, v int) bool {
		seen[p.String()] = true
		return true
	})
	if len(seen) != len(ins) {
		t.Fatalf("Walk visited %d, want %d", len(seen), len(ins))
	}
	ps := tr.Prefixes()
	if len(ps) != len(ins) {
		t.Fatalf("Prefixes len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Compare(ps[i]) >= 0 {
			t.Fatalf("Prefixes not sorted: %v", ps)
		}
	}
	// Early-exit walk.
	count := 0
	tr.Walk(func(Prefix, int) bool { count++; return false })
	if count > 2 { // at most one hit per family root path
		t.Fatalf("Walk ignored early exit: %d", count)
	}
}

// naiveLPM is the reference implementation for the property test.
type naiveEntry struct {
	p Prefix
	v int
}

func naiveLookup(entries []naiveEntry, ip netip.Addr) (int, bool) {
	best := -1
	bestBits := -1
	for i, e := range entries {
		if (e.p.Addr().BitLen() == ip.BitLen()) && e.p.Contains(ip) && e.p.Bits() > bestBits {
			best, bestBits = i, e.p.Bits()
		}
	}
	if best < 0 {
		return 0, false
	}
	return entries[best].v, true
}

// Property: trie lookup agrees with a naive scan over random prefix sets.
func TestTrieMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trie[int]
		var entries []naiveEntry
		byPfx := map[Prefix]int{}
		for i := 0; i < 40; i++ {
			var p Prefix
			if r.Intn(2) == 0 {
				ip := netip.AddrFrom4([4]byte{byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(256)), byte(r.Intn(256))})
				p, _ = PrefixFrom(ip, r.Intn(33))
			} else {
				var b [16]byte
				b[0], b[1] = 0x20, 0x01
				b[2], b[3] = byte(r.Intn(2)), byte(r.Intn(4))
				b[4] = byte(r.Intn(256))
				ip := netip.AddrFrom16(b)
				p, _ = PrefixFrom(ip, r.Intn(65))
			}
			tr.Insert(p, i)
			byPfx[p] = i
		}
		for p, v := range byPfx {
			entries = append(entries, naiveEntry{p, v})
		}
		// Random probes, biased toward the inserted space.
		for i := 0; i < 200; i++ {
			var ip netip.Addr
			if r.Intn(2) == 0 {
				ip = netip.AddrFrom4([4]byte{byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(256)), byte(r.Intn(256))})
			} else {
				var b [16]byte
				b[0], b[1] = 0x20, 0x01
				b[2], b[3] = byte(r.Intn(2)), byte(r.Intn(4))
				b[4] = byte(r.Intn(256))
				b[15] = byte(r.Intn(256))
				ip = netip.AddrFrom16(b)
			}
			gotV, _, gotOK := tr.Lookup(ip)
			wantV, wantOK := naiveLookup(entries, ip)
			if gotOK != wantOK {
				return false
			}
			if gotOK && gotV != wantV {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAlloc(t *testing.T) {
	a := NewAlloc(MustParsePrefix("2001:db8::/32"))
	if a.Parent().String() != "2001:db8::/32" {
		t.Fatal("Parent wrong")
	}
	p0 := a.MustNextSubnet(48)
	p1 := a.MustNextSubnet(48)
	if p0.String() != "2001:db8::/48" || p1.String() != "2001:db8:1::/48" {
		t.Fatalf("subnets = %v, %v", p0, p1)
	}
	if p0.Overlaps(p1) {
		t.Fatal("allocated subnets overlap")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewAlloc(MustParsePrefix("10.0.0.0/30"))
	for i := 0; i < 4; i++ {
		if _, err := a.NextSubnet(32); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := a.NextSubnet(32); err == nil {
		t.Fatal("exhausted allocator succeeded")
	}
}

func TestHostAlloc(t *testing.T) {
	h := NewHostAlloc(MustParsePrefix("192.168.0.0/24"))
	a1 := h.MustNext()
	a2 := h.MustNext()
	if a1.String() != "192.168.0.1" || a2.String() != "192.168.0.2" {
		t.Fatalf("hosts = %v, %v", a1, a2)
	}
	for i := 0; i < 253; i++ {
		if _, err := h.Next(); err != nil {
			t.Fatalf("host alloc %d failed: %v", i, err)
		}
	}
	if _, err := h.Next(); err == nil {
		t.Fatal("exhausted host allocator succeeded")
	}
}

func ExampleTrie() {
	var fib Trie[string]
	fib.Insert(MustParsePrefix("2001:db8::/32"), "via NTT")
	fib.Insert(MustParsePrefix("2001:db8:5::/48"), "via GTT")
	nh, _, _ := fib.Lookup(netip.MustParseAddr("2001:db8:5::1"))
	fmt.Println(nh)
	// Output: via GTT
}
