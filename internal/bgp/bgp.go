// Package bgp implements the BGP-4 control plane the Tango prototype
// drives: wire-format messages (RFC 4271) with multiprotocol IPv6 NLRI
// (RFC 4760), RFC 1997 communities, per-neighbor import/export policy with
// Gao-Rexford defaults, the standard decision process, and MRAI-paced
// propagation — everything the paper's BIRD-based deployment relies on.
//
// The paper's key control-plane move is operator "action communities":
// a Vultr customer attaches, say, 64600:2914 to an announcement and
// Vultr's border routers then refrain from exporting that prefix to NTT
// (AS 2914). Iterating that knob exposes the alternate AS paths between
// the two edges. This package implements those semantics in the provider
// export policy so the discovery algorithm in internal/control can run
// unmodified against the simulated Internet.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"tango/internal/addr"
)

// ASN is an autonomous system number. The wire codec uses the classic
// 2-octet representation, which covers every ASN in the Tango scenarios
// (real transit providers and RFC 6996 private ASNs).
type ASN uint16

// Well-known ASNs used across the Tango scenarios (real allocations).
const (
	ASVultr  ASN = 20473
	ASNTT    ASN = 2914
	ASTelia  ASN = 1299
	ASGTT    ASN = 3257
	ASCogent ASN = 174
	ASLevel3 ASN = 3356
)

// IsPrivate reports whether the ASN is in the RFC 6996 private range.
func (a ASN) IsPrivate() bool { return a >= 64512 }

// Origin is the ORIGIN path attribute value.
type Origin uint8

// Origin values per RFC 4271.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "Incomplete"
	}
	return fmt.Sprintf("Origin(%d)", uint8(o))
}

// Community is an RFC 1997 community value: high 16 bits conventionally an
// ASN, low 16 bits an operator-defined action or tag.
type Community uint32

// MakeCommunity builds asn:value.
func MakeCommunity(asn ASN, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high 16 bits.
func (c Community) ASN() ASN { return ASN(c >> 16) }

// Value returns the low 16 bits.
func (c Community) Value() uint16 { return uint16(c) }

func (c Community) String() string {
	switch c {
	case CommunityNoExport:
		return "no-export"
	case CommunityNoAdvertise:
		return "no-advertise"
	}
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint16(c))
}

// Well-known communities (RFC 1997).
const (
	CommunityNoExport    Community = 0xFFFFFF01
	CommunityNoAdvertise Community = 0xFFFFFF02
)

// Action-community namespaces implemented by the provider export policy,
// modelled on the AS20473 (Vultr) BGP customer guide the paper uses:
//
//	64600:<asn>  do not export to AS <asn>
//	64601:<asn>  prepend own ASN once when exporting to AS <asn>
//	64602:<asn>  prepend twice
//	64603:<asn>  prepend three times
const (
	ActionNoExportTo ASN = 64600
	ActionPrepend1   ASN = 64601
	ActionPrepend2   ASN = 64602
	ActionPrepend3   ASN = 64603
)

// NoExportTo returns the action community suppressing export to asn.
func NoExportTo(asn ASN) Community { return MakeCommunity(ActionNoExportTo, uint16(asn)) }

// PrependTo returns the action community prepending n (1..3) copies of
// the provider's ASN when exporting to asn.
func PrependTo(asn ASN, n int) Community {
	switch n {
	case 1:
		return MakeCommunity(ActionPrepend1, uint16(asn))
	case 2:
		return MakeCommunity(ActionPrepend2, uint16(asn))
	case 3:
		return MakeCommunity(ActionPrepend3, uint16(asn))
	}
	panic(fmt.Sprintf("bgp: PrependTo count %d out of range", n))
}

// Path is an AS_PATH as a flat AS_SEQUENCE (the only segment type the
// Tango scenarios produce).
type Path []ASN

// Contains reports whether the path includes asn (BGP loop detection).
func (p Path) Contains(asn ASN) bool {
	for _, a := range p {
		if a == asn {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Prepend returns a new path with asn prepended n times.
func (p Path) Prepend(asn ASN, n int) Path {
	out := make(Path, 0, len(p)+n)
	for i := 0; i < n; i++ {
		out = append(out, asn)
	}
	return append(out, p...)
}

// StripPrivate returns the path with private ASNs removed, as providers do
// when propagating customer announcements made from a private ASN (paper
// §4.1 footnote).
func (p Path) StripPrivate() Path {
	out := make(Path, 0, len(p))
	for _, a := range p {
		if !a.IsPrivate() {
			out = append(out, a)
		}
	}
	return out
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

func (p Path) String() string {
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	return b.String()
}

// Route is one BGP route: a prefix plus its path attributes. Routes are
// treated as immutable once shared; policies that modify a route must
// clone it first (see Clone).
type Route struct {
	Prefix      addr.Prefix
	Path        Path
	NextHop     netip.Addr
	Origin      Origin
	MED         uint32
	LocalPref   uint32 // meaningful locally; not exported on eBGP
	Communities []Community

	// Learned metadata (not wire attributes).
	FromSession *Session // nil for locally originated routes
}

// LearnedRel returns the relation of the session the route was learned
// over (what the sending neighbor is to this speaker), or false for a
// locally originated route. Policy code uses it to reason about a best
// route's re-export power: customer-learned routes go everywhere,
// peer- and provider-learned ones only to customers.
func (r *Route) LearnedRel() (Relation, bool) {
	if r.FromSession == nil {
		return 0, false
	}
	return r.FromSession.cfg.Relation, true
}

// Clone returns a deep copy safe to modify.
func (r *Route) Clone() *Route {
	c := *r
	c.Path = r.Path.Clone()
	c.Communities = append([]Community(nil), r.Communities...)
	return &c
}

// HasCommunity reports whether the route carries c.
func (r *Route) HasCommunity(c Community) bool {
	for _, x := range r.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// AddCommunity appends c if absent (in place; use on cloned routes).
func (r *Route) AddCommunity(c Community) {
	if !r.HasCommunity(c) {
		r.Communities = append(r.Communities, c)
	}
}

// SortedCommunities returns the communities in ascending order (stable
// display and comparison).
func (r *Route) SortedCommunities() []Community {
	out := append([]Community(nil), r.Communities...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Route) String() string {
	if r == nil {
		return "<nil route>"
	}
	return fmt.Sprintf("%v via %v path [%v] lp=%d med=%d", r.Prefix, r.NextHop, r.Path, r.LocalPref, r.MED)
}
