package bgp

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

// TestDecisionMED: with equal local-pref, path length, and origin, the
// lower MED wins.
func TestDecisionMED(t *testing.T) {
	eng := sim.NewEngine()
	col := NewSpeaker(eng, "col", 10, 1)
	p1 := NewSpeaker(eng, "p1", 11, 2)
	p2 := NewSpeaker(eng, "p2", 12, 3)
	cA, cB := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	// p1 exports with MED 50, p2 with MED 10.
	cB.Export = func(r *Route) *Route { r.MED = 50; return r }
	s1, _ := Connect(col, p1, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:11::1", "2001:db8:11::2")
	cB.Export = func(r *Route) *Route { r.MED = 10; return r }
	Connect(col, p2, cA, cB)
	_ = s1

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	p1.Originate(pfx)
	p2.Originate(pfx)
	eng.Run(30 * time.Second)

	best := col.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	if best.MED != 10 || best.Path[0] != 12 {
		t.Fatalf("best = %v (MED %d), want via 12 with MED 10", best.Path, best.MED)
	}
}

// TestDecisionOrigin: lower origin wins at equal local-pref/length.
func TestDecisionOrigin(t *testing.T) {
	a := &Route{LocalPref: 100, Path: Path{1}, Origin: OriginIGP}
	b := &Route{LocalPref: 100, Path: Path{2}, Origin: OriginIncomplete}
	if !better(a, b) || better(b, a) {
		t.Fatal("origin comparison wrong")
	}
}

// TestDecisionStability: pickBest keeps the current best on exact ties
// (no churn from re-running the decision process).
func TestDecisionStability(t *testing.T) {
	a := &Route{LocalPref: 100, Path: Path{1}}
	b := &Route{LocalPref: 100, Path: Path{2}}
	// Identical on every criterion (both local, routerID 0): neither is
	// strictly better.
	if better(a, b) || better(b, a) {
		t.Fatal("tie should not prefer either")
	}
	if pickBest([]*Route{a, b}) != a {
		t.Fatal("pickBest should keep the first (stable)")
	}
}

func TestWithdrawNonOriginatedIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	sp := NewSpeaker(eng, "x", 1, 1)
	sp.Withdraw(addr.MustParsePrefix("2001:db8::/48")) // must not panic
	if _, ok := sp.Originated(addr.MustParsePrefix("2001:db8::/48")); ok {
		t.Fatal("phantom origination")
	}
	sp.Originate(addr.MustParsePrefix("2001:db8::/48"))
	if _, ok := sp.Originated(addr.MustParsePrefix("2001:db8::/48")); !ok {
		t.Fatal("Originated accessor broken")
	}
	if len(sp.BestPrefixes()) != 1 {
		t.Fatalf("BestPrefixes = %v", sp.BestPrefixes())
	}
}

// TestMultiPrefixUpdate: several prefixes in one UPDATE install
// independently and withdraw independently.
func TestMultiPrefixUpdate(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(a, b, cA, cB)
	eng.Run(time.Second)

	u := &Update{
		Announced: prefixes("2001:db8:1::/48", "2001:db8:2::/48", "2001:db8:3::/48"),
		Attrs:     Attrs{Path: Path{100}, NextHop: v6("2001:db8:10::1")},
	}
	bs := b.sessions[0]
	b.handleUpdate(bs, u)
	if len(b.BestPrefixes()) != 3 {
		t.Fatalf("installed %d prefixes", len(b.BestPrefixes()))
	}
	b.handleUpdate(bs, &Update{Withdrawn: prefixes("2001:db8:2::/48")})
	if len(b.BestPrefixes()) != 2 {
		t.Fatalf("withdraw left %d prefixes", len(b.BestPrefixes()))
	}
	if b.Best(addr.MustParsePrefix("2001:db8:2::/48")) != nil {
		t.Fatal("withdrawn prefix still best")
	}
}
