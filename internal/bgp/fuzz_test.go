package bgp

import (
	"bytes"
	"net/netip"
	"testing"

	"tango/internal/addr"
)

// FuzzBGPUpdateDecode checks that DecodeMessage never panics and that
// every message it accepts reaches an encoding fixpoint: re-encoding the
// decoded message and decoding that must reproduce the exact same bytes.
// The first encode may legitimately fail — the decoder tolerates updates
// the encoder refuses to produce (e.g. announcements without a next
// hop) — but once a message has a canonical encoding, a second
// decode/encode trip must not change a byte.
func FuzzBGPUpdateDecode(f *testing.F) {
	seed := func(m *Message) []byte {
		b, err := EncodeMessage(m)
		if err != nil {
			panic(err)
		}
		return b
	}
	f.Add(seed(&Message{Keepalive: true}))
	f.Add(seed(&Message{Open: &Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 0x0a000001}}))
	f.Add(seed(&Message{Notification: &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}}))
	f.Add(seed(&Message{Update: &Update{
		Announced: []addr.Prefix{addr.MustParsePrefix("2001:db8:100::/48")},
		Attrs: Attrs{
			Origin:      OriginIGP,
			Path:        Path{65001, 65002},
			NextHop:     netip.MustParseAddr("2001:db8::1"),
			MED:         10,
			HasMED:      true,
			Communities: []Community{Community(4242)},
		},
	}}))
	f.Add(seed(&Message{Update: &Update{
		Withdrawn: []addr.Prefix{addr.MustParsePrefix("2001:db8:100::/48")},
	}}))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen)) // marker-only garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			return
		}
		m2, n2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding: %x", err, enc)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if m2.Type() != m.Type() {
			t.Fatalf("round trip changed type: %d -> %d", m.Type(), m2.Type())
		}
		enc2, err := EncodeMessage(m2)
		if err != nil {
			t.Fatalf("re-encode of canonical message failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not a fixpoint:\n  %x\n  %x", enc, enc2)
		}
	})
}
