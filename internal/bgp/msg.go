package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"tango/internal/addr"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Path attribute type codes.
const (
	attrOrigin      = 1
	attrASPath      = 2
	attrNextHop     = 3
	attrMED         = 4
	attrLocalPref   = 5
	attrCommunities = 8
	attrMPReach     = 14
	attrMPUnreach   = 15
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

const (
	headerLen   = 19
	markerLen   = 16
	maxMsgLen   = 4096
	afiIPv6     = 2
	safiUnicast = 1
)

// Message is a decoded BGP message: exactly one of the pointers is set.
type Message struct {
	Open         *Open
	Update       *Update
	Notification *Notification
	Keepalive    bool
}

// Type returns the message type code.
func (m *Message) Type() int {
	switch {
	case m.Open != nil:
		return MsgOpen
	case m.Update != nil:
		return MsgUpdate
	case m.Notification != nil:
		return MsgNotification
	default:
		return MsgKeepalive
	}
}

// Open is the session-establishment message.
type Open struct {
	Version  uint8
	AS       ASN
	HoldTime uint16 // seconds
	RouterID uint32
}

// Notification reports a fatal session error.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification %d/%d", n.Code, n.Subcode)
}

// Attrs are the path attributes shared by all NLRI in one UPDATE.
type Attrs struct {
	Origin       Origin
	Path         Path
	NextHop      netip.Addr
	MED          uint32
	HasMED       bool
	LocalPref    uint32
	HasLocalPref bool
	Communities  []Community
}

// Update announces and/or withdraws prefixes. IPv4 prefixes ride the
// classic UPDATE fields; IPv6 prefixes ride MP_REACH_NLRI/MP_UNREACH_NLRI.
// The codec hides the distinction: fill in the slices and it picks the
// encoding per prefix family.
type Update struct {
	Withdrawn []addr.Prefix
	Announced []addr.Prefix
	Attrs     Attrs
}

// EncodeMessage serializes any message with its header.
func EncodeMessage(m *Message) ([]byte, error) {
	var body []byte
	var typ byte
	switch {
	case m.Open != nil:
		typ = MsgOpen
		body = encodeOpen(m.Open)
	case m.Update != nil:
		typ = MsgUpdate
		var err error
		body, err = encodeUpdate(m.Update)
		if err != nil {
			return nil, err
		}
	case m.Notification != nil:
		typ = MsgNotification
		n := m.Notification
		body = append([]byte{n.Code, n.Subcode}, n.Data...)
	default:
		typ = MsgKeepalive
	}
	total := headerLen + len(body)
	if total > maxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds %d", total, maxMsgLen)
	}
	out := make([]byte, total)
	for i := 0; i < markerLen; i++ {
		out[i] = 0xff
	}
	binary.BigEndian.PutUint16(out[16:18], uint16(total))
	out[18] = typ
	copy(out[headerLen:], body)
	return out, nil
}

// DecodeMessage parses one message from the front of data, returning the
// message and the number of bytes consumed.
func DecodeMessage(data []byte) (*Message, int, error) {
	if len(data) < headerLen {
		return nil, 0, errors.New("bgp: short header")
	}
	for i := 0; i < markerLen; i++ {
		if data[i] != 0xff {
			return nil, 0, errors.New("bgp: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(data[16:18]))
	if length < headerLen || length > maxMsgLen || len(data) < length {
		return nil, 0, fmt.Errorf("bgp: bad length %d", length)
	}
	body := data[headerLen:length]
	m := &Message{}
	switch data[18] {
	case MsgOpen:
		o, err := decodeOpen(body)
		if err != nil {
			return nil, 0, err
		}
		m.Open = o
	case MsgUpdate:
		u, err := decodeUpdate(body)
		if err != nil {
			return nil, 0, err
		}
		m.Update = u
	case MsgNotification:
		if len(body) < 2 {
			return nil, 0, errors.New("bgp: short notification")
		}
		m.Notification = &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, 0, errors.New("bgp: keepalive with body")
		}
		m.Keepalive = true
	default:
		return nil, 0, fmt.Errorf("bgp: unknown message type %d", data[18])
	}
	return m, length, nil
}

func encodeOpen(o *Open) []byte {
	b := make([]byte, 10)
	b[0] = o.Version
	binary.BigEndian.PutUint16(b[1:3], uint16(o.AS))
	binary.BigEndian.PutUint16(b[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(b[5:9], o.RouterID)
	b[9] = 0 // no optional parameters
	return b
}

func decodeOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, errors.New("bgp: short OPEN")
	}
	o := &Open{
		Version:  b[0],
		AS:       ASN(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
		RouterID: binary.BigEndian.Uint32(b[5:9]),
	}
	if o.Version != 4 {
		return nil, fmt.Errorf("bgp: unsupported version %d", o.Version)
	}
	return o, nil
}

func splitFamilies(ps []addr.Prefix) (v4, v6 []addr.Prefix) {
	for _, p := range ps {
		if p.Is6() {
			v6 = append(v6, p)
		} else {
			v4 = append(v4, p)
		}
	}
	return
}

func encodeUpdate(u *Update) ([]byte, error) {
	w4, w6 := splitFamilies(u.Withdrawn)
	a4, a6 := splitFamilies(u.Announced)

	var out []byte
	// Withdrawn routes (IPv4).
	wbuf := encodePrefixes(w4)
	out = binary.BigEndian.AppendUint16(out, uint16(len(wbuf)))
	out = append(out, wbuf...)

	// Path attributes.
	var attrs []byte
	haveAnnounce := len(a4) > 0 || len(a6) > 0
	if haveAnnounce {
		attrs = append(attrs, encodeAttr(flagTransitive, attrOrigin, []byte{byte(u.Attrs.Origin)})...)
		attrs = append(attrs, encodeAttr(flagTransitive, attrASPath, encodeASPath(u.Attrs.Path))...)
		if len(a4) > 0 {
			if !u.Attrs.NextHop.Is4() {
				return nil, errors.New("bgp: IPv4 NLRI requires IPv4 next hop")
			}
			nh := u.Attrs.NextHop.As4()
			attrs = append(attrs, encodeAttr(flagTransitive, attrNextHop, nh[:])...)
		}
		if u.Attrs.HasMED {
			var v [4]byte
			binary.BigEndian.PutUint32(v[:], u.Attrs.MED)
			attrs = append(attrs, encodeAttr(flagOptional, attrMED, v[:])...)
		}
		if u.Attrs.HasLocalPref {
			var v [4]byte
			binary.BigEndian.PutUint32(v[:], u.Attrs.LocalPref)
			attrs = append(attrs, encodeAttr(flagTransitive, attrLocalPref, v[:])...)
		}
		if len(u.Attrs.Communities) > 0 {
			v := make([]byte, 4*len(u.Attrs.Communities))
			for i, c := range u.Attrs.Communities {
				binary.BigEndian.PutUint32(v[i*4:], uint32(c))
			}
			attrs = append(attrs, encodeAttr(flagOptional|flagTransitive, attrCommunities, v)...)
		}
		if len(a6) > 0 {
			if !u.Attrs.NextHop.Is6() || u.Attrs.NextHop.Is4In6() {
				return nil, errors.New("bgp: IPv6 NLRI requires IPv6 next hop")
			}
			// Layout: AFI(2) SAFI(1) NHLen(1) NH(16) Reserved(1) NLRI.
			nh := u.Attrs.NextHop.As16()
			body := make([]byte, 0, 21+len(a6)*17)
			body = binary.BigEndian.AppendUint16(body, afiIPv6)
			body = append(body, safiUnicast, 16)
			body = append(body, nh[:]...)
			body = append(body, 0)
			body = append(body, encodePrefixes(a6)...)
			attrs = append(attrs, encodeAttr(flagOptional, attrMPReach, body)...)
		}
	}
	if len(w6) > 0 {
		body := make([]byte, 0, 3+len(w6)*17)
		body = binary.BigEndian.AppendUint16(body, afiIPv6)
		body = append(body, safiUnicast)
		body = append(body, encodePrefixes(w6)...)
		attrs = append(attrs, encodeAttr(flagOptional, attrMPUnreach, body)...)
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	// NLRI (IPv4).
	out = append(out, encodePrefixes(a4)...)
	return out, nil
}

func encodeAttr(flags, typ byte, val []byte) []byte {
	if len(val) > 255 {
		out := make([]byte, 0, 4+len(val))
		out = append(out, flags|flagExtLen, typ)
		out = binary.BigEndian.AppendUint16(out, uint16(len(val)))
		return append(out, val...)
	}
	out := make([]byte, 0, 3+len(val))
	out = append(out, flags, typ, byte(len(val)))
	return append(out, val...)
}

func encodeASPath(p Path) []byte {
	if len(p) == 0 {
		return nil
	}
	out := make([]byte, 0, 2+2*len(p))
	out = append(out, 2 /* AS_SEQUENCE */, byte(len(p)))
	for _, a := range p {
		out = binary.BigEndian.AppendUint16(out, uint16(a))
	}
	return out
}

func encodePrefixes(ps []addr.Prefix) []byte {
	var out []byte
	for _, p := range ps {
		bits := p.Bits()
		out = append(out, byte(bits))
		nb := (bits + 7) / 8
		if p.Is6() {
			b := p.Addr().As16()
			out = append(out, b[:nb]...)
		} else {
			b := p.Addr().As4()
			out = append(out, b[:nb]...)
		}
	}
	return out
}

func decodePrefixes(b []byte, v6 bool) ([]addr.Prefix, error) {
	var out []addr.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		max := 32
		if v6 {
			max = 128
		}
		if bits > max {
			return nil, fmt.Errorf("bgp: prefix length %d", bits)
		}
		nb := (bits + 7) / 8
		if len(b) < 1+nb {
			return nil, errors.New("bgp: truncated NLRI")
		}
		var ip netip.Addr
		if v6 {
			var raw [16]byte
			copy(raw[:], b[1:1+nb])
			ip = netip.AddrFrom16(raw)
		} else {
			var raw [4]byte
			copy(raw[:], b[1:1+nb])
			ip = netip.AddrFrom4(raw)
		}
		p, err := addr.PrefixFrom(ip, bits)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[1+nb:]
	}
	return out, nil
}

func decodeUpdate(b []byte) (*Update, error) {
	u := &Update{}
	if len(b) < 2 {
		return nil, errors.New("bgp: short UPDATE")
	}
	wlen := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < wlen {
		return nil, errors.New("bgp: truncated withdrawn routes")
	}
	w4, err := decodePrefixes(b[:wlen], false)
	if err != nil {
		return nil, err
	}
	u.Withdrawn = append(u.Withdrawn, w4...)
	b = b[wlen:]
	if len(b) < 2 {
		return nil, errors.New("bgp: missing attribute length")
	}
	alen := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < alen {
		return nil, errors.New("bgp: truncated attributes")
	}
	attrs := b[:alen]
	nlri := b[alen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, errors.New("bgp: truncated attribute header")
		}
		flags, typ := attrs[0], attrs[1]
		var vlen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return nil, errors.New("bgp: truncated extended attribute")
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			off = 4
		} else {
			vlen = int(attrs[2])
			off = 3
		}
		if len(attrs) < off+vlen {
			return nil, errors.New("bgp: truncated attribute value")
		}
		val := attrs[off : off+vlen]
		switch typ {
		case attrOrigin:
			if vlen != 1 {
				return nil, errors.New("bgp: bad ORIGIN length")
			}
			u.Attrs.Origin = Origin(val[0])
		case attrASPath:
			p, err := decodeASPath(val)
			if err != nil {
				return nil, err
			}
			u.Attrs.Path = p
		case attrNextHop:
			if vlen != 4 {
				return nil, errors.New("bgp: bad NEXT_HOP length")
			}
			u.Attrs.NextHop = netip.AddrFrom4([4]byte(val))
		case attrMED:
			if vlen != 4 {
				return nil, errors.New("bgp: bad MED length")
			}
			u.Attrs.MED = binary.BigEndian.Uint32(val)
			u.Attrs.HasMED = true
		case attrLocalPref:
			if vlen != 4 {
				return nil, errors.New("bgp: bad LOCAL_PREF length")
			}
			u.Attrs.LocalPref = binary.BigEndian.Uint32(val)
			u.Attrs.HasLocalPref = true
		case attrCommunities:
			if vlen%4 != 0 {
				return nil, errors.New("bgp: bad COMMUNITIES length")
			}
			for i := 0; i < vlen; i += 4 {
				u.Attrs.Communities = append(u.Attrs.Communities, Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		case attrMPReach:
			if vlen < 5 {
				return nil, errors.New("bgp: short MP_REACH")
			}
			afi := binary.BigEndian.Uint16(val[0:2])
			safi := val[2]
			nhLen := int(val[3])
			if afi != afiIPv6 || safi != safiUnicast {
				return nil, fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
			}
			if nhLen != 16 || len(val) < 4+nhLen+1 {
				return nil, errors.New("bgp: bad MP_REACH next hop")
			}
			u.Attrs.NextHop = netip.AddrFrom16([16]byte(val[4 : 4+16]))
			rest := val[4+nhLen+1:]
			ps, err := decodePrefixes(rest, true)
			if err != nil {
				return nil, err
			}
			u.Announced = append(u.Announced, ps...)
		case attrMPUnreach:
			if vlen < 3 {
				return nil, errors.New("bgp: short MP_UNREACH")
			}
			afi := binary.BigEndian.Uint16(val[0:2])
			safi := val[2]
			if afi != afiIPv6 || safi != safiUnicast {
				return nil, fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
			}
			ps, err := decodePrefixes(val[3:], true)
			if err != nil {
				return nil, err
			}
			u.Withdrawn = append(u.Withdrawn, ps...)
		default:
			// Unknown optional attributes are ignored (transitive
			// forwarding is out of scope for the scenarios).
		}
		attrs = attrs[off+vlen:]
	}

	a4, err := decodePrefixes(nlri, false)
	if err != nil {
		return nil, err
	}
	u.Announced = append(u.Announced, a4...)
	return u, nil
}

func decodeASPath(b []byte) (Path, error) {
	var p Path
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, errors.New("bgp: truncated AS_PATH segment")
		}
		segType, n := b[0], int(b[1])
		if segType != 2 {
			return nil, fmt.Errorf("bgp: unsupported AS_PATH segment type %d", segType)
		}
		if len(b) < 2+2*n {
			return nil, errors.New("bgp: truncated AS_PATH")
		}
		for i := 0; i < n; i++ {
			p = append(p, ASN(binary.BigEndian.Uint16(b[2+2*i:4+2*i])))
		}
		b = b[2+2*n:]
	}
	return p, nil
}
