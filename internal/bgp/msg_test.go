package bgp

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"tango/internal/addr"
)

func TestOpenRoundTrip(t *testing.T) {
	m := &Message{Open: &Open{Version: 4, AS: ASVultr, HoldTime: 90, RouterID: 0x0a000001}}
	raw, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if *got.Open != *m.Open {
		t.Fatalf("open = %+v", got.Open)
	}
	if got.Type() != MsgOpen {
		t.Fatalf("Type = %d", got.Type())
	}
}

func TestKeepaliveAndNotification(t *testing.T) {
	raw, err := EncodeMessage(&Message{Keepalive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != headerLen {
		t.Fatalf("keepalive length %d", len(raw))
	}
	got, _, err := DecodeMessage(raw)
	if err != nil || !got.Keepalive {
		t.Fatalf("keepalive decode: %v %v", got, err)
	}

	n := &Notification{Code: 6, Subcode: 2, Data: []byte{1, 2}}
	raw, err = EncodeMessage(&Message{Notification: n})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Notification.Code != 6 || got.Notification.Subcode != 2 || len(got.Notification.Data) != 2 {
		t.Fatalf("notification = %+v", got.Notification)
	}
	if got.Notification.Error() == "" {
		t.Fatal("empty notification error")
	}
}

func TestUpdateRoundTripIPv6(t *testing.T) {
	u := &Update{
		Announced: []addr.Prefix{
			addr.MustParsePrefix("2001:db8:1::/48"),
			addr.MustParsePrefix("2001:db8:2::/48"),
		},
		Withdrawn: []addr.Prefix{addr.MustParsePrefix("2001:db8:dead::/48")},
		Attrs: Attrs{
			Origin:      OriginIGP,
			Path:        Path{ASVultr, ASNTT},
			NextHop:     netip.MustParseAddr("2001:db8:ffff::1"),
			MED:         10,
			HasMED:      true,
			Communities: []Community{NoExportTo(ASNTT), MakeCommunity(ASVultr, 100)},
		},
	}
	raw, err := EncodeMessage(&Message{Update: u})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	g := got.Update
	if !reflect.DeepEqual(g.Announced, u.Announced) {
		t.Fatalf("announced = %v", g.Announced)
	}
	if !reflect.DeepEqual(g.Withdrawn, u.Withdrawn) {
		t.Fatalf("withdrawn = %v", g.Withdrawn)
	}
	if !g.Attrs.Path.Equal(u.Attrs.Path) || g.Attrs.NextHop != u.Attrs.NextHop {
		t.Fatalf("attrs = %+v", g.Attrs)
	}
	if !g.Attrs.HasMED || g.Attrs.MED != 10 {
		t.Fatalf("MED = %v %d", g.Attrs.HasMED, g.Attrs.MED)
	}
	if !reflect.DeepEqual(g.Attrs.Communities, u.Attrs.Communities) {
		t.Fatalf("communities = %v", g.Attrs.Communities)
	}
}

func TestUpdateRoundTripIPv4(t *testing.T) {
	u := &Update{
		Announced: []addr.Prefix{addr.MustParsePrefix("203.0.113.0/24")},
		Attrs: Attrs{
			Origin:  OriginEGP,
			Path:    Path{ASGTT},
			NextHop: netip.MustParseAddr("198.51.100.1"),
		},
	}
	raw, err := EncodeMessage(&Message{Update: u})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Update.Announced, u.Announced) {
		t.Fatalf("announced = %v", got.Update.Announced)
	}
	if got.Update.Attrs.NextHop != u.Attrs.NextHop {
		t.Fatalf("nexthop = %v", got.Update.Attrs.NextHop)
	}
}

func TestUpdateMixedFamilies(t *testing.T) {
	// IPv4 NLRI needs an IPv4 next hop; IPv6 NLRI an IPv6 one. Mixing
	// in one update is rejected by whichever family the next hop fails.
	u := &Update{
		Announced: []addr.Prefix{addr.MustParsePrefix("10.0.0.0/8"), addr.MustParsePrefix("2001:db8::/32")},
		Attrs:     Attrs{NextHop: netip.MustParseAddr("10.0.0.1")},
	}
	if _, err := EncodeMessage(&Message{Update: u}); err == nil {
		t.Fatal("mixed-family update with v4 next hop accepted")
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []addr.Prefix{
		addr.MustParsePrefix("10.0.0.0/8"),
		addr.MustParsePrefix("2001:db8::/32"),
	}}
	raw, err := EncodeMessage(&Message{Update: u})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Update.Withdrawn) != 2 || len(got.Update.Announced) != 0 {
		t.Fatalf("update = %+v", got.Update)
	}
}

func TestDecodeErrors(t *testing.T) {
	raw, _ := EncodeMessage(&Message{Keepalive: true})
	// Bad marker.
	bad := append([]byte{}, raw...)
	bad[0] = 0
	if _, _, err := DecodeMessage(bad); err == nil {
		t.Fatal("bad marker accepted")
	}
	// Bad type.
	bad = append([]byte{}, raw...)
	bad[18] = 99
	if _, _, err := DecodeMessage(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Short.
	if _, _, err := DecodeMessage(raw[:10]); err == nil {
		t.Fatal("short message accepted")
	}
	// Wrong version.
	o, _ := EncodeMessage(&Message{Open: &Open{Version: 3, AS: 1, RouterID: 1}})
	if _, _, err := DecodeMessage(o); err == nil {
		t.Fatal("version 3 accepted")
	}
}

// Property: IPv6 UPDATE encoding round-trips arbitrary path/community
// combinations.
func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(pathRaw []uint16, comms []uint32, subIdx uint16, med uint32) bool {
		if len(pathRaw) > 30 {
			pathRaw = pathRaw[:30]
		}
		if len(comms) > 30 {
			comms = comms[:30]
		}
		var path Path
		for _, a := range pathRaw {
			path = append(path, ASN(a))
		}
		var cs []Community
		for _, c := range comms {
			cs = append(cs, Community(c))
		}
		parent := addr.MustParsePrefix("2001:db8::/32")
		pfx, err := parent.Subnet(48, int(subIdx))
		if err != nil {
			return false
		}
		u := &Update{
			Announced: []addr.Prefix{pfx},
			Attrs: Attrs{
				Path:        path,
				NextHop:     netip.MustParseAddr("2001:db8:ffff::1"),
				MED:         med,
				HasMED:      med != 0,
				Communities: cs,
			},
		}
		raw, err := EncodeMessage(&Message{Update: u})
		if err != nil {
			return false
		}
		got, n, err := DecodeMessage(raw)
		if err != nil || n != len(raw) {
			return false
		}
		g := got.Update
		if len(g.Announced) != 1 || g.Announced[0] != pfx {
			return false
		}
		if !g.Attrs.Path.Equal(path) {
			return false
		}
		if len(g.Attrs.Communities) != len(cs) {
			return false
		}
		for i := range cs {
			if g.Attrs.Communities[i] != cs[i] {
				return false
			}
		}
		return g.Attrs.MED == med || !u.Attrs.HasMED
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix encoding round-trips for arbitrary prefix lengths.
func TestPrefixCodecProperty(t *testing.T) {
	f := func(ipRaw [16]byte, bits uint8) bool {
		b := int(bits) % 129
		ipRaw[0], ipRaw[1] = 0x20, 0x01 // keep it a plausible global
		p, err := addr.PrefixFrom(netip.AddrFrom16(ipRaw), b)
		if err != nil {
			return false
		}
		enc := encodePrefixes([]addr.Prefix{p})
		dec, err := decodePrefixes(enc, true)
		if err != nil || len(dec) != 1 {
			return false
		}
		return dec[0] == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityHelpers(t *testing.T) {
	c := MakeCommunity(ASVultr, 6000)
	if c.ASN() != ASVultr || c.Value() != 6000 {
		t.Fatalf("community parts: %v %v", c.ASN(), c.Value())
	}
	if c.String() != "20473:6000" {
		t.Fatalf("String = %q", c.String())
	}
	if CommunityNoExport.String() != "no-export" {
		t.Fatalf("well-known String = %q", CommunityNoExport.String())
	}
	if NoExportTo(ASNTT) != MakeCommunity(64600, 2914) {
		t.Fatal("NoExportTo wrong")
	}
	if PrependTo(ASNTT, 2) != MakeCommunity(64602, 2914) {
		t.Fatal("PrependTo wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PrependTo(_, 5) did not panic")
		}
	}()
	PrependTo(ASNTT, 5)
}

func TestPathHelpers(t *testing.T) {
	p := Path{64512, ASVultr, ASNTT}
	if !p.Contains(ASNTT) || p.Contains(ASGTT) {
		t.Fatal("Contains wrong")
	}
	s := p.StripPrivate()
	if !s.Equal(Path{ASVultr, ASNTT}) {
		t.Fatalf("StripPrivate = %v", s)
	}
	pre := s.Prepend(ASGTT, 2)
	if !pre.Equal(Path{ASGTT, ASGTT, ASVultr, ASNTT}) {
		t.Fatalf("Prepend = %v", pre)
	}
	// Prepend must not alias the original.
	pre[2] = 0
	if s[0] != ASVultr {
		t.Fatal("Prepend aliased source")
	}
	if p.String() != "64512 20473 2914" {
		t.Fatalf("String = %q", p.String())
	}
	c := p.Clone()
	c[0] = 1
	if p[0] != 64512 {
		t.Fatal("Clone aliased")
	}
	if !ASN(64512).IsPrivate() || ASN(2914).IsPrivate() {
		t.Fatal("IsPrivate wrong")
	}
}

func TestRouteHelpers(t *testing.T) {
	r := &Route{
		Prefix:      addr.MustParsePrefix("2001:db8::/48"),
		Path:        Path{1, 2},
		Communities: []Community{MakeCommunity(9, 9)},
	}
	c := r.Clone()
	c.Path[0] = 99
	c.AddCommunity(MakeCommunity(8, 8))
	if r.Path[0] != 1 || len(r.Communities) != 1 {
		t.Fatal("Clone aliased route")
	}
	c.AddCommunity(MakeCommunity(8, 8)) // duplicate ignored
	if len(c.Communities) != 2 {
		t.Fatalf("AddCommunity dup: %v", c.Communities)
	}
	if !c.HasCommunity(MakeCommunity(8, 8)) {
		t.Fatal("HasCommunity wrong")
	}
	sc := c.SortedCommunities()
	if sc[0] > sc[1] {
		t.Fatal("SortedCommunities unsorted")
	}
	if r.String() == "" || (*Route)(nil).String() == "" {
		t.Fatal("String empty")
	}
	for _, o := range []Origin{OriginIGP, OriginEGP, OriginIncomplete, Origin(7)} {
		if o.String() == "" {
			t.Fatal("Origin.String empty")
		}
	}
}
