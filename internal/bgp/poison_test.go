package bgp

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

// TestPoisonBlocksVictim: a prefix originated with a poisoned AS path is
// rejected by the victim's loop prevention, everywhere.
func TestPoisonBlocksVictim(t *testing.T) {
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	telia := NewSpeaker(eng, "telia", ASTelia, 4)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	Connect(vultr, ntt, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:12::1", "2001:db8:12::2")
	Connect(vultr, telia, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	edge.OriginateWithPath(pfx, Path{ASNTT})
	eng.Run(10 * time.Second)

	if ntt.Best(pfx) != nil {
		t.Fatal("poisoned AS accepted the route")
	}
	best := telia.Best(pfx)
	if best == nil {
		t.Fatal("unpoisoned provider did not learn the route")
	}
	// The poison rides the path: [1299's view: 20473 64512 2914].
	if !best.Path.Contains(ASNTT) {
		t.Fatalf("poison missing from path %v", best.Path)
	}
}

// TestPoisonBlocksTransitPaths: unlike an action community, poisoning an
// AS also kills longer paths that merely transit it.
func TestPoisonBlocksTransitPaths(t *testing.T) {
	// edge -> vultr -> {ntt, cogent}; ntt <-> cogent peer; observer is
	// NTT's customer "obs". Route poisoned with Cogent: obs can still
	// hear via NTT directly, but if we poison NTT, even the
	// Cogent->NTT->obs path dies and obs hears nothing.
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	cogent := NewSpeaker(eng, "cogent", ASCogent, 4)
	obs := NewSpeaker(eng, "obs", 64513, 5)

	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	// The provider scrubs its action communities on export to the core,
	// as Vultr does; otherwise other ASes would honor 64600:* too.
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	cA.ScrubActionCommunities = true
	Connect(vultr, ntt, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:12::1", "2001:db8:12::2")
	cA.ScrubActionCommunities = true
	Connect(vultr, cogent, cA, cB)
	cA, cB = pairCfg(RelPeer, "2001:db8:13::1", "2001:db8:13::2")
	Connect(ntt, cogent, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:14::1", "2001:db8:14::2")
	Connect(ntt, obs, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	advance := func(d time.Duration) { eng.Run(eng.Now() + d) }

	// Community suppression of NTT: obs still hears via Cogent->NTT.
	edge.Originate(pfx, NoExportTo(ASNTT))
	advance(30 * time.Second)
	best := obs.Best(pfx)
	if best == nil {
		t.Fatal("community suppression killed the transit path too")
	}
	if !best.Path.Contains(ASCogent) {
		t.Fatalf("expected the Cogent transit path, got %v", best.Path)
	}

	// Poisoning NTT: everything through NTT dies; obs is single-homed
	// behind NTT, so it loses the prefix entirely.
	edge.OriginateWithPath(pfx, Path{ASNTT})
	advance(3 * time.Minute)
	if obs.Best(pfx) != nil {
		t.Fatalf("poisoning left a path through the victim: %v", obs.Best(pfx).Path)
	}

	// Clearing the poison restores reachability.
	edge.Originate(pfx)
	advance(3 * time.Minute)
	if obs.Best(pfx) == nil {
		t.Fatal("clearing the poison did not restore the route")
	}
}

func TestPoisonedPathOnWire(t *testing.T) {
	// The poisoned ASN must survive the wire codec like any other path
	// element.
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(a, b, cA, cB)
	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	a.OriginateWithPath(pfx, Path{300, 400})
	eng.Run(10 * time.Second)
	best := b.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	if !best.Path.Equal(Path{100, 300, 400}) {
		t.Fatalf("path = %v, want [100 300 400]", best.Path)
	}
}
