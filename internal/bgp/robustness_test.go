package bgp

import (
	"math/rand"
	"testing"

	"tango/internal/addr"
)

func prefixes(ss ...string) []addr.Prefix {
	out := make([]addr.Prefix, len(ss))
	for i, s := range ss {
		out[i] = addr.MustParsePrefix(s)
	}
	return out
}

// BGP messages arrive from other administrative domains: the decoder must
// reject malformed input with an error, never panic.
func TestDecodeMessageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("DecodeMessage panicked: %v", rec)
		}
	}()
	for i := 0; i < 20000; i++ {
		n := r.Intn(100)
		data := make([]byte, n)
		r.Read(data)
		_, _, _ = DecodeMessage(data)
	}
}

// Mutating valid messages must also be safe (decode error or consistent
// result, never a panic).
func TestDecodeMutatedMessagesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))

	// Build a realistic update to mutate.
	u := &Update{
		Announced: prefixes("2001:db8:1::/48", "2001:db8:2::/48"),
		Withdrawn: prefixes("2001:db8:3::/48"),
		Attrs: Attrs{
			Path:        Path{1, 2, 3},
			NextHop:     v6("2001:db8::1"),
			MED:         5,
			HasMED:      true,
			Communities: []Community{NoExportTo(ASNTT)},
		},
	}
	valid, err := EncodeMessage(&Message{Update: u})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("mutated decode panicked: %v", rec)
		}
	}()
	for i := 0; i < 20000; i++ {
		m := append([]byte{}, valid...)
		// 1-3 random byte mutations.
		for j := 0; j < 1+r.Intn(3); j++ {
			m[r.Intn(len(m))] = byte(r.Intn(256))
		}
		// Random truncation half the time.
		if r.Intn(2) == 0 {
			m = m[:r.Intn(len(m)+1)]
		}
		_, _, _ = DecodeMessage(m)
	}
}
