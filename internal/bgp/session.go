package bgp

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

// Relation is the business relationship of a session's remote peer, from
// the local speaker's point of view. It drives Gao-Rexford export rules
// and default local preference.
type Relation int

// Relations.
const (
	RelCustomer Relation = iota // the peer pays us
	RelPeer                     // settlement-free peer
	RelProvider                 // we pay the peer
)

func (r Relation) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// State is a (simplified) BGP FSM state.
type State int

// States.
const (
	StateIdle State = iota
	StateOpenSent
	StateEstablished
	StateDown // administratively or hold-timer down
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateEstablished:
		return "Established"
	case StateDown:
		return "Down"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// SessionConfig parameterizes one side of an eBGP session.
type SessionConfig struct {
	// Relation of the remote peer as seen from this side.
	Relation Relation
	// LocalAddr is this side's session endpoint; it becomes the NEXT_HOP
	// on routes exported here.
	LocalAddr netip.Addr
	// Delay is the one-way message propagation delay to the peer.
	Delay time.Duration
	// MRAI is the minimum route advertisement interval: successive
	// UPDATE bursts to the peer are spaced at least this far apart.
	// Zero means no pacing.
	MRAI time.Duration
	// HoldTime, when positive, enables keepalives (sent every
	// HoldTime/3) and tears the session down if nothing is heard for a
	// full HoldTime.
	HoldTime time.Duration
	// AllowOwnAS disables loop rejection of routes whose AS path
	// contains the local ASN ("allowas-in"). The Vultr scenario needs it
	// at each DC's border: both POPs announce from AS 20473, and each
	// hears the other's prefixes through the public core with 20473
	// already in the path — exactly as in the paper's deployment.
	AllowOwnAS bool
	// StripPrivateASNs removes RFC 6996 private ASNs from the AS path
	// when exporting to this peer, as Vultr does when propagating
	// customer announcements made from a private ASN.
	StripPrivateASNs bool
	// ScrubActionCommunities removes this speaker's action communities
	// (64600-64603 namespaces) after applying them, so internal knobs
	// do not leak beyond the provider applying them.
	ScrubActionCommunities bool
	// Import, when non-nil, runs after the standard import pipeline;
	// returning nil rejects the route. It receives a private clone and
	// may modify it.
	Import func(*Route) *Route
	// Export, when non-nil, runs before the standard export transform;
	// returning nil suppresses the export. It receives a private clone
	// and may modify it.
	Export func(*Route) *Route
}

// Session is one side of an established eBGP session. Messages to the
// peer are serialized to wire format and delivered after the configured
// delay, so everything a speaker learns arrives through the real codec.
type Session struct {
	speaker *Speaker
	peer    *Session
	cfg     SessionConfig
	state   State

	adjIn  map[addr.Prefix]*Route
	adjOut map[addr.Prefix]*Route

	// MRAI pacing state.
	pending   map[addr.Prefix]bool
	mraiArmed bool
	lastFlush sim.Time
	neverSent bool
	// Liveness.
	lastHeard      sim.Time
	keepaliveTimer *sim.Ticker
	holdEvent      *sim.Event
	// Fault injection: when true, all messages in both directions are
	// silently dropped (link cut), eventually expiring the hold timer.
	blackholed bool

	Stats struct {
		MsgsSent, MsgsRcvd       uint64
		UpdatesSent, UpdatesRcvd uint64
		RoutesRejected           uint64
	}
}

// Speaker returns the owning speaker.
func (s *Session) Speaker() *Speaker { return s.speaker }

// Peer returns the remote speaker.
func (s *Session) Peer() *Speaker { return s.peer.speaker }

// PeerAS returns the remote speaker's ASN.
func (s *Session) PeerAS() ASN { return s.peer.speaker.AS }

// Relation returns the configured relation of the peer.
func (s *Session) Relation() Relation { return s.cfg.Relation }

// State returns the FSM state.
func (s *Session) State() State { return s.state }

// LocalAddr returns this side's session endpoint address.
func (s *Session) LocalAddr() netip.Addr { return s.cfg.LocalAddr }

// PeerAddr returns the remote side's session endpoint address.
func (s *Session) PeerAddr() netip.Addr { return s.peer.cfg.LocalAddr }

// AdjIn returns the route learned from the peer for p, if any.
func (s *Session) AdjIn(p addr.Prefix) (*Route, bool) {
	r, ok := s.adjIn[p]
	return r, ok
}

// AdjInLen returns the number of routes learned from the peer.
func (s *Session) AdjInLen() int { return len(s.adjIn) }

// AdjOut returns the route currently advertised to the peer for p.
func (s *Session) AdjOut(p addr.Prefix) (*Route, bool) {
	r, ok := s.adjOut[p]
	return r, ok
}

// SetBlackholed cuts (or restores) the session's transport in both
// directions. With a HoldTime configured, both sides eventually expire
// and flush routes learned from each other.
func (s *Session) SetBlackholed(v bool) {
	s.blackholed = v
	s.peer.blackholed = v
}

func (s *Session) String() string {
	return fmt.Sprintf("%s->%s(%s)", s.speaker.Name, s.peer.speaker.Name, s.cfg.Relation)
}

// Connect wires two speakers together with an eBGP session and starts the
// handshake. cfgA describes the session from a's side (so cfgA.Relation
// is what b is to a), cfgB from b's side. The relations must be
// consistent (customer on one side implies provider on the other).
func Connect(a, b *Speaker, cfgA, cfgB SessionConfig) (*Session, *Session) {
	if a.eng != b.eng {
		c := a.eng.Coord()
		if c == nil || c != b.eng.Coord() {
			panic("bgp: Connect across engines")
		}
		// A partition-crossing session is only sound under the conservative
		// epoch scheme when its messages are in flight at least one
		// lookahead (the partitioner folds session delays into its edge
		// minimums, so this holds by construction — keep it loud anyway).
		if la := c.Lookahead(); la > 0 && (cfgA.Delay < la || cfgB.Delay < la) {
			panic(fmt.Sprintf("bgp: cross-partition session %s<->%s delay below lookahead %v",
				a.Name, b.Name, la))
		}
	}
	if (cfgA.Relation == RelCustomer) != (cfgB.Relation == RelProvider) ||
		(cfgA.Relation == RelProvider) != (cfgB.Relation == RelCustomer) {
		panic(fmt.Sprintf("bgp: inconsistent relations %v/%v between %s and %s",
			cfgA.Relation, cfgB.Relation, a.Name, b.Name))
	}
	sa := newSession(a, cfgA)
	sb := newSession(b, cfgB)
	sa.peer, sb.peer = sb, sa
	a.sessions = append(a.sessions, sa)
	b.sessions = append(b.sessions, sb)
	sa.startHandshake()
	sb.startHandshake()
	return sa, sb
}

func newSession(sp *Speaker, cfg SessionConfig) *Session {
	return &Session{
		speaker:   sp,
		cfg:       cfg,
		state:     StateIdle,
		adjIn:     make(map[addr.Prefix]*Route),
		adjOut:    make(map[addr.Prefix]*Route),
		pending:   make(map[addr.Prefix]bool),
		neverSent: true,
	}
}

func (s *Session) startHandshake() {
	s.state = StateOpenSent
	hold := uint16(s.cfg.HoldTime / time.Second)
	s.sendMsg(&Message{Open: &Open{Version: 4, AS: s.speaker.AS, HoldTime: hold, RouterID: s.speaker.RouterID}})
}

// sendMsg serializes and schedules delivery to the peer.
func (s *Session) sendMsg(m *Message) {
	if s.blackholed || s.state == StateDown {
		return
	}
	raw, err := EncodeMessage(m)
	if err != nil {
		panic(fmt.Sprintf("bgp: encoding on %v: %v", s, err))
	}
	s.Stats.MsgsSent++
	if m.Update != nil {
		s.Stats.UpdatesSent++
	}
	peer := s.peer
	at := s.speaker.eng.Now() + sim.Time(s.cfg.Delay)
	sim.CrossScheduleAt(s.speaker.eng, peer.speaker.eng, at, peer, raw)
}

// OnSimEvent implements sim.ArgHandler: the arrival of one serialized
// message, fired on this side's engine. Receive-side gating (blackhole,
// session down) happens here, at delivery time on the receiving
// partition — never on the sender's goroutine.
func (s *Session) OnSimEvent(arg any) {
	if s.blackholed || s.state == StateDown {
		return
	}
	s.recvBytes(arg.([]byte))
}

func (s *Session) recvBytes(raw []byte) {
	m, _, err := DecodeMessage(raw)
	if err != nil {
		panic(fmt.Sprintf("bgp: decoding on %v: %v", s, err))
	}
	s.Stats.MsgsRcvd++
	s.lastHeard = s.speaker.eng.Now()
	s.rearmHold()
	switch {
	case m.Open != nil:
		s.handleOpen(m.Open)
	case m.Update != nil:
		s.Stats.UpdatesRcvd++
		s.speaker.handleUpdate(s, m.Update)
	case m.Notification != nil:
		s.goDown()
	case m.Keepalive:
		if s.state == StateOpenSent {
			s.establish()
		}
	}
}

func (s *Session) handleOpen(o *Open) {
	if o.AS != s.peer.speaker.AS {
		s.sendMsg(&Message{Notification: &Notification{Code: 2, Subcode: 2}})
		s.goDown()
		return
	}
	s.sendMsg(&Message{Keepalive: true})
	if s.state == StateOpenSent {
		// Wait for the peer's KEEPALIVE confirming our OPEN.
	}
}

func (s *Session) establish() {
	if s.state == StateEstablished {
		return
	}
	s.state = StateEstablished
	if s.cfg.HoldTime > 0 {
		interval := s.cfg.HoldTime / 3
		s.keepaliveTimer = sim.NewTicker(s.speaker.eng, interval, func(sim.Time) {
			s.sendMsg(&Message{Keepalive: true})
		})
		s.rearmHold()
	}
	// Initial table exchange: advertise everything eligible.
	s.speaker.scheduleFullExport(s)
}

func (s *Session) rearmHold() {
	if s.cfg.HoldTime <= 0 || s.state == StateDown {
		return
	}
	if s.holdEvent != nil {
		s.speaker.eng.Cancel(s.holdEvent)
	}
	s.holdEvent = s.speaker.eng.Schedule(s.cfg.HoldTime, func() {
		s.goDown()
	})
}

// goDown tears the session down locally: routes learned here are flushed
// and best-path selection re-runs.
func (s *Session) goDown() {
	if s.state == StateDown {
		return
	}
	s.state = StateDown
	if s.keepaliveTimer != nil {
		s.keepaliveTimer.Stop()
	}
	if s.holdEvent != nil {
		s.speaker.eng.Cancel(s.holdEvent)
		s.holdEvent = nil
	}
	affected := make([]addr.Prefix, 0, len(s.adjIn))
	for p := range s.adjIn {
		affected = append(affected, p)
	}
	s.adjIn = make(map[addr.Prefix]*Route)
	s.adjOut = make(map[addr.Prefix]*Route)
	s.pending = make(map[addr.Prefix]bool)
	for _, p := range affected {
		s.speaker.reselect(p)
	}
}

// queue marks a prefix as needing (re)advertisement to this peer and
// arms the MRAI flush.
func (s *Session) queue(p addr.Prefix) {
	if s.state != StateEstablished {
		return
	}
	s.pending[p] = true
	if s.mraiArmed {
		return
	}
	now := s.speaker.eng.Now()
	wait := time.Duration(0)
	if s.cfg.MRAI > 0 && !s.neverSent {
		if next := s.lastFlush + s.cfg.MRAI; next > now {
			wait = next - now
		}
	}
	s.mraiArmed = true
	s.speaker.eng.Schedule(wait, s.flush)
}

// flush advertises all pending changes in (at most) two UPDATE messages
// per distinct attribute set — one per prefix keeps the codec simple and
// matters nothing for correctness.
func (s *Session) flush() {
	s.mraiArmed = false
	if s.state != StateEstablished {
		return
	}
	s.lastFlush = s.speaker.eng.Now()
	s.neverSent = false
	prefixes := make([]addr.Prefix, 0, len(s.pending))
	for p := range s.pending {
		prefixes = append(prefixes, p)
	}
	s.pending = make(map[addr.Prefix]bool)
	for _, p := range prefixes {
		s.advertise(p)
	}
}

// advertise computes the export route for p and sends an UPDATE if it
// differs from what the peer last heard.
func (s *Session) advertise(p addr.Prefix) {
	best := s.speaker.locRIB[p]
	export := s.speaker.exportRoute(s, best)
	prev, had := s.adjOut[p]
	if export == nil {
		if !had {
			return
		}
		delete(s.adjOut, p)
		s.sendMsg(&Message{Update: &Update{Withdrawn: []addr.Prefix{p}}})
		return
	}
	if had && sameExport(prev, export) {
		return
	}
	s.adjOut[p] = export
	u := &Update{
		Announced: []addr.Prefix{p},
		Attrs: Attrs{
			Origin:      export.Origin,
			Path:        export.Path,
			NextHop:     export.NextHop,
			MED:         export.MED,
			HasMED:      export.MED != 0,
			Communities: export.Communities,
		},
	}
	s.sendMsg(&Message{Update: u})
}

func sameExport(a, b *Route) bool {
	if !a.Path.Equal(b.Path) || a.NextHop != b.NextHop || a.Origin != b.Origin || a.MED != b.MED {
		return false
	}
	ac, bc := a.SortedCommunities(), b.SortedCommunities()
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}
