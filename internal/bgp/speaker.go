package bgp

import (
	"fmt"
	"sort"

	"tango/internal/addr"
	"tango/internal/sim"
)

// Speaker is one BGP router: it owns sessions, runs the decision process
// over routes learned from all peers plus locally originated ones, and
// paces re-advertisement to each peer. One Speaker models one AS's
// routing (the scenarios have a single point of presence per AS, plus the
// two Tango edge servers speaking from private ASNs).
type Speaker struct {
	Name     string
	AS       ASN
	RouterID uint32

	eng      *sim.Engine
	sessions []*Session

	originated map[addr.Prefix]*Route
	locRIB     map[addr.Prefix]*Route

	// OnBestChange fires whenever the best route for a prefix changes
	// (newBest nil on withdrawal). The Tango node uses it to program
	// the data-plane FIB.
	OnBestChange func(p addr.Prefix, newBest, old *Route)

	// LocalPrefFor maps a session relation to the default LOCAL_PREF
	// assigned on import; nil uses Gao-Rexford defaults (customer 200,
	// peer 100, provider 50).
	LocalPrefFor func(Relation) uint32

	Stats struct {
		BestChanges uint64
		Withdrawals uint64
		// PolicySuppressed counts exports the Gao-Rexford valley-free
		// rule refused (a peer- or provider-learned route headed
		// anywhere but a customer).
		PolicySuppressed uint64
	}
}

// NewSpeaker creates a speaker on the given engine.
func NewSpeaker(eng *sim.Engine, name string, as ASN, routerID uint32) *Speaker {
	return &Speaker{
		Name:       name,
		AS:         as,
		RouterID:   routerID,
		eng:        eng,
		originated: make(map[addr.Prefix]*Route),
		locRIB:     make(map[addr.Prefix]*Route),
	}
}

// Sessions returns the speaker's sessions in creation order.
func (sp *Speaker) Sessions() []*Session { return sp.sessions }

// SessionTo returns the first session whose peer is the named speaker.
func (sp *Speaker) SessionTo(peer string) *Session {
	for _, s := range sp.sessions {
		if s.peer.speaker.Name == peer {
			return s
		}
	}
	return nil
}

// Best returns the current best route for p, or nil.
func (sp *Speaker) Best(p addr.Prefix) *Route { return sp.locRIB[p] }

// BestPrefixes returns all prefixes with a best route, sorted.
func (sp *Speaker) BestPrefixes() []addr.Prefix {
	out := make([]addr.Prefix, 0, len(sp.locRIB))
	for p := range sp.locRIB {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Originate announces a locally originated prefix with the given
// communities. Re-originating the same prefix with different communities
// replaces the previous announcement (the knob the Tango discovery
// algorithm turns between rounds).
func (sp *Speaker) Originate(p addr.Prefix, communities ...Community) {
	sp.OriginateWithPath(p, nil, communities...)
}

// OriginateWithPath announces a prefix with a pre-seeded AS path — the
// AS-path poisoning knob (§3, §6): listing a victim ASN makes that AS
// reject the route by loop prevention, suppressing *every* path through
// it (unlike an action community, which only suppresses one provider's
// direct export). The speaker's own ASN is still prepended on export.
func (sp *Speaker) OriginateWithPath(p addr.Prefix, poison Path, communities ...Community) {
	r := &Route{
		Prefix:      p,
		Path:        poison.Clone(),
		Origin:      OriginIGP,
		LocalPref:   1 << 30, // locally originated beats anything learned
		Communities: append([]Community(nil), communities...),
	}
	sp.originated[p] = r
	sp.reselect(p)
	// Even if the best route (local) is unchanged, the communities or
	// the seeded path may have changed, which alters per-peer exports.
	sp.scheduleExportAll(p)
}

// Withdraw removes a locally originated prefix.
func (sp *Speaker) Withdraw(p addr.Prefix) {
	if _, ok := sp.originated[p]; !ok {
		return
	}
	delete(sp.originated, p)
	sp.reselect(p)
}

// Originated returns the locally originated route for p, if any.
func (sp *Speaker) Originated(p addr.Prefix) (*Route, bool) {
	r, ok := sp.originated[p]
	return r, ok
}

// OriginatedPrefixes returns every locally originated prefix in a
// deterministic (sorted) order, so seeded fault generators can pick
// withdrawal targets reproducibly.
func (sp *Speaker) OriginatedPrefixes() []addr.Prefix {
	out := make([]addr.Prefix, 0, len(sp.originated))
	for p := range sp.originated {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// handleUpdate applies a decoded UPDATE from a session.
func (sp *Speaker) handleUpdate(s *Session, u *Update) {
	for _, p := range u.Withdrawn {
		if _, ok := s.adjIn[p]; ok {
			delete(s.adjIn, p)
			sp.reselect(p)
		}
	}
	for _, p := range u.Announced {
		r := &Route{
			Prefix:      p,
			Path:        u.Attrs.Path.Clone(),
			NextHop:     u.Attrs.NextHop,
			Origin:      u.Attrs.Origin,
			MED:         u.Attrs.MED,
			Communities: append([]Community(nil), u.Attrs.Communities...),
			FromSession: s,
		}
		imported := sp.importRoute(s, r)
		if imported == nil {
			s.Stats.RoutesRejected++
			// An implicit withdrawal if we previously accepted one.
			if _, ok := s.adjIn[p]; ok {
				delete(s.adjIn, p)
				sp.reselect(p)
			}
			continue
		}
		s.adjIn[p] = imported
		sp.reselect(p)
	}
}

// importRoute runs the import pipeline; nil rejects.
func (sp *Speaker) importRoute(s *Session, r *Route) *Route {
	// Loop prevention.
	if r.Path.Contains(sp.AS) && !s.cfg.AllowOwnAS {
		return nil
	}
	r.LocalPref = sp.localPrefFor(s.cfg.Relation)
	if s.cfg.Import != nil {
		return s.cfg.Import(r)
	}
	return r
}

func (sp *Speaker) localPrefFor(rel Relation) uint32 {
	if sp.LocalPrefFor != nil {
		return sp.LocalPrefFor(rel)
	}
	return DefaultLocalPref(rel)
}

// DefaultLocalPref is the Gao-Rexford import preference: customer routes
// above peer routes above provider routes. Combined with the valley-free
// export rule this guarantees convergence (the classic stable-routing
// conditions) and means a speaker's best route is always its most
// re-exportable one — the property the generated-topology ground-truth
// enumeration in internal/topo relies on.
func DefaultLocalPref(rel Relation) uint32 {
	switch rel {
	case RelCustomer:
		return 200
	case RelPeer:
		return 100
	default:
		return 50
	}
}

// reselect re-runs the decision process for p and, on change, updates the
// Loc-RIB, fires OnBestChange, and queues re-advertisement to every peer.
func (sp *Speaker) reselect(p addr.Prefix) {
	var candidates []*Route
	if r, ok := sp.originated[p]; ok {
		candidates = append(candidates, r)
	}
	for _, s := range sp.sessions {
		if r, ok := s.adjIn[p]; ok {
			candidates = append(candidates, r)
		}
	}
	best := pickBest(candidates)
	old := sp.locRIB[p]
	if best == old {
		return
	}
	if best == nil {
		delete(sp.locRIB, p)
		sp.Stats.Withdrawals++
	} else {
		sp.locRIB[p] = best
	}
	sp.Stats.BestChanges++
	if sp.OnBestChange != nil {
		sp.OnBestChange(p, best, old)
	}
	sp.scheduleExportAll(p)
}

func (sp *Speaker) scheduleExportAll(p addr.Prefix) {
	for _, s := range sp.sessions {
		s.queue(p)
	}
}

// scheduleFullExport queues every Loc-RIB prefix on a newly established
// session (initial table exchange).
func (sp *Speaker) scheduleFullExport(s *Session) {
	for p := range sp.locRIB {
		s.queue(p)
	}
}

// pickBest implements the decision process: highest LOCAL_PREF, shortest
// AS path, lowest origin, lowest MED, then lowest peer router ID as the
// deterministic tie breaker (all sessions are eBGP).
func pickBest(cands []*Route) *Route {
	var best *Route
	for _, r := range cands {
		if best == nil || better(r, best) {
			best = r
		}
	}
	return best
}

func better(a, b *Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	ra, rb := routerIDOf(a), routerIDOf(b)
	if ra != rb {
		return ra < rb
	}
	return false // stable: keep current
}

func routerIDOf(r *Route) uint32 {
	if r.FromSession == nil {
		return 0 // locally originated wins ties
	}
	return r.FromSession.peer.speaker.RouterID
}

// exportRoute runs the export pipeline for best toward session s,
// returning the route to advertise or nil to suppress/withdraw.
func (sp *Speaker) exportRoute(s *Session, best *Route) *Route {
	if best == nil {
		return nil
	}
	// Split horizon: never send a route back where it came from.
	if best.FromSession == s {
		return nil
	}
	// Gao-Rexford: routes from providers/peers go only to customers.
	if best.FromSession != nil {
		from := best.FromSession.cfg.Relation
		if (from == RelProvider || from == RelPeer) && s.cfg.Relation != RelCustomer {
			sp.Stats.PolicySuppressed++
			return nil
		}
	}
	if best.HasCommunity(CommunityNoExport) || best.HasCommunity(CommunityNoAdvertise) {
		return nil
	}
	// Action communities addressed to this speaker.
	peerAS := s.PeerAS()
	if best.HasCommunity(NoExportTo(peerAS)) {
		return nil
	}
	out := best.Clone()
	out.FromSession = best.FromSession
	prepends := 1
	switch {
	case best.HasCommunity(PrependTo(peerAS, 3)):
		prepends = 4
	case best.HasCommunity(PrependTo(peerAS, 2)):
		prepends = 3
	case best.HasCommunity(PrependTo(peerAS, 1)):
		prepends = 2
	}
	if s.cfg.Export != nil {
		out = s.cfg.Export(out)
		if out == nil {
			return nil
		}
	}
	if s.cfg.StripPrivateASNs {
		out.Path = out.Path.StripPrivate()
	}
	out.Path = out.Path.Prepend(sp.AS, prepends)
	out.NextHop = s.cfg.LocalAddr
	out.LocalPref = 0 // not carried on eBGP
	if s.cfg.ScrubActionCommunities {
		out.Communities = scrubActions(out.Communities)
	}
	return out
}

func scrubActions(cs []Community) []Community {
	out := cs[:0]
	for _, c := range cs {
		switch c.ASN() {
		case ActionNoExportTo, ActionPrepend1, ActionPrepend2, ActionPrepend3:
		default:
			out = append(out, c)
		}
	}
	return out
}

// Engine returns the speaker's simulation engine.
func (sp *Speaker) Engine() *sim.Engine { return sp.eng }

func (sp *Speaker) String() string {
	return fmt.Sprintf("%s(AS%d)", sp.Name, sp.AS)
}
