package bgp

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

const msDelay = 20 * time.Millisecond

func v6(s string) netip.Addr { return netip.MustParseAddr(s) }

// pairCfg builds matching session configs with the given relations.
func pairCfg(relA Relation, la, lb string) (SessionConfig, SessionConfig) {
	var relB Relation
	switch relA {
	case RelCustomer:
		relB = RelProvider
	case RelProvider:
		relB = RelCustomer
	default:
		relB = RelPeer
	}
	return SessionConfig{Relation: relA, LocalAddr: v6(la), Delay: msDelay},
		SessionConfig{Relation: relB, LocalAddr: v6(lb), Delay: msDelay}
}

func TestSessionEstablishAndPropagate(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "edge", 64512, 1)
	b := NewSpeaker(eng, "vultr", uint16OK(ASVultr), 2)
	cfgA, cfgB := pairCfg(RelProvider, "2001:db8:f::1", "2001:db8:f::2")
	sa, sb := Connect(a, b, cfgA, cfgB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	a.Originate(pfx)
	eng.Run(5 * time.Second)

	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", sa.State(), sb.State())
	}
	best := b.Best(pfx)
	if best == nil {
		t.Fatal("route did not propagate")
	}
	if !best.Path.Equal(Path{64512}) {
		t.Fatalf("path = %v", best.Path)
	}
	if best.NextHop != v6("2001:db8:f::1") {
		t.Fatalf("nexthop = %v", best.NextHop)
	}
	if r, ok := sb.AdjIn(pfx); !ok || r != best {
		t.Fatal("AdjIn inconsistent with Loc-RIB")
	}
	if sa.AdjInLen() != 0 {
		t.Fatal("split horizon violated: route echoed back")
	}
}

func uint16OK(a ASN) ASN { return a }

// chain builds edge(private) -> vultr -> transit -> remote-vultr ->
// remote-edge and returns the speakers.
func chain(eng *sim.Engine) (edge, vultr, transit, rvultr, redge *Speaker) {
	edge = NewSpeaker(eng, "edge", 64512, 1)
	vultr = NewSpeaker(eng, "vultr", ASVultr, 2)
	transit = NewSpeaker(eng, "ntt", ASNTT, 3)
	rvultr = NewSpeaker(eng, "vultr2", 20474, 4) // distinct AS for the remote DC side
	redge = NewSpeaker(eng, "edge2", 64513, 5)

	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	cB.StripPrivateASNs = false
	Connect(vultr, transit, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:12::1", "2001:db8:12::2")
	Connect(transit, rvultr, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:13::1", "2001:db8:13::2")
	Connect(rvultr, redge, cA, cB)
	return
}

func TestPathAccumulationAcrossChain(t *testing.T) {
	eng := sim.NewEngine()
	edge, _, _, _, redge := chain(eng)
	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	edge.Originate(pfx)
	eng.Run(10 * time.Second)

	best := redge.Best(pfx)
	if best == nil {
		t.Fatal("route did not cross the chain")
	}
	want := Path{20474, ASNTT, ASVultr, 64512}
	if !best.Path.Equal(want) {
		t.Fatalf("path = %v, want %v", best.Path, want)
	}
}

func TestStripPrivateASN(t *testing.T) {
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	cA.StripPrivateASNs = true // vultr strips when exporting to its transit
	Connect(vultr, ntt, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	edge.Originate(pfx)
	eng.Run(10 * time.Second)

	best := ntt.Best(pfx)
	if best == nil {
		t.Fatal("no route at transit")
	}
	if !best.Path.Equal(Path{ASVultr}) {
		t.Fatalf("path = %v, want [20473] (private ASN stripped)", best.Path)
	}
}

func TestGaoRexfordValleyFree(t *testing.T) {
	// transit1 -> vultr <- transit2: a route learned from provider
	// transit1 must NOT be exported to provider transit2.
	eng := sim.NewEngine()
	vultr := NewSpeaker(eng, "vultr", ASVultr, 1)
	t1 := NewSpeaker(eng, "ntt", ASNTT, 2)
	t2 := NewSpeaker(eng, "gtt", ASGTT, 3)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(vultr, t1, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	Connect(vultr, t2, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	t1.Originate(pfx)
	eng.Run(10 * time.Second)

	if vultr.Best(pfx) == nil {
		t.Fatal("customer did not learn provider route")
	}
	if t2.Best(pfx) != nil {
		t.Fatal("valley: provider route leaked to another provider")
	}

	// But a customer route IS exported to providers.
	pfx2 := addr.MustParsePrefix("2001:db8:2::/48")
	vultr.Originate(pfx2)
	eng.Run(20 * time.Second)
	if t1.Best(pfx2) == nil || t2.Best(pfx2) == nil {
		t.Fatal("origin route not exported to providers")
	}
}

func TestPeerToPeerNoTransit(t *testing.T) {
	// a --peer-- b --peer-- c: a's route must reach b but not c.
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	c := NewSpeaker(eng, "c", 300, 3)
	cA, cB := pairCfg(RelPeer, "2001:db8:10::1", "2001:db8:10::2")
	Connect(a, b, cA, cB)
	cA, cB = pairCfg(RelPeer, "2001:db8:11::1", "2001:db8:11::2")
	Connect(b, c, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	a.Originate(pfx)
	eng.Run(10 * time.Second)
	if b.Best(pfx) == nil {
		t.Fatal("peer route not learned")
	}
	if c.Best(pfx) != nil {
		t.Fatal("peer route transited")
	}
}

func TestNoExportToCommunity(t *testing.T) {
	// edge announces via vultr with NoExportTo(NTT): NTT must not hear
	// it, GTT must.
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	gtt := NewSpeaker(eng, "gtt", ASGTT, 4)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	Connect(vultr, ntt, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:12::1", "2001:db8:12::2")
	Connect(vultr, gtt, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	edge.Originate(pfx, NoExportTo(ASNTT))
	eng.Run(10 * time.Second)

	if ntt.Best(pfx) != nil {
		t.Fatal("NoExportTo(NTT) did not suppress export to NTT")
	}
	if gtt.Best(pfx) == nil {
		t.Fatal("unrelated provider also suppressed")
	}

	// Re-originating without the community restores the export — the
	// exact knob the discovery algorithm toggles.
	edge.Originate(pfx)
	eng.Run(60 * time.Second)
	if ntt.Best(pfx) == nil {
		t.Fatal("removing community did not restore export")
	}

	// And adding it back withdraws the route from NTT.
	edge.Originate(pfx, NoExportTo(ASNTT))
	eng.Run(120 * time.Second)
	if ntt.Best(pfx) != nil {
		t.Fatal("re-adding community did not withdraw from NTT")
	}
}

func TestPrependCommunity(t *testing.T) {
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	Connect(vultr, ntt, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	edge.Originate(pfx, PrependTo(ASNTT, 2))
	eng.Run(10 * time.Second)

	best := ntt.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	want := Path{ASVultr, ASVultr, ASVultr, 64512}
	if !best.Path.Equal(want) {
		t.Fatalf("path = %v, want %v", best.Path, want)
	}
}

func TestScrubActionCommunities(t *testing.T) {
	eng := sim.NewEngine()
	edge := NewSpeaker(eng, "edge", 64512, 1)
	vultr := NewSpeaker(eng, "vultr", ASVultr, 2)
	ntt := NewSpeaker(eng, "ntt", ASNTT, 3)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(edge, vultr, cA, cB)
	cA, cB = pairCfg(RelProvider, "2001:db8:11::1", "2001:db8:11::2")
	cA.ScrubActionCommunities = true
	Connect(vultr, ntt, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	keep := MakeCommunity(ASVultr, 777)
	edge.Originate(pfx, NoExportTo(ASGTT), keep)
	eng.Run(10 * time.Second)

	best := ntt.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	if best.HasCommunity(NoExportTo(ASGTT)) {
		t.Fatalf("action community leaked: %v", best.Communities)
	}
	if !best.HasCommunity(keep) {
		t.Fatalf("informational community scrubbed: %v", best.Communities)
	}
}

func TestDecisionLocalPrefThenPathLen(t *testing.T) {
	// dst originates; mid1 (1 hop) and mid2->mid3 (2 hops) both reach
	// collector as customers: shortest path wins at equal local-pref.
	eng := sim.NewEngine()
	col := NewSpeaker(eng, "col", 10, 1)
	m1 := NewSpeaker(eng, "m1", 11, 2)
	m2 := NewSpeaker(eng, "m2", 12, 3)
	m3 := NewSpeaker(eng, "m3", 13, 4)
	dst := NewSpeaker(eng, "dst", 14, 5)

	cA, cB := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	Connect(col, m1, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:11::1", "2001:db8:11::2")
	Connect(col, m2, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:12::1", "2001:db8:12::2")
	Connect(m1, dst, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:13::1", "2001:db8:13::2")
	Connect(m2, m3, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:14::1", "2001:db8:14::2")
	Connect(m3, dst, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	dst.Originate(pfx)
	eng.Run(30 * time.Second)

	best := col.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	if !best.Path.Equal(Path{11, 14}) {
		t.Fatalf("path = %v, want shortest [11 14]", best.Path)
	}

	// Raising local-pref for the long path overrides length.
	col.LocalPrefFor = nil
	s := col.SessionTo("m2")
	if s == nil {
		t.Fatal("session lookup failed")
	}
	s.cfg.Import = func(r *Route) *Route { r.LocalPref = 500; return r }
	// Force a re-advertisement by flapping the origination.
	dst.Withdraw(pfx)
	eng.Run(90 * time.Second)
	if col.Best(pfx) != nil {
		t.Fatal("withdraw did not propagate")
	}
	dst.Originate(pfx)
	eng.Run(240 * time.Second)
	best = col.Best(pfx)
	if best == nil {
		t.Fatal("no route after re-announce")
	}
	if !best.Path.Equal(Path{12, 13, 14}) {
		t.Fatalf("path = %v, want local-pref override [12 13 14]", best.Path)
	}
}

func TestDecisionRouterIDTieBreak(t *testing.T) {
	eng := sim.NewEngine()
	col := NewSpeaker(eng, "col", 10, 1)
	hi := NewSpeaker(eng, "hi", 11, 99)
	lo := NewSpeaker(eng, "lo", 12, 5)
	dst := NewSpeaker(eng, "dst", 14, 50)
	cA, cB := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	Connect(col, hi, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:11::1", "2001:db8:11::2")
	Connect(col, lo, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:12::1", "2001:db8:12::2")
	Connect(hi, dst, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:13::1", "2001:db8:13::2")
	Connect(lo, dst, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	dst.Originate(pfx)
	eng.Run(60 * time.Second)
	best := col.Best(pfx)
	if best == nil {
		t.Fatal("no route")
	}
	// Equal local-pref, equal length: lowest router ID (5, speaker lo).
	if best.Path[0] != 12 {
		t.Fatalf("tie-break picked AS%d, want 12 (lower router ID)", best.Path[0])
	}
}

func TestWithdrawFailover(t *testing.T) {
	eng := sim.NewEngine()
	col := NewSpeaker(eng, "col", 10, 1)
	p1 := NewSpeaker(eng, "p1", 11, 2)
	p2 := NewSpeaker(eng, "p2", 12, 3)
	dst := NewSpeaker(eng, "dst", 14, 4)
	cA, cB := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	Connect(col, p1, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:11::1", "2001:db8:11::2")
	Connect(col, p2, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:12::1", "2001:db8:12::2")
	Connect(p1, dst, cA, cB)
	cA, cB = pairCfg(RelCustomer, "2001:db8:13::1", "2001:db8:13::2")
	Connect(p2, dst, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	dst.Originate(pfx, NoExportTo(12)) // force via p1 only
	eng.Run(30 * time.Second)
	best := col.Best(pfx)
	if best == nil || best.Path[0] != 11 {
		t.Fatalf("initial best = %v", best)
	}

	// Suppress p1 instead: col must fail over to p2.
	dst.Originate(pfx, NoExportTo(11))
	eng.Run(120 * time.Second)
	best = col.Best(pfx)
	if best == nil {
		t.Fatal("no failover route")
	}
	if best.Path[0] != 12 {
		t.Fatalf("failover path = %v, want via 12", best.Path)
	}

	// Suppress both: prefix becomes unreachable (the discovery
	// algorithm's termination condition).
	dst.Originate(pfx, NoExportTo(11), NoExportTo(12))
	eng.Run(240 * time.Second)
	if col.Best(pfx) != nil {
		t.Fatal("prefix still reachable with all exports suppressed")
	}
}

func TestLoopPrevention(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	sa, _ := Connect(a, b, cA, cB)
	_ = sa

	// Simulate b receiving a route already containing its own AS.
	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	eng.Run(5 * time.Second) // establish
	u := &Update{
		Announced: []addr.Prefix{pfx},
		Attrs:     Attrs{Path: Path{100, 200, 300}, NextHop: v6("2001:db8:10::1")},
	}
	bs := b.sessions[0]
	b.handleUpdate(bs, u)
	if b.Best(pfx) != nil {
		t.Fatal("looped route accepted")
	}
	if bs.Stats.RoutesRejected != 1 {
		t.Fatalf("RoutesRejected = %d", bs.Stats.RoutesRejected)
	}
}

func TestMRAIPacing(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	cA.MRAI = 30 * time.Second
	sa, _ := Connect(a, b, cA, cB)
	eng.Run(time.Second)

	// Flap the origination rapidly; the peer must see paced updates,
	// not one per flap.
	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	for i := 0; i < 20; i++ {
		i := i
		eng.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			if i%2 == 0 {
				a.Originate(pfx)
			} else {
				a.Originate(pfx, NoExportTo(999)) // changes communities only
			}
		})
	}
	eng.Run(300 * time.Second)
	if b.Best(pfx) == nil {
		t.Fatal("route missing after flaps")
	}
	// 20 flaps in 2s with MRAI 30s: first flush immediate, next at
	// +30s; far fewer updates than flaps.
	if sa.Stats.UpdatesSent > 5 {
		t.Fatalf("MRAI did not pace: %d updates for 20 flaps", sa.Stats.UpdatesSent)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	cA.HoldTime = 9 * time.Second
	cB.HoldTime = 9 * time.Second
	sa, sb := Connect(a, b, cA, cB)

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	a.Originate(pfx)
	eng.Run(5 * time.Second)
	if b.Best(pfx) == nil {
		t.Fatal("route not learned")
	}

	// Cut the wire: keepalives stop, both holds expire, routes flush.
	sa.SetBlackholed(true)
	eng.Run(30 * time.Second)
	if sb.State() != StateDown {
		t.Fatalf("peer session state = %v, want Down", sb.State())
	}
	if b.Best(pfx) != nil {
		t.Fatal("route survived session death")
	}
}

func TestOnBestChangeHook(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	cA, cB := pairCfg(RelProvider, "2001:db8:10::1", "2001:db8:10::2")
	Connect(a, b, cA, cB)

	type change struct {
		p        addr.Prefix
		add, del bool
	}
	var changes []change
	b.OnBestChange = func(p addr.Prefix, nb, old *Route) {
		changes = append(changes, change{p, nb != nil, nb == nil})
	}
	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	a.Originate(pfx)
	eng.Run(30 * time.Second)
	a.Withdraw(pfx)
	eng.Run(120 * time.Second)

	if len(changes) != 2 || !changes[0].add || !changes[1].del {
		t.Fatalf("changes = %+v", changes)
	}
	if b.Stats.BestChanges != 2 || b.Stats.Withdrawals != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestInconsistentRelationsPanic(t *testing.T) {
	eng := sim.NewEngine()
	a := NewSpeaker(eng, "a", 100, 1)
	b := NewSpeaker(eng, "b", 200, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("customer/customer did not panic")
		}
	}()
	cA, _ := pairCfg(RelCustomer, "2001:db8:10::1", "2001:db8:10::2")
	cB := SessionConfig{Relation: RelCustomer, LocalAddr: v6("2001:db8:10::2")}
	Connect(a, b, cA, cB)
}

func TestStringers(t *testing.T) {
	for _, r := range []Relation{RelCustomer, RelPeer, RelProvider, Relation(9)} {
		if r.String() == "" {
			t.Fatal("Relation.String empty")
		}
	}
	for _, s := range []State{StateIdle, StateOpenSent, StateEstablished, StateDown, State(9)} {
		if s.String() == "" {
			t.Fatal("State.String empty")
		}
	}
	eng := sim.NewEngine()
	sp := NewSpeaker(eng, "x", 1, 2)
	if sp.String() != "x(AS1)" {
		t.Fatalf("Speaker.String = %q", sp.String())
	}
	if sp.Engine() != eng {
		t.Fatal("Engine accessor")
	}
}
