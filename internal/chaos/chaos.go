// Package chaos is a deterministic fault-injection engine for the
// simulated Tango deployment. It schedules scripted or seeded-random
// fault timelines — link flaps, loss bursts, delay shifts, BGP
// withdrawals — on the same event loop the system under test runs on,
// and checks registered invariants as the simulation advances.
//
// Everything is deterministic: faults fire at exact virtual instants,
// random timelines are drawn from a caller-provided named RNG stream,
// and the engine keeps an ordered event log so two runs with the same
// seed can be compared byte for byte (see the replay test).
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tango/internal/bgp"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// Entry is one line of the chaos event log.
type Entry struct {
	At  sim.Time
	Msg string
}

// Violation records an invariant failure observed at a check instant.
type Violation struct {
	At        sim.Time
	Invariant string
	Err       string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%s %s: %s", v.At, v.Invariant, v.Err)
}

// Invariant is a property checked repeatedly while the simulation runs.
// Check returns a non-nil error when the property is violated at now.
type Invariant interface {
	Name() string
	Check(now sim.Time) error
}

type funcInvariant struct {
	name string
	fn   func(now sim.Time) error
}

func (f *funcInvariant) Name() string             { return f.name }
func (f *funcInvariant) Check(now sim.Time) error { return f.fn(now) }

// InvariantFunc wraps a closure as an Invariant.
func InvariantFunc(name string, fn func(now sim.Time) error) Invariant {
	return &funcInvariant{name: name, fn: fn}
}

// Engine drives fault timelines against named targets and watches
// invariants. Targets are registered under stable names so event logs
// and random target selection are reproducible across runs.
type Engine struct {
	eng      *sim.Engine
	lines    map[string]*simnet.Line
	speakers map[string]*bgp.Speaker

	invs       []Invariant
	tick       *sim.Ticker
	log        []Entry
	violations []Violation

	// Sharded-network support: log entries produced on partition engines
	// stage per partition (one writer each) and merge into log at epoch
	// barriers in canonical (At, partition, append) order, so LogString
	// stays byte-identical across worker counts. checksOn gates the
	// barrier-hook check cadence (hooks cannot be unregistered).
	logStage    [][]Entry
	mergeHooked bool
	checkHooked bool
	checksOn    bool

	// Instrumentation (nil when uninstrumented). The journal mirrors the
	// event log: fault applies/reverts, withdrawals, and violations each
	// append one virtual-time record, so seeded runs produce byte-identical
	// trace tails.
	reg        *obs.Registry
	journal    *obs.Journal
	obsApplied *obs.Counter
	obsRevert  *obs.Counter
	obsViol    *obs.Counter
}

// New creates a chaos engine on the simulation engine under test.
func New(eng *sim.Engine) *Engine {
	return &Engine{
		eng:      eng,
		lines:    make(map[string]*simnet.Line),
		speakers: make(map[string]*bgp.Speaker),
	}
}

// Sim returns the underlying simulation engine.
func (e *Engine) Sim() *sim.Engine { return e.eng }

// Instrument registers fault counters in reg and starts journaling chaos
// events to j. Lines already registered as targets gain per-line drop
// counters; lines added later are instrumented in AddLine.
func (e *Engine) Instrument(reg *obs.Registry, j *obs.Journal) {
	e.reg = reg
	e.journal = j
	e.obsApplied = reg.Counter("tango_chaos_faults_applied_total",
		"Faults whose Apply ran successfully.")
	e.obsRevert = reg.Counter("tango_chaos_faults_reverted_total",
		"Fault windows that closed and reverted.")
	e.obsViol = reg.Counter("tango_chaos_violations_total",
		"Invariant violations observed at check instants.")
	for name, l := range e.lines {
		e.instrumentLine(name, l)
	}
}

func (e *Engine) instrumentLine(name string, l *simnet.Line) {
	drop := e.reg.Counter("tango_line_drops_total",
		"Packets refused at line admission (down or queue overflow).",
		obs.L("line", name))
	l.Instrument(name, drop, e.journalFor(l.Eng()))
}

// journalFor returns the journal view an event running on eng may write:
// the parent journal on a classic single-engine network, or eng's
// partition shard view on a sharded one (merged at epoch barriers).
func (e *Engine) journalFor(eng *sim.Engine) *obs.Journal {
	if eng.Coord() != nil {
		return e.journal.Shard(eng.Part())
	}
	return e.journal
}

// AddLine registers a line as a fault target under name.
func (e *Engine) AddLine(name string, l *simnet.Line) {
	e.lines[name] = l
	if e.reg != nil {
		e.instrumentLine(name, l)
	}
}

// AddSpeaker registers a BGP speaker as a withdrawal target under name.
func (e *Engine) AddSpeaker(name string, sp *bgp.Speaker) { e.speakers[name] = sp }

// Line returns the registered line, or nil.
func (e *Engine) Line(name string) *simnet.Line { return e.lines[name] }

// Speaker returns the registered speaker, or nil.
func (e *Engine) Speaker(name string) *bgp.Speaker { return e.speakers[name] }

// LineNames returns the registered line names, sorted.
func (e *Engine) LineNames() []string {
	out := make([]string, 0, len(e.lines))
	for n := range e.lines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SpeakerNames returns the registered speaker names, sorted.
func (e *Engine) SpeakerNames() []string {
	out := make([]string, 0, len(e.speakers))
	for n := range e.speakers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Watch registers an invariant; it is checked on the cadence set by
// StartChecks and by CheckNow.
func (e *Engine) Watch(inv Invariant) { e.invs = append(e.invs, inv) }

// Invariants returns how many invariants are registered.
func (e *Engine) Invariants() int { return len(e.invs) }

// Schedule arms a fault: Apply fires at the fault's start instant and,
// for a finite window, the returned revert runs when the window closes.
// Both transitions are logged. On a sharded network the fault fires on
// its target's partition engine (line faults mutate send-path state
// owned by the line's source partition; withdrawals run on the
// speaker's partition), so no cross-partition state is touched.
func (e *Engine) Schedule(f Fault) {
	at, dur := f.Window()
	kind := obs.KindFaultApply
	if _, isWithdraw := f.(Withdrawal); isWithdraw {
		kind = obs.KindWithdraw
	}
	owner := e.ownerEngine(f)
	if c := owner.Coord(); c != nil {
		e.ensureMergeHook(c)
	}
	owner.ScheduleAt(at, func() {
		revert, err := f.Apply(e)
		if err != nil {
			e.logOn(owner, "fault %s: %v", f.Label(), err)
			return
		}
		e.logOn(owner, "apply %s", f.Label())
		e.obsApplied.Inc()
		e.journalFor(owner).Record(owner.Now(), kind, 0, 0, int64(dur), f.Label())
		if revert != nil && dur > 0 {
			owner.Schedule(dur, func() {
				revert()
				e.logOn(owner, "revert %s", f.Label())
				e.obsRevert.Inc()
				e.journalFor(owner).Record(owner.Now(), obs.KindFaultRevert, 0, 0, 0, f.Label())
			})
		}
	})
}

// ownerEngine resolves the partition engine that owns a fault's target
// state; unknown fault types fall back to the chaos engine's own engine.
func (e *Engine) ownerEngine(f Fault) *sim.Engine {
	lineOwner := func(name string) *sim.Engine {
		if l := e.lines[name]; l != nil {
			return l.Eng()
		}
		return e.eng
	}
	switch t := f.(type) {
	case LinkDown:
		return lineOwner(t.Target)
	case LossBurst:
		return lineOwner(t.Target)
	case DelayShift:
		return lineOwner(t.Target)
	case DelaySwap:
		return lineOwner(t.Target)
	case Withdrawal:
		if sp := e.speakers[t.Speaker]; sp != nil {
			return sp.Engine()
		}
	}
	return e.eng
}

// ensureMergeHook registers, once, the barrier hook that folds staged
// per-partition log entries (and the journal's shard views) back into
// the shared structures. Registered before any check hook, so checks at
// a barrier observe a fully merged log.
func (e *Engine) ensureMergeHook(c *sim.Coordinator) {
	if e.mergeHooked {
		return
	}
	e.mergeHooked = true
	if e.logStage == nil {
		e.logStage = make([][]Entry, c.NumParts())
	}
	c.AtBarrier(0, func(sim.Time) {
		e.journal.MergeShards()
		e.mergeStagedLog()
	})
}

// mergeStagedLog drains per-partition staged entries into the shared log
// in (At, partition, append order) order. Runs only at barriers (workers
// quiesced).
func (e *Engine) mergeStagedLog() {
	type staged struct {
		part int
		en   Entry
	}
	var all []staged
	for p := range e.logStage {
		for _, en := range e.logStage[p] {
			all = append(all, staged{p, en})
		}
		e.logStage[p] = e.logStage[p][:0]
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].en.At != all[j].en.At {
			return all[i].en.At < all[j].en.At
		}
		return all[i].part < all[j].part
	})
	for _, s := range all {
		e.log = append(e.log, s.en)
	}
}

// StartChecks begins checking every registered invariant on a fixed
// cadence. Checks run as ordinary events, so they observe the network
// only at event boundaries — never mid-packet. On a sharded network the
// cadence instead rides the coordinator's epoch barriers (workers
// quiesced, cross traffic drained — the only instants where global
// invariants like buffer balance are well defined); the cadence is then
// fixed by the first StartChecks call.
func (e *Engine) StartChecks(every time.Duration) {
	if c := e.eng.Coord(); c != nil {
		e.checksOn = true
		if !e.checkHooked {
			e.checkHooked = true
			e.ensureMergeHook(c)
			c.AtBarrier(every, func(now sim.Time) {
				if e.checksOn {
					e.runChecks(now)
				}
			})
		}
		return
	}
	if e.tick != nil {
		e.tick.Stop()
	}
	e.tick = sim.NewTicker(e.eng, every, func(now sim.Time) { e.runChecks(now) })
}

// StopChecks halts the check cadence.
func (e *Engine) StopChecks() {
	e.checksOn = false
	if e.tick != nil {
		e.tick.Stop()
	}
}

// CheckNow runs every invariant once at the current instant.
func (e *Engine) CheckNow() { e.runChecks(e.eng.Now()) }

// runChecks is always single-threaded: a ticker event on the classic
// path, a barrier hook on the sharded path, or CheckNow between runs —
// so it appends to the shared log and parent journal directly.
func (e *Engine) runChecks(now sim.Time) {
	for _, inv := range e.invs {
		if err := inv.Check(now); err != nil {
			v := Violation{At: now, Invariant: inv.Name(), Err: err.Error()}
			e.violations = append(e.violations, v)
			e.log = append(e.log, Entry{At: now, Msg: fmt.Sprintf("VIOLATION %s: %s", inv.Name(), err)})
			e.obsViol.Inc()
			e.journal.Record(now, obs.KindViolation, 0, 0, 0, inv.Name())
		}
	}
}

// Violations returns every invariant failure observed so far.
func (e *Engine) Violations() []Violation { return e.violations }

// Log returns the ordered event log.
func (e *Engine) Log() []Entry { return e.log }

// LogString renders the event log one entry per line — the byte-exact
// artifact the determinism test compares across runs.
func (e *Engine) LogString() string {
	var b strings.Builder
	for _, en := range e.log {
		fmt.Fprintf(&b, "t=%s %s\n", en.At, en.Msg)
	}
	return b.String()
}

// logOn appends a log entry timestamped by eng's clock. On a sharded
// network the entry stages in eng's partition slot (events on distinct
// partitions run concurrently) and merges at the next barrier.
func (e *Engine) logOn(eng *sim.Engine, format string, args ...any) {
	en := Entry{At: eng.Now(), Msg: fmt.Sprintf(format, args...)}
	if eng.Coord() != nil {
		p := eng.Part()
		e.logStage[p] = append(e.logStage[p], en)
		return
	}
	e.log = append(e.log, en)
}
