package chaos

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// twoNodes builds a minimal network: a -- b with fixed 10 ms lines.
func twoNodes(seed int64) (*simnet.Network, *simnet.Link) {
	w := simnet.New(seed)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	lk := w.Connect(a, b,
		simnet.LinkConfig{Delay: simnet.FixedDelay(10 * time.Millisecond)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(10 * time.Millisecond)})
	return w, lk
}

func TestLinkDownAppliesAndReverts(t *testing.T) {
	w, lk := twoNodes(1)
	ch := New(w.Eng)
	ch.AddLine("ab", lk.LineAB())
	ch.Schedule(LinkDown{Target: "ab", At: time.Second, For: 2 * time.Second})

	var duringDown, afterUp bool
	w.Eng.ScheduleAt(1500*time.Millisecond, func() { duringDown = lk.LineAB().Down() })
	w.Eng.ScheduleAt(3500*time.Millisecond, func() { afterUp = !lk.LineAB().Down() })
	w.Run(5 * time.Second)

	if !duringDown || !afterUp {
		t.Fatalf("down timeline wrong: during=%v after-up=%v", duringDown, afterUp)
	}
	log := ch.LogString()
	want := "t=1s apply link-down ab\nt=3s revert link-down ab\n"
	if log != want {
		t.Fatalf("log:\n%q\nwant:\n%q", log, want)
	}
}

func TestLossBurstAndDelayFaultsRestoreState(t *testing.T) {
	w, lk := twoNodes(1)
	ln := lk.LineAB()
	ln.SetLoss(0.01)
	baseModel := ln.Shaper().Base()
	ch := New(w.Eng)
	ch.AddLine("ab", ln)

	ch.Schedule(LossBurst{Target: "ab", At: time.Second, For: time.Second, Loss: 0.5})
	ch.Schedule(DelayShift{Target: "ab", At: time.Second, For: time.Second, Delta: 5 * time.Millisecond})
	ch.Schedule(DelaySwap{Target: "ab", At: time.Second, For: time.Second,
		Model: simnet.FixedDelay(99 * time.Millisecond)})

	w.Eng.ScheduleAt(1500*time.Millisecond, func() {
		if ln.Loss() != 0.5 {
			t.Errorf("loss during burst = %v, want 0.5", ln.Loss())
		}
		if ln.Shaper().Offset() != 5*time.Millisecond {
			t.Errorf("offset during shift = %v, want 5ms", ln.Shaper().Offset())
		}
		if ln.Shaper().Base() != simnet.DelayModel(simnet.FixedDelay(99*time.Millisecond)) {
			t.Errorf("base during swap = %v", ln.Shaper().Base())
		}
	})
	w.Run(3 * time.Second)

	if ln.Loss() != 0.01 {
		t.Fatalf("loss after revert = %v, want 0.01", ln.Loss())
	}
	if ln.Shaper().Offset() != 0 {
		t.Fatalf("offset after revert = %v, want 0", ln.Shaper().Offset())
	}
	if ln.Shaper().Base() != baseModel {
		t.Fatalf("base after revert = %v, want original", ln.Shaper().Base())
	}
}

func TestWithdrawalFaultReannouncesIdentically(t *testing.T) {
	eng := sim.NewEngine()
	sp := bgp.NewSpeaker(eng, "edge", 65000, 1)
	pfx := addr.MustParsePrefix("2001:db8:100::/48")
	sp.OriginateWithPath(pfx, bgp.Path{65099}, bgp.Community(4242))

	ch := New(eng)
	ch.AddSpeaker("edge", sp)
	ch.Schedule(Withdrawal{Speaker: "edge", Prefix: pfx, At: time.Second, For: time.Second})

	var goneDuring bool
	eng.ScheduleAt(1500*time.Millisecond, func() {
		_, ok := sp.Originated(pfx)
		goneDuring = !ok
	})
	eng.Run(3 * time.Second)

	if !goneDuring {
		t.Fatal("prefix still originated during the withdrawal window")
	}
	r, ok := sp.Originated(pfx)
	if !ok {
		t.Fatal("prefix not re-announced after the window")
	}
	if len(r.Path) != 1 || r.Path[0] != 65099 {
		t.Fatalf("re-announced path = %v, want [65099]", r.Path)
	}
	if len(r.Communities) != 1 || r.Communities[0] != 4242 {
		t.Fatalf("re-announced communities = %v, want [4242]", r.Communities)
	}
}

func TestFaultOnUnknownTargetIsLoggedNotFatal(t *testing.T) {
	w, _ := twoNodes(1)
	ch := New(w.Eng)
	ch.Schedule(LinkDown{Target: "nope", At: time.Second, For: time.Second})
	w.Run(2 * time.Second)
	if !strings.Contains(ch.LogString(), `fault link-down nope: no line "nope"`) {
		t.Fatalf("missing error entry in log: %q", ch.LogString())
	}
}

func TestConservationAndBufferBalanceOnLiveTraffic(t *testing.T) {
	w, lk := twoNodes(1)
	a := w.Node("a")
	b := w.Node("b")
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	b.SetHandler(func([]byte) {})

	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b")
	sim.NewTicker(w.Eng, 5*time.Millisecond, func(sim.Time) { a.Inject(pkt) })

	ch := New(w.Eng)
	ch.AddLine("ab", lk.LineAB())
	ch.Watch(Conservation("w", w))
	ch.Watch(BufferBalance("w", w))
	ch.StartChecks(20 * time.Millisecond)
	// Faults stress the accounting: admin drops and loss must balance.
	ch.Schedule(LinkDown{Target: "ab", At: 100 * time.Millisecond, For: 200 * time.Millisecond})
	ch.Schedule(LossBurst{Target: "ab", At: 500 * time.Millisecond, For: 200 * time.Millisecond, Loss: 0.5})
	w.Run(time.Second)

	if vs := ch.Violations(); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	if lk.LineAB().Stats.Lost == 0 {
		t.Fatal("loss burst lost nothing; test exercised too little")
	}
}

func TestConservationDetectsCookedBooks(t *testing.T) {
	w, _ := twoNodes(1)
	ch := New(w.Eng)
	ch.Watch(Conservation("w", w))
	ch.CheckNow()
	if len(ch.Violations()) != 0 {
		t.Fatalf("clean network flagged: %v", ch.Violations())
	}
	// A packet claimed as originated but never accounted for anywhere.
	w.Node("a").Stats.Sent++
	ch.CheckNow()
	vs := ch.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Err, "node a") {
		t.Fatalf("cooked books not flagged: %v", vs)
	}
}

func TestPathEvacuationFlagsStubbornController(t *testing.T) {
	w, lk := twoNodes(1)
	a := w.Node("a")
	sw := dataplane.NewSwitch(a)
	sw.AddTunnel(&dataplane.Tunnel{
		PathID:     1,
		Name:       "only",
		LocalAddr:  netip.MustParseAddr("2001:db8::a"),
		RemoteAddr: netip.MustParseAddr("2001:db8::b"),
		SrcPort:    41000,
	})
	// Static never evacuates — exactly the misbehaviour the invariant
	// exists to catch once the line has been down past the grace.
	ctrl := control.NewController(w.Eng, sw, &control.Static{ID: 1})

	ch := New(w.Eng)
	lineFor := map[uint8]*simnet.Line{1: lk.LineAB()}
	ch.Watch(PathEvacuation("a->b", ctrl, lineFor, 2*time.Second))
	ch.StartChecks(500 * time.Millisecond)
	ch.Schedule(LinkDown{Target: "ab", At: time.Second, For: 10 * time.Second})
	ch.AddLine("ab", lk.LineAB())
	w.Run(6 * time.Second)

	vs := ch.Violations()
	if len(vs) == 0 {
		t.Fatal("stubborn controller not flagged")
	}
	if !strings.Contains(vs[0].Err, "path 1 still current") {
		t.Fatalf("wrong violation: %v", vs[0])
	}
}

func TestNoDataOnDeadPathExemptsProbes(t *testing.T) {
	w, lk := twoNodes(1)
	sw := dataplane.NewSwitch(w.Node("a"))
	tun := &dataplane.Tunnel{
		PathID:     1,
		Name:       "only",
		LocalAddr:  netip.MustParseAddr("2001:db8::a"),
		RemoteAddr: netip.MustParseAddr("2001:db8::b"),
		SrcPort:    41000,
	}
	sw.AddTunnel(tun)

	ch := New(w.Eng)
	ch.AddLine("ab", lk.LineAB())
	ch.Watch(NoDataOnDeadPath("a->b", sw, map[uint8]*simnet.Line{1: lk.LineAB()}, time.Second))
	ch.StartChecks(250 * time.Millisecond)
	ch.Schedule(LinkDown{Target: "ab", At: 0, For: 20 * time.Second})

	// Probes on the dead path are fine (recovery detection needs them).
	w.Eng.ScheduleAt(3*time.Second, func() {
		tun.Stats.Sent += 10
		tun.Stats.ProbeSent += 10
	})
	w.Run(4 * time.Second)
	if vs := ch.Violations(); len(vs) != 0 {
		t.Fatalf("probes flagged as data: %v", vs)
	}

	// Data steered onto the dead path past the grace is the violation.
	w.Eng.ScheduleAt(5*time.Second, func() { tun.Stats.Sent += 3 })
	w.Run(6 * time.Second)
	vs := ch.Violations()
	if len(vs) == 0 {
		t.Fatal("data on dead path not flagged")
	}
	if !strings.Contains(vs[0].Err, "carried 3 data packets") {
		t.Fatalf("wrong violation: %v", vs[0])
	}
}

// testingT is the slice of *testing.T mkPkt needs, so the determinism
// test can call it outside a test callback.
type testingT interface {
	Helper()
	Fatal(args ...any)
}

// mkPkt builds a minimal IPv6/UDP packet.
func mkPkt(t testingT, src, dst string) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("chaos-test"))
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	ip := &packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   64,
		Src:        netip.MustParseAddr(src),
		Dst:        netip.MustParseAddr(dst),
	}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
