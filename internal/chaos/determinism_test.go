package chaos

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// stormRun builds a three-node chain carrying periodic traffic, unleashes
// a seeded random storm on every line, and returns a byte-exact
// fingerprint of the run: the chaos event log plus all line and node
// counters. It is the replay guarantee the seeded-RNG discipline in
// internal/sim/rng.go promises, end to end.
func stormRun(seed int64) string {
	w := simnet.New(seed)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	c := w.AddNode("c", 0)
	gauss := func(mean time.Duration) simnet.LinkConfig {
		return simnet.LinkConfig{Delay: simnet.GaussianDelay{
			Floor: mean - time.Millisecond, Mean: mean, Std: 300 * time.Microsecond}}
	}
	ab := w.Connect(a, b, gauss(5*time.Millisecond), gauss(5*time.Millisecond))
	bc := w.Connect(b, c, gauss(8*time.Millisecond), gauss(8*time.Millisecond))

	dst := netip.MustParseAddr("2001:db8::c")
	c.AddAddr(dst)
	c.SetHandler(func([]byte) {})
	pfx := addr.MustParsePrefix("2001:db8::/32")
	a.SetRoute(pfx, a.Ports()[0])
	b.SetRoute(pfx, b.Ports()[1])

	var pkt []byte
	{
		var t fakeT
		pkt = mkPkt(&t, "2001:db8::a", "2001:db8::c")
		if t.failed {
			panic("mkPkt failed")
		}
	}
	sim.NewTicker(w.Eng, 2*time.Millisecond, func(sim.Time) { a.Inject(pkt) })

	ch := New(w.Eng)
	ch.AddLine("ab", ab.LineAB())
	ch.AddLine("ba", ab.LineBA())
	ch.AddLine("bc", bc.LineAB())
	ch.AddLine("cb", bc.LineBA())
	reg := obs.NewRegistry()
	journal := obs.NewJournal(4096)
	ch.Instrument(reg, journal)
	ch.Watch(Conservation("chain", w))
	ch.Watch(BufferBalance("chain", w))
	ch.StartChecks(50 * time.Millisecond)
	ch.ScheduleStorm(w.Streams.Stream("chaos"), StormConfig{
		Faults: 12,
		Start:  time.Second,
		Window: 20 * time.Second,
		MaxFor: 5 * time.Second,
	})
	w.Run(30 * time.Second)

	var sb strings.Builder
	sb.WriteString(ch.LogString())
	// The trace journal rides along in the fingerprint: seeded replays
	// must produce byte-identical /trace output, not just equal logs.
	if err := journal.WriteJSON(&sb, 0); err != nil {
		panic(err)
	}
	for _, lk := range w.Links() {
		for i, ln := range [2]*simnet.Line{lk.LineAB(), lk.LineBA()} {
			fmt.Fprintf(&sb, "%s[%d] %+v\n", lk.Name(), i, ln.Stats)
		}
	}
	for _, n := range w.Nodes() {
		fmt.Fprintf(&sb, "%s %+v\n", n.Name(), n.Stats)
	}
	fmt.Fprintf(&sb, "violations=%d\n", len(ch.Violations()))
	return sb.String()
}

// fakeT satisfies the minimal testing surface mkPkt needs so stormRun can
// reuse it outside a test callback.
type fakeT struct{ failed bool }

func (f *fakeT) Helper()      {}
func (f *fakeT) Fatal(...any) { f.failed = true }

func TestStormReplayIsByteIdentical(t *testing.T) {
	run1 := stormRun(7)
	run2 := stormRun(7)
	if run1 != run2 {
		t.Fatalf("same seed diverged:\n--- run1:\n%s\n--- run2:\n%s", run1, run2)
	}
	if !strings.Contains(run1, "apply ") {
		t.Fatalf("storm applied no faults:\n%s", run1)
	}
	if !strings.Contains(run1, "violations=0") {
		t.Fatalf("storm run violated invariants:\n%s", run1)
	}
	run3 := stormRun(8)
	if run1 == run3 {
		t.Fatal("different seeds produced byte-identical runs")
	}
}
