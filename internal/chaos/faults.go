package chaos

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// Fault is one scheduled failure: Apply makes it happen and returns the
// undo for when the window closes (nil for one-way faults). Window is
// the absolute virtual start and the duration; a zero duration means
// the fault never reverts.
type Fault interface {
	Label() string
	Window() (at sim.Time, dur time.Duration)
	Apply(e *Engine) (revert func(), err error)
}

// LinkDown takes a registered line administratively down for a window.
// Packets already in flight still arrive (admission semantics, see
// DESIGN.md); everything sent while down is dropped at the line.
type LinkDown struct {
	Target string
	At     sim.Time
	For    time.Duration
}

// Label implements Fault.
func (f LinkDown) Label() string { return "link-down " + f.Target }

// Window implements Fault.
func (f LinkDown) Window() (sim.Time, time.Duration) { return f.At, f.For }

// Apply implements Fault.
func (f LinkDown) Apply(e *Engine) (func(), error) {
	ln := e.lines[f.Target]
	if ln == nil {
		return nil, fmt.Errorf("no line %q", f.Target)
	}
	ln.SetDown(true)
	return func() { ln.SetDown(false) }, nil
}

// LossBurst sets a line's loss probability for a window, restoring the
// previous probability afterwards.
type LossBurst struct {
	Target string
	At     sim.Time
	For    time.Duration
	Loss   float64
}

// Label implements Fault.
func (f LossBurst) Label() string { return fmt.Sprintf("loss-burst %s p=%g", f.Target, f.Loss) }

// Window implements Fault.
func (f LossBurst) Window() (sim.Time, time.Duration) { return f.At, f.For }

// Apply implements Fault.
func (f LossBurst) Apply(e *Engine) (func(), error) {
	ln := e.lines[f.Target]
	if ln == nil {
		return nil, fmt.Errorf("no line %q", f.Target)
	}
	prev := ln.Loss()
	ln.SetLoss(f.Loss)
	return func() { ln.SetLoss(prev) }, nil
}

// DelayShift adds Delta to a line's delay offset for a window — the
// paper's intra-provider reroute that lengthens the physical path —
// restoring the offset captured at apply time afterwards.
type DelayShift struct {
	Target string
	At     sim.Time
	For    time.Duration
	Delta  time.Duration
}

// Label implements Fault.
func (f DelayShift) Label() string { return fmt.Sprintf("delay-shift %s +%s", f.Target, f.Delta) }

// Window implements Fault.
func (f DelayShift) Window() (sim.Time, time.Duration) { return f.At, f.For }

// Apply implements Fault.
func (f DelayShift) Apply(e *Engine) (func(), error) {
	ln := e.lines[f.Target]
	if ln == nil {
		return nil, fmt.Errorf("no line %q", f.Target)
	}
	sh := ln.Shaper()
	prev := sh.Offset()
	sh.SetOffset(prev + f.Delta)
	return func() { sh.SetOffset(prev) }, nil
}

// DelaySwap replaces a line's base delay model for a window (e.g. a
// Gaussian floor swapped for a spiky instability model), restoring the
// previous model afterwards.
type DelaySwap struct {
	Target string
	At     sim.Time
	For    time.Duration
	Model  simnet.DelayModel
}

// Label implements Fault.
func (f DelaySwap) Label() string { return "delay-swap " + f.Target }

// Window implements Fault.
func (f DelaySwap) Window() (sim.Time, time.Duration) { return f.At, f.For }

// Apply implements Fault.
func (f DelaySwap) Apply(e *Engine) (func(), error) {
	ln := e.lines[f.Target]
	if ln == nil {
		return nil, fmt.Errorf("no line %q", f.Target)
	}
	sh := ln.Shaper()
	old := sh.SwapBase(f.Model)
	return func() { sh.SwapBase(old) }, nil
}

// Withdrawal withdraws a locally originated prefix from a registered
// speaker for a window, then re-announces it with the same seeded path
// and communities — a tunnel endpoint vanishing from, and returning to,
// the global routing table.
type Withdrawal struct {
	Speaker string
	Prefix  addr.Prefix
	At      sim.Time
	For     time.Duration
}

// Label implements Fault.
func (f Withdrawal) Label() string { return fmt.Sprintf("withdraw %s %s", f.Speaker, f.Prefix) }

// Window implements Fault.
func (f Withdrawal) Window() (sim.Time, time.Duration) { return f.At, f.For }

// Apply implements Fault.
func (f Withdrawal) Apply(e *Engine) (func(), error) {
	sp := e.speakers[f.Speaker]
	if sp == nil {
		return nil, fmt.Errorf("no speaker %q", f.Speaker)
	}
	r, ok := sp.Originated(f.Prefix)
	if !ok {
		return nil, fmt.Errorf("%s does not originate %s", f.Speaker, f.Prefix)
	}
	// The originated route is about to be deleted; keep what the
	// re-announcement needs.
	path := r.Path.Clone()
	comms := append([]bgp.Community(nil), r.Communities...)
	sp.Withdraw(f.Prefix)
	return func() { sp.OriginateWithPath(f.Prefix, path, comms...) }, nil
}

// StormConfig shapes a seeded-random fault timeline.
type StormConfig struct {
	// Faults is how many faults to draw.
	Faults int
	// Start is the absolute virtual time of the storm window's open.
	Start sim.Time
	// Window spreads fault start times uniformly over [Start, Start+Window).
	Window time.Duration
	// MaxFor caps each fault's duration; durations are drawn uniformly
	// from (0, MaxFor]. Default 30 s.
	MaxFor time.Duration
	// Loss is the loss-burst probability (default 0.3).
	Loss float64
	// Shift is the delay-shift delta (default 5 ms, the paper's E4 shift).
	Shift time.Duration
}

// ScheduleStorm draws cfg.Faults faults from rng over the registered
// targets and schedules them all, returning their labels in schedule
// order. The draw consumes rng deterministically: same engine contents,
// same rng state, same storm. Withdrawal faults target originated
// prefixes of registered speakers; if there are none, those draws fall
// back to link faults.
func (e *Engine) ScheduleStorm(rng *sim.RNG, cfg StormConfig) []string {
	if cfg.MaxFor <= 0 {
		cfg.MaxFor = 30 * time.Second
	}
	if cfg.Loss <= 0 {
		cfg.Loss = 0.3
	}
	if cfg.Shift <= 0 {
		cfg.Shift = 5 * time.Millisecond
	}
	lines := e.LineNames()
	type target struct {
		speaker string
		prefix  addr.Prefix
	}
	var withdrawable []target
	for _, name := range e.SpeakerNames() {
		for _, p := range e.speakers[name].OriginatedPrefixes() {
			withdrawable = append(withdrawable, target{name, p})
		}
	}
	var labels []string
	for i := 0; i < cfg.Faults; i++ {
		at := cfg.Start + sim.Time(rng.Int63n(int64(cfg.Window)+1))
		dur := time.Duration(1 + rng.Int63n(int64(cfg.MaxFor)))
		kind := rng.Intn(4)
		if kind == 3 && len(withdrawable) == 0 {
			kind = rng.Intn(3)
		}
		if kind != 3 && len(lines) == 0 {
			continue
		}
		var f Fault
		switch kind {
		case 0:
			f = LinkDown{Target: lines[rng.Intn(len(lines))], At: at, For: dur}
		case 1:
			f = LossBurst{Target: lines[rng.Intn(len(lines))], At: at, For: dur, Loss: cfg.Loss}
		case 2:
			f = DelayShift{Target: lines[rng.Intn(len(lines))], At: at, For: dur, Delta: cfg.Shift}
		case 3:
			t := withdrawable[rng.Intn(len(withdrawable))]
			f = Withdrawal{Speaker: t.speaker, Prefix: t.prefix, At: at, For: dur}
		}
		e.Schedule(f)
		labels = append(labels, f.Label())
	}
	return labels
}
