package chaos

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// sortedPathIDs returns the keys of a path->line map in ascending order
// so violation messages are deterministic.
func sortedPathIDs(m map[uint8]*simnet.Line) []uint8 {
	ids := make([]uint8, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PathEvacuation asserts the controller abandons a dead path: once the
// line carrying path id has been down longer than grace, the controller
// must not still have it as the current choice. Grace covers the full
// detection chain — the receiver's report max-age, the sender's
// StaleAfter, a decision tick, and the dwell timer.
func PathEvacuation(label string, ctrl *control.Controller, lineFor map[uint8]*simnet.Line, grace time.Duration) Invariant {
	downSince := make(map[uint8]sim.Time)
	return InvariantFunc("path-evacuation:"+label, func(now sim.Time) error {
		for _, id := range sortedPathIDs(lineFor) {
			ln := lineFor[id]
			if !ln.Down() {
				delete(downSince, id)
				continue
			}
			since, ok := downSince[id]
			if !ok {
				downSince[id] = now
				continue
			}
			if now-since > sim.Time(grace) && ctrl.Current() == id {
				return fmt.Errorf("path %d still current %s after its line went down", id, now-since)
			}
		}
		return nil
	})
}

// NoDataOnDeadPath asserts that once a path's line has been down longer
// than grace, no further *data* packets are steered onto it. Probes are
// exempt: the prober must keep exercising a dead path so its recovery is
// noticed.
func NoDataOnDeadPath(label string, sw *dataplane.Switch, lineFor map[uint8]*simnet.Line, grace time.Duration) Invariant {
	downSince := make(map[uint8]sim.Time)
	lastData := make(map[uint8]uint64)
	return InvariantFunc("no-data-on-dead-path:"+label, func(now sim.Time) error {
		for _, id := range sortedPathIDs(lineFor) {
			ln := lineFor[id]
			tun, ok := sw.Tunnel(id)
			if !ok {
				continue
			}
			data := tun.DataSent()
			if !ln.Down() {
				delete(downSince, id)
				lastData[id] = data
				continue
			}
			since, seen := downSince[id]
			if !seen {
				downSince[id] = now
				lastData[id] = data
				continue
			}
			if now-since > sim.Time(grace) {
				if data > lastData[id] {
					return fmt.Errorf("path %d carried %d data packets while down %s",
						id, data-lastData[id], now-since)
				}
				continue
			}
			// Still inside the convergence window: keep tracking so the
			// post-grace baseline is the count at grace expiry.
			lastData[id] = data
		}
		return nil
	})
}

// SeqConsistency asserts sequence tracking stays sane across failover:
// for every path the receiver-side monitor tracks, the received count
// never exceeds what the sender's tunnel sent and never moves backwards,
// and received+lost never exceeds sent+dup. The dup slack is exact: the
// simulated network never duplicates a packet, so every dup-classified
// arrival is a late gap-filler whose heal record was evicted from the
// tracker's bounded reorder window — it is counted once in Received and
// its gap entry once in Lost, overshooting the naive bound by one.
func SeqConsistency(label string, mon *control.Monitor, sender *dataplane.Switch) Invariant {
	lastRecv := make(map[uint8]uint64)
	return InvariantFunc("seq-consistency:"+label, func(now sim.Time) error {
		for _, pm := range mon.Paths() {
			recv := pm.Seq.Received
			if recv < lastRecv[pm.ID] {
				return fmt.Errorf("path %d received count went backwards: %d -> %d",
					pm.ID, lastRecv[pm.ID], recv)
			}
			lastRecv[pm.ID] = recv
			tun, ok := sender.Tunnel(pm.ID)
			if !ok {
				continue
			}
			sent := tun.Stats.Sent
			if recv > sent {
				return fmt.Errorf("path %d received %d > sent %d", pm.ID, recv, sent)
			}
			if recv+pm.Seq.Lost > sent+pm.Seq.Dup {
				return fmt.Errorf("path %d received %d + lost %d > sent %d + dup %d",
					pm.ID, recv, pm.Seq.Lost, sent, pm.Seq.Dup)
			}
		}
		return nil
	})
}

// Conservation asserts packet accounting balances across the whole
// network. Per line, Tx >= Lost + Rx (the difference is in flight). Per
// node the balance is exact, because every packet entering the routing
// function leaves it through exactly one counter:
//
//	inflow + Sent == ParseErr + Delivered + TTLExpired + NoRoute + outflow
//
// where inflow sums incoming-line Rx and outflow sums outgoing-line
// Tx + Dropped. Checks run at event boundaries, so no packet is ever
// mid-pipeline when the books are inspected.
func Conservation(label string, net *simnet.Network) Invariant {
	return InvariantFunc("conservation:"+label, func(now sim.Time) error {
		for _, lk := range net.Links() {
			for _, ln := range [2]*simnet.Line{lk.LineAB(), lk.LineBA()} {
				st := ln.Stats
				if st.Lost+st.Rx > st.Tx {
					return fmt.Errorf("link %s: lost %d + rx %d > tx %d",
						lk.Name(), st.Lost, st.Rx, st.Tx)
				}
			}
		}
		for _, n := range net.Nodes() {
			var in, out uint64
			for _, p := range n.Ports() {
				in += p.In().Stats.Rx
				out += p.Out().Stats.Tx + p.Out().Stats.Dropped
			}
			st := n.Stats
			consumed := st.ParseErr + st.Delivered + st.TTLExpired + st.NoRoute
			if in+st.Sent != consumed+out {
				return fmt.Errorf("node %s: in %d + sent %d != consumed %d + out %d",
					n.Name(), in, st.Sent, consumed, out)
			}
		}
		return nil
	})
}

// BufferBalance asserts no packet buffer leaks: the pools' outstanding
// leases (summed over every partition on a sharded network) must equal
// the packets in flight on the wire. At an event boundary every leased
// buffer is exactly one scheduled delivery; on a sharded network the
// check runs at epoch barriers, after the cross-partition drain has
// materialized staged packets into destination pools, so the identity
// holds there too.
func BufferBalance(label string, net *simnet.Network) Invariant {
	return InvariantFunc("buffer-balance:"+label, func(now sim.Time) error {
		var inflight uint64
		for _, lk := range net.Links() {
			inflight += lk.LineAB().InFlight() + lk.LineBA().InFlight()
		}
		leased := net.LeasedBufs()
		if leased != inflight {
			return fmt.Errorf("%d buffers leased but %d packets in flight", leased, inflight)
		}
		return nil
	})
}
