package chaos

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/obs"
	"tango/internal/sim"
)

// TestChaosObsCountersAndJournal checks a fault window increments the
// applied/reverted counters and leaves fault_apply/fault_revert records
// in the journal, with withdrawals journaled under their own kind.
func TestChaosObsCountersAndJournal(t *testing.T) {
	w, lk := twoNodes(1)
	ch := New(w.Eng)
	ch.AddLine("ab", lk.LineAB())
	reg := obs.NewRegistry()
	j := obs.NewJournal(32)
	ch.Instrument(reg, j)

	ch.Schedule(LinkDown{Target: "ab", At: time.Second, For: 2 * time.Second})
	w.Run(5 * time.Second)

	snap := reg.Snapshot()
	if got := snap["tango_chaos_faults_applied_total"]; got != 1 {
		t.Fatalf("applied counter = %v, want 1", got)
	}
	if got := snap["tango_chaos_faults_reverted_total"]; got != 1 {
		t.Fatalf("reverted counter = %v, want 1", got)
	}
	recs := j.Tail(0)
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want apply+revert: %+v", len(recs), recs)
	}
	if recs[0].Kind != obs.KindFaultApply || recs[0].Target() != "link-down ab" {
		t.Fatalf("apply record wrong: kind %v target %q", recs[0].Kind, recs[0].Target())
	}
	if recs[0].V != int64(2*time.Second) {
		t.Fatalf("apply record duration = %d, want %d", recs[0].V, int64(2*time.Second))
	}
	if recs[1].Kind != obs.KindFaultRevert || recs[1].At != 3*time.Second {
		t.Fatalf("revert record wrong: kind %v at %v", recs[1].Kind, recs[1].At)
	}
}

// TestChaosObsWithdrawalKind checks BGP withdrawals journal under the
// withdraw kind rather than the generic fault kind.
func TestChaosObsWithdrawalKind(t *testing.T) {
	eng := sim.NewEngine()
	sp := bgp.NewSpeaker(eng, "edge", 65000, 1)
	pfx := addr.MustParsePrefix("2001:db8:100::/48")
	sp.Originate(pfx)

	ch := New(eng)
	ch.AddSpeaker("edge", sp)
	reg := obs.NewRegistry()
	j := obs.NewJournal(8)
	ch.Instrument(reg, j)
	ch.Schedule(Withdrawal{Speaker: "edge", Prefix: pfx, At: time.Second, For: time.Second})
	eng.Run(3 * time.Second)

	recs := j.Tail(0)
	if len(recs) != 2 || recs[0].Kind != obs.KindWithdraw {
		t.Fatalf("withdrawal records wrong: %+v", recs)
	}
}

// TestChaosObsViolationCounter checks invariant violations increment the
// counter and journal a violation record naming the invariant.
func TestChaosObsViolationCounter(t *testing.T) {
	w, _ := twoNodes(1)
	ch := New(w.Eng)
	reg := obs.NewRegistry()
	j := obs.NewJournal(8)
	ch.Instrument(reg, j)
	ch.Watch(Conservation("w", w))

	ch.CheckNow()
	if got := reg.Snapshot()["tango_chaos_violations_total"]; got != 0 {
		t.Fatalf("violations counter = %v before any violation", got)
	}
	w.Node("a").Stats.Sent++ // cook the books
	ch.CheckNow()
	if got := reg.Snapshot()["tango_chaos_violations_total"]; got != 1 {
		t.Fatalf("violations counter = %v, want 1", got)
	}
	recs := j.Tail(0)
	if len(recs) != 1 || recs[0].Kind != obs.KindViolation {
		t.Fatalf("violation records wrong: %+v", recs)
	}
}
