package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// shardedTriangle builds a two-partition network: a and c on partition 0,
// b on partition 1, with a cross link a<->b and a local link a<->c.
func shardedTriangle(seed int64) (*simnet.Network, *simnet.Link, *simnet.Link) {
	w := simnet.NewSharded(seed, 2, 10*time.Millisecond, func(name string) int {
		if name == "b" {
			return 1
		}
		return 0
	})
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	c := w.AddNode("c", 0)
	cross := w.Connect(a, b,
		simnet.LinkConfig{Delay: simnet.FixedDelay(10 * time.Millisecond)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(10 * time.Millisecond)})
	local := w.Connect(a, c,
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)})
	return w, cross, local
}

func TestShardedFaultLogMergesAcrossPartitions(t *testing.T) {
	w, cross, local := shardedTriangle(1)
	ch := New(w.Eng)
	if ch.Sim() != w.Eng {
		t.Fatal("Sim accessor broken")
	}
	// ba's send-path state lives on partition 1, ac's on partition 0: the
	// two faults apply on different engines and their log entries stage
	// per partition until a barrier merges them.
	ch.AddLine("ba", cross.LineBA())
	ch.AddLine("ac", local.LineAB())
	if ch.Line("ba") != cross.LineBA() || ch.Line("missing") != nil {
		t.Fatal("Line accessor broken")
	}
	if ch.Speaker("missing") != nil {
		t.Fatal("Speaker accessor broken")
	}
	ch.Schedule(LinkDown{Target: "ba", At: 5 * time.Millisecond, For: 20 * time.Millisecond})
	ch.Schedule(LinkDown{Target: "ac", At: 5 * time.Millisecond, For: 20 * time.Millisecond})
	ch.Schedule(LossBurst{Target: "ba", At: 15 * time.Millisecond, For: 10 * time.Millisecond, Loss: 0.5})

	w.Coord().EnterParallel()
	w.Run(sim.Time(50 * time.Millisecond))

	// Ties at 5ms and 25ms order by partition index (ac on 0, ba on 1);
	// the merged log is byte-stable across worker counts.
	want := "t=5ms apply link-down ac\n" +
		"t=5ms apply link-down ba\n" +
		"t=15ms apply loss-burst ba p=0.5\n" +
		"t=25ms revert link-down ac\n" +
		"t=25ms revert link-down ba\n" +
		"t=25ms revert loss-burst ba p=0.5\n"
	if got := ch.LogString(); got != want {
		t.Fatalf("merged log:\n%q\nwant:\n%q", got, want)
	}
	if len(ch.Log()) != 6 {
		t.Fatalf("Log holds %d entries, want 6", len(ch.Log()))
	}
}

func TestShardedChecksRideBarriersAndStop(t *testing.T) {
	w, _, _ := shardedTriangle(2)
	ch := New(w.Eng)
	fails := 0
	ch.Watch(InvariantFunc("always-bad", func(now sim.Time) error {
		fails++
		return errors.New("synthetic failure")
	}))
	if ch.Invariants() != 1 {
		t.Fatalf("Invariants() = %d, want 1", ch.Invariants())
	}
	ch.StartChecks(5 * time.Millisecond)
	w.Coord().EnterParallel()
	w.Run(sim.Time(20 * time.Millisecond))

	// Barriers land every 10ms; the 5ms cadence fires nominal ticks 5,10
	// at the first barrier and 15,20 at the second.
	if fails != 4 {
		t.Fatalf("checks ran %d times, want 4", fails)
	}
	vs := ch.Violations()
	if len(vs) != 4 {
		t.Fatalf("%d violations, want 4", len(vs))
	}
	if s := vs[0].String(); !strings.Contains(s, "always-bad") || !strings.Contains(s, "synthetic failure") {
		t.Fatalf("violation renders as %q", s)
	}

	// StopChecks gates the barrier hook (hooks cannot be unregistered);
	// a second StartChecks re-arms without double-registering.
	ch.StopChecks()
	w.Run(sim.Time(40 * time.Millisecond))
	if fails != 4 {
		t.Fatalf("checks ran while stopped: %d", fails)
	}
	ch.StartChecks(5 * time.Millisecond)
	w.Run(sim.Time(50 * time.Millisecond))
	if fails != 6 {
		t.Fatalf("re-armed checks ran %d times, want 6", fails)
	}
}

func TestShardedJournalViewsMergeAtBarriers(t *testing.T) {
	w, cross, local := shardedTriangle(3)
	ch := New(w.Eng)
	ch.AddLine("ba", cross.LineBA())
	ch.AddLine("ac", local.LineAB())
	reg := obs.NewRegistry()
	j := obs.NewJournal(64)
	ch.Instrument(reg, j)
	ch.Schedule(LinkDown{Target: "ba", At: 5 * time.Millisecond, For: 10 * time.Millisecond})
	ch.Schedule(LinkDown{Target: "ac", At: 5 * time.Millisecond, For: 10 * time.Millisecond})

	w.Coord().EnterParallel()
	w.Run(sim.Time(30 * time.Millisecond))

	recs := j.Tail(0)
	if len(recs) != 4 {
		t.Fatalf("journal holds %d records, want 4 (2 applies + 2 reverts)", len(recs))
	}
	// Same (time, partition) order as the log: ac (part 0) before ba.
	if recs[0].Target() != "link-down ac" || recs[1].Target() != "link-down ba" {
		t.Fatalf("journal merge order: %q then %q", recs[0].Target(), recs[1].Target())
	}
}
