package control

import (
	"sort"
	"strconv"
	"time"

	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
)

// PathEstimate is the sender-side view of one outgoing path, built from
// the receiver's piggybacked reports.
type PathEstimate struct {
	ID        uint8
	OWDMs     float64 // receiver clock domain; comparable across paths
	JitterMs  float64
	Samples   uint16
	UpdatedAt sim.Time
	Valid     bool
}

// Policy decides which path carries data traffic.
type Policy interface {
	// Choose returns the path ID to use. cur is the current choice;
	// ests contains one entry per known path (Valid=false before the
	// first report).
	Choose(now sim.Time, cur uint8, ests []PathEstimate) uint8
}

// MinOWD switches to the lowest-delay path, damped by an absolute
// hysteresis margin and a minimum dwell time so measurement noise does
// not flap traffic between near-equal paths.
//
// The margin is absolute (milliseconds), not relative: reported one-way
// delays live in the receiver's clock domain and are shifted by the
// constant inter-switch clock offset, which can dwarf the real values. A
// percentage of such a number is meaningless, but differences — and
// therefore absolute margins — are exact. (This is a sharp edge of the
// paper's "relative comparisons are sound" argument: the comparison is
// sound, but any policy arithmetic must be translation-invariant.)
type MinOWD struct {
	// HysteresisMs is the absolute improvement (in milliseconds)
	// required to switch away from the current path.
	HysteresisMs float64
	// MinDwell is the minimum time between switches.
	MinDwell time.Duration
	// StaleAfter treats estimates older than this as invalid (path
	// possibly dead); 0 disables.
	StaleAfter time.Duration

	lastSwitch sim.Time
	haveCur    bool
}

// Choose implements Policy.
func (p *MinOWD) Choose(now sim.Time, cur uint8, ests []PathEstimate) uint8 {
	best := -1
	var bestOWD float64
	var curEst *PathEstimate
	for i := range ests {
		e := &ests[i]
		if !e.Valid {
			continue
		}
		if p.StaleAfter > 0 && now-e.UpdatedAt > p.StaleAfter {
			continue
		}
		if e.ID == cur {
			curEst = e
		}
		if best < 0 || e.OWDMs < bestOWD {
			best = i
			bestOWD = e.OWDMs
		}
	}
	if best < 0 {
		return cur
	}
	cand := ests[best].ID
	if cand == cur {
		p.haveCur = true
		return cur
	}
	if curEst == nil {
		// Current path unknown or stale: move immediately.
		p.lastSwitch = now
		p.haveCur = true
		return cand
	}
	if p.haveCur && now-p.lastSwitch < p.MinDwell {
		return cur
	}
	if bestOWD <= curEst.OWDMs-p.HysteresisMs {
		p.lastSwitch = now
		p.haveCur = true
		return cand
	}
	return cur
}

// MinJitter prefers the path with the lowest reported jitter, breaking
// ties by delay — for interactive applications where variance hurts more
// than the mean (paper §5: "depending on the application, delay and
// jitter could have a significant impact"). Switches are damped the
// same way MinOWD's are: an absolute jitter-improvement margin and a
// minimum dwell time, so two paths trading places by microseconds of
// measured jitter cannot flap traffic every tick. The margin is
// absolute (milliseconds): jitter, unlike OWD, is clock-offset free,
// but near-equal values still make percentages flappy.
type MinJitter struct {
	// MaxOWDPenaltyMs bounds how much extra delay is acceptable to buy
	// lower jitter; a calmer path more than this much slower than the
	// fastest is not chosen.
	MaxOWDPenaltyMs float64
	// HysteresisMs is the absolute jitter improvement (in milliseconds)
	// required to switch away from the current path.
	HysteresisMs float64
	// MinDwell is the minimum time between switches.
	MinDwell time.Duration
	// StaleAfter treats estimates older than this as invalid (path
	// possibly dead); 0 disables.
	StaleAfter time.Duration

	lastSwitch sim.Time
	haveCur    bool
}

// Choose implements Policy.
func (p *MinJitter) Choose(now sim.Time, cur uint8, ests []PathEstimate) uint8 {
	usable := func(e *PathEstimate) bool {
		return e.Valid && (p.StaleAfter <= 0 || now-e.UpdatedAt <= p.StaleAfter)
	}
	fastest := -1
	for i := range ests {
		if !usable(&ests[i]) {
			continue
		}
		if fastest < 0 || ests[i].OWDMs < ests[fastest].OWDMs {
			fastest = i
		}
	}
	if fastest < 0 {
		return cur
	}
	best := -1
	var curEst *PathEstimate
	for i := range ests {
		e := &ests[i]
		if !usable(e) {
			continue
		}
		if e.ID == cur {
			curEst = e
		}
		if p.MaxOWDPenaltyMs > 0 && e.OWDMs > ests[fastest].OWDMs+p.MaxOWDPenaltyMs {
			continue
		}
		if best < 0 || e.JitterMs < ests[best].JitterMs {
			best = i
		}
	}
	if best < 0 {
		return cur
	}
	cand := ests[best].ID
	if cand == cur {
		p.haveCur = true
		return cur
	}
	if curEst == nil {
		// Current path unknown or stale: move immediately.
		p.lastSwitch = now
		p.haveCur = true
		return cand
	}
	if p.haveCur && now-p.lastSwitch < p.MinDwell {
		return cur
	}
	if ests[best].JitterMs <= curEst.JitterMs-p.HysteresisMs {
		p.lastSwitch = now
		p.haveCur = true
		return cand
	}
	return cur
}

// Static always uses one path — the "BGP default" baseline when pointed
// at the default path's tunnel.
type Static struct{ ID uint8 }

// Choose implements Policy.
func (p *Static) Choose(sim.Time, uint8, []PathEstimate) uint8 { return p.ID }

// Controller is the sender-side decision loop: it keeps per-path
// estimates fresh from the receiver's piggybacked reports and re-runs the
// policy on a fixed cadence, installing its choice as the switch's
// selector.
type Controller struct {
	sw     *dataplane.Switch
	policy Policy
	eng    *sim.Engine

	ests map[uint8]*PathEstimate
	// order holds the same entries as ests, kept sorted by path ID: new
	// IDs are spliced in on first report (rare — once per path lifetime),
	// so snapshots never re-sort. scratch is the decision loop's reusable
	// snapshot buffer; decide runs every tick for the whole simulation, so
	// it must not allocate or sort per tick.
	order      []*PathEstimate
	scratch    []PathEstimate
	current    uint8
	haveCur    bool
	lastSwitch sim.Time
	tick       *sim.Ticker

	// OnSwitch fires when the controller moves traffic between paths.
	OnSwitch func(at sim.Time, from, to uint8)

	// cobs and journal are set by Instrument; nil means uninstrumented.
	cobs    *ctlObs
	journal *obs.Journal

	Stats struct {
		Decisions uint64
		Switches  uint64
		Reports   uint64
	}
}

// ctlObs is the controller's registered instrument set. The per-path
// gauges mirror the Estimates() snapshot exactly: they are written in
// UpdateEstimate immediately after the estimate's fields (and its slot
// in the sorted order slice) are final, and the switch counter is
// incremented in the same event as Stats.Switches and lastSwitch — so
// at any event boundary the gauges, the counter, and the snapshot agree
// (the obs consistency test pins this down).
type ctlObs struct {
	reg  *obs.Registry
	site string

	decisions, switches, reports *obs.Counter
	decideNs                     *obs.Histogram
	current                      *obs.Gauge
	paths                        map[uint8]*pathGauges
}

// pathGauges mirrors one PathEstimate.
type pathGauges struct {
	owd, jitter, samples *obs.Gauge
}

// Instrument registers the controller's metrics in reg under the given
// site label and starts journaling path switches (old/new tunnel plus
// OWD delta) to j. Paths already estimated register immediately; new
// paths register on their first report.
func (c *Controller) Instrument(reg *obs.Registry, j *obs.Journal, site string) {
	l := obs.L("site", site)
	co := &ctlObs{
		reg:  reg,
		site: site,
		decisions: reg.Counter("tango_controller_decisions_total",
			"Decision-loop ticks executed.", l),
		switches: reg.Counter("tango_controller_switches_total",
			"Times the controller moved data traffic between paths.", l),
		reports: reg.Counter("tango_controller_reports_total",
			"Piggybacked path reports folded into estimates.", l),
		decideNs: reg.Histogram("tango_controller_decide_ns",
			"Wall-clock duration of one decision tick, nanoseconds.", l),
		current: reg.Gauge("tango_controller_current_path",
			"Path ID currently carrying data traffic.", l),
		paths: make(map[uint8]*pathGauges),
	}
	c.cobs = co
	c.journal = j
	for id, e := range c.ests {
		co.pathGauges(id).set(e)
	}
	co.current.Set(float64(c.Current()))
}

// pathGauges returns (registering on first use) the gauges for a path.
func (co *ctlObs) pathGauges(id uint8) *pathGauges {
	pg, ok := co.paths[id]
	if !ok {
		ls := []obs.Label{obs.L("site", co.site), obs.L("path", strconv.Itoa(int(id)))}
		pg = &pathGauges{
			owd: co.reg.Gauge("tango_estimate_owd_ms",
				"Sender-side smoothed OWD estimate by outgoing path, milliseconds (receiver clock domain).", ls...),
			jitter: co.reg.Gauge("tango_estimate_jitter_ms",
				"Sender-side smoothed jitter estimate by outgoing path, milliseconds.", ls...),
			samples: co.reg.Gauge("tango_estimate_samples",
				"Sample count behind the latest report for this path.", ls...),
		}
		co.paths[id] = pg
	}
	return pg
}

// set mirrors one estimate into its gauges.
func (pg *pathGauges) set(e *PathEstimate) {
	pg.owd.Set(e.OWDMs)
	pg.jitter.Set(e.JitterMs)
	pg.samples.Set(float64(e.Samples))
}

// NewController creates a controller for sw (the local switch whose
// outgoing traffic is being steered).
func NewController(eng *sim.Engine, sw *dataplane.Switch, policy Policy) *Controller {
	c := &Controller{sw: sw, policy: policy, eng: eng, ests: make(map[uint8]*PathEstimate)}
	// Until the first decision, traffic uses the first tunnel (the BGP
	// default path by construction).
	sw.SetSelector(func([]byte) *dataplane.Tunnel {
		return c.currentTunnel()
	})
	return c
}

func (c *Controller) currentTunnel() *dataplane.Tunnel {
	if c.haveCur {
		if t, ok := c.sw.Tunnel(c.current); ok {
			return t
		}
	}
	ts := c.sw.Tunnels()
	if len(ts) == 0 {
		return nil
	}
	return ts[0]
}

// Current returns the path ID currently carrying data traffic.
func (c *Controller) Current() uint8 {
	if t := c.currentTunnel(); t != nil {
		return t.PathID
	}
	return 0
}

// AttachFeedback consumes piggybacked reports arriving on the local
// switch (i.e. measurements of this controller's outgoing paths made by
// the peer).
func (c *Controller) AttachFeedback(local *dataplane.Switch) {
	local.OnReport = func(r packet.OWDReport) {
		c.UpdateEstimate(r.PathID,
			float64(r.MeanOWDNano)/float64(time.Millisecond),
			float64(r.JitterNano)/float64(time.Millisecond),
			r.SampleCount)
	}
}

// UpdateEstimate folds in an estimate for a path (jitterMs may be 0 when
// the report format does not carry it).
func (c *Controller) UpdateEstimate(id uint8, owdMs, jitterMs float64, samples uint16) {
	e, ok := c.ests[id]
	if !ok {
		e = &PathEstimate{ID: id}
		c.ests[id] = e
		i := sort.Search(len(c.order), func(i int) bool { return c.order[i].ID >= id })
		c.order = append(c.order, nil)
		copy(c.order[i+1:], c.order[i:])
		c.order[i] = e
	}
	e.OWDMs = owdMs
	if jitterMs > 0 {
		e.JitterMs = jitterMs
	}
	e.Samples = samples
	e.UpdatedAt = c.eng.Now()
	e.Valid = true
	c.Stats.Reports++
	// Gauges mirror the estimate only after every field (and the order
	// slice) is final, so a concurrent scrape never sees a gauge ahead of
	// what Estimates() would return at this event boundary.
	if co := c.cobs; co != nil {
		co.reports.Inc()
		co.pathGauges(id).set(e)
	}
}

// Estimates returns a snapshot of every known path estimate, sorted by
// path ID. The decision loop feeds this to the policy (map iteration
// order must never leak into a tie-break), and chaos invariant checkers
// read it to judge convergence. The order is maintained incrementally as
// paths first report, so a snapshot is a straight copy — no per-call
// sort.
func (c *Controller) Estimates() []PathEstimate {
	return c.estimatesInto(make([]PathEstimate, 0, len(c.order)))
}

func (c *Controller) estimatesInto(dst []PathEstimate) []PathEstimate {
	for _, e := range c.order {
		dst = append(dst, *e)
	}
	return dst
}

// LastSwitch returns when the controller last moved traffic and whether
// it has ever switched — the convergence signal failover experiments
// time against.
func (c *Controller) LastSwitch() (at sim.Time, switched bool) {
	return c.lastSwitch, c.Stats.Switches > 0
}

// Start begins the decision loop with the given cadence.
func (c *Controller) Start(every time.Duration) {
	if c.tick != nil {
		c.tick.Stop()
	}
	c.tick = sim.NewTicker(c.eng, every, func(now sim.Time) { c.decide(now) })
}

// Stop halts the decision loop.
func (c *Controller) Stop() {
	if c.tick != nil {
		c.tick.Stop()
	}
}

func (c *Controller) decide(now sim.Time) {
	var t0 time.Time
	if c.cobs != nil {
		t0 = time.Now()
	}
	c.Stats.Decisions++
	c.scratch = c.estimatesInto(c.scratch[:0])
	ests := c.scratch
	cur := c.Current()
	next := c.policy.Choose(now, cur, ests)
	if _, ok := c.sw.Tunnel(next); ok {
		if !c.haveCur || next != c.current {
			from := cur
			c.current = next
			c.haveCur = true
			if next != from {
				c.Stats.Switches++
				c.lastSwitch = now
				if co := c.cobs; co != nil {
					co.switches.Inc()
					co.current.Set(float64(next))
				}
				c.journal.Record(now, obs.KindPathSwitch, from, next,
					owdDeltaNs(ests, from, next), c.siteLabel())
				if c.OnSwitch != nil {
					c.OnSwitch(now, from, next)
				}
			}
		}
	}
	if co := c.cobs; co != nil {
		co.decisions.Inc()
		co.decideNs.Observe(int64(time.Since(t0)))
	}
}

// siteLabel returns the instrumented site name, or "" when uninstrumented
// (the journal is nil then anyway, so the value never escapes).
func (c *Controller) siteLabel() string {
	if c.cobs != nil {
		return c.cobs.site
	}
	return ""
}

// owdDeltaNs returns (to - from) OWD in nanoseconds from a snapshot —
// negative when the switch improved delay. Missing or invalid estimates
// contribute zero (a switch forced by a dead path has no defined delta).
func owdDeltaNs(ests []PathEstimate, from, to uint8) int64 {
	var fromMs, toMs float64
	var haveFrom, haveTo bool
	for i := range ests {
		e := &ests[i]
		if !e.Valid {
			continue
		}
		if e.ID == from {
			fromMs, haveFrom = e.OWDMs, true
		}
		if e.ID == to {
			toMs, haveTo = e.OWDMs, true
		}
	}
	if !haveFrom || !haveTo {
		return 0
	}
	return int64((toMs - fromMs) * float64(time.Millisecond))
}
