package control

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/dataplane"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/simnet"
)

func est(id uint8, owd float64, at sim.Time) PathEstimate {
	return PathEstimate{ID: id, OWDMs: owd, UpdatedAt: at, Valid: true}
}

func TestMinOWDPicksFastest(t *testing.T) {
	p := &MinOWD{HysteresisMs: 0.5}
	ests := []PathEstimate{est(1, 36.6, 0), est(2, 31.2, 0), est(3, 28.1, 0)}
	if got := p.Choose(0, 1, ests); got != 3 {
		t.Fatalf("Choose = %d, want 3", got)
	}
}

func TestMinOWDHysteresis(t *testing.T) {
	p := &MinOWD{HysteresisMs: 2.0}
	// 2 is only 1.5ms better than current 1: stay.
	ests := []PathEstimate{est(1, 30, 0), est(2, 28.5, 0)}
	if got := p.Choose(0, 1, ests); got != 1 {
		t.Fatalf("switched on sub-hysteresis gain: %d", got)
	}
	// 2 is 4.5ms better: switch.
	ests[1].OWDMs = 25.5
	if got := p.Choose(0, 1, ests); got != 2 {
		t.Fatalf("did not switch on clear gain: %d", got)
	}
}

// TestMinOWDOffsetInvariance: shifting every estimate by the same clock
// offset must never change the decision — the policy arithmetic has to be
// translation-invariant because raw OWDs carry the inter-switch skew.
func TestMinOWDOffsetInvariance(t *testing.T) {
	for _, off := range []float64{0, 2600, -2600, 1e6} {
		p := &MinOWD{HysteresisMs: 2.0}
		ests := []PathEstimate{est(1, 36.6+off, 0), est(2, 28.1+off, 0)}
		if got := p.Choose(0, 1, ests); got != 2 {
			t.Fatalf("offset %v changed the decision: %d", off, got)
		}
		p2 := &MinOWD{HysteresisMs: 2.0}
		ests2 := []PathEstimate{est(1, 29+off, 0), est(2, 28.1+off, 0)}
		if got := p2.Choose(0, 1, ests2); got != 1 {
			t.Fatalf("offset %v broke hysteresis: %d", off, got)
		}
	}
}

func TestMinOWDDwell(t *testing.T) {
	p := &MinOWD{HysteresisMs: 0.1, MinDwell: 10 * time.Second}
	ests := []PathEstimate{est(1, 30, 0), est(2, 20, 0)}
	if got := p.Choose(time.Second, 1, ests); got != 2 {
		t.Fatal("first switch blocked")
	}
	// Immediately better the other way: dwell must block.
	ests2 := []PathEstimate{est(1, 10, 2*time.Second), est(2, 20, 2*time.Second)}
	if got := p.Choose(2*time.Second, 2, ests2); got != 2 {
		t.Fatal("dwell did not hold")
	}
	// After dwell expires, switch allowed.
	ests3 := []PathEstimate{est(1, 10, 15*time.Second), est(2, 20, 15*time.Second)}
	if got := p.Choose(15*time.Second, 2, ests3); got != 1 {
		t.Fatal("switch blocked after dwell")
	}
}

func TestMinOWDStaleCurrentFails(t *testing.T) {
	p := &MinOWD{HysteresisMs: 5, StaleAfter: 5 * time.Second}
	// Current path 1 has a stale estimate: even a small gain moves.
	ests := []PathEstimate{est(1, 28, 0), est(2, 29, 59*time.Second)}
	if got := p.Choose(time.Minute, 1, ests); got != 2 {
		t.Fatalf("did not abandon stale current path: %d", got)
	}
}

func TestMinOWDNoValidEstimates(t *testing.T) {
	p := &MinOWD{}
	if got := p.Choose(0, 7, []PathEstimate{{ID: 1}}); got != 7 {
		t.Fatal("moved without valid estimates")
	}
	if got := p.Choose(0, 7, nil); got != 7 {
		t.Fatal("moved with no estimates")
	}
}

func TestMinJitter(t *testing.T) {
	p := &MinJitter{MaxOWDPenaltyMs: 5}
	ests := []PathEstimate{
		{ID: 1, OWDMs: 28, JitterMs: 0.33, Valid: true},
		{ID: 2, OWDMs: 31, JitterMs: 0.01, Valid: true},
		{ID: 3, OWDMs: 40, JitterMs: 0.001, Valid: true}, // too slow
	}
	if got := p.Choose(0, 1, ests); got != 2 {
		t.Fatalf("Choose = %d, want 2 (low jitter within delay budget)", got)
	}
	if got := (&MinJitter{}).Choose(0, 9, nil); got != 9 {
		t.Fatal("moved with no estimates")
	}
}

func TestStatic(t *testing.T) {
	p := &Static{ID: 4}
	if p.Choose(0, 1, []PathEstimate{est(1, 1, 0)}) != 4 {
		t.Fatal("Static moved")
	}
}

func newLoopback(t *testing.T) (*simnet.Network, *dataplane.Switch, *dataplane.Switch) {
	t.Helper()
	w := simnet.New(5)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)}, simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)})
	// trivial routing: everything b-ward / a-ward
	swA := dataplane.NewSwitch(a)
	swB := dataplane.NewSwitch(b)
	return w, swA, swB
}

func TestMonitorIngestAndPaths(t *testing.T) {
	m := NewMonitor()
	m.RecordBucket = time.Second
	name := func(id uint8) string { return map[uint8]string{1: "NTT", 2: "GTT"}[id] }
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Time(10*time.Millisecond)
		m.Ingest(dataplane.Measurement{At: at, PathID: 1, OWD: 36 * time.Millisecond, Seq: uint32(i)}, name)
		m.Ingest(dataplane.Measurement{At: at, PathID: 2, OWD: 28 * time.Millisecond, Seq: uint32(i)}, name)
	}
	if m.Samples != 200 {
		t.Fatalf("Samples = %d", m.Samples)
	}
	ps := m.Paths()
	if len(ps) != 2 || ps[0].ID != 1 || ps[1].ID != 2 {
		t.Fatalf("Paths = %+v", ps)
	}
	ntt := m.Path(1)
	if ntt.Name != "NTT" || ntt.OWD.Mean() != 36 || ntt.OWD.N() != 100 {
		t.Fatalf("NTT stats: %+v", ntt.OWD)
	}
	if !ntt.Est.Valid() || ntt.Est.Value() != 36 {
		t.Fatalf("EWMA = %v", ntt.Est.Value())
	}
	if ntt.Seq.Lost != 0 || ntt.Seq.Received != 100 {
		t.Fatalf("seq stats: %+v", ntt.Seq)
	}
	if ntt.Series == nil || ntt.Series.Len() == 0 {
		t.Fatal("series not recorded")
	}
	if m.Path(9) != nil {
		t.Fatal("phantom path")
	}
}

func TestMonitorAttachAndReporterLoop(t *testing.T) {
	// Full loop: A sends probes to B on two paths with different
	// delays; B's monitor measures; B's reporter piggybacks estimates
	// back on B->A traffic; A's controller learns and switches to the
	// fast path.
	w := simnet.New(42)
	na := w.AddNode("A", 500*time.Millisecond) // deliberate clock skew
	nb := w.AddNode("B", -300*time.Millisecond)
	r1 := w.AddNode("r1", 0)
	r2 := w.AddNode("r2", 0)
	fast := simnet.LinkConfig{Delay: simnet.FixedDelay(5 * time.Millisecond)}
	slow := simnet.LinkConfig{Delay: simnet.FixedDelay(15 * time.Millisecond)}
	w.Connect(na, r1, fast, fast)
	w.Connect(r1, nb, fast, fast)
	w.Connect(na, r2, slow, slow)
	w.Connect(r2, nb, slow, slow)

	route := func(n *simnet.Node, pfx string, port int) {
		n.SetRoute(addr.MustParsePrefix(pfx), n.Ports()[port])
	}
	route(na, "2001:db8:b1::/48", 0)
	route(na, "2001:db8:b2::/48", 1)
	route(nb, "2001:db8:a1::/48", 0)
	route(nb, "2001:db8:a2::/48", 1)
	for _, r := range []*simnet.Node{r1, r2} {
		route(r, "2001:db8:b1::/48", 1)
		route(r, "2001:db8:b2::/48", 1)
		route(r, "2001:db8:a1::/48", 0)
		route(r, "2001:db8:a2::/48", 0)
	}
	swA := dataplane.NewSwitch(na)
	swB := dataplane.NewSwitch(nb)
	mkT := func(id uint8, la, ra string, sp uint16) *dataplane.Tunnel {
		return &dataplane.Tunnel{PathID: id, LocalAddr: mustAddr(la), RemoteAddr: mustAddr(ra), SrcPort: sp}
	}
	// Path 1 = slow (via *2 prefixes), path 2 = fast: the controller
	// must move off the initial default (first tunnel).
	swA.AddTunnel(mkT(1, "2001:db8:a2::1", "2001:db8:b2::1", 40001))
	swA.AddTunnel(mkT(2, "2001:db8:a1::1", "2001:db8:b1::1", 40002))
	swB.AddTunnel(mkT(1, "2001:db8:b2::1", "2001:db8:a2::1", 40001))
	swB.AddTunnel(mkT(2, "2001:db8:b1::1", "2001:db8:a1::1", 40002))

	mon := NewMonitor()
	mon.Attach(swB, nil)
	rep := NewReporter(w.Eng, mon, swB, 50*time.Millisecond)

	ctl := NewController(w.Eng, swA, &MinOWD{HysteresisMs: 0.5})
	ctl.AttachFeedback(swA)
	ctl.Start(100 * time.Millisecond)

	if ctl.Current() != 1 {
		t.Fatalf("initial path = %d, want first tunnel", ctl.Current())
	}

	// A probes both paths every 10ms; B sends a trickle back so
	// reports have a ride. (Reports ride on B->A tango packets.)
	inner := make([]byte, 60)
	inner[0] = 6 << 4
	sim.NewTicker(w.Eng, 10*time.Millisecond, func(sim.Time) {
		for _, tun := range swA.Tunnels() {
			swA.SendOnTunnel(tun, inner)
		}
	})
	sim.NewTicker(w.Eng, 25*time.Millisecond, func(sim.Time) {
		ts := swB.Tunnels()
		swB.SendOnTunnel(ts[0], inner)
	})

	w.Run(5 * time.Second)

	if ctl.Current() != 2 {
		t.Fatalf("controller stayed on slow path %d; reports=%d", ctl.Current(), ctl.Stats.Reports)
	}
	if ctl.Stats.Switches == 0 || ctl.Stats.Decisions == 0 {
		t.Fatalf("stats: %+v", ctl.Stats)
	}
	if rep.Sent == 0 {
		t.Fatal("reporter sent nothing")
	}
	// Raw estimates carry B's clock domain but the ordering is right.
	ests := ctl.ests
	if ests[1].OWDMs <= ests[2].OWDMs {
		t.Fatalf("estimates not ordered: %+v vs %+v", ests[1], ests[2])
	}
	rep.Stop()
	ctl.Stop()
}

func TestControllerOnSwitchCallback(t *testing.T) {
	w := simnet.New(1)
	n := w.AddNode("x", 0)
	sw := dataplane.NewSwitch(n)
	sw.AddTunnel(&dataplane.Tunnel{PathID: 1, LocalAddr: mustAddr("2001:db8::1"), RemoteAddr: mustAddr("2001:db8::2")})
	sw.AddTunnel(&dataplane.Tunnel{PathID: 2, LocalAddr: mustAddr("2001:db8::3"), RemoteAddr: mustAddr("2001:db8::4")})
	ctl := NewController(w.Eng, sw, &MinOWD{})
	var moves []uint8
	ctl.OnSwitch = func(at sim.Time, from, to uint8) { moves = append(moves, to) }
	ctl.Start(10 * time.Millisecond)
	ctl.UpdateEstimate(1, 30, 0, 10)
	ctl.UpdateEstimate(2, 20, 0, 10)
	w.Run(100 * time.Millisecond)
	if len(moves) != 1 || moves[0] != 2 {
		t.Fatalf("moves = %v", moves)
	}
	// Unknown path from policy is ignored.
	ctl.UpdateEstimate(9, 1, 0, 10)
	w.Run(200 * time.Millisecond)
	if ctl.Current() == 9 {
		t.Fatal("controller selected unregistered tunnel")
	}
}

func TestReporterSkipsInvalidAndEmpty(t *testing.T) {
	w := simnet.New(2)
	n := w.AddNode("x", 0)
	sw := dataplane.NewSwitch(n)
	mon := NewMonitor()
	rep := NewReporter(w.Eng, mon, sw, 10*time.Millisecond)
	w.Run(100 * time.Millisecond)
	if rep.Sent != 0 {
		t.Fatal("reporter sent with no paths")
	}
}

func TestMonitorSampleCap(t *testing.T) {
	// Reports clamp sample counts to uint16.
	w := simnet.New(3)
	n := w.AddNode("x", 0)
	sw := dataplane.NewSwitch(n)
	mon := NewMonitor()
	pm := mon.newPath(1, "x")
	for i := 0; i < 70000; i++ {
		pm.OWD.Add(1)
	}
	pm.Est.Add(5)
	rep := NewReporter(w.Eng, mon, sw, 10*time.Millisecond)
	var got *packet.OWDReport
	// QueueReport stores one pending report; sending requires an encap.
	w.Run(15 * time.Millisecond)
	_ = got
	_ = rep
	// The clamp logic is internal; just ensure no panic and Sent ticks.
	if rep.Sent != 1 {
		t.Fatalf("Sent = %d", rep.Sent)
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
