// Package control implements Tango's control logic: the iterative
// BGP-community path-discovery algorithm of §4.1, the per-path
// measurement monitor, and the performance-driven path-selection
// controller with pluggable policies.
package control

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
)

// DiscoveredPath is one wide-area path exposed by the discovery loop.
type DiscoveredPath struct {
	// Index is the discovery round (0 = the BGP default path).
	Index int
	// Path is the AS path observed at the source edge.
	Path bgp.Path
	// ProviderASN is the transit AS that delivers traffic into the
	// destination POP — the AS the next round suppresses.
	ProviderASN bgp.ASN
	// ProviderName is a human label for the provider.
	ProviderName string
	// SuppressedWhenSeen are the action communities that were attached
	// to the announcement when this path was observed.
	SuppressedWhenSeen []bgp.Community
}

func (d DiscoveredPath) String() string {
	return fmt.Sprintf("#%d via %s: [%v] (suppressing %v)", d.Index, d.ProviderName, d.Path, d.SuppressedWhenSeen)
}

// Discoverer runs the paper's three-step iterative algorithm for one
// traffic direction src->dst: the destination edge announces a probe
// prefix, the source edge observes the AS path it hears, the destination
// attaches one more "do not export to <that provider>" community, and the
// loop repeats until the prefix becomes unreachable at the source.
type Discoverer struct {
	// Announcer is the destination edge's speaker (it originates the
	// probe prefix — paths are discovered for traffic flowing TOWARD
	// the announcer).
	Announcer *bgp.Speaker
	// Observer is the source edge's speaker.
	Observer *bgp.Speaker
	// Probe is the prefix used for discovery.
	Probe addr.Prefix
	// POPAS identifies the destination's provider-facing AS (the Vultr
	// POP): the provider to suppress next is the AS adjacent to the
	// last occurrence of POPAS on the observed path.
	POPAS bgp.ASN
	// NameFor labels a provider ASN (optional; defaults to "AS<n>").
	NameFor func(bgp.ASN) string
	// RoundWait is the per-round convergence wait (the paper "waited
	// for BGP to propagate"); default 120 s of virtual time.
	RoundWait time.Duration
	// MaxRounds bounds the loop against runaway topologies; default 8.
	MaxRounds int
	// BaseCommunities are attached to every announcement in addition
	// to the accumulated suppression set.
	BaseCommunities []bgp.Community
	// UsePoisoning suppresses observed providers by AS-path poisoning
	// instead of action communities (§3/§6's "more knobs"). Poisoning
	// needs no provider support, but it is a blunter instrument: a
	// poisoned AS rejects the route everywhere, so multi-provider paths
	// that merely *transit* a previously observed AS disappear too —
	// typically exposing fewer paths than the community-based loop.
	UsePoisoning bool

	// OnRound, when set, fires after each observation round.
	OnRound func(round int, found *DiscoveredPath)
}

// AdjacentProvider returns the ASN that hands traffic into the POP: the
// element immediately before the last occurrence of popAS in path (or the
// last element if popAS never appears — the observer is directly attached
// to the provider).
func AdjacentProvider(path bgp.Path, popAS bgp.ASN) (bgp.ASN, bool) {
	last := -1
	for i, a := range path {
		if a == popAS {
			last = i
		}
	}
	switch {
	case last > 0:
		// Skip consecutive POP ASNs (prepending).
		for i := last - 1; i >= 0; i-- {
			if path[i] != popAS {
				return path[i], true
			}
		}
		return 0, false
	case last == 0:
		return 0, false // the POP originates directly; no provider hop
	default:
		if len(path) == 0 {
			return 0, false
		}
		return path[len(path)-1], true
	}
}

// MaxRoundsOrDefault returns the configured round bound (default 8).
func (d *Discoverer) MaxRoundsOrDefault() int {
	if d.MaxRounds == 0 {
		return 8
	}
	return d.MaxRounds
}

// Run executes the discovery loop on the announcer's engine and invokes
// done with every exposed path once the loop terminates. Run returns
// immediately; the caller drives the engine.
func (d *Discoverer) Run(done func([]DiscoveredPath)) {
	eng := d.Announcer.Engine()
	wait := d.RoundWait
	if wait == 0 {
		wait = 120 * time.Second
	}
	maxRounds := d.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8
	}
	nameFor := d.NameFor
	if nameFor == nil {
		nameFor = func(a bgp.ASN) string { return fmt.Sprintf("AS%d", a) }
	}

	var found []DiscoveredPath
	var suppressed []bgp.Community
	var poison bgp.Path
	var round func()
	announce := func() {
		comms := append(append([]bgp.Community(nil), d.BaseCommunities...), suppressed...)
		d.Announcer.OriginateWithPath(d.Probe, poison, comms...)
	}
	round = func() {
		n := len(found)
		best := d.Observer.Best(d.Probe)
		if best == nil || n >= maxRounds {
			if d.OnRound != nil {
				d.OnRound(n, nil)
			}
			d.Announcer.Withdraw(d.Probe)
			done(found)
			return
		}
		prov, ok := AdjacentProvider(best.Path, d.POPAS)
		if !ok {
			d.Announcer.Withdraw(d.Probe)
			done(found)
			return
		}
		dp := DiscoveredPath{
			Index:              n,
			Path:               best.Path.Clone(),
			ProviderASN:        prov,
			ProviderName:       nameFor(prov),
			SuppressedWhenSeen: append([]bgp.Community(nil), suppressed...),
		}
		found = append(found, dp)
		if d.OnRound != nil {
			d.OnRound(n, &dp)
		}
		if d.UsePoisoning {
			poison = append(poison, prov)
		} else {
			suppressed = append(suppressed, bgp.NoExportTo(prov))
		}
		announce()
		eng.Schedule(wait, round)
	}
	announce()
	eng.Schedule(wait, round)
}

// PinCommunities returns the community set that pins a tunnel prefix to
// paths[idx]: every *other* discovered provider is suppressed, so the
// prefix propagates only over the chosen provider.
func PinCommunities(paths []DiscoveredPath, idx int) []bgp.Community {
	var out []bgp.Community
	for i, p := range paths {
		if i == idx {
			continue
		}
		c := bgp.NoExportTo(p.ProviderASN)
		dup := false
		for _, x := range out {
			if x == c {
				dup = true
				break
			}
		}
		if !dup && p.ProviderASN != paths[idx].ProviderASN {
			out = append(out, c)
		}
	}
	return out
}
