package control

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/topo"
)

func mustVultr(t *testing.T, seed int64) *topo.Scenario {
	t.Helper()
	s, err := topo.NewVultrScenario(topo.ScenarioConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdjacentProvider(t *testing.T) {
	pop := bgp.ASVultr
	cases := []struct {
		path bgp.Path
		want bgp.ASN
		ok   bool
	}{
		{bgp.Path{bgp.ASVultr, bgp.ASNTT, bgp.ASVultr}, bgp.ASNTT, true},
		{bgp.Path{bgp.ASVultr, bgp.ASNTT, bgp.ASCogent, bgp.ASVultr}, bgp.ASCogent, true},
		{bgp.Path{bgp.ASNTT, bgp.ASVultr}, bgp.ASNTT, true},
		// Prepending at the POP.
		{bgp.Path{bgp.ASGTT, bgp.ASVultr, bgp.ASVultr, bgp.ASVultr}, bgp.ASGTT, true},
		// Observer directly attached to the provider chain, POP absent.
		{bgp.Path{bgp.ASNTT, bgp.ASTelia}, bgp.ASTelia, true},
		{bgp.Path{bgp.ASVultr}, 0, false},
		{bgp.Path{}, 0, false},
	}
	for _, c := range cases {
		got, ok := AdjacentProvider(c.path, pop)
		if got != c.want || ok != c.ok {
			t.Fatalf("AdjacentProvider(%v) = %d,%v want %d,%v", c.path, got, ok, c.want, c.ok)
		}
	}
}

// TestDiscoveryVultrLAtoNY runs the paper's algorithm end-to-end on the
// simulated deployment: traffic LA->NY must expose NTT, Telia, GTT, then
// the NTT+Cogent path, in that order (§4.1, Figure 3).
func TestDiscoveryVultrLAtoNY(t *testing.T) {
	s := mustVultr(t, 10)
	s.Run(5 * time.Minute) // establish + host prefixes

	d := &Discoverer{
		Announcer: s.EdgeNY.Speaker, // destination announces
		Observer:  s.EdgeLA.Speaker, // source observes
		Probe:     addr.MustParsePrefix("2001:db8:100::/48"),
		POPAS:     bgp.ASVultr,
		NameFor:   func(a bgp.ASN) string { return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr}) },
		RoundWait: 2 * time.Minute,
	}
	var got []DiscoveredPath
	done := false
	d.Run(func(paths []DiscoveredPath) { got = paths; done = true })
	s.Run(30 * time.Minute)

	if !done {
		t.Fatal("discovery did not terminate")
	}
	want := []string{"NTT", "Telia", "GTT", "Cogent"}
	if len(got) != len(want) {
		t.Fatalf("discovered %d paths (%v), want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].ProviderName != w {
			t.Fatalf("path %d via %s, want %s (all: %v)", i, got[i].ProviderName, w, got)
		}
		if got[i].Index != i {
			t.Fatalf("path %d has index %d", i, got[i].Index)
		}
		if len(got[i].SuppressedWhenSeen) != i {
			t.Fatalf("path %d seen with %d suppressions, want %d", i, len(got[i].SuppressedWhenSeen), i)
		}
	}
	// Probe prefix cleaned up after discovery.
	if s.EdgeLA.Speaker.Best(d.Probe) != nil {
		s.Run(5 * time.Minute)
		if s.EdgeLA.Speaker.Best(d.Probe) != nil {
			t.Fatal("probe prefix still announced after discovery")
		}
	}
}

// TestDiscoveryVultrNYtoLA checks the reverse direction: NTT, Telia, GTT,
// Level3.
func TestDiscoveryVultrNYtoLA(t *testing.T) {
	s := mustVultr(t, 11)
	s.Run(5 * time.Minute)

	d := &Discoverer{
		Announcer: s.EdgeLA.Speaker,
		Observer:  s.EdgeNY.Speaker,
		Probe:     addr.MustParsePrefix("2001:db8:200::/48"),
		POPAS:     bgp.ASVultr,
		NameFor:   func(a bgp.ASN) string { return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr}) },
		RoundWait: 2 * time.Minute,
	}
	var got []DiscoveredPath
	rounds := 0
	d.OnRound = func(round int, found *DiscoveredPath) { rounds++ }
	d.Run(func(paths []DiscoveredPath) { got = paths })
	s.Run(30 * time.Minute)

	want := []string{"NTT", "Telia", "GTT", "Level3"}
	if len(got) != len(want) {
		t.Fatalf("discovered %v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].ProviderName != w {
			t.Fatalf("path %d via %s, want %s", i, got[i].ProviderName, w)
		}
	}
	if rounds != 5 { // 4 found + 1 terminating round
		t.Fatalf("rounds = %d", rounds)
	}
	for _, dp := range got {
		if dp.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestPinCommunities(t *testing.T) {
	paths := []DiscoveredPath{
		{Index: 0, ProviderASN: bgp.ASNTT},
		{Index: 1, ProviderASN: bgp.ASTelia},
		{Index: 2, ProviderASN: bgp.ASGTT},
		{Index: 3, ProviderASN: bgp.ASCogent},
	}
	pin := PinCommunities(paths, 1) // pin Telia
	if len(pin) != 3 {
		t.Fatalf("pin set = %v", pin)
	}
	for _, c := range pin {
		if c == bgp.NoExportTo(bgp.ASTelia) {
			t.Fatal("pinned provider suppressed")
		}
	}
	want := map[bgp.Community]bool{
		bgp.NoExportTo(bgp.ASNTT): true, bgp.NoExportTo(bgp.ASGTT): true, bgp.NoExportTo(bgp.ASCogent): true,
	}
	for _, c := range pin {
		if !want[c] {
			t.Fatalf("unexpected pin community %v", c)
		}
	}
}

// TestPinnedPrefixesRouteViaDistinctProviders is the payoff of E1: after
// discovery, four pinned prefixes each propagate over exactly their
// provider.
func TestPinnedPrefixesRouteViaDistinctProviders(t *testing.T) {
	s := mustVultr(t, 12)
	s.Run(5 * time.Minute)

	paths := []DiscoveredPath{
		{Index: 0, ProviderASN: bgp.ASNTT, ProviderName: "NTT"},
		{Index: 1, ProviderASN: bgp.ASTelia, ProviderName: "Telia"},
		{Index: 2, ProviderASN: bgp.ASGTT, ProviderName: "GTT"},
		{Index: 3, ProviderASN: bgp.ASCogent, ProviderName: "Cogent"},
	}
	base := addr.MustParsePrefix("2001:db8:100::/44")
	for i := range paths {
		pfx, err := base.Subnet(48, i)
		if err != nil {
			t.Fatal(err)
		}
		s.EdgeNY.Speaker.Originate(pfx, PinCommunities(paths, i)...)
	}
	s.Run(5 * time.Minute)

	for i, want := range []string{"NTT", "Telia", "GTT", "Cogent"} {
		pfx, _ := base.Subnet(48, i)
		best := s.EdgeLA.Speaker.Best(pfx)
		if best == nil {
			t.Fatalf("pinned prefix %d unreachable", i)
		}
		if got := topo.ProviderNameForPath(best.Path); got != want {
			t.Fatalf("pinned prefix %d routes via %s (%v), want %s", i, got, best.Path, want)
		}
	}
}
