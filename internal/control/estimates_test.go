package control

import (
	"sort"
	"testing"

	"tango/internal/dataplane"
	"tango/internal/simnet"
)

// The sorted snapshot is maintained incrementally: new path IDs splice
// into place on first report and later reports only mutate in place, so
// Estimates never re-sorts. This test feeds IDs in a hostile order with
// repeated updates and checks the snapshot stays sorted, complete, and
// duplicate-free.
func TestEstimatesSortedIncremental(t *testing.T) {
	w := simnet.New(11)
	n := w.AddNode("x", 0)
	ctl := NewController(w.Eng, dataplane.NewSwitch(n), &MinOWD{})
	ids := []uint8{9, 3, 250, 1, 77, 3, 9, 128, 2, 250, 1}
	for i, id := range ids {
		ctl.UpdateEstimate(id, float64(100+i), 0, uint16(i))
	}
	ests := ctl.Estimates()
	want := []uint8{1, 2, 3, 9, 77, 128, 250}
	if len(ests) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %+v", len(ests), len(want), ests)
	}
	for i, e := range ests {
		if e.ID != want[i] {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, e.ID, want[i])
		}
	}
	if !sort.SliceIsSorted(ests, func(i, j int) bool { return ests[i].ID < ests[j].ID }) {
		t.Fatal("snapshot not sorted")
	}
	// Updates land in the snapshot (ID 1 was last updated at i=10).
	if ests[0].OWDMs != 110 {
		t.Fatalf("latest update for path 1 missing: OWD %v", ests[0].OWDMs)
	}
	// The snapshot is a copy: mutating it must not corrupt the controller.
	ests[0].OWDMs = -1
	if again := ctl.Estimates(); again[0].OWDMs != 110 {
		t.Fatal("snapshot aliases controller state")
	}
}

// benchController returns a controller pre-loaded with n path estimates.
func benchController(b *testing.B, n int) *Controller {
	b.Helper()
	w := simnet.New(12)
	node := w.AddNode("x", 0)
	ctl := NewController(w.Eng, dataplane.NewSwitch(node), &MinOWD{})
	for i := 0; i < n; i++ {
		ctl.UpdateEstimate(uint8(i*37%251), float64(20+i), 0.5, 100)
	}
	return ctl
}

// BenchmarkEstimatesSnapshot measures the incremental-order snapshot the
// decision loop takes every tick (via the reusable scratch buffer, as
// decide does).
func BenchmarkEstimatesSnapshot(b *testing.B) {
	ctl := benchController(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.scratch = ctl.estimatesInto(ctl.scratch[:0])
	}
}

// BenchmarkEstimatesResort measures what every decide tick used to cost:
// materialize the map and sort it by path ID.
func BenchmarkEstimatesResort(b *testing.B) {
	ctl := benchController(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests := make([]PathEstimate, 0, len(ctl.ests))
		for _, e := range ctl.ests {
			ests = append(ests, *e)
		}
		sort.Slice(ests, func(i, j int) bool { return ests[i].ID < ests[j].ID })
	}
}
