package control

import (
	"strconv"
	"time"

	"tango/internal/dataplane"
	"tango/internal/measure"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
)

// PathMonitor accumulates receiver-side statistics for one incoming
// wide-area path. All delay values are in the receiver's clock domain
// (true OWD plus the constant inter-switch clock offset).
type PathMonitor struct {
	ID   uint8
	Name string

	// OWD aggregates every raw sample.
	OWD measure.Welford
	// Est is the smoothed current-delay estimate reported to the peer.
	Est *measure.EWMA
	// Jitter is the paper's 1-second rolling-window metric.
	Jitter *measure.RollingStd
	// JitEst is a smoothed RFC 3550-style delay-variation estimate
	// (EWMA of |successive OWD differences|), used for live reports:
	// unlike the trace-long Jitter metric it tracks current conditions.
	JitEst *measure.EWMA
	// Seq tracks loss/reordering from tunnel sequence numbers.
	Seq measure.SeqTracker
	// Series, when non-nil, records the time series for figures.
	Series *measure.Series

	// owdHist/jitHist are registered by Monitor.Instrument; Ingest
	// observes into them nil-safely, so an uninstrumented monitor pays
	// two branches per sample and nothing else.
	owdHist *obs.Histogram
	jitHist *obs.Histogram

	LastAt  sim.Time
	LastOWD time.Duration
}

// Monitor is the receiver-side measurement engine: it consumes the
// data-plane's per-packet observations and maintains per-path state.
type Monitor struct {
	paths map[uint8]*PathMonitor
	// RecordBucket, when positive, attaches a Series with this bucket
	// to every path created afterwards.
	RecordBucket time.Duration
	// EWMAAlpha configures the smoothed estimator (default 0.05).
	EWMAAlpha float64
	// JitterWindow configures the rolling-std window (default 1 s).
	JitterWindow time.Duration
	// OnSample, when set, fires after each sample is folded in.
	OnSample func(*PathMonitor, dataplane.Measurement)

	// reg/site carry the instrumentation target set by Instrument;
	// per-path histograms register in newPath (which already allocates,
	// so registration stays off the per-sample path).
	reg  *obs.Registry
	site string

	Samples uint64
}

// Instrument registers per-path OWD and jitter histograms in reg under
// the given site label. Paths already known register immediately; new
// paths register as they first report. OWD observations are the raw
// per-packet one-way delay in nanoseconds (receiver clock domain);
// jitter observations are the per-sample |successive OWD difference|.
func (m *Monitor) Instrument(reg *obs.Registry, site string) {
	m.reg = reg
	m.site = site
	for id, pm := range m.paths {
		m.instrumentPath(id, pm)
	}
}

func (m *Monitor) instrumentPath(id uint8, pm *PathMonitor) {
	ls := []obs.Label{obs.L("site", m.site), obs.L("path", strconv.Itoa(int(id)))}
	pm.owdHist = m.reg.Histogram("tango_path_owd_ns",
		"Per-packet one-way delay by incoming path, nanoseconds (receiver clock domain).", ls...)
	pm.jitHist = m.reg.Histogram("tango_path_jitter_ns",
		"Per-sample absolute successive OWD difference by incoming path, nanoseconds.", ls...)
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{paths: make(map[uint8]*PathMonitor)}
}

// Attach subscribes the monitor to a switch's measurements. nameFor
// labels path IDs (may be nil).
func (m *Monitor) Attach(sw *dataplane.Switch, nameFor func(uint8) string) {
	sw.OnMeasure = func(meas dataplane.Measurement) {
		m.Ingest(meas, nameFor)
	}
}

// Ingest folds one measurement into the per-path state.
func (m *Monitor) Ingest(meas dataplane.Measurement, nameFor func(uint8) string) {
	pm, ok := m.paths[meas.PathID]
	if !ok {
		name := ""
		if nameFor != nil {
			name = nameFor(meas.PathID)
		}
		pm = m.newPath(meas.PathID, name)
	}
	m.Samples++
	owdMs := float64(meas.OWD) / float64(time.Millisecond)
	pm.OWD.Add(owdMs)
	pm.owdHist.Observe(int64(meas.OWD))
	if pm.OWD.N() > 1 {
		d := owdMs - float64(pm.LastOWD)/float64(time.Millisecond)
		if d < 0 {
			d = -d
		}
		pm.JitEst.Add(d)
		pm.jitHist.Observe(int64(d * float64(time.Millisecond)))
	}
	pm.Est.Add(owdMs)
	pm.Jitter.Add(time.Duration(meas.At), owdMs)
	pm.Seq.Add(meas.Seq)
	if pm.Series != nil {
		pm.Series.Add(time.Duration(meas.At), owdMs)
	}
	pm.LastAt = meas.At
	pm.LastOWD = meas.OWD
	if m.OnSample != nil {
		m.OnSample(pm, meas)
	}
}

func (m *Monitor) newPath(id uint8, name string) *PathMonitor {
	alpha := m.EWMAAlpha
	if alpha == 0 {
		alpha = 0.05
	}
	win := m.JitterWindow
	if win == 0 {
		win = time.Second
	}
	pm := &PathMonitor{
		ID:     id,
		Name:   name,
		Est:    measure.NewEWMA(alpha),
		JitEst: measure.NewEWMA(alpha),
		Jitter: measure.NewRollingStd(win),
	}
	if m.RecordBucket > 0 {
		pm.Series = measure.NewSeries(name, m.RecordBucket)
	}
	if m.reg != nil {
		m.instrumentPath(id, pm)
	}
	m.paths[id] = pm
	return pm
}

// Path returns the state for a path ID, or nil.
func (m *Monitor) Path(id uint8) *PathMonitor { return m.paths[id] }

// Paths returns all monitored paths in ID order.
func (m *Monitor) Paths() []*PathMonitor {
	var max uint8
	for id := range m.paths {
		if id > max {
			max = id
		}
	}
	out := make([]*PathMonitor, 0, len(m.paths))
	for id := uint8(0); ; id++ {
		if pm, ok := m.paths[id]; ok {
			out = append(out, pm)
		}
		if id == max {
			break
		}
	}
	return out
}

// Reporter periodically piggybacks the monitor's per-path estimates onto
// data traffic flowing back to the peer (round-robin over paths), closing
// the measurement loop without any probe or control channel: the switch's
// next outbound packet carries the report in its Tango header.
type Reporter struct {
	mon  *Monitor
	back *dataplane.Switch
	eng  *sim.Engine
	tick *sim.Ticker
	next int
	Sent uint64
	// MaxAge suppresses reports for paths with no packet received for
	// this long — a dead path must go stale at the peer's controller
	// rather than be refreshed with a frozen estimate. 0 disables.
	MaxAge time.Duration
}

// NewReporter starts reporting every interval on the engine driving back.
func NewReporter(eng *sim.Engine, mon *Monitor, back *dataplane.Switch, interval time.Duration) *Reporter {
	r := &Reporter{mon: mon, back: back, eng: eng}
	r.tick = sim.NewTicker(eng, interval, func(sim.Time) { r.emit() })
	return r
}

func (r *Reporter) emit() {
	paths := r.mon.Paths()
	if len(paths) == 0 {
		return
	}
	pm := paths[r.next%len(paths)]
	r.next++
	if !pm.Est.Valid() {
		return
	}
	if r.MaxAge > 0 && r.eng.Now()-pm.LastAt > r.MaxAge {
		return
	}
	n := pm.OWD.N()
	if n > 0xffff {
		n = 0xffff
	}
	r.back.QueueReport(packet.OWDReport{
		PathID:      pm.ID,
		SampleCount: uint16(n),
		MeanOWDNano: int64(pm.Est.Value() * float64(time.Millisecond)),
		JitterNano:  int64(pm.JitEst.Value() * float64(time.Millisecond)),
	})
	r.Sent++
}

// Stop halts reporting.
func (r *Reporter) Stop() { r.tick.Stop() }
