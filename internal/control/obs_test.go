package control

import (
	"fmt"
	"testing"
	"time"

	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/simnet"
)

// TestControllerObsAgreesWithEstimates pins the consistency contract:
// at any event boundary the registered gauges must read exactly what
// Estimates() returns, the switch counter must equal Stats.Switches,
// and the current-path gauge must equal Current() — a switch may never
// become visible in the counter before the estimate state it acted on.
func TestControllerObsAgreesWithEstimates(t *testing.T) {
	w := simnet.New(1)
	n := w.AddNode("x", 0)
	sw := dataplane.NewSwitch(n)
	sw.AddTunnel(&dataplane.Tunnel{PathID: 1, LocalAddr: mustAddr("2001:db8::1"), RemoteAddr: mustAddr("2001:db8::2")})
	sw.AddTunnel(&dataplane.Tunnel{PathID: 2, LocalAddr: mustAddr("2001:db8::3"), RemoteAddr: mustAddr("2001:db8::4")})
	ctl := NewController(w.Eng, sw, &MinOWD{HysteresisMs: 0.5})
	reg := obs.NewRegistry()
	j := obs.NewJournal(16)
	ctl.Instrument(reg, j, "ny")

	check := func(when string) {
		t.Helper()
		snap := reg.Snapshot()
		for _, e := range ctl.Estimates() {
			owdKey := fmt.Sprintf(`tango_estimate_owd_ms{path="%d",site="ny"}`, e.ID)
			if got := snap[owdKey]; got != e.OWDMs {
				t.Fatalf("%s: gauge %s = %v, Estimates() says %v", when, owdKey, got, e.OWDMs)
			}
			jitKey := fmt.Sprintf(`tango_estimate_jitter_ms{path="%d",site="ny"}`, e.ID)
			if got := snap[jitKey]; got != e.JitterMs {
				t.Fatalf("%s: gauge %s = %v, Estimates() says %v", when, jitKey, got, e.JitterMs)
			}
			sampKey := fmt.Sprintf(`tango_estimate_samples{path="%d",site="ny"}`, e.ID)
			if got := snap[sampKey]; got != float64(e.Samples) {
				t.Fatalf("%s: gauge %s = %v, Estimates() says %v", when, sampKey, got, e.Samples)
			}
		}
		if got := snap[`tango_controller_switches_total{site="ny"}`]; got != float64(ctl.Stats.Switches) {
			t.Fatalf("%s: switch counter %v != Stats.Switches %d", when, got, ctl.Stats.Switches)
		}
		if got := snap[`tango_controller_current_path{site="ny"}`]; got != float64(ctl.Current()) {
			t.Fatalf("%s: current gauge %v != Current() %d", when, got, ctl.Current())
		}
		if got := snap[`tango_controller_decisions_total{site="ny"}`]; got != float64(ctl.Stats.Decisions) {
			t.Fatalf("%s: decisions counter %v != Stats.Decisions %d", when, got, ctl.Stats.Decisions)
		}
	}

	check("before any report")
	ctl.UpdateEstimate(1, 30, 0.4, 10)
	check("after first report")
	ctl.UpdateEstimate(2, 20, 0.2, 12)
	check("after second path appears")

	ctl.Start(10 * time.Millisecond)
	for i := 0; i < 20; i++ {
		w.Run(10 * time.Millisecond)
		check("mid decision loop")
	}
	if ctl.Stats.Switches == 0 {
		t.Fatal("fixture never switched; consistency-under-switch not exercised")
	}

	// Shift the estimates back so the controller switches again, then
	// verify at the very next boundary.
	ctl.UpdateEstimate(1, 5, 0.4, 40)
	check("after estimate shift")
	w.Run(3 * time.Second) // past MinDwell default of 0
	check("after switch back")
	if ctl.Stats.Switches < 2 {
		t.Fatalf("expected a second switch, got %d", ctl.Stats.Switches)
	}
	ctl.Stop()
}

// TestControllerJournalRecordsSwitch verifies the trace record: kind
// path_switch, A/B the old and new path IDs, V the OWD delta (new minus
// old) in nanoseconds, target the site label.
func TestControllerJournalRecordsSwitch(t *testing.T) {
	w := simnet.New(2)
	n := w.AddNode("x", 0)
	sw := dataplane.NewSwitch(n)
	sw.AddTunnel(&dataplane.Tunnel{PathID: 1, LocalAddr: mustAddr("2001:db8::1"), RemoteAddr: mustAddr("2001:db8::2")})
	sw.AddTunnel(&dataplane.Tunnel{PathID: 2, LocalAddr: mustAddr("2001:db8::3"), RemoteAddr: mustAddr("2001:db8::4")})
	ctl := NewController(w.Eng, sw, &MinOWD{HysteresisMs: 0.5})
	reg := obs.NewRegistry()
	j := obs.NewJournal(16)
	ctl.Instrument(reg, j, "ny")

	ctl.UpdateEstimate(1, 30, 0, 10)
	ctl.UpdateEstimate(2, 20, 0, 10)
	ctl.Start(10 * time.Millisecond)
	w.Run(50 * time.Millisecond)

	recs := j.Tail(0)
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1 (the switch): %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Kind != obs.KindPathSwitch || r.A != 1 || r.B != 2 {
		t.Fatalf("record = kind %v A %d B %d, want path_switch 1->2", r.Kind, r.A, r.B)
	}
	wantDelta := int64((20.0 - 30.0) * float64(time.Millisecond))
	if r.V != wantDelta {
		t.Fatalf("OWD delta = %d ns, want %d", r.V, wantDelta)
	}
	if r.Target() != "ny" {
		t.Fatalf("target = %q, want ny", r.Target())
	}
	ctl.Stop()
}

// TestMonitorObsHistograms verifies Ingest feeds the per-path OWD and
// jitter histograms, including lazy registration of paths that first
// report after Instrument.
func TestMonitorObsHistograms(t *testing.T) {
	mon := NewMonitor()
	reg := obs.NewRegistry()
	mon.Instrument(reg, "la")

	mon.Ingest(dataplane.Measurement{PathID: 1, OWD: 25 * time.Millisecond, Seq: 1}, nil)
	mon.Ingest(dataplane.Measurement{PathID: 1, OWD: 27 * time.Millisecond, Seq: 2}, nil)
	mon.Ingest(dataplane.Measurement{PathID: 2, OWD: 40 * time.Millisecond, Seq: 1}, nil)

	snap := reg.Snapshot()
	if got := snap[`tango_path_owd_ns_count{path="1",site="la"}`]; got != 2 {
		t.Fatalf("path 1 OWD observations = %v, want 2", got)
	}
	if got := snap[`tango_path_owd_ns_sum{path="1",site="la"}`]; got != float64(52*time.Millisecond) {
		t.Fatalf("path 1 OWD sum = %v, want %v", got, float64(52*time.Millisecond))
	}
	// Jitter only starts with the second sample of a path.
	if got := snap[`tango_path_jitter_ns_count{path="1",site="la"}`]; got != 1 {
		t.Fatalf("path 1 jitter observations = %v, want 1", got)
	}
	if got := snap[`tango_path_owd_ns_count{path="2",site="la"}`]; got != 1 {
		t.Fatalf("lazily registered path 2 observations = %v, want 1", got)
	}
}
