package control

import (
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/topo"
)

// TestDiscoveryPoisoningFindsFewerPaths contrasts the two suppression
// knobs on the Vultr scenario. Community-based suppression only stops the
// POP's direct export to one provider, so the NTT+Cogent path survives
// round 4 — the paper's result. AS-path poisoning makes the victim reject
// the route *everywhere*, so once NTT is poisoned the Cogent path (which
// transits NTT) can never appear: only 3 paths are exposed. Communities
// are the sharper knob; poisoning needs no provider support.
func TestDiscoveryPoisoningFindsFewerPaths(t *testing.T) {
	s := mustVultr(t, 15)
	s.Run(5 * time.Minute)

	name := func(a bgp.ASN) string { return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr}) }
	d := &Discoverer{
		Announcer:    s.EdgeNY.Speaker,
		Observer:     s.EdgeLA.Speaker,
		Probe:        addr.MustParsePrefix("2001:db8:100::/48"),
		POPAS:        bgp.ASVultr,
		NameFor:      name,
		RoundWait:    2 * time.Minute,
		UsePoisoning: true,
	}
	var got []DiscoveredPath
	d.Run(func(paths []DiscoveredPath) { got = paths })
	s.Run(30 * time.Minute)

	want := []string{"NTT", "Telia", "GTT"}
	if len(got) != len(want) {
		t.Fatalf("poison discovery found %d paths (%v), want %d — the NTT-transiting Cogent path must vanish",
			len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].ProviderName != w {
			t.Fatalf("poison discovery path %d via %s, want %s", i, got[i].ProviderName, w)
		}
	}
}
