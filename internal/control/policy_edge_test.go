package control

import (
	"testing"
	"time"

	"tango/internal/sim"
)

// TestMinOWDEdgeCases pins the exact boundary semantics of MinOWD.Choose.
// Each case is a sequence of decisions against one policy instance, since
// dwell behaviour depends on the previous switch.
func TestMinOWDEdgeCases(t *testing.T) {
	type step struct {
		now  sim.Time
		cur  uint8
		ests []PathEstimate
		want uint8
	}
	cases := []struct {
		name   string
		policy MinOWD
		steps  []step
	}{
		{
			// Every estimate aged out: no candidate at all, hold the
			// current path rather than oscillating onto a guess.
			name:   "all stale holds current",
			policy: MinOWD{HysteresisMs: 0.5, StaleAfter: 2 * time.Second},
			steps: []step{
				{now: 10 * time.Second, cur: 1, want: 1, ests: []PathEstimate{
					est(1, 30, 0), est(2, 20, time.Second),
				}},
			},
		},
		{
			// An estimate exactly StaleAfter old is still usable: the
			// staleness test is strictly greater-than.
			name:   "estimate at exact stale boundary still counts",
			policy: MinOWD{HysteresisMs: 0.5, StaleAfter: 2 * time.Second},
			steps: []step{
				{now: 10 * time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, 10*time.Second), est(2, 20, 8*time.Second),
				}},
			},
		},
		{
			// A gain of exactly the hysteresis margin switches: the
			// comparison is inclusive (bestOWD <= cur - hysteresis).
			name:   "tie at exact hysteresis margin switches",
			policy: MinOWD{HysteresisMs: 2.0},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 28, time.Second),
				}},
			},
		},
		{
			// A hair under the margin stays put.
			name:   "just under hysteresis margin holds",
			policy: MinOWD{HysteresisMs: 2.0},
			steps: []step{
				{now: time.Second, cur: 1, want: 1, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 28.001, time.Second),
				}},
			},
		},
		{
			// Dwell expires on the very tick it is measured: the guard is
			// now-lastSwitch < MinDwell, so a decision at exactly
			// lastSwitch+MinDwell may switch.
			name:   "dwell expiring same tick allows switch",
			policy: MinOWD{HysteresisMs: 0.5, MinDwell: 5 * time.Second},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 20, time.Second),
				}},
				// One tick before expiry: held.
				{now: 6*time.Second - time.Millisecond, cur: 2, want: 2, ests: []PathEstimate{
					est(1, 10, 5*time.Second), est(2, 20, 5*time.Second),
				}},
				// Exactly at expiry: free to move.
				{now: 6 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					est(1, 10, 6*time.Second), est(2, 20, 6*time.Second),
				}},
			},
		},
		{
			// The current path's estimate is marked invalid (e.g. its
			// tunnel vanished): evacuate immediately, even mid-dwell and
			// even for a sub-hysteresis gain.
			name:   "current invalid moves immediately despite dwell",
			policy: MinOWD{HysteresisMs: 5, MinDwell: time.Minute},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 20, time.Second),
				}},
				{now: 2 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					est(1, 19.9, 2*time.Second),
					{ID: 2, OWDMs: 20, UpdatedAt: 2 * time.Second, Valid: false},
				}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.policy
			for i, s := range tc.steps {
				if got := p.Choose(s.now, s.cur, s.ests); got != s.want {
					t.Fatalf("step %d: Choose(now=%s, cur=%d) = %d, want %d",
						i, s.now, s.cur, got, s.want)
				}
			}
		})
	}
}

// jest builds an estimate with an explicit jitter for MinJitter cases.
func jest(id uint8, owd, jitter float64, at sim.Time) PathEstimate {
	return PathEstimate{ID: id, OWDMs: owd, JitterMs: jitter, UpdatedAt: at, Valid: true}
}

// TestMinJitterEdgeCases pins MinJitter's damping: the policy gets the
// same dwell/hysteresis/staleness treatment as MinOWD, so near-equal
// jitter readings cannot flap traffic every tick.
func TestMinJitterEdgeCases(t *testing.T) {
	type step struct {
		now  sim.Time
		cur  uint8
		ests []PathEstimate
		want uint8
	}
	cases := []struct {
		name   string
		policy MinJitter
		steps  []step
	}{
		{
			// The flap MinJitter used to exhibit: two paths trading places
			// by a hair of jitter each tick. With hysteresis the policy
			// settles on path 2 and stays there.
			name:   "sub-hysteresis wobble does not flap",
			policy: MinJitter{HysteresisMs: 0.5},
			steps: []step{
				{now: 1 * time.Second, cur: 1, want: 2, ests: []PathEstimate{
					jest(1, 30, 3.0, time.Second), jest(2, 31, 2.0, time.Second),
				}},
				{now: 2 * time.Second, cur: 2, want: 2, ests: []PathEstimate{
					jest(1, 30, 1.9, 2*time.Second), jest(2, 31, 2.1, 2*time.Second),
				}},
				{now: 3 * time.Second, cur: 2, want: 2, ests: []PathEstimate{
					jest(1, 30, 2.0, 3*time.Second), jest(2, 31, 1.8, 3*time.Second),
				}},
			},
		},
		{
			// A gain of exactly the margin switches (inclusive compare,
			// mirroring MinOWD); a hair under holds.
			name:   "exact hysteresis margin switches, under holds",
			policy: MinJitter{HysteresisMs: 1.0},
			steps: []step{
				{now: time.Second, cur: 1, want: 1, ests: []PathEstimate{
					jest(1, 30, 3.0, time.Second), jest(2, 30, 2.001, time.Second),
				}},
				{now: 2 * time.Second, cur: 1, want: 2, ests: []PathEstimate{
					jest(1, 30, 3.0, 2*time.Second), jest(2, 30, 2.0, 2*time.Second),
				}},
			},
		},
		{
			// Dwell holds a clearly better path until the window expires
			// (guard is now-lastSwitch < MinDwell, exact expiry may move).
			name:   "dwell blocks until exact expiry",
			policy: MinJitter{HysteresisMs: 0.1, MinDwell: 5 * time.Second},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					jest(1, 30, 5, time.Second), jest(2, 30, 1, time.Second),
				}},
				{now: 6*time.Second - time.Millisecond, cur: 2, want: 2, ests: []PathEstimate{
					jest(1, 30, 0.2, 5*time.Second), jest(2, 30, 5, 5*time.Second),
				}},
				{now: 6 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					jest(1, 30, 0.2, 6*time.Second), jest(2, 30, 5, 6*time.Second),
				}},
			},
		},
		{
			// All estimates stale: hold rather than guess. At the exact
			// staleness boundary the estimate still counts.
			name:   "staleness: all stale holds, boundary counts",
			policy: MinJitter{HysteresisMs: 0.1, StaleAfter: 2 * time.Second},
			steps: []step{
				{now: 10 * time.Second, cur: 1, want: 1, ests: []PathEstimate{
					jest(1, 30, 5, 0), jest(2, 30, 1, time.Second),
				}},
				{now: 10 * time.Second, cur: 1, want: 2, ests: []PathEstimate{
					jest(1, 30, 5, 10*time.Second), jest(2, 30, 1, 8*time.Second),
				}},
			},
		},
		{
			// The current path going invalid evacuates immediately, even
			// mid-dwell and for a sub-hysteresis gain.
			name:   "current invalid moves immediately despite dwell",
			policy: MinJitter{HysteresisMs: 5, MinDwell: time.Minute},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					jest(1, 30, 8, time.Second), jest(2, 30, 1, time.Second),
				}},
				{now: 2 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					jest(1, 30, 0.9, 2*time.Second),
					{ID: 2, OWDMs: 30, JitterMs: 1, UpdatedAt: 2 * time.Second, Valid: false},
				}},
			},
		},
		{
			// The OWD penalty still gates candidates: a calm path that is
			// too slow is never chosen, whatever its jitter.
			name:   "owd penalty excludes calm-but-slow path",
			policy: MinJitter{MaxOWDPenaltyMs: 2, HysteresisMs: 0.1},
			steps: []step{
				{now: time.Second, cur: 1, want: 1, ests: []PathEstimate{
					jest(1, 30, 2, time.Second), jest(2, 40, 0.1, time.Second),
				}},
			},
		},
		{
			// No usable estimates at all: hold current.
			name:   "no estimates holds current",
			policy: MinJitter{},
			steps: []step{
				{now: time.Second, cur: 7, want: 7, ests: nil},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.policy
			for i, s := range tc.steps {
				if got := p.Choose(s.now, s.cur, s.ests); got != s.want {
					t.Fatalf("step %d: Choose(now=%s, cur=%d) = %d, want %d",
						i, s.now, s.cur, got, s.want)
				}
			}
		})
	}
}
