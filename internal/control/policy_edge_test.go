package control

import (
	"testing"
	"time"

	"tango/internal/sim"
)

// TestMinOWDEdgeCases pins the exact boundary semantics of MinOWD.Choose.
// Each case is a sequence of decisions against one policy instance, since
// dwell behaviour depends on the previous switch.
func TestMinOWDEdgeCases(t *testing.T) {
	type step struct {
		now  sim.Time
		cur  uint8
		ests []PathEstimate
		want uint8
	}
	cases := []struct {
		name   string
		policy MinOWD
		steps  []step
	}{
		{
			// Every estimate aged out: no candidate at all, hold the
			// current path rather than oscillating onto a guess.
			name:   "all stale holds current",
			policy: MinOWD{HysteresisMs: 0.5, StaleAfter: 2 * time.Second},
			steps: []step{
				{now: 10 * time.Second, cur: 1, want: 1, ests: []PathEstimate{
					est(1, 30, 0), est(2, 20, time.Second),
				}},
			},
		},
		{
			// An estimate exactly StaleAfter old is still usable: the
			// staleness test is strictly greater-than.
			name:   "estimate at exact stale boundary still counts",
			policy: MinOWD{HysteresisMs: 0.5, StaleAfter: 2 * time.Second},
			steps: []step{
				{now: 10 * time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, 10*time.Second), est(2, 20, 8*time.Second),
				}},
			},
		},
		{
			// A gain of exactly the hysteresis margin switches: the
			// comparison is inclusive (bestOWD <= cur - hysteresis).
			name:   "tie at exact hysteresis margin switches",
			policy: MinOWD{HysteresisMs: 2.0},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 28, time.Second),
				}},
			},
		},
		{
			// A hair under the margin stays put.
			name:   "just under hysteresis margin holds",
			policy: MinOWD{HysteresisMs: 2.0},
			steps: []step{
				{now: time.Second, cur: 1, want: 1, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 28.001, time.Second),
				}},
			},
		},
		{
			// Dwell expires on the very tick it is measured: the guard is
			// now-lastSwitch < MinDwell, so a decision at exactly
			// lastSwitch+MinDwell may switch.
			name:   "dwell expiring same tick allows switch",
			policy: MinOWD{HysteresisMs: 0.5, MinDwell: 5 * time.Second},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 20, time.Second),
				}},
				// One tick before expiry: held.
				{now: 6*time.Second - time.Millisecond, cur: 2, want: 2, ests: []PathEstimate{
					est(1, 10, 5*time.Second), est(2, 20, 5*time.Second),
				}},
				// Exactly at expiry: free to move.
				{now: 6 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					est(1, 10, 6*time.Second), est(2, 20, 6*time.Second),
				}},
			},
		},
		{
			// The current path's estimate is marked invalid (e.g. its
			// tunnel vanished): evacuate immediately, even mid-dwell and
			// even for a sub-hysteresis gain.
			name:   "current invalid moves immediately despite dwell",
			policy: MinOWD{HysteresisMs: 5, MinDwell: time.Minute},
			steps: []step{
				{now: time.Second, cur: 1, want: 2, ests: []PathEstimate{
					est(1, 30, time.Second), est(2, 20, time.Second),
				}},
				{now: 2 * time.Second, cur: 2, want: 1, ests: []PathEstimate{
					est(1, 19.9, 2*time.Second),
					{ID: 2, OWDMs: 20, UpdatedAt: 2 * time.Second, Valid: false},
				}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.policy
			for i, s := range tc.steps {
				if got := p.Choose(s.now, s.cur, s.ests); got != s.want {
					t.Fatalf("step %d: Choose(now=%s, cur=%d) = %d, want %d",
						i, s.now, s.cur, got, s.want)
				}
			}
		})
	}
}
