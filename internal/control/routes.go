package control

import "sort"

// Composite path table (§6, "from Tango of 2 to Tango of N"): when more
// than two sites deploy Tango pairwise, end-to-end routes between two
// sites are either the direct pairwise deployment or a composition of
// segments through relay sites, RON-style. The table enumerates both and
// scores them from each segment's live measurement state, so the overlay
// controller can route around a degradation that every direct wide-area
// path shares.
//
// Scores are sums of per-segment smoothed estimates. Each segment's OWD
// lives in its own receiver's clock domain (true delay plus that pair's
// constant clock offset), and the offsets telescope along a composition:
// (B−A) + (C−B) = C−A. Every route between the same two sites — direct
// or relayed, through any relay — therefore carries the same constant
// offset C−A, and comparing composite scores *between routes of the same
// site pair* is exact, the same argument the paper makes for comparing
// paths of one pair. Scores for different site pairs are not comparable,
// but the table never needs to compare them.

// SegmentEstimate is one overlay segment's current score as seen by the
// receiving side's monitor: smoothed one-way delay and delay variation
// in milliseconds. Valid is false until the segment has samples (or when
// its paths have all gone stale), which poisons any route using it.
type SegmentEstimate struct {
	OWDMs    float64
	JitterMs float64
	Valid    bool
}

// CompositeRoute is one end-to-end overlay route: direct (Via empty) or
// relayed through the named intermediate sites in order. OWDMs and
// JitterMs are sums over the segments; Valid reports whether every
// segment currently has a live estimate.
type CompositeRoute struct {
	Src, Dst string
	Via      []string
	OWDMs    float64
	JitterMs float64
	Valid    bool
}

// Direct reports whether the route is the plain pairwise deployment.
func (r CompositeRoute) Direct() bool { return len(r.Via) == 0 }

// Segments returns the route's site sequence including both endpoints.
func (r CompositeRoute) Segments() []string {
	out := make([]string, 0, len(r.Via)+2)
	out = append(out, r.Src)
	out = append(out, r.Via...)
	return append(out, r.Dst)
}

// CompositeTable scores end-to-end routes over a mesh of pairwise Tango
// deployments. Links are the deployed pairs; Source supplies the live
// per-segment estimate (typically from the receiving member's Monitor).
type CompositeTable struct {
	adj map[string]map[string]bool

	// Source returns the current estimate for the segment from one site
	// to an adjacent one. Nil or missing segments score as invalid.
	Source func(from, to string) SegmentEstimate

	// MaxRelays bounds the number of intermediate sites per route.
	// Zero means the default of 1 — the paper's Tango-of-N composition
	// is a single hand-off; longer chains multiply the provisioning cost
	// (one pinned prefix per exposed path per segment) for vanishing
	// returns. Set -1 to allow direct routes only.
	MaxRelays int
}

// NewCompositeTable returns an empty table.
func NewCompositeTable() *CompositeTable {
	return &CompositeTable{adj: make(map[string]map[string]bool)}
}

// AddLink registers a deployed pair between two sites (both directions).
func (t *CompositeTable) AddLink(a, b string) {
	if t.adj[a] == nil {
		t.adj[a] = make(map[string]bool)
	}
	if t.adj[b] == nil {
		t.adj[b] = make(map[string]bool)
	}
	t.adj[a][b] = true
	t.adj[b][a] = true
}

// Sites returns all registered site names, sorted.
func (t *CompositeTable) Sites() []string {
	out := make([]string, 0, len(t.adj))
	for s := range t.adj {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// maxRelays resolves the configured bound.
func (t *CompositeTable) maxRelays() int {
	if t.MaxRelays == 0 {
		return 1
	}
	if t.MaxRelays < 0 {
		return 0
	}
	return t.MaxRelays
}

// Routes enumerates every simple route from src to dst within the relay
// bound and scores each from the Source estimates. The result is sorted
// best-first: valid routes before invalid, then ascending summed OWD,
// then fewer segments, then lexicographic relay names — a deterministic
// total order so equal-scoring routes never flap.
func (t *CompositeTable) Routes(src, dst string) []CompositeRoute {
	if src == dst || t.adj[src] == nil || t.adj[dst] == nil {
		return nil
	}
	var out []CompositeRoute
	visited := map[string]bool{src: true}
	var via []string
	var walk func(at string)
	walk = func(at string) {
		for _, next := range neighborsSorted(t.adj[at]) {
			if next == dst {
				out = append(out, t.score(src, dst, via))
				continue
			}
			if visited[next] || len(via) >= t.maxRelays() {
				continue
			}
			visited[next] = true
			via = append(via, next)
			walk(next)
			via = via[:len(via)-1]
			visited[next] = false
		}
	}
	walk(src)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Valid != b.Valid {
			return a.Valid
		}
		if a.Valid && a.OWDMs != b.OWDMs {
			return a.OWDMs < b.OWDMs
		}
		if len(a.Via) != len(b.Via) {
			return len(a.Via) < len(b.Via)
		}
		for k := range a.Via {
			if a.Via[k] != b.Via[k] {
				return a.Via[k] < b.Via[k]
			}
		}
		return false
	})
	return out
}

// Best returns the lowest-scoring valid route, or ok=false when no route
// has live estimates on every segment.
func (t *CompositeTable) Best(src, dst string) (CompositeRoute, bool) {
	for _, r := range t.Routes(src, dst) {
		if r.Valid {
			return r, true
		}
	}
	return CompositeRoute{}, false
}

func (t *CompositeTable) score(src, dst string, via []string) CompositeRoute {
	r := CompositeRoute{Src: src, Dst: dst, Via: append([]string(nil), via...), Valid: true}
	seq := r.Segments()
	for i := 0; i+1 < len(seq); i++ {
		var est SegmentEstimate
		if t.Source != nil {
			est = t.Source(seq[i], seq[i+1])
		}
		if !est.Valid {
			r.Valid = false
			r.OWDMs, r.JitterMs = 0, 0
			return r
		}
		r.OWDMs += est.OWDMs
		r.JitterMs += est.JitterMs
	}
	return r
}

func neighborsSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
