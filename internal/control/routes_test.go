package control

import (
	"reflect"
	"testing"
)

// triTable is a three-site mesh with every pair deployed; ests supplies
// directed segment scores keyed "from>to".
func triTable(ests map[string]SegmentEstimate) *CompositeTable {
	t := NewCompositeTable()
	t.AddLink("ny", "chi")
	t.AddLink("chi", "la")
	t.AddLink("ny", "la")
	t.Source = func(from, to string) SegmentEstimate {
		return ests[from+">"+to]
	}
	return t
}

func TestCompositeRoutesEnumeration(t *testing.T) {
	tab := triTable(map[string]SegmentEstimate{
		"ny>la":  {OWDMs: 60, JitterMs: 2, Valid: true},
		"ny>chi": {OWDMs: 20, JitterMs: 1, Valid: true},
		"chi>la": {OWDMs: 30, JitterMs: 1.5, Valid: true},
	})
	routes := tab.Routes("ny", "la")
	if len(routes) != 2 {
		t.Fatalf("routes = %+v", routes)
	}
	// Relayed composition sums per-segment scores and wins here.
	best := routes[0]
	if !reflect.DeepEqual(best.Via, []string{"chi"}) || best.OWDMs != 50 || best.JitterMs != 2.5 {
		t.Fatalf("best = %+v", best)
	}
	if best.Direct() {
		t.Fatal("relayed route claims to be direct")
	}
	if got := best.Segments(); !reflect.DeepEqual(got, []string{"ny", "chi", "la"}) {
		t.Fatalf("segments = %v", got)
	}
	if routes[1].Via != nil || routes[1].OWDMs != 60 {
		t.Fatalf("direct route = %+v", routes[1])
	}

	if b, ok := tab.Best("ny", "la"); !ok || b.OWDMs != 50 {
		t.Fatalf("Best = %+v ok=%v", b, ok)
	}
}

func TestCompositeDirectWinsWhenFaster(t *testing.T) {
	tab := triTable(map[string]SegmentEstimate{
		"ny>la":  {OWDMs: 40, Valid: true},
		"ny>chi": {OWDMs: 20, Valid: true},
		"chi>la": {OWDMs: 30, Valid: true},
	})
	b, ok := tab.Best("ny", "la")
	if !ok || !b.Direct() || b.OWDMs != 40 {
		t.Fatalf("Best = %+v ok=%v", b, ok)
	}
}

func TestCompositeInvalidSegmentPoisonsRoute(t *testing.T) {
	// The relay route's second segment has no live estimate: the route
	// is enumerated (the deployment exists) but sorts last and never
	// wins Best.
	tab := triTable(map[string]SegmentEstimate{
		"ny>la":  {OWDMs: 500, Valid: true},
		"ny>chi": {OWDMs: 20, Valid: true},
		"chi>la": {Valid: false},
	})
	routes := tab.Routes("ny", "la")
	if len(routes) != 2 {
		t.Fatalf("routes = %+v", routes)
	}
	if !routes[0].Direct() || routes[1].Valid {
		t.Fatalf("sort with invalid route: %+v", routes)
	}
	b, ok := tab.Best("ny", "la")
	if !ok || !b.Direct() {
		t.Fatalf("Best = %+v ok=%v", b, ok)
	}

	// No valid route at all.
	tab.Source = func(string, string) SegmentEstimate { return SegmentEstimate{} }
	if _, ok := tab.Best("ny", "la"); ok {
		t.Fatal("Best succeeded with no live segments")
	}
}

func TestCompositeDirectionalEstimates(t *testing.T) {
	// Estimates are directed: ny->chi and chi->ny may differ (each is
	// measured by its own receiver in its own clock domain).
	tab := triTable(map[string]SegmentEstimate{
		"ny>chi": {OWDMs: 10, Valid: true},
		"chi>ny": {OWDMs: 99, Valid: true},
		"chi>la": {OWDMs: 10, Valid: true},
		"la>chi": {OWDMs: 99, Valid: true},
		"ny>la":  {OWDMs: 50, Valid: true},
		"la>ny":  {OWDMs: 50, Valid: true},
	})
	fwd, _ := tab.Best("ny", "la")
	rev, _ := tab.Best("la", "ny")
	if fwd.Direct() || fwd.OWDMs != 20 {
		t.Fatalf("forward = %+v", fwd)
	}
	if !rev.Direct() || rev.OWDMs != 50 {
		t.Fatalf("reverse = %+v", rev)
	}
}

func TestCompositeMaxRelays(t *testing.T) {
	// Line topology a-b-c-d: reaching d from a needs two relays.
	tab := NewCompositeTable()
	tab.AddLink("a", "b")
	tab.AddLink("b", "c")
	tab.AddLink("c", "d")
	tab.Source = func(from, to string) SegmentEstimate {
		return SegmentEstimate{OWDMs: 10, Valid: true}
	}
	if got := tab.Routes("a", "d"); len(got) != 0 {
		t.Fatalf("default MaxRelays=1 found %+v", got)
	}
	tab.MaxRelays = 2
	routes := tab.Routes("a", "d")
	if len(routes) != 1 || routes[0].OWDMs != 30 ||
		!reflect.DeepEqual(routes[0].Via, []string{"b", "c"}) {
		t.Fatalf("routes = %+v", routes)
	}
	// Direct-only mode.
	tab.MaxRelays = -1
	if got := tab.Routes("a", "b"); len(got) != 1 || !got[0].Direct() {
		t.Fatalf("direct-only = %+v", got)
	}
	if got := tab.Routes("a", "c"); len(got) != 0 {
		t.Fatalf("direct-only leaked relays: %+v", got)
	}
}

func TestCompositeDeterministicOrder(t *testing.T) {
	// Two relay routes with identical scores: tie broken by relay name,
	// not map iteration order.
	tab := NewCompositeTable()
	tab.AddLink("src", "dst")
	tab.AddLink("src", "zrelay")
	tab.AddLink("zrelay", "dst")
	tab.AddLink("src", "arelay")
	tab.AddLink("arelay", "dst")
	tab.Source = func(from, to string) SegmentEstimate {
		return SegmentEstimate{OWDMs: 10, Valid: true}
	}
	for i := 0; i < 16; i++ {
		routes := tab.Routes("src", "dst")
		if len(routes) != 3 {
			t.Fatalf("routes = %+v", routes)
		}
		if !routes[0].Direct() ||
			!reflect.DeepEqual(routes[1].Via, []string{"arelay"}) ||
			!reflect.DeepEqual(routes[2].Via, []string{"zrelay"}) {
			t.Fatalf("order unstable: %+v", routes)
		}
	}
	if got := tab.Sites(); !reflect.DeepEqual(got, []string{"arelay", "dst", "src", "zrelay"}) {
		t.Fatalf("sites = %v", got)
	}
}

func TestCompositeEdgeCases(t *testing.T) {
	tab := NewCompositeTable()
	tab.AddLink("a", "b")
	if got := tab.Routes("a", "a"); got != nil {
		t.Fatalf("self route = %+v", got)
	}
	if got := tab.Routes("a", "nowhere"); got != nil {
		t.Fatalf("unknown dst = %+v", got)
	}
	// Nil Source scores everything invalid but still enumerates.
	routes := tab.Routes("a", "b")
	if len(routes) != 1 || routes[0].Valid {
		t.Fatalf("nil source = %+v", routes)
	}
}
