package control

import (
	"time"

	"tango/internal/dataplane"
	"tango/internal/sim"
	"tango/internal/te"
)

// TEInstall binds one solver demand to its data-plane install point:
// the class selector of the originating switch and the tunnel path IDs
// aligned index-for-index with the demand's candidate paths.
type TEInstall struct {
	Demand   int
	Class    int
	Selector *dataplane.ClassSelector
	PathIDs  []uint8
}

// TEPolicy is the control-plane face of the TE layer: it runs the
// Link-Guided Local Search solver over the shared placement problem and
// installs the resulting per-class path weights into every bound class
// selector — once (Install) or on a cadence (Start), re-solving each
// tick so refreshed demand rates or capacities take effect.
//
// Unlike the per-pair Policy implementations, TEPolicy is global: one
// instance steers a whole mesh, and the per-pair controllers' decision
// loops must be left disabled (DecideEvery 0) so they do not overwrite
// the installed selectors. Everything is deterministic: the solver is a
// pure function of (problem, seed), and installs mutate only selector
// weight tables, in demand index order.
type TEPolicy struct {
	eng      *sim.Engine
	solver   *te.Solver
	installs []TEInstall

	// Refresh, when non-nil, runs before every solve — the hook for
	// updating demand rates or link capacities in the problem the
	// solver was built over.
	Refresh func(now sim.Time)
	// OnSolve, when non-nil, observes each solve's achieved maximum
	// utilization (e.g. to feed a gauge).
	OnSolve func(now sim.Time, maxUtil float64)

	tick   *sim.Ticker
	counts []int

	Stats struct {
		Solves   uint64
		Installs uint64
	}
}

// NewTEPolicy builds a policy that drives solver and installs its
// weights at the given bind points.
func NewTEPolicy(eng *sim.Engine, solver *te.Solver, installs []TEInstall) *TEPolicy {
	return &TEPolicy{eng: eng, solver: solver, installs: installs}
}

// Install runs one solve-and-install pass and returns the achieved
// maximum link utilization.
func (p *TEPolicy) Install() float64 {
	now := p.eng.Now()
	if p.Refresh != nil {
		p.Refresh(now)
	}
	maxUtil := p.solver.Solve()
	p.Stats.Solves++
	for _, ins := range p.installs {
		p.counts = p.solver.Counts(ins.Demand, p.counts)
		ins.Selector.SetWeights(ins.Class, ins.PathIDs, p.counts)
		p.Stats.Installs++
	}
	if p.OnSolve != nil {
		p.OnSolve(now, maxUtil)
	}
	return maxUtil
}

// Start begins the re-solve cadence. On a sharded network the installs
// mutate selectors owned by other partitions, so Start is only legal on
// a classic (single-engine) network or while a sharded one is still in
// coupled mode; E15-style sharded runs call Install before entering
// parallel epochs instead.
func (p *TEPolicy) Start(every time.Duration) {
	if p.tick != nil {
		p.tick.Stop()
	}
	p.tick = sim.NewTicker(p.eng, every, func(sim.Time) { p.Install() })
}

// Stop halts the cadence.
func (p *TEPolicy) Stop() {
	if p.tick != nil {
		p.tick.Stop()
	}
}
