package control

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/dataplane"
	"tango/internal/packet"
	"tango/internal/simnet"
	"tango/internal/te"
)

// teFixture: one switch with two tunnels, a class selector, and a
// one-demand problem whose two single-link paths map to the tunnels.
type teFixture struct {
	w      *simnet.Network
	sw     *dataplane.Switch
	cs     *dataplane.ClassSelector
	prob   *te.Problem
	solver *te.Solver
	pol    *TEPolicy
}

func newTEFixture(t *testing.T) *teFixture {
	t.Helper()
	w := simnet.New(1)
	n := w.AddNode("sw", 0)
	sw := dataplane.NewSwitch(n)
	sw.AddTunnel(&dataplane.Tunnel{PathID: 1, LocalAddr: mustAddr("2001:db8::1"), RemoteAddr: mustAddr("2001:db8::2")})
	sw.AddTunnel(&dataplane.Tunnel{PathID: 2, LocalAddr: mustAddr("2001:db8::3"), RemoteAddr: mustAddr("2001:db8::4")})
	cs := dataplane.NewClassSelector(sw, 3)
	sw.SetSelector(cs.Select)
	prob := &te.Problem{
		Links: []te.Link{{Name: "t1", CapacityBps: 100}, {Name: "t2", CapacityBps: 100}},
		Demands: []te.Demand{
			{Name: "pair/class0", RateBps: 100, Paths: [][]int{{0}, {1}}},
		},
	}
	solver := te.NewSolver(prob, 1)
	pol := NewTEPolicy(w.Eng, solver, []TEInstall{
		{Demand: 0, Class: 0, Selector: cs, PathIDs: []uint8{1, 2}},
	})
	return &teFixture{w: w, sw: sw, cs: cs, prob: prob, solver: solver, pol: pol}
}

// classedInner builds a class-stamped inner packet with a distinct flow.
func classedInner(t *testing.T, class uint8, sport uint16) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("x"))
	udp := &packet.UDP{SrcPort: sport, DstPort: 7002}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, TrafficClass: class,
		Src: netip.MustParseAddr("2001:db8:aa::1"), Dst: netip.MustParseAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestTEPolicyInstallSpreadsDemand(t *testing.T) {
	f := newTEFixture(t)
	util := f.pol.Install()
	if util != 0.5 {
		t.Fatalf("Install() max util = %v, want 0.5 (even split over equal links)", util)
	}
	if f.pol.Stats.Solves != 1 || f.pol.Stats.Installs != 1 {
		t.Fatalf("stats: %+v", f.pol.Stats)
	}
	// The installed selector must actually spread class-0 flows over
	// both tunnels.
	seen := map[uint8]int{}
	for i := 0; i < 200; i++ {
		seen[f.cs.Select(classedInner(t, 0, uint16(i))).PathID]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("class 0 not spread: %v", seen)
	}
	// Classes without a demand keep the fallback (first tunnel).
	if got := f.cs.Select(classedInner(t, 1, 5)).PathID; got != 1 {
		t.Fatalf("uninstalled class on path %d, want fallback 1", got)
	}
}

// TestTEPolicyCadenceReactsToRefresh pins the re-solve loop: a Refresh
// hook that rewrites link capacities in place must shift the installed
// weights at the next tick.
func TestTEPolicyCadenceReactsToRefresh(t *testing.T) {
	f := newTEFixture(t)
	var solves []float64
	f.pol.OnSolve = func(_ time.Duration, maxUtil float64) { solves = append(solves, maxUtil) }
	f.pol.Refresh = func(now time.Duration) {
		if now >= 2*time.Second {
			// Link t1 degrades to a quarter of its capacity.
			f.prob.Links[0].CapacityBps = 25
		}
	}
	f.pol.Start(time.Second)
	f.w.Run(3 * time.Second)
	f.pol.Stop()

	if len(solves) != 3 {
		t.Fatalf("got %d solves, want 3", len(solves))
	}
	if solves[0] != 0.5 {
		t.Fatalf("first solve max util %v, want 0.5", solves[0])
	}
	// After the degradation: 1 quantum (12.5 bps) on the 25 bps link
	// (util 0.5), 7 on the healthy one (util 0.875).
	if solves[2] != 0.875 {
		t.Fatalf("post-degradation max util %v, want 0.875", solves[2])
	}
	counts := f.solver.Counts(0, nil)
	if counts[0] != 1 || counts[1] != 7 {
		t.Fatalf("post-degradation counts %v, want [1 7]", counts)
	}
	if f.pol.Stats.Solves != 3 {
		t.Fatalf("solves = %d, want 3", f.pol.Stats.Solves)
	}
}
