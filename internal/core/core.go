// Package core assembles a complete Tango deployment from the substrates:
// it runs the §4.1 discovery loop in both directions, originates one
// pinned prefix per exposed path (prefixes-as-routes), provisions the
// tunnels, and wires the measurement loop — receiver-side monitor,
// piggybacked reports, sender-side controller — for each direction.
//
// The result is the system of Figure 2: two border switches that between
// them see every exposed wide-area path, measure each path's one-way
// delay continuously, and steer traffic per packet.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
	"tango/internal/topo"
	"tango/internal/workload"
)

// SiteSpec describes one cooperating edge network.
type SiteSpec struct {
	// Name labels the site ("ny", "la").
	Name string
	// Edge is the site's server: BGP speaker plus forwarding node.
	Edge *topo.AS
	// POPAS is the provider-facing AS in front of the site (the Vultr
	// POP), used by discovery to identify the delivering provider.
	POPAS bgp.ASN
	// Block is institutional prefix space subnetted into one /48 per
	// exposed path (the paper announces four /48s per server).
	Block addr.Prefix
	// HostPrefix addresses the site's end hosts; it is announced over
	// plain BGP for non-Tango reachability.
	HostPrefix addr.Prefix
	// ProbePrefix is used during discovery and withdrawn afterwards.
	ProbePrefix addr.Prefix
}

// PairConfig configures Establish.
type PairConfig struct {
	A, B SiteSpec
	// RoundWait is the discovery per-round convergence wait (default
	// 2 min virtual).
	RoundWait time.Duration
	// MaxRounds bounds discovery rounds per direction, and with them the
	// number of paths a pair can expose (control.Discoverer defaults
	// to 8; deployments sharing more providers must raise it).
	MaxRounds int
	// SettleWait is the wait after originating pinned prefixes
	// (default 3 min virtual).
	SettleWait time.Duration
	// ProbeInterval enables per-path probing at this interval when
	// positive (the paper uses 10 ms).
	ProbeInterval time.Duration
	// ReportInterval paces piggybacked measurement reports (default
	// 100 ms when probing is enabled).
	ReportInterval time.Duration
	// DecideEvery starts each site's controller at this cadence when
	// positive.
	DecideEvery time.Duration
	// PolicyA/PolicyB are the path-selection policies (default MinOWD
	// with a 0.5 ms absolute margin and 2 s dwell).
	PolicyA, PolicyB control.Policy
	// NameFor labels provider ASNs (default topo's provider names).
	NameFor func(bgp.ASN) string
	// RecordBucket, when positive, records per-path OWD series at this
	// aggregation (for figures).
	RecordBucket time.Duration
	// AuthKey, when non-empty, enables authenticated telemetry on both
	// switches: Tango datagrams are signed and unverified ones dropped
	// (paper §6, trustworthy telemetry).
	AuthKey []byte
}

// Site is one side of an established pair.
type Site struct {
	Spec       SiteSpec
	Switch     *dataplane.Switch
	Monitor    *control.Monitor    // measures incoming (peer->this) paths
	Controller *control.Controller // steers outgoing (this->peer) traffic
	Reporter   *control.Reporter
	Prober     *workload.Prober
	// OutPaths are the discovered wide-area paths for traffic leaving
	// this site, indexed by tunnel PathID-1.
	OutPaths []control.DiscoveredPath

	// SwitchAddr is the outer source address for this site's tunnels.
	SwitchAddr netip.Addr
	// Endpoints are this site's announced tunnel endpoints (incoming).
	Endpoints []netip.Addr

	peer  *Site
	sinks []func([]byte) bool
}

// Send passes a host packet to the site's border switch (tunnelled when
// its destination belongs to the peer site).
func (s *Site) Send(inner []byte) { s.Switch.HandleHostTraffic(inner) }

// AddSink registers a consumer for decapsulated inner packets arriving at
// this site; the first sink returning true claims the packet.
func (s *Site) AddSink(fn func([]byte) bool) { s.sinks = append(s.sinks, fn) }

// PathName returns the provider label for one of this site's outgoing
// path IDs.
func (s *Site) PathName(id uint8) string {
	i := int(id) - 1
	if i < 0 || i >= len(s.OutPaths) {
		return fmt.Sprintf("path-%d", id)
	}
	return s.OutPaths[i].ProviderName
}

// PinnedPrefix returns the /48 this site originated for one of its
// *incoming* paths (the peer's outgoing path id). Fault injectors
// withdraw it to simulate the path's tunnel endpoint vanishing from the
// global routing table.
func (s *Site) PinnedPrefix(id uint8) (addr.Prefix, error) {
	i := int(id) - 1
	if i < 0 || i >= len(s.Endpoints) {
		return addr.Prefix{}, fmt.Errorf("core: site %s has no incoming path %d", s.Spec.Name, id)
	}
	return s.Spec.Block.Subnet(48, i)
}

// Peer returns the other site.
func (s *Site) Peer() *Site { return s.peer }

// Eng returns the engine the site's events run on: its partition's
// engine on a sharded network, the network engine otherwise. Workloads
// that emit at this site (generators, probers) must tick here.
func (s *Site) Eng() *sim.Engine { return s.Spec.Edge.Speaker.Engine() }

// Instrument registers the site's switch, monitor, and controller
// metrics in reg under the site's name and journals its path switches
// to j.
func (s *Site) Instrument(reg *obs.Registry, j *obs.Journal) {
	name := s.Spec.Name
	s.Switch.Instrument(reg, name)
	s.Monitor.Instrument(reg, name)
	s.Controller.Instrument(reg, shardView(j, s), name)
}

// shardView returns the journal view a site's controller may write: the
// site partition's staging view on a sharded network (merged into j at
// epoch barriers, in canonical order), or j itself on a classic one.
func shardView(j *obs.Journal, s *Site) *obs.Journal {
	eng := s.Spec.Edge.Speaker.Engine()
	if eng.Coord() != nil {
		return j.Shard(eng.Part())
	}
	return j
}

// Pair is a Tango deployment between two sites.
type Pair struct {
	A, B *Site

	cfg   PairConfig
	eng   *sim.Engine     // site A's engine; establishment sequencing runs here
	net   *simnet.Network // drives time (dispatches to the coordinator when sharded)
	ready bool
	// OnReady fires once both directions are provisioned.
	OnReady func()
}

// Ready reports whether establishment completed.
func (p *Pair) Ready() bool { return p.ready }

// Instrument registers both sites' metrics in reg (labelled by site
// name) and journals their path switches to j. Call after Establish so
// every tunnel and path is known; lazily created paths still register
// on first report.
func (p *Pair) Instrument(reg *obs.Registry, j *obs.Journal) {
	p.A.Instrument(reg, j)
	p.B.Instrument(reg, j)
}

// NewPair prepares (but does not start) a deployment. Both sites must
// live on the same engine, or on partition engines of one coordinator
// (establishment then runs in coupled mode, where cross-site calls are
// exact).
func NewPair(cfg PairConfig) *Pair {
	ea, eb := cfg.A.Edge.Speaker.Engine(), cfg.B.Edge.Speaker.Engine()
	if ea != eb && (ea.Coord() == nil || ea.Coord() != eb.Coord()) {
		panic("core: sites on different engines")
	}
	if cfg.RoundWait == 0 {
		cfg.RoundWait = 2 * time.Minute
	}
	if cfg.SettleWait == 0 {
		cfg.SettleWait = 3 * time.Minute
	}
	if cfg.ProbeInterval > 0 && cfg.ReportInterval == 0 {
		cfg.ReportInterval = 100 * time.Millisecond
	}
	if cfg.PolicyA == nil {
		cfg.PolicyA = &control.MinOWD{HysteresisMs: 0.5, MinDwell: 2 * time.Second}
	}
	if cfg.PolicyB == nil {
		cfg.PolicyB = &control.MinOWD{HysteresisMs: 0.5, MinDwell: 2 * time.Second}
	}
	if cfg.NameFor == nil {
		cfg.NameFor = func(a bgp.ASN) string {
			return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr})
		}
	}
	p := &Pair{cfg: cfg, eng: ea, net: cfg.A.Edge.Node.Network()}
	p.A = newSite(cfg.A)
	p.B = newSite(cfg.B)
	p.A.peer, p.B.peer = p.B, p.A
	return p
}

func newSite(spec SiteSpec) *Site {
	s := &Site{Spec: spec}
	s.Switch = dataplane.NewSwitch(spec.Edge.Node)
	// The switch's outer source address lives near the top of the host
	// prefix.
	sa, err := spec.HostPrefix.Host(0xfffe)
	if err != nil {
		panic(err)
	}
	s.SwitchAddr = sa
	spec.Edge.Node.AddAddr(sa)
	s.Monitor = control.NewMonitor()
	s.Switch.DeliverLocal = func(inner []byte) {
		for _, sink := range s.sinks {
			if sink(inner) {
				return
			}
		}
	}
	return s
}

// Establish schedules the full establishment sequence on the engine and
// returns immediately; drive the engine (e.g. Pair.RunUntilReady) to make
// progress. Sequence: concurrent bidirectional discovery, pinned prefix
// origination, settle, tunnel provisioning and measurement wiring.
func (p *Pair) Establish() {
	var pathsAtoB, pathsBtoA []control.DiscoveredPath
	doneCount := 0
	finish := func() {
		doneCount++
		if doneCount != 2 {
			return
		}
		p.A.OutPaths = pathsAtoB
		p.B.OutPaths = pathsBtoA
		// Each site originates one pinned prefix per path toward it.
		originatePinned(p.B, pathsAtoB) // A->B paths: B announces endpoints
		originatePinned(p.A, pathsBtoA)
		p.eng.Schedule(p.cfg.SettleWait, func() {
			provision(p.A, p.B, pathsAtoB)
			provision(p.B, p.A, pathsBtoA)
			p.wireMeasurement()
			p.ready = true
			if p.OnReady != nil {
				p.OnReady()
			}
		})
	}

	// Discovery for A->B traffic: B announces, A observes.
	dAB := &control.Discoverer{
		Announcer: p.B.Spec.Edge.Speaker,
		Observer:  p.A.Spec.Edge.Speaker,
		Probe:     p.B.Spec.ProbePrefix,
		POPAS:     p.B.Spec.POPAS,
		NameFor:   p.cfg.NameFor,
		RoundWait: p.cfg.RoundWait,
		MaxRounds: p.cfg.MaxRounds,
	}
	dBA := &control.Discoverer{
		Announcer: p.A.Spec.Edge.Speaker,
		Observer:  p.B.Spec.Edge.Speaker,
		Probe:     p.A.Spec.ProbePrefix,
		POPAS:     p.A.Spec.POPAS,
		NameFor:   p.cfg.NameFor,
		RoundWait: p.cfg.RoundWait,
		MaxRounds: p.cfg.MaxRounds,
	}
	dAB.Run(func(found []control.DiscoveredPath) { pathsAtoB = found; finish() })
	dBA.Run(func(found []control.DiscoveredPath) { pathsBtoA = found; finish() })
}

// originatePinned has dst announce one /48 per incoming path, pinned to
// that path's provider by suppressing all others.
func originatePinned(dst *Site, paths []control.DiscoveredPath) {
	for i := range paths {
		pfx, err := dst.Spec.Block.Subnet(48, i)
		if err != nil {
			panic(err)
		}
		dst.Spec.Edge.Speaker.Originate(pfx, control.PinCommunities(paths, i)...)
		ep, err := pfx.Host(1)
		if err != nil {
			panic(err)
		}
		dst.Spec.Edge.Node.AddAddr(ep)
		dst.Endpoints = append(dst.Endpoints, ep)
	}
}

// provision creates src's outgoing tunnels toward dst's endpoints.
func provision(src, dst *Site, paths []control.DiscoveredPath) {
	for i, dp := range paths {
		src.Switch.AddTunnel(&dataplane.Tunnel{
			PathID:     uint8(i + 1),
			Name:       dp.ProviderName,
			LocalAddr:  src.SwitchAddr,
			RemoteAddr: dst.Endpoints[i],
			SrcPort:    uint16(41000 + i),
		})
	}
	src.Switch.AddPeerPrefix(dst.Spec.HostPrefix)
}

// measureConfig is the per-direction slice of PairConfig consumed by
// wireSiteMeasurement; Mesh builds one per member from its own config.
type measureConfig struct {
	Policy         control.Policy
	ReportInterval time.Duration
	DecideEvery    time.Duration
	RecordBucket   time.Duration
	AuthKey        []byte
}

// wireSiteMeasurement attaches the measurement loop to one site: the
// receiver-side monitor (named after the peer's outgoing paths), the
// sender-side controller fed by piggybacked reports, and the reporter
// that generates them.
func wireSiteMeasurement(eng *sim.Engine, s *Site, mc measureConfig) {
	if len(mc.AuthKey) > 0 {
		s.Switch.SetAuthKey(mc.AuthKey)
	}
	peer := s.peer
	s.Monitor.RecordBucket = mc.RecordBucket
	s.Monitor.Attach(s.Switch, func(id uint8) string { return peer.PathName(id) })

	s.Controller = control.NewController(eng, s.Switch, mc.Policy)
	s.Controller.AttachFeedback(s.Switch)
	if mc.DecideEvery > 0 {
		s.Controller.Start(mc.DecideEvery)
	}
	if mc.ReportInterval > 0 {
		s.Reporter = control.NewReporter(eng, s.Monitor, s.Switch, mc.ReportInterval)
		// A path that stops delivering packets must stop being
		// reported, so the sender's estimate goes stale and its
		// policy evacuates.
		maxAge := 2 * time.Second
		if v := 5 * mc.ReportInterval; v > maxAge {
			maxAge = v
		}
		s.Reporter.MaxAge = maxAge
	}
}

func (p *Pair) wireMeasurement() {
	cfgPolicies := map[*Site]control.Policy{p.A: p.cfg.PolicyA, p.B: p.cfg.PolicyB}
	for _, s := range []*Site{p.A, p.B} {
		wireSiteMeasurement(s.Spec.Edge.Speaker.Engine(), s, measureConfig{
			Policy:         cfgPolicies[s],
			ReportInterval: p.cfg.ReportInterval,
			DecideEvery:    p.cfg.DecideEvery,
			RecordBucket:   p.cfg.RecordBucket,
			AuthKey:        p.cfg.AuthKey,
		})
	}
	if p.cfg.ProbeInterval > 0 {
		aHost, _ := p.A.Spec.HostPrefix.Host(0xfffd)
		bHost, _ := p.B.Spec.HostPrefix.Host(0xfffd)
		p.A.Prober = workload.NewProber(p.A.Spec.Edge.Speaker.Engine(), p.A.Switch, aHost, bHost, p.cfg.ProbeInterval)
		p.B.Prober = workload.NewProber(p.B.Spec.Edge.Speaker.Engine(), p.B.Switch, bHost, aHost, p.cfg.ProbeInterval)
	}
}

// RunUntilReady drives the simulation until establishment completes or
// the deadline passes, reporting success. On a sharded network time is
// driven through the coordinator (never an individual partition engine).
func (p *Pair) RunUntilReady(maxVirtual time.Duration) bool {
	deadline := p.net.Now() + maxVirtual
	for !p.ready && p.net.Now() < deadline {
		step := 10 * time.Second
		if remaining := deadline - p.net.Now(); remaining < step {
			step = remaining
		}
		p.net.Run(p.net.Now() + step)
	}
	return p.ready
}

// VultrPair builds a Pair over the paper's Vultr scenario with sensible
// defaults: NY is site A, LA is site B.
func VultrPair(s *topo.Scenario, cfg PairConfig) *Pair {
	cfg.A = SiteSpec{
		Name:        "ny",
		Edge:        s.EdgeNY,
		POPAS:       bgp.ASVultr,
		Block:       s.BlockNY,
		HostPrefix:  s.HostNY,
		ProbePrefix: s.Probe["ny:la"],
	}
	cfg.B = SiteSpec{
		Name:        "la",
		Edge:        s.EdgeLA,
		POPAS:       bgp.ASVultr,
		Block:       s.BlockLA,
		HostPrefix:  s.HostLA,
		ProbePrefix: s.Probe["la:ny"],
	}
	return NewPair(cfg)
}
