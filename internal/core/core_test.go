package core

import (
	"testing"
	"time"

	"tango/internal/control"
	"tango/internal/topo"
)

// establish builds the Vultr scenario and a ready Pair with probing on.
func establish(t *testing.T, seed int64, cfg PairConfig) (*topo.Scenario, *Pair) {
	t.Helper()
	s, err := topo.NewVultrScenario(topo.ScenarioConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Minute) // base convergence
	p := VultrPair(s, cfg)
	p.Establish()
	if !p.RunUntilReady(time.Hour) {
		t.Fatal("pair did not establish within an hour of virtual time")
	}
	return s, p
}

func TestPairEstablishesFourPathsEachWay(t *testing.T) {
	_, p := establish(t, 21, PairConfig{ProbeInterval: 10 * time.Millisecond})

	wantAtoB := []string{"NTT", "Telia", "GTT", "Cogent"} // NY->LA? A=NY sends to LA...
	_ = wantAtoB
	// A=NY: its outgoing paths go toward LA, delivered into vultr-la by
	// NTT/Telia/GTT/Level3. B=LA: delivered into vultr-ny by
	// NTT/Telia/GTT/Cogent.
	gotA := make([]string, 0, 4)
	for _, dp := range p.A.OutPaths {
		gotA = append(gotA, dp.ProviderName)
	}
	gotB := make([]string, 0, 4)
	for _, dp := range p.B.OutPaths {
		gotB = append(gotB, dp.ProviderName)
	}
	wantNYtoLA := []string{"NTT", "Telia", "GTT", "Level3"}
	wantLAtoNY := []string{"NTT", "Telia", "GTT", "Cogent"}
	if len(gotA) != 4 || len(gotB) != 4 {
		t.Fatalf("paths: A=%v B=%v", gotA, gotB)
	}
	for i := range wantNYtoLA {
		if gotA[i] != wantNYtoLA[i] {
			t.Fatalf("NY->LA paths = %v, want %v", gotA, wantNYtoLA)
		}
		if gotB[i] != wantLAtoNY[i] {
			t.Fatalf("LA->NY paths = %v, want %v", gotB, wantLAtoNY)
		}
	}
	if len(p.A.Switch.Tunnels()) != 4 || len(p.B.Switch.Tunnels()) != 4 {
		t.Fatal("tunnel count wrong")
	}
	if p.A.PathName(1) != "NTT" || p.A.PathName(3) != "GTT" || p.A.PathName(99) == "" {
		t.Fatal("PathName wrong")
	}
}

func TestPairMeasuresCalibratedOWDs(t *testing.T) {
	_, p := establish(t, 22, PairConfig{ProbeInterval: 10 * time.Millisecond})
	// Let probes flow for two minutes of virtual time.
	eng := p.A.Spec.Edge.Speaker.Engine()
	eng.Run(eng.Now() + 2*time.Minute)

	// LA's monitor sees NY->LA paths. OWD raw values carry the clock
	// offset (LA clock - NY clock = -900ms - 1700ms = -2.6s), so
	// compare *differences* against the calibration.
	mon := p.B.Monitor // B=LA measures incoming NY->LA
	var ntt, gtt, telia *control.PathMonitor
	for _, pm := range mon.Paths() {
		switch pm.Name {
		case "NTT":
			ntt = pm
		case "GTT":
			gtt = pm
		case "Telia":
			telia = pm
		}
	}
	if ntt == nil || gtt == nil || telia == nil {
		t.Fatalf("monitored paths incomplete: %+v", mon.Paths())
	}
	if ntt.OWD.N() < 1000 {
		t.Fatalf("too few samples: %d", ntt.OWD.N())
	}
	// Raw OWDs are offset by the (constant) clock skew: they can even
	// be negative. Differences must match the profiles.
	gapNTT := ntt.OWD.Mean() - gtt.OWD.Mean() // ms
	if gapNTT < 7.5 || gapNTT > 9.5 {
		t.Fatalf("NTT-GTT gap = %.3f ms, want ~8.5", gapNTT)
	}
	gapTelia := telia.OWD.Mean() - gtt.OWD.Mean()
	if gapTelia < 2.3 || gapTelia > 4.0 {
		t.Fatalf("Telia-GTT gap = %.3f ms, want ~3.2", gapTelia)
	}
	// The clock offset pushes raw OWD far from the true ~28-37ms.
	if ntt.OWD.Mean() > 0 {
		t.Fatalf("raw NTT OWD = %.3f ms; expected negative under LA-NY clock skew", ntt.OWD.Mean())
	}
	// Jitter separation (E3): GTT nearly constant, Telia noisy.
	jG, jT := gtt.Jitter.MeanStd(), telia.Jitter.MeanStd()
	if jG > 0.05 {
		t.Fatalf("GTT rolling jitter = %.4f ms, want ~0.01", jG)
	}
	if jT < 0.15 {
		t.Fatalf("Telia rolling jitter = %.4f ms, want ~0.33", jT)
	}
}

func TestPairControllerMovesToGTT(t *testing.T) {
	_, p := establish(t, 23, PairConfig{
		ProbeInterval: 10 * time.Millisecond,
		DecideEvery:   time.Second,
	})
	eng := p.A.Spec.Edge.Speaker.Engine()
	// Controllers start on path 1 (NTT, the BGP default); with
	// feedback flowing they must both settle on GTT.
	eng.Run(eng.Now() + 5*time.Minute)

	aName := p.A.PathName(p.A.Controller.Current())
	bName := p.B.PathName(p.B.Controller.Current())
	if aName != "GTT" {
		t.Fatalf("NY controller on %s, want GTT", aName)
	}
	if bName != "GTT" {
		t.Fatalf("LA controller on %s, want GTT", bName)
	}
	if p.A.Controller.Stats.Reports == 0 {
		t.Fatal("no feedback reports arrived")
	}
}

func TestPairHostTrafficTunnelled(t *testing.T) {
	s, p := establish(t, 24, PairConfig{ProbeInterval: 10 * time.Millisecond})
	eng := s.B.Eng()

	delivered := 0
	p.B.AddSink(func(inner []byte) bool {
		// Claim only our test flow (inner UDP dst port 9998); probe
		// packets keep flowing to later sinks.
		if len(inner) >= 44 && inner[42] == 0x27 && inner[43] == 0x0e {
			delivered++
			return true
		}
		return false
	})

	// An inner host packet from NY's host space to LA's host space.
	src, _ := p.A.Spec.HostPrefix.Host(5)
	dst, _ := p.B.Spec.HostPrefix.Host(5)
	pr := probePacket(t, src, dst)
	p.A.Send(pr)
	eng.Run(eng.Now() + time.Second)
	if delivered != 1 {
		t.Fatalf("host packet not tunnelled/delivered: %d", delivered)
	}
	if p.A.Switch.Stats.Encapped == 0 {
		t.Fatal("host packet bypassed the tunnel")
	}
	if p.A.Peer() != p.B || p.B.Peer() != p.A {
		t.Fatal("peer links wrong")
	}
}

func TestPairReadyIdempotentAndAccessors(t *testing.T) {
	_, p := establish(t, 25, PairConfig{})
	if !p.Ready() {
		t.Fatal("Ready false after establish")
	}
	if len(p.A.Endpoints) != 4 || len(p.B.Endpoints) != 4 {
		t.Fatalf("endpoints: %d/%d", len(p.A.Endpoints), len(p.B.Endpoints))
	}
	// Without probing configured there is no prober or reporter.
	if p.A.Prober != nil || p.A.Reporter != nil {
		t.Fatal("probe machinery created without ProbeInterval")
	}
}
