package core

import (
	"net/netip"
	"testing"

	"tango/internal/packet"
)

// probePacket builds a minimal inner IPv6/UDP packet for tests.
func probePacket(t *testing.T, src, dst netip.Addr) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("host-data"))
	udp := &packet.UDP{SrcPort: 9999, DstPort: 9998}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
