package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/simnet"
	"tango/internal/topo"
)

// Mesh promotes the two-site Pair to N sites (§6, "from Tango of 2 to
// Tango of N"): Tango is deployed pairwise between adjacent sites — each
// deployment owning its own discovery, pinned prefixes and measurement
// loop — and a relay layer composes the segments into end-to-end overlay
// routes. The composite table scores every route (direct or relayed)
// from the live per-segment estimates; the data plane forwards relayed
// packets by re-encapsulating them onto the next segment at each
// intermediate site.
//
// Addressing follows prefixes-as-routes one level up: each site runs one
// member (edge server) per deployed pair, and a member's host prefix
// uniquely identifies the final overlay segment. The origin therefore
// selects a route by choosing which member's prefix to target — no
// per-packet route header beyond the relay TTL.

// MeshLink declares one deployed pair of the mesh: the two site names
// and the per-side specs (edge server, prefixes, POP AS).
type MeshLink struct {
	SiteA, SiteB string
	A, B         SiteSpec
}

// MeshConfig configures an N-site deployment. The per-pair timing knobs
// mirror PairConfig and apply to every deployed pair.
type MeshConfig struct {
	Links []MeshLink
	// RoundWait/SettleWait/ProbeInterval/ReportInterval/DecideEvery are
	// passed through to each pair (see PairConfig).
	RoundWait      time.Duration
	MaxRounds      int
	SettleWait     time.Duration
	ProbeInterval  time.Duration
	ReportInterval time.Duration
	DecideEvery    time.Duration
	// NewPolicy builds the path-selection policy steering traffic from
	// site toward peer. Policies hold state (dwell timers), so the mesh
	// needs a fresh instance per direction; nil uses the Pair default.
	NewPolicy func(site, peer string) control.Policy
	// NameFor labels provider ASNs (default topo's Vultr names).
	NameFor func(bgp.ASN) string
	// RecordBucket enables per-path OWD series recording.
	RecordBucket time.Duration
	// AuthKey enables authenticated telemetry on every switch.
	AuthKey []byte
	// MaxRelays bounds intermediate sites per overlay route (0 = the
	// default of 1; -1 = direct only). See control.CompositeTable.
	MaxRelays int
	// StaleAfter discards a segment's estimate when its freshest path
	// sample is older than this (default 10 s virtual); a silent segment
	// then poisons the routes through it.
	StaleAfter time.Duration
}

// Mesh is an established N-site deployment.
type Mesh struct {
	// Table scores end-to-end routes from the live segment estimates.
	Table *control.CompositeTable

	cfg     MeshConfig
	eng     *sim.Engine     // first link's A-side engine (time reads)
	net     *simnet.Network // drives time (dispatches to the coordinator when sharded)
	pairs   []*Pair
	members map[string]map[string]*Site // members[site][peer]
	relays  map[string]*dataplane.Relay // one per site, attached to all members
	sendBuf *packet.SerializeBuffer     // reused by SendAlong; Site.Send borrows
	ready   bool
	// OnReady fires once every pair is provisioned and relays are wired.
	OnReady func()
}

// NewMesh prepares (but does not start) an N-site deployment.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("core: mesh needs at least one link")
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 10 * time.Second
	}
	m := &Mesh{
		Table:   control.NewCompositeTable(),
		cfg:     cfg,
		members: map[string]map[string]*Site{},
		relays:  map[string]*dataplane.Relay{},
		sendBuf: packet.NewSerializeBuffer(),
	}
	m.Table.MaxRelays = cfg.MaxRelays
	m.Table.Source = m.segmentEstimate

	eng := cfg.Links[0].A.Edge.Speaker.Engine()
	for _, l := range cfg.Links {
		if l.SiteA == "" || l.SiteB == "" || l.SiteA == l.SiteB {
			return nil, fmt.Errorf("core: bad link %q:%q", l.SiteA, l.SiteB)
		}
		if m.members[l.SiteA][l.SiteB] != nil || m.members[l.SiteB][l.SiteA] != nil {
			return nil, fmt.Errorf("core: duplicate link %s:%s", l.SiteA, l.SiteB)
		}
		ea, eb := l.A.Edge.Speaker.Engine(), l.B.Edge.Speaker.Engine()
		sameTimeline := func(e *sim.Engine) bool {
			return e == eng || (e.Coord() != nil && e.Coord() == eng.Coord())
		}
		if !sameTimeline(ea) || !sameTimeline(eb) {
			return nil, fmt.Errorf("core: link %s:%s on a different engine", l.SiteA, l.SiteB)
		}
		pc := PairConfig{
			A: l.A, B: l.B,
			RoundWait:      cfg.RoundWait,
			MaxRounds:      cfg.MaxRounds,
			SettleWait:     cfg.SettleWait,
			ProbeInterval:  cfg.ProbeInterval,
			ReportInterval: cfg.ReportInterval,
			DecideEvery:    cfg.DecideEvery,
			NameFor:        cfg.NameFor,
			RecordBucket:   cfg.RecordBucket,
			AuthKey:        cfg.AuthKey,
		}
		if cfg.NewPolicy != nil {
			pc.PolicyA = cfg.NewPolicy(l.SiteA, l.SiteB)
			pc.PolicyB = cfg.NewPolicy(l.SiteB, l.SiteA)
		}
		p := NewPair(pc)
		m.pairs = append(m.pairs, p)
		m.addMember(l.SiteA, l.SiteB, p.A)
		m.addMember(l.SiteB, l.SiteA, p.B)
		m.Table.AddLink(l.SiteA, l.SiteB)
	}
	m.eng = eng
	m.net = cfg.Links[0].A.Edge.Node.Network()

	// One relay per site, attached to every member switch: a relayed
	// packet arrives at whichever member terminates the previous segment
	// and leaves through the member facing the next one.
	for site, peers := range m.members {
		r := dataplane.NewRelay()
		m.relays[site] = r
		for _, s := range peers {
			r.Attach(s.Switch)
		}
	}
	return m, nil
}

func (m *Mesh) addMember(site, peer string, s *Site) {
	if m.members[site] == nil {
		m.members[site] = map[string]*Site{}
	}
	m.members[site][peer] = s
}

// Ready reports whether every pair finished establishing.
func (m *Mesh) Ready() bool { return m.ready }

// Instrument registers every member edge server's metrics in reg and
// journals path switches to j. A site deployed on several links has one
// member switch per adjacent peer, so members are labelled "site->peer"
// (plain site names would alias distinct switches onto one instrument).
func (m *Mesh) Instrument(reg *obs.Registry, j *obs.Journal) {
	for _, site := range m.Sites() {
		peers := make([]string, 0, len(m.members[site]))
		for peer := range m.members[site] {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		for _, peer := range peers {
			s := m.members[site][peer]
			name := site + "->" + peer
			s.Switch.Instrument(reg, name)
			s.Monitor.Instrument(reg, name)
			s.Controller.Instrument(reg, shardView(j, s), name)
		}
	}
}

// Sites returns the mesh's site names, sorted.
func (m *Mesh) Sites() []string { return m.Table.Sites() }

// Member returns the site's edge server facing peer, or nil.
func (m *Mesh) Member(site, peer string) *Site { return m.members[site][peer] }

// MembersOf returns the site's member edge servers sorted by the peer
// they face — a deterministic enumeration (the members map would leak
// iteration order) for callers wiring per-member state such as flow
// endpoints.
func (m *Mesh) MembersOf(site string) []*Site {
	peers := make([]string, 0, len(m.members[site]))
	for peer := range m.members[site] {
		peers = append(peers, peer)
	}
	sort.Strings(peers)
	out := make([]*Site, len(peers))
	for i, peer := range peers {
		out[i] = m.members[site][peer]
	}
	return out
}

// Relay returns the site's relay program (for stats inspection).
func (m *Mesh) Relay(site string) *dataplane.Relay { return m.relays[site] }

// Pairs returns the underlying pairwise deployments in link order.
func (m *Mesh) Pairs() []*Pair { return m.pairs }

// Establish starts every pair's establishment sequence concurrently —
// each pair owns distinct probe and pinned prefixes, so the discovery
// rounds do not interfere — and wires the relay tables once all pairs
// are provisioned.
func (m *Mesh) Establish() {
	remaining := len(m.pairs)
	for _, p := range m.pairs {
		p.OnReady = func() {
			remaining--
			if remaining > 0 {
				return
			}
			m.wireRelays()
			m.ready = true
			if m.OnReady != nil {
				m.OnReady()
			}
		}
		p.Establish()
	}
}

// RunUntilReady drives the simulation until establishment completes or
// the deadline passes, reporting success. On a sharded network time is
// driven through the coordinator (never an individual partition engine);
// establishment always runs in coupled mode, where the cross-site calls
// of discovery and provisioning are exact.
func (m *Mesh) RunUntilReady(maxVirtual time.Duration) bool {
	deadline := m.net.Now() + maxVirtual
	for !m.ready && m.net.Now() < deadline {
		step := 10 * time.Second
		if remaining := deadline - m.net.Now(); remaining < step {
			step = remaining
		}
		m.net.Run(m.net.Now() + step)
	}
	return m.ready
}

// wireRelays installs the overlay forwarding state for every enumerable
// relayed route: the origin member tags traffic for the final member's
// host prefix with the segment-count TTL, and each intermediate site's
// relay maps that prefix to the egress member of its next segment.
//
// With the default MaxRelays of 1 the final member's prefix uniquely
// identifies the route, so the tables are conflict-free. Longer chains
// can share a final prefix across routes; enumeration order (sorted
// sites, best-first routes) then makes the last write deterministic.
func (m *Mesh) wireRelays() {
	sites := m.Table.Sites()
	for _, src := range sites {
		for _, dst := range sites {
			if src == dst {
				continue
			}
			for _, r := range m.Table.Routes(src, dst) {
				if r.Direct() {
					continue
				}
				seq := r.Segments()
				origin := m.members[src][seq[1]]
				final := m.members[dst][seq[len(seq)-2]]
				origin.Switch.AddRelayPrefix(final.Spec.HostPrefix, uint8(len(seq)-1))
				for i := 1; i+1 < len(seq); i++ {
					m.relays[seq[i]].AddRoute(final.Spec.HostPrefix, m.members[seq[i]][seq[i+1]].Switch)
				}
			}
		}
	}
}

// segmentEstimate scores one overlay segment from the receiving member's
// monitor: the minimum smoothed OWD across that segment's live paths
// (each pair's controller steers onto its best path, so the segment
// contributes its best) plus that path's smoothed jitter. Values stay in
// the receiver's clock domain; see the package comment in
// control/routes.go for why composite comparisons remain exact.
func (m *Mesh) segmentEstimate(from, to string) control.SegmentEstimate {
	recv := m.members[to][from]
	if recv == nil {
		return control.SegmentEstimate{}
	}
	var est control.SegmentEstimate
	for _, pm := range recv.Monitor.Paths() {
		if pm.Est == nil || !pm.Est.Valid() {
			continue
		}
		if m.eng.Now()-pm.LastAt > m.cfg.StaleAfter {
			continue
		}
		if !est.Valid || pm.Est.Value() < est.OWDMs {
			est = control.SegmentEstimate{
				OWDMs:    pm.Est.Value(),
				JitterMs: pm.JitEst.Value(),
				Valid:    true,
			}
		}
	}
	return est
}

// Routes returns every end-to-end route from src to dst, scored and
// sorted best-first.
func (m *Mesh) Routes(src, dst string) []control.CompositeRoute {
	return m.Table.Routes(src, dst)
}

// Best returns the current best valid route.
func (m *Mesh) Best(src, dst string) (control.CompositeRoute, bool) {
	return m.Table.Best(src, dst)
}

// RouteMembers resolves a route to its origin member (where traffic
// enters the overlay) and final member (whose host prefix it targets).
func (m *Mesh) RouteMembers(r control.CompositeRoute) (origin, final *Site, err error) {
	seq := r.Segments()
	if len(seq) < 2 {
		return nil, nil, fmt.Errorf("core: route %v too short", seq)
	}
	origin = m.members[r.Src][seq[1]]
	final = m.members[r.Dst][seq[len(seq)-2]]
	if origin == nil || final == nil {
		return nil, nil, fmt.Errorf("core: route %v crosses undeployed links", seq)
	}
	return origin, final, nil
}

// SendAlong injects one application packet onto a specific route: the
// inner packet is addressed from the origin member's host space to the
// final member's, which the data plane maps to direct tunnelling (direct
// routes) or relay-tagged encapsulation (relayed routes).
func (m *Mesh) SendAlong(r control.CompositeRoute, sport, dport uint16, payload []byte) error {
	origin, final, err := m.RouteMembers(r)
	if err != nil {
		return err
	}
	src, err := origin.HostAddr()
	if err != nil {
		return err
	}
	dst, err := final.HostAddr()
	if err != nil {
		return err
	}
	inner, err := buildInner(m.sendBuf, src, dst, sport, dport, payload)
	if err != nil {
		return err
	}
	origin.Send(inner)
	return nil
}

// AddSink registers a delivery consumer on every member of a site, so
// the sink sees traffic regardless of which overlay route carried it.
func (m *Mesh) AddSink(site string, fn func(inner []byte) bool) {
	for _, s := range m.members[site] {
		s.AddSink(fn)
	}
}

// MeshFromScenario deploys Tango over every pair of a built topo mesh,
// deriving the per-side SiteSpecs from the scenario's allocated edges
// and prefixes. cfg.Links is filled in; other fields pass through.
func MeshFromScenario(s *topo.MeshScenario, cfg MeshConfig) (*Mesh, error) {
	for _, pk := range s.PairKeys {
		a, b := pk[0], pk[1]
		ka, kb := a+":"+b, b+":"+a
		cfg.Links = append(cfg.Links, MeshLink{
			SiteA: a, SiteB: b,
			A: SiteSpec{
				Name:        ka,
				Edge:        s.Edges[ka],
				POPAS:       s.POPs[a].ASN,
				Block:       s.Block[ka],
				HostPrefix:  s.HostPrefix[ka],
				ProbePrefix: s.Probe[ka],
			},
			B: SiteSpec{
				Name:        kb,
				Edge:        s.Edges[kb],
				POPAS:       s.POPs[b].ASN,
				Block:       s.Block[kb],
				HostPrefix:  s.HostPrefix[kb],
				ProbePrefix: s.Probe[kb],
			},
		})
	}
	return NewMesh(cfg)
}

// HostAddr returns the canonical application address (::1) inside the
// member's host prefix — the address SendAlong targets.
func (s *Site) HostAddr() (netip.Addr, error) { return s.Spec.HostPrefix.Host(1) }

// buildInner serializes a minimal inner IPv6/UDP packet.
// buildInner serializes an inner UDP packet into buf and returns a view
// of it, valid until buf is next reused. Site.Send only borrows the
// slice (the data plane re-serializes into a pooled buffer), so callers
// may hand the view straight to it without copying.
func buildInner(buf *packet.SerializeBuffer, src, dst netip.Addr, sport, dport uint16, payload []byte) ([]byte, error) {
	pay := packet.Payload(payload)
	udp := &packet.UDP{SrcPort: sport, DstPort: dport}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
