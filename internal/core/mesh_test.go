package core

import (
	"encoding/binary"
	"testing"
	"time"

	"tango/internal/topo"
)

// establishMesh deploys Tango over the three-site tri scenario with
// probing on and drives it until every pair is provisioned.
func establishMesh(t *testing.T, seed int64, cfg MeshConfig) (*topo.TriScenario, *Mesh) {
	t.Helper()
	s, err := topo.NewTriScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Minute) // base convergence
	cfg.NameFor = topo.TriProviderName
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	m, err := MeshFromScenario(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Establish()
	if !m.RunUntilReady(2 * time.Hour) {
		t.Fatal("mesh did not establish within two hours of virtual time")
	}
	return s, m
}

func TestMeshEstablishesAllPairs(t *testing.T) {
	_, m := establishMesh(t, 31, MeshConfig{})

	if got := m.Sites(); len(got) != 3 || got[0] != "chi" || got[1] != "la" || got[2] != "ny" {
		t.Fatalf("sites = %v", got)
	}
	if len(m.Pairs()) != 3 {
		t.Fatalf("pairs = %d", len(m.Pairs()))
	}
	// Heterogeneous path counts per segment: ny<->la share only NTT,
	// ny<->chi share NTT+Telia, chi<->la share NTT+GTT.
	wantPaths := map[string]int{
		"ny:la": 1, "la:ny": 1,
		"ny:chi": 2, "chi:ny": 2,
		"chi:la": 2, "la:chi": 2,
	}
	for key, n := range wantPaths {
		site, peer := splitKey(key)
		mem := m.Member(site, peer)
		if mem == nil {
			t.Fatalf("member %s missing", key)
		}
		if len(mem.OutPaths) != n {
			t.Fatalf("member %s has %d paths (%v), want %d", key, len(mem.OutPaths), mem.OutPaths, n)
		}
		if len(mem.Switch.Tunnels()) != n {
			t.Fatalf("member %s has %d tunnels, want %d", key, len(mem.Switch.Tunnels()), n)
		}
	}
	if m.Member("ny", "nowhere") != nil {
		t.Fatal("unknown member not nil")
	}
}

func splitKey(key string) (string, string) {
	for i := range key {
		if key[i] == ':' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

func TestMeshRoutesAndEstimates(t *testing.T) {
	_, m := establishMesh(t, 32, MeshConfig{})
	// Let probes feed every segment's monitor.
	m.eng.Run(m.eng.Now() + 2*time.Minute)

	routes := m.Routes("ny", "la")
	if len(routes) != 2 {
		t.Fatalf("ny->la routes = %v", routes)
	}
	foundDirect, foundRelay := false, false
	for _, r := range routes {
		if !r.Valid {
			t.Fatalf("route %v invalid with probes flowing", r)
		}
		if r.Direct() {
			foundDirect = true
		} else if len(r.Via) == 1 && r.Via[0] == "chi" {
			foundRelay = true
		}
	}
	if !foundDirect || !foundRelay {
		t.Fatalf("route kinds missing: %v", routes)
	}
	if _, ok := m.Best("ny", "la"); !ok {
		t.Fatal("no valid best route")
	}
	// The relayed score telescopes the two segment estimates.
	for _, r := range routes {
		if r.Direct() {
			continue
		}
		sum := m.segmentEstimate("ny", "chi").OWDMs + m.segmentEstimate("chi", "la").OWDMs
		if d := r.OWDMs - sum; d > 1e-9 || d < -1e-9 {
			t.Fatalf("relayed OWD %.3f != segment sum %.3f", r.OWDMs, sum)
		}
	}
}

func TestMeshRelayedDelivery(t *testing.T) {
	_, m := establishMesh(t, 33, MeshConfig{})
	m.eng.Run(m.eng.Now() + 30*time.Second)

	viaChi := false
	target := -1
	routes := m.Routes("ny", "la")
	for i, r := range routes {
		if !r.Direct() && len(r.Via) == 1 && r.Via[0] == "chi" {
			target, viaChi = i, true
		}
	}
	if !viaChi {
		t.Fatalf("no ny->la route via chi: %v", routes)
	}

	const dport = 9910
	delivered := 0
	m.AddSink("la", func(inner []byte) bool {
		if len(inner) >= 44 && binary.BigEndian.Uint16(inner[42:44]) == dport {
			delivered++
			return true
		}
		return false
	})

	if err := m.SendAlong(routes[target], 9909, dport, []byte("over the top")); err != nil {
		t.Fatal(err)
	}
	m.eng.Run(m.eng.Now() + time.Second)

	if delivered != 1 {
		t.Fatalf("relayed packet deliveries = %d, want 1", delivered)
	}
	if m.Relay("chi").Stats.Forwarded == 0 {
		t.Fatal("chi relay did not forward")
	}
	if m.Member("chi", "ny").Switch.Stats.Relayed == 0 {
		t.Fatal("chi's ingress member did not hand the packet to the relay")
	}

	// Direct route still delivers without touching any relay.
	forwardedBefore := m.Relay("chi").Stats.Forwarded
	for _, r := range routes {
		if r.Direct() {
			if err := m.SendAlong(r, 9909, dport, []byte("straight")); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.eng.Run(m.eng.Now() + time.Second)
	if delivered != 2 {
		t.Fatalf("direct deliveries = %d, want 2 total", delivered)
	}
	if m.Relay("chi").Stats.Forwarded != forwardedBefore {
		t.Fatal("direct route traversed the relay")
	}
}

func TestMeshConfigErrors(t *testing.T) {
	if _, err := NewMesh(MeshConfig{}); err == nil {
		t.Fatal("empty mesh accepted")
	}
	s, err := topo.NewTriScenario(34)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a, b string) MeshLink {
		ka, kb := a+":"+b, b+":"+a
		return MeshLink{
			SiteA: a, SiteB: b,
			A: SiteSpec{Name: ka, Edge: mustEdgeT(t, s, a, b), POPAS: s.POPs[a].ASN,
				Block: s.Block[ka], HostPrefix: s.HostPrefix[ka], ProbePrefix: s.Probe[ka]},
			B: SiteSpec{Name: kb, Edge: mustEdgeT(t, s, b, a), POPAS: s.POPs[b].ASN,
				Block: s.Block[kb], HostPrefix: s.HostPrefix[kb], ProbePrefix: s.Probe[kb]},
		}
	}
	if _, err := NewMesh(MeshConfig{Links: []MeshLink{mk("ny", "la"), mk("la", "ny")}}); err == nil {
		t.Fatal("duplicate link accepted")
	}
	bad := mk("ny", "la")
	bad.SiteB = "ny"
	if _, err := NewMesh(MeshConfig{Links: []MeshLink{bad}}); err == nil {
		t.Fatal("self-link accepted")
	}
	s2, err := topo.NewTriScenario(35)
	if err != nil {
		t.Fatal(err)
	}
	cross := mk("ny", "chi")
	cross.B.Edge = mustEdgeT(t, s2, "chi", "ny")
	if _, err := NewMesh(MeshConfig{Links: []MeshLink{mk("ny", "la"), cross}}); err == nil {
		t.Fatal("cross-engine link accepted")
	}
}

func mustEdgeT(t *testing.T, s *topo.TriScenario, site, peer string) *topo.AS {
	t.Helper()
	e, err := s.Edge(site, peer)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
