package dataplane

import (
	"testing"
	"testing/quick"
	"time"

	"tango/internal/packet"
)

var testKey = []byte("tango-pair-shared-key-0123456789")

func TestAuthRoundTrip(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	tp.swA.SetAuthKey(testKey)
	tp.swB.SetAuthKey(testKey)

	var meas []Measurement
	delivered := 0
	tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }
	tp.swB.DeliverLocal = func([]byte) { delivered++ }

	tp.swA.HandleHostTraffic(innerPkt(t, "signed payload"))
	tp.w.Run(time.Second)

	if len(meas) != 1 || delivered != 1 {
		t.Fatalf("signed packet not accepted: meas=%d delivered=%d authfail=%d",
			len(meas), delivered, tp.swB.Stats.AuthFail)
	}
	if meas[0].OWD != fastDelay {
		t.Fatalf("OWD = %v", meas[0].OWD)
	}
}

func TestAuthRejectsUnsigned(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	// Only the receiver requires authentication.
	tp.swB.SetAuthKey(testKey)
	got := 0
	tp.swB.OnMeasure = func(Measurement) { got++ }

	tp.swA.HandleHostTraffic(innerPkt(t, "unsigned"))
	tp.w.Run(time.Second)

	if got != 0 {
		t.Fatal("unsigned packet was measured")
	}
	if tp.swB.Stats.AuthFail != 1 {
		t.Fatalf("AuthFail = %d", tp.swB.Stats.AuthFail)
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	tp.swA.SetAuthKey([]byte("attacker-key-aaaaaaaaaaaaaaaaaaa"))
	tp.swB.SetAuthKey(testKey)
	got := 0
	tp.swB.OnMeasure = func(Measurement) { got++ }
	tp.swA.HandleHostTraffic(innerPkt(t, "forged"))
	tp.w.Run(time.Second)
	if got != 0 || tp.swB.Stats.AuthFail != 1 {
		t.Fatalf("forged packet: got=%d authfail=%d", got, tp.swB.Stats.AuthFail)
	}
}

func TestAuthDetectsTimestampTampering(t *testing.T) {
	// An on-path attacker rewrites the embedded timestamp to fabricate
	// a better-looking path. With auth the receiver drops the packet;
	// without auth the forged measurement goes straight into the
	// monitor (the attack §6 worries about).
	for _, withAuth := range []bool{false, true} {
		tp := newTestPair(t, 0, 0)
		if withAuth {
			tp.swA.SetAuthKey(testKey)
			tp.swB.SetAuthKey(testKey)
		}
		var meas []Measurement
		tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }

		// A legitimate packet first, to establish the baseline.
		tp.swA.HandleHostTraffic(innerPkt(t, "legit"))
		tp.w.Run(time.Second)
		baseMeas := len(meas)

		// Manually corrupt the timestamp of a captured outer packet.
		outer := captureOuter(t, tp, withAuth)
		outer[48+8] ^= 0xff // flip a SendTime byte inside the Tango header
		fixUDPChecksum(outer)
		tp.swB.Node().Inject(append([]byte{}, outer...))
		tp.w.Run(2 * time.Second)

		if withAuth {
			if len(meas) != baseMeas {
				t.Fatal("tampered packet measured despite auth")
			}
			if tp.swB.Stats.AuthFail == 0 {
				t.Fatal("tampering not counted")
			}
		} else {
			if len(meas) != baseMeas+1 {
				t.Fatal("tampered packet unexpectedly dropped without auth")
			}
			// The forged measurement is wildly off.
			last := meas[len(meas)-1]
			if last.OWD == fastDelay {
				t.Fatal("tampering had no effect; test is vacuous")
			}
		}
	}
}

// captureOuter builds a valid outer packet exactly as swA would emit it.
func captureOuter(t *testing.T, tp *testPair, signed bool) []byte {
	t.Helper()
	tun, _ := tp.swA.Tunnel(1)
	inner := innerPkt(t, "capture")
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(inner)
	hdr := &packet.Tango{
		Flags:    packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagInner6,
		PathID:   tun.PathID,
		Seq:      999,
		SendTime: tp.swA.Node().Clock().Now(),
	}
	if signed {
		hdr.ExtFlags |= packet.TangoExtAuth
	}
	udp := &packet.UDP{SrcPort: tun.SrcPort, DstPort: packet.TangoPort}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: tun.LocalAddr, Dst: tun.RemoteAddr}
	if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if signed {
		if err := packet.SignTangoDatagram(testKey, out[48:]); err != nil {
			t.Fatal(err)
		}
	}
	fixUDPChecksum(out)
	return out
}

// fixUDPChecksum recomputes the outer UDP checksum after mutation.
func fixUDPChecksum(outer []byte) {
	// Zero the checksum; the receiver treats 0 as "disabled" only for
	// IPv4, so recompute properly via re-serialization of the UDP layer
	// is overkill — instead exploit that our test receiver verifies the
	// checksum, so set it to the correct value by re-deriving it.
	var ip packet.IPv6
	if err := ip.DecodeFromBytes(outer); err != nil {
		return
	}
	// Rebuild UDP header checksum field over the (possibly mutated)
	// datagram.
	outer[46], outer[47] = 0, 0
	c := packet.UDPChecksumFor(ip.Src, ip.Dst, outer[40:])
	outer[46] = byte(c >> 8)
	outer[47] = byte(c)
}

func TestSignVerifyProperty(t *testing.T) {
	f := func(keyRaw [16]byte, pathID uint8, seq uint32, ts int64, pay []byte) bool {
		if len(pay) > 256 {
			pay = pay[:256]
		}
		key := keyRaw[:]
		buf := packet.NewSerializeBuffer()
		p := packet.Payload(pay)
		hdr := &packet.Tango{
			Flags:    packet.TangoFlagSeq | packet.TangoFlagTimestamp,
			ExtFlags: packet.TangoExtAuth,
			PathID:   pathID, Seq: seq, SendTime: ts,
		}
		if err := packet.SerializeLayers(buf, hdr, &p); err != nil {
			return false
		}
		data := make([]byte, buf.Len())
		copy(data, buf.Bytes())
		if err := packet.SignTangoDatagram(key, data); err != nil {
			return false
		}
		if !packet.VerifyTangoDatagram(key, data) {
			return false
		}
		// Any single-bit flip must fail (outside of nothing).
		if len(data) > 0 {
			idx := int(seq) % len(data)
			if idx == 0 {
				idx = 1 // flipping the version byte fails parse anyway
			}
			data[idx] ^= 0x01
			if packet.VerifyTangoDatagram(key, data) {
				return false
			}
			data[idx] ^= 0x01
		}
		// Wrong key fails.
		other := append([]byte(nil), key...)
		other[0] ^= 0xff
		return !packet.VerifyTangoDatagram(other, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
