package dataplane

// ClassSelector is the TE layer's data-plane half: a deterministic
// weighted selector keyed by the inner packet's flow class. The sender
// stamps each flow's class into the inner IPv6 traffic-class byte (IPv4
// TOS); the selector hashes the flow identity onto that class's
// cumulative weight table, so every flow sticks to one tunnel (no
// intra-flow reordering) while the flow population spreads across
// tunnels in the installed proportions.
//
// Weights are integer quanta straight from the te solver — exact
// arithmetic, no float rounding to drift across platforms. Select
// allocates nothing; SetWeights (control-plane cadence) may.
type ClassSelector struct {
	sw *Switch
	// per class: tunnels and the cumulative quanta distribution over them.
	classes [][]classEntry
	totals  []uint32
}

type classEntry struct {
	cum uint32
	tun *Tunnel
}

// NewClassSelector builds an empty selector for numClasses flow
// classes over the switch's tunnels. Until SetWeights installs a
// class's table, that class falls back to the first registered tunnel.
// Install with sw.SetSelector(cs.Select).
func NewClassSelector(sw *Switch, numClasses int) *ClassSelector {
	return &ClassSelector{
		sw:      sw,
		classes: make([][]classEntry, numClasses),
		totals:  make([]uint32, numClasses),
	}
}

// SetWeights installs the per-class split: counts[i] quanta of the
// class ride the tunnel with path ID ids[i]. Zero-count entries and
// unknown path IDs are skipped; an all-zero install clears the class
// back to the fallback.
func (cs *ClassSelector) SetWeights(class int, ids []uint8, counts []int) {
	if class < 0 || class >= len(cs.classes) {
		return
	}
	entries := cs.classes[class][:0]
	var total uint32
	for i, id := range ids {
		if i >= len(counts) || counts[i] <= 0 {
			continue
		}
		tun, ok := cs.sw.Tunnel(id)
		if !ok {
			continue
		}
		total += uint32(counts[i])
		entries = append(entries, classEntry{cum: total, tun: tun})
	}
	cs.classes[class] = entries
	cs.totals[class] = total
}

// Select implements the Selector contract: classify by the inner
// traffic-class byte, then hash the flow onto the class's cumulative
// quanta. Packets without an installed class table (including probe or
// control traffic that carries class 0 by default) fall back to the
// first registered tunnel, matching the selector-less switch.
func (cs *ClassSelector) Select(inner []byte) *Tunnel {
	c, ok := innerClass(inner)
	if ok && c < len(cs.classes) && cs.totals[c] > 0 {
		entries := cs.classes[c]
		h := innerFlowHash(inner) % cs.totals[c]
		for i := range entries {
			if h < entries[i].cum {
				return entries[i].tun
			}
		}
	}
	if ts := cs.sw.Tunnels(); len(ts) > 0 {
		return ts[0]
	}
	return nil
}

// innerClass reads the flow class from the inner header: the IPv6
// traffic-class byte or the IPv4 TOS byte.
func innerClass(inner []byte) (int, bool) {
	if len(inner) < 2 {
		return 0, false
	}
	switch inner[0] >> 4 {
	case 6:
		return int(inner[0]&0x0f)<<4 | int(inner[1]>>4), true
	case 4:
		return int(inner[1]), true
	}
	return 0, false
}
