package dataplane

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"tango/internal/packet"
)

// classInner builds an inner packet with the flow class stamped in the
// IPv6 traffic-class byte and a distinct flow (source port).
func classInner(t *testing.T, class uint8, sport uint16) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("flowdata"))
	udp := &packet.UDP{SrcPort: sport, DstPort: 7002}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, TrafficClass: class,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestClassSelectorSteersPerClass(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	cs := NewClassSelector(tp.swA, 3)
	cs.SetWeights(0, []uint8{1}, []int{8})
	cs.SetWeights(1, []uint8{2}, []int{8})
	tp.swA.SetSelector(cs.Select)

	counts := map[uint8]map[uint8]int{0: {}, 1: {}}
	for i := 0; i < 100; i++ {
		for class := uint8(0); class < 2; class++ {
			tun := cs.Select(classInner(t, class, uint16(i)))
			counts[class][tun.PathID]++
		}
	}
	if counts[0][1] != 100 || counts[1][2] != 100 {
		t.Fatalf("class steering wrong: %v", counts)
	}
}

func TestClassSelectorProportionsAndDelivery(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	cs := NewClassSelector(tp.swA, 3)
	cs.SetWeights(0, []uint8{1, 2}, []int{6, 2})
	tp.swA.SetSelector(cs.Select)

	got := map[uint8]int{}
	tp.swB.OnMeasure = func(m Measurement) { got[m.PathID]++ }

	const flows = 4000
	for i := 0; i < flows; i++ {
		tp.swA.HandleHostTraffic(classInner(t, 0, uint16(i)))
	}
	tp.w.Run(time.Second)
	total := got[1] + got[2]
	if total != flows {
		t.Fatalf("delivered %d/%d", total, flows)
	}
	frac := float64(got[1]) / float64(total)
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("path1 fraction = %.3f, want ~0.75 (counts %v)", frac, got)
	}
}

func TestClassSelectorFlowStickiness(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	cs := NewClassSelector(tp.swA, 3)
	cs.SetWeights(2, []uint8{1, 2}, []int{1, 1})

	for flow := uint16(0); flow < 50; flow++ {
		pkt := classInner(t, 2, flow)
		first := cs.Select(pkt).PathID
		for i := 0; i < 20; i++ {
			if got := cs.Select(pkt).PathID; got != first {
				t.Fatalf("flow %d moved from path %d to %d", flow, first, got)
			}
		}
	}
}

func TestClassSelectorFallbacks(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	cs := NewClassSelector(tp.swA, 3)
	cs.SetWeights(1, []uint8{2}, []int{4})

	// Uninstalled class, unknown class byte, garbage, and nil inners all
	// fall back to the first tunnel, like the selector-less switch.
	if got := cs.Select(classInner(t, 0, 1)).PathID; got != 1 {
		t.Fatalf("uninstalled class went to path %d, want 1", got)
	}
	if got := cs.Select(classInner(t, 200, 1)).PathID; got != 1 {
		t.Fatalf("out-of-range class went to path %d, want 1", got)
	}
	if cs.Select(nil) == nil || cs.Select([]byte{0x00, 0x01}) == nil {
		t.Fatal("garbage inner must still pick a tunnel")
	}
	// Out-of-range class indexes and unknown path IDs in SetWeights are
	// ignored rather than corrupting state.
	cs.SetWeights(-1, []uint8{1}, []int{1})
	cs.SetWeights(99, []uint8{1}, []int{1})
	cs.SetWeights(1, []uint8{9, 2}, []int{5, 0})
	if got := cs.Select(classInner(t, 1, 1)).PathID; got != 1 {
		t.Fatalf("all-zero install must clear to fallback, got path %d", got)
	}
	// Counts shorter than ids: missing entries count zero.
	cs.SetWeights(1, []uint8{1, 2}, []int{1})
	if got := cs.Select(classInner(t, 1, 1)).PathID; got != 1 {
		t.Fatalf("short counts: got path %d, want 1", got)
	}
}

// TestClassSelectorSelectZeroAlloc pins the fast path: selecting a
// tunnel for a classified packet must not allocate.
func TestClassSelectorSelectZeroAlloc(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	cs := NewClassSelector(tp.swA, 3)
	cs.SetWeights(0, []uint8{1, 2}, []int{3, 5})
	pkt := classInner(t, 0, 7)
	if n := testing.AllocsPerRun(200, func() { cs.Select(pkt) }); n != 0 {
		t.Fatalf("Select allocates %v per op, want 0", n)
	}
}
