package dataplane

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
)

// innerV4 builds an inner IPv4 packet between the test pair's host spaces.
func innerV4(t *testing.T) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("v4 inner"))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// TestIPv4InnerTunnelled: Tango tunnels IPv4 traffic over the IPv6
// wide-area tunnels ("a different IP version", §3). The Inner6 flag must
// be clear and the inner packet must survive intact.
func TestIPv4InnerTunnelled(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	tp.swA.AddPeerPrefix(addr.MustParsePrefix("10.2.0.0/16"))
	var got []byte
	tp.swB.DeliverLocal = func(inner []byte) { got = append([]byte(nil), inner...) }
	measured := 0
	tp.swB.OnMeasure = func(Measurement) { measured++ }

	orig := innerV4(t)
	tp.swA.HandleHostTraffic(append([]byte{}, orig...))
	tp.w.Run(time.Second)

	if got == nil || measured != 1 {
		t.Fatalf("v4 inner not delivered: got=%v measured=%d", got != nil, measured)
	}
	var dec packet.IPv4
	if err := dec.DecodeFromBytes(got); err != nil {
		t.Fatalf("inner v4 corrupted: %v", err)
	}
	if dec.TTL != 64 {
		t.Fatalf("inner TTL changed: %d (tunnelled packets must not be aged)", dec.TTL)
	}
}

// TestSendToPeerDirect: the host-colocated entry point encapsulates via
// the selector.
func TestSendToPeerDirect(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	measured := 0
	tp.swB.OnMeasure = func(Measurement) { measured++ }
	tp.swA.SendToPeer(innerPkt(t, "direct"))
	tp.w.Run(time.Second)
	if measured != 1 || tp.swA.Stats.Encapped != 1 {
		t.Fatalf("SendToPeer: measured=%d encapped=%d", measured, tp.swA.Stats.Encapped)
	}
}

// TestHandleNonTangoLocalTraffic: packets addressed to an owned address
// that are not Tango-encapsulated flow to DeliverLocal unmodified.
func TestHandleNonTangoLocalTraffic(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	// Address plain (non-Tango) traffic to A's tunnel endpoint.
	var got []byte
	tp.swA.DeliverLocal = func(inner []byte) { got = append([]byte(nil), inner...) }
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("plain"))
	udp := &packet.UDP{SrcPort: 5, DstPort: 6} // not the Tango port
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:b1::1"),
		Dst: netip.MustParseAddr("2001:db8:a1::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len())
	copy(raw, buf.Bytes())
	tp.swB.Node().Inject(raw)
	tp.w.Run(time.Second)
	if got == nil {
		t.Fatal("non-Tango local traffic not delivered")
	}
	if tp.swA.Stats.NotTango != 1 {
		t.Fatalf("NotTango = %d", tp.swA.Stats.NotTango)
	}
}

func TestSetAuthKeyNilDisables(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	tp.swB.SetAuthKey(testKey)
	tp.swB.SetAuthKey(nil) // disable again
	measured := 0
	tp.swB.OnMeasure = func(Measurement) { measured++ }
	tp.swA.HandleHostTraffic(innerPkt(t, "no auth"))
	tp.w.Run(time.Second)
	if measured != 1 {
		t.Fatal("auth not disabled by nil key")
	}
}
