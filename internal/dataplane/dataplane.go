// Package dataplane implements the Tango border-switch data plane — the
// role the paper fills with eBPF programs (or, in the full architecture,
// programmable switches).
//
// The sender side classifies traffic destined for the cooperating edge
// network, selects a wide-area path, and encapsulates the packet in an
// outer IPv6 + UDP + Tango header carrying a path ID, per-path sequence
// number, and a local-clock timestamp. The fixed outer 5-tuple per tunnel
// pins any ECMP hashing inside transit providers, so each tunnel measures
// exactly one wide-area path.
//
// The receiver side recognizes Tango traffic by the outer UDP port,
// computes the one-way delay (receiver clock minus embedded timestamp —
// offset by the constant clock skew, which cancels in path comparisons),
// feeds sequence numbers to loss/reorder tracking, strips the
// encapsulation, and forwards the inner packet toward the end host.
// Measurement data can also be piggybacked back to the peer on ordinary
// data packets via the Tango header's report block, so neither side ever
// sends dedicated probe traffic unless it wants to.
package dataplane

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// Tunnel is one unidirectional wide-area path to the peer switch: traffic
// sent to RemoteAddr transits the provider path that prefix was announced
// over.
type Tunnel struct {
	PathID uint8
	// Name labels the path for reports (e.g. the transit provider:
	// "NTT", "GTT").
	Name string
	// LocalAddr and RemoteAddr are the outer tunnel endpoints; each
	// lives in a prefix announced over a specific provider path.
	LocalAddr, RemoteAddr netip.Addr
	// SrcPort fixes the outer UDP source port (ECMP pinning).
	SrcPort uint16

	seq uint32

	Stats struct {
		Sent uint64
	}
}

// nextSeq returns the tunnel's next sequence number.
func (t *Tunnel) nextSeq() uint32 {
	s := t.seq
	t.seq++
	return s
}

// Measurement is the receiver-side observation for one arriving packet.
type Measurement struct {
	At     sim.Time
	PathID uint8
	// OWD is the raw one-way delay in the receiver's clock domain:
	// true wide-area delay plus the (constant) clock offset between the
	// two switches. Comparisons between paths are exact; the absolute
	// value is not.
	OWD time.Duration
	Seq uint32
	// Size is the outer packet length in bytes.
	Size int
}

// Selector picks the tunnel for an outbound packet. The controller
// installs its policy here; inner packet bytes allow application-specific
// routing (e.g. by traffic class or port).
type Selector func(inner []byte) *Tunnel

// Switch is one Tango border switch: it runs the sender program for
// host traffic leaving the site and the receiver program for Tango
// traffic arriving from the wide area.
type Switch struct {
	node  *simnet.Node
	clock *sim.Clock

	tunnels   []*Tunnel // indexed lookup by PathID
	tunnelIDs map[uint8]*Tunnel

	// peerHosts marks inner destination prefixes reachable through the
	// cooperating switch ("a table which can be statically configured
	// as both endpoints are cooperating", §3).
	peerHosts addr.Trie[bool]

	// relayHosts marks inner destination prefixes reachable through an
	// overlay relay beyond the direct peer, mapped to the relay-TTL
	// budget to stamp on the encapsulation (the number of remaining
	// overlay segments). Checked after peerHosts, so the direct peer's
	// prefixes always take the single-segment path.
	relayHosts addr.Trie[uint8]

	// relay, when set, is consulted for arriving relay-tagged packets
	// before local delivery.
	relay *Relay

	selector Selector

	// OnMeasure receives every receiver-side observation.
	OnMeasure func(Measurement)
	// OnReport receives piggybacked reverse-path reports.
	OnReport func(packet.OWDReport)
	// DeliverLocal consumes decapsulated inner packets (defaults to
	// re-injecting them into the node for normal forwarding).
	DeliverLocal func(inner []byte)

	// authKey, when set, makes the sender sign every Tango datagram and
	// the receiver drop anything unsigned or failing verification —
	// before the measurement engine can be polluted (§6, trustworthy
	// telemetry). Both switches of a pair must share the key.
	authKey []byte

	// pendingReports ride out one per encapsulated packet (FIFO). A
	// bounded queue rather than a single slot: with sparse outbound
	// traffic a slot aliases against the reporter's round-robin and can
	// starve some paths of feedback entirely.
	pendingReports []packet.OWDReport

	// Reusable serialization state (the hot path does not allocate
	// per-packet beyond the outgoing byte slice handed to the network).
	buf *packet.SerializeBuffer

	// Preallocated decode layers.
	decIP  packet.IPv6
	decUDP packet.UDP
	decTng packet.Tango

	Stats struct {
		Encapped     uint64
		Decapped     uint64
		NotTango     uint64
		BadPacket    uint64
		NoTunnel     uint64
		AuthFail     uint64
		ReportsSent  uint64
		ReportsRecvd uint64
		// Relayed counts arriving packets handed to the relay program
		// (forwarded onward or dropped by its TTL guard) instead of
		// delivered locally.
		Relayed uint64
	}
}

// NewSwitch attaches a Tango switch to a simnet node. It takes over the
// node's local-delivery handler.
func NewSwitch(node *simnet.Node) *Switch {
	s := &Switch{
		node:      node,
		clock:     node.Clock(),
		tunnelIDs: make(map[uint8]*Tunnel),
		buf:       packet.NewSerializeBuffer(),
	}
	s.DeliverLocal = func(inner []byte) {} // dropped unless the site wires a host side
	node.SetHandler(s.handle)
	return s
}

// Node returns the underlying simnet node.
func (s *Switch) Node() *simnet.Node { return s.node }

// AddTunnel registers a path. The tunnel's local endpoint address is
// claimed on the node so arriving outer packets are delivered here.
func (s *Switch) AddTunnel(t *Tunnel) {
	if _, dup := s.tunnelIDs[t.PathID]; dup {
		panic(fmt.Sprintf("dataplane: duplicate tunnel path id %d", t.PathID))
	}
	s.tunnels = append(s.tunnels, t)
	s.tunnelIDs[t.PathID] = t
	s.node.AddAddr(t.LocalAddr)
}

// RemoveTunnel withdraws a path (e.g. discovery found it dead).
func (s *Switch) RemoveTunnel(pathID uint8) {
	t, ok := s.tunnelIDs[pathID]
	if !ok {
		return
	}
	delete(s.tunnelIDs, pathID)
	for i, x := range s.tunnels {
		if x == t {
			s.tunnels = append(s.tunnels[:i], s.tunnels[i+1:]...)
			break
		}
	}
}

// Tunnels returns the registered tunnels in registration order.
func (s *Switch) Tunnels() []*Tunnel { return s.tunnels }

// Tunnel returns the tunnel with the given path ID.
func (s *Switch) Tunnel(pathID uint8) (*Tunnel, bool) {
	t, ok := s.tunnelIDs[pathID]
	return t, ok
}

// AddPeerPrefix marks an inner destination prefix as reachable via the
// cooperating switch.
func (s *Switch) AddPeerPrefix(p addr.Prefix) { s.peerHosts.Insert(p, true) }

// AddRelayPrefix marks an inner destination prefix as reachable through
// an overlay relay: matching host traffic is encapsulated toward the
// direct peer with the relay extension set and the given TTL budget
// (normally the number of overlay segments on the route).
func (s *Switch) AddRelayPrefix(p addr.Prefix, ttl uint8) { s.relayHosts.Insert(p, ttl) }

// SetSelector installs the path-selection policy. With none installed the
// first registered tunnel carries everything.
func (s *Switch) SetSelector(sel Selector) { s.selector = sel }

// SetAuthKey enables authenticated telemetry: outgoing Tango datagrams
// are signed (truncated HMAC-SHA256 over header, report, and inner
// packet) and incoming ones must verify or they are dropped uncounted.
// Pass nil to disable. Both sides must share the key.
func (s *Switch) SetAuthKey(key []byte) {
	s.authKey = append([]byte(nil), key...)
	if len(key) == 0 {
		s.authKey = nil
	}
}

// QueueReport schedules a reverse-path measurement report to piggyback on
// upcoming outbound encapsulated packets (one per packet, FIFO, bounded).
func (s *Switch) QueueReport(r packet.OWDReport) {
	const maxPending = 16
	if len(s.pendingReports) >= maxPending {
		s.pendingReports = s.pendingReports[1:]
	}
	s.pendingReports = append(s.pendingReports, r)
}

// SendToPeer runs the sender program on an inner packet: pick a tunnel,
// encapsulate, timestamp, inject. Exposed for hosts colocated with the
// switch; transit host traffic goes through the node handler.
func (s *Switch) SendToPeer(inner []byte) {
	s.encapAndSend(inner, 0)
}

// SendOnTunnel encapsulates inner onto a specific tunnel, bypassing the
// selector. The measurement prober uses it to exercise every exposed
// path at a fixed rate regardless of where data traffic currently flows.
func (s *Switch) SendOnTunnel(tun *Tunnel, inner []byte) {
	s.encapOn(tun, inner, 0)
}

// handle is the node's local-delivery hook: every packet addressed to one
// of the node's owned addresses lands here.
func (s *Switch) handle(_ *simnet.Port, data []byte) {
	if s.isTangoPacket(data) {
		s.receiverProgram(data)
		return
	}
	s.Stats.NotTango++
	s.DeliverLocal(data)
}

// HandleHostTraffic is the sender-side entry for traffic originated by
// local hosts: if the destination belongs to the cooperating edge, it is
// tunnelled; otherwise it is forwarded untouched (ordinary BGP routing).
func (s *Switch) HandleHostTraffic(data []byte) {
	dst, ok := innerDst(data)
	if !ok {
		s.Stats.BadPacket++
		return
	}
	if _, _, tango := s.peerHosts.Lookup(dst); tango {
		s.encapAndSend(data, 0)
		return
	}
	if ttl, _, ok := s.relayHosts.Lookup(dst); ok {
		s.encapAndSend(data, ttl)
		return
	}
	s.node.Inject(data)
}

func innerDst(data []byte) (netip.Addr, bool) {
	if len(data) < 1 {
		return netip.Addr{}, false
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 40 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom16([16]byte(data[24:40])), true
	case 4:
		if len(data) < 20 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom4([4]byte(data[16:20])), true
	}
	return netip.Addr{}, false
}

// encapAndSend is the sender eBPF program. A relayTTL above zero tags the
// encapsulation for overlay relaying with that hop budget.
func (s *Switch) encapAndSend(inner []byte, relayTTL uint8) {
	var tun *Tunnel
	if s.selector != nil {
		tun = s.selector(inner)
	} else if len(s.tunnels) > 0 {
		tun = s.tunnels[0]
	}
	s.encapOn(tun, inner, relayTTL)
}

func (s *Switch) encapOn(tun *Tunnel, inner []byte, relayTTL uint8) {
	if tun == nil {
		s.Stats.NoTunnel++
		return
	}
	flags := uint8(packet.TangoFlagSeq | packet.TangoFlagTimestamp)
	if len(inner) > 0 && inner[0]>>4 == 6 {
		flags |= packet.TangoFlagInner6
	}
	hdr := packet.Tango{
		Flags:    flags,
		PathID:   tun.PathID,
		Seq:      tun.nextSeq(),
		SendTime: s.clock.Now(),
	}
	if relayTTL > 0 {
		hdr.ExtFlags |= packet.TangoExtRelay
		hdr.RelayTTL = relayTTL
	}
	if len(s.pendingReports) > 0 {
		hdr.Flags |= packet.TangoFlagReport
		hdr.Report = s.pendingReports[0]
		s.pendingReports = s.pendingReports[1:]
		s.Stats.ReportsSent++
	}
	if s.authKey != nil {
		hdr.ExtFlags |= packet.TangoExtAuth
	}
	udp := packet.UDP{SrcPort: tun.SrcPort, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(tun.LocalAddr, tun.RemoteAddr)
	ip := packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   64,
		Src:        tun.LocalAddr,
		Dst:        tun.RemoteAddr,
	}
	pay := packet.Payload(inner)
	if s.authKey != nil {
		// Two-phase build: serialize the Tango datagram, sign it in
		// place, then wrap it in UDP (whose checksum must cover the
		// final tag) and IP.
		s.buf.Clear()
		if err := pay.SerializeTo(s.buf); err != nil {
			s.Stats.BadPacket++
			return
		}
		if err := hdr.SerializeTo(s.buf); err != nil {
			s.Stats.BadPacket++
			return
		}
		if err := packet.SignTangoDatagram(s.authKey, s.buf.Bytes()); err != nil {
			s.Stats.BadPacket++
			return
		}
		if err := udp.SerializeTo(s.buf); err != nil {
			s.Stats.BadPacket++
			return
		}
		if err := ip.SerializeTo(s.buf); err != nil {
			s.Stats.BadPacket++
			return
		}
	} else if err := packet.SerializeLayers(s.buf, &ip, &udp, &hdr, &pay); err != nil {
		s.Stats.BadPacket++
		return
	}
	out := make([]byte, s.buf.Len())
	copy(out, s.buf.Bytes())
	tun.Stats.Sent++
	s.Stats.Encapped++
	s.node.Inject(out)
}

// isTangoPacket performs the cheap match an eBPF program would do before
// full parsing: IPv6, UDP, Tango destination port.
func (s *Switch) isTangoPacket(data []byte) bool {
	if len(data) < 48 || data[0]>>4 != 6 {
		return false
	}
	if data[6] != packet.ProtoUDP {
		return false
	}
	dport := uint16(data[42])<<8 | uint16(data[43])
	return dport == packet.TangoPort
}

// receiverProgram is the receiver eBPF program: parse, measure, decap,
// deliver.
func (s *Switch) receiverProgram(data []byte) {
	if err := s.decIP.DecodeFromBytes(data); err != nil {
		s.Stats.BadPacket++
		return
	}
	if err := s.decUDP.DecodeFromBytes(s.decIP.LayerPayload()); err != nil {
		s.Stats.BadPacket++
		return
	}
	if err := s.decUDP.VerifyChecksum(s.decIP.Src, s.decIP.Dst, s.decIP.LayerPayload()); err != nil {
		s.Stats.BadPacket++
		return
	}
	if err := s.decTng.DecodeFromBytes(s.decUDP.LayerPayload()); err != nil {
		s.Stats.BadPacket++
		return
	}
	if s.authKey != nil && !packet.VerifyTangoDatagram(s.authKey, s.decUDP.LayerPayload()) {
		// Unsigned or tampered: reject before it can pollute the
		// measurement engine.
		s.Stats.AuthFail++
		return
	}
	hdr := &s.decTng
	if hdr.Flags&packet.TangoFlagTimestamp != 0 && s.OnMeasure != nil {
		owd := time.Duration(s.clock.Now() - hdr.SendTime)
		s.OnMeasure(Measurement{
			At:     s.node.Network().Now(),
			PathID: hdr.PathID,
			OWD:    owd,
			Seq:    hdr.Seq,
			Size:   len(data),
		})
	}
	if hdr.Flags&packet.TangoFlagReport != 0 {
		s.Stats.ReportsRecvd++
		if s.OnReport != nil {
			s.OnReport(hdr.Report)
		}
	}
	s.Stats.Decapped++
	inner := hdr.LayerPayload()
	if len(inner) == 0 {
		return
	}
	// Relay program: a tagged packet whose inner destination has a next
	// overlay segment here is re-encapsulated, not delivered. The
	// measurement above already ran, so each segment's monitor sees
	// relayed traffic like any other.
	if hdr.ExtFlags&packet.TangoExtRelay != 0 && s.relay != nil {
		if s.relay.forward(inner, hdr.RelayTTL) {
			s.Stats.Relayed++
			return
		}
	}
	out := make([]byte, len(inner))
	copy(out, inner)
	s.DeliverLocal(out)
}
