// Package dataplane implements the Tango border-switch data plane — the
// role the paper fills with eBPF programs (or, in the full architecture,
// programmable switches).
//
// The sender side classifies traffic destined for the cooperating edge
// network, selects a wide-area path, and encapsulates the packet in an
// outer IPv6 + UDP + Tango header carrying a path ID, per-path sequence
// number, and a local-clock timestamp. The fixed outer 5-tuple per tunnel
// pins any ECMP hashing inside transit providers, so each tunnel measures
// exactly one wide-area path.
//
// The receiver side recognizes Tango traffic by the outer UDP port,
// computes the one-way delay (receiver clock minus embedded timestamp —
// offset by the constant clock skew, which cancels in path comparisons),
// feeds sequence numbers to loss/reorder tracking, strips the
// encapsulation, and forwards the inner packet toward the end host.
// Measurement data can also be piggybacked back to the peer on ordinary
// data packets via the Tango header's report block, so neither side ever
// sends dedicated probe traffic unless it wants to.
package dataplane

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"tango/internal/addr"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/simnet"
	"tango/internal/transport"
)

// Tunnel is one unidirectional wide-area path to the peer switch: traffic
// sent to RemoteAddr transits the provider path that prefix was announced
// over.
type Tunnel struct {
	PathID uint8
	// Name labels the path for reports (e.g. the transit provider:
	// "NTT", "GTT").
	Name string
	// LocalAddr and RemoteAddr are the outer tunnel endpoints; each
	// lives in a prefix announced over a specific provider path.
	LocalAddr, RemoteAddr netip.Addr
	// SrcPort fixes the outer UDP source port (ECMP pinning).
	SrcPort uint16

	seq uint32

	Stats struct {
		Sent uint64
		// ProbeSent counts the subset of Sent injected via SendOnTunnel
		// (measurement probes). Sent - ProbeSent is therefore the data
		// traffic steered here by the selector — the quantity chaos
		// invariants watch on a dead path, where probing must continue
		// but data must not.
		ProbeSent uint64
	}
}

// DataSent returns the number of selector-steered (non-probe) packets
// sent on this tunnel.
func (t *Tunnel) DataSent() uint64 { return t.Stats.Sent - t.Stats.ProbeSent }

// nextSeq returns the tunnel's next sequence number.
func (t *Tunnel) nextSeq() uint32 {
	s := t.seq
	t.seq++
	return s
}

// Measurement is the receiver-side observation for one arriving packet.
type Measurement struct {
	At     sim.Time
	PathID uint8
	// OWD is the raw one-way delay in the receiver's clock domain:
	// true wide-area delay plus the (constant) clock offset between the
	// two switches. Comparisons between paths are exact; the absolute
	// value is not.
	OWD time.Duration
	Seq uint32
	// Size is the outer packet length in bytes.
	Size int
}

// Selector picks the tunnel for an outbound packet. The controller
// installs its policy here; inner packet bytes allow application-specific
// routing (e.g. by traffic class or port).
type Selector func(inner []byte) *Tunnel

// Switch is one Tango border switch: it runs the sender program for
// host traffic leaving the site and the receiver program for Tango
// traffic arriving from the wide area.
type Switch struct {
	ep    transport.Endpoint
	clock *sim.Clock

	tunnels   []*Tunnel // indexed lookup by PathID
	tunnelIDs map[uint8]*Tunnel

	// peerHosts marks inner destination prefixes reachable through the
	// cooperating switch ("a table which can be statically configured
	// as both endpoints are cooperating", §3).
	peerHosts addr.Trie[bool]

	// relayHosts marks inner destination prefixes reachable through an
	// overlay relay beyond the direct peer, mapped to the relay-TTL
	// budget to stamp on the encapsulation (the number of remaining
	// overlay segments). Checked after peerHosts, so the direct peer's
	// prefixes always take the single-segment path.
	relayHosts addr.Trie[uint8]

	// relay, when set, is consulted for arriving relay-tagged packets
	// before local delivery.
	relay *Relay

	selector Selector

	// OnMeasure receives every receiver-side observation.
	OnMeasure func(Measurement)
	// OnReport receives piggybacked reverse-path reports.
	OnReport func(packet.OWDReport)
	// DeliverLocal consumes decapsulated inner packets. The slice is a
	// borrowed view of the arriving packet's pooled buffer, valid only
	// until the callback returns; consumers that keep bytes must copy
	// them (see DESIGN.md, "Fast path & buffer ownership").
	DeliverLocal func(inner []byte)

	// authKey, when set, makes the sender sign every Tango datagram and
	// the receiver drop anything unsigned or failing verification —
	// before the measurement engine can be polluted (§6, trustworthy
	// telemetry). Both switches of a pair must share the key.
	authKey []byte

	// pendingReports ride out one per encapsulated packet (FIFO). A
	// bounded queue rather than a single slot: with sparse outbound
	// traffic a slot aliases against the reporter's round-robin and can
	// starve some paths of feedback entirely. Stored as a ring so the
	// drop-oldest overflow policy reuses the same storage forever
	// instead of migrating a slice down its backing array.
	pendingReports  [maxPendingReports]packet.OWDReport
	prHead, prCount int

	// pool leases the buffers outgoing packets are serialized into; the
	// encapsulated packet is handed to the network with ownership, so
	// the sender program never allocates in steady state.
	pool *packet.BufPool

	// Preallocated decode layers.
	decIP  packet.IPv6
	decUDP packet.UDP
	decTng packet.Tango

	Stats struct {
		Encapped     uint64
		Decapped     uint64
		NotTango     uint64
		BadPacket    uint64
		NoTunnel     uint64
		AuthFail     uint64
		ReportsSent  uint64
		ReportsRecvd uint64
		// Relayed counts arriving packets handed to the relay program
		// (forwarded onward or dropped by its TTL guard) instead of
		// delivered locally.
		Relayed uint64
	}

	// sobs holds the switch's registered observability instruments;
	// nil when the switch is not instrumented. All instrument methods
	// are nil-safe, so the fast path carries a single branch per
	// counter and no allocation either way (see internal/obs).
	sobs *switchObs
}

// switchObs is the instrument set Instrument registers. Per-tunnel and
// per-path instruments are indexed by path ID so the hot path reaches
// them with one array load; slots register at AddTunnel time (tx/probe/
// data) or on first arrival (rx), never per packet in steady state.
type switchObs struct {
	reg  *obs.Registry
	site string

	encapNs, decapNs    *obs.Histogram
	encapped, decapped  *obs.Counter
	badPacket, noTunnel *obs.Counter
	authFail, relayed   *obs.Counter
	repSent, repRecvd   *obs.Counter
	tx, probe, data, rx [256]*obs.Counter
}

// Instrument registers the switch's metrics in reg under the given site
// label and starts updating them alongside Stats. Tunnels already added
// get their per-tunnel counters immediately; later AddTunnel calls
// register theirs on the way in. Safe to call once, before traffic.
func (s *Switch) Instrument(reg *obs.Registry, site string) {
	so := &switchObs{reg: reg, site: site}
	l := obs.L("site", site)
	so.encapNs = reg.Histogram("tango_dataplane_encap_ns",
		"Wall-clock latency of the sender program (classify, encapsulate, checksum, inject), nanoseconds.", l)
	so.decapNs = reg.Histogram("tango_dataplane_decap_ns",
		"Wall-clock latency of the receiver program (parse, verify, measure, decap, deliver), nanoseconds.", l)
	so.encapped = reg.Counter("tango_dataplane_encapped_total", "Packets encapsulated by the sender program.", l)
	so.decapped = reg.Counter("tango_dataplane_decapped_total", "Tango packets decapsulated by the receiver program.", l)
	so.badPacket = reg.Counter("tango_dataplane_bad_packets_total", "Packets dropped as unparsable or unserializable.", l)
	so.noTunnel = reg.Counter("tango_dataplane_no_tunnel_total", "Packets dropped because no tunnel was available.", l)
	so.authFail = reg.Counter("tango_dataplane_auth_fail_total", "Tango datagrams dropped by telemetry authentication.", l)
	so.relayed = reg.Counter("tango_dataplane_relayed_total", "Arriving packets handed to the relay program.", l)
	so.repSent = reg.Counter("tango_dataplane_reports_sent_total", "Piggybacked measurement reports sent.", l)
	so.repRecvd = reg.Counter("tango_dataplane_reports_recvd_total", "Piggybacked measurement reports received.", l)
	s.sobs = so
	for _, t := range s.tunnels {
		so.addTunnel(t.PathID)
	}
}

// addTunnel registers the sender-side per-tunnel counters for a path ID.
func (so *switchObs) addTunnel(id uint8) {
	ls := []obs.Label{obs.L("site", so.site), obs.L("path", strconv.Itoa(int(id)))}
	so.tx[id] = so.reg.Counter("tango_tunnel_tx_total", "Packets sent on this tunnel (probes plus data).", ls...)
	so.probe[id] = so.reg.Counter("tango_tunnel_probe_total", "Measurement probes sent on this tunnel.", ls...)
	so.data[id] = so.reg.Counter("tango_tunnel_data_total", "Selector-steered data packets sent on this tunnel.", ls...)
}

// rxCounter returns (registering on first use) the receiver-side
// arrival counter for a path ID.
func (so *switchObs) rxCounter(id uint8) *obs.Counter {
	if c := so.rx[id]; c != nil {
		return c
	}
	c := so.reg.Counter("tango_tunnel_rx_total", "Tango packets arriving on this path.",
		obs.L("site", so.site), obs.L("path", strconv.Itoa(int(id))))
	so.rx[id] = c
	return c
}

// NewSwitch attaches a Tango switch to a transport endpoint — a simnet
// node (virtual time) or a real-socket backend (wall clock); the switch
// cannot tell them apart. It takes over the endpoint's local-delivery
// handler.
func NewSwitch(ep transport.Endpoint) *Switch {
	s := &Switch{
		ep:        ep,
		clock:     ep.Clock(),
		tunnelIDs: make(map[uint8]*Tunnel),
		pool:      ep.Pool(),
	}
	s.DeliverLocal = func(inner []byte) {} // dropped unless the site wires a host side
	ep.SetHandler(s.handle)
	return s
}

// Endpoint returns the transport endpoint the switch is attached to.
func (s *Switch) Endpoint() transport.Endpoint { return s.ep }

// Node returns the underlying simnet node when the switch runs on the
// simulated transport, or nil on a real-socket backend.
func (s *Switch) Node() *simnet.Node {
	n, _ := s.ep.(*simnet.Node)
	return n
}

// AddTunnel registers a path. The tunnel's local endpoint address is
// claimed on the node so arriving outer packets are delivered here.
func (s *Switch) AddTunnel(t *Tunnel) {
	if _, dup := s.tunnelIDs[t.PathID]; dup {
		panic(fmt.Sprintf("dataplane: duplicate tunnel path id %d", t.PathID))
	}
	s.tunnels = append(s.tunnels, t)
	s.tunnelIDs[t.PathID] = t
	s.ep.AddAddr(t.LocalAddr)
	if s.sobs != nil {
		s.sobs.addTunnel(t.PathID)
	}
}

// RemoveTunnel withdraws a path (e.g. discovery found it dead) and
// releases the node-address claim AddTunnel made, so packets to the dead
// tunnel's local endpoint stop reaching the receiver program. Claims are
// refcounted on the node: an address shared with a still-registered
// tunnel stays owned.
func (s *Switch) RemoveTunnel(pathID uint8) {
	t, ok := s.tunnelIDs[pathID]
	if !ok {
		return
	}
	delete(s.tunnelIDs, pathID)
	for i, x := range s.tunnels {
		if x == t {
			s.tunnels = append(s.tunnels[:i], s.tunnels[i+1:]...)
			break
		}
	}
	s.ep.RemoveAddr(t.LocalAddr)
}

// Tunnels returns the registered tunnels in registration order.
func (s *Switch) Tunnels() []*Tunnel { return s.tunnels }

// Tunnel returns the tunnel with the given path ID.
func (s *Switch) Tunnel(pathID uint8) (*Tunnel, bool) {
	t, ok := s.tunnelIDs[pathID]
	return t, ok
}

// AddPeerPrefix marks an inner destination prefix as reachable via the
// cooperating switch.
func (s *Switch) AddPeerPrefix(p addr.Prefix) { s.peerHosts.Insert(p, true) }

// AddRelayPrefix marks an inner destination prefix as reachable through
// an overlay relay: matching host traffic is encapsulated toward the
// direct peer with the relay extension set and the given TTL budget
// (normally the number of overlay segments on the route).
func (s *Switch) AddRelayPrefix(p addr.Prefix, ttl uint8) { s.relayHosts.Insert(p, ttl) }

// SetSelector installs the path-selection policy. With none installed the
// first registered tunnel carries everything.
func (s *Switch) SetSelector(sel Selector) { s.selector = sel }

// SetAuthKey enables authenticated telemetry: outgoing Tango datagrams
// are signed (truncated HMAC-SHA256 over header, report, and inner
// packet) and incoming ones must verify or they are dropped uncounted.
// Pass nil to disable. Both sides must share the key.
func (s *Switch) SetAuthKey(key []byte) {
	s.authKey = append([]byte(nil), key...)
	if len(key) == 0 {
		s.authKey = nil
	}
}

// maxPendingReports bounds the piggyback queue; overflow drops the
// oldest report (newer observations supersede stale ones).
const maxPendingReports = 16

// QueueReport schedules a reverse-path measurement report to piggyback on
// upcoming outbound encapsulated packets (one per packet, FIFO, bounded).
func (s *Switch) QueueReport(r packet.OWDReport) {
	if s.prCount == maxPendingReports {
		s.prHead = (s.prHead + 1) % maxPendingReports // drop oldest in place
		s.prCount--
	}
	s.pendingReports[(s.prHead+s.prCount)%maxPendingReports] = r
	s.prCount++
}

// popReport dequeues the oldest pending report.
func (s *Switch) popReport() packet.OWDReport {
	r := s.pendingReports[s.prHead]
	s.prHead = (s.prHead + 1) % maxPendingReports
	s.prCount--
	return r
}

// PendingReports returns the number of queued piggyback reports.
func (s *Switch) PendingReports() int { return s.prCount }

// SendToPeer runs the sender program on an inner packet: pick a tunnel,
// encapsulate, timestamp, inject. Exposed for hosts colocated with the
// switch; transit host traffic goes through the node handler. inner is
// borrowed: its bytes are serialized into a pooled buffer during the
// call, so the caller may reuse the slice immediately.
func (s *Switch) SendToPeer(inner []byte) {
	s.encapAndSend(inner, 0)
}

// SendOnTunnel encapsulates inner onto a specific tunnel, bypassing the
// selector. The measurement prober uses it to exercise every exposed
// path at a fixed rate regardless of where data traffic currently flows.
func (s *Switch) SendOnTunnel(tun *Tunnel, inner []byte) {
	before := tun.Stats.Sent
	s.encapOn(tun, inner, 0, true)
	// Only count the probe if the encap actually went out (encapOn can
	// drop on a serialization failure without touching Sent).
	tun.Stats.ProbeSent += tun.Stats.Sent - before
}

// handle is the endpoint's local-delivery hook: every packet addressed to
// one of the endpoint's owned addresses lands here.
func (s *Switch) handle(data []byte) {
	if s.isTangoPacket(data) {
		s.receiverProgram(data)
		return
	}
	s.Stats.NotTango++
	s.DeliverLocal(data)
}

// HandleHostTraffic is the sender-side entry for traffic originated by
// local hosts: if the destination belongs to the cooperating edge, it is
// tunnelled; otherwise it is forwarded untouched (ordinary BGP routing).
func (s *Switch) HandleHostTraffic(data []byte) {
	dst, ok := innerDst(data)
	if !ok {
		s.badPacket()
		return
	}
	if _, _, tango := s.peerHosts.Lookup(dst); tango {
		s.encapAndSend(data, 0)
		return
	}
	if ttl, _, ok := s.relayHosts.Lookup(dst); ok {
		s.encapAndSend(data, ttl)
		return
	}
	s.ep.Inject(data)
}

func innerDst(data []byte) (netip.Addr, bool) {
	if len(data) < 1 {
		return netip.Addr{}, false
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 40 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom16([16]byte(data[24:40])), true
	case 4:
		if len(data) < 20 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom4([4]byte(data[16:20])), true
	}
	return netip.Addr{}, false
}

// encapAndSend is the sender eBPF program. A relayTTL above zero tags the
// encapsulation for overlay relaying with that hop budget.
func (s *Switch) encapAndSend(inner []byte, relayTTL uint8) {
	var tun *Tunnel
	if s.selector != nil {
		tun = s.selector(inner)
	} else if len(s.tunnels) > 0 {
		tun = s.tunnels[0]
	}
	s.encapOn(tun, inner, relayTTL, false)
}

// encapOn encapsulates inner onto tun. probe marks measurement traffic
// (SendOnTunnel) as opposed to selector-steered data, for the per-tunnel
// probe/data counters.
func (s *Switch) encapOn(tun *Tunnel, inner []byte, relayTTL uint8, probe bool) {
	var t0 time.Time
	if s.sobs != nil {
		t0 = time.Now()
	}
	if tun == nil {
		s.Stats.NoTunnel++
		if s.sobs != nil {
			s.sobs.noTunnel.Inc()
		}
		return
	}
	flags := uint8(packet.TangoFlagSeq | packet.TangoFlagTimestamp)
	if len(inner) > 0 && inner[0]>>4 == 6 {
		flags |= packet.TangoFlagInner6
	}
	hdr := packet.Tango{
		Flags:    flags,
		PathID:   tun.PathID,
		Seq:      tun.nextSeq(),
		SendTime: s.clock.Now(),
	}
	if relayTTL > 0 {
		hdr.ExtFlags |= packet.TangoExtRelay
		hdr.RelayTTL = relayTTL
	}
	if s.prCount > 0 {
		hdr.Flags |= packet.TangoFlagReport
		hdr.Report = s.popReport()
		s.Stats.ReportsSent++
		if s.sobs != nil {
			s.sobs.repSent.Inc()
		}
	}
	if s.authKey != nil {
		hdr.ExtFlags |= packet.TangoExtAuth
	}
	udp := packet.UDP{SrcPort: tun.SrcPort, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(tun.LocalAddr, tun.RemoteAddr)
	ip := packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   64,
		Src:        tun.LocalAddr,
		Dst:        tun.RemoteAddr,
	}
	pay := packet.Payload(inner)
	// Serialize straight into a leased pooled buffer and hand it to the
	// network with ownership — the steady-state sender program touches no
	// allocator (the paper's eBPF program builds the encapsulation in a
	// fixed per-packet buffer the same way).
	pb := s.pool.Get()
	buf := &pb.SerializeBuffer
	if s.authKey != nil {
		// Two-phase build: serialize the Tango datagram, sign it in
		// place, then wrap it in UDP (whose checksum must cover the
		// final tag) and IP.
		err := pay.SerializeTo(buf)
		if err == nil {
			err = hdr.SerializeTo(buf)
		}
		if err == nil {
			err = packet.SignTangoDatagram(s.authKey, buf.Bytes())
		}
		if err == nil {
			err = udp.SerializeTo(buf)
		}
		if err == nil {
			err = ip.SerializeTo(buf)
		}
		if err != nil {
			s.Stats.BadPacket++
			if s.sobs != nil {
				s.sobs.badPacket.Inc()
			}
			pb.Release()
			return
		}
	} else {
		// Serialize bottom-up with direct method calls: passing the
		// layer locals through the SerializableLayer interface would box
		// each one onto the heap, and this is the per-packet hot path.
		// The leased buffer arrives cleared, like the auth branch assumes.
		err := pay.SerializeTo(buf)
		if err == nil {
			err = hdr.SerializeTo(buf)
		}
		if err == nil {
			err = udp.SerializeTo(buf)
		}
		if err == nil {
			err = ip.SerializeTo(buf)
		}
		if err != nil {
			s.Stats.BadPacket++
			if s.sobs != nil {
				s.sobs.badPacket.Inc()
			}
			pb.Release()
			return
		}
	}
	tun.Stats.Sent++
	s.Stats.Encapped++
	s.ep.InjectBuf(pb)
	if so := s.sobs; so != nil {
		so.encapped.Inc()
		so.tx[tun.PathID].Inc()
		if probe {
			so.probe[tun.PathID].Inc()
		} else {
			so.data[tun.PathID].Inc()
		}
		so.encapNs.Observe(int64(time.Since(t0)))
	}
}

// isTangoPacket performs the cheap match an eBPF program would do before
// full parsing: IPv6, UDP, Tango destination port.
func (s *Switch) isTangoPacket(data []byte) bool {
	if len(data) < 48 || data[0]>>4 != 6 {
		return false
	}
	if data[6] != packet.ProtoUDP {
		return false
	}
	dport := uint16(data[42])<<8 | uint16(data[43])
	return dport == packet.TangoPort
}

// receiverProgram is the receiver eBPF program: parse, measure, decap,
// deliver.
func (s *Switch) receiverProgram(data []byte) {
	var t0 time.Time
	if s.sobs != nil {
		t0 = time.Now()
	}
	if err := s.decIP.DecodeFromBytes(data); err != nil {
		s.badPacket()
		return
	}
	if err := s.decUDP.DecodeFromBytes(s.decIP.LayerPayload()); err != nil {
		s.badPacket()
		return
	}
	if err := s.decUDP.VerifyChecksum(s.decIP.Src, s.decIP.Dst, s.decIP.LayerPayload()); err != nil {
		s.badPacket()
		return
	}
	if err := s.decTng.DecodeFromBytes(s.decUDP.LayerPayload()); err != nil {
		s.badPacket()
		return
	}
	if s.authKey != nil && !packet.VerifyTangoDatagram(s.authKey, s.decUDP.LayerPayload()) {
		// Unsigned or tampered: reject before it can pollute the
		// measurement engine.
		s.Stats.AuthFail++
		if s.sobs != nil {
			s.sobs.authFail.Inc()
		}
		return
	}
	hdr := &s.decTng
	if hdr.Flags&packet.TangoFlagTimestamp != 0 && s.OnMeasure != nil {
		owd := time.Duration(s.clock.Now() - hdr.SendTime)
		s.OnMeasure(Measurement{
			At:     s.ep.Now(),
			PathID: hdr.PathID,
			OWD:    owd,
			Seq:    hdr.Seq,
			Size:   len(data),
		})
	}
	if hdr.Flags&packet.TangoFlagReport != 0 {
		s.Stats.ReportsRecvd++
		if s.sobs != nil {
			s.sobs.repRecvd.Inc()
		}
		if s.OnReport != nil {
			s.OnReport(hdr.Report)
		}
	}
	s.Stats.Decapped++
	if so := s.sobs; so != nil {
		so.decapped.Inc()
		so.rxCounter(hdr.PathID).Inc()
	}
	inner := hdr.LayerPayload()
	if len(inner) == 0 {
		if so := s.sobs; so != nil {
			so.decapNs.Observe(int64(time.Since(t0)))
		}
		return
	}
	// Relay program: a tagged packet whose inner destination has a next
	// overlay segment here is re-encapsulated, not delivered. The
	// measurement above already ran, so each segment's monitor sees
	// relayed traffic like any other.
	if hdr.ExtFlags&packet.TangoExtRelay != 0 && s.relay != nil {
		if s.relay.forward(inner, hdr.RelayTTL) {
			s.Stats.Relayed++
			if so := s.sobs; so != nil {
				so.relayed.Inc()
				so.decapNs.Observe(int64(time.Since(t0)))
			}
			return
		}
	}
	// inner is a borrowed view into the arriving packet's pooled buffer
	// (released by the node once the handler chain returns); DeliverLocal
	// consumers copy if they retain. No per-packet copy here.
	s.DeliverLocal(inner)
	if so := s.sobs; so != nil {
		so.decapNs.Observe(int64(time.Since(t0)))
	}
}

// badPacket counts a receiver-side parse/verify failure.
func (s *Switch) badPacket() {
	s.Stats.BadPacket++
	if s.sobs != nil {
		s.sobs.badPacket.Inc()
	}
}
