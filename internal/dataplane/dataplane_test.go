package dataplane

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/simnet"
)

// testPair wires two switches over two disjoint router paths with
// distinct delays:
//
//	swA ── r1 ── swB   (fast path, tunnels *1)
//	  └─── r2 ───┘     (slow path, tunnels *2)
type testPair struct {
	w        *simnet.Network
	swA, swB *Switch
	r1, r2   *simnet.Node
}

const (
	fastDelay = 10 * time.Millisecond
	slowDelay = 30 * time.Millisecond
)

func newTestPair(t *testing.T, offsetA, offsetB time.Duration) *testPair {
	t.Helper()
	w := simnet.New(11)
	na := w.AddNode("swA", offsetA)
	nb := w.AddNode("swB", offsetB)
	r1 := w.AddNode("r1", 0)
	r2 := w.AddNode("r2", 0)
	fast := simnet.LinkConfig{Delay: simnet.FixedDelay(fastDelay / 2)}
	slow := simnet.LinkConfig{Delay: simnet.FixedDelay(slowDelay / 2)}
	w.Connect(na, r1, fast, fast)
	w.Connect(r1, nb, fast, fast)
	w.Connect(na, r2, slow, slow)
	w.Connect(r2, nb, slow, slow)

	// Tunnel endpoint prefixes: b1/b2 at B, a1/a2 at A; path 1 via r1,
	// path 2 via r2.
	route := func(n *simnet.Node, pfx string, port int) {
		n.SetRoute(addr.MustParsePrefix(pfx), n.Ports()[port])
	}
	// swA ports: 0->r1, 1->r2. swB ports: 0->r1, 1->r2.
	route(na, "2001:db8:b1::/48", 0)
	route(na, "2001:db8:b2::/48", 1)
	route(nb, "2001:db8:a1::/48", 0)
	route(nb, "2001:db8:a2::/48", 1)
	// r1 ports: 0->swA, 1->swB; r2 same.
	for _, r := range []*simnet.Node{r1, r2} {
		route(r, "2001:db8:b1::/48", 1)
		route(r, "2001:db8:b2::/48", 1)
		route(r, "2001:db8:a1::/48", 0)
		route(r, "2001:db8:a2::/48", 0)
	}

	swA := NewSwitch(na)
	swB := NewSwitch(nb)
	mk := func(id uint8, name, local, remote string, sport uint16) *Tunnel {
		return &Tunnel{PathID: id, Name: name,
			LocalAddr:  netip.MustParseAddr(local),
			RemoteAddr: netip.MustParseAddr(remote),
			SrcPort:    sport,
		}
	}
	swA.AddTunnel(mk(1, "fast", "2001:db8:a1::1", "2001:db8:b1::1", 40001))
	swA.AddTunnel(mk(2, "slow", "2001:db8:a2::1", "2001:db8:b2::1", 40002))
	swB.AddTunnel(mk(1, "fast", "2001:db8:b1::1", "2001:db8:a1::1", 40001))
	swB.AddTunnel(mk(2, "slow", "2001:db8:b2::1", "2001:db8:a2::1", 40002))
	swA.AddPeerPrefix(addr.MustParsePrefix("2001:db8:bb::/48"))
	swB.AddPeerPrefix(addr.MustParsePrefix("2001:db8:aa::/48"))
	return &testPair{w: w, swA: swA, swB: swB, r1: r1, r2: r2}
}

// innerPkt builds a host-level packet from A's host space to B's.
func innerPkt(t *testing.T, payload string) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte(payload))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestEncapDecapRoundTrip(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	var delivered [][]byte
	// DeliverLocal borrows its slice; copy to retain past the callback.
	tp.swB.DeliverLocal = func(inner []byte) { delivered = append(delivered, append([]byte(nil), inner...)) }
	var meas []Measurement
	tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }

	orig := innerPkt(t, "hello through the tunnel")
	tp.swA.HandleHostTraffic(append([]byte{}, orig...))
	tp.w.Run(time.Second)

	if len(delivered) != 1 {
		t.Fatalf("delivered %d inner packets", len(delivered))
	}
	if !bytes.Equal(delivered[0], orig) {
		t.Fatal("inner packet corrupted through encapsulation")
	}
	if len(meas) != 1 {
		t.Fatalf("measurements = %d", len(meas))
	}
	m := meas[0]
	if m.PathID != 1 {
		t.Fatalf("default tunnel = %d, want first registered", m.PathID)
	}
	if m.OWD != fastDelay {
		t.Fatalf("OWD = %v, want %v", m.OWD, fastDelay)
	}
	if tp.swA.Stats.Encapped != 1 || tp.swB.Stats.Decapped != 1 {
		t.Fatalf("stats: %+v / %+v", tp.swA.Stats, tp.swB.Stats)
	}
}

func TestSelectorRoutesPerPath(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	var meas []Measurement
	tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }

	// Route odd payload sizes via slow path.
	tun1, _ := tp.swA.Tunnel(1)
	tun2, _ := tp.swA.Tunnel(2)
	tp.swA.SetSelector(func(inner []byte) *Tunnel {
		if len(inner)%2 == 1 {
			return tun2
		}
		return tun1
	})

	tp.swA.HandleHostTraffic(innerPkt(t, "even")) // 4 bytes payload -> even total? compute below
	tp.swA.HandleHostTraffic(innerPkt(t, "odd!!"))
	tp.w.Run(time.Second)

	if len(meas) != 2 {
		t.Fatalf("measurements = %d", len(meas))
	}
	// innerPkt("even") = 40+8+4 = 52 (even -> path1, OWD fast)
	// innerPkt("odd!!") = 40+8+5 = 53 (odd -> path2, OWD slow)
	byPath := map[uint8]time.Duration{}
	for _, m := range meas {
		byPath[m.PathID] = m.OWD
	}
	if byPath[1] != fastDelay || byPath[2] != slowDelay {
		t.Fatalf("OWDs = %v", byPath)
	}
}

func TestOWDIncludesClockOffsetConstant(t *testing.T) {
	// Receiver clock is 2s ahead: raw OWDs shift by exactly +2s on
	// every path, so the *difference* between paths is unchanged — the
	// paper's core measurement argument.
	offsets := []time.Duration{0, 2 * time.Second, -3 * time.Second}
	var diffs []time.Duration
	for _, off := range offsets {
		tp := newTestPair(t, 0, off)
		var meas []Measurement
		tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }
		tun1, _ := tp.swA.Tunnel(1)
		tun2, _ := tp.swA.Tunnel(2)
		sel := 0
		tp.swA.SetSelector(func([]byte) *Tunnel {
			sel++
			if sel%2 == 0 {
				return tun2
			}
			return tun1
		})
		tp.swA.HandleHostTraffic(innerPkt(t, "a"))
		tp.swA.HandleHostTraffic(innerPkt(t, "b"))
		tp.w.Run(time.Second)
		if len(meas) != 2 {
			t.Fatalf("meas = %d", len(meas))
		}
		owd := map[uint8]time.Duration{}
		for _, m := range meas {
			owd[m.PathID] = m.OWD
		}
		if off != 0 && owd[1] == fastDelay {
			t.Fatal("clock offset did not distort raw OWD (unrealistic)")
		}
		diffs = append(diffs, owd[2]-owd[1])
	}
	for _, d := range diffs {
		if d != slowDelay-fastDelay {
			t.Fatalf("path OWD difference %v varies with clock offset, want constant %v",
				diffs, slowDelay-fastDelay)
		}
	}
}

func TestSequenceNumbersPerTunnel(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	var seqs1, seqs2 []uint32
	tp.swB.OnMeasure = func(m Measurement) {
		if m.PathID == 1 {
			seqs1 = append(seqs1, m.Seq)
		} else {
			seqs2 = append(seqs2, m.Seq)
		}
	}
	tun1, _ := tp.swA.Tunnel(1)
	tun2, _ := tp.swA.Tunnel(2)
	n := 0
	tp.swA.SetSelector(func([]byte) *Tunnel {
		n++
		if n%3 == 0 {
			return tun2
		}
		return tun1
	})
	for i := 0; i < 9; i++ {
		tp.swA.HandleHostTraffic(innerPkt(t, "x"))
	}
	tp.w.Run(time.Second)
	if len(seqs1) != 6 || len(seqs2) != 3 {
		t.Fatalf("per-path counts: %d/%d", len(seqs1), len(seqs2))
	}
	for i, s := range seqs1 {
		if s != uint32(i) {
			t.Fatalf("tunnel1 seqs = %v", seqs1)
		}
	}
	for i, s := range seqs2 {
		if s != uint32(i) {
			t.Fatalf("tunnel2 seqs = %v", seqs2)
		}
	}
	if tun1.Stats.Sent != 6 || tun2.Stats.Sent != 3 {
		t.Fatal("tunnel send stats wrong")
	}
}

func TestReportPiggyback(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	var got []packet.OWDReport
	tp.swB.OnReport = func(r packet.OWDReport) { got = append(got, r) }

	rep := packet.OWDReport{PathID: 2, SampleCount: 100, MeanOWDNano: 30_000_000}
	tp.swA.QueueReport(rep)
	tp.swA.HandleHostTraffic(innerPkt(t, "carries report"))
	tp.swA.HandleHostTraffic(innerPkt(t, "no report"))
	tp.w.Run(time.Second)

	if len(got) != 1 {
		t.Fatalf("reports = %d, want exactly 1 (consumed after one packet)", len(got))
	}
	if got[0] != rep {
		t.Fatalf("report = %+v", got[0])
	}
	if tp.swA.Stats.ReportsSent != 1 || tp.swB.Stats.ReportsRecvd != 1 {
		t.Fatal("report stats wrong")
	}
}

func TestNonTangoTrafficBypasses(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	// Traffic to a non-peer destination is injected unmodified.
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("elsewhere"))
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr("2001:db8:cc::1")}
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len())
	copy(raw, buf.Bytes())
	tp.swA.HandleHostTraffic(raw)
	tp.w.Run(time.Second)
	if tp.swA.Stats.Encapped != 0 {
		t.Fatal("non-peer traffic was encapsulated")
	}
	// No route for cc:: -> dropped at node with NoRoute.
	if tp.swA.Node().Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", tp.swA.Node().Stats.NoRoute)
	}
}

func TestNoTunnelDrop(t *testing.T) {
	w := simnet.New(1)
	n := w.AddNode("lonely", 0)
	sw := NewSwitch(n)
	sw.AddPeerPrefix(addr.MustParsePrefix("2001:db8:bb::/48"))
	sw.HandleHostTraffic(innerPkt(t, "void"))
	if sw.Stats.NoTunnel != 1 {
		t.Fatalf("NoTunnel = %d", sw.Stats.NoTunnel)
	}
	// Garbage input.
	sw.HandleHostTraffic([]byte{0x00})
	if sw.Stats.BadPacket != 1 {
		t.Fatalf("BadPacket = %d", sw.Stats.BadPacket)
	}
}

func TestRemoveTunnel(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	tp.swA.RemoveTunnel(1)
	if len(tp.swA.Tunnels()) != 1 {
		t.Fatal("tunnel not removed")
	}
	if _, ok := tp.swA.Tunnel(1); ok {
		t.Fatal("removed tunnel still indexed")
	}
	tp.swA.RemoveTunnel(99) // no-op
	var meas []Measurement
	tp.swB.OnMeasure = func(m Measurement) { meas = append(meas, m) }
	tp.swA.HandleHostTraffic(innerPkt(t, "x"))
	tp.w.Run(time.Second)
	if len(meas) != 1 || meas[0].PathID != 2 {
		t.Fatalf("traffic after removal: %+v", meas)
	}
}

func TestDuplicateTunnelPanics(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate path id did not panic")
		}
	}()
	tp.swA.AddTunnel(&Tunnel{PathID: 1})
}

func TestBidirectionalIndependence(t *testing.T) {
	// Both directions measure independently — B->A traffic over path 2
	// does not disturb A->B accounting.
	tp := newTestPair(t, 0, 0)
	var measA, measB []Measurement
	tp.swA.OnMeasure = func(m Measurement) { measA = append(measA, m) }
	tp.swB.OnMeasure = func(m Measurement) { measB = append(measB, m) }
	tun2B, _ := tp.swB.Tunnel(2)
	tp.swB.SetSelector(func([]byte) *Tunnel { return tun2B })

	tp.swA.HandleHostTraffic(innerPkt(t, "a->b"))
	// Reverse-direction inner packet.
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("b->a"))
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:bb::1"),
		Dst: netip.MustParseAddr("2001:db8:aa::1")}
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len())
	copy(raw, buf.Bytes())
	tp.swB.HandleHostTraffic(raw)
	tp.w.Run(time.Second)

	if len(measA) != 1 || measA[0].PathID != 2 || measA[0].OWD != slowDelay {
		t.Fatalf("B->A measurement: %+v", measA)
	}
	if len(measB) != 1 || measB[0].PathID != 1 || measB[0].OWD != fastDelay {
		t.Fatalf("A->B measurement: %+v", measB)
	}
}

func TestQueueReportRingFIFO(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	for i := 0; i < 5; i++ {
		tp.swA.QueueReport(packet.OWDReport{PathID: 1, SampleCount: uint16(i)})
	}
	if got := tp.swA.PendingReports(); got != 5 {
		t.Fatalf("PendingReports = %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if r := tp.swA.popReport(); r.SampleCount != uint16(i) {
			t.Fatalf("pop %d = %+v, want SampleCount %d", i, r, i)
		}
	}
	if got := tp.swA.PendingReports(); got != 0 {
		t.Fatalf("PendingReports after drain = %d", got)
	}
}

func TestQueueReportOverflowDropsOldest(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	// Fill past capacity: the ring keeps the newest maxPendingReports.
	for i := 0; i < maxPendingReports+4; i++ {
		tp.swA.QueueReport(packet.OWDReport{PathID: 1, SampleCount: uint16(i)})
	}
	if got := tp.swA.PendingReports(); got != maxPendingReports {
		t.Fatalf("PendingReports = %d, want %d", got, maxPendingReports)
	}
	for i := 0; i < maxPendingReports; i++ {
		want := uint16(i + 4) // the 4 oldest were dropped
		if r := tp.swA.popReport(); r.SampleCount != want {
			t.Fatalf("pop %d = SampleCount %d, want %d", i, r.SampleCount, want)
		}
	}
}

func TestQueueReportReusesStorage(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	// Wrap the ring many times over: enqueueing must reuse the fixed
	// in-struct array rather than growing a slice.
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 3*maxPendingReports; i++ {
			tp.swA.QueueReport(packet.OWDReport{PathID: 2, SampleCount: uint16(i)})
		}
		for tp.swA.PendingReports() > 0 {
			tp.swA.popReport()
		}
	})
	if allocs != 0 {
		t.Fatalf("QueueReport allocated %.1f times per run, want 0", allocs)
	}
}

func TestRemoveTunnelReleasesLocalAddr(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	local := netip.MustParseAddr("2001:db8:a1::1")
	if !tp.swA.Node().OwnsAddr(local) {
		t.Fatal("tunnel local address not owned after AddTunnel")
	}
	tp.swA.RemoveTunnel(1)
	if tp.swA.Node().OwnsAddr(local) {
		t.Fatal("tunnel local address still owned after RemoveTunnel")
	}

	// A Tango packet addressed to the withdrawn endpoint must no longer
	// reach A's receiver program: swB still has its side of path 1, so
	// send on it and watch the packet die in the network instead.
	var delivered int
	tp.swA.DeliverLocal = func([]byte) { delivered++ }
	tun1B, _ := tp.swB.Tunnel(1)
	tp.swB.SendOnTunnel(tun1B, innerPkt(t, "to a dead endpoint"))
	tp.w.Run(time.Second)
	if delivered != 0 || tp.swA.Stats.Decapped != 0 {
		t.Fatalf("packet to removed tunnel endpoint was delivered (delivered=%d, decapped=%d)",
			delivered, tp.swA.Stats.Decapped)
	}
	if tp.swA.Node().Stats.NoRoute == 0 {
		t.Fatal("expected the packet to be dropped with NoRoute at the destination node")
	}
}

func TestRemoveTunnelSharedAddrRefcount(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	shared := netip.MustParseAddr("2001:db8:a2::1")
	// A second tunnel claims the same local endpoint (core's provision
	// shares the switch address across all tunnels of a site).
	tp.swA.AddTunnel(&Tunnel{PathID: 3, Name: "alt",
		LocalAddr:  shared,
		RemoteAddr: netip.MustParseAddr("2001:db8:b2::1"),
		SrcPort:    40003,
	})
	tp.swA.RemoveTunnel(3)
	if !tp.swA.Node().OwnsAddr(shared) {
		t.Fatal("shared local address released while another tunnel still uses it")
	}
	tp.swA.RemoveTunnel(2)
	if tp.swA.Node().OwnsAddr(shared) {
		t.Fatal("shared local address still owned after last claim removed")
	}
}
