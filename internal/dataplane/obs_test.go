package dataplane

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/obs"
)

// TestSwitchObsCountersMatchStats sends traffic both ways through the
// instrumented pair and checks that the registered counters agree with
// the switches' own Stats — the instruments must count the same events,
// just exposed through the registry.
func TestSwitchObsCountersMatchStats(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	reg := obs.NewRegistry()
	tp.swA.Instrument(reg, "a")
	tp.swB.Instrument(reg, "b")

	for i := 0; i < 5; i++ {
		tp.swA.HandleHostTraffic(innerPkt(t, "ping"))
	}
	tp.w.Run(time.Second)

	snap := reg.Snapshot()
	if got := snap[`tango_dataplane_encapped_total{site="a"}`]; got != float64(tp.swA.Stats.Encapped) {
		t.Fatalf("encap counter %v != Stats.Encapped %d", got, tp.swA.Stats.Encapped)
	}
	if got := snap[`tango_dataplane_decapped_total{site="b"}`]; got != float64(tp.swB.Stats.Decapped) {
		t.Fatalf("decap counter %v != Stats.Decapped %d", got, tp.swB.Stats.Decapped)
	}
	if got := snap[`tango_tunnel_tx_total{path="1",site="a"}`]; got != 5 {
		t.Fatalf("tunnel tx counter %v, want 5", got)
	}
	if got := snap[`tango_tunnel_data_total{path="1",site="a"}`]; got != 5 {
		t.Fatalf("tunnel data counter %v, want 5", got)
	}
	if got := snap[`tango_tunnel_probe_total{path="1",site="a"}`]; got != 0 {
		t.Fatalf("tunnel probe counter %v, want 0 (no probes sent)", got)
	}
	if got := snap[`tango_tunnel_rx_total{path="1",site="b"}`]; got != 5 {
		t.Fatalf("tunnel rx counter %v, want 5", got)
	}
	// Latency histograms observed one value per packet.
	if got := snap[`tango_dataplane_encap_ns_count{site="a"}`]; got != 5 {
		t.Fatalf("encap latency observations %v, want 5", got)
	}
	if got := snap[`tango_dataplane_decap_ns_count{site="b"}`]; got != 5 {
		t.Fatalf("decap latency observations %v, want 5", got)
	}
}

// TestSwitchObsProbeVsData distinguishes the probe counter (SendOnTunnel,
// empty inner) from the data counter.
func TestSwitchObsProbeVsData(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	reg := obs.NewRegistry()
	tp.swA.Instrument(reg, "a")

	tun, _ := tp.swA.Tunnel(2)
	for i := 0; i < 3; i++ {
		tp.swA.SendOnTunnel(tun, nil)
	}
	tp.swA.HandleHostTraffic(innerPkt(t, "data"))
	tp.w.Run(time.Second)

	snap := reg.Snapshot()
	if got := snap[`tango_tunnel_probe_total{path="2",site="a"}`]; got != 3 {
		t.Fatalf("probe counter %v, want 3", got)
	}
	if got := snap[`tango_tunnel_tx_total{path="2",site="a"}`]; got != 3 {
		t.Fatalf("tunnel 2 tx counter %v, want 3", got)
	}
	if got := snap[`tango_tunnel_data_total{path="1",site="a"}`]; got != 1 {
		t.Fatalf("data counter %v, want 1", got)
	}
}

// TestSwitchObsBadPacketCounter feeds garbage to the sender program and
// checks the bad-packet counter tracks Stats.BadPacket.
func TestSwitchObsBadPacketCounter(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	reg := obs.NewRegistry()
	tp.swA.Instrument(reg, "a")

	tp.swA.HandleHostTraffic([]byte{0x00}) // unparsable inner packet
	if tp.swA.Stats.BadPacket != 1 {
		t.Fatalf("Stats.BadPacket = %d, want 1", tp.swA.Stats.BadPacket)
	}
	snap := reg.Snapshot()
	if got := snap[`tango_dataplane_bad_packets_total{site="a"}`]; got != 1 {
		t.Fatalf("bad packet counter %v != Stats.BadPacket %d", got, tp.swA.Stats.BadPacket)
	}
}

// TestAddTunnelAfterInstrument checks tunnels registered after
// instrumentation still get per-tunnel counters.
func TestAddTunnelAfterInstrument(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	reg := obs.NewRegistry()
	tp.swA.Instrument(reg, "a")

	tun := &Tunnel{PathID: 3, Name: "late",
		LocalAddr:  netip.MustParseAddr("2001:db8:a1::99"),
		RemoteAddr: netip.MustParseAddr("2001:db8:b1::99"),
		SrcPort:    40003,
	}
	tp.swA.AddTunnel(tun)
	tp.swA.SendOnTunnel(tun, nil)
	tp.w.Run(100 * time.Millisecond)

	if got := reg.Snapshot()[`tango_tunnel_tx_total{path="3",site="a"}`]; got != 1 {
		t.Fatalf("late tunnel tx counter %v, want 1", got)
	}
}
