package dataplane

import (
	"tango/internal/addr"
)

// Relay is the intra-site hand-off program that composes pairwise Tango
// deployments into an overlay (§6, "from Tango of 2 to Tango of N"). A
// site that participates in several pairs runs one border switch per
// pair; the relay connects them: a Tango packet arriving on one pair's
// switch carrying the relay extension whose inner destination belongs to
// a *remote* site is re-encapsulated onto the next overlay segment
// through the co-located egress switch, instead of being delivered to
// local hosts.
//
// The forwarding decision is a longest-prefix match on the inner
// destination against a statically configured table — the same
// "cooperating endpoints can configure this table statically" argument
// the paper makes for the sender's peer-prefix classifier. Each segment
// keeps its own path IDs, sequence numbers, and timestamps: the egress
// switch's selector (driven by that pair's controller) picks the
// segment's current best wide-area path, so per-segment Tango steering
// composes with overlay routing. The relay TTL bounds the hop count; a
// packet whose budget is exhausted is dropped rather than looped.
type Relay struct {
	next addr.Trie[*Switch]

	Stats struct {
		// Forwarded counts packets re-encapsulated onto a next segment.
		Forwarded uint64
		// TTLExpired counts packets dropped by the loop guard.
		TTLExpired uint64
	}
}

// NewRelay returns an empty relay.
func NewRelay() *Relay { return &Relay{} }

// AddRoute maps an inner destination prefix to the egress switch whose
// pair carries the next overlay segment toward it.
func (r *Relay) AddRoute(p addr.Prefix, egress *Switch) { r.next.Insert(p, egress) }

// Attach installs the relay on an ingress switch: relay-tagged packets
// arriving there consult the table before local delivery.
func (r *Relay) Attach(sw *Switch) { sw.relay = r }

// forward runs the relay program on a decapsulated inner packet carrying
// a relay tag with the given TTL. It reports whether the packet was
// consumed (forwarded or dropped); false means the inner destination has
// no next segment here — the overlay route ends at this site and the
// packet belongs to local delivery. inner is borrowed from the arriving
// packet's buffer: re-encapsulation serializes it into a freshly leased
// buffer before the call returns, so no bytes outlive the borrow.
func (r *Relay) forward(inner []byte, ttl uint8) bool {
	dst, ok := innerDst(inner)
	if !ok {
		return false
	}
	egress, _, ok := r.next.Lookup(dst)
	if !ok {
		return false
	}
	if ttl <= 1 {
		r.Stats.TTLExpired++
		return true
	}
	egress.encapAndSend(inner, ttl-1)
	r.Stats.Forwarded++
	return true
}
