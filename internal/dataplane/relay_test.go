package dataplane

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/simnet"
)

// relayChain wires the minimal overlay: site A, a relay site with an
// ingress and an egress switch (the intra-site hand-off), and site C.
//
//	swA ──(segment 1)── swIn │ relay │ swOut ──(segment 2)── swC
type relayChain struct {
	w                     *simnet.Network
	swA, swIn, swOut, swC *Switch
	relay                 *Relay
}

const (
	seg1Delay = 10 * time.Millisecond
	seg2Delay = 25 * time.Millisecond
)

func newRelayChain(t *testing.T) *relayChain {
	t.Helper()
	w := simnet.New(7)
	na := w.AddNode("siteA", 0)
	nin := w.AddNode("relayIn", 0)
	nout := w.AddNode("relayOut", 0)
	nc := w.AddNode("siteC", 0)
	w.Connect(na, nin,
		simnet.LinkConfig{Delay: simnet.FixedDelay(seg1Delay)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(seg1Delay)})
	w.Connect(nout, nc,
		simnet.LinkConfig{Delay: simnet.FixedDelay(seg2Delay)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(seg2Delay)})

	na.SetRoute(addr.MustParsePrefix("2001:db8:e1::/48"), na.Ports()[0])
	nin.SetRoute(addr.MustParsePrefix("2001:db8:a1::/48"), nin.Ports()[0])
	nout.SetRoute(addr.MustParsePrefix("2001:db8:c1::/48"), nout.Ports()[0])
	nc.SetRoute(addr.MustParsePrefix("2001:db8:e2::/48"), nc.Ports()[0])

	c := &relayChain{w: w, relay: NewRelay()}
	c.swA = NewSwitch(na)
	c.swIn = NewSwitch(nin)
	c.swOut = NewSwitch(nout)
	c.swC = NewSwitch(nc)
	c.swA.AddTunnel(&Tunnel{PathID: 1, Name: "seg1",
		LocalAddr:  netip.MustParseAddr("2001:db8:a1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:e1::1"), SrcPort: 41001})
	c.swIn.AddTunnel(&Tunnel{PathID: 1, Name: "seg1-back",
		LocalAddr:  netip.MustParseAddr("2001:db8:e1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:a1::1"), SrcPort: 41001})
	c.swOut.AddTunnel(&Tunnel{PathID: 3, Name: "seg2",
		LocalAddr:  netip.MustParseAddr("2001:db8:e2::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:c1::1"), SrcPort: 41002})
	c.swC.AddTunnel(&Tunnel{PathID: 3, Name: "seg2-back",
		LocalAddr:  netip.MustParseAddr("2001:db8:c1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:e2::1"), SrcPort: 41002})

	// Site C's hosts are two overlay segments from A.
	cHosts := addr.MustParsePrefix("2001:db8:cc::/48")
	c.swA.AddRelayPrefix(cHosts, 2)
	c.relay.AddRoute(cHosts, c.swOut)
	c.relay.Attach(c.swIn)
	return c
}

func relayInner(t *testing.T, dst string, payload string) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte(payload))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr(dst)}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// TestRelayTagOnWire checks the sender stamps the relay extension for
// relay prefixes and that the tag parses back, with and without a
// coexisting report block and auth tag.
func TestRelayTagOnWire(t *testing.T) {
	hdr := packet.Tango{
		Flags:    packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagReport,
		ExtFlags: packet.TangoExtRelay,
		PathID:   5,
		Seq:      99,
		SendTime: 1234,
		RelayTTL: 3,
		Report:   packet.OWDReport{PathID: 2, SampleCount: 7, MeanOWDNano: 1e6, JitterNano: 2e5},
	}
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("x"))
	if err := packet.SerializeLayers(buf, &hdr, &pay); err != nil {
		t.Fatal(err)
	}
	var dec packet.Tango
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.ExtFlags&packet.TangoExtRelay == 0 || dec.RelayTTL != 3 {
		t.Fatalf("relay tag lost: ext=%#x ttl=%d", dec.ExtFlags, dec.RelayTTL)
	}
	if dec.Report.SampleCount != 7 || string(dec.LayerPayload()) != "x" {
		t.Fatalf("relay block corrupted neighbours: %+v", dec)
	}

	// End to end: host traffic matching a relay prefix leaves the origin
	// switch tagged with the configured TTL budget.
	c := newRelayChain(t)
	seen := map[uint8]uint8{} // pathID -> ttl observed at relay ingress
	var atIn packet.Tango
	c.swIn.ep.SetHandler(func(data []byte) {
		var ip packet.IPv6
		var udp packet.UDP
		if ip.DecodeFromBytes(data) != nil || udp.DecodeFromBytes(ip.LayerPayload()) != nil {
			t.Fatal("bad outer packet")
		}
		if err := atIn.DecodeFromBytes(udp.LayerPayload()); err != nil {
			t.Fatal(err)
		}
		seen[atIn.PathID] = atIn.RelayTTL
		if atIn.ExtFlags&packet.TangoExtRelay == 0 {
			t.Fatal("relay-prefix traffic not tagged")
		}
	})
	c.swA.HandleHostTraffic(relayInner(t, "2001:db8:cc::1", "tagme"))
	c.w.Run(time.Second)
	if seen[1] != 2 {
		t.Fatalf("relay TTL on wire = %d, want 2", seen[1])
	}
}

// TestRelayForwardReencapsulates checks the full chain: the relay
// re-encapsulates onto the next segment (fresh path ID, sequence, and
// timestamp) and the far site delivers the unmodified inner packet.
func TestRelayForwardReencapsulates(t *testing.T) {
	c := newRelayChain(t)
	var delivered [][]byte
	// DeliverLocal borrows its slice; copy to retain past the callback.
	c.swC.DeliverLocal = func(inner []byte) { delivered = append(delivered, append([]byte(nil), inner...)) }
	var measIn, measC []Measurement
	c.swIn.OnMeasure = func(m Measurement) { measIn = append(measIn, m) }
	c.swC.OnMeasure = func(m Measurement) { measC = append(measC, m) }

	orig := relayInner(t, "2001:db8:cc::1", "over the top")
	c.swA.HandleHostTraffic(append([]byte{}, orig...))
	c.w.Run(time.Second)

	if len(delivered) != 1 || !bytes.Equal(delivered[0], orig) {
		t.Fatalf("delivered=%d, inner corrupted=%v", len(delivered), len(delivered) == 1)
	}
	if c.relay.Stats.Forwarded != 1 || c.swIn.Stats.Relayed != 1 {
		t.Fatalf("relay stats: %+v, ingress: %+v", c.relay.Stats, c.swIn.Stats)
	}
	// Per-segment measurement: each segment sees its own delay under its
	// own path ID, proving re-encapsulation rather than pass-through.
	if len(measIn) != 1 || measIn[0].PathID != 1 || measIn[0].OWD != seg1Delay {
		t.Fatalf("segment 1 measurement: %+v", measIn)
	}
	if len(measC) != 1 || measC[0].PathID != 3 || measC[0].OWD != seg2Delay {
		t.Fatalf("segment 2 measurement: %+v", measC)
	}
}

// TestRelayTTLGuard checks an exhausted hop budget drops the packet at
// the relay instead of forwarding it.
func TestRelayTTLGuard(t *testing.T) {
	c := newRelayChain(t)
	c.swA.AddRelayPrefix(addr.MustParsePrefix("2001:db8:cc::/48"), 1) // overrides TTL 2
	var delivered int
	c.swC.DeliverLocal = func([]byte) { delivered++ }
	c.swIn.DeliverLocal = func([]byte) { t.Fatal("expired packet delivered locally") }

	c.swA.HandleHostTraffic(relayInner(t, "2001:db8:cc::1", "doomed"))
	c.w.Run(time.Second)

	if delivered != 0 {
		t.Fatal("TTL-expired packet reached the far site")
	}
	if c.relay.Stats.TTLExpired != 1 || c.relay.Stats.Forwarded != 0 {
		t.Fatalf("relay stats: %+v", c.relay.Stats)
	}
}

// TestRelayLoopGuard wires two relay sites that point the same prefix at
// each other; the TTL budget must terminate the loop.
func TestRelayLoopGuard(t *testing.T) {
	w := simnet.New(9)
	na := w.AddNode("siteA", 0)
	n1in, n1out := w.AddNode("r1in", 0), w.AddNode("r1out", 0)
	n2in, n2out := w.AddNode("r2in", 0), w.AddNode("r2out", 0)
	d := simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)}
	w.Connect(na, n1in, d, d)
	w.Connect(n1out, n2in, d, d)
	w.Connect(n2out, n1in, d, d)
	na.SetRoute(addr.MustParsePrefix("2001:db8:10::/48"), na.Ports()[0])
	n1out.SetRoute(addr.MustParsePrefix("2001:db8:20::/48"), n1out.Ports()[0])
	n2out.SetRoute(addr.MustParsePrefix("2001:db8:10::/48"), n2out.Ports()[0])

	swA := NewSwitch(na)
	sw1in, sw1out := NewSwitch(n1in), NewSwitch(n1out)
	sw2in, sw2out := NewSwitch(n2in), NewSwitch(n2out)
	swA.AddTunnel(&Tunnel{PathID: 1, LocalAddr: netip.MustParseAddr("2001:db8:a1::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:10::1"), SrcPort: 41001})
	sw1in.AddTunnel(&Tunnel{PathID: 1, LocalAddr: netip.MustParseAddr("2001:db8:10::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:a1::1"), SrcPort: 41001})
	sw1out.AddTunnel(&Tunnel{PathID: 1, LocalAddr: netip.MustParseAddr("2001:db8:1f::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:20::1"), SrcPort: 41002})
	sw2in.AddTunnel(&Tunnel{PathID: 1, LocalAddr: netip.MustParseAddr("2001:db8:20::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:1f::1"), SrcPort: 41002})
	sw2out.AddTunnel(&Tunnel{PathID: 1, LocalAddr: netip.MustParseAddr("2001:db8:2f::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:10::1"), SrcPort: 41003})

	// The destination prefix is local nowhere; the two relays bounce it
	// at each other.
	ghost := addr.MustParsePrefix("2001:db8:99::/48")
	r1, r2 := NewRelay(), NewRelay()
	r1.AddRoute(ghost, sw1out)
	r1.Attach(sw1in)
	r2.AddRoute(ghost, sw2out)
	r2.Attach(sw2in)
	swA.AddRelayPrefix(ghost, 5)

	swA.HandleHostTraffic(relayInner(t, "2001:db8:99::1", "looper"))
	w.Run(time.Second) // would never return if the loop were unbounded

	if r1.Stats.TTLExpired+r2.Stats.TTLExpired != 1 {
		t.Fatalf("loop not terminated by TTL: r1=%+v r2=%+v", r1.Stats, r2.Stats)
	}
	hops := r1.Stats.Forwarded + r2.Stats.Forwarded
	if hops != 4 { // TTL 5: four forwards, then the guard fires
		t.Fatalf("forwards before expiry = %d, want 4", hops)
	}
}

// TestRelayNoRouteDeliversLocally checks a tagged packet whose inner
// destination has no next segment falls through to local delivery — the
// behaviour at the overlay route's final site.
func TestRelayNoRouteDeliversLocally(t *testing.T) {
	c := newRelayChain(t)
	var atRelay int
	c.swIn.DeliverLocal = func([]byte) { atRelay++ }
	// Tag traffic for a prefix the relay has no route for.
	stray := addr.MustParsePrefix("2001:db8:dd::/48")
	c.swA.AddRelayPrefix(stray, 2)

	c.swA.HandleHostTraffic(relayInner(t, "2001:db8:dd::1", "stray"))
	c.w.Run(time.Second)

	if atRelay != 1 {
		t.Fatalf("stray tagged packet local deliveries = %d, want 1", atRelay)
	}
	if c.relay.Stats.Forwarded != 0 || c.relay.Stats.TTLExpired != 0 {
		t.Fatalf("relay stats: %+v", c.relay.Stats)
	}
}
