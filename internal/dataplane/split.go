package dataplane

import "encoding/binary"

// SplitSelector implements the §6 direction of "effective load balancing
// across multiple paths in the data plane": outbound flows are spread
// across tunnels in proportion to configurable weights, with flow
// stickiness — all packets of one inner flow ride the same tunnel, so the
// split never reorders a flow (the property ECMP gives the core, applied
// at the Tango edge under the operator's control).
//
// Weights can be retargeted at runtime (e.g. by a controller shifting
// load away from a degraded path without abandoning it entirely).
type SplitSelector struct {
	sw      *Switch
	weights map[uint8]float64
	// cumulative distribution over tunnel IDs, rebuilt on SetWeights.
	ids  []uint8
	cum  []float64
	norm float64
}

// NewSplitSelector builds a selector over the switch's tunnels. Weights
// map path IDs to nonnegative relative weights; tunnels absent from the
// map get weight 0. Install with sw.SetSelector(sel.Select).
func NewSplitSelector(sw *Switch, weights map[uint8]float64) *SplitSelector {
	s := &SplitSelector{sw: sw}
	s.SetWeights(weights)
	return s
}

// SetWeights replaces the split. A nil or all-zero map routes everything
// to the first tunnel.
func (s *SplitSelector) SetWeights(weights map[uint8]float64) {
	s.weights = weights
	s.ids = s.ids[:0]
	s.cum = s.cum[:0]
	s.norm = 0
	for _, tun := range s.sw.Tunnels() {
		w := weights[tun.PathID]
		if w <= 0 {
			continue
		}
		s.norm += w
		s.ids = append(s.ids, tun.PathID)
		s.cum = append(s.cum, s.norm)
	}
}

// Weights returns the active weight map.
func (s *SplitSelector) Weights() map[uint8]float64 { return s.weights }

// Select implements the Selector contract: hash the inner flow onto the
// weighted distribution.
func (s *SplitSelector) Select(inner []byte) *Tunnel {
	if len(s.ids) == 0 {
		ts := s.sw.Tunnels()
		if len(ts) == 0 {
			return nil
		}
		return ts[0]
	}
	h := innerFlowHash(inner)
	// Map the hash uniformly onto [0, norm).
	x := float64(h) / float64(1<<32) * s.norm
	for i, c := range s.cum {
		if x < c {
			t, _ := s.sw.Tunnel(s.ids[i])
			return t
		}
	}
	t, _ := s.sw.Tunnel(s.ids[len(s.ids)-1])
	return t
}

// innerFlowHash hashes the inner packet's flow identity (addresses +
// transport ports), FNV-1a.
func innerFlowHash(inner []byte) uint32 {
	var h uint32 = 2166136261
	mix := func(b []byte) {
		for _, v := range b {
			h ^= uint32(v)
			h *= 16777619
		}
	}
	if len(inner) < 1 {
		return h
	}
	switch inner[0] >> 4 {
	case 6:
		if len(inner) >= 44 {
			mix(inner[8:40])
			mix(inner[40:44])
		}
	case 4:
		if len(inner) >= 24 {
			mix(inner[12:20])
			mix(inner[20:24])
		}
	default:
		if len(inner) >= 4 {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(len(inner)))
			mix(b[:])
		}
	}
	return h
}
