package dataplane

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"tango/internal/packet"
)

// splitInner builds an inner packet with a distinct flow (source port).
func splitInner(t *testing.T, sport uint16) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("flowdata"))
	udp := &packet.UDP{SrcPort: sport, DstPort: 7001}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8:aa::1"),
		Dst: netip.MustParseAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestSplitSelectorProportions(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	sel := NewSplitSelector(tp.swA, map[uint8]float64{1: 3, 2: 1})
	tp.swA.SetSelector(sel.Select)

	counts := map[uint8]int{}
	tp.swB.OnMeasure = func(m Measurement) { counts[m.PathID]++ }

	const flows = 4000
	for i := 0; i < flows; i++ {
		tp.swA.HandleHostTraffic(splitInner(t, uint16(i)))
	}
	tp.w.Run(time.Second)

	total := counts[1] + counts[2]
	if total != flows {
		t.Fatalf("delivered %d/%d", total, flows)
	}
	frac := float64(counts[1]) / float64(total)
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("path1 fraction = %.3f, want ~0.75 (counts %v)", frac, counts)
	}
}

func TestSplitSelectorFlowStickiness(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	sel := NewSplitSelector(tp.swA, map[uint8]float64{1: 1, 2: 1})
	tp.swA.SetSelector(sel.Select)

	perFlow := map[uint16]map[uint8]bool{}
	// Track which path each flow's packets took via sequence of sends.
	tp.swB.DeliverLocal = func(inner []byte) {}
	tp.swB.OnMeasure = func(m Measurement) {}

	for flow := uint16(0); flow < 50; flow++ {
		pkt := splitInner(t, flow)
		first := sel.Select(pkt)
		perFlow[flow] = map[uint8]bool{first.PathID: true}
		for i := 0; i < 20; i++ {
			perFlow[flow][sel.Select(pkt).PathID] = true
		}
	}
	for flow, paths := range perFlow {
		if len(paths) != 1 {
			t.Fatalf("flow %d split across paths %v", flow, paths)
		}
	}
}

func TestSplitSelectorRetarget(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	sel := NewSplitSelector(tp.swA, map[uint8]float64{1: 1})
	pkt := splitInner(t, 9)
	if sel.Select(pkt).PathID != 1 {
		t.Fatal("single-weight selector wrong")
	}
	sel.SetWeights(map[uint8]float64{2: 1})
	if sel.Select(pkt).PathID != 2 {
		t.Fatal("retarget ignored")
	}
	if sel.Weights()[2] != 1 {
		t.Fatal("Weights accessor")
	}
	// Zero/empty weights fall back to the first tunnel.
	sel.SetWeights(nil)
	if sel.Select(pkt).PathID != 1 {
		t.Fatal("fallback broken")
	}
	// Unknown path IDs in the map are ignored.
	sel.SetWeights(map[uint8]float64{9: 5, 2: 1})
	if sel.Select(pkt).PathID != 2 {
		t.Fatal("unknown path id not ignored")
	}
}

func TestSplitSelectorGarbageInner(t *testing.T) {
	tp := newTestPair(t, 0, 0)
	sel := NewSplitSelector(tp.swA, map[uint8]float64{1: 1, 2: 1})
	if sel.Select(nil) == nil {
		t.Fatal("nil inner must still pick a tunnel")
	}
	if sel.Select([]byte{0x00, 0x01}) == nil {
		t.Fatal("garbage inner must still pick a tunnel")
	}
}
