// Package events injects the wide-area incidents the paper's eight-day
// measurement happened to capture (§5, Figure 4 middle and right panels),
// plus generic failures, into a running simulation. Each injector
// manipulates the delay Shaper (or admin state) of a specific directed
// line — e.g. "GTT's trunk toward LA" — while every other path keeps its
// usual behaviour, matching the paper's observation that "all other
// networks experience almost no interference".
package events

import (
	"time"

	"tango/internal/sim"
	"tango/internal/simnet"
)

// RouteShift reproduces the Figure 4 (middle) incident: an internal
// routing change inside one provider. At At the path suffers a brief
// period of instability, then settles at a new minimum Delta higher than
// before; after Duration the original path returns.
type RouteShift struct {
	Line *simnet.Line
	// At is when the reroute happens.
	At time.Duration
	// Duration is how long the longer path persists (the paper saw
	// ~10 minutes).
	Duration time.Duration
	// Delta is the added floor delay (the paper saw +5 ms).
	Delta time.Duration
	// EdgeInstability is the length of the disturbed window around
	// each transition (default 20 s; 0 uses the default).
	EdgeInstability time.Duration
	// EdgeSpike parameterizes the transition noise (defaults: 20%
	// of packets +Exp(8ms) capped 25ms).
	EdgeProb float64
	EdgeMean time.Duration
	EdgeCap  time.Duration
}

// Schedule arms the incident on the engine.
func (r *RouteShift) Schedule(eng *sim.Engine) {
	edge := r.EdgeInstability
	if edge == 0 {
		edge = 20 * time.Second
	}
	prob := r.EdgeProb
	if prob == 0 {
		prob = 0.2
	}
	mean := r.EdgeMean
	if mean == 0 {
		mean = 8 * time.Millisecond
	}
	capd := r.EdgeCap
	if capd == 0 {
		capd = 25 * time.Millisecond
	}
	sh := r.Line.Shaper()
	turbulence := func() {
		sh.SetOverlay(simnet.SpikeDelay{Base: sh.Base(), Prob: prob, Mean: mean, Cap: capd})
	}
	calm := func() { sh.SetOverlay(nil) }

	eng.ScheduleAt(sim.Time(r.At), func() {
		turbulence()
		eng.Schedule(edge, func() {
			calm()
			sh.SetOffset(r.Delta) // settled on the longer internal path
		})
	})
	eng.ScheduleAt(sim.Time(r.At+r.Duration), func() {
		turbulence()
		eng.Schedule(edge, func() {
			calm()
			sh.SetOffset(0) // original path restored
		})
	})
}

// Instability reproduces the Figure 4 (right) incident: a window of
// degraded performance on one path with minor baseline elevation and
// heavy spikes (the paper saw a 78 ms peak against a 28 ms floor, with
// some packets still arriving at the minimum).
type Instability struct {
	Line *simnet.Line
	At   time.Duration
	// Duration of the window (the paper saw ~5 minutes).
	Duration time.Duration
	// SpikeProb is the per-packet probability of a major spike.
	SpikeProb float64
	// SpikeMean is the mean extra delay of a major spike.
	SpikeMean time.Duration
	// SpikeCap bounds a spike (peak OWD = floor + minor + cap).
	SpikeCap time.Duration
	// MinorExtraMean/Std elevate the baseline slightly during the
	// window (Gaussian, clamped to [0, MinorExtraCap]).
	MinorExtraMean time.Duration
	MinorExtraStd  time.Duration
	// MinorExtraCap bounds the minor elevation so the window's peak is
	// dominated by SpikeCap (default mean + 2 std).
	MinorExtraCap time.Duration
}

// Schedule arms the incident on the engine.
func (i *Instability) Schedule(eng *sim.Engine) {
	sh := i.Line.Shaper()
	eng.ScheduleAt(sim.Time(i.At), func() {
		base := sh.Base()
		capd := i.MinorExtraCap
		if capd == 0 {
			capd = i.MinorExtraMean + 2*i.MinorExtraStd
		}
		var m simnet.DelayModel = jitterLift{base: base, mean: i.MinorExtraMean, std: i.MinorExtraStd, cap: capd}
		m = simnet.SpikeDelay{Base: m, Prob: i.SpikeProb, Mean: i.SpikeMean, Cap: i.SpikeCap}
		sh.SetOverlay(m)
	})
	eng.ScheduleAt(sim.Time(i.At+i.Duration), func() {
		sh.SetOverlay(nil)
	})
}

// jitterLift adds a bounded non-negative Gaussian extra delay to a base
// model.
type jitterLift struct {
	base simnet.DelayModel
	mean time.Duration
	std  time.Duration
	cap  time.Duration
}

// Sample implements simnet.DelayModel.
func (j jitterLift) Sample(now sim.Time, rng *sim.RNG) time.Duration {
	v := j.base.Sample(now, rng)
	if j.mean > 0 || j.std > 0 {
		extra := time.Duration(rng.Normal(float64(j.mean), float64(j.std)))
		if j.cap > 0 && extra > j.cap {
			extra = j.cap
		}
		if extra > 0 {
			v += extra
		}
	}
	return v
}

// LinkFailure takes a directed line down for a window; with BGP hold
// timers configured on the adjacent session, the control plane eventually
// notices and reroutes — far slower than Tango's data-driven switch.
type LinkFailure struct {
	Line     *simnet.Line
	At       time.Duration
	Duration time.Duration
}

// Schedule arms the failure on the engine.
func (f *LinkFailure) Schedule(eng *sim.Engine) {
	eng.ScheduleAt(sim.Time(f.At), func() { f.Line.SetDown(true) })
	eng.ScheduleAt(sim.Time(f.At+f.Duration), func() { f.Line.SetDown(false) })
}

// LossBurst raises a line's loss rate for a window.
type LossBurst struct {
	Line     *simnet.Line
	At       time.Duration
	Duration time.Duration
	Loss     float64
}

// Schedule arms the burst on the engine.
func (l *LossBurst) Schedule(eng *sim.Engine) {
	var prev float64
	eng.ScheduleAt(sim.Time(l.At), func() {
		prev = l.Line.Loss()
		l.Line.SetLoss(l.Loss)
	})
	eng.ScheduleAt(sim.Time(l.At+l.Duration), func() {
		l.Line.SetLoss(prev)
	})
}
