package events

import (
	"testing"
	"time"

	"tango/internal/sim"
	"tango/internal/simnet"
)

// sampleLine draws n delays from the line's shaper at the engine's
// current virtual time.
func sampleLine(line *simnet.Line, rng *sim.RNG, n int) (min, max, sum time.Duration) {
	min = time.Hour
	for i := 0; i < n; i++ {
		v := line.Shaper().Sample(0, rng)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return
}

func newLine(t *testing.T) (*simnet.Network, *simnet.Line) {
	t.Helper()
	w := simnet.New(9)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	l := w.Connect(a, b,
		simnet.LinkConfig{Delay: simnet.GaussianDelay{Floor: 28 * time.Millisecond, Mean: 28150 * time.Microsecond, Std: 10 * time.Microsecond}},
		simnet.LinkConfig{})
	return w, l.LineAB()
}

func TestRouteShiftLifecycle(t *testing.T) {
	w, line := newLine(t)
	rng := sim.NewStreams(1).Stream("test")

	shift := &RouteShift{
		Line:            line,
		At:              time.Hour,
		Duration:        10 * time.Minute,
		Delta:           5 * time.Millisecond,
		EdgeInstability: 20 * time.Second,
	}
	shift.Schedule(w.Eng)

	// Before: baseline floor.
	min, _, _ := sampleLine(line, rng, 200)
	if min < 28*time.Millisecond || min > 29*time.Millisecond {
		t.Fatalf("pre-event min = %v", min)
	}

	// During the transition edge: spikes present.
	w.Run(time.Hour + 5*time.Second)
	_, max, _ := sampleLine(line, rng, 500)
	if max < 30*time.Millisecond {
		t.Fatalf("transition produced no spikes: max = %v", max)
	}

	// Settled: floor + 5ms, no overlay spikes.
	w.Run(time.Hour + time.Minute)
	min, max, _ = sampleLine(line, rng, 500)
	if min < 33*time.Millisecond || min > 34*time.Millisecond {
		t.Fatalf("settled min = %v, want ~33ms", min)
	}
	if max > 34*time.Millisecond {
		t.Fatalf("settled max = %v; overlay not cleared", max)
	}

	// Reverted after duration (+edge).
	w.Run(time.Hour + 11*time.Minute)
	min, _, _ = sampleLine(line, rng, 500)
	if min > 29*time.Millisecond {
		t.Fatalf("post-event min = %v; offset not reverted", min)
	}
	if line.Shaper().Offset() != 0 {
		t.Fatal("offset left behind")
	}
}

func TestInstabilityWindow(t *testing.T) {
	w, line := newLine(t)
	rng := sim.NewStreams(2).Stream("test")

	inst := &Instability{
		Line:           line,
		At:             30 * time.Minute,
		Duration:       5 * time.Minute,
		SpikeProb:      0.02,
		SpikeMean:      18 * time.Millisecond,
		SpikeCap:       48 * time.Millisecond,
		MinorExtraMean: time.Millisecond,
		MinorExtraStd:  2 * time.Millisecond,
	}
	inst.Schedule(w.Eng)

	w.Run(31 * time.Minute)
	min, max, _ := sampleLine(line, rng, 5000)
	// Paper shape: some packets still arrive near the 28ms floor...
	if min > 29*time.Millisecond {
		t.Fatalf("during instability min = %v; floor packets should survive", min)
	}
	// ...while spikes more than double it (peak 78ms against cap
	// 28+minor+48).
	if max < 56*time.Millisecond {
		t.Fatalf("instability max = %v, want >2x floor", max)
	}
	// Bounded by floor + minor tail (unbounded Gaussian, practically
	// <8ms) + spike cap.
	if max > 85*time.Millisecond {
		t.Fatalf("instability max = %v exceeds plausible bound", max)
	}

	// Window closes cleanly.
	w.Run(36 * time.Minute)
	_, max, _ = sampleLine(line, rng, 1000)
	if max > 29*time.Millisecond {
		t.Fatalf("post-window max = %v; overlay not cleared", max)
	}
}

func TestLinkFailureWindow(t *testing.T) {
	w, line := newLine(t)
	f := &LinkFailure{Line: line, At: time.Minute, Duration: 30 * time.Second}
	f.Schedule(w.Eng)
	if line.Down() {
		t.Fatal("down before At")
	}
	w.Run(time.Minute + time.Second)
	if !line.Down() {
		t.Fatal("not down during window")
	}
	w.Run(2 * time.Minute)
	if line.Down() {
		t.Fatal("still down after window")
	}
}

func TestLossBurstWindow(t *testing.T) {
	w, line := newLine(t)
	line.SetLoss(0.001)
	b := &LossBurst{Line: line, At: time.Minute, Duration: time.Minute, Loss: 0.3}
	b.Schedule(w.Eng)
	w.Run(90 * time.Second)
	if line.Loss() != 0.3 {
		t.Fatalf("burst loss = %v", line.Loss())
	}
	w.Run(3 * time.Minute)
	if line.Loss() != 0.001 {
		t.Fatalf("loss not restored: %v", line.Loss())
	}
}
