package experiments

import (
	"time"

	"tango/internal/control"
	"tango/internal/events"
	"tango/internal/measure"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// The ablations quantify the design choices DESIGN.md §5 calls out. Each
// returns plain numbers for the bench harness to report.

// AblationCadenceResult summarizes one controller-cadence run.
type AblationCadenceResult struct {
	MeanTrueOWDMs float64 // achieved mean OWD (offset-corrected) across the event
	Switches      uint64
}

// AblationCadence measures how the controller's decision cadence affects
// the delay achieved through an E4-style route change: a slow cadence
// reacts late on both edges of the event.
func AblationCadence(cfg Config, cadence time.Duration) AblationCadenceResult {
	l := newLab(labOpts{
		seed:          cfg.Seed + 40,
		probeInterval: cfg.probe(),
		decideEvery:   cadence,
		policyNY:      &control.MinOWD{HysteresisMs: 0.5, MinDwell: cadence},
	})
	lead := cfg.dur(2 * time.Minute)
	eventAt := l.S.B.W.Now() + lead
	(&events.RouteShift{
		Line:     l.S.TrunkToLA["GTT"],
		At:       eventAt,
		Duration: 5 * time.Minute,
		Delta:    5 * time.Millisecond,
	}).Schedule(l.S.TrunkToLA["GTT"].Eng())

	// Track the true OWD of whatever path currently carries traffic by
	// sampling the controller's choice against the per-path monitors.
	var acc measure.Welford
	ctl := l.Pair.A.Controller
	mon := l.monLA()
	sim.NewTicker(l.S.B.Eng(), 100*time.Millisecond, func(sim.Time) {
		if l.S.B.W.Now() < eventAt {
			return
		}
		if pm := mon.Path(ctl.Current()); pm != nil && pm.Est.Valid() {
			acc.Add(pm.Est.Value() - ms(l.offNYtoLA))
		}
	})
	l.run(lead + 5*time.Minute + 2*time.Minute)
	return AblationCadenceResult{MeanTrueOWDMs: acc.Mean(), Switches: ctl.Stats.Switches}
}

// AblationHysteresisResult summarizes one hysteresis-margin run.
type AblationHysteresisResult struct {
	Switches      uint64
	MeanTrueOWDMs float64
}

// AblationHysteresis measures path-flap count against the switching
// margin while the active path is spiky (an E5-style window): tiny
// margins chase noise, large margins never react.
func AblationHysteresis(cfg Config, marginMs float64) AblationHysteresisResult {
	l := newLab(labOpts{
		seed:          cfg.Seed + 41,
		probeInterval: cfg.probe(),
		decideEvery:   time.Second,
		policyNY:      &control.MinOWD{HysteresisMs: marginMs, MinDwell: time.Second},
	})
	lead := cfg.dur(2 * time.Minute)
	eventAt := l.S.B.W.Now() + lead
	(&events.Instability{
		Line:           l.S.TrunkToLA["GTT"],
		At:             eventAt,
		Duration:       5 * time.Minute,
		SpikeProb:      0.15,
		SpikeMean:      16 * time.Millisecond,
		SpikeCap:       46 * time.Millisecond,
		MinorExtraMean: 2 * time.Millisecond,
		MinorExtraStd:  1500 * time.Microsecond,
	}).Schedule(l.S.TrunkToLA["GTT"].Eng())

	var acc measure.Welford
	ctl := l.Pair.A.Controller
	mon := l.monLA()
	sim.NewTicker(l.S.B.Eng(), 100*time.Millisecond, func(sim.Time) {
		if l.S.B.W.Now() < eventAt {
			return
		}
		if pm := mon.Path(ctl.Current()); pm != nil && pm.Est.Valid() {
			acc.Add(pm.Est.Value() - ms(l.offNYtoLA))
		}
	})
	l.run(lead + 5*time.Minute + time.Minute)
	return AblationHysteresisResult{Switches: ctl.Stats.Switches, MeanTrueOWDMs: acc.Mean()}
}

// AblationEstimator compares delay estimators offline on a synthetic
// spiky trace: it returns the fraction of samples where the estimator is
// more than 1 ms from the true floor (a proxy for "how often would the
// controller be misled"). Windowed means are emulated by small alphas.
func AblationEstimator(cfg Config, alpha float64) float64 {
	streams := sim.NewStreams(cfg.Seed + 42)
	rng := streams.Stream("ablation-estimator")
	model := simnet.SpikeDelay{
		Base: simnet.GaussianDelay{Floor: 28 * time.Millisecond, Mean: 28150 * time.Microsecond, Std: 10 * time.Microsecond},
		Prob: 0.05,
		Mean: 16 * time.Millisecond,
		Cap:  46 * time.Millisecond,
	}
	est := measure.NewEWMA(alpha)
	const n = 50000
	const floorMs = 28.15
	misled := 0
	for i := 0; i < n; i++ {
		v := float64(model.Sample(0, rng)) / float64(time.Millisecond)
		est.Add(v)
		if est.Value() > floorMs+1.0 || est.Value() < floorMs-1.0 {
			misled++
		}
	}
	return float64(misled) / n
}

// AblationProbeRateResult summarizes one probe-interval run.
type AblationProbeRateResult struct {
	// DetectionLatency is the time from the E4 event until the
	// controller left the degraded path (0 if it never did).
	DetectionLatency time.Duration
	ProbesSent       uint64
}

// AblationProbeRate measures event-detection latency against probing
// rate: sparser probes mean staler estimates and later reactions, the
// paper's implicit justification for probing at 10 ms.
func AblationProbeRate(cfg Config, interval time.Duration) AblationProbeRateResult {
	l := newLab(labOpts{
		seed:          cfg.Seed + 43,
		probeInterval: interval,
		decideEvery:   500 * time.Millisecond,
		policyNY:      &control.MinOWD{HysteresisMs: 0.5, MinDwell: time.Second},
	})
	lead := cfg.dur(2 * time.Minute)
	eventAt := l.S.B.W.Now() + lead
	(&events.RouteShift{
		Line:            l.S.TrunkToLA["GTT"],
		At:              eventAt,
		Duration:        5 * time.Minute,
		Delta:           5 * time.Millisecond,
		EdgeInstability: time.Second, // sharp edge: isolate detection delay
	}).Schedule(l.S.TrunkToLA["GTT"].Eng())

	// Detection = first moment the post-event optimum (Telia) carries
	// the traffic. Zero means the controller never adapted within the
	// observation window.
	var detected time.Duration
	ctl := l.Pair.A.Controller
	sim.NewTicker(l.S.B.Eng(), 100*time.Millisecond, func(now sim.Time) {
		if detected == 0 && now > eventAt && l.Pair.A.PathName(ctl.Current()) == "Telia" {
			detected = now - eventAt
		}
	})
	l.run(lead + 3*time.Minute)
	return AblationProbeRateResult{
		DetectionLatency: detected,
		ProbesSent:       l.Pair.A.Prober.Sent,
	}
}
