package experiments

import (
	"testing"
	"time"
)

// The ablation drivers are exercised at reduced duration; the assertions
// check the *direction* of each trade-off, which is what the benches
// report.

func TestAblationHysteresisMonotone(t *testing.T) {
	cfg := Config{Seed: 1, Duration: time.Minute}
	tiny := AblationHysteresis(cfg, 0.05)
	big := AblationHysteresis(cfg, 5.0)
	if tiny.Switches <= big.Switches {
		t.Fatalf("flap count not monotone: margin 0.05ms -> %d switches, 5ms -> %d",
			tiny.Switches, big.Switches)
	}
	if big.Switches > 3 {
		t.Fatalf("large margin still flapping: %d switches", big.Switches)
	}
	if tiny.MeanTrueOWDMs <= 0 || big.MeanTrueOWDMs <= 0 {
		t.Fatal("mean OWD not measured")
	}
}

func TestAblationProbeRateDetection(t *testing.T) {
	cfg := Config{Seed: 1, Duration: time.Minute}
	fast := AblationProbeRate(cfg, 10*time.Millisecond)
	slow := AblationProbeRate(cfg, 200*time.Millisecond)
	if fast.DetectionLatency == 0 {
		t.Fatal("fast probing never detected the event")
	}
	if slow.DetectionLatency != 0 && slow.DetectionLatency < fast.DetectionLatency {
		t.Fatalf("slower probing detected faster: %v vs %v",
			slow.DetectionLatency, fast.DetectionLatency)
	}
	if fast.ProbesSent <= slow.ProbesSent {
		t.Fatal("probe accounting wrong")
	}
}

func TestAblationCadenceRuns(t *testing.T) {
	cfg := Config{Seed: 1, Duration: time.Minute}
	res := AblationCadence(cfg, time.Second)
	if res.MeanTrueOWDMs < 25 || res.MeanTrueOWDMs > 40 {
		t.Fatalf("achieved OWD implausible: %.2f ms", res.MeanTrueOWDMs)
	}
	if res.Switches == 0 {
		t.Fatal("controller never switched through the event")
	}
}

func TestAblationEstimatorBounds(t *testing.T) {
	cfg := Config{Seed: 1}
	for _, alpha := range []float64{0.5, 0.05, 0.005} {
		misled := AblationEstimator(cfg, alpha)
		if misled < 0 || misled > 1 {
			t.Fatalf("misled fraction out of range: %v", misled)
		}
	}
	// Determinism.
	if AblationEstimator(cfg, 0.05) != AblationEstimator(cfg, 0.05) {
		t.Fatal("estimator ablation not deterministic")
	}
}
