package experiments

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/topo"
)

// E1PathDiscovery reproduces §4.1 / Figure 3: the iterative community-
// suppression algorithm run in both directions between the Vultr NY and
// LA datacenters. The paper finds (in the destination POP's preference
// order) LA->NY: NTT, Telia, GTT, NTT+Cogent; NY->LA: NTT, Telia, GTT,
// Level3.
func E1PathDiscovery(cfg Config) *Result {
	r := newResult("E1", "Path diversity through cooperative discovery (Fig. 3, §4.1)")
	s, err := topo.NewVultrScenario(topo.ScenarioConfig{Seed: cfg.Seed})
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)

	nameFor := func(a bgp.ASN) string {
		return topo.ProviderNameForPath(bgp.Path{a, bgp.ASVultr})
	}
	runDir := func(label string, ann, obs *topo.AS, probe string) []control.DiscoveredPath {
		d := &control.Discoverer{
			Announcer: ann.Speaker,
			Observer:  obs.Speaker,
			Probe:     addr.MustParsePrefix(probe),
			POPAS:     bgp.ASVultr,
			NameFor:   nameFor,
			RoundWait: 2 * time.Minute,
		}
		var got []control.DiscoveredPath
		d.Run(func(paths []control.DiscoveredPath) { got = paths })
		s.Run(20 * time.Minute)
		return got
	}

	// Paths for LA->NY traffic: NY announces, LA observes.
	laToNY := runDir("LA->NY", s.EdgeNY, s.EdgeLA, "2001:db8:100::/48")
	// Paths for NY->LA traffic: LA announces, NY observes.
	nyToLA := runDir("NY->LA", s.EdgeLA, s.EdgeNY, "2001:db8:200::/48")

	r.Rows = append(r.Rows, []string{"direction", "round", "provider", "AS path", "communities attached"})
	add := func(dir string, paths []control.DiscoveredPath) {
		for _, p := range paths {
			comms := "(none)"
			if len(p.SuppressedWhenSeen) > 0 {
				comms = ""
				for i, c := range p.SuppressedWhenSeen {
					if i > 0 {
						comms += " "
					}
					comms += c.String()
				}
			}
			r.Rows = append(r.Rows, []string{
				dir, fmt.Sprintf("%d", p.Index), p.ProviderName,
				p.Path.String(), comms,
			})
		}
	}
	add("LA->NY", laToNY)
	add("NY->LA", nyToLA)

	names := func(paths []control.DiscoveredPath) []string {
		out := make([]string, len(paths))
		for i, p := range paths {
			out[i] = p.ProviderName
		}
		return out
	}
	gotLA, gotNY := names(laToNY), names(nyToLA)
	wantLA := []string{"NTT", "Telia", "GTT", "Cogent"}
	wantNY := []string{"NTT", "Telia", "GTT", "Level3"}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	r.check("LA->NY path count", ">= 4 paths", len(gotLA) >= 4, "%d paths", len(gotLA))
	r.check("NY->LA path count", ">= 4 paths", len(gotNY) >= 4, "%d paths", len(gotNY))
	r.check("LA->NY providers in preference order", "NTT, Telia, GTT, NTT+Cogent", eq(gotLA, wantLA), "%v", gotLA)
	r.check("NY->LA providers in preference order", "NTT, Telia, GTT, Level3", eq(gotNY, wantNY), "%v", gotNY)

	// Verify pinning: one prefix per path, each routed via exactly its
	// provider.
	pinOK := true
	for i := range laToNY {
		pfx, err := s.BlockNY.Subnet(48, i)
		if err != nil {
			pinOK = false
			break
		}
		s.EdgeNY.Speaker.Originate(pfx, control.PinCommunities(laToNY, i)...)
	}
	s.Run(5 * time.Minute)
	for i, want := range gotLA {
		pfx, _ := s.BlockNY.Subnet(48, i)
		best := s.EdgeLA.Speaker.Best(pfx)
		if best == nil || topo.ProviderNameForPath(best.Path) != want {
			pinOK = false
		}
	}
	r.check("pinned prefixes route via distinct providers", "one prefix per route (§3)", pinOK, "%v", pinOK)

	r.VirtualTime = s.B.W.Now()
	return r
}
