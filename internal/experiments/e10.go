package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/events"
	"tango/internal/obs"
	"tango/internal/topo"
)

// E10MeshOverlay exercises §6's "from Tango of 2 to Tango of N": three
// sites deploy Tango pairwise, and the mesh composes the pairs into an
// overlay. NY and LA share only NTT, so their direct pair exposes one
// path and has nothing to steer between; CHI shares a fast provider with
// each. When NTT's internal route toward LA degrades, the direct pair
// must ride it out while the composite table shifts the best ny->la
// route onto the relay through CHI — verified against ground-truth
// delivery latency, not just the table's own scores.
func E10MeshOverlay(cfg Config) *Result {
	r := newResult("E10", "Mesh overlay routes around a shared-provider incident (§6)")

	tc := topo.TriConfig(cfg.Seed + 10)
	tc.Shards = cfg.Shards
	s, err := topo.NewMeshScenario(tc)
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	m, err := core.MeshFromScenario(s, core.MeshConfig{
		ProbeInterval: cfg.probe(),
		DecideEvery:   time.Second,
		NameFor:       topo.TriProviderName,
	})
	if err != nil {
		panic(err)
	}
	m.Establish()
	if !m.RunUntilReady(2 * time.Hour) {
		panic("experiments: mesh failed to establish")
	}
	reg := obs.NewRegistry()
	journal := obs.NewJournal(1024)
	shardHooks(s.B.Eng(), journal)
	m.Instrument(reg, journal)

	// The motivating asymmetry: the direct pair has no path diversity.
	direct := m.Member("ny", "la")
	r.check("direct ny<->la pair exposes a single path", "NY and LA share only NTT",
		len(direct.OutPaths) == 1 && direct.OutPaths[0].ProviderName == "NTT",
		"%d path(s)", len(direct.OutPaths))

	s.Run(time.Minute) // probes feed every segment estimate
	routes := m.Routes("ny", "la")
	var haveRelay bool
	for _, rt := range routes {
		if !rt.Direct() && len(rt.Via) == 1 && rt.Via[0] == "chi" {
			haveRelay = rt.Valid
		}
	}
	r.check("composite table scores a relayed route", "pairwise deployments compose",
		haveRelay, "routes: %v", routes)

	// Ground-truth latency per route: stamped app packets down both
	// routes, fates recorded at LA in engine time. The sink runs on LA's
	// partition engine, so it reads LA's clock; the bookkeeping maps are
	// written by this goroutine only between runs and by LA's events only
	// during runs, so they never see concurrent writers.
	const dport = 9700
	eng := s.B.Eng()
	laEng := m.Member("la", "ny").Eng()
	sentAt := map[uint32]time.Duration{}
	viaRelay := map[uint32]bool{}
	type win struct {
		sum time.Duration
		n   int
	}
	var directW, relayW win
	m.AddSink("la", func(inner []byte) bool {
		if len(inner) < 52 || inner[0]>>4 != 6 ||
			binary.BigEndian.Uint16(inner[42:44]) != dport {
			return false
		}
		seq := binary.BigEndian.Uint32(inner[48:52])
		t0, ok := sentAt[seq]
		if !ok {
			return false
		}
		delete(sentAt, seq)
		lat := time.Duration(laEng.Now()) - t0
		if viaRelay[seq] {
			relayW.sum += lat
			relayW.n++
		} else {
			directW.sum += lat
			directW.n++
		}
		delete(viaRelay, seq)
		return true
	})
	enterParallel(eng)
	var seq uint32
	sample := func(dur time.Duration) (directMs, relayMs float64, best control.CompositeRoute) {
		directW, relayW = win{}, win{}
		end := time.Duration(eng.Now()) + dur
		for time.Duration(eng.Now()) < end {
			for _, rt := range m.Routes("ny", "la") {
				sentAt[seq] = time.Duration(eng.Now())
				viaRelay[seq] = !rt.Direct()
				pay := make([]byte, 4)
				binary.BigEndian.PutUint32(pay, seq)
				if err := m.SendAlong(rt, dport, dport, pay); err != nil {
					panic(err)
				}
				seq++
			}
			s.Run(50 * time.Millisecond)
		}
		best, _ = m.Best("ny", "la")
		return ms(directW.sum) / float64(directW.n), ms(relayW.sum) / float64(relayW.n), best
	}

	// Incident: +8 ms on NTT's trunk toward LA — the direct pair's only
	// path degrades; the relay's GTT segment into LA is untouched.
	window := cfg.dur(2 * time.Minute)
	shift := 8 * time.Millisecond
	dBefore, rBefore, bestBefore := sample(window)
	ev := &events.RouteShift{
		Line:     s.Trunk["la"]["NTT"],
		At:       eng.Now() + time.Duration(30*time.Second),
		Duration: window + 2*time.Minute,
		Delta:    shift,
	}
	ev.Schedule(ev.Line.Eng())
	s.Run(90 * time.Second) // shift lands and estimates settle
	dDuring, rDuring, bestDuring := sample(window)
	s.Run(3 * time.Minute) // shift reverts and estimates settle
	dAfter, rAfter, bestAfter := sample(window)

	r.Rows = append(r.Rows, []string{"phase", "direct (ms)", "via chi (ms)", "best route"})
	for _, row := range []struct {
		label string
		d, rl float64
		best  control.CompositeRoute
	}{
		{"before", dBefore, rBefore, bestBefore},
		{"during +8ms NTT", dDuring, rDuring, bestDuring},
		{"after", dAfter, rAfter, bestAfter},
	} {
		r.Rows = append(r.Rows, []string{row.label,
			fmt.Sprintf("%.2f", row.d), fmt.Sprintf("%.2f", row.rl),
			routeLabel(row.best)})
	}

	r.check("direct route best before the incident", "relaying costs two segments",
		bestBefore.Direct() && dBefore < rBefore, "direct %.2f ms vs relay %.2f ms", dBefore, rBefore)
	r.check("overlay shifts to the relay during the incident", "detour beats shared-path degradation",
		!bestDuring.Direct() && rDuring < dDuring, "direct %.2f ms vs relay %.2f ms", dDuring, rDuring)
	r.check("direct route best again after revert", "steering is reversible",
		bestAfter.Direct() && dAfter < rAfter, "direct %.2f ms vs relay %.2f ms", dAfter, rAfter)
	r.check("direct path truly degraded by the shift", "+8 ms ground truth",
		within(dDuring-dBefore, ms(shift)-1.5, ms(shift)+1.5), "%.2f ms", dDuring-dBefore)
	fwd := m.Relay("chi").Stats.Forwarded
	r.check("relay re-encapsulated end-to-end traffic", "per-segment tunnelling",
		fwd > 0, "%d forwarded at chi", fwd)

	r.note("composite scores stay in summed receiver clock domains; the telescoped " +
		"offset is identical for both ny->la routes, so the comparison is exact")
	r.VirtualTime = time.Duration(eng.Now())
	r.Metrics = deterministicSnapshot(reg)
	r.Trace = traceJSON(journal)
	return r
}

func routeLabel(r control.CompositeRoute) string {
	if r.Direct() {
		return "direct"
	}
	lbl := r.Src
	for _, v := range r.Via {
		lbl += "->" + v
	}
	return lbl + "->" + r.Dst
}
