package experiments

import (
	"fmt"
	"time"

	"tango/internal/chaos"
	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
	"tango/internal/topo"
	"tango/internal/workload"
)

// E11Failover measures failover behaviour end to end: a mesh carries a
// constant-rate application stream ny->chi while the chaos engine kills
// the active path twice — first a link failure on the provider trunk the
// traffic rides, then a BGP withdrawal of the path's pinned /48 — and
// the experiment reports the failover time (fault to controller switch),
// packets lost during convergence, and post-recovery OWD, with the chaos
// invariants (path evacuation, no data on a dead path, sequence
// consistency, packet conservation, buffer balance) watching throughout.
//
// Detection runs entirely on the paper's machinery: the receiver stops
// reporting a path that stops delivering (Reporter.MaxAge), the sender's
// estimate goes stale (MinOWD.StaleAfter), and the policy evacuates.
func E11Failover(cfg Config) *Result {
	r := newResult("E11", "Failover: link flap and BGP withdrawal mid-stream (§5/§6)")

	tc := topo.TriConfig(cfg.Seed + 11)
	tc.Shards = cfg.Shards
	s, err := topo.NewMeshScenario(tc)
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	// Convergence knobs, tightened from the defaults so the experiment's
	// bound is meaningful: report max-age 2 s (set by the pair from the
	// 100 ms report interval), estimate staleness 2 s, decisions every
	// 250 ms, 1 s dwell.
	const (
		staleAfter  = 2 * time.Second
		minDwell    = time.Second
		decideEvery = 250 * time.Millisecond
		reportAge   = 2 * time.Second // Reporter.MaxAge floor in core
	)
	m, err := core.MeshFromScenario(s, core.MeshConfig{
		ProbeInterval: cfg.probe(),
		DecideEvery:   decideEvery,
		NameFor:       topo.TriProviderName,
		NewPolicy: func(site, peer string) control.Policy {
			return &control.MinOWD{HysteresisMs: 0.5, MinDwell: minDwell, StaleAfter: staleAfter}
		},
	})
	if err != nil {
		panic(err)
	}
	m.Establish()
	if !m.RunUntilReady(2 * time.Hour) {
		panic("experiments: mesh failed to establish")
	}
	eng := s.B.Eng()
	reg := obs.NewRegistry()
	journal := obs.NewJournal(1024)
	shardHooks(eng, journal)
	m.Instrument(reg, journal)

	sender := m.Member("ny", "chi")
	recv := m.Member("chi", "ny")
	r.check("ny->chi exposes two paths", "NY and CHI share NTT and Telia",
		len(sender.OutPaths) == 2, "%d path(s)", len(sender.OutPaths))

	// The application stream under test: 200 pkt/s ny->chi with
	// ground-truth fates recorded at chi.
	src, err := sender.HostAddr()
	if err != nil {
		panic(err)
	}
	dst, err := recv.HostAddr()
	if err != nil {
		panic(err)
	}
	// The generator ticks on the sending site's engine and stages
	// arrivals on the receiving site's — on a sharded network those are
	// different partitions (identical engines on a classic one).
	gen := workload.NewAppGen(sender.Eng(), sender.Switch, src, dst, 5*time.Millisecond, 64)
	gen.BindSink(recv.Eng())
	recv.AddSink(gen.Sink)

	// Chaos engine: every provider trunk is a named fault target, plus
	// chi's edge speaker for the withdrawal. Worst-case detection chain:
	// up to reportAge of zombie reports, staleAfter until the estimate is
	// discarded, one decision tick — dwell cannot block an evacuation
	// (a stale current path bypasses it), but keep a margin for it.
	grace := reportAge + staleAfter + decideEvery + minDwell // 5.25 s
	ch := chaos.New(eng)
	for _, site := range []string{"ny", "chi", "la"} {
		for prov, line := range s.Trunk[site] {
			ch.AddLine("trunk/"+site+"/"+prov, line)
		}
	}
	ch.AddSpeaker("edge/chi:ny", recv.Spec.Edge.Speaker)
	ch.Instrument(reg, journal)

	lineFor := map[uint8]*simnet.Line{}
	for i, dp := range sender.OutPaths {
		lineFor[uint8(i+1)] = s.Trunk["chi"][dp.ProviderName]
	}
	ch.Watch(chaos.PathEvacuation("ny->chi", sender.Controller, lineFor, grace))
	ch.Watch(chaos.NoDataOnDeadPath("ny->chi", sender.Switch, lineFor, grace))
	ch.Watch(chaos.SeqConsistency("chi<-ny", recv.Monitor, sender.Switch))
	ch.Watch(chaos.Conservation("tri", s.B.W))
	ch.Watch(chaos.BufferBalance("tri", s.B.W))
	ch.StartChecks(250 * time.Millisecond)

	type switchEv struct {
		at       sim.Time
		from, to uint8
	}
	var switches []switchEv
	sender.Controller.OnSwitch = func(at sim.Time, from, to uint8) {
		switches = append(switches, switchEv{at, from, to})
	}
	firstSwitchAfter := func(t sim.Time) (switchEv, bool) {
		for _, ev := range switches {
			if ev.at >= t {
				return ev, true
			}
		}
		return switchEv{}, false
	}

	// Phase bookkeeping: windows are closed during the run and scored
	// from the generator's final records afterwards.
	type span struct {
		label    string
		from, to sim.Time
		cur      uint8
	}
	var spans []span
	mark := func(label string, from sim.Time) {
		spans = append(spans, span{label: label, from: from, to: eng.Now(),
			cur: sender.Controller.Current()})
	}

	window := cfg.dur(30 * time.Second)
	const faultFor = 45 * time.Second
	const lead = 2 * time.Second

	// Wiring is done; a sharded run flips to parallel epochs here.
	enterParallel(eng)

	// Baseline.
	t0 := eng.Now()
	s.Run(window)
	mark("baseline", t0)
	orig := sender.Controller.Current()
	origProv := sender.PathName(orig)

	// Fault 1: the trunk carrying the active path toward chi goes down.
	linkFaultAt := eng.Now() + sim.Time(lead)
	ch.Schedule(chaos.LinkDown{Target: "trunk/chi/" + origProv, At: linkFaultAt, For: faultFor})
	s.Run(lead + faultFor)
	mark("link-down "+origProv, linkFaultAt)
	s.Run(15 * time.Second) // revert lands; estimates refresh; switch back
	rec1 := eng.Now()
	s.Run(window)
	mark("recovered", rec1)

	// Fault 2: the pinned /48 of the (again-)active path is withdrawn at
	// chi; the endpoint vanishes from the global table and packets die in
	// the core instead of at a link.
	cur2 := sender.Controller.Current()
	pfx, err := recv.PinnedPrefix(cur2)
	if err != nil {
		panic(err)
	}
	bgpFaultAt := eng.Now() + sim.Time(lead)
	ch.Schedule(chaos.Withdrawal{Speaker: "edge/chi:ny", Prefix: pfx, At: bgpFaultAt, For: faultFor})
	s.Run(lead + faultFor)
	mark(fmt.Sprintf("withdraw path %d", cur2), bgpFaultAt)
	s.Run(20 * time.Second) // re-announcement propagates; switch back
	rec2 := eng.Now()
	s.Run(window)
	mark("recovered(bgp)", rec2)

	// Drain: everything sent is now delivered or definitively lost.
	gen.Stop()
	ch.StopChecks()
	s.Run(2 * time.Second)
	recs := gen.FinalRecords()

	stat := func(from, to sim.Time) (sent, lost int, meanMs float64) {
		var sum time.Duration
		var n int
		for _, rec := range recs {
			if rec.SentAt < from || rec.SentAt >= to {
				continue
			}
			sent++
			if rec.RecvAt == 0 {
				lost++
				continue
			}
			sum += rec.Latency
			n++
		}
		if n > 0 {
			meanMs = ms(sum) / float64(n)
		}
		return sent, lost, meanMs
	}

	r.Rows = append(r.Rows, []string{"phase", "sent", "lost", "mean OWD (ms)", "path after"})
	for _, sp := range spans {
		sent, lost, mean := stat(sp.from, sp.to)
		r.Rows = append(r.Rows, []string{sp.label, fmt.Sprint(sent), fmt.Sprint(lost),
			fmt.Sprintf("%.2f", mean), sender.PathName(sp.cur)})
	}

	_, baseLost, baseOWD := stat(t0, t0+sim.Time(window))

	// Link-down failover: fault instant to the controller's switch.
	ev1, ok1 := firstSwitchAfter(linkFaultAt)
	fail1 := time.Duration(ev1.at - linkFaultAt)
	r.check("controller evacuates the downed path", "stale estimate forces a switch",
		ok1 && ev1.from == orig && fail1 <= grace, "failover %v (bound %v)", fail1, grace)

	// Loss is confined to the convergence window: packets die between
	// the fault and the switch (plus what was in flight), then the new
	// path carries everything until the revert.
	_, lostConv, _ := stat(linkFaultAt, ev1.at+sim.Time(500*time.Millisecond))
	_, lostAfter, _ := stat(ev1.at+sim.Time(500*time.Millisecond), linkFaultAt+sim.Time(faultFor))
	r.check("packets lost only during convergence", "loss window = detection delay",
		lostConv > 0 && lostAfter == 0, "%d lost converging, %d after", lostConv, lostAfter)

	_, rec1Lost, rec1OWD := stat(rec1, rec1+sim.Time(window))
	r.check("post-recovery OWD matches baseline", "path restored, delay restored",
		within(rec1OWD-baseOWD, -1.0, 1.0) && rec1Lost == baseLost,
		"%.2f ms vs baseline %.2f ms", rec1OWD, baseOWD)
	r.check("traffic returns to the pre-fault path", "hysteresis re-admits the faster path",
		spans[2].cur == orig, "on %s", sender.PathName(spans[2].cur))

	// BGP withdrawal failover. Propagation of the withdrawal to chi's
	// POP rides one MRAI hop, so allow it on top of the grace bound.
	ev2, ok2 := firstSwitchAfter(bgpFaultAt)
	fail2 := time.Duration(ev2.at - bgpFaultAt)
	bgpBound := grace + 2*time.Second
	r.check("withdrawal evacuated like a link failure", "control-plane death, data-plane symptom",
		ok2 && ev2.from == cur2 && fail2 <= bgpBound, "failover %v (bound %v)", fail2, bgpBound)

	_, rec2Lost, rec2OWD := stat(rec2, rec2+sim.Time(window))
	r.check("re-announcement restores the path", "OWD and loss back to baseline",
		within(rec2OWD-baseOWD, -1.0, 1.0) && rec2Lost == baseLost,
		"%.2f ms vs baseline %.2f ms, lost %d", rec2OWD, baseOWD, rec2Lost)

	vs := ch.Violations()
	r.check("all chaos invariants held", "zero violations across both faults",
		ch.Invariants() >= 4 && len(vs) == 0, "%d invariants, %d violations (first: %s)",
		ch.Invariants(), len(vs), firstViolation(vs))

	r.note("failover is pure measurement-plane detection: reports stop (max-age %v), "+
		"the estimate goes stale (%v), and MinOWD abandons the path — no link-state signal",
		reportAge, staleAfter)
	r.VirtualTime = time.Duration(eng.Now())
	r.Metrics = deterministicSnapshot(reg)
	r.Trace = traceJSON(journal)
	return r
}

func firstViolation(vs []chaos.Violation) string {
	if len(vs) == 0 {
		return "none"
	}
	return vs[0].String()
}
