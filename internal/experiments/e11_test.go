package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestE11(t *testing.T) {
	requirePassed(t, E11Failover(Config{Seed: 1, Duration: 20 * time.Second}))
}

// TestE11Deterministic is the acceptance gate for seeded reproducibility:
// two runs with the same seed must report identical failover times, loss
// counts, and OWDs — the rendered result is compared byte for byte — and
// a different seed must change the measurements.
func TestE11Deterministic(t *testing.T) {
	render := func(seed int64) string {
		var b strings.Builder
		E11Failover(Config{Seed: seed, Duration: 10 * time.Second}).WriteText(&b)
		return b.String()
	}
	a := render(1)
	if b := render(1); a != b {
		t.Fatalf("same seed diverged:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	if c := render(2); a == c {
		t.Fatalf("different seeds produced identical results:\n%s", a)
	}
}
