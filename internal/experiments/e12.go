package experiments

import (
	"fmt"
	"time"

	"tango/internal/chaos"
	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/topo"
	"tango/internal/workload"
)

// E12ShardedStorm is the scale experiment the sharded engine exists for:
// a wide mesh (64 sites × 16 providers, 320 pairs, 10,240 provisioned
// tunnels at full scale) rides out a seeded chaos storm — link failures,
// loss bursts, delay shifts, and BGP withdrawals drawn over every trunk
// in the deployment — while one application stream and the global
// conservation invariants verify the fabric stays coherent. The driver
// honors cfg.Shards (1 = one worker; the partition layout is fixed by
// the topology either way) and cfg.Sites (CI smoke runs a fraction of
// the full deployment); tango-bench times the full scale at 1 vs. 8
// workers and reports the speedup.
func E12ShardedStorm(cfg Config) *Result {
	r := newResult("E12", "Sharded wide mesh rides out a chaos storm (§6 at scale)")

	sites := cfg.Sites
	if sites == 0 {
		sites = 64
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	probe := cfg.ProbeInterval
	if probe == 0 {
		// 10k tunnels probing at the paper's 10 ms would dominate the
		// event budget; 100 ms keeps the storm the interesting load.
		probe = 100 * time.Millisecond
	}

	tc := topo.WideMeshConfig(cfg.Seed+12, sites)
	tc.Shards = shards
	s, err := topo.NewMeshScenario(tc)
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	m, err := core.MeshFromScenario(s, core.MeshConfig{
		ProbeInterval: probe,
		MaxRounds:     16, // discovery must walk all sixteen shared providers
		DecideEvery:   time.Second,
		NewPolicy: func(site, peer string) control.Policy {
			return &control.MinOWD{HysteresisMs: 0.5, MinDwell: time.Second, StaleAfter: 2 * time.Second}
		},
	})
	if err != nil {
		panic(err)
	}
	m.Establish()
	if !m.RunUntilReady(4 * time.Hour) {
		panic("experiments: wide mesh failed to establish")
	}
	eng := s.B.Eng()
	reg := obs.NewRegistry()
	journal := obs.NewJournal(4096)
	shardHooks(eng, journal)
	m.Instrument(reg, journal)

	tunnels := 0
	for _, k := range s.PairKeys {
		tunnels += len(m.Member(k[0], k[1]).OutPaths) + len(m.Member(k[1], k[0]).OutPaths)
	}
	expect := len(s.PairKeys) * 2 * 16
	r.check("full tunnel fabric provisioned", "every pair pins every shared provider",
		tunnels == expect && (sites < 64 || tunnels >= 10000),
		"%d tunnels across %d pairs", tunnels, len(s.PairKeys))
	r.check("partitioner split the mesh site-per-shard", "radial floors exceed the cut floor",
		s.Layout.Parts == sites+16 && s.Layout.Lookahead == 4*time.Millisecond,
		"%d partitions, lookahead %v", s.Layout.Parts, s.Layout.Lookahead)

	// The probe stream under test: the last chord pair, farthest offset.
	pk := s.PairKeys[len(s.PairKeys)-1]
	sender := m.Member(pk[0], pk[1])
	recv := m.Member(pk[1], pk[0])
	src, err := sender.HostAddr()
	if err != nil {
		panic(err)
	}
	dst, err := recv.HostAddr()
	if err != nil {
		panic(err)
	}
	gen := workload.NewAppGen(sender.Eng(), sender.Switch, src, dst, 5*time.Millisecond, 64)
	gen.BindSink(recv.Eng())
	recv.AddSink(gen.Sink)

	// Chaos over the whole deployment: every trunk is a fault target, and
	// the app pair's edges are withdrawable.
	ch := chaos.New(eng)
	for _, site := range s.SiteNames {
		for prov, line := range s.Trunk[site] {
			ch.AddLine("trunk/"+site+"/"+prov, line)
		}
	}
	ch.AddSpeaker("edge/"+pk[1]+":"+pk[0], recv.Spec.Edge.Speaker)
	ch.Instrument(reg, journal)
	ch.Watch(chaos.Conservation("wide", s.B.W))
	ch.Watch(chaos.BufferBalance("wide", s.B.W))
	ch.StartChecks(time.Second)

	window := cfg.dur(30 * time.Second)
	rng := sim.NewStreams(cfg.Seed + 12).Stream("e12/storm")
	labels := ch.ScheduleStorm(rng, chaos.StormConfig{
		Faults: sites,
		Start:  eng.Now() + sim.Time(2*time.Second),
		Window: window,
		MaxFor: 10 * time.Second,
	})

	enterParallel(eng)
	s.Run(2*time.Second + window + 15*time.Second) // lead + storm + reverts land
	gen.Stop()
	ch.StopChecks()
	s.Run(2 * time.Second)
	recs := gen.FinalRecords()

	sent, delivered := len(recs), 0
	for _, rec := range recs {
		if rec.RecvAt != 0 {
			delivered++
		}
	}
	ratio := 0.0
	if sent > 0 {
		ratio = float64(delivered) / float64(sent)
	}

	r.Rows = append(r.Rows, []string{"quantity", "value"})
	for _, row := range [][2]string{
		{"sites", fmt.Sprint(sites)},
		{"pairs", fmt.Sprint(len(s.PairKeys))},
		{"tunnels", fmt.Sprint(tunnels)},
		{"partitions", fmt.Sprint(s.Layout.Parts)},
		{"lookahead", s.Layout.Lookahead.String()},
		{"storm faults", fmt.Sprint(len(labels))},
		{"app sent", fmt.Sprint(sent)},
		{"app delivered", fmt.Sprint(delivered)},
	} {
		r.Rows = append(r.Rows, []string{row[0], row[1]})
	}

	r.check("storm drew its full fault schedule", "seeded draw over every trunk",
		len(labels) == sites, "%d faults", len(labels))
	r.check("stream survived the storm", "failover keeps the pair delivering",
		sent > 0 && ratio >= 0.5, "%d/%d delivered (%.0f%%)", delivered, sent, ratio*100)
	vs := ch.Violations()
	r.check("conservation held through the storm", "no packet leaked or double-counted",
		ch.Invariants() == 2 && len(vs) == 0, "%d violations (first: %s)", len(vs), firstViolation(vs))

	r.note("the storm draws %d faults over %d trunk lines; probes run at %v so the "+
		"fault timeline, not the probe plane, is the dominant load", sites, sites*16, probe)
	r.VirtualTime = time.Duration(eng.Now())
	r.Metrics = deterministicSnapshot(reg)
	r.Trace = traceJSON(journal)
	return r
}
