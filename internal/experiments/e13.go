package experiments

import (
	"fmt"
	"math"
	"time"

	"tango/internal/chaos"
	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/topo"
	"tango/internal/workload"
)

// e13TargetPPS bounds the aggregate emission rate of the flow
// population. One million concurrent flows at real per-class rates
// would emit ~58M packets per virtual second — far beyond any event
// budget — so E13 stretches every class interval by one common factor
// until the aggregate lands near this budget. Concurrency (what the
// flyweight table is for) is unchanged: all flows stay live the whole
// window; only the per-flow cadence slows.
const e13TargetPPS = 50_000

// e13AvgPPSPerFlow is the mean per-flow packet rate of the default
// class mix at real cadence (VoIP 50/s, video 100/s, bulk 25/s,
// uniformly mixed).
const e13AvgPPSPerFlow = 58

// E13FlowStorm is the edge-scale workload experiment the flyweight flow
// table exists for (§4.2's scalability claim made measurable): one
// million concurrent flows — VoIP, video, and bulk classes, spread over
// every pair of the E12 wide mesh — ride out a path-failure storm while
// per-class SLOs are checked straight from the obs histograms. A
// flash-crowd arrival process churns extra short-lived flows through
// one site's table mid-storm. Each site owns one flow table on its own
// partition (sender-side emit on the owner engine, receiver-side
// accounting in the receiving partition's sink), so the run honors
// cfg.Shards and the shard-invariance differential covers it.
func E13FlowStorm(cfg Config) *Result {
	r := newResult("E13", "1M concurrent flows ride out a path-failure storm (§4.2 at edge scale)")

	sites := cfg.Sites
	if sites == 0 {
		sites = 64
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	flows := cfg.Flows
	if flows == 0 {
		flows = 1_000_000
	}
	probe := cfg.ProbeInterval
	if probe == 0 {
		probe = 100 * time.Millisecond // as in E12: the storm, not the probe plane, is the load
	}

	tc := topo.WideMeshConfig(cfg.Seed+13, sites)
	tc.Shards = shards
	s, err := topo.NewMeshScenario(tc)
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	m, err := core.MeshFromScenario(s, core.MeshConfig{
		ProbeInterval: probe,
		MaxRounds:     16,
		DecideEvery:   time.Second,
		NewPolicy: func(site, peer string) control.Policy {
			return &control.MinOWD{HysteresisMs: 0.5, MinDwell: time.Second, StaleAfter: 2 * time.Second}
		},
	})
	if err != nil {
		panic(err)
	}
	m.Establish()
	if !m.RunUntilReady(4 * time.Hour) {
		panic("experiments: wide mesh failed to establish")
	}
	eng := s.B.Eng()
	reg := obs.NewRegistry()
	journal := obs.NewJournal(4096)
	shardHooks(eng, journal)
	m.Instrument(reg, journal)

	// Stretch the class cadence so the whole population emits near the
	// packet budget, keeping concurrency (the thing under test) intact.
	slowdown := int64(1)
	if sd := int64(math.Ceil(float64(flows) * e13AvgPPSPerFlow / e13TargetPPS)); sd > 1 {
		slowdown = sd
	}
	classes := workload.DefaultClasses()
	for c := range classes {
		classes[c].Interval *= time.Duration(slowdown)
	}

	window := cfg.dur(30 * time.Second)
	stopAt := 2*time.Second + window

	// One flow table per site, owned by that site's partition; one
	// endpoint per member pair, sending host-to-host like E12's app
	// stream; the sink lands on the receiving member's partition. The
	// flash site's table gets slack beyond the standing population for
	// the arrival churn (the fluid generator's exact integral bounds it).
	endpoints := 2 * len(s.PairKeys)
	perEp := flows / endpoints
	standing := perEp * endpoints
	flashSite := s.SiteNames[0]
	arrivalSlack := int(20*stopAt.Seconds()+40*window.Seconds()) + 64
	tables := make(map[string]*workload.FlowTable, len(s.SiteNames))
	for _, site := range s.SiteNames {
		members := m.MembersOf(site)
		capacity := perEp * len(members)
		if site == flashSite {
			capacity += arrivalSlack
		}
		t := workload.NewFlowTable(members[0].Eng(), classes, capacity)
		t.Instrument(reg, site)
		tables[site] = t
	}
	type boundEp struct {
		table *workload.FlowTable
		ep    int
	}
	var eps []boundEp
	wire := func(site, peer string) {
		sender := m.Member(site, peer)
		recv := m.Member(peer, site)
		if sender.Eng() != tables[site].Eng() {
			panic("experiments: site members span partitions; flow table ownership broken")
		}
		src, err := sender.HostAddr()
		if err != nil {
			panic(err)
		}
		dst, err := recv.HostAddr()
		if err != nil {
			panic(err)
		}
		ep := tables[site].AddEndpoint(sender.Switch, src, dst)
		recv.AddSink(tables[site].SinkFor(recv.Eng()))
		eps = append(eps, boundEp{tables[site], ep})
	}
	for _, pk := range s.PairKeys {
		wire(pk[0], pk[1])
		wire(pk[1], pk[0])
	}

	// The standing population: perEp flows per endpoint, class mix
	// round-robin, start staggers arithmetically spread across each
	// class interval so wheel buckets fill evenly. Lifetimes are
	// effectively infinite — these flows stay concurrent all run.
	for _, be := range eps {
		for k := 0; k < perEp; k++ {
			c := workload.Class(k % workload.NumClasses)
			iv := classes[c].Interval
			stagger := time.Duration(int64(k)) * iv / time.Duration(perEp)
			if be.table.Start(be.ep, c, 1<<31, stagger) < 0 {
				panic("experiments: standing flow refused below capacity")
			}
		}
	}
	active := 0
	for _, t := range tables {
		active += t.Active()
	}
	r.check("standing flow population live", "the table holds the whole population concurrently",
		active == standing, "%d concurrent flows across %d sites", active, len(tables))

	// Chaos over the whole deployment, exactly E12's storm shape.
	ch := chaos.New(eng)
	for _, site := range s.SiteNames {
		for prov, line := range s.Trunk[site] {
			ch.AddLine("trunk/"+site+"/"+prov, line)
		}
	}
	ch.Instrument(reg, journal)
	ch.Watch(chaos.Conservation("wide", s.B.W))
	ch.Watch(chaos.BufferBalance("wide", s.B.W))
	ch.StartChecks(time.Second)

	rng := sim.NewStreams(cfg.Seed + 13).Stream("e13/storm")
	labels := ch.ScheduleStorm(rng, chaos.StormConfig{
		Faults: sites,
		Start:  eng.Now() + sim.Time(2*time.Second),
		Window: window,
		MaxFor: 10 * time.Second,
	})

	// A flash crowd churns short-lived flows through the first site's
	// table while the storm runs: arrivals spike 5x mid-window.
	flashTable := tables[flashSite]
	arr := flashTable.StartArrivals(
		sim.NewStreams(cfg.Seed+13).Stream("e13/arrivals"),
		workload.ArrivalConfig{
			Rate:        20,
			Emits:       4,
			FlashAt:     eng.Now() + sim.Time(2*time.Second) + sim.Time(window/4),
			FlashFor:    window / 2,
			FlashFactor: 5,
		})

	// Emission stops at the end of the storm window. Each stop runs on
	// its table's owner engine, and each capture writes a distinct slice
	// element, so the parallel partitions never touch shared state; the
	// remaining run time drains in-flight packets and lets chaos reverts
	// land.
	activeAtStop := make([]int, len(s.SiteNames))
	for i, site := range s.SiteNames {
		i, t := i, tables[site]
		t.Eng().Schedule(stopAt, func() {
			activeAtStop[i] = t.Active()
			t.Stop()
		})
	}
	flashTable.Eng().Schedule(stopAt, arr.Stop)

	enterParallel(eng)
	s.Run(stopAt + 10*time.Second)
	ch.StopChecks()
	s.Run(2 * time.Second)

	// Aggregate per-class counters and histograms across every site.
	var stats [workload.NumClasses]workload.FlowClassStats
	var owdH, inH [workload.NumClasses][]*obs.Histogram
	peak, stillActive := 0, 0
	for i, site := range s.SiteNames {
		t := tables[site]
		peak += t.Peak()
		stillActive += activeAtStop[i]
		for c := workload.Class(0); c < workload.NumClasses; c++ {
			cs := t.ClassStats(c)
			stats[c].Sent += cs.Sent
			stats[c].Delivered += cs.Delivered
			stats[c].Dups += cs.Dups
			stats[c].Gaps += cs.Gaps
			stats[c].Refused += cs.Refused
			owdH[c] = append(owdH[c], t.OWDHistogram(c))
			inH[c] = append(inH[c], t.InOrderHistogram(c))
		}
	}

	r.Rows = append(r.Rows, []string{"quantity", "value"})
	for _, row := range [][2]string{
		{"sites", fmt.Sprint(sites)},
		{"pairs", fmt.Sprint(len(s.PairKeys))},
		{"standing flows", fmt.Sprint(standing)},
		{"flash arrivals", fmt.Sprint(arr.Started)},
		{"peak concurrent", fmt.Sprint(peak)},
		{"interval slowdown", fmt.Sprint(slowdown)},
		{"storm faults", fmt.Sprint(len(labels))},
	} {
		r.Rows = append(r.Rows, []string{row[0], row[1]})
	}
	for c := workload.Class(0); c < workload.NumClasses; c++ {
		ratio := 0.0
		if stats[c].Sent > 0 {
			ratio = float64(stats[c].Delivered) / float64(stats[c].Sent)
		}
		r.Rows = append(r.Rows, []string{c.String() + " sent/delivered",
			fmt.Sprintf("%d/%d (%.1f%%)", stats[c].Sent, stats[c].Delivered, ratio*100)})
		r.Rows = append(r.Rows, []string{c.String() + " p99 OWD",
			time.Duration(combinedQuantile(owdH[c], 0.99)).String()})
		r.Rows = append(r.Rows, []string{c.String() + " p99 in-order",
			time.Duration(combinedQuantile(inH[c], 0.99)).String()})
	}

	r.check("population survived to the stop line", "flows stay concurrent through the storm",
		stillActive >= standing, "%d active at stop (standing %d)", stillActive, standing)
	r.check("flash crowd churned arrivals", "diurnal/flash generator drives extra flows",
		arr.Started > 0 && arr.Refused == 0, "%d started, %d refused", arr.Started, arr.Refused)

	// Per-class SLOs from the obs layer. The delivery bar mirrors E12's
	// storm criterion; the latency bars are generous 2x-bucket bounds on
	// healthy wide-mesh OWD (failover keeps the population off dead
	// paths for most of the window).
	voipP99 := combinedQuantile(owdH[workload.ClassVoIP], 0.99)
	r.check("VoIP SLO: p99 OWD under 250ms", "jitter-sensitive class stays interactive (§5)",
		stats[workload.ClassVoIP].Delivered > 0 && voipP99 <= int64(250*time.Millisecond),
		"p99 %v over %d deliveries", time.Duration(voipP99), stats[workload.ClassVoIP].Delivered)
	videoP99 := combinedQuantile(inH[workload.ClassVideo], 0.99)
	r.check("video SLO: p99 in-order under 1s", "HoL blocking stays bounded (§5)",
		stats[workload.ClassVideo].Delivered > 0 && videoP99 <= int64(time.Second),
		"p99 in-order %v", time.Duration(videoP99))
	for c := workload.Class(0); c < workload.NumClasses; c++ {
		ratio := 0.0
		if stats[c].Sent > 0 {
			ratio = float64(stats[c].Delivered) / float64(stats[c].Sent)
		}
		r.check(c.String()+" SLO: delivery through the storm", "failover keeps each class delivering",
			stats[c].Sent > 0 && ratio >= 0.5,
			"%d/%d delivered (%.0f%%)", stats[c].Delivered, stats[c].Sent, ratio*100)
	}

	r.check("storm drew its full fault schedule", "seeded draw over every trunk",
		len(labels) == sites, "%d faults", len(labels))
	vs := ch.Violations()
	r.check("conservation held through the storm", "no packet leaked or double-counted",
		ch.Invariants() == 2 && len(vs) == 0, "%d violations (first: %s)", len(vs), firstViolation(vs))

	r.note("class cadence is stretched %dx so %d concurrent flows emit ~%d pps aggregate; "+
		"concurrency, arrival churn, and per-packet accounting run at full scale",
		slowdown, standing, e13TargetPPS)
	r.VirtualTime = time.Duration(eng.Now())
	r.Metrics = deterministicSnapshot(reg)
	r.Trace = traceJSON(journal)
	return r
}

// combinedQuantile computes the q-quantile upper bound over the union
// of several histograms (summing per-bucket counts, exactly Histogram.
// Quantile's rule over the merged distribution).
func combinedQuantile(hs []*obs.Histogram, q float64) int64 {
	var total uint64
	for _, h := range hs {
		total += h.Count()
	}
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < obs.NumBuckets; i++ {
		for _, h := range hs {
			cum += h.Bucket(i)
		}
		if cum >= need {
			return obs.BucketUpperBound(i)
		}
	}
	return math.MaxInt64
}
