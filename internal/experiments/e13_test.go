package experiments

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// e13Smoke is the CI-sized E13: a fraction of the wide mesh with a few
// thousand concurrent flows — big enough that the wheel drains real
// batches on every partition, small enough for the race detector.
func e13Smoke(seed int64, shards int) *Result {
	return E13FlowStorm(Config{
		Seed:     seed,
		Sites:    12,
		Flows:    3000,
		Duration: 3 * time.Second,
		Shards:   shards,
	})
}

// TestE13SmokeShardInvariant extends the shard-invariance contract to
// the flow table: the per-class counters and histograms are the union
// of commuting atomic updates and every flow slot is touched by exactly
// one sending and one receiving partition, so a 1-worker and an
// N-worker run must agree bit-for-bit on the Result and the journal.
func TestE13SmokeShardInvariant(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			base := e13Smoke(seed, 1)
			requirePassed(t, base)
			got := e13Smoke(seed, 2)
			if base.Trace != got.Trace {
				t.Errorf("E13 trace journal diverged between 1 and 2 workers")
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("E13 Result diverged between 1 and 2 workers:\n--- workers=1\n%s\n--- workers=2\n%s",
					renderResult(base), renderResult(got))
			}
		})
	}
}
