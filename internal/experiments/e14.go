package experiments

import (
	"fmt"

	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/topo"
)

// e14RecallFloor is the pinned diversity-recall floor: the mean per-pair
// fraction of ground-truth providers the §4.1 loop must expose. On
// generated graphs the loop is exhaustive in steady state (Gao-Rexford
// preference keeps the most re-exportable route selected, so every
// unsuppressed true provider stays observable), so the measured recall
// sits at 1.0; the floor leaves margin only for convergence-timing
// artifacts on future topology families.
const e14RecallFloor = 0.90

// E14DiscoverySweep measures the discovery loop against a generated
// internet (ROADMAP item 1): a seeded Gao-Rexford AS graph — tiered
// transit core, power-law provider degrees, multi-homed stub sites — at
// full scale 521 ASes, with concurrent discovery over 64 seeded site
// pairs scored against the generator's exhaustively enumerated
// valley-free ground truth. cfg.Shards sets the RunJobs worker count
// (results are identical across values — the differential test pins it);
// cfg.Sites scales the graph down for CI smoke.
func E14DiscoverySweep(cfg Config) *Result {
	r := newResult("E14", "Discovery sweeps vs valley-free ground truth on a generated internet (§4.1)")

	sites := cfg.Sites
	full := sites == 0
	if full {
		sites = 440
	}
	tier1 := 4
	if full {
		tier1 = 8
	}
	tier2 := max(6, sites/6)
	gcfg := topo.GenConfig{
		Seed:           cfg.Seed + 14,
		Tier1:          tier1,
		Tier2:          tier2,
		Sites:          sites,
		MinHoming:      2,
		MaxHoming:      min(4, tier2),
		Tier2MaxHoming: 2,
		PeerLinks:      tier2 / 2,
		PrefExp:        1.0,
	}
	npairs := 64
	if !full {
		npairs = max(4, sites/2)
	}
	workers := cfg.Shards
	if workers == 0 {
		workers = 1
	}

	// Seeded distinct ordered pairs over the stub sites.
	rng := sim.NewStreams(cfg.Seed + 14).Stream("e14/pairs")
	stubBase := gcfg.Tier1 + gcfg.Tier2
	seen := map[[2]int]bool{}
	var pairs [][2]int
	for len(pairs) < npairs {
		p := [2]int{stubBase + rng.Intn(sites), stubBase + rng.Intn(sites)}
		if p[0] == p[1] || seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}

	rep, err := RunSweep(SweepConfig{
		Graph:   gcfg,
		Pairs:   pairs,
		Chunks:  min(8, npairs),
		Workers: workers,
	})
	if err != nil {
		r.Err = err.Error()
		return r
	}

	reg := obs.NewRegistry()
	recallH := reg.Histogram("tango_e14_recall_pct", "per-pair discovery recall vs valley-free ground truth (%)")
	foundH := reg.Histogram("tango_e14_discovered_paths", "paths discovered per pair")
	truthH := reg.Histogram("tango_e14_truth_providers", "ground-truth providers per pair")
	lenH := reg.Histogram("tango_e14_path_len", "observed AS-path length (hops)")

	sumRecall := 0.0
	totalFound, totalTruth := 0, 0
	phantomFree, valleyFree, nonEmpty := true, true, true
	for _, p := range rep.Pairs {
		sumRecall += p.Recall
		totalFound += len(p.Providers)
		totalTruth += len(p.Truth)
		phantomFree = phantomFree && p.PhantomFree
		valleyFree = valleyFree && p.ValleyFree
		nonEmpty = nonEmpty && len(p.Found) > 0
		recallH.Observe(int64(p.Recall * 100))
		foundH.Observe(int64(len(p.Found)))
		truthH.Observe(int64(len(p.Truth)))
		for _, f := range p.Found {
			lenH.Observe(int64(len(f.Path)))
		}
	}
	meanRecall := sumRecall / float64(len(rep.Pairs))

	g := rep.Graph
	r.Rows = append(r.Rows, []string{"quantity", "value"})
	for _, row := range [][2]string{
		{"ASes", fmt.Sprint(len(g.ASes))},
		{"adjacencies", fmt.Sprint(len(g.Edges))},
		{"pairs swept", fmt.Sprint(len(rep.Pairs))},
		{"chunks", fmt.Sprint(rep.Chunks)},
		{"providers discovered", fmt.Sprint(totalFound)},
		{"ground-truth providers", fmt.Sprint(totalTruth)},
		{"mean recall", fmt.Sprintf("%.3f", meanRecall)},
	} {
		r.Rows = append(r.Rows, []string{row[0], row[1]})
	}

	r.check("generated internet at target scale", "≥500 ASes, connected, provider-acyclic",
		g.Connected() && g.ProviderAcyclic() && (!full || len(g.ASes) >= 500),
		"%d ASes, %d adjacencies", len(g.ASes), len(g.Edges))
	r.check("sweep coverage", "≥64 concurrent site pairs",
		(!full || len(rep.Pairs) >= 64) && len(rep.Pairs) >= 4,
		"%d pairs in %d chunks", len(rep.Pairs), rep.Chunks)
	r.check("every pair discovered a path", "the default route is always observable",
		nonEmpty, "min rounds > 0 across %d pairs", len(rep.Pairs))
	r.check("diversity recall at the pinned floor", fmt.Sprintf("recall ≥ %.2f", e14RecallFloor),
		meanRecall >= e14RecallFloor, "mean recall %.3f (%d/%d providers)", meanRecall, totalFound, totalTruth)
	r.check("no phantom providers", "discovered ⊆ valley-free ground truth",
		phantomFree, "phantom-free=%v", phantomFree)
	r.check("observed paths valley-free", "every path obeys Gao-Rexford export",
		valleyFree, "valley-free=%v", valleyFree)

	r.note("discovery is community-driven (64600:<asn>) against each destination site; " +
		"ground truth is the generator's two-state valley-free reachability per provider")
	r.VirtualTime = rep.VirtualTime
	r.Metrics = deterministicSnapshot(reg)
	r.Trace = rep.Trace
	return r
}
