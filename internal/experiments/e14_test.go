package experiments

import (
	"reflect"
	"testing"

	"tango/internal/topo"
)

// e14Smoke is the CI-scale configuration: a ~34-AS generated internet
// with 8 swept pairs, the same shape the race job's smoke step runs.
func e14Smoke(seed int64, workers int) *Result {
	return E14DiscoverySweep(Config{Seed: seed, Sites: 16, Shards: workers})
}

func TestE14Smoke(t *testing.T) {
	requirePassed(t, e14Smoke(1, 2))
}

// TestE14SweepWorkerInvariance is the sweep driver's differential test:
// serial (one worker) and RunJobs-parallel discovery over the same pair
// set must produce deeply equal Results and byte-identical merged trace
// journals — across at least 5 seeds, under -race in CI.
func TestE14SweepWorkerInvariance(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		base := e14Smoke(seed, 1)
		requirePassed(t, base)
		got := e14Smoke(seed, 4)
		if base.Trace != got.Trace {
			t.Fatalf("seed %d: merged trace journal differs between 1 and 4 workers", seed)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("seed %d: Results differ between 1 and 4 workers", seed)
		}
	}
}

// TestRunSweepTopoShardInvariance pins the sharded-construction path:
// building every chunk's replica over the PR 6 partitioned network (in
// coupled mode — discovery reads RIBs across partitions) must produce
// identical outcomes for any positive worker count, the same contract
// MeshConfig.Shards carries. The classic (unsharded) build is a separate
// code path with its own RNG layout; it is scored independently, not
// compared byte-for-byte.
func TestRunSweepTopoShardInvariance(t *testing.T) {
	gcfg := topo.DefaultGenConfig(7, 12)
	pairs := [][2]int{
		{gcfg.Tier1 + gcfg.Tier2 + 0, gcfg.Tier1 + gcfg.Tier2 + 5},
		{gcfg.Tier1 + gcfg.Tier2 + 3, gcfg.Tier1 + gcfg.Tier2 + 9},
		{gcfg.Tier1 + gcfg.Tier2 + 11, gcfg.Tier1 + gcfg.Tier2 + 2},
		{gcfg.Tier1 + gcfg.Tier2 + 6, gcfg.Tier1 + gcfg.Tier2 + 0},
	}
	run := func(shards int) *SweepReport {
		rep, err := RunSweep(SweepConfig{Graph: gcfg, Pairs: pairs, Chunks: 2, Workers: 2, TopoShards: shards})
		if err != nil {
			t.Fatalf("TopoShards=%d: %v", shards, err)
		}
		for _, p := range rep.Pairs {
			if len(p.Found) == 0 {
				t.Fatalf("TopoShards=%d: pair %d->%d discovered nothing", shards, p.Src, p.Dst)
			}
			if !p.PhantomFree || !p.ValleyFree || p.Recall < 1 {
				t.Fatalf("TopoShards=%d: pair %d->%d scored recall=%.2f phantomFree=%v valleyFree=%v",
					shards, p.Src, p.Dst, p.Recall, p.PhantomFree, p.ValleyFree)
			}
		}
		return rep
	}
	run(0) // classic path must score perfectly too
	base := run(1)
	got := run(2)
	if base.Trace != got.Trace {
		t.Fatalf("trace differs between TopoShards=1 and TopoShards=2")
	}
	if !reflect.DeepEqual(base.Pairs, got.Pairs) {
		t.Fatalf("pair results differ between TopoShards=1 and TopoShards=2")
	}
}
