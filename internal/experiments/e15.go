package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/simnet"
	"tango/internal/te"
	"tango/internal/topo"
	"tango/internal/workload"
)

// e15TargetPPS bounds the aggregate flow emission rate, exactly like
// E13: class intervals stretch by one common factor until the offered
// packet rate lands near the budget. Demands and capacities are both
// derived from the stretched rates, so the utilization picture is
// invariant under the stretch.
const e15TargetPPS = 40_000

// e15Lead is the head start between flow start and the measurement
// window: staggered first emissions land and the baseline controllers
// take their first loaded decisions before utilization is scored.
const e15Lead = 2 * time.Second

// e15ScarceShare / e15Share set the capacity skew: the fastest provider
// (P00, the one every greedy min-OWD policy herds onto) gets the scarce
// share of a site's offered load, every other provider a comfortable
// share. Total capacity is 2.5x demand, so a spread placement fits at
// ~0.4 utilization while any single-provider herd oversubscribes.
const (
	e15ScarceShare = 0.10
	e15Share       = 0.16
)

// e15Flows returns the flow count for one (sender site, receiver site,
// class) demand — a deterministic skew in 4..16 so the matrix is far
// from uniform.
func e15Flows(si, sj, c int) int { return 4 * (1 + (si*5+sj*3+c)%4) }

// e15Demand is one row of the demand matrix: a directed pair and class.
type e15Demand struct {
	from, to string
	class    workload.Class
	flows    int
	rateBps  float64 // offered wire rate after the interval stretch
}

// e15Stats is one sub-run's measured outcome.
type e15Stats struct {
	tunnels    int
	slowdown   int64
	peakUtil   float64
	solvedUtil float64 // TE run only: the solver's predicted max util
	classSent  [workload.NumClasses]uint64
	classDelvd [workload.NumClasses]uint64
	owdP99     [workload.NumClasses]int64
	combP99    int64
	virtual    time.Duration
	metrics    map[string]float64
	trace      string
}

// pinProviderRoutes pins the forwarding of every tunnel's remote /48 to
// its provider: sender POP up the provider's trunk, provider hub down to
// the receiving POP, receiving POP to the owning edge. The scenario's
// BGP plane re-advertises transit routes without export policy, so after
// the discovery rounds a POP's best path for a pinned prefix can be a
// longer detour through another provider or even an edge AS — harmless
// when links are delay-only, but fatal to capacity accounting, where the
// TE model (and the experiment's utilization meters) must know exactly
// which trunk a tunnel loads. Both steering regimes get the same pinned
// forwarding, so the comparison stays apples-to-apples.
func pinProviderRoutes(s *topo.MeshScenario, m *core.Mesh) {
	portTo := func(n *simnet.Node, peer string) *simnet.Port {
		for _, pt := range n.Ports() {
			if pt.Peer().Name() == peer {
				return pt
			}
		}
		panic("experiments: node " + n.Name() + " has no port toward " + peer)
	}
	hubByASN := map[bgp.ASN]*simnet.Node{}
	for _, p := range s.Providers {
		hubByASN[p.ASN] = p.Node
	}
	for _, pk := range s.PairKeys {
		for k := 0; k < 2; k++ {
			from, to := pk[0], pk[1]
			if k == 1 {
				from, to = pk[1], pk[0]
			}
			sender := m.Member(from, to)
			recv := m.Member(to, from)
			pop := s.POPs[from].Node
			rpop := s.POPs[to].Node
			for i, dp := range sender.OutPaths {
				pfx, err := recv.PinnedPrefix(uint8(i + 1))
				if err != nil {
					panic(err)
				}
				hub, ok := hubByASN[dp.ProviderASN]
				if !ok {
					panic(fmt.Sprintf("experiments: tunnel provider AS%d is not a scenario provider", dp.ProviderASN))
				}
				pop.SetRoute(pfx, portTo(pop, hub.Name()))
				hub.SetRoute(pfx, portTo(hub, "pop-"+to))
				rpop.SetRoute(pfx, portTo(rpop, "edge-"+to+":"+from))
			}
		}
	}
}

// e15Run builds the wide mesh once and measures one steering regime:
// optimize=false leaves the per-pair min-OWD controllers in charge
// (greedy best-path, the regime the paper's §5 motivation criticizes),
// optimize=true disables them and installs Link-Guided Local Search
// weights through per-class selectors instead. Both regimes see the
// identical topology, capacities, demand matrix, and probe plane.
func e15Run(cfg Config, sites, shards int, optimize bool) *e15Stats {
	probe := cfg.ProbeInterval
	if probe == 0 {
		probe = 100 * time.Millisecond // as in E12/E13: data, not probes, is the load
	}
	tc := topo.WideMeshConfig(cfg.Seed+15, sites)
	tc.Shards = shards
	s, err := topo.NewMeshScenario(tc)
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	mc := core.MeshConfig{
		ProbeInterval: probe,
		MaxRounds:     16,
		NewPolicy: func(site, peer string) control.Policy {
			return &control.MinOWD{HysteresisMs: 0.5, MinDwell: time.Second, StaleAfter: 2 * time.Second}
		},
	}
	if !optimize {
		mc.DecideEvery = time.Second
	}
	m, err := core.MeshFromScenario(s, mc)
	if err != nil {
		panic(err)
	}
	m.Establish()
	if !m.RunUntilReady(4 * time.Hour) {
		panic("experiments: wide mesh failed to establish")
	}
	pinProviderRoutes(s, m)
	eng := s.B.Eng()
	reg := obs.NewRegistry()
	journal := obs.NewJournal(4096)
	shardHooks(eng, journal)
	m.Instrument(reg, journal)

	// Provider order (P00 fastest) and site order index the TE link
	// array: links[(si*P+pi)*2] is site si's uplink through provider pi,
	// +1 the downlink toward it.
	provNames := make([]string, 0, len(s.Providers))
	for name := range s.Providers {
		provNames = append(provNames, name)
	}
	sort.Strings(provNames)
	provIdx := map[bgp.ASN]int{}
	for pi, name := range provNames {
		provIdx[s.Providers[name].ASN] = pi
	}
	siteIdx := map[string]int{}
	for si, name := range s.SiteNames {
		siteIdx[name] = si
	}
	nProv := len(provNames)
	up := func(si, pi int) int { return (si*nProv + pi) * 2 }
	down := func(si, pi int) int { return (si*nProv+pi)*2 + 1 }

	// The demand matrix, in deterministic pair order. The stretch factor
	// keeps the aggregate near the packet budget (concurrency and the
	// relative demand skew are untouched), so rates are computed after
	// it is known.
	classes := workload.DefaultClasses()
	var demands []e15Demand
	totalPPS := 0.0
	for _, pk := range s.PairKeys {
		for k := 0; k < 2; k++ {
			from, to := pk[0], pk[1]
			if k == 1 {
				from, to = pk[1], pk[0]
			}
			for c := 0; c < workload.NumClasses; c++ {
				nf := e15Flows(siteIdx[from], siteIdx[to], c)
				demands = append(demands, e15Demand{from: from, to: to, class: workload.Class(c), flows: nf})
				totalPPS += float64(nf) * float64(time.Second) / float64(classes[c].Interval)
			}
		}
	}
	slowdown := int64(1)
	if sd := int64(math.Ceil(totalPPS / e15TargetPPS)); sd > 1 {
		slowdown = sd
	}
	for c := range classes {
		classes[c].Interval *= time.Duration(slowdown)
	}
	// Wire rate per flow: inner (48B headers + payload) plus the outer
	// IPv6/UDP/Tango encapsulation (64B), at the stretched cadence.
	wireBps := func(c workload.Class) float64 {
		bits := float64(classes[c].Payload+48+64) * 8
		return bits / classes[c].Interval.Seconds()
	}
	dOut := make([]float64, len(s.SiteNames))
	dIn := make([]float64, len(s.SiteNames))
	for i := range demands {
		d := &demands[i]
		d.rateBps = float64(d.flows) * wireBps(d.class)
		dOut[siteIdx[d.from]] += d.rateBps
		dIn[siteIdx[d.to]] += d.rateBps
	}

	// Capacitate every trunk direction with the skewed shares and build
	// the matching TE link array. Capacities go in after establishment so
	// the (uncapacitated) BGP convergence phase is identical either way.
	links := make([]te.Link, 2*len(s.SiteNames)*nProv)
	type meterLine struct {
		line  *simnet.Line
		gauge *obs.Gauge
	}
	lines := make([]meterLine, len(links))
	for si, site := range s.SiteNames {
		for pi, prov := range provNames {
			for dir, li := range [2]int{up(si, pi), down(si, pi)} {
				share := e15Share
				if pi == 0 {
					share = e15ScarceShare
				}
				capBps := share * dOut[si]
				name := "up/" + site + "/" + prov
				ln := s.Uplink[site][prov]
				if dir == 1 {
					capBps = share * dIn[si]
					name = "down/" + site + "/" + prov
					ln = s.Trunk[site][prov]
				}
				ln.SetCapacity(capBps)
				links[li] = te.Link{Name: name, CapacityBps: capBps}
				lines[li] = meterLine{line: ln, gauge: reg.Gauge("tango_link_utilization",
					"Peak windowed utilization of a capacitated trunk line.", obs.L("line", name))}
			}
		}
	}

	// One flow table per site (E13's ownership pattern): sender-side
	// emission on the site's partition, receiver-side accounting in the
	// receiving partition's sink.
	type boundEp struct {
		table *workload.FlowTable
		ep    int
	}
	siteFlows := map[string]int{}
	for _, d := range demands {
		siteFlows[d.from] += d.flows
	}
	tables := make(map[string]*workload.FlowTable, len(s.SiteNames))
	for _, site := range s.SiteNames {
		t := workload.NewFlowTable(m.MembersOf(site)[0].Eng(), classes, siteFlows[site])
		t.Instrument(reg, site)
		tables[site] = t
	}
	eps := map[string]boundEp{}
	tunnels := 0
	for _, pk := range s.PairKeys {
		for k := 0; k < 2; k++ {
			from, to := pk[0], pk[1]
			if k == 1 {
				from, to = pk[1], pk[0]
			}
			sender := m.Member(from, to)
			recv := m.Member(to, from)
			tunnels += len(sender.OutPaths)
			src, err := sender.HostAddr()
			if err != nil {
				panic(err)
			}
			dst, err := recv.HostAddr()
			if err != nil {
				panic(err)
			}
			ep := tables[from].AddEndpoint(sender.Switch, src, dst)
			recv.AddSink(tables[from].SinkFor(recv.Eng()))
			eps[from+":"+to] = boundEp{tables[from], ep}
		}
	}

	st := &e15Stats{tunnels: tunnels, slowdown: slowdown}

	if optimize {
		// Replace each member's controller selector with a per-class
		// weighted selector and install one solve of the shared problem.
		// On a sharded network the installs must land before parallel
		// epochs begin (they mutate selectors owned by other partitions),
		// so the cadence stays off and the placement is static.
		prob := &te.Problem{Links: links}
		var installs []control.TEInstall
		selectors := map[string]*dataplane.ClassSelector{}
		pathIDs := map[string][]uint8{}
		for di := range demands {
			d := &demands[di]
			key := d.from + ":" + d.to
			sender := m.Member(d.from, d.to)
			cs, ok := selectors[key]
			if !ok {
				cs = dataplane.NewClassSelector(sender.Switch, workload.NumClasses)
				sender.Switch.SetSelector(cs.Select)
				selectors[key] = cs
				ids := make([]uint8, len(sender.OutPaths))
				for i := range sender.OutPaths {
					ids[i] = uint8(i + 1)
				}
				pathIDs[key] = ids
			}
			paths := make([][]int, len(sender.OutPaths))
			for i, dp := range sender.OutPaths {
				pi, ok := provIdx[dp.ProviderASN]
				if !ok {
					panic(fmt.Sprintf("experiments: unknown provider AS%d on %s", dp.ProviderASN, key))
				}
				paths[i] = []int{up(siteIdx[d.from], pi), down(siteIdx[d.to], pi)}
			}
			prob.Demands = append(prob.Demands, te.Demand{
				Name:    key + "/" + d.class.String(),
				RateBps: d.rateBps,
				Paths:   paths,
			})
			installs = append(installs, control.TEInstall{
				Demand: di, Class: int(d.class), Selector: cs, PathIDs: pathIDs[key],
			})
		}
		solver := te.NewSolver(prob, cfg.Seed+15)
		pol := control.NewTEPolicy(eng, solver, installs)
		st.solvedUtil = pol.Install()
	}

	// Start the standing flows, staggered across each class interval so
	// emissions spread evenly over the measurement windows.
	for _, d := range demands {
		be := eps[d.from+":"+d.to]
		iv := classes[d.class].Interval
		for k := 0; k < d.flows; k++ {
			stagger := time.Duration(int64(k)) * iv / time.Duration(d.flows)
			if be.table.Start(be.ep, d.class, 1<<31, stagger) < 0 {
				panic("experiments: standing flow refused below capacity")
			}
		}
	}

	// Utilization meters: per line, on its owning engine, in distinct
	// slots — the parallel partitions never share state. The window at
	// e15Lead only resets the accounting (it covers pre-traffic time);
	// the scored windows follow at 1 s until the stop line.
	window := cfg.dur(10 * time.Second)
	stopAt := e15Lead + window
	peaks := make([]float64, len(lines))
	for i := range lines {
		i, ln, g := i, lines[i].line, lines[i].gauge
		ln.Eng().Schedule(e15Lead, func() { ln.TakeUtilization(ln.Eng().Now()) })
		for at := e15Lead + time.Second; at <= stopAt; at += time.Second {
			ln.Eng().Schedule(at, func() {
				if u := ln.TakeUtilization(ln.Eng().Now()); u > peaks[i] {
					peaks[i] = u
					g.Set(u)
				}
			})
		}
	}
	for _, site := range s.SiteNames {
		t := tables[site]
		t.Eng().Schedule(stopAt, t.Stop)
	}

	enterParallel(eng)
	s.Run(stopAt + 5*time.Second) // stop line + drain for in-flight deliveries

	for _, p := range peaks {
		if p > st.peakUtil {
			st.peakUtil = p
		}
	}
	var owdH [workload.NumClasses][]*obs.Histogram
	var allH []*obs.Histogram
	for _, site := range s.SiteNames {
		t := tables[site]
		for c := workload.Class(0); c < workload.NumClasses; c++ {
			cs := t.ClassStats(c)
			st.classSent[c] += cs.Sent
			st.classDelvd[c] += cs.Delivered
			owdH[c] = append(owdH[c], t.OWDHistogram(c))
			allH = append(allH, t.OWDHistogram(c))
		}
	}
	for c := workload.Class(0); c < workload.NumClasses; c++ {
		st.owdP99[c] = combinedQuantile(owdH[c], 0.99)
	}
	st.combP99 = combinedQuantile(allH, 0.99)
	st.virtual = time.Duration(eng.Now())
	st.metrics = deterministicSnapshot(reg)
	st.trace = traceJSON(journal)
	return st
}

// E15TrafficEngineering is the Link-Guided Local Search payoff
// experiment: the E12 wide mesh gets capacitated provider trunks (the
// fastest provider deliberately scarce) and a skewed multi-class demand
// matrix, then runs twice from one seed — once under the per-pair
// greedy min-OWD controllers, once under solver-installed per-class
// path weights. Greedy herds every pair onto the fastest provider,
// oversubscribes it, and oscillates (the "two to tango" coordination
// failure at N sites); the optimizer spreads each demand across the
// pair's discovered path set and must beat greedy on both peak link
// utilization and p99 one-way delay. Both sub-runs honor cfg.Shards and
// are deterministic per seed, so the shard-invariance differential
// covers the whole comparison.
func E15TrafficEngineering(cfg Config) *Result {
	r := newResult("E15", "Capacity-aware weighted steering beats greedy best-path under load (§5, §6)")

	sites := cfg.Sites
	if sites == 0 {
		sites = 64
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}

	greedy := e15Run(cfg, sites, shards, false)
	opt := e15Run(cfg, sites, shards, true)

	ratio := func(st *e15Stats) float64 {
		var sent, delvd uint64
		for c := 0; c < workload.NumClasses; c++ {
			sent += st.classSent[c]
			delvd += st.classDelvd[c]
		}
		if sent == 0 {
			return 0
		}
		return float64(delvd) / float64(sent)
	}

	r.Rows = append(r.Rows, []string{"quantity", "greedy", "optimized"})
	for _, row := range [][3]string{
		{"sites", fmt.Sprint(sites), fmt.Sprint(sites)},
		{"tunnels", fmt.Sprint(greedy.tunnels), fmt.Sprint(opt.tunnels)},
		{"interval slowdown", fmt.Sprint(greedy.slowdown), fmt.Sprint(opt.slowdown)},
		{"peak link utilization", fmt.Sprintf("%.3f", greedy.peakUtil), fmt.Sprintf("%.3f", opt.peakUtil)},
		{"solver predicted max util", "-", fmt.Sprintf("%.3f", opt.solvedUtil)},
		{"p99 OWD (all classes)", time.Duration(greedy.combP99).String(), time.Duration(opt.combP99).String()},
		{"delivered ratio", fmt.Sprintf("%.3f", ratio(greedy)), fmt.Sprintf("%.3f", ratio(opt))},
	} {
		r.Rows = append(r.Rows, []string{row[0], row[1], row[2]})
	}
	for c := workload.Class(0); c < workload.NumClasses; c++ {
		r.Rows = append(r.Rows, []string{c.String() + " p99 OWD",
			time.Duration(greedy.owdP99[c]).String(), time.Duration(opt.owdP99[c]).String()})
	}

	r.check("greedy herding oversubscribes a trunk", "uncoordinated min-OWD converges on the fastest provider (§5)",
		greedy.peakUtil > 1.2, "peak utilization %.3f", greedy.peakUtil)
	r.check("optimized placement fits capacity", "weighted spreading keeps every trunk below saturation",
		opt.peakUtil < 1.0, "peak utilization %.3f", opt.peakUtil)
	r.check("solver placement feasible", "LGLS finds a sub-saturation assignment",
		opt.solvedUtil > 0 && opt.solvedUtil < 1.0, "predicted max util %.3f", opt.solvedUtil)
	r.check("optimizer beats greedy on max link utilization", "coordinated placement vs. herding",
		opt.peakUtil < greedy.peakUtil, "%.3f vs %.3f", opt.peakUtil, greedy.peakUtil)
	r.check("optimizer beats greedy on p99 OWD", "no queueing blowup under the same load",
		opt.combP99 > 0 && opt.combP99 < greedy.combP99,
		"%v vs %v", time.Duration(opt.combP99), time.Duration(greedy.combP99))
	r.check("optimized run delivers its load", "sub-saturation trunks drain every class",
		ratio(opt) >= 0.9, "delivered ratio %.3f", ratio(opt))
	r.check("both regimes saw the full tunnel fabric", "the comparison is over identical path sets",
		greedy.tunnels == opt.tunnels && greedy.tunnels == len(topoPairCount(sites))*2*16,
		"%d vs %d tunnels", greedy.tunnels, opt.tunnels)

	r.note("capacities derive from the demand matrix (scarce share %.2f on the fastest provider, "+
		"%.2f elsewhere; total 2.5x demand), so the comparison is scale-free: class cadence is "+
		"stretched %dx to stay near %d pps aggregate", e15ScarceShare, e15Share, greedy.slowdown, e15TargetPPS)
	r.VirtualTime = greedy.virtual + opt.virtual
	r.Metrics = opt.metrics
	// Both sub-runs' journals participate in the shard-invariance
	// comparison; the trace is consumed byte-wise, never parsed.
	r.Trace = greedy.trace + "\n" + opt.trace
	return r
}

// topoPairCount mirrors topo.WideMeshConfig's ring-plus-chords pair
// enumeration so the tunnel-count check scales with cfg.Sites.
func topoPairCount(n int) [][2]string {
	var pairs [][2]string
	seen := map[[2]string]bool{}
	name := func(i int) string { return fmt.Sprintf("s%02d", i) }
	for _, off := range []int{1, 3, 9, 19, 27} {
		if off >= (n+1)/2 {
			continue
		}
		for i := 0; i < n; i++ {
			a, b := name(i), name((i+off)%n)
			key := [2]string{min(a, b), max(a, b)}
			if seen[key] {
				continue
			}
			seen[key] = true
			pairs = append(pairs, [2]string{a, b})
		}
	}
	return pairs
}
