package experiments

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// e15Smoke is the CI-sized E15: an 8-site wide mesh with a short
// measurement window — small enough for the race detector, big enough
// that the greedy regime oversubscribes the scarce trunk and the solver
// has a real multi-path placement to find.
func e15Smoke(seed int64, shards int) *Result {
	return E15TrafficEngineering(Config{
		Seed:     seed,
		Sites:    8,
		Duration: 2 * time.Second,
		Shards:   shards,
	})
}

// TestE15SmokeShardInvariant extends the shard-invariance contract to
// the traffic-engineering pipeline: capacities, the demand matrix, the
// solver's placement, and both sub-runs' utilization meters are pure
// functions of (topology, seed), and every meter and flow slot is owned
// by exactly one partition, so a 1-worker and an N-worker run must
// agree bit-for-bit on the Result and both journals.
func TestE15SmokeShardInvariant(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			base := e15Smoke(seed, 1)
			requirePassed(t, base)
			got := e15Smoke(seed, 2)
			if base.Trace != got.Trace {
				t.Errorf("E15 trace journal diverged between 1 and 2 workers")
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("E15 Result diverged between 1 and 2 workers:\n--- workers=1\n%s\n--- workers=2\n%s",
					renderResult(base), renderResult(got))
			}
		})
	}
}
