package experiments

import (
	"fmt"
	"time"

	"tango/internal/control"
)

// pathRow is a snapshot of one monitored path's aggregates.
type pathRow struct {
	name      string
	mean, min float64 // raw, receiver clock domain (ms)
	std       float64
	n         uint64
}

func rowsOf(m *control.Monitor) []pathRow {
	var out []pathRow
	for _, pm := range m.Paths() {
		out = append(out, pathRow{
			name: pm.Name,
			mean: pm.OWD.Mean(),
			min:  pm.OWD.Min(),
			std:  pm.OWD.Std(),
			n:    pm.OWD.N(),
		})
	}
	return out
}

// E2OWDComparison reproduces Figure 4 (left) and the §5 headline: over a
// sustained trace of per-path one-way delays between NY and LA, the BGP
// default path (NTT) averages ~30% higher delay than the best exposed
// path (GTT), and the same ordering holds in the reverse direction.
func E2OWDComparison(cfg Config) *Result {
	r := newResult("E2", "One-way delay across paths; default vs best (Fig. 4 left, §5)")
	l := newLab(labOpts{
		seed:          cfg.Seed,
		shards:        cfg.Shards,
		probeInterval: cfg.probe(),
		recordBucket:  10 * time.Second,
	})
	dur := cfg.dur(2 * time.Hour)
	l.run(dur)
	r.VirtualTime = dur

	r.Rows = append(r.Rows, []string{"direction", "path", "mean OWD (ms)", "min OWD (ms)", "std (ms)", "samples"})
	collect := func(dir string, off time.Duration, paths []pathRow) (def, best float64, bestName string) {
		def, best = -1, -1
		for _, p := range paths {
			mean := p.mean - ms(off)
			r.Rows = append(r.Rows, []string{
				dir, p.name,
				fmt.Sprintf("%.3f", mean),
				fmt.Sprintf("%.3f", p.min-ms(off)),
				fmt.Sprintf("%.3f", p.std),
				fmt.Sprintf("%d", p.n),
			})
			if p.name == "NTT" {
				def = mean
			}
			if best < 0 || mean < best {
				best, bestName = mean, p.name
			}
		}
		return
	}

	defLA, bestLA, bestLAName := collect("NY->LA", l.offNYtoLA, rowsOf(l.monLA()))
	defNY, bestNY, bestNYName := collect("LA->NY", l.offLAtoNY, rowsOf(l.monNY()))

	ratioLA := defLA / bestLA
	ratioNY := defNY / bestNY
	r.check("best NY->LA path", "GTT outperforms all", bestLAName == "GTT", "%s (%.2f ms)", bestLAName, bestLA)
	r.check("best LA->NY path", "same holds in reverse", bestNYName == "GTT", "%s (%.2f ms)", bestNYName, bestNY)
	r.check("default/best delay ratio NY->LA", "NTT ~30% higher than GTT",
		within(ratioLA, 1.2, 1.4), "%.1f%% higher", (ratioLA-1)*100)
	r.check("default/best delay ratio LA->NY", "same holds in reverse",
		within(ratioNY, 1.2, 1.4), "%.1f%% higher", (ratioNY-1)*100)

	// Export the NY->LA series for the figure.
	for _, pm := range l.monLA().Paths() {
		if pm.Series != nil {
			r.Series["ny-la/"+pm.Name] = pm.Series
		}
	}
	r.note("raw OWDs carry the inter-switch clock offset (%.0f ms NY->LA); table values are offset-corrected using ground truth the deployment itself does not need", ms(l.offNYtoLA))
	l.snapshot(r)
	r.Trace = traceJSON(l.J)
	return r
}

// E3Jitter reproduces the §5 in-text jitter observation: the mean
// standard deviation of a 1-second rolling window distinguishes paths
// sharply — GTT ~0.01 ms vs Telia ~0.33 ms in the LA->NY direction — and
// each path has its own signature.
func E3Jitter(cfg Config) *Result {
	r := newResult("E3", "Sub-second jitter per path (1 s rolling window, §5)")
	l := newLab(labOpts{
		seed:          cfg.Seed + 1,
		probeInterval: cfg.probe(),
	})
	dur := cfg.dur(30 * time.Minute)
	l.run(dur)
	r.VirtualTime = dur

	r.Rows = append(r.Rows, []string{"direction", "path", "mean 1s-window std (ms)", "windows"})
	jit := map[string]float64{}
	for _, pm := range l.monNY().Paths() { // LA->NY, the paper's direction
		j := pm.Jitter.MeanStd()
		jit[pm.Name] = j
		r.Rows = append(r.Rows, []string{"LA->NY", pm.Name, fmt.Sprintf("%.4f", j), fmt.Sprintf("%d", pm.Jitter.Windows())})
	}
	for _, pm := range l.monLA().Paths() {
		r.Rows = append(r.Rows, []string{"NY->LA", pm.Name, fmt.Sprintf("%.4f", pm.Jitter.MeanStd()), fmt.Sprintf("%d", pm.Jitter.Windows())})
	}

	r.check("GTT LA->NY rolling jitter", "~0.01 ms", within(jit["GTT"], 0.005, 0.03), "%.4f ms", jit["GTT"])
	r.check("Telia LA->NY rolling jitter", "~0.33 ms", within(jit["Telia"], 0.2, 0.45), "%.4f ms", jit["Telia"])
	if jit["GTT"] > 0 {
		r.check("jitter separation Telia/GTT", ">10x apart", jit["Telia"]/jit["GTT"] > 10, "%.0fx", jit["Telia"]/jit["GTT"])
	}
	l.snapshot(r)
	return r
}
