package experiments

import (
	"fmt"
	"time"

	"tango/internal/control"
	"tango/internal/events"
)

// E4RouteChange reproduces Figure 4 (middle): an internal routing change
// inside GTT — brief instability, then the one-way delay settles at a new
// minimum +5 ms for ~10 minutes before reverting. A controller using live
// data routes around the degradation; a static "pick best once" strategy
// rides it out.
func E4RouteChange(cfg Config) *Result {
	r := newResult("E4", "Internal routing change in GTT (+5 ms for 10 min; Fig. 4 middle)")
	l := newLab(labOpts{
		seed:          cfg.Seed + 2,
		probeInterval: cfg.probe(),
		recordBucket:  time.Second,
		decideEvery:   time.Second,
		// NY's controller steers NY->LA traffic (the plotted
		// direction); LA's is irrelevant here.
		policyNY: &control.MinOWD{HysteresisMs: 0.5, MinDwell: 2 * time.Second},
	})

	lead := cfg.dur(10 * time.Minute) // quiet time before the event
	eventAt := l.S.B.W.Now() + lead
	eventDur := 10 * time.Minute
	shift := &events.RouteShift{
		Line:     l.S.TrunkToLA["GTT"],
		At:       eventAt,
		Duration: eventDur,
		Delta:    5 * time.Millisecond,
	}
	shift.Schedule(shift.Line.Eng())

	var switches []string
	nyCtl := l.Pair.A.Controller
	nyCtl.OnSwitch = func(at time.Duration, from, to uint8) {
		switches = append(switches, fmt.Sprintf("%v %s->%s", at-eventAt, l.Pair.A.PathName(from), l.Pair.A.PathName(to)))
	}

	total := lead + eventDur + 10*time.Minute
	l.run(total)
	r.VirtualTime = total

	gtt := pathByName(l.monLA(), "GTT")
	if gtt == nil || gtt.Series == nil {
		r.check("GTT series recorded", "present", false, "missing")
		return r
	}
	ser := gtt.Series
	t0 := eventAt // series buckets are in absolute virtual time
	off := ms(l.offNYtoLA)

	preMin := ser.MinIn(t0-5*time.Minute, t0) - off
	// Skip the 30s transition edge when measuring the settled floor.
	settledMin := ser.MinIn(t0+time.Minute, t0+9*time.Minute) - off
	postMin := ser.MinIn(t0+eventDur+2*time.Minute, t0+eventDur+8*time.Minute) - off

	r.Rows = append(r.Rows, []string{"window", "GTT min OWD (ms)"})
	r.Rows = append(r.Rows, []string{"before event", fmt.Sprintf("%.2f", preMin)})
	r.Rows = append(r.Rows, []string{"during event (settled)", fmt.Sprintf("%.2f", settledMin)})
	r.Rows = append(r.Rows, []string{"after revert", fmt.Sprintf("%.2f", postMin)})

	delta := settledMin - preMin
	r.check("settled delay shift", "+5 ms new minimum", within(delta, 4.5, 5.8), "+%.2f ms", delta)
	r.check("shift reverts", "original path returns after ~10 min", within(postMin-preMin, -0.5, 0.5), "%+.2f ms vs before", postMin-preMin)

	// Adaptive vs static during the event: the controller should leave
	// GTT (Telia becomes best at ~31.3 vs GTT 33.15) and come back.
	adaptiveOn := l.Pair.A.PathName(nyCtl.Current())
	r.check("controller returns to GTT after revert", "live data tracks the change", adaptiveOn == "GTT", "on %s", adaptiveOn)
	movedAway := false
	for _, sw := range switches {
		if len(sw) > 0 {
			movedAway = true
		}
	}
	r.check("controller reacted to the event", "selects alternate path during shift", movedAway && nyCtl.Stats.Switches >= 2, "%d switches: %v", nyCtl.Stats.Switches, switches)

	// Cost comparison: mean OWD a static-GTT sender would see during
	// the event vs what the best alternative offered.
	gttDuring := ser.MeanIn(t0+time.Minute, t0+9*time.Minute) - off
	telia := pathByName(l.monLA(), "Telia")
	teliaDuring := telia.Series.MeanIn(t0+time.Minute, t0+9*time.Minute) - off
	r.Rows = append(r.Rows, []string{"static GTT during event", fmt.Sprintf("%.2f", gttDuring)})
	r.Rows = append(r.Rows, []string{"best alternative (Telia)", fmt.Sprintf("%.2f", teliaDuring)})
	r.check("alternate path wins during event", "switching is optimal", teliaDuring < gttDuring, "Telia %.2f vs GTT %.2f ms", teliaDuring, gttDuring)

	for _, pm := range l.monLA().Paths() {
		if pm.Series != nil {
			r.Series["ny-la/"+pm.Name] = pm.Series
		}
	}
	l.snapshot(r)
	return r
}

// E5Instability reproduces Figure 4 (right): a ~5-minute period of
// instability in GTT's network with minor delay elevation and major
// spikes peaking at 78 ms — more than double the 28 ms minimum — while
// some packets still arrive at the floor and every other path stays
// undisturbed.
func E5Instability(cfg Config) *Result {
	r := newResult("E5", "Network instability in GTT (spikes to 78 ms; Fig. 4 right)")
	l := newLab(labOpts{
		seed:          cfg.Seed + 3,
		probeInterval: cfg.probe(),
		recordBucket:  time.Second,
	})

	lead := cfg.dur(10 * time.Minute)
	eventAt := l.S.B.W.Now() + lead
	eventDur := 5 * time.Minute
	inst := &events.Instability{
		Line:           l.S.TrunkToLA["GTT"],
		At:             eventAt,
		Duration:       eventDur,
		SpikeProb:      0.02,
		SpikeMean:      16 * time.Millisecond,
		SpikeCap:       46 * time.Millisecond, // floor 28.6 + minor(<=4) + 46 ~ 78 ms peak
		MinorExtraMean: time.Millisecond,
		MinorExtraStd:  1500 * time.Microsecond,
	}
	inst.Schedule(inst.Line.Eng())

	total := lead + eventDur + 5*time.Minute
	l.run(total)
	r.VirtualTime = total

	off := ms(l.offNYtoLA)
	gtt := pathByName(l.monLA(), "GTT")
	t0, t1 := eventAt, eventAt+eventDur

	peak := gtt.Series.MaxIn(t0, t1) - off
	floorDuring := gtt.Series.MinIn(t0, t1) - off
	minOverall := gtt.OWD.Min() - off

	r.Rows = append(r.Rows, []string{"metric", "value (ms)"})
	r.Rows = append(r.Rows, []string{"GTT minimum OWD", fmt.Sprintf("%.2f", minOverall)})
	r.Rows = append(r.Rows, []string{"GTT peak during instability", fmt.Sprintf("%.2f", peak)})
	r.Rows = append(r.Rows, []string{"GTT floor during instability", fmt.Sprintf("%.2f", floorDuring)})

	r.check("baseline minimum", "~28 ms", within(minOverall, 27.5, 28.6), "%.2f ms", minOverall)
	r.check("peak one-way delay", "78 ms (more than double the minimum)",
		within(peak, 65, 80) && peak > 2*minOverall, "%.2f ms (%.1fx the minimum)", peak, peak/minOverall)
	r.check("floor packets survive the event", "some packets still at the minimum",
		within(floorDuring-minOverall, -0.2, 1.0), "floor during event %.2f ms", floorDuring)

	// Other paths stay flat through the window.
	flat := true
	for _, name := range []string{"NTT", "Telia", "Level3"} {
		pm := pathByName(l.monLA(), name)
		if pm == nil || pm.Series == nil {
			flat = false
			continue
		}
		quietMax := pm.Series.MaxIn(t0-5*time.Minute, t0) - off
		eventMax := pm.Series.MaxIn(t0, t1) - off
		r.Rows = append(r.Rows, []string{name + " max during instability", fmt.Sprintf("%.2f (quiet %.2f)", eventMax, quietMax)})
		if eventMax > quietMax+1.5 {
			flat = false
		}
	}
	r.check("other paths undisturbed", "almost no interference elsewhere", flat, "%v", flat)

	for _, pm := range l.monLA().Paths() {
		if pm.Series != nil {
			r.Series["ny-la/"+pm.Name] = pm.Series
		}
	}
	l.snapshot(r)
	return r
}
