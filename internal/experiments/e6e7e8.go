package experiments

import (
	"fmt"
	"time"

	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/events"
	"tango/internal/measure"
	"tango/internal/simnet"
	"tango/internal/workload"
)

// E6InOrderImpact quantifies the §5 argument that during an instability
// window, in-order (TCP-like) delivery amplifies spikes — "future
// application packets will be delivered out-of-order ... and the
// application-layer data stream will be held up by the slow packet" — so
// switching away from the spiky path wins even though its *mean* raw
// delay barely moves.
func E6InOrderImpact(cfg Config) *Result {
	r := newResult("E6", "In-order delivery impact during instability; stay vs switch (§5)")

	run := func(adaptive bool, seed int64) (rawMean, inOrderMean, inOrderP99 float64, vt time.Duration) {
		o := labOpts{
			seed:          seed,
			probeInterval: cfg.probe(),
			decideEvery:   time.Second,
		}
		if adaptive {
			// A mean-delay policy would rationally *stay*: even
			// spiking, GTT's mean beats Telia's. The paper's argument
			// is about delay variation, so the adaptive strategy is
			// jitter-aware (within a 2 ms delay budget).
			o.policyNY = &control.MinJitter{MaxOWDPenaltyMs: 2}
		} else {
			// Static best-at-start: GTT is path 3 in NY's tunnel set.
			o.policyNY = &control.Static{ID: 3}
		}
		l := newLab(o)

		lead := cfg.dur(3 * time.Minute)
		eventAt := l.S.B.W.Now() + lead
		eventDur := 5 * time.Minute
		(&events.Instability{
			Line:           l.S.TrunkToLA["GTT"],
			At:             eventAt,
			Duration:       eventDur,
			SpikeProb:      0.15,
			SpikeMean:      16 * time.Millisecond,
			SpikeCap:       47500 * time.Microsecond,
			MinorExtraMean: 2 * time.Millisecond,
			MinorExtraStd:  1500 * time.Microsecond,
		}).Schedule(l.S.B.Eng())

		// A 20 ms-period application stream NY->LA (drone telemetry
		// rate), measured in ground-truth virtual time.
		srcHost, _ := l.Pair.A.Spec.HostPrefix.Host(9)
		dstHost, _ := l.Pair.B.Spec.HostPrefix.Host(9)
		g := workload.NewAppGen(l.S.B.Eng(), l.Pair.A.Switch, srcHost, dstHost, 20*time.Millisecond, 256)
		l.Pair.B.AddSink(g.Sink)

		total := lead + eventDur + 2*time.Minute
		l.run(total)
		g.Stop()
		l.run(time.Second)

		// Only packets sent during the instability window count.
		var during []workload.AppRecord
		for _, rec := range g.FinalRecords() {
			if rec.SentAt >= eventAt && rec.SentAt < eventAt+eventDur {
				during = append(during, rec)
			}
		}
		var raw measure.Welford
		for _, rec := range during {
			if rec.RecvAt != 0 {
				raw.Add(ms(rec.Latency))
			}
		}
		lats := workload.InOrderModel{}.Apply(during)
		var inOrder measure.Welford
		res := measure.NewReservoir(8192, uint64(seed))
		for _, lat := range lats {
			inOrder.Add(ms(lat))
			res.Add(ms(lat))
		}
		l.snapshot(r) // adaptive run's snapshot wins (it runs second)
		return raw.Mean(), inOrder.Mean(), res.Quantile(0.99), total
	}

	rawStay, ioStay, p99Stay, vt := run(false, cfg.Seed+4)
	rawSwitch, ioSwitch, p99Switch, _ := run(true, cfg.Seed+4)
	r.VirtualTime = vt * 2

	r.Rows = append(r.Rows, []string{"strategy", "raw mean (ms)", "in-order mean (ms)", "in-order p99 (ms)"})
	r.Rows = append(r.Rows, []string{"stay on GTT (static best)", f2(rawStay), f2(ioStay), f2(p99Stay)})
	r.Rows = append(r.Rows, []string{"Tango adaptive", f2(rawSwitch), f2(ioSwitch), f2(p99Switch)})

	r.check("in-order amplification on spiky path", "stream held up by slow packets",
		ioStay > rawStay+0.3, "in-order %.2f vs raw %.2f ms", ioStay, rawStay)
	r.check("switching beats staying (mean)", "changing path is superior",
		ioSwitch < ioStay, "%.2f vs %.2f ms", ioSwitch, ioStay)
	r.check("switching beats staying (p99)", "tail latency collapses",
		p99Switch < p99Stay*0.8, "%.2f vs %.2f ms", p99Switch, p99Stay)
	return r
}

// E7MeasurementSoundness validates the paper's measurement arguments
// (§3, §4.2): (a) path OWD *differences* are invariant to the inter-
// switch clock offset; (b) round-trip measurement cannot attribute delay
// to a direction, while Tango's one-way measurement can.
func E7MeasurementSoundness(cfg Config) *Result {
	r := newResult("E7", "One-way measurement soundness under clock offset; RTT baseline (§3, §4.2)")
	dur := cfg.dur(5 * time.Minute)

	type obs struct {
		gapNTTGTT float64 // NTT-GTT raw OWD gap at LA (ms)
		gttNYLA   float64 // raw GTT OWD NY->LA
		gttLANY   float64 // raw GTT OWD LA->NY
		trueNYLA  float64
		trueLANY  float64
	}
	measureOnce := func(offNY, offLA time.Duration) obs {
		l := newLab(labOpts{
			seed:          cfg.Seed + 5, // same seed: identical network draws
			probeInterval: cfg.probe(),
			clockNY:       offNY,
			clockLA:       offLA,
		})
		l.run(dur)
		la := l.monLA()
		ny := l.monNY()
		gttLA := pathByName(la, "GTT")
		nttLA := pathByName(la, "NTT")
		gttNY := pathByName(ny, "GTT")
		return obs{
			gapNTTGTT: nttLA.OWD.Mean() - gttLA.OWD.Mean(),
			gttNYLA:   gttLA.OWD.Mean(),
			gttLANY:   gttNY.OWD.Mean(),
			trueNYLA:  gttLA.OWD.Mean() - ms(l.offNYtoLA),
			trueLANY:  gttNY.OWD.Mean() - ms(l.offLAtoNY),
		}
	}

	offsets := []struct {
		name       string
		offNY, off time.Duration
	}{
		{"synced", time.Nanosecond, 0}, // ~0 (exact zeros would hit the default)
		{"+2.6 s skew", 1700 * time.Millisecond, -900 * time.Millisecond},
		{"-5 s skew", -2 * time.Second, 3 * time.Second},
	}
	r.Rows = append(r.Rows, []string{"clocks", "raw GTT NY->LA (ms)", "NTT-GTT gap (ms)", "true GTT NY->LA (ms)"})
	var gaps []float64
	var truths []float64
	for _, o := range offsets {
		m := measureOnce(o.offNY, o.off)
		gaps = append(gaps, m.gapNTTGTT)
		truths = append(truths, m.trueNYLA)
		r.Rows = append(r.Rows, []string{o.name, f2(m.gttNYLA), f2(m.gapNTTGTT), f2(m.trueNYLA)})
	}
	maxGapSpread := spread(gaps)
	r.check("path-gap invariance under clock offset", "constant offset cancels in comparisons",
		maxGapSpread < 0.2, "gap spread %.3f ms across offsets", maxGapSpread)
	r.check("corrected OWD consistent", "one-way delay well-defined",
		spread(truths) < 0.2, "true OWD spread %.3f ms", spread(truths))

	// RTT baseline: with symmetric halving, RTT/2 misattributes
	// direction whenever forward and reverse ride different providers.
	m := measureOnce(time.Nanosecond, 0)
	// Simulated RTT through GTT forward and (say) the 4th path back is
	// the sum of the true one-way delays; a synthetic asymmetric pair:
	fwd, rev := m.trueNYLA, m.trueLANY // symmetric baseline
	r.note("GTT direction symmetry: NY->LA %.2f ms vs LA->NY %.2f ms", fwd, rev)
	// Compose an asymmetric round trip (GTT out, Cogent back ~40 ms).
	l := newLab(labOpts{seed: cfg.Seed + 6, probeInterval: cfg.probe()})
	l.run(dur)
	gttOut := pathByName(l.monLA(), "GTT").OWD.Mean() - ms(l.offNYtoLA)
	cogBack := pathByName(l.monNY(), "Cogent").OWD.Mean() - ms(l.offLAtoNY)
	rtt := gttOut + cogBack
	estEach := rtt / 2
	errOut := estEach - gttOut
	errBack := estEach - cogBack
	r.Rows = append(r.Rows, []string{"RTT baseline", "", "", ""})
	r.Rows = append(r.Rows, []string{"GTT out / Cogent back RTT", f2(rtt), "RTT/2 = " + f2(estEach), fmt.Sprintf("err %+.2f / %+.2f ms", errOut, errBack)})
	r.check("RTT/2 misattributes asymmetric paths", "bidirectional metrics hard to decompose",
		errOut > 2 && errBack < -2, "per-direction error %+.2f / %+.2f ms", errOut, errBack)
	r.VirtualTime = dur * 5
	l.snapshot(r)
	return r
}

// E8DataPlaneCost measures the per-packet cost of the sender and receiver
// programs (encap+timestamp, parse+decap) — the stand-in for the paper's
// "scalable eBPF implementation" claim. The root bench_test.go reports
// the same numbers via testing.B; this driver gives the lab binary a
// quick wall-clock estimate.
func E8DataPlaneCost(cfg Config) *Result {
	r := newResult("E8", "Data-plane per-packet cost (encap/decap, §4.2)")

	w := simnet.New(cfg.Seed + 7)
	n := w.AddNode("bench", 0)
	sw := dataplane.NewSwitch(n)
	tun := &dataplane.Tunnel{
		PathID:     1,
		Name:       "bench",
		LocalAddr:  mustAddr6("2001:db8:1::1"),
		RemoteAddr: mustAddr6("2001:db8:2::1"),
		SrcPort:    40001,
	}
	sw.AddTunnel(tun)
	inner := innerPacket(1024)

	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		sw.SendOnTunnel(tun, inner)
	}
	encapNs := float64(time.Since(start).Nanoseconds()) / iters
	// The injected packets queue as engine events; drop them.
	w.Eng.RunAll()

	// Receiver cost: hand the receiver program a pre-built outer packet.
	outer := buildOuter(tun, inner)
	recv := dataplane.NewSwitch(w.AddNode("recv", 0))
	recv.Node().AddAddr(tun.RemoteAddr)
	got := 0
	recv.OnMeasure = func(dataplane.Measurement) { got++ }
	start = time.Now()
	for i := 0; i < iters; i++ {
		recv.Node().Inject(outer)
	}
	w.Eng.RunAll()
	decapNs := float64(time.Since(start).Nanoseconds()) / iters

	r.Rows = append(r.Rows, []string{"program", "ns/packet (1 KiB payload)"})
	r.Rows = append(r.Rows, []string{"sender (classify+encap+timestamp)", f2(encapNs)})
	r.Rows = append(r.Rows, []string{"receiver (parse+OWD+decap)", f2(decapNs)})
	r.check("receiver measured every packet", "piggybacked timestamps, no probes", got == iters, "%d/%d", got, iters)
	// The wall-clock budget only means something on an uninstrumented
	// build: the race detector multiplies per-packet cost several-fold,
	// so under -race the timing rows stay informational.
	budget := 10000.0
	if raceEnabled {
		budget = 200000
	}
	r.check("sender under 10 µs/pkt", "line-rate feasible in eBPF/switch", encapNs < budget, "%.0f ns", encapNs)
	r.check("receiver under 10 µs/pkt", "line-rate feasible in eBPF/switch", decapNs < budget, "%.0f ns", decapNs)
	r.VirtualTime = 0
	return r
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
