package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tango/internal/addr"
	"tango/internal/control"
	"tango/internal/dataplane"
	"tango/internal/simnet"
	"tango/internal/transport/udp"
	"tango/internal/workload"
)

// E8-live is the transport-parity experiment: the identical probe /
// report / decide stack runs once on the simulated transport and once as
// two real tangod processes exchanging UDP datagrams over loopback, on
// the same emulated delay table — and must converge to the same paths.
//
// The delay table is asymmetric on purpose (the paper's measured
// one-way delays are): the best a->b path is not the best b->a path, so
// a run that only got one direction right fails the check.
var (
	// livePathNames label the three emulated providers, path IDs 1..3.
	livePathNames = []string{"NTT", "GTT", "Cogent"}
	// liveDelaysA are site-a's outgoing one-way delays by path.
	liveDelaysA = []time.Duration{30 * time.Millisecond, 12 * time.Millisecond, 20 * time.Millisecond}
	// liveDelaysB are site-b's outgoing one-way delays by path.
	liveDelaysB = []time.Duration{18 * time.Millisecond, 25 * time.Millisecond, 9 * time.Millisecond}
)

// Expected steady-state choices: a's fastest outgoing path is GTT (2),
// b's is Cogent (3).
const (
	liveWantA = 2
	liveWantB = 3
)

// LivePathSpecA and LivePathSpecB render the table as tangod -paths
// flag values, so harness and experiment cannot drift apart.
func LivePathSpecA() string { return livePathSpec(liveDelaysA) }
func LivePathSpecB() string { return livePathSpec(liveDelaysB) }

func livePathSpec(delays []time.Duration) string {
	parts := make([]string, len(delays))
	for i, d := range delays {
		parts[i] = fmt.Sprintf("%s:%s", livePathNames[i], d)
	}
	return strings.Join(parts, ",")
}

// Control cadences shared by both transports. They mirror tangod's
// -transport udp defaults (live.go): wall-clock scaled so a loopback
// deployment converges within a couple of seconds.
const (
	liveProbeEvery  = 20 * time.Millisecond
	liveReportEvery = 25 * time.Millisecond
	liveDecideEvery = 100 * time.Millisecond
	liveRunFor      = 5 * time.Second
)

func liveSteeringPolicy() control.Policy {
	return &control.MinOWD{HysteresisMs: 1, MinDwell: 300 * time.Millisecond, StaleAfter: 5 * time.Second}
}

// liveSimSite is one endpoint of the simulated E8-live deployment.
type liveSimSite struct {
	node *simnet.Node
	sw   *dataplane.Switch
	mon  *control.Monitor
	ctl  *control.Controller
}

// E8LiveSim runs the E8-live scenario on the simulated transport: two
// nodes joined by one link per provider path, each direction delayed by
// the same table the loopback harness hands tangod. It is the reference
// answer the two-process run is compared against.
func E8LiveSim(cfg Config) *Result {
	r := newResult("E8-live", "Transport parity: simulated reference for the loopback deployment")

	w := simnet.New(cfg.Seed + 1)
	na := w.AddNode("site-a", 0)
	nb := w.AddNode("site-b", 0)
	links := make([]*simnet.Link, len(livePathNames))
	for i := range livePathNames {
		links[i] = w.Connect(na, nb,
			simnet.LinkConfig{Delay: simnet.FixedDelay(liveDelaysA[i])},
			simnet.LinkConfig{Delay: simnet.FixedDelay(liveDelaysB[i])},
		)
	}

	// Addressing is udp.SiteAddrs — the exact scheme the live session
	// handshake derives — so the two transports move byte-identical
	// outer headers.
	swA, epA := udp.SiteAddrs("site-a", len(livePathNames))
	swB, epB := udp.SiteAddrs("site-b", len(livePathNames))

	wire := func(local *simnet.Node, localSw netip.Addr, peerEPs, ownEPs []netip.Addr, pol control.Policy) *liveSimSite {
		s := &liveSimSite{node: local}
		s.sw = dataplane.NewSwitch(local)
		for i, name := range livePathNames {
			s.sw.AddTunnel(&dataplane.Tunnel{
				PathID:     uint8(i + 1),
				Name:       name,
				LocalAddr:  localSw,
				RemoteAddr: peerEPs[i],
				SrcPort:    uint16(41000 + i),
			})
		}
		for _, ep := range ownEPs {
			local.AddAddr(ep)
		}
		s.mon = control.NewMonitor()
		s.mon.Attach(s.sw, func(id uint8) string {
			if int(id) >= 1 && int(id) <= len(livePathNames) {
				return livePathNames[id-1]
			}
			return fmt.Sprintf("path-%d", id)
		})
		s.ctl = control.NewController(local.Eng(), s.sw, pol)
		s.ctl.AttachFeedback(s.sw)
		s.ctl.Start(liveDecideEvery)
		rep := control.NewReporter(local.Eng(), s.mon, s.sw, liveReportEvery)
		rep.MaxAge = 5 * liveReportEvery
		return s
	}

	a := wire(na, swA, epB, epA, liveSteeringPolicy())
	b := wire(nb, swB, epA, epB, liveSteeringPolicy())

	// Each endpoint address is pinned to its provider's link, the role
	// the live backend's route table plays.
	for i := range livePathNames {
		na.SetRoute(host128(epB[i]), links[i].PortA())
		nb.SetRoute(host128(epA[i]), links[i].PortB())
	}

	workload.NewProber(na.Eng(), a.sw, swA, swB, liveProbeEvery)
	workload.NewProber(nb.Eng(), b.sw, swB, swA, liveProbeEvery)

	runFor := cfg.dur(liveRunFor)
	w.Run(w.Now() + runFor)
	r.VirtualTime = runFor

	r.check("a converges to min-delay path", fmt.Sprintf("GTT (path %d)", liveWantA),
		a.ctl.Current() == liveWantA, "path %d", a.ctl.Current())
	r.check("b converges to min-delay path", fmt.Sprintf("Cogent (path %d)", liveWantB),
		b.ctl.Current() == liveWantB, "path %d", b.ctl.Current())

	r.Rows = append(r.Rows, []string{"site", "path", "provider", "emulated OWD", "estimate (ms)"})
	for _, s := range []*liveSimSite{a, b} {
		delays := liveDelaysA
		site := "site-a"
		if s == b {
			delays = liveDelaysB
			site = "site-b"
		}
		for _, e := range s.ctl.Estimates() {
			if !e.Valid {
				continue
			}
			r.Rows = append(r.Rows, []string{
				site, strconv.Itoa(int(e.ID)), livePathNames[e.ID-1],
				delays[e.ID-1].String(), fmt.Sprintf("%.3f", e.OWDMs),
			})
		}
	}
	r.note("expected convergence: site-a -> path %d, site-b -> path %d; the loopback harness (RunE8Loopback) must match", liveWantA, liveWantB)
	return r
}

// host128 builds the /128 FIB prefix pinning one endpoint address to
// its provider's link.
func host128(ip netip.Addr) addr.Prefix {
	p, err := addr.PrefixFrom(ip, 128)
	if err != nil {
		panic(err)
	}
	return p
}

// LoopbackReport is the outcome of one two-process loopback run.
type LoopbackReport struct {
	PathA, PathB int           // converged current-path IDs per site
	MatchesSim   bool          // equals the E8LiveSim expectation
	ConvergedIn  time.Duration // wall time from both-ready to both-converged
	PPS          float64       // sustained tango frames/sec across both sockets
	Frames       uint64        // frames counted in the measurement window
	Window       time.Duration // measurement window behind PPS
}

// LoopbackConfig parameterizes RunE8Loopback.
type LoopbackConfig struct {
	// Tangod is the path to a built tangod binary.
	Tangod string
	// ArtifactDir, when set, receives process logs and final /metrics
	// scrapes (a.log, b.log, a_metrics.prom, b_metrics.prom).
	ArtifactDir string
	// Measure is the pps measurement window (default 2s).
	Measure time.Duration
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

// RunE8Loopback launches two tangod processes over 127.0.0.1 on the
// E8-live delay table, waits for both controllers to converge, measures
// sustained frame rate from /metrics, and tears both processes down.
func RunE8Loopback(cfg LoopbackConfig) (*LoopbackReport, error) {
	if cfg.Measure == 0 {
		cfg.Measure = 2 * time.Second
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	deadline := time.Now().Add(cfg.Timeout)

	dir, err := os.MkdirTemp("", "tango-loopback-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	logSink := func(name string) (*os.File, error) {
		if cfg.ArtifactDir != "" {
			return os.Create(filepath.Join(cfg.ArtifactDir, name))
		}
		return os.Create(filepath.Join(dir, name))
	}

	type proc struct {
		cmd     *exec.Cmd
		log     *os.File
		site    string
		metrics string // scrape base URL, filled once the addr file lands
	}
	var procs []*proc
	defer func() {
		for _, p := range procs {
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
			p.log.Close()
		}
	}()

	start := func(site, pathSpec string, extra ...string) (*proc, error) {
		log, err := logSink(site + ".log")
		if err != nil {
			return nil, err
		}
		args := []string{
			"-transport", "udp",
			"-site", "site-" + site,
			"-listen", "127.0.0.1:0",
			"-paths", pathSpec,
			"-metrics", "127.0.0.1:0",
			"-addr-file", filepath.Join(dir, site+".addr"),
			"-ready-file", filepath.Join(dir, site+".ready"),
			"-status-every", "1s",
		}
		args = append(args, extra...)
		cmd := exec.Command(cfg.Tangod, args...)
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			log.Close()
			return nil, fmt.Errorf("start tangod %s: %w", site, err)
		}
		p := &proc{cmd: cmd, log: log, site: site}
		procs = append(procs, p)
		return p, nil
	}

	a, err := start("a", LivePathSpecA())
	if err != nil {
		return nil, err
	}
	addrsA, err := waitAddrFile(filepath.Join(dir, "a.addr"), deadline)
	if err != nil {
		return nil, fmt.Errorf("site-a: %w", err)
	}
	a.metrics = "http://" + addrsA.Metrics

	b, err := start("b", LivePathSpecB(), "-peer", addrsA.UDP)
	if err != nil {
		return nil, err
	}
	addrsB, err := waitAddrFile(filepath.Join(dir, "b.addr"), deadline)
	if err != nil {
		return nil, fmt.Errorf("site-b: %w", err)
	}
	b.metrics = "http://" + addrsB.Metrics

	for _, p := range []*proc{a, b} {
		if err := waitFile(filepath.Join(dir, p.site+".ready"), deadline); err != nil {
			return nil, fmt.Errorf("site-%s never became ready: %w", p.site, err)
		}
	}

	// Convergence: poll each side's controller gauge until it settles on
	// the simulated reference answer.
	rep := &LoopbackReport{}
	convergeStart := time.Now()
	for {
		ma, err1 := scrapeProm(a.metrics + "/metrics")
		mb, err2 := scrapeProm(b.metrics + "/metrics")
		if err1 == nil && err2 == nil {
			rep.PathA = int(ma[`tango_controller_current_path{site="site-a"}`])
			rep.PathB = int(mb[`tango_controller_current_path{site="site-b"}`])
			if rep.PathA == liveWantA && rep.PathB == liveWantB {
				break
			}
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("no convergence before timeout: site-a on path %d (want %d), site-b on path %d (want %d)",
				rep.PathA, liveWantA, rep.PathB, liveWantB)
		}
		time.Sleep(100 * time.Millisecond)
	}
	rep.ConvergedIn = time.Since(convergeStart)
	rep.MatchesSim = true

	// Sustained rate: frame-count deltas across both sockets over the
	// measurement window.
	tx0, err := txFrames(a.metrics, b.metrics)
	if err != nil {
		return rep, err
	}
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	tx1, err := txFrames(a.metrics, b.metrics)
	if err != nil {
		return rep, err
	}
	rep.Window = time.Since(t0)
	rep.Frames = tx1 - tx0
	rep.PPS = float64(rep.Frames) / rep.Window.Seconds()

	// Final scrapes become CI artifacts.
	if cfg.ArtifactDir != "" {
		for _, p := range []*proc{a, b} {
			if err := saveScrape(p.metrics+"/metrics", filepath.Join(cfg.ArtifactDir, p.site+"_metrics.prom")); err != nil {
				return rep, err
			}
		}
	}

	// Graceful teardown: SIGTERM, expect exit 0.
	for _, p := range []*proc{a, b} {
		if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
			return rep, fmt.Errorf("signal site-%s: %w", p.site, err)
		}
	}
	for _, p := range []*proc{a, b} {
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return rep, fmt.Errorf("site-%s exited uncleanly: %w", p.site, err)
			}
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			return rep, fmt.Errorf("site-%s ignored SIGINT", p.site)
		}
	}
	return rep, nil
}

// tangodAddrs is the JSON tangod writes to -addr-file.
type tangodAddrs struct {
	UDP     string `json:"udp"`
	Metrics string `json:"metrics"`
}

func waitAddrFile(path string, deadline time.Time) (*tangodAddrs, error) {
	if err := waitFile(path, deadline); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a tangodAddrs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("addr file %s: %w", path, err)
	}
	return &a, nil
}

func waitFile(path string, deadline time.Time) error {
	for {
		if _, err := os.Stat(path); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// txFrames sums tango_transport_tx_frames_total across both scrapes.
func txFrames(urls ...string) (uint64, error) {
	var sum uint64
	for _, u := range urls {
		m, err := scrapeProm(u + "/metrics")
		if err != nil {
			return 0, err
		}
		for k, v := range m {
			if strings.HasPrefix(k, "tango_transport_tx_frames_total") {
				sum += uint64(v)
			}
		}
	}
	return sum, nil
}

// scrapeProm fetches and parses a Prometheus text exposition into a
// name{labels} -> value map (histogram buckets included verbatim).
func scrapeProm(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return ParseProm(resp.Body)
}

// ParseProm parses Prometheus text exposition.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue // timestamps / exotic values are not needed here
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out, sc.Err()
}

func saveScrape(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
