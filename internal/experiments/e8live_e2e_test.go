package experiments

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestLoopbackE2E is the two-process end-to-end gate: it builds tangod,
// launches a listener and a dialer over 127.0.0.1 on the E8-live delay
// table, and requires both controllers to converge to the same paths as
// the simulated reference (E8LiveSim), with a clean SIGINT shutdown.
// Set LOOPBACK_ARTIFACT_DIR to keep process logs and final /metrics
// scrapes (the CI job uploads them).
func TestLoopbackE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process loopback run is not a -short test")
	}

	// The simulated reference must agree before the live run is judged
	// against it.
	if r := E8LiveSim(Config{Seed: 1}); !r.Passed() {
		t.Fatal("simulated E8-live reference did not converge; live comparison is meaningless")
	}

	bin := filepath.Join(t.TempDir(), "tangod")
	build := exec.Command("go", "build", "-o", bin, "tango/cmd/tangod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	artifactDir := os.Getenv("LOOPBACK_ARTIFACT_DIR")
	if artifactDir != "" {
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := RunE8Loopback(LoopbackConfig{
		Tangod:      bin,
		ArtifactDir: artifactDir,
		Measure:     2 * time.Second,
		Timeout:     90 * time.Second,
	})
	if err != nil {
		t.Fatalf("loopback run: %v (report: %+v)", err, rep)
	}
	if !rep.MatchesSim {
		t.Fatalf("live convergence (a=%d b=%d) does not match the simulated reference", rep.PathA, rep.PathB)
	}
	if rep.PPS <= 0 || rep.Frames == 0 {
		t.Fatalf("no sustained traffic measured: %+v", rep)
	}
	t.Logf("converged in %v (a->path %d, b->path %d); sustained %.0f frames/s over %v",
		rep.ConvergedIn.Round(time.Millisecond), rep.PathA, rep.PathB, rep.PPS, rep.Window.Round(time.Millisecond))
}
