package experiments

import (
	"strings"
	"testing"
)

func TestE8LiveSimConverges(t *testing.T) {
	r := E8LiveSim(Config{Seed: 1})
	if !r.Passed() {
		for _, c := range r.Checks {
			t.Logf("[%v] %s: %s", c.Pass, c.Name, c.Measured)
		}
		t.Fatal("E8-live simulated reference did not converge to the expected paths")
	}
}

func TestE8LiveSimSeedInvariant(t *testing.T) {
	// The scenario has no randomness that matters (fixed delays, no
	// loss): any seed must converge identically.
	for _, seed := range []int64{1, 7, 1234} {
		if r := E8LiveSim(Config{Seed: seed}); !r.Passed() {
			t.Fatalf("seed %d: not converged", seed)
		}
	}
}

func TestLivePathSpecs(t *testing.T) {
	if got := LivePathSpecA(); got != "NTT:30ms,GTT:12ms,Cogent:20ms" {
		t.Fatalf("spec A = %q", got)
	}
	if got := LivePathSpecB(); got != "NTT:18ms,GTT:25ms,Cogent:9ms" {
		t.Fatalf("spec B = %q", got)
	}
}

func TestParseProm(t *testing.T) {
	text := `# HELP tango_transport_tx_frames_total Tango frames written.
# TYPE tango_transport_tx_frames_total counter
tango_transport_tx_frames_total{site="site-a"} 446
tango_controller_current_path{site="site-a"} 2
malformed_line_without_value
tango_estimate_owd_ms{path="1",site="site-a"} -474.19
`
	m, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m[`tango_transport_tx_frames_total{site="site-a"}`] != 446 {
		t.Fatalf("tx frames = %v", m)
	}
	if m[`tango_controller_current_path{site="site-a"}`] != 2 {
		t.Fatal("current path missing")
	}
	if m[`tango_estimate_owd_ms{path="1",site="site-a"}`] != -474.19 {
		t.Fatal("negative gauge mangled")
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(m))
	}
}
