package experiments

import (
	"fmt"
	"time"

	"tango/internal/events"
	"tango/internal/measure"
)

// E9LossReorder validates §3's claim that "adding tunnel-specific
// sequence numbers on packets can allow Tango to additionally compute
// loss and reordering" — with correct per-path attribution and no probe
// traffic beyond the data packets themselves. A loss burst and an
// instability window (whose spikes overtake later packets, reordering
// them) are injected on GTT only; the measurement engine must see both
// on GTT and neither anywhere else.
func E9LossReorder(cfg Config) *Result {
	r := newResult("E9", "Loss and reordering from tunnel sequence numbers (§3)")
	l := newLab(labOpts{
		seed:          cfg.Seed + 9,
		probeInterval: cfg.probe(),
	})

	lead := cfg.dur(2 * time.Minute)
	burstLoss := 0.02
	lossAt := l.S.B.W.Now() + lead
	lossDur := 3 * time.Minute
	(&events.LossBurst{
		Line: l.S.TrunkToLA["GTT"],
		At:   lossAt, Duration: lossDur,
		Loss: burstLoss,
	}).Schedule(l.S.B.Eng())

	// Snapshot sequence accounting per path around the burst.
	type snap struct{ recv, lost, reord uint64 }
	take := func() map[string]snap {
		out := map[string]snap{}
		for _, pm := range l.monLA().Paths() {
			out[pm.Name] = snap{pm.Seq.Received, pm.Seq.Lost, pm.Seq.Reordered}
		}
		return out
	}

	l.S.B.W.Run(lossAt)
	before := take()
	l.run(lossDur)
	after := take()

	r.Rows = append(r.Rows, []string{"path", "window", "received", "lost", "measured loss", "reordered"})
	lossRate := func(name string, a, b map[string]snap) (float64, uint64, uint64, uint64) {
		recv := b[name].recv - a[name].recv
		lost := b[name].lost - a[name].lost
		reord := b[name].reord - a[name].reord
		total := recv + lost
		if total == 0 {
			return 0, recv, lost, reord
		}
		return float64(lost) / float64(total), recv, lost, reord
	}
	var gttLoss float64
	othersClean := true
	for _, name := range []string{"NTT", "Telia", "GTT", "Level3"} {
		rate, recv, lost, reord := lossRate(name, before, after)
		if name == "GTT" {
			gttLoss = rate
		} else if lost != 0 {
			othersClean = false
		}
		r.Rows = append(r.Rows, []string{name, "loss burst",
			fmt.Sprintf("%d", recv), fmt.Sprintf("%d", lost),
			fmt.Sprintf("%.3f%%", rate*100), fmt.Sprintf("%d", reord)})
	}
	r.check("measured loss matches injected rate", fmt.Sprintf("%.1f%% burst on GTT", burstLoss*100),
		within(gttLoss, burstLoss*0.7, burstLoss*1.3), "%.3f%%", gttLoss*100)
	r.check("loss attributed to the right path", "other paths unaffected", othersClean, "%v", othersClean)

	// Reordering: heavy spikes make slow packets arrive after their
	// successors.
	instAt := l.S.B.W.Now() + time.Minute
	instDur := 3 * time.Minute
	(&events.Instability{
		Line: l.S.TrunkToLA["GTT"],
		At:   instAt, Duration: instDur,
		SpikeProb: 0.05,
		SpikeMean: 30 * time.Millisecond,
		SpikeCap:  60 * time.Millisecond,
	}).Schedule(l.S.B.Eng())
	l.S.B.W.Run(instAt)
	before = take()
	l.run(instDur)
	after = take()

	gttReord := after["GTT"].reord - before["GTT"].reord
	othersReord := uint64(0)
	for _, name := range []string{"NTT", "Telia", "Level3"} {
		othersReord += after[name].reord - before[name].reord
	}
	r.Rows = append(r.Rows, []string{"GTT", "instability", "-", "-", "-", fmt.Sprintf("%d", gttReord)})
	r.check("reordering detected during spikes", "spiked packets overtaken by successors",
		gttReord > 100, "%d reordered on GTT", gttReord)
	r.check("reordering attributed to the right path", "other paths in order",
		othersReord == 0, "%d elsewhere", othersReord)

	// No false positives in quiet operation.
	qGTT := before["GTT"]
	_ = qGTT
	var quietLost, quietReord uint64
	for _, name := range []string{"NTT", "Telia", "Level3"} {
		quietLost += after[name].lost
		quietReord += after[name].reord
	}
	r.check("no false loss/reorder on quiet paths", "sequence accounting exact",
		quietLost == 0 && quietReord == 0, "lost=%d reordered=%d", quietLost, quietReord)

	// Loss-rate estimator from measure: cross-check with the path's
	// LossRate helper over the whole trace.
	gtt := pathByName(l.monLA(), "GTT")
	var w measure.Welford
	w.Add(gtt.Seq.LossRate())
	r.note("GTT cumulative loss over the whole trace: %.4f%%", gtt.Seq.LossRate()*100)

	r.VirtualTime = l.now()
	l.snapshot(r)
	return r
}
