// Package experiments regenerates every quantitative artifact in the
// paper's evaluation (§4.1, §5, Figures 3 and 4) plus the supporting
// analyses DESIGN.md lists as E6-E8, on the simulated Vultr deployment.
//
// Each experiment returns a Result: pass/fail checks against the paper's
// claims (shape, not absolute numbers), human-readable table rows, and
// the time series needed to redraw the figures. The cmd/tango-lab binary
// and the root bench_test.go both drive these entry points.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tango/internal/measure"
)

// Check compares one of the paper's claims against the measured value.
type Check struct {
	Name     string
	Paper    string // what the paper reports
	Measured string // what this run measured
	Pass     bool
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Checks []Check
	// Rows is a display table: Rows[0] is the header.
	Rows [][]string
	// Series holds figure data keyed by label.
	Series map[string]*measure.Series
	// Notes carries free-form observations.
	Notes []string
	// VirtualTime is how much simulated time the experiment covered.
	VirtualTime time.Duration
	// Metrics is the deployment's final observability snapshot, keyed
	// "name{labels}" (histograms contribute _count and _sum entries).
	// tango-lab writes it as <id>_metrics.json next to the CSV series.
	Metrics map[string]float64
	// Trace is the deployment's final trace journal rendered as JSON
	// (empty for experiments without a journal). Seeded runs produce it
	// byte-identically; the shard-invariance differential compares it
	// across worker counts.
	Trace string
	// Err records a driver panic recovered by RunJobs: the run died
	// before producing checks, and the message says why. A non-empty
	// Err fails Passed regardless of the (absent) checks.
	Err string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Series: make(map[string]*measure.Series)}
}

func (r *Result) check(name, paper string, pass bool, measuredFmt string, args ...any) {
	r.Checks = append(r.Checks, Check{
		Name:     name,
		Paper:    paper,
		Measured: fmt.Sprintf(measuredFmt, args...),
		Pass:     pass,
	})
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Passed reports whether every check passed and the run did not die.
func (r *Result) Passed() bool {
	if r.Err != "" {
		return false
	}
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// WriteText renders the result for a terminal.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s (virtual time %v)\n", r.ID, r.Title, r.VirtualTime)
	if r.Err != "" {
		fmt.Fprintf(w, "   [FAIL] driver panicked: %s\n", r.Err)
	}
	if len(r.Rows) > 0 {
		widths := make([]int, len(r.Rows[0]))
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for ri, row := range r.Rows {
			var b strings.Builder
			b.WriteString("   ")
			for i, cell := range row {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
			fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
			if ri == 0 {
				fmt.Fprintf(w, "   %s\n", strings.Repeat("-", sum(widths)+2*len(widths)))
			}
		}
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "   [%s] %-38s paper: %-28s measured: %s\n", mark, c.Name, c.Paper, c.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce bit-for-bit.
	Seed int64
	// Duration is the main measurement window of virtual time. Zero
	// uses each experiment's default (kept modest so the full suite
	// runs in seconds of real time; the paper's 8-day trace is the
	// same process run longer).
	Duration time.Duration
	// ProbeInterval defaults to the paper's 10 ms.
	ProbeInterval time.Duration
	// Shards, when positive, runs the experiment on a sharded network
	// with that many worker goroutines (see topo.MeshConfig.Shards).
	// The partition layout depends only on the topology and seed, so any
	// two positive values produce identical Results and trace journals —
	// the shard-invariance differential test pins exactly that. Zero
	// keeps the classic single-engine path. E2, E10, E11, and E12 honor
	// the knob; the remaining experiments ignore it.
	Shards int
	// Sites scales E12's wide mesh (0 = the full 64-site / 10k-tunnel
	// deployment; CI smoke runs a fraction of that). Other experiments
	// have fixed topologies and ignore it.
	Sites int
	// Flows scales E13's concurrent flow population (0 = the full one
	// million). Other experiments ignore it.
	Flows int
}

func (c Config) probe() time.Duration {
	if c.ProbeInterval == 0 {
		return 10 * time.Millisecond
	}
	return c.ProbeInterval
}

func (c Config) dur(def time.Duration) time.Duration {
	if c.Duration == 0 {
		return def
	}
	return c.Duration
}

// All runs every experiment in order.
func All(cfg Config) []*Result {
	return []*Result{
		E1PathDiscovery(cfg),
		E2OWDComparison(cfg),
		E3Jitter(cfg),
		E4RouteChange(cfg),
		E5Instability(cfg),
		E6InOrderImpact(cfg),
		E7MeasurementSoundness(cfg),
		E8DataPlaneCost(cfg),
		E9LossReorder(cfg),
		E10MeshOverlay(cfg),
		E11Failover(cfg),
	}
}

// within reports whether v lies in [lo, hi].
func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
