package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment drivers are exercised at reduced duration; the claims
// they check are statistical, so the windows below stay large enough for
// the checks to be meaningful while keeping the suite fast.

func requirePassed(t *testing.T, r *Result) {
	t.Helper()
	var b strings.Builder
	r.WriteText(&b)
	if !r.Passed() {
		t.Fatalf("experiment failed:\n%s", b.String())
	}
	t.Logf("\n%s", b.String())
}

func TestE1(t *testing.T) {
	requirePassed(t, E1PathDiscovery(Config{Seed: 1}))
}

func TestE2(t *testing.T) {
	requirePassed(t, E2OWDComparison(Config{Seed: 1, Duration: 10 * time.Minute}))
}

func TestE3(t *testing.T) {
	requirePassed(t, E3Jitter(Config{Seed: 1, Duration: 10 * time.Minute}))
}

func TestE4(t *testing.T) {
	requirePassed(t, E4RouteChange(Config{Seed: 1, Duration: 6 * time.Minute}))
}

func TestE5(t *testing.T) {
	requirePassed(t, E5Instability(Config{Seed: 1, Duration: 5 * time.Minute}))
}

func TestE6(t *testing.T) {
	requirePassed(t, E6InOrderImpact(Config{Seed: 1, Duration: 2 * time.Minute}))
}

func TestE7(t *testing.T) {
	requirePassed(t, E7MeasurementSoundness(Config{Seed: 1, Duration: 3 * time.Minute}))
}

func TestE8(t *testing.T) {
	requirePassed(t, E8DataPlaneCost(Config{Seed: 1}))
}

func TestE9(t *testing.T) {
	requirePassed(t, E9LossReorder(Config{Seed: 1, Duration: 2 * time.Minute}))
}

func TestE10(t *testing.T) {
	requirePassed(t, E10MeshOverlay(Config{Seed: 1, Duration: 90 * time.Second}))
}

func TestResultRendering(t *testing.T) {
	r := newResult("EX", "rendering")
	r.Rows = [][]string{{"a", "b"}, {"1", "2"}}
	r.check("some check", "paper says", true, "measured %d", 42)
	r.check("failing check", "paper says", false, "nope")
	r.note("a note")
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{"== EX", "PASS", "FAIL", "measured: measured 42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if r.Passed() {
		t.Fatal("Passed with failing check")
	}
}
