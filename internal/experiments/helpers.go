package experiments

import (
	"net/netip"

	"tango/internal/dataplane"
	"tango/internal/packet"
)

func mustAddr6(s string) netip.Addr { return netip.MustParseAddr(s) }

// innerPacket builds an inner IPv6/UDP packet with the given payload size.
func innerPacket(payload int) []byte {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(make([]byte, payload))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   64,
		Src:        mustAddr6("2001:db8:aa::1"),
		Dst:        mustAddr6("2001:db8:bb::1"),
	}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// buildOuter wraps inner in the full Tango encapsulation addressed to the
// tunnel's remote endpoint (for feeding a receiver program directly).
func buildOuter(tun *dataplane.Tunnel, inner []byte) []byte {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(inner)
	hdr := &packet.Tango{
		Flags:    packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagInner6,
		PathID:   tun.PathID,
		Seq:      1,
		SendTime: 1,
	}
	udp := &packet.UDP{SrcPort: tun.SrcPort, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(tun.LocalAddr, tun.RemoteAddr)
	ip := &packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   64,
		Src:        tun.LocalAddr,
		Dst:        tun.RemoteAddr,
	}
	if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
