//go:build race

package experiments

// raceEnabled reports whether this binary was built with the race
// detector, whose instrumentation inflates the E8 wall-clock numbers far
// past the paper's line-rate budget.
const raceEnabled = true
