package experiments

import (
	"runtime"
	"sync"
)

// Job is one experiment execution: a driver plus the Config to run it
// under. The ID is carried through to the result slot for callers that
// label output.
type Job struct {
	ID  string
	Cfg Config
	Run func(Config) *Result
}

// RunJobs executes the jobs on up to workers goroutines and returns their
// results indexed exactly like jobs, so output order is deterministic no
// matter how the scheduler interleaves the work. workers <= 0 means
// GOMAXPROCS; workers == 1 runs everything inline on the caller's
// goroutine.
//
// Running experiments concurrently is safe because an experiment is a
// closed world: each driver builds its own sim.Engine, simnet.Network,
// packet buffer pool, and seeded RNG streams, and no package in the
// simulation stack keeps mutable package-level state. Engines never share
// events, so the runner needs no locks beyond the WaitGroup — and
// determinism is untouched, since each engine's virtual timeline is
// independent of wall-clock interleaving (the race-enabled test suite and
// CI's -race differential run back this up).
func RunJobs(jobs []Job, workers int) []*Result {
	results := make([]*Result, len(jobs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = j.Run(j.Cfg)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = jobs[i].Run(jobs[i].Cfg)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
