package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// Job is one experiment execution: a driver plus the Config to run it
// under. The ID is carried through to the result slot for callers that
// label output.
type Job struct {
	ID  string
	Cfg Config
	Run func(Config) *Result
}

// RunJobs executes the jobs on up to workers goroutines and returns their
// results indexed exactly like jobs, so output order is deterministic no
// matter how the scheduler interleaves the work. workers <= 0 means
// GOMAXPROCS; workers == 1 runs everything inline on the caller's
// goroutine.
//
// Running experiments concurrently is safe because an experiment is a
// closed world: each driver builds its own sim.Engine, simnet.Network,
// packet buffer pool, and seeded RNG streams, and no package in the
// simulation stack keeps mutable package-level state. Engines never share
// events, so the runner needs no locks beyond the WaitGroup — and
// determinism is untouched, since each engine's virtual timeline is
// independent of wall-clock interleaving (the race-enabled test suite and
// CI's -race differential run back this up).
func RunJobs(jobs []Job, workers int) []*Result {
	results := make([]*Result, len(jobs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = runJob(j)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob shields the worker pool from a panicking driver: the panic
// becomes the job's Result.Err (with the panic site for debugging)
// instead of killing the process and every sibling job with it.
func runJob(j Job) (r *Result) {
	defer func() {
		if rec := recover(); rec != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			r = &Result{
				ID:    j.ID,
				Title: "driver panicked",
				Err:   fmt.Sprintf("%v\n%s", rec, buf),
			}
		}
	}()
	return j.Run(j.Cfg)
}
