package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// The parallel runner's contract is that concurrency is invisible:
// running the same jobs serially and on several goroutines must produce
// deeply equal results, in job order. This is the acceptance check for
// one-engine-per-goroutine isolation — any shared mutable state in the
// simulation stack would show up here (and under -race in CI).
func TestRunJobsParallelMatchesSerial(t *testing.T) {
	mkJobs := func() []Job {
		cfg := Config{Seed: 7, Duration: 500 * time.Millisecond}
		return []Job{
			{ID: "e1", Cfg: cfg, Run: E1PathDiscovery},
			{ID: "e3", Cfg: cfg, Run: E3Jitter},
			{ID: "e7", Cfg: cfg, Run: E7MeasurementSoundness},
			{ID: "e9", Cfg: cfg, Run: E9LossReorder},
		}
	}
	serial := RunJobs(mkJobs(), 1)
	parallel := RunJobs(mkJobs(), 4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] == nil || parallel[i] == nil {
			t.Fatalf("nil result at %d", i)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("experiment %s: parallel result differs from serial", serial[i].ID)
		}
	}
}

func TestRunJobsOrderAndWorkerClamp(t *testing.T) {
	cfg := Config{Seed: 3, Duration: 200 * time.Millisecond}
	jobs := []Job{
		{ID: "a", Cfg: cfg, Run: E1PathDiscovery},
		{ID: "b", Cfg: cfg, Run: E7MeasurementSoundness},
	}
	// More workers than jobs, and workers <= 0, must both behave.
	for _, workers := range []int{16, 0} {
		res := RunJobs(jobs, workers)
		if len(res) != 2 {
			t.Fatalf("workers=%d: got %d results", workers, len(res))
		}
		if res[0].ID != "E1" || res[1].ID != "E7" {
			t.Fatalf("workers=%d: results out of job order: %s, %s", workers, res[0].ID, res[1].ID)
		}
	}
	if res := RunJobs(nil, 4); len(res) != 0 {
		t.Fatalf("empty jobs returned %d results", len(res))
	}
}

func TestRunJobsRecoversPanics(t *testing.T) {
	boom := func(Config) *Result { panic("driver exploded") }
	ok := func(cfg Config) *Result { return newResult("OK", "fine") }
	jobs := []Job{
		{ID: "dead", Cfg: Config{}, Run: boom},
		{ID: "alive", Cfg: Config{}, Run: ok},
	}
	// Both the inline (workers=1) and pooled paths must survive: the
	// panic becomes the job's Result.Err, siblings run to completion.
	for _, workers := range []int{1, 2} {
		res := RunJobs(jobs, workers)
		if len(res) != 2 {
			t.Fatalf("workers=%d: got %d results", workers, len(res))
		}
		dead := res[0]
		if dead == nil || dead.Err == "" || !strings.Contains(dead.Err, "driver exploded") {
			t.Fatalf("workers=%d: panic not captured: %+v", workers, dead)
		}
		if dead.ID != "dead" || dead.Passed() {
			t.Fatalf("workers=%d: dead job must carry its ID and fail Passed: %+v", workers, dead)
		}
		if res[1] == nil || res[1].ID != "OK" || !res[1].Passed() {
			t.Fatalf("workers=%d: sibling job damaged: %+v", workers, res[1])
		}
	}
}
