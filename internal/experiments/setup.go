package experiments

import (
	"strings"
	"time"

	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/obs"
	"tango/internal/topo"
)

// lab is a ready Tango deployment plus ground-truth bookkeeping the
// experiments use for reporting (the simulator knows the true clock
// offsets; the system under test does not).
type lab struct {
	S    *topo.Scenario
	Pair *core.Pair
	// Reg/J observe the deployment for the whole run; snapshot folds the
	// final state into a Result for tango-lab to export.
	Reg *obs.Registry
	J   *obs.Journal
	// offNYtoLA is the constant added to raw OWDs measured at LA for
	// NY->LA traffic (receiver clock minus sender clock); offLAtoNY
	// the reverse.
	offNYtoLA time.Duration
	offLAtoNY time.Duration
	t0        time.Duration // virtual time when measurement started
}

type labOpts struct {
	seed          int64
	shards        int // 0 = classic single-engine network
	probeInterval time.Duration
	recordBucket  time.Duration
	decideEvery   time.Duration
	policyNY      control.Policy
	policyLA      control.Policy
	clockNY       time.Duration
	clockLA       time.Duration
}

// newLab builds the Vultr scenario, establishes the pair (discovery,
// pinning, tunnels, measurement loop), and returns with probes flowing.
func newLab(o labOpts) *lab {
	if o.clockNY == 0 && o.clockLA == 0 {
		o.clockNY, o.clockLA = 1700*time.Millisecond, -900*time.Millisecond
	}
	s, err := topo.NewVultrScenario(topo.ScenarioConfig{
		Seed:          o.seed,
		Shards:        o.shards,
		ClockOffsetNY: o.clockNY,
		ClockOffsetLA: o.clockLA,
	})
	if err != nil {
		panic(err) // fixed config; cannot fail
	}
	s.Run(5 * time.Minute)
	p := core.VultrPair(s, core.PairConfig{
		ProbeInterval: o.probeInterval,
		RecordBucket:  o.recordBucket,
		DecideEvery:   o.decideEvery,
		PolicyA:       o.policyNY,
		PolicyB:       o.policyLA,
	})
	p.Establish()
	if !p.RunUntilReady(2 * time.Hour) {
		panic("experiments: pair failed to establish")
	}
	reg := obs.NewRegistry()
	j := obs.NewJournal(1024)
	shardHooks(s.B.Eng(), j)
	p.Instrument(reg, j)
	enterParallel(s.B.Eng())
	return &lab{
		S:         s,
		Pair:      p,
		Reg:       reg,
		J:         j,
		offNYtoLA: o.clockLA - o.clockNY,
		offLAtoNY: o.clockNY - o.clockLA,
		t0:        s.B.W.Now(),
	}
}

// snapshot folds the lab's final observability state into the result.
func (l *lab) snapshot(r *Result) { r.Metrics = deterministicSnapshot(l.Reg) }

// wallClockFamilies are the instrument families measuring host wall-clock
// latency. Their values vary run to run even with a fixed seed, so
// experiment snapshots drop them: seeded Results stay deeply equal (the
// parallel runner's contract) and metrics.json stays reproducible. The
// event counts they would carry are duplicated by the corresponding
// _total counters.
var wallClockFamilies = []string{
	"tango_dataplane_encap_ns",
	"tango_dataplane_decap_ns",
	"tango_controller_decide_ns",
}

// deterministicSnapshot returns reg's snapshot minus wall-clock families.
func deterministicSnapshot(reg *obs.Registry) map[string]float64 {
	snap := reg.Snapshot()
	for k := range snap {
		for _, fam := range wallClockFamilies {
			if strings.HasPrefix(k, fam) {
				delete(snap, k)
				break
			}
		}
	}
	return snap
}

// run advances virtual time by d.
func (l *lab) run(d time.Duration) { l.S.Run(d) }

// now returns virtual time since measurement start.
func (l *lab) now() time.Duration { return l.S.B.W.Now() - l.t0 }

// trueMeanOWD returns the offset-corrected mean OWD (ms) for a monitored
// path. mon must be the receiving site's monitor and off that direction's
// clock-offset (receiver minus sender).
func trueMean(pm *control.PathMonitor, off time.Duration) float64 {
	return pm.OWD.Mean() - ms(off)
}

// monLA returns LA's monitor (NY->LA direction, the one Figure 4 plots).
func (l *lab) monLA() *control.Monitor { return l.Pair.B.Monitor }

// monNY returns NY's monitor (LA->NY direction).
func (l *lab) monNY() *control.Monitor { return l.Pair.A.Monitor }

// pathByName finds a monitored path by provider label.
func pathByName(m *control.Monitor, name string) *control.PathMonitor {
	for _, pm := range m.Paths() {
		if pm.Name == name {
			return pm
		}
	}
	return nil
}
