package experiments

import (
	"strings"

	"tango/internal/obs"
	"tango/internal/sim"
)

// Sharded-run plumbing shared by the experiments that honor Config.Shards.
//
// A sharded experiment follows one shape: build the scenario with
// cfg.Shards (the topo layer partitions the network and configures the
// worker count), establish in the coordinator's coupled mode exactly like
// a classic run, register the journal's barrier merge with shardHooks,
// finish wiring (chaos, workloads, callbacks), then flip to parallel
// epochs with enterParallel for the measurement phase. Every helper here
// is a no-op on a classic single-engine network, so the same driver code
// serves both paths.

// shardHooks registers the journal's shard merge at the coordinator's
// epoch barriers. Call it right after creating the journal — before any
// other barrier hook is registered — so every later hook (chaos log
// merges, invariant checks) observes a fully merged journal. No-op on a
// classic engine or a nil journal.
func shardHooks(eng *sim.Engine, j *obs.Journal) {
	c := eng.Coord()
	if c == nil || j == nil {
		return
	}
	c.AtBarrier(0, func(sim.Time) { j.MergeShards() })
}

// enterParallel switches a sharded run to parallel epochs; call it once
// wiring and establishment are done (direct cross-partition calls are
// only legal in coupled mode). No-op on a classic engine, and on a
// single-partition layout the coordinator stays coupled by itself.
func enterParallel(eng *sim.Engine) {
	if c := eng.Coord(); c != nil {
		c.EnterParallel()
	}
}

// traceJSON renders the journal's full tail for byte-exact comparison.
func traceJSON(j *obs.Journal) string {
	var b strings.Builder
	if err := j.WriteJSON(&b, 0); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}
