package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// shardCases are the experiments the shard-invariance differential pins,
// with measurement windows short enough to keep the seed sweep brisk.
var shardCases = []struct {
	name string
	run  func(Config) *Result
	dur  time.Duration
}{
	{"E2", E2OWDComparison, 2 * time.Minute},
	{"E10", E10MeshOverlay, 20 * time.Second},
	{"E11", E11Failover, 5 * time.Second},
}

// TestShardInvariance is the sharded simulation's core correctness pin:
// a 1-worker run and an N-worker run of the same seeded experiment must
// produce deeply equal Results and byte-identical trace journals. The
// partition layout is a function of topology and seed alone, so the only
// thing N changes is goroutine interleaving — any divergence means a
// cross-partition ordering leak. Seeds cycle through N ∈ {2, 4, 8} so
// every worker count is exercised across the sweep.
func TestShardInvariance(t *testing.T) {
	counts := []int{2, 4, 8}
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for _, ex := range shardCases {
		for seed := 0; seed < seeds; seed++ {
			n := counts[seed%len(counts)]
			t.Run(fmt.Sprintf("%s/seed%d/workers%d", ex.name, seed, n), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Seed: int64(seed), Duration: ex.dur, Shards: 1}
				base := ex.run(cfg)
				cfg.Shards = n
				got := ex.run(cfg)
				if base.Trace != got.Trace {
					t.Errorf("trace journal diverged between 1 and %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
						n, base.Trace, n, got.Trace)
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("Result diverged between 1 and %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
						n, renderResult(base), n, renderResult(got))
				}
			})
		}
	}
}

// TestShardedMatchesWindowless sanity-checks that a sharded run still
// passes the experiment's own claims (the differential alone would be
// satisfied by two identically wrong runs).
func TestShardedE11Passes(t *testing.T) {
	requirePassed(t, E11Failover(Config{Seed: 1, Duration: 20 * time.Second, Shards: 4}))
}

// TestE12SmokeShardInvariant runs the wide-mesh storm at a CI-sized
// fraction of the full deployment and pins the same 1-vs-N contract on
// it that TestShardInvariance pins on E2/E10/E11: the checks must pass
// and the worker count must not leak into the Result or the journal.
func TestE12SmokeShardInvariant(t *testing.T) {
	cfg := Config{Seed: 1, Sites: 12, Duration: 10 * time.Second, Shards: 1}
	base := E12ShardedStorm(cfg)
	requirePassed(t, base)
	cfg.Shards = 2
	got := E12ShardedStorm(cfg)
	if base.Trace != got.Trace {
		t.Errorf("E12 trace journal diverged between 1 and 2 workers")
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("E12 Result diverged between 1 and 2 workers:\n--- workers=1\n%s\n--- workers=2\n%s",
			renderResult(base), renderResult(got))
	}
}

func renderResult(r *Result) string {
	var sb strings.Builder
	r.WriteText(&sb)
	fmt.Fprintf(&sb, "virtual=%v metrics=%d trace=%dB", r.VirtualTime, len(r.Metrics), len(r.Trace))
	return sb.String()
}
