package experiments

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/obs"
	"tango/internal/topo"
)

// Discovery sweep driver: runs the §4.1 iterative community discovery
// across many site pairs of one generated internet and scores the
// discovered provider sets against the generator's valley-free ground
// truth.
//
// Concurrency has two independent axes:
//
//   - Pairs are split into a fixed number of chunks; each chunk is one
//     RunJobs job that builds its own replica of the (identical, seeded)
//     topology and runs its pairs' discoverers concurrently on that one
//     engine. The chunk count — and therefore every engine's event
//     timeline — depends only on the config, never on Workers, so serial
//     (Workers 1) and parallel runs produce deeply equal results and
//     byte-identical merged journals (the differential test pins this).
//   - TopoShards > 0 additionally builds each replica over the PR 6
//     partitioned network. The coordinator stays in coupled mode for the
//     whole sweep: discovery round callbacks read the observer's RIB
//     across partitions, which parallel epochs forbid, so the knob
//     exercises the sharded construction path without changing event
//     order.
type SweepConfig struct {
	// Graph generates the internet under test (its Seed drives every
	// draw).
	Graph topo.GenConfig
	// Pairs lists {src, dst} site indices (graph node order); discovery
	// runs toward dst, observing from src. At most 4096 pairs (each gets
	// its own probe /48).
	Pairs [][2]int
	// Chunks fixes how many topology replicas share the pair load
	// (default min(8, len(Pairs))). It must not vary with Workers.
	Chunks int
	// Workers bounds RunJobs parallelism (<= 0: GOMAXPROCS; 1: serial).
	Workers int
	// TopoShards builds each replica over a partitioned network with that
	// many construction workers (0 = classic single-engine).
	TopoShards int
	// MRAI paces the transit sessions (default 2 s).
	MRAI time.Duration
	// RoundWait is the per-round convergence wait (default 30 s — a
	// dozen-plus MRAI intervals, comfortably above worst-case path
	// hunting on generated graphs).
	RoundWait time.Duration
	// MaxRounds bounds each discovery loop (default 8).
	MaxRounds int
	// Establish is the initial convergence window (default 120 s).
	Establish time.Duration
}

// PairResult scores one pair's discovery run.
type PairResult struct {
	// Src and Dst are the pair's site indices.
	Src, Dst int
	// Found is the discovery loop's raw output, in round order.
	Found []control.DiscoveredPath
	// Providers is the distinct discovered provider set, ascending.
	Providers []bgp.ASN
	// Truth is the valley-free ground truth: dst's providers through
	// which src is reachable, ascending.
	Truth []bgp.ASN
	// Recall is |Providers ∩ Truth| / |Truth| (1 when Truth is empty).
	Recall float64
	// PhantomFree reports Providers ⊆ Truth: discovery never observed a
	// provider the ground truth rules out.
	PhantomFree bool
	// ValleyFree reports every observed AS path obeyed the export rules.
	ValleyFree bool
}

// SweepReport is a finished sweep.
type SweepReport struct {
	Graph *topo.ASGraph
	Pairs []PairResult
	// Trace is the merged journal of every discovery round, in chunk
	// order — byte-identical across Workers values for a fixed config.
	Trace string
	// VirtualTime is the longest chunk timeline.
	VirtualTime time.Duration
	Chunks      int
}

type sweepChunk struct {
	found [][]control.DiscoveredPath // indexed like the chunk's pair slice
	recs  []obs.Rec
	vtime time.Duration
}

// RunSweep executes the sweep and scores it.
func RunSweep(cfg SweepConfig) (*SweepReport, error) {
	if len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one pair")
	}
	if len(cfg.Pairs) > 4096 {
		return nil, fmt.Errorf("experiments: %d pairs exceed the probe-prefix budget (4096)", len(cfg.Pairs))
	}
	for _, p := range cfg.Pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("experiments: sweep pair %d->%d is a self-pair", p[0], p[1])
		}
	}
	g, err := topo.Gen(cfg.Graph)
	if err != nil {
		return nil, err
	}
	chunks := cfg.Chunks
	if chunks <= 0 {
		chunks = min(8, len(cfg.Pairs))
	}
	if chunks > len(cfg.Pairs) {
		chunks = len(cfg.Pairs)
	}

	// Every chunk deploys the full edge-site union, so all replicas are
	// byte-for-byte the same topology and per-chunk timelines compose
	// into one deterministic merged journal.
	siteSet := map[int]bool{}
	for _, p := range cfg.Pairs {
		siteSet[p[0]] = true
		siteSet[p[1]] = true
	}
	edgeSites := make([]int, 0, len(siteSet))
	for s := range siteSet {
		edgeSites = append(edgeSites, s)
	}
	sort.Ints(edgeSites)

	out := make([]*sweepChunk, chunks)
	jobs := make([]Job, chunks)
	for ci := 0; ci < chunks; ci++ {
		ci := ci
		lo := len(cfg.Pairs) * ci / chunks
		hi := len(cfg.Pairs) * (ci + 1) / chunks
		jobs[ci] = Job{
			ID: fmt.Sprintf("sweep/%02d", ci),
			Run: func(Config) *Result {
				ch, err := runSweepChunk(cfg, g, edgeSites, lo, hi)
				if err != nil {
					panic(err) // surfaced as the job's Result.Err
				}
				out[ci] = ch
				return &Result{ID: fmt.Sprintf("sweep/%02d", ci)}
			},
		}
	}
	for _, r := range RunJobs(jobs, cfg.Workers) {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: sweep chunk %s died: %s", r.ID, r.Err)
		}
	}

	rep := &SweepReport{Graph: g, Chunks: chunks}
	total := 0
	for _, ch := range out {
		total += len(ch.recs)
		if ch.vtime > rep.VirtualTime {
			rep.VirtualTime = ch.vtime
		}
	}
	merged := obs.NewJournal(total + 1)
	gi := 0
	for _, ch := range out {
		for i := range ch.recs {
			r := &ch.recs[i]
			merged.Record(r.At, r.Kind, r.A, r.B, r.V, r.Target())
		}
		for _, found := range ch.found {
			pair := cfg.Pairs[gi]
			rep.Pairs = append(rep.Pairs, scorePair(g, pair[0], pair[1], found))
			gi++
		}
	}
	rep.Trace = traceJSON(merged)
	return rep, nil
}

// runSweepChunk builds one topology replica and discovers pairs [lo, hi).
func runSweepChunk(cfg SweepConfig, g *topo.ASGraph, edgeSites []int, lo, hi int) (*sweepChunk, error) {
	s, err := topo.NewGenScenario(topo.GenScenarioConfig{
		Graph:     cfg.Graph,
		Shards:    cfg.TopoShards,
		EdgeSites: edgeSites,
		MRAI:      cfg.MRAI,
	})
	if err != nil {
		return nil, err
	}
	establish := cfg.Establish
	if establish == 0 {
		establish = 120 * time.Second
	}
	wait := cfg.RoundWait
	if wait == 0 {
		wait = 30 * time.Second
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8
	}
	s.Run(establish)

	n := hi - lo
	journal := obs.NewJournal(n*(maxRounds+2) + 1)
	ch := &sweepChunk{found: make([][]control.DiscoveredPath, n)}
	done := 0
	for k := 0; k < n; k++ {
		k := k
		pairIdx := lo + k
		src, dst := cfg.Pairs[pairIdx][0], cfg.Pairs[pairIdx][1]
		probe, err := s.ProbePrefix(pairIdx)
		if err != nil {
			return nil, err
		}
		announcer, observer := s.Edges[dst], s.Edges[src]
		if announcer == nil || observer == nil {
			return nil, fmt.Errorf("experiments: pair %d->%d references a site without an edge server", src, dst)
		}
		target := fmt.Sprintf("d/%d/%s->%s", pairIdx, g.ASes[src].Name, g.ASes[dst].Name)
		d := &control.Discoverer{
			Announcer: announcer.Speaker,
			Observer:  observer.Speaker,
			Probe:     probe,
			POPAS:     g.ASes[dst].ASN,
			RoundWait: wait,
			MaxRounds: maxRounds,
			OnRound: func(round int, found *control.DiscoveredPath) {
				if found == nil {
					journal.Record(s.B.W.Now(), obs.KindDiscovery, uint8(round), 0, 0, target)
					return
				}
				journal.Record(s.B.W.Now(), obs.KindDiscovery,
					uint8(round), uint8(len(found.Path)), int64(found.ProviderASN), target)
			},
		}
		d.Run(func(paths []control.DiscoveredPath) {
			ch.found[k] = paths
			done++
		})
	}
	// Every loop terminates within maxRounds+1 waits; the guard is slack
	// for the final withdrawals to land.
	for i := 0; i < maxRounds+4 && done < n; i++ {
		s.Run(wait)
	}
	if done < n {
		return nil, fmt.Errorf("experiments: sweep chunk [%d,%d) finished only %d/%d pairs", lo, hi, done, n)
	}
	ch.recs = journal.Tail(0)
	ch.vtime = s.B.W.Now()
	return ch, nil
}

// scorePair folds one pair's discovery output against the ground truth.
func scorePair(g *topo.ASGraph, src, dst int, found []control.DiscoveredPath) PairResult {
	pr := PairResult{
		Src: src, Dst: dst,
		Found:       found,
		Truth:       g.ValleyFreeProviders(dst, src),
		PhantomFree: true,
		ValleyFree:  true,
	}
	truth := map[bgp.ASN]bool{}
	for _, a := range pr.Truth {
		truth[a] = true
	}
	seen := map[bgp.ASN]bool{}
	hits := 0
	for _, f := range found {
		if !seen[f.ProviderASN] {
			seen[f.ProviderASN] = true
			pr.Providers = append(pr.Providers, f.ProviderASN)
			if truth[f.ProviderASN] {
				hits++
			} else {
				pr.PhantomFree = false
			}
		}
		// The observer is a Tango edge speaking from a private ASN, off
		// the AS graph; the observed path starts at its own site.
		if !g.ValleyFreeObserved(0, f.Path) {
			pr.ValleyFree = false
		}
	}
	sort.Slice(pr.Providers, func(i, j int) bool { return pr.Providers[i] < pr.Providers[j] })
	if len(pr.Truth) == 0 {
		pr.Recall = 1
	} else {
		pr.Recall = float64(hits) / float64(len(pr.Truth))
	}
	return pr
}
