package measure

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Point is one aggregated time-series bucket.
type Point struct {
	T    time.Duration // bucket start (virtual time)
	Min  float64
	Mean float64
	Max  float64
	N    uint64
}

// Series captures a time series with optional bucket aggregation. The
// paper's Figure 4 plots hours of one-way delay sampled every 10 ms;
// storing every raw sample of a multi-day trace is wasteful, so Series
// aggregates into fixed buckets (min/mean/max per bucket) — exactly what
// a plot at figure resolution needs, while preserving the extremes that
// make the instability spikes visible.
type Series struct {
	Name   string
	Bucket time.Duration // 0 stores raw samples (bucket of one)

	pts     []Point
	cur     Point
	curOpen bool
	overall Welford
}

// NewSeries creates a series with the given aggregation bucket.
func NewSeries(name string, bucket time.Duration) *Series {
	return &Series{Name: name, Bucket: bucket}
}

// Add appends a sample at virtual time t. Samples must arrive in
// nondecreasing time order.
func (s *Series) Add(t time.Duration, v float64) {
	s.overall.Add(v)
	if s.Bucket <= 0 {
		s.pts = append(s.pts, Point{T: t, Min: v, Mean: v, Max: v, N: 1})
		return
	}
	start := t - t%s.Bucket
	if s.curOpen && start > s.cur.T {
		s.flush()
	}
	if !s.curOpen {
		s.cur = Point{T: start, Min: v, Max: v}
		s.curOpen = true
	}
	if v < s.cur.Min {
		s.cur.Min = v
	}
	if v > s.cur.Max {
		s.cur.Max = v
	}
	// Streaming mean within the bucket.
	s.cur.N++
	s.cur.Mean += (v - s.cur.Mean) / float64(s.cur.N)
}

func (s *Series) flush() {
	if s.curOpen {
		s.pts = append(s.pts, s.cur)
		s.curOpen = false
	}
}

// Points returns the aggregated buckets (closing any open bucket).
func (s *Series) Points() []Point {
	s.flush()
	return s.pts
}

// Overall returns streaming statistics across every raw sample.
func (s *Series) Overall() *Welford { return &s.overall }

// Len returns the number of closed buckets plus any open one.
func (s *Series) Len() int {
	n := len(s.pts)
	if s.curOpen {
		n++
	}
	return n
}

// Slice returns the points with bucket start in [from, to).
func (s *Series) Slice(from, to time.Duration) []Point {
	pts := s.Points()
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].T >= to })
	return pts[lo:hi]
}

// MaxIn returns the maximum sample value within [from, to), or 0 if the
// window is empty. (Values may be negative: raw one-way delays carry the
// inter-switch clock offset.)
func (s *Series) MaxIn(from, to time.Duration) float64 {
	first := true
	max := 0.0
	for _, p := range s.Slice(from, to) {
		if first || p.Max > max {
			max = p.Max
			first = false
		}
	}
	return max
}

// MeanIn returns the sample-weighted mean within [from, to).
func (s *Series) MeanIn(from, to time.Duration) float64 {
	var sum float64
	var n uint64
	for _, p := range s.Slice(from, to) {
		sum += p.Mean * float64(p.N)
		n += p.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinIn returns the minimum sample value within [from, to), or 0 if the
// window is empty.
func (s *Series) MinIn(from, to time.Duration) float64 {
	first := true
	min := 0.0
	for _, p := range s.Slice(from, to) {
		if first || p.Min < min {
			min = p.Min
			first = false
		}
	}
	return min
}

// WriteCSV emits "t_hours,min,mean,max,n" rows, the format the figure
// scripts consume.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# series %s\nt_hours,min,mean,max,n\n", s.Name); err != nil {
		return err
	}
	for _, p := range s.Points() {
		if _, err := fmt.Fprintf(w, "%.6f,%.6g,%.6g,%.6g,%d\n",
			p.T.Hours(), p.Min, p.Mean, p.Max, p.N); err != nil {
			return err
		}
	}
	return nil
}
