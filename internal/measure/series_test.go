package measure

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesRaw(t *testing.T) {
	s := NewSeries("raw", 0)
	s.Add(time.Millisecond, 1)
	s.Add(2*time.Millisecond, 2)
	pts := s.Points()
	if len(pts) != 2 || pts[0].Mean != 1 || pts[1].Mean != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesAggregation(t *testing.T) {
	s := NewSeries("agg", time.Second)
	// Bucket 0: samples 1,2,3; bucket 1: samples 10,20.
	s.Add(100*time.Millisecond, 1)
	s.Add(500*time.Millisecond, 2)
	s.Add(900*time.Millisecond, 3)
	s.Add(1100*time.Millisecond, 10)
	s.Add(1900*time.Millisecond, 20)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("buckets = %d", len(pts))
	}
	b0 := pts[0]
	if b0.T != 0 || b0.Min != 1 || b0.Max != 3 || b0.N != 3 || b0.Mean != 2 {
		t.Fatalf("bucket0 = %+v", b0)
	}
	b1 := pts[1]
	if b1.T != time.Second || b1.Min != 10 || b1.Max != 20 || b1.Mean != 15 {
		t.Fatalf("bucket1 = %+v", b1)
	}
	if s.Overall().N() != 5 {
		t.Fatal("overall count wrong")
	}
}

func TestSeriesSkipsEmptyBuckets(t *testing.T) {
	s := NewSeries("gap", time.Second)
	s.Add(0, 1)
	s.Add(10*time.Second, 2) // 9 empty buckets in between
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("buckets = %d (empty buckets must not materialize)", len(pts))
	}
	if pts[1].T != 10*time.Second {
		t.Fatalf("bucket1 start = %v", pts[1].T)
	}
}

func TestSeriesWindowQueries(t *testing.T) {
	s := NewSeries("w", time.Second)
	for i := 0; i < 100; i++ {
		v := 28.0
		if i >= 50 && i < 60 {
			v = 78.0 // spike window
		}
		s.Add(time.Duration(i)*time.Second+time.Millisecond, v)
	}
	if got := s.MaxIn(50*time.Second, 60*time.Second); got != 78 {
		t.Fatalf("MaxIn spike = %v", got)
	}
	if got := s.MaxIn(0, 50*time.Second); got != 28 {
		t.Fatalf("MaxIn quiet = %v", got)
	}
	if got := s.MeanIn(0, 10*time.Second); got != 28 {
		t.Fatalf("MeanIn = %v", got)
	}
	if got := s.MinIn(45*time.Second, 65*time.Second); got != 28 {
		t.Fatalf("MinIn = %v", got)
	}
	if got := s.MinIn(200*time.Second, 300*time.Second); got != 0 {
		t.Fatalf("MinIn empty = %v", got)
	}
	if n := len(s.Slice(10*time.Second, 20*time.Second)); n != 10 {
		t.Fatalf("Slice len = %d", n)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("owd/gtt", time.Second)
	s.Add(0, 28)
	s.Add(time.Second, 29)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# series owd/gtt") ||
		!strings.Contains(out, "t_hours,min,mean,max,n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("csv rows:\n%s", out)
	}
}

func TestSeriesMeanWeighting(t *testing.T) {
	s := NewSeries("wmean", time.Second)
	// Bucket 0: 10 samples of 1; bucket 1: 1 sample of 100.
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*100*time.Millisecond, 1)
	}
	s.Add(1500*time.Millisecond, 100)
	got := s.MeanIn(0, 2*time.Second)
	want := (10*1.0 + 100.0) / 11.0
	if got != want {
		t.Fatalf("weighted mean = %v, want %v", got, want)
	}
}
