// Package measure implements the statistics behind Tango's measurement
// story: streaming one-way-delay aggregates, the 1-second rolling-window
// jitter metric the paper reports, time-series capture for figure
// regeneration, quantiles, and sequence-gap loss/reorder accounting.
package measure

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford is a streaming mean/variance accumulator (Welford's algorithm),
// numerically stable over the hundreds of millions of samples an 8-day
// 10ms-probe trace produces. The zero value is ready for use.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
func (w *Welford) Add(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", w.n, w.Mean(), w.Std(), w.min, w.max)
}

// RollingStd computes the paper's sub-second jitter metric: the standard
// deviation of samples within each Window-long window, averaged over all
// windows of the trace ("we calculated the mean standard deviation of a
// 1-second rolling window", §5). Windows tumble on sample time; windows
// with fewer than two samples contribute nothing.
type RollingStd struct {
	Window time.Duration

	cur      Welford
	curStart time.Duration
	started  bool
	winStds  Welford
}

// NewRollingStd returns a tracker with the given window (the paper uses
// one second).
func NewRollingStd(window time.Duration) *RollingStd {
	if window <= 0 {
		panic("measure: RollingStd window must be positive")
	}
	return &RollingStd{Window: window}
}

// Add incorporates a sample observed at virtual time t. Samples must
// arrive in nondecreasing time order.
func (r *RollingStd) Add(t time.Duration, v float64) {
	if !r.started {
		r.started = true
		r.curStart = t - t%r.Window
	}
	for t >= r.curStart+r.Window {
		r.closeWindow()
		r.curStart += r.Window
	}
	r.cur.Add(v)
}

func (r *RollingStd) closeWindow() {
	if r.cur.N() >= 2 {
		r.winStds.Add(r.cur.Std())
	}
	r.cur.Reset()
}

// MeanStd returns the mean of per-window standard deviations, including
// the currently open window.
func (r *RollingStd) MeanStd() float64 {
	final := r.winStds
	if r.cur.N() >= 2 {
		final.Add(r.cur.Std())
	}
	return final.Mean()
}

// Windows returns the number of closed windows that contributed.
func (r *RollingStd) Windows() uint64 { return r.winStds.N() }

// EWMA is an exponentially weighted moving average estimator — one of the
// controller's path-delay estimators (the ablation benchmarks compare it
// against windowed means under spike noise).
type EWMA struct {
	Alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an estimator with the given smoothing factor in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("measure: EWMA alpha out of (0,1]")
	}
	return &EWMA{Alpha: alpha}
}

// Add incorporates a sample.
func (e *EWMA) Add(v float64) {
	if !e.init {
		e.v, e.init = v, true
		return
	}
	e.v += e.Alpha * (v - e.v)
}

// Value returns the current estimate (0 before any sample).
func (e *EWMA) Value() float64 { return e.v }

// Valid reports whether at least one sample arrived.
func (e *EWMA) Valid() bool { return e.init }

// Reservoir keeps a bounded uniform sample for quantile estimation. It is
// deterministic: the "random" replacement indices come from a splitmix64
// stream seeded at construction, so experiments reproduce exactly.
type Reservoir struct {
	cap   int
	seen  uint64
	state uint64
	vals  []float64
}

// NewReservoir returns a reservoir holding at most capn samples.
func NewReservoir(capn int, seed uint64) *Reservoir {
	if capn <= 0 {
		panic("measure: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capn, state: seed ^ 0x9e3779b97f4a7c15, vals: make([]float64, 0, capn)}
}

// Add incorporates one sample (Algorithm R).
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	// next pseudo-random index in [0, seen)
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	idx := x % r.seen
	if idx < uint64(r.cap) {
		r.vals[idx] = v
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained sample.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	s := append([]float64(nil), r.vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Seen returns how many samples were offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// SeqTracker derives loss, reordering, and duplication from the Tango
// header's per-path sequence numbers (§3: "adding tunnel-specific
// sequence numbers on packets can allow Tango to additionally compute
// loss and reordering").
type SeqTracker struct {
	next      uint32
	started   bool
	Received  uint64
	Lost      uint64 // gaps never filled (net of late arrivals)
	Reordered uint64 // arrived after a later sequence number
	Dup       uint64
	// recent tracks sequence numbers seen out of an assumed gap so a
	// late arrival converts a counted loss into a reorder.
	recentGap map[uint32]bool
}

// Add processes one received sequence number and reports its kind:
// "ok", "reorder", or "dup".
func (s *SeqTracker) Add(seq uint32) string {
	s.Received++
	if !s.started {
		s.started = true
		s.next = seq + 1
		return "ok"
	}
	switch {
	case seq == s.next:
		s.next++
		return "ok"
	case seqAfter(seq, s.next):
		// Gap: provisionally count the skipped range as lost.
		gap := seq - s.next
		s.Lost += uint64(gap)
		if s.recentGap == nil {
			s.recentGap = make(map[uint32]bool)
		}
		for i := s.next; i != seq; i++ {
			if len(s.recentGap) > 4096 {
				break
			}
			s.recentGap[i] = true
		}
		s.next = seq + 1
		return "ok"
	default:
		if s.recentGap[seq] {
			delete(s.recentGap, seq)
			if s.Lost > 0 {
				s.Lost--
			}
			s.Reordered++
			return "reorder"
		}
		s.Dup++
		return "dup"
	}
}

// seqAfter reports whether a is after b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// LossRate returns lost / (received + lost).
func (s *SeqTracker) LossRate() float64 {
	total := s.Received + s.Lost
	if total == 0 {
		return 0
	}
	return float64(s.Lost) / float64(total)
}
