package measure

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstDirect(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 10000; i++ {
		v := r.NormFloat64()*3 + 10
		xs = append(xs, v)
		w.Add(v)
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var m2 float64
	mn, mx := xs[0], xs[0]
	for _, v := range xs {
		m2 += (v - mean) * (v - mean)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if !almostEq(w.Mean(), mean, 1e-9) {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if !almostEq(w.Var(), m2/float64(len(xs)), 1e-6) {
		t.Fatalf("var %v vs %v", w.Var(), m2/float64(len(xs)))
	}
	if w.Min() != mn || w.Max() != mx {
		t.Fatal("min/max wrong")
	}
	if w.N() != 10000 {
		t.Fatal("count wrong")
	}
	if !strings.Contains(w.String(), "n=10000") {
		t.Fatalf("String = %q", w.String())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.Var() != 0 {
		t.Fatal("empty stats nonzero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Std() != 0 || w.Min() != 5 || w.Max() != 5 {
		t.Fatal("single-sample stats wrong")
	}
}

// Property: Welford matches two-pass computation for arbitrary inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			m2 += (float64(v) - mean) * (float64(v) - mean)
		}
		return almostEq(w.Mean(), mean, 1e-6) && almostEq(w.Var(), m2/float64(len(raw)), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRollingStdConstantSignal(t *testing.T) {
	r := NewRollingStd(time.Second)
	for i := 0; i < 5000; i++ {
		r.Add(time.Duration(i)*10*time.Millisecond, 28.0)
	}
	if r.MeanStd() != 0 {
		t.Fatalf("constant signal jitter = %v", r.MeanStd())
	}
	if r.Windows() < 48 {
		t.Fatalf("windows = %d", r.Windows())
	}
}

func TestRollingStdKnownValue(t *testing.T) {
	// Alternating 0/2 has population std 1 in every window.
	r := NewRollingStd(time.Second)
	for i := 0; i < 10000; i++ {
		v := float64((i % 2) * 2)
		r.Add(time.Duration(i)*10*time.Millisecond, v)
	}
	if !almostEq(r.MeanStd(), 1.0, 1e-9) {
		t.Fatalf("MeanStd = %v, want 1", r.MeanStd())
	}
}

func TestRollingStdDistinguishesJitter(t *testing.T) {
	// The paper's E3: a 0.01 ms-jitter path vs a 0.33 ms-jitter path.
	rg := rand.New(rand.NewSource(42))
	quiet := NewRollingStd(time.Second)
	noisy := NewRollingStd(time.Second)
	for i := 0; i < 100000; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		quiet.Add(at, 28.0+rg.NormFloat64()*0.01)
		noisy.Add(at, 31.0+rg.NormFloat64()*0.33)
	}
	q, n := quiet.MeanStd(), noisy.MeanStd()
	if !almostEq(q, 0.01, 0.002) {
		t.Fatalf("quiet jitter = %v, want ~0.01", q)
	}
	if !almostEq(n, 0.33, 0.02) {
		t.Fatalf("noisy jitter = %v, want ~0.33", n)
	}
	if n/q < 20 {
		t.Fatalf("jitter ratio %v too small to distinguish paths", n/q)
	}
}

func TestRollingStdSparseWindows(t *testing.T) {
	r := NewRollingStd(time.Second)
	// One sample per window: no window has >= 2 samples.
	for i := 0; i < 10; i++ {
		r.Add(time.Duration(i)*time.Second+time.Millisecond, float64(i))
	}
	if r.MeanStd() != 0 || r.Windows() != 0 {
		t.Fatalf("sparse windows contributed: %v / %d", r.MeanStd(), r.Windows())
	}
}

func TestRollingStdPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRollingStd(0)
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Valid() {
		t.Fatal("valid before samples")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatal("first sample not adopted")
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v", e.Value())
	}
	// Converges toward a steady input.
	for i := 0; i < 100; i++ {
		e.Add(30)
	}
	if !almostEq(e.Value(), 30, 1e-6) {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() { recover() }()
			NewEWMA(bad)
			t.Fatalf("alpha %v accepted", bad)
		}()
	}
}

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	if r.Quantile(0) != 0 || r.Quantile(1) != 99 {
		t.Fatal("extremes wrong")
	}
	if !almostEq(r.Quantile(0.5), 49.5, 1e-9) {
		t.Fatalf("median = %v", r.Quantile(0.5))
	}
	if r.Seen() != 100 {
		t.Fatal("Seen wrong")
	}
}

func TestReservoirApproximatesLargeStream(t *testing.T) {
	r := NewReservoir(2000, 7)
	rg := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		r.Add(rg.Float64() * 100)
	}
	if !almostEq(r.Quantile(0.5), 50, 5) {
		t.Fatalf("median = %v", r.Quantile(0.5))
	}
	if !almostEq(r.Quantile(0.99), 99, 2.5) {
		t.Fatalf("p99 = %v", r.Quantile(0.99))
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() float64 {
		r := NewReservoir(50, 9)
		for i := 0; i < 10000; i++ {
			r.Add(float64(i % 997))
		}
		return r.Quantile(0.5)
	}
	if run() != run() {
		t.Fatal("reservoir not deterministic")
	}
	if NewReservoir(10, 1).Quantile(0.5) != 0 {
		t.Fatal("empty reservoir quantile nonzero")
	}
}

func TestSeqTrackerInOrder(t *testing.T) {
	var s SeqTracker
	for i := uint32(100); i < 200; i++ {
		if s.Add(i) != "ok" {
			t.Fatal("in-order flagged")
		}
	}
	if s.Lost != 0 || s.Reordered != 0 || s.Dup != 0 || s.Received != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LossRate() != 0 {
		t.Fatal("loss rate nonzero")
	}
}

func TestSeqTrackerLoss(t *testing.T) {
	var s SeqTracker
	s.Add(1)
	s.Add(2)
	s.Add(5) // 3,4 lost
	if s.Lost != 2 {
		t.Fatalf("Lost = %d", s.Lost)
	}
	if !almostEq(s.LossRate(), 2.0/5.0, 1e-9) {
		t.Fatalf("LossRate = %v", s.LossRate())
	}
}

func TestSeqTrackerReorderConvertsLoss(t *testing.T) {
	var s SeqTracker
	s.Add(1)
	s.Add(3) // 2 provisionally lost
	if s.Lost != 1 {
		t.Fatalf("Lost = %d", s.Lost)
	}
	if s.Add(2) != "reorder" {
		t.Fatal("late arrival not flagged as reorder")
	}
	if s.Lost != 0 || s.Reordered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSeqTrackerDup(t *testing.T) {
	var s SeqTracker
	s.Add(1)
	s.Add(2)
	if s.Add(2) != "dup" {
		t.Fatal("duplicate not flagged")
	}
	if s.Dup != 1 {
		t.Fatalf("Dup = %d", s.Dup)
	}
}

func TestSeqTrackerWraparound(t *testing.T) {
	var s SeqTracker
	s.Add(0xfffffffe)
	s.Add(0xffffffff)
	if s.Add(0) != "ok" {
		t.Fatal("wraparound broke ordering")
	}
	s.Add(1)
	if s.Lost != 0 || s.Reordered != 0 {
		t.Fatalf("wraparound stats = %+v", s)
	}
}

// Property: for any delivery order of a contiguous block with some
// dropped, received + lost accounts for the whole span once all
// deliveries settle.
func TestSeqTrackerConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rg := rand.New(rand.NewSource(seed))
		const n = 200
		dropped := map[int]bool{}
		for i := 0; i < 20; i++ {
			dropped[rg.Intn(n)] = true
		}
		// Deliver slightly shuffled: swap adjacent delivered pairs with
		// probability 1/2, but never the first element (a late arrival
		// from before the tracker's start is indistinguishable from a
		// duplicate by design).
		seq := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !dropped[i] {
				seq = append(seq, i)
			}
		}
		swaps := 0
		for i := 1; i+1 < len(seq); i += 2 {
			if rg.Intn(2) == 0 {
				seq[i], seq[i+1] = seq[i+1], seq[i]
				swaps++
			}
		}
		var s SeqTracker
		maxSeen := 0
		for _, v := range seq {
			s.Add(uint32(v + 1000))
			if v > maxSeen {
				maxSeen = v
			}
		}
		// Drops before the tracker's first packet or after its last are
		// invisible to sequence-gap accounting.
		droppedBelowMax := uint64(0)
		for d := range dropped {
			if d > seq[0] && d < maxSeen {
				droppedBelowMax++
			}
		}
		return s.Received == uint64(len(seq)) &&
			s.Dup == 0 &&
			s.Lost == droppedBelowMax &&
			s.Reordered == uint64(swaps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqTrackerLossAcrossWrap(t *testing.T) {
	var s SeqTracker
	s.Add(0xfffffffe)
	s.Add(2) // 0xffffffff, 0, 1 lost across the wrap point
	if s.Lost != 3 {
		t.Fatalf("Lost = %d, want 3", s.Lost)
	}
	if s.Add(3) != "ok" {
		t.Fatal("post-wrap in-order flagged")
	}
}

func TestSeqTrackerReorderAcrossWrap(t *testing.T) {
	var s SeqTracker
	s.Add(0xfffffffd)
	s.Add(0xffffffff) // 0xfffffffe provisionally lost
	s.Add(1)          // 0 provisionally lost
	if s.Lost != 2 {
		t.Fatalf("Lost = %d, want 2", s.Lost)
	}
	// Both stragglers arrive late, one from each side of the wrap.
	if s.Add(0xfffffffe) != "reorder" {
		t.Fatal("pre-wrap straggler not a reorder")
	}
	if s.Add(0) != "reorder" {
		t.Fatal("post-wrap straggler not a reorder")
	}
	if s.Lost != 0 || s.Reordered != 2 || s.Dup != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSeqTrackerDeepReorderBurst(t *testing.T) {
	// A whole flight arrives behind a later packet: every late packet
	// converts its provisional loss, then normal progress resumes.
	var s SeqTracker
	s.Add(0)
	s.Add(10)
	if s.Lost != 9 {
		t.Fatalf("Lost = %d, want 9", s.Lost)
	}
	for i := uint32(1); i < 10; i++ {
		if got := s.Add(i); got != "reorder" {
			t.Fatalf("Add(%d) = %q, want reorder", i, got)
		}
	}
	if s.Lost != 0 || s.Reordered != 9 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Add(11) != "ok" {
		t.Fatal("in-order after burst flagged")
	}
	if s.LossRate() != 0 {
		t.Fatalf("LossRate = %v", s.LossRate())
	}
}

func TestSeqTrackerLateThenDuplicate(t *testing.T) {
	// A late arrival fills its gap exactly once; a second copy is a dup.
	var s SeqTracker
	s.Add(1)
	s.Add(3)
	if s.Add(2) != "reorder" {
		t.Fatal("first late copy not a reorder")
	}
	if s.Add(2) != "dup" {
		t.Fatal("second late copy not a dup")
	}
	if s.Lost != 0 || s.Reordered != 1 || s.Dup != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSeqTrackerGapTrackingBounded(t *testing.T) {
	// A huge gap counts fully as loss, but late-arrival tracking is
	// bounded: stragglers beyond the tracked window register as dups
	// rather than growing state without limit.
	var s SeqTracker
	s.Add(0)
	s.Add(10000)
	if s.Lost != 9999 {
		t.Fatalf("Lost = %d, want 9999", s.Lost)
	}
	if s.Add(100) != "reorder" {
		t.Fatal("straggler inside tracked window not a reorder")
	}
	if s.Add(9000) != "dup" {
		t.Fatal("straggler beyond tracked window should degrade to dup")
	}
	if s.Reordered != 1 || s.Dup != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
