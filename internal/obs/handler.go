package obs

import (
	"net/http"
	"strconv"
)

// Handler serves a registry and journal over HTTP:
//
//	/metrics  Prometheus text format (the scrape endpoint)
//	/trace    JSON tail of the trace journal (?n=100 bounds it)
//
// tangod mounts this on a real listener while virtual time runs; tests
// mount it on httptest. All underlying state is atomic or mutex-guarded,
// so serving never blocks or perturbs the event loop.
func Handler(reg *Registry, j *Journal) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // whole ring by default
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		if err := j.WriteJSON(w, n); err != nil {
			return
		}
	})
	return mux
}
