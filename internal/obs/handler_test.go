package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHandlerMetrics(t *testing.T) {
	reg := goldenRegistry()
	srv := httptest.NewServer(Handler(reg, NewJournal(8)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The HTTP scrape must round-trip through the same parser the
	// golden-file test uses.
	samples, _, err := parseScrape(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if v := samples[`tango_tunnel_tx_total{path="1",site="ny"}`]; v != 40 {
		t.Fatalf("scraped counter = %v, want 40", v)
	}
}

func TestHandlerTrace(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record(time.Duration(i)*time.Second, KindQueueDrop, 0, 0, int64(100+i), "GTT:NY->LA")
	}
	srv := httptest.NewServer(Handler(NewRegistry(), j))
	defer srv.Close()

	get := func(url string) (int, []byte) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get(srv.URL + "/trace?n=2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var recs []struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
		V    int64  `json:"v"`
	}
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, body)
	}
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].V != 104 {
		t.Fatalf("trace tail wrong: %+v", recs)
	}

	if code, _ := get(srv.URL + "/trace"); code != http.StatusOK {
		t.Fatalf("unbounded trace status %d", code)
	}
	if code, _ := get(srv.URL + "/trace?n=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad n status %d, want 400", code)
	}
	if code, _ := get(srv.URL + "/trace?n=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative n status %d, want 400", code)
	}
}
