package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind classifies a trace record.
type Kind uint8

// Trace record kinds.
const (
	// KindPathSwitch is a controller moving data traffic between
	// tunnels: A is the old path ID, B the new, V the OWD delta in
	// nanoseconds (new minus old, negative when switching to a faster
	// path), Target the site name.
	KindPathSwitch Kind = iota + 1
	// KindFaultApply / KindFaultRevert bracket a chaos fault window;
	// Target is the fault label.
	KindFaultApply
	KindFaultRevert
	// KindWithdraw is a BGP withdrawal fault taking effect; Target is
	// the fault label (speaker and prefix).
	KindWithdraw
	// KindQueueDrop is a line dropping a packet at admission (queue
	// overflow or administratively down); V is the packet size in
	// bytes, Target the line name.
	KindQueueDrop
	// KindViolation is a chaos invariant failing; Target is the
	// invariant name.
	KindViolation
	// KindDiscovery is one §4.1 discovery round observing (or failing to
	// observe) a path: A is the round index, B the observed AS-path
	// length (0 on the terminating round), V the adjacent provider's ASN
	// (0 on termination), Target "d/<pair>/<src>-><dst>".
	KindDiscovery
)

// String returns the stable wire name used in JSON exposition.
func (k Kind) String() string {
	switch k {
	case KindPathSwitch:
		return "path_switch"
	case KindFaultApply:
		return "fault_apply"
	case KindFaultRevert:
		return "fault_revert"
	case KindWithdraw:
		return "withdraw"
	case KindQueueDrop:
		return "queue_drop"
	case KindViolation:
		return "violation"
	case KindDiscovery:
		return "discovery"
	default:
		return "unknown"
	}
}

// TargetLen is the fixed byte budget for a record's target name; longer
// names are truncated. Fixed-size records keep Record allocation-free
// and make the ring's memory footprint exact.
const TargetLen = 40

// Rec is one fixed-size trace record. All fields are virtual-time data,
// so seeded runs produce byte-identical journals (see WriteJSON).
type Rec struct {
	// Seq numbers records in append order across the whole run (it
	// keeps counting when the ring wraps, so a tail knows how much
	// history was overwritten).
	Seq  uint64
	At   time.Duration // virtual time
	Kind Kind
	A, B uint8
	V    int64
	tlen uint8
	targ [TargetLen]byte
}

// Target returns the record's target name (truncated to TargetLen).
func (r *Rec) Target() string { return string(r.targ[:r.tlen]) }

// Journal is a bounded ring of trace records. Record is zero-allocation
// after construction; readers copy records out under the same mutex, so
// a real-HTTP /trace tail can run while the simulation appends.
//
// In a sharded simulation every partition records into its own staging
// view (see Shard), and the views are merged into the parent ring at
// epoch barriers in a canonical order — virtual time, then partition,
// then per-partition append order. Merge order therefore never depends on
// goroutine scheduling, and the parent's WriteJSON output is byte-
// identical across worker counts.
type Journal struct {
	mu   sync.Mutex
	recs []Rec
	next uint64 // total records ever appended

	// parent is non-nil on a shard view; Record then stages into pending
	// (single-writer: the partition's goroutine) instead of the ring.
	// head is the merge cursor into pending, maintained by the parent.
	parent  *Journal
	pending []Rec
	head    int
	shards  []*Journal
}

// NewJournal returns a journal keeping the last capacity records
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{recs: make([]Rec, capacity)}
}

// Record appends one record, overwriting the oldest when the ring is
// full. Safe on a nil receiver (no-op), so instrumented components call
// it unconditionally.
func (j *Journal) Record(at time.Duration, kind Kind, a, b uint8, v int64, target string) {
	if j == nil {
		return
	}
	if j.parent != nil {
		// Shard view: stage without a lock (one writer per view) and
		// without a Seq — the parent assigns sequence numbers at merge.
		j.pending = append(j.pending, Rec{})
		r := &j.pending[len(j.pending)-1]
		r.At = at
		r.Kind = kind
		r.A, r.B = a, b
		r.V = v
		r.tlen = uint8(copy(r.targ[:], target))
		return
	}
	j.mu.Lock()
	r := &j.recs[j.next%uint64(len(j.recs))]
	r.Seq = j.next
	r.At = at
	r.Kind = kind
	r.A, r.B = a, b
	r.V = v
	n := copy(r.targ[:], target)
	r.tlen = uint8(n)
	j.next++
	j.mu.Unlock()
}

// Shard returns the staging view for one partition of a sharded
// simulation, creating views up to part as needed. Components owned by
// that partition record into the view from the partition's goroutine;
// MergeShards folds everything back into this journal.
func (j *Journal) Shard(part int) *Journal {
	if j == nil {
		return nil
	}
	if j.parent != nil {
		panic("obs: Shard of a shard view")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.shards) <= part {
		j.shards = append(j.shards, &Journal{parent: j})
	}
	return j.shards[part]
}

// MergeShards appends every staged shard record into the ring, ordered by
// (virtual time, partition index, per-partition append order), and clears
// the staging views. Call it single-threaded at epoch barriers; each
// view's staging slice is already time-sorted because events fire in time
// order within a partition.
func (j *Journal) MergeShards() {
	if j == nil || len(j.shards) == 0 {
		return
	}
	for {
		best := -1
		var bestAt time.Duration
		for p, s := range j.shards {
			if s.head >= len(s.pending) {
				continue
			}
			if best < 0 || s.pending[s.head].At < bestAt {
				best, bestAt = p, s.pending[s.head].At
			}
		}
		if best < 0 {
			break
		}
		s := j.shards[best]
		j.append(&s.pending[s.head])
		s.head++
	}
	for _, s := range j.shards {
		s.pending = s.pending[:0]
		s.head = 0
	}
}

// append copies one staged record into the ring, assigning its Seq.
func (j *Journal) append(src *Rec) {
	j.mu.Lock()
	r := &j.recs[j.next%uint64(len(j.recs))]
	*r = *src
	r.Seq = j.next
	j.next++
	j.mu.Unlock()
}

// Total returns how many records were ever appended (including ones the
// ring has since overwritten).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Tail returns copies of the most recent n records in append order
// (all of them when n <= 0 or n exceeds what the ring holds).
func (j *Journal) Tail(n int) []Rec {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	held := j.next
	if held > uint64(len(j.recs)) {
		held = uint64(len(j.recs))
	}
	if n <= 0 || uint64(n) > held {
		n = int(held)
	}
	out := make([]Rec, n)
	for i := 0; i < n; i++ {
		seq := j.next - uint64(n) + uint64(i)
		out[i] = j.recs[seq%uint64(len(j.recs))]
	}
	return out
}

// WriteJSON writes the most recent n records (all for n <= 0) as a JSON
// array. The rendering is hand-rolled and field-ordered, so two seeded
// runs that produced the same records produce byte-identical output —
// the determinism artifact the journal tests compare.
func (j *Journal) WriteJSON(w io.Writer, n int) error {
	recs := j.Tail(n)
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		sep := ","
		if i == len(recs)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w, "  {\"seq\":%d,\"at_ns\":%d,\"kind\":%q,\"a\":%d,\"b\":%d,\"v\":%d,\"target\":%q}%s\n",
			r.Seq, int64(r.At), r.Kind.String(), r.A, r.B, r.V, escapeJSONSafe(r.Target()), sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// escapeJSONSafe strips control characters that %q would render as Go
// escapes unknown to JSON (targets are ASCII labels in practice; this
// guards fuzzed or hostile names).
func escapeJSONSafe(s string) string {
	if !strings.ContainsFunc(s, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			b.WriteByte('.')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
