package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestJournalShardMergeOrder(t *testing.T) {
	j := NewJournal(16)
	s0 := j.Shard(0)
	s2 := j.Shard(2) // creating view 2 fills in view 1 too
	s1 := j.Shard(1)

	// Stage out of global order but in time order per view (events fire in
	// time order within a partition); include a tie at 2s to pin the
	// partition-index tiebreak.
	s1.Record(2*time.Second, KindFaultApply, 0, 0, 0, "p1-first")
	s1.Record(5*time.Second, KindFaultRevert, 0, 0, 0, "p1-second")
	s0.Record(2*time.Second, KindPathSwitch, 1, 2, 7, "p0-tie")
	s2.Record(time.Second, KindQueueDrop, 0, 0, 64, "p2-early")
	j.MergeShards()

	tail := j.Tail(0)
	want := []string{"p2-early", "p0-tie", "p1-first", "p1-second"}
	if len(tail) != len(want) {
		t.Fatalf("merged %d records, want %d", len(tail), len(want))
	}
	for i, r := range tail {
		if r.Target() != want[i] {
			t.Errorf("merge order [%d] = %q, want %q", i, r.Target(), want[i])
		}
		if r.Seq != uint64(i) {
			t.Errorf("merge seq [%d] = %d, want %d", i, r.Seq, i)
		}
	}

	// Views are cleared by the merge: an empty second merge adds nothing,
	// and reused views keep working.
	j.MergeShards()
	if j.Total() != 4 {
		t.Fatalf("idle merge appended records: total %d", j.Total())
	}
	s0.Record(6*time.Second, KindViolation, 0, 0, 0, "round2")
	j.MergeShards()
	if got := j.Tail(1)[0].Target(); got != "round2" {
		t.Fatalf("post-merge staging broken: tail %q", got)
	}
}

func TestJournalShardMatchesDirectWrites(t *testing.T) {
	// A sharded journal whose views saw the same records in the same global
	// order as a classic journal must serialize byte-identically — the
	// property the shard-invariance differential leans on.
	direct := NewJournal(8)
	sharded := NewJournal(8)
	v0, v1 := sharded.Shard(0), sharded.Shard(1)

	direct.Record(time.Second, KindFaultApply, 0, 0, 5, "alpha")
	direct.Record(2*time.Second, KindPathSwitch, 1, 2, -3, "beta")
	direct.Record(3*time.Second, KindFaultRevert, 0, 0, 0, "gamma")
	v1.Record(time.Second, KindFaultApply, 0, 0, 5, "alpha")
	v0.Record(2*time.Second, KindPathSwitch, 1, 2, -3, "beta")
	v1.Record(3*time.Second, KindFaultRevert, 0, 0, 0, "gamma")
	sharded.MergeShards()

	var a, b bytes.Buffer
	if err := direct.WriteJSON(&a, 0); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sharded journal diverged from direct writes:\n%s\nvs\n%s", b.String(), a.String())
	}
}

func TestJournalShardGuards(t *testing.T) {
	var nilJ *Journal
	if nilJ.Shard(3) != nil {
		t.Fatal("Shard on a nil journal must return nil")
	}
	nilJ.MergeShards() // no-op, must not panic

	j := NewJournal(4)
	j.MergeShards() // no views yet: no-op
	view := j.Shard(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Shard of a shard view must panic")
		}
	}()
	view.Shard(0)
}
