package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(time.Second, KindQueueDrop, 0, 0, 64, "line")
	if j.Total() != 0 || j.Tail(5) != nil {
		t.Fatal("nil journal must read as empty")
	}
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(time.Duration(i)*time.Second, KindPathSwitch, uint8(i), uint8(i+1), int64(i), "ny")
	}
	if j.Total() != 10 {
		t.Fatalf("total %d, want 10", j.Total())
	}
	tail := j.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail holds %d records, want 4", len(tail))
	}
	for i, r := range tail {
		wantSeq := uint64(6 + i)
		if r.Seq != wantSeq {
			t.Errorf("tail[%d].Seq = %d, want %d", i, r.Seq, wantSeq)
		}
	}
	// A bounded tail returns only the most recent n.
	last := j.Tail(2)
	if len(last) != 2 || last[1].Seq != 9 {
		t.Fatalf("Tail(2) = %+v, want 2 records ending at seq 9", last)
	}
	// Asking for more than the ring holds returns what is held.
	if got := j.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) holds %d records, want 4", len(got))
	}
}

func TestJournalTargetTruncation(t *testing.T) {
	j := NewJournal(2)
	long := strings.Repeat("x", TargetLen+25)
	j.Record(0, KindViolation, 0, 0, 0, long)
	got := j.Tail(1)[0].Target()
	if got != long[:TargetLen] {
		t.Fatalf("target = %q, want first %d bytes of input", got, TargetLen)
	}
}

func TestJournalJSONDeterministicAndValid(t *testing.T) {
	fill := func() *Journal {
		j := NewJournal(8)
		j.Record(time.Second, KindPathSwitch, 1, 3, -250000, "ny")
		j.Record(2*time.Second, KindFaultApply, 0, 0, int64(time.Minute), "down trunk/ny/GTT")
		j.Record(3*time.Second, KindQueueDrop, 0, 0, 1064, "GTT:NY->LA")
		j.Record(4*time.Second, KindViolation, 0, 0, 0, "conservation")
		return j
	}
	var a, b bytes.Buffer
	if err := fill().WriteJSON(&a, 0); err != nil {
		t.Fatal(err)
	}
	if err := fill().WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical journals must serialize byte-identically")
	}
	var decoded []struct {
		Seq    uint64 `json:"seq"`
		AtNs   int64  `json:"at_ns"`
		Kind   string `json:"kind"`
		A, B   uint8
		V      int64  `json:"v"`
		Target string `json:"target"`
	}
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	if len(decoded) != 4 {
		t.Fatalf("decoded %d records, want 4", len(decoded))
	}
	if decoded[0].Kind != "path_switch" || decoded[0].V != -250000 || decoded[0].Target != "ny" {
		t.Fatalf("first record decoded wrong: %+v", decoded[0])
	}
	if decoded[2].Kind != "queue_drop" || decoded[2].V != 1064 {
		t.Fatalf("queue_drop decoded wrong: %+v", decoded[2])
	}
}

func TestJournalJSONControlCharsStripped(t *testing.T) {
	j := NewJournal(1)
	j.Record(0, KindViolation, 0, 0, 0, "bad\x01name\x7f")
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("control chars must not break JSON: %v\n%s", err, buf.String())
	}
	if got := decoded[0]["target"]; got != "bad.name." {
		t.Fatalf("target = %q, want control chars replaced", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindPathSwitch:  "path_switch",
		KindFaultApply:  "fault_apply",
		KindFaultRevert: "fault_revert",
		KindWithdraw:    "withdraw",
		KindQueueDrop:   "queue_drop",
		KindViolation:   "violation",
		Kind(200):       "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
