// Package obs is the zero-allocation observability layer: a metrics
// registry of typed atomic instruments (Counter, Gauge, log-bucketed
// Histogram), a fixed-record trace journal for structured virtual-time
// events, and Prometheus text-format / JSON exposition over HTTP.
//
// The design constraint is the enforced packet fast path: after an
// instrument is registered, every operation on it — Inc, Add, Set,
// Observe — touches only preallocated atomic words, so instrumented
// encap/decap/deliver stays at 0 allocs/op (the internal/perf gate
// covers this). Registration is the only allocating step and happens at
// wiring time, never per packet.
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge, or
// *Histogram is a no-op, so components carry instrument fields
// unconditionally and uninstrumented deployments pay one predictable
// branch, no interface dispatch, no allocation.
//
// The simulation itself is single-goroutine, but exposition is not:
// tangod scrapes over real HTTP while virtual time runs. All instrument
// state is therefore atomic, and a scrape observes each instrument at a
// consistent-enough instant without ever blocking the event loop.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (atomic, zero-allocation).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NumBuckets is the fixed bucket count of every Histogram.
const NumBuckets = 64

// Histogram is a log2-bucketed distribution over non-negative int64
// values (typically nanoseconds). Bucket i counts observations v with
// 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0), so the 64 fixed buckets
// cover the whole int64 range and Observe never allocates: the bucket
// index is one bits.Len64 away.
type Histogram struct {
	count  atomic.Uint64
	sum    atomic.Int64
	bucket [NumBuckets]atomic.Uint64
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.bucket[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucketOf maps a value to its bucket index: 0 for v <= 0, otherwise
// bits.Len64(v) (1 for v=1, 11 for v=1024, ...), clamped to the top
// bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// BucketUpperBound returns the exclusive upper bound of bucket i
// (math.MaxInt64 for the top bucket, 0 for bucket 0's inclusive bound).
func BucketUpperBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	default:
		return int64(1) << uint(i)
	}
}

// Count returns how many values were observed (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound on the q-quantile of the observed
// distribution: the exclusive upper bound of the lowest bucket whose
// cumulative count reaches max(1, ceil(q·count)). The result is always
// one of the 64 fixed BucketUpperBound values — Quantile never
// interpolates within a bucket, so equal-count histograms agree exactly
// and comparisons between runs are bit-stable. Consequences worth
// relying on: q outside [0,1] is clamped; q=0 reports the first
// non-empty bucket's bound (the minimum's bucket), q=1 the last
// non-empty bucket's; with log2 buckets the bound is within 2× of the
// true quantile — the right resolution for SLO checks ("p99 OWD under
// 250 ms") over millions of observations with 64 words of state.
// Returns 0 when nothing was observed (or on a nil receiver), and 0 for
// any q when every observation was <= 0 (bucket 0's bound).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.bucket[i].Load()
		if cum >= need {
			return BucketUpperBound(i)
		}
	}
	return math.MaxInt64
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return h.bucket[i].Load()
}

// Label is one name="value" pair attached to an instrument.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one (name, labels) identity inside a family.
type instrument struct {
	// labels is the pre-rendered, escaped `a="b",c="d"` form — the
	// instrument's identity within its family and its exposition order.
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every instrument sharing a metric name.
type family struct {
	name, help string
	typ        metricType
	insts      map[string]*instrument
	order      []*instrument // sorted by labels
}

// Registry holds instruments with stable name+label identity:
// re-registering the same (name, labels) returns the same instrument,
// so wiring code may register idempotently. Registering one name with
// two different types or help strings panics — identity bugs should
// fail at wiring time, not corrupt a scrape.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.instrument(name, help, typeCounter, labels)
	if inst.c == nil {
		inst.c = &Counter{}
	}
	return inst.c
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.instrument(name, help, typeGauge, labels)
	if inst.g == nil {
		inst.g = &Gauge{}
	}
	return inst.g
}

// Histogram returns the histogram registered under (name, labels),
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	inst := r.instrument(name, help, typeHistogram, labels)
	if inst.h == nil {
		inst.h = &Histogram{}
	}
	return inst.h
}

func (r *Registry) instrument(name, help string, typ metricType, labels []Label) *instrument {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.fams[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, insts: make(map[string]*instrument)}
		r.fams[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	if help != "" && fam.help != "" && fam.help != help {
		panic(fmt.Sprintf("obs: metric %q registered with two help strings", name))
	}
	if fam.help == "" {
		fam.help = help
	}
	inst, ok := fam.insts[key]
	if !ok {
		inst = &instrument{labels: key}
		fam.insts[key] = inst
		i := sort.Search(len(fam.order), func(i int) bool { return fam.order[i].labels >= key })
		fam.order = append(fam.order, nil)
		copy(fam.order[i+1:], fam.order[i:])
		fam.order[i] = inst
	}
	return inst
}

// renderLabels produces the canonical, escaped `a="b",c="d"` form.
// Labels are sorted by name so registration order never leaks into
// identity or exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Snapshot flattens every instrument into a name{labels} -> value map:
// counters and gauges one entry each, histograms a _count and _sum pair.
// Experiment drivers attach this to their Results so tango-lab can write
// a per-experiment metrics.json.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, fam := range r.fams {
		for _, inst := range fam.order {
			suffix := ""
			if inst.labels != "" {
				suffix = "{" + inst.labels + "}"
			}
			switch fam.typ {
			case typeCounter:
				out[name+suffix] = float64(inst.c.Value())
			case typeGauge:
				out[name+suffix] = inst.g.Value()
			case typeHistogram:
				out[name+"_count"+suffix] = float64(inst.h.Count())
				out[name+"_sum"+suffix] = float64(inst.h.Sum())
			}
		}
	}
	return out
}
