package obs

import (
	"math"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3.14)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Bucket(3) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	g := r.Gauge("g", "help")
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge = %v, want +Inf", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's values must fall below its upper bound and at or
	// above the previous bound.
	for _, c := range cases {
		if c.v <= 0 {
			continue
		}
		b := bucketOf(c.v)
		if c.v >= BucketUpperBound(b) && b != NumBuckets-1 {
			t.Errorf("value %d >= upper bound %d of its own bucket %d", c.v, BucketUpperBound(b), b)
		}
		if b > 1 && c.v < BucketUpperBound(b-1) {
			t.Errorf("value %d < upper bound %d of the previous bucket", c.v, BucketUpperBound(b-1))
		}
	}

	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)
	h.Observe(1500)
	if h.Count() != 3 || h.Sum() != 1501 {
		t.Fatalf("count %d sum %d, want 3 / 1501", h.Count(), h.Sum())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(11) != 1 {
		t.Fatalf("bucket spread wrong: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(11))
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("site", "ny"), L("path", "1"))
	// Same identity, labels given in a different order.
	b := r.Counter("x_total", "help", L("path", "1"), L("site", "ny"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "help", L("site", "la"), L("path", "1"))
	if a == c {
		t.Fatal("different label values must return distinct counters")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestRegistryHelpMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "one help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name with two help strings must panic")
		}
	}()
	r.Counter("m", "another help")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("site", "ny")).Add(7)
	r.Gauge("g", "h").Set(1.5)
	h := r.Histogram("lat_ns", "h")
	h.Observe(10)
	h.Observe(20)

	snap := r.Snapshot()
	want := map[string]float64{
		`c_total{site="ny"}`: 7,
		`g`:                  1.5,
		`lat_ns_count`:       2,
		`lat_ns_sum`:         30,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

func TestRenderLabelsEscaping(t *testing.T) {
	got := renderLabels([]Label{L("line", "a\\b\"c\nd")})
	want := `line="a\\b\"c\nd"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
}
