package obs

import (
	"math"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3.14)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Bucket(3) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	g := r.Gauge("g", "help")
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge = %v, want +Inf", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's values must fall below its upper bound and at or
	// above the previous bound.
	for _, c := range cases {
		if c.v <= 0 {
			continue
		}
		b := bucketOf(c.v)
		if c.v >= BucketUpperBound(b) && b != NumBuckets-1 {
			t.Errorf("value %d >= upper bound %d of its own bucket %d", c.v, BucketUpperBound(b), b)
		}
		if b > 1 && c.v < BucketUpperBound(b-1) {
			t.Errorf("value %d < upper bound %d of the previous bucket", c.v, BucketUpperBound(b-1))
		}
	}

	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)
	h.Observe(1500)
	if h.Count() != 3 || h.Sum() != 1501 {
		t.Fatalf("count %d sum %d, want 3 / 1501", h.Count(), h.Sum())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(11) != 1 {
		t.Fatalf("bucket spread wrong: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(11))
	}
}

// TestHistogramQuantile pins Quantile's contract: the result is always a
// BucketUpperBound (never interpolated), selected by the lowest bucket
// whose cumulative count reaches max(1, ceil(q·count)), with q clamped
// to [0,1] and 0 returned for empty or nil histograms.
func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %d, want 0", got)
	}
	empty := &Histogram{}
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}

	// Everything in one bucket: every quantile, including the clamped
	// out-of-range ones, reports that bucket's exclusive upper bound.
	one := &Histogram{}
	for i := 0; i < 10; i++ {
		one.Observe(100) // bucket (64,128], upper bound 128
	}
	for _, q := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
		if got := one.Quantile(q); got != 128 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 128", q, got)
		}
	}

	// Non-positive observations land in bucket 0, whose bound is 0.
	neg := &Histogram{}
	neg.Observe(-7)
	neg.Observe(0)
	if got := neg.Quantile(1); got != 0 {
		t.Errorf("all-nonpositive Quantile(1) = %d, want bucket 0 bound 0", got)
	}

	// Two buckets, 9:1 split: the p90 boundary needs ceil(0.9*10)=9
	// observations, satisfied by the low bucket; p91 crosses into the
	// high one. No intermediate value is ever reported.
	split := &Histogram{}
	for i := 0; i < 9; i++ {
		split.Observe(3) // bucket (2,4], bound 4
	}
	split.Observe(1000) // bucket (512,1024], bound 1024
	if got := split.Quantile(0.9); got != 4 {
		t.Errorf("Quantile(0.9) = %d, want 4 (ceil rule keeps it in the low bucket)", got)
	}
	if got := split.Quantile(0.91); got != 1024 {
		t.Errorf("Quantile(0.91) = %d, want 1024", got)
	}
	// q=0 still needs one observation (need is floored to 1): the
	// minimum's bucket, not a made-up zero.
	if got := split.Quantile(0); got != 4 {
		t.Errorf("Quantile(0) = %d, want 4", got)
	}
	// The top bucket reports MaxInt64 — an honest "unbounded above".
	top := &Histogram{}
	top.Observe(math.MaxInt64)
	if got := top.Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("top-bucket Quantile = %d, want MaxInt64", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("site", "ny"), L("path", "1"))
	// Same identity, labels given in a different order.
	b := r.Counter("x_total", "help", L("path", "1"), L("site", "ny"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "help", L("site", "la"), L("path", "1"))
	if a == c {
		t.Fatal("different label values must return distinct counters")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestRegistryHelpMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "one help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name with two help strings must panic")
		}
	}()
	r.Counter("m", "another help")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("site", "ny")).Add(7)
	r.Gauge("g", "h").Set(1.5)
	h := r.Histogram("lat_ns", "h")
	h.Observe(10)
	h.Observe(20)

	snap := r.Snapshot()
	want := map[string]float64{
		`c_total{site="ny"}`: 7,
		`g`:                  1.5,
		`lat_ns_count`:       2,
		`lat_ns_sum`:         30,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

func TestRenderLabelsEscaping(t *testing.T) {
	got := renderLabels([]Label{L("line", "a\\b\"c\nd")})
	want := `line="a\\b\"c\nd"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
}
