package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Output order is fully
// deterministic: families sorted by metric name, instruments within a
// family sorted by their canonical label rendering — the property the
// golden-file test pins down.
//
// Histograms are emitted in the standard cumulative form: one bucket
// line per fixed log2 bucket that is non-empty plus the mandatory +Inf
// bucket, then _sum and _count. Empty buckets are skipped (cumulative
// counts lose nothing) to keep a 64-bucket histogram scrape readable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := r.fams[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ); err != nil {
			return err
		}
		for _, inst := range fam.order {
			if err := writeInstrument(w, name, fam.typ, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeInstrument(w io.Writer, name string, typ metricType, inst *instrument) error {
	switch typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, braced(inst.labels), inst.c.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, braced(inst.labels), formatFloat(inst.g.Value()))
		return err
	default:
		return writeHistogram(w, name, inst)
	}
}

// writeHistogram renders one histogram instrument. Bucket counts are
// loaded once into a local snapshot, and the +Inf bucket and _count are
// computed from that snapshot (not from the live count word), so the
// cumulative series is internally consistent — monotonically
// non-decreasing, +Inf == _count — even while the simulation keeps
// observing concurrently.
func writeHistogram(w io.Writer, name string, inst *instrument) error {
	var counts [NumBuckets]uint64
	var total uint64
	for i := 0; i < NumBuckets; i++ {
		counts[i] = inst.h.Bucket(i)
		total += counts[i]
	}
	sum := inst.h.Sum()
	var cum uint64
	for i := 0; i < NumBuckets-1; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		le := "0"
		if i > 0 {
			le = strconv.FormatInt(BucketUpperBound(i), 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(inst.labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(inst.labels, `le="+Inf"`), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, braced(inst.labels), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(inst.labels), total)
	return err
}

// braced wraps a non-empty label rendering in {}.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bracedWith appends extra (an already-rendered label) to the label set.
func bracedWith(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// formatFloat renders a gauge value the way Prometheus clients expect:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
