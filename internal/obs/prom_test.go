package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every exposition feature:
// family and instrument ordering, label escaping, empty label sets,
// float formatting (including non-finite gauges), and the cumulative
// histogram form with skipped empty buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	// Registered deliberately out of name and label order.
	r.Counter("tango_tunnel_tx_total", "Packets sent by tunnel.", L("site", "ny"), L("path", "2")).Add(12)
	r.Counter("tango_tunnel_tx_total", "Packets sent by tunnel.", L("site", "ny"), L("path", "1")).Add(40)
	r.Counter("tango_tunnel_tx_total", "Packets sent by tunnel.", L("site", "la"), L("path", "1")).Add(7)
	r.Gauge("tango_controller_current_path", "Path ID carrying traffic.", L("site", "ny")).Set(3)
	r.Gauge("weird_gauge", "Non-finite values spelled out.").Set(math.Inf(1))
	r.Counter("escaped_total", "Label values are escaped.",
		L("line", `GTT\NY->"LA"`+"\n")).Inc()
	h := r.Histogram("tango_path_owd_ns", "One-way delay.", L("site", "la"))
	h.Observe(0)
	h.Observe(3)       // bucket 2
	h.Observe(3)       // bucket 2
	h.Observe(1 << 20) // bucket 21
	r.Histogram("empty_hist", "No observations yet.")
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "scrape.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("scrape drifted from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusParses round-trips the golden scrape through the
// minimal parser: every sample line must split into name{labels} value,
// families must appear in sorted order, and each histogram must be
// internally consistent (cumulative buckets non-decreasing, +Inf equal
// to _count).
func TestWritePrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, families, err := parseScrape(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Fatalf("families out of order: %q before %q", families[i-1], families[i])
		}
	}
	if v, ok := samples[`tango_tunnel_tx_total{path="1",site="ny"}`]; !ok || v != 40 {
		t.Fatalf("labelled counter = %v (present %v), want 40", v, ok)
	}
	if v := samples[`tango_path_owd_ns_count{site="la"}`]; v != 4 {
		t.Fatalf("histogram count = %v, want 4", v)
	}
	if v := samples[`tango_path_owd_ns_bucket{site="la",le="+Inf"}`]; v != 4 {
		t.Fatalf("+Inf bucket = %v, want 4 (must equal _count)", v)
	}
	if v := samples[`tango_path_owd_ns_bucket{site="la",le="4"}`]; v != 3 {
		t.Fatalf("le=4 cumulative bucket = %v, want 3", v)
	}
}

// parseScrape is the golden-file parser: a deliberately minimal reader
// of the Prometheus text format returning sample name{labels} -> value
// plus family names in order of appearance.
func parseScrape(s string) (map[string]float64, []string, error) {
	samples := make(map[string]float64)
	var families []string
	seen := make(map[string]bool)
	for ln, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, nil, errLine(ln, line, "malformed TYPE")
			}
			if !seen[parts[2]] {
				seen[parts[2]] = true
				families = append(families, parts[2])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, errLine(ln, line, "no value separator")
		}
		key, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, nil, errLine(ln, line, "bad value: "+err.Error())
			}
			v = f
		}
		if i := strings.IndexByte(key, '{'); i >= 0 && !strings.HasSuffix(key, "}") {
			return nil, nil, errLine(ln, line, "unterminated label set")
		}
		samples[key] = v
	}
	return samples, families, nil
}

type scrapeErr struct {
	line int
	text string
	msg  string
}

func (e *scrapeErr) Error() string {
	return "scrape line " + strconv.Itoa(e.line+1) + " (" + e.text + "): " + e.msg
}

func errLine(ln int, text, msg string) error { return &scrapeErr{ln, text, msg} }

// TestConcurrentScrapeConsistency hammers one counter and one histogram
// from 8 goroutines while scrapes run; under -race this doubles as the
// data-race check, and each scrape's histogram must stay internally
// consistent (cumulative buckets never exceed +Inf, +Inf == _count).
func TestConcurrentScrapeConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "hammered counter")
	h := r.Histogram("hammer_ns", "hammered histogram")

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe((seed + int64(i)) << (i % 20))
			}
		}(int64(w + 1))
	}

	go func() {
		defer close(stop)
		wg.Wait()
	}()
	for {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples, _, err := parseScrape(buf.String())
		if err != nil {
			t.Fatal(err)
		}
		inf := samples[`hammer_ns_bucket{le="+Inf"}`]
		if count := samples["hammer_ns_count"]; count != inf {
			t.Fatalf("scrape inconsistent: +Inf bucket %v != _count %v", inf, count)
		}
		for key, v := range samples {
			if strings.HasPrefix(key, "hammer_ns_bucket{") && v > inf {
				t.Fatalf("cumulative bucket %s=%v exceeds +Inf %v", key, v, inf)
			}
		}
		select {
		case <-stop:
			if c.Value() != writers*perWriter || h.Count() != writers*perWriter {
				t.Fatalf("final counts %d/%d, want %d", c.Value(), h.Count(), writers*perWriter)
			}
			return
		default:
		}
	}
}
