package packet

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
)

// Authenticated telemetry (paper §6, "wide-area, efficient & trustworthy
// telemetry"): an on-path attacker who can modify the embedded timestamp,
// sequence number, or path ID can feed the controller fabricated
// measurements and steer traffic at will. With a shared key, the sender
// appends a truncated HMAC-SHA256 tag over the Tango header and the
// tunnelled payload; the receiver drops anything that fails verification
// *before* the measurement engine sees it.
//
// The Tango header's extension-flag byte signals the tag's presence. The
// tag covers the entire UDP payload (Tango header, optional report block,
// inner packet) with the tag bytes themselves zeroed. Sequence numbers
// inside the MAC make naive replays visible as duplicates to the
// receiver's sequence tracker. (A production switch implementation would
// use a cheaper MAC — SipHash, CMAC in hardware — behind the same frame
// layout.)

// Tango extension flags (byte 2 of the header).
const (
	// TangoExtAuth marks a 16-byte truncated HMAC-SHA256 tag following
	// the fixed header (and report block, when present).
	TangoExtAuth = 1 << 0
)

const tangoAuthLen = 16

var (
	errNoAuthTag  = errors.New("packet: tango datagram carries no auth tag")
	errShortAuth  = errors.New("packet: truncated tango datagram")
	errBadAuthKey = errors.New("packet: empty auth key")
)

// tangoTagOffset returns the byte offset of the auth tag within a
// serialized Tango datagram (the UDP payload), or an error if the header
// does not announce one.
func tangoTagOffset(data []byte) (int, error) {
	if len(data) < tangoFixedLen {
		return 0, errShortAuth
	}
	flags := data[0] & 0x0f
	ext := data[2]
	if ext&TangoExtAuth == 0 {
		return 0, errNoAuthTag
	}
	off := tangoFixedLen
	if flags&TangoFlagReport != 0 {
		off += tangoReportLen
	}
	if ext&TangoExtRelay != 0 {
		off += tangoRelayLen
	}
	if len(data) < off+tangoAuthLen {
		return 0, errShortAuth
	}
	return off, nil
}

func tangoMAC(key, data []byte, tagOff int) [tangoAuthLen]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(data[:tagOff])
	var zeros [tangoAuthLen]byte
	mac.Write(zeros[:])
	mac.Write(data[tagOff+tangoAuthLen:])
	var out [tangoAuthLen]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// SignTangoDatagram computes the MAC over a serialized Tango datagram
// (whose header must carry TangoExtAuth with a zeroed tag) and writes the
// tag in place.
func SignTangoDatagram(key, data []byte) error {
	if len(key) == 0 {
		return errBadAuthKey
	}
	off, err := tangoTagOffset(data)
	if err != nil {
		return err
	}
	tag := tangoMAC(key, data, off)
	copy(data[off:off+tangoAuthLen], tag[:])
	return nil
}

// VerifyTangoDatagram checks the tag on a serialized Tango datagram.
// It returns false for missing tags, truncation, or MAC mismatch.
func VerifyTangoDatagram(key, data []byte) bool {
	if len(key) == 0 {
		return false
	}
	off, err := tangoTagOffset(data)
	if err != nil {
		return false
	}
	want := tangoMAC(key, data, off)
	return hmac.Equal(want[:], data[off:off+tangoAuthLen])
}
