// Package packet implements the wire formats Tango puts on the network:
// IPv4, IPv6, UDP, and the Tango encapsulation header that carries the
// path identifier, sequence number, and sender timestamp.
//
// The design follows the gopacket serialization idiom: layers are
// *prepended* into a SerializeBuffer (payload first, then UDP, then IP),
// so each layer can treat the bytes already in the buffer as its payload
// when computing lengths and checksums. Decoding uses preallocated layer
// structs (DecodeFromBytes) so the per-packet hot path — which in the
// paper is an eBPF program — does not allocate.
package packet

import "fmt"

// SerializeBuffer accumulates a packet back-to-front. PrependBytes returns
// space in front of the current contents; AppendBytes returns space after.
// Bytes returns the assembled packet. Clear resets for reuse (previously
// returned slices are invalidated, as in gopacket).
type SerializeBuffer struct {
	data  []byte
	start int // index of first used byte in data
}

// NewSerializeBuffer returns a buffer with a default capacity suitable for
// a tunnel-encapsulated MTU-sized packet.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(128, 1500)
}

// NewSerializeBufferExpectedSize pre-reserves space for headers that will
// be prepended and payload that will be appended.
func NewSerializeBufferExpectedSize(expectedPrepend, expectedAppend int) *SerializeBuffer {
	b := &SerializeBuffer{
		data:  make([]byte, expectedPrepend, expectedPrepend+expectedAppend),
		start: expectedPrepend,
	}
	return b
}

// Bytes returns the assembled packet. The slice is valid until the next
// Prepend/Append/Clear.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// PrependBytes returns a zeroed slice of n bytes in front of the current
// contents for a header to be written into.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative prepend")
	}
	if b.start < n {
		// Grow at the front with doubling, so repeated large prepends
		// amortize to O(1) (a per-call constant would let capacity —
		// and make's zeroing cost — grow without bound on a reused
		// buffer). Existing back free space is preserved.
		used := len(b.data) - b.start
		backFree := cap(b.data) - len(b.data)
		newCap := 2*cap(b.data) + n
		newStart := newCap - backFree - used
		nd := make([]byte, newStart+used, newCap)
		copy(nd[newStart:], b.data[b.start:])
		b.data = nd
		b.start = newStart
	}
	b.start -= n
	out := b.data[b.start : b.start+n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// AppendBytes returns a zeroed slice of n bytes after the current contents
// for payload to be written into.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative append")
	}
	old := len(b.data)
	if cap(b.data) < old+n {
		nd := make([]byte, old, (old+n)*2)
		copy(nd, b.data)
		b.data = nd
	}
	b.data = b.data[:old+n]
	out := b.data[old:]
	for i := range out {
		out[i] = 0
	}
	return out
}

// Clear empties the buffer. Almost all of the existing capacity becomes
// front headroom (serialization is prepend-driven), with a slice kept
// free at the back for appends.
func (b *SerializeBuffer) Clear() {
	c := cap(b.data)
	keepBack := c / 8
	b.start = c - keepBack
	b.data = b.data[:b.start]
}

// SetBytes replaces the buffer contents with a copy of p, leaving no
// front headroom (a received packet is parsed in place, not prepended
// to). It grows the backing array only when p exceeds the capacity, so a
// reused buffer loads packets without allocating.
func (b *SerializeBuffer) SetBytes(p []byte) {
	if cap(b.data) < len(p) {
		b.data = make([]byte, len(p))
	} else {
		b.data = b.data[:len(p)]
	}
	b.start = 0
	copy(b.data, p)
}

// SerializableLayer is a layer that can write itself in front of the
// current buffer contents.
type SerializableLayer interface {
	// SerializeTo prepends the layer's wire form. The bytes already in
	// buf are the layer's payload.
	SerializeTo(buf *SerializeBuffer) error
	// LayerType identifies the layer.
	LayerType() LayerType
}

// SerializeLayers clears buf and serializes the given layers so they wrap
// each other: SerializeLayers(buf, ip, udp, payload) produces ip(udp(payload)).
func SerializeLayers(buf *SerializeBuffer, layers ...SerializableLayer) error {
	buf.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(buf); err != nil {
			return fmt.Errorf("packet: serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}
