package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.AppendBytes(3), []byte{4, 5, 6})
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	copy(b.AppendBytes(1), []byte{7})
	want := []byte{1, 2, 3, 4, 5, 6, 7}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("Bytes = %v, want %v", b.Bytes(), want)
	}
	if b.Len() != 7 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestSerializeBufferGrowsFront(t *testing.T) {
	b := NewSerializeBufferExpectedSize(2, 2)
	copy(b.PrependBytes(1), []byte{9})
	big := b.PrependBytes(100)
	for i := range big {
		big[i] = byte(i)
	}
	got := b.Bytes()
	if len(got) != 101 || got[100] != 9 || got[50] != 50 {
		t.Fatalf("front growth corrupted buffer: len=%d", len(got))
	}
}

func TestSerializeBufferZeroesReturnedSpace(t *testing.T) {
	b := NewSerializeBuffer()
	p := b.PrependBytes(8)
	for i := range p {
		p[i] = 0xff
	}
	b.Clear()
	p2 := b.PrependBytes(8)
	for i, v := range p2 {
		if v != 0 {
			t.Fatalf("byte %d not zeroed after Clear: %#x", i, v)
		}
	}
	a := b.AppendBytes(8)
	for i, v := range a {
		if v != 0 {
			t.Fatalf("append byte %d not zeroed: %#x", i, v)
		}
	}
}

func TestSerializeBufferClear(t *testing.T) {
	b := NewSerializeBuffer()
	b.AppendBytes(10)
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("Len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(2), []byte{1, 2})
	if !bytes.Equal(b.Bytes(), []byte{1, 2}) {
		t.Fatalf("reuse after Clear = %v", b.Bytes())
	}
}

func TestSerializeBufferNegativePanics(t *testing.T) {
	b := NewSerializeBuffer()
	for _, fn := range []func(){
		func() { b.PrependBytes(-1) },
		func() { b.AppendBytes(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative size did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: any interleaving of prepends and appends yields the
// concatenation prepends-reversed ++ appends.
func TestSerializeBufferOrderProperty(t *testing.T) {
	f := func(ops []bool, chunks [][]byte) bool {
		b := NewSerializeBufferExpectedSize(4, 4)
		var front, back []byte
		for i, pre := range ops {
			if i >= len(chunks) {
				break
			}
			c := chunks[i]
			if len(c) > 64 {
				c = c[:64]
			}
			if pre {
				copy(b.PrependBytes(len(c)), c)
				front = append(append([]byte{}, c...), front...)
			} else {
				copy(b.AppendBytes(len(c)), c)
				back = append(back, c...)
			}
		}
		want := append(front, back...)
		return bytes.Equal(b.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7
	// sums to ddf2 (before complement).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd length: trailing byte padded with zero.
	odd := []byte{0x01}
	if got := checksum(odd, 0); got != ^uint16(0x0100) {
		t.Fatalf("odd checksum = %#x", got)
	}
}

// Satellite: the amortized-doubling claim on the front-growth path. A
// reused buffer that repeatedly takes large prepends must converge to a
// bounded capacity instead of growing on every cycle.
func TestSerializeBufferReuseCapacityBounded(t *testing.T) {
	b := NewSerializeBufferExpectedSize(4, 4)
	const chunk = 1200
	b.Clear()
	b.PrependBytes(chunk)
	capAfterWarmup := cap(b.data)
	for i := 0; i < 10000; i++ {
		b.Clear()
		b.PrependBytes(chunk)
		b.PrependBytes(64) // header on top of the payload
	}
	if got := cap(b.data); got > 4*capAfterWarmup {
		t.Fatalf("capacity grew without bound on reuse: %d after warmup, %d after 10k cycles", capAfterWarmup, got)
	}
}

// A single growth event must at least double capacity (the invariant the
// boundedness above rests on).
func TestSerializeBufferGrowthDoubles(t *testing.T) {
	b := NewSerializeBufferExpectedSize(8, 8)
	for i := 0; i < 8; i++ {
		before := cap(b.data)
		b.PrependBytes(before + 1) // force a front growth
		if got := cap(b.data); got < 2*before {
			t.Fatalf("growth %d: cap %d -> %d, want >= %d", i, before, got, 2*before)
		}
		b.Clear()
	}
}

// Clear invariants: empty buffer, most capacity as front headroom, a
// fraction kept free at the back, and existing capacity untouched.
func TestSerializeBufferClearHeadroom(t *testing.T) {
	b := NewSerializeBufferExpectedSize(64, 64)
	b.AppendBytes(40)
	b.PrependBytes(30)
	capBefore := cap(b.data)
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("Len after Clear = %d", b.Len())
	}
	if cap(b.data) != capBefore {
		t.Fatalf("Clear changed capacity: %d -> %d", capBefore, cap(b.data))
	}
	c := cap(b.data)
	wantStart := c - c/8
	if b.start != wantStart {
		t.Fatalf("Clear headroom: start = %d, want %d (cap %d)", b.start, wantStart, c)
	}
	// The headroom is immediately usable without growth.
	b.PrependBytes(wantStart)
	if cap(b.data) != capBefore {
		t.Fatalf("prepend into advertised headroom grew buffer: %d -> %d", capBefore, cap(b.data))
	}
	// And the back free space likewise.
	b.Clear()
	b.AppendBytes(c / 8)
	if cap(b.data) != capBefore {
		t.Fatalf("append into advertised back space grew buffer: %d -> %d", capBefore, cap(b.data))
	}
}

func TestSerializeBufferSetBytes(t *testing.T) {
	b := NewSerializeBufferExpectedSize(16, 16)
	pkt := []byte{1, 2, 3, 4, 5}
	b.SetBytes(pkt)
	if !bytes.Equal(b.Bytes(), pkt) {
		t.Fatalf("SetBytes contents = %v", b.Bytes())
	}
	// Mutating the source must not affect the buffer (it copied).
	pkt[0] = 99
	if b.Bytes()[0] != 1 {
		t.Fatal("SetBytes aliased its input")
	}
	// Reloading a smaller packet reuses the backing array.
	capBefore := cap(b.data)
	b.SetBytes([]byte{9})
	if cap(b.data) != capBefore {
		t.Fatalf("SetBytes reallocated for smaller input: %d -> %d", capBefore, cap(b.data))
	}
	if b.Len() != 1 || b.Bytes()[0] != 9 {
		t.Fatalf("reload: len %d bytes %v", b.Len(), b.Bytes())
	}
	// A larger packet grows it.
	big := make([]byte, capBefore+100)
	big[len(big)-1] = 7
	b.SetBytes(big)
	if b.Len() != len(big) || b.Bytes()[len(big)-1] != 7 {
		t.Fatalf("grow reload: len %d", b.Len())
	}
}
