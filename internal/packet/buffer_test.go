package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.AppendBytes(3), []byte{4, 5, 6})
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	copy(b.AppendBytes(1), []byte{7})
	want := []byte{1, 2, 3, 4, 5, 6, 7}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("Bytes = %v, want %v", b.Bytes(), want)
	}
	if b.Len() != 7 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestSerializeBufferGrowsFront(t *testing.T) {
	b := NewSerializeBufferExpectedSize(2, 2)
	copy(b.PrependBytes(1), []byte{9})
	big := b.PrependBytes(100)
	for i := range big {
		big[i] = byte(i)
	}
	got := b.Bytes()
	if len(got) != 101 || got[100] != 9 || got[50] != 50 {
		t.Fatalf("front growth corrupted buffer: len=%d", len(got))
	}
}

func TestSerializeBufferZeroesReturnedSpace(t *testing.T) {
	b := NewSerializeBuffer()
	p := b.PrependBytes(8)
	for i := range p {
		p[i] = 0xff
	}
	b.Clear()
	p2 := b.PrependBytes(8)
	for i, v := range p2 {
		if v != 0 {
			t.Fatalf("byte %d not zeroed after Clear: %#x", i, v)
		}
	}
	a := b.AppendBytes(8)
	for i, v := range a {
		if v != 0 {
			t.Fatalf("append byte %d not zeroed: %#x", i, v)
		}
	}
}

func TestSerializeBufferClear(t *testing.T) {
	b := NewSerializeBuffer()
	b.AppendBytes(10)
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("Len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(2), []byte{1, 2})
	if !bytes.Equal(b.Bytes(), []byte{1, 2}) {
		t.Fatalf("reuse after Clear = %v", b.Bytes())
	}
}

func TestSerializeBufferNegativePanics(t *testing.T) {
	b := NewSerializeBuffer()
	for _, fn := range []func(){
		func() { b.PrependBytes(-1) },
		func() { b.AppendBytes(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative size did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: any interleaving of prepends and appends yields the
// concatenation prepends-reversed ++ appends.
func TestSerializeBufferOrderProperty(t *testing.T) {
	f := func(ops []bool, chunks [][]byte) bool {
		b := NewSerializeBufferExpectedSize(4, 4)
		var front, back []byte
		for i, pre := range ops {
			if i >= len(chunks) {
				break
			}
			c := chunks[i]
			if len(c) > 64 {
				c = c[:64]
			}
			if pre {
				copy(b.PrependBytes(len(c)), c)
				front = append(append([]byte{}, c...), front...)
			} else {
				copy(b.AppendBytes(len(c)), c)
				back = append(back, c...)
			}
		}
		want := append(front, back...)
		return bytes.Equal(b.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7
	// sums to ddf2 (before complement).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd length: trailing byte padded with zero.
	odd := []byte{0x01}
	if got := checksum(odd, 0); got != ^uint16(0x0100) {
		t.Fatalf("odd checksum = %#x", got)
	}
}
