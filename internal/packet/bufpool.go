package packet

// Buf is a pooled packet buffer: a SerializeBuffer bound to the freelist
// it came from. It is the unit of ownership on the simulator's packet
// fast path — the equivalent of the fixed per-CPU buffer an eBPF program
// works in, where the paper's data plane encapsulates and decapsulates
// every packet without touching an allocator.
//
// Ownership convention (see DESIGN.md, "Fast path & buffer ownership"):
//
//   - Exactly one owner at a time. Passing a *Buf to a consuming function
//     (Node.InjectBuf, Line.send, the engine's payload events) hands
//     ownership over; the caller must not touch the Buf afterwards.
//   - Whoever consumes a packet releases it: the node releases after the
//     local-delivery handler returns, a dropping line or router releases
//     at the drop site.
//   - Byte slices derived from a Buf (Bytes, decoded layer payloads, the
//     inner packet handed to DeliverLocal) are borrows: they are valid
//     only until the owner releases the Buf. Retain a copy, not the slice.
//
// Release returns the Buf to its pool; releasing twice panics, because a
// double release silently aliases two "owners" onto one buffer and
// corrupts packets far from the bug.
type Buf struct {
	SerializeBuffer
	pool   *BufPool
	next   *Buf
	leased bool
}

// Release returns the buffer to its pool. The Buf and every slice derived
// from it are invalid afterwards.
func (b *Buf) Release() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// Buffer capacity policy: buffers start at defaultBufCap (an MTU-sized
// inner packet plus worst-case encapsulation overhead fits without
// growing) and are discarded on release once grown past maxPooledCap, so
// one jumbo packet cannot permanently inflate the pool's footprint.
const (
	defaultBufCap = 2048
	maxPooledCap  = 16384
	maxPooledBufs = 4096
)

// BufPool is a freelist of fixed-capacity packet buffers. It is not
// goroutine-safe: like the event engine, it belongs to one
// single-goroutine simulation (each simnet.Network owns one).
type BufPool struct {
	free  *Buf
	nfree int

	// Stats counts pool activity; News on a warm steady state means the
	// fast path is leaking buffers somewhere.
	Stats struct {
		Gets     uint64
		News     uint64
		Puts     uint64
		Discards uint64
	}
}

// NewBufPool returns an empty pool; buffers are created on demand and
// recycled through Release.
func NewBufPool() *BufPool { return &BufPool{} }

// Get leases a cleared buffer from the pool (allocating one only when the
// freelist is empty). The caller owns it until it hands the Buf off or
// releases it.
func (p *BufPool) Get() *Buf {
	p.Stats.Gets++
	b := p.free
	if b == nil {
		p.Stats.News++
		b = &Buf{pool: p}
		b.data = make([]byte, 0, defaultBufCap)
	} else {
		p.free = b.next
		b.next = nil
		p.nfree--
	}
	b.leased = true
	b.Clear()
	return b
}

// Free returns the number of buffers currently on the freelist.
func (p *BufPool) Free() int { return p.nfree }

func (p *BufPool) put(b *Buf) {
	if !b.leased {
		panic("packet: Buf released twice")
	}
	b.leased = false
	p.Stats.Puts++
	if cap(b.data) > maxPooledCap || p.nfree >= maxPooledBufs {
		b.pool = nil // detach: a discarded Buf must not resurrect into the pool
		p.Stats.Discards++
		return
	}
	b.next = p.free
	p.free = b
	p.nfree++
}
