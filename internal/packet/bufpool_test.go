package packet

import (
	"bytes"
	"testing"
)

func TestBufPoolRecycles(t *testing.T) {
	p := NewBufPool()
	b1 := p.Get()
	b1.SetBytes([]byte{1, 2, 3})
	b1.Release()
	b2 := p.Get()
	if b2 != b1 {
		t.Fatal("pool did not recycle the released buffer")
	}
	if b2.Len() != 0 {
		t.Fatalf("recycled buffer not cleared: len %d", b2.Len())
	}
	if p.Stats.News != 1 || p.Stats.Gets != 2 || p.Stats.Puts != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	b2.Release()
}

func TestBufPoolSteadyStateNoNewBuffers(t *testing.T) {
	p := NewBufPool()
	pkt := make([]byte, 1100)
	for i := 0; i < 1000; i++ {
		b := p.Get()
		b.SetBytes(pkt)
		b.Release()
	}
	if p.Stats.News != 1 {
		t.Fatalf("steady-state reuse created %d buffers", p.Stats.News)
	}
}

func TestBufPoolDoubleReleasePanics(t *testing.T) {
	p := NewBufPool()
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

func TestBufPoolDiscardsOversized(t *testing.T) {
	p := NewBufPool()
	b := p.Get()
	b.SetBytes(make([]byte, maxPooledCap+1))
	b.Release()
	if p.Stats.Discards != 1 || p.Free() != 0 {
		t.Fatalf("oversized buffer pooled: discards=%d free=%d", p.Stats.Discards, p.Free())
	}
	// A discarded Buf is detached: releasing it again is the caller's bug
	// but must not resurrect it into the pool.
	if b.pool != nil {
		t.Fatal("discarded buffer still bound to pool")
	}
}

func TestBufPoolFreelistBounded(t *testing.T) {
	p := NewBufPool()
	bufs := make([]*Buf, maxPooledBufs+10)
	for i := range bufs {
		bufs[i] = p.Get()
	}
	for _, b := range bufs {
		b.Release()
	}
	if p.Free() != maxPooledBufs {
		t.Fatalf("freelist = %d, want cap at %d", p.Free(), maxPooledBufs)
	}
	if p.Stats.Discards != 10 {
		t.Fatalf("discards = %d", p.Stats.Discards)
	}
}

func TestBufSerializesLikeABuffer(t *testing.T) {
	p := NewBufPool()
	b := p.Get()
	copy(b.AppendBytes(3), []byte{4, 5, 6})
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	if !bytes.Equal(b.Bytes(), []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("Bytes = %v", b.Bytes())
	}
	b.Release()
}
