package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

// The fuzz targets check the parse -> serialize -> parse round trip for
// every wire codec: any input the decoder accepts must re-serialize into
// a form the decoder parses back to the same semantic header, and no
// input may panic the decoder. The comparison is per field rather than
// byte-for-byte because serialization is canonicalizing: IPv4 options
// are dropped and the checksum recomputed, UDP checksums are zeroed
// without pseudo-header addresses, and the Tango auth tag is re-zeroed
// for the data plane to sign.

// tangoSeed serializes a header over payload for the seed corpus.
func tangoSeed(t *Tango, payload []byte) []byte {
	buf := NewSerializeBuffer()
	pay := Payload(payload)
	if err := SerializeLayers(buf, t, &pay); err != nil {
		panic(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func FuzzTangoHeader(f *testing.F) {
	f.Add(tangoSeed(&Tango{Flags: TangoFlagSeq | TangoFlagTimestamp, PathID: 3, Seq: 77, SendTime: 1e9}, []byte("hi")))
	f.Add(tangoSeed(&Tango{
		Flags: TangoFlagSeq | TangoFlagReport | TangoFlagInner6, PathID: 1, Seq: 9,
		Report: OWDReport{PathID: 2, SampleCount: 40, MeanOWDNano: 11e6, JitterNano: 3e5},
	}, []byte("report")))
	f.Add(tangoSeed(&Tango{Flags: TangoFlagSeq, ExtFlags: TangoExtRelay | TangoExtAuth, RelayTTL: 4}, []byte("ext")))
	f.Add([]byte{0x20, 0, 0, 0})                                            // wrong version nibble
	f.Add([]byte{0x10, 1, 2, 3, 4, 5, 6, 7})                                // truncated fixed header
	f.Add(tangoSeed(&Tango{Flags: TangoFlagReport}, nil)[:tangoFixedLen+3]) // truncated report

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Tango
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		if got := h.HeaderLen(); got != len(data)-len(h.LayerPayload()) {
			t.Fatalf("HeaderLen %d != consumed %d", got, len(data)-len(h.LayerPayload()))
		}
		buf := NewSerializeBuffer()
		pay := Payload(h.LayerPayload())
		if err := SerializeLayers(buf, &h, &pay); err != nil {
			t.Fatalf("re-serialize of accepted header failed: %v", err)
		}
		var h2 Tango
		if err := h2.DecodeFromBytes(buf.Bytes()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if h2.Flags != h.Flags || h2.PathID != h.PathID || h2.ExtFlags != h.ExtFlags ||
			h2.Seq != h.Seq || h2.SendTime != h.SendTime || h2.RelayTTL != h.RelayTTL ||
			h2.Report != h.Report {
			t.Fatalf("round trip changed header:\n  %+v\n  %+v", h, h2)
		}
		// The tag is zeroed on serialize (the data plane signs the finished
		// datagram), so only its presence and length round-trip.
		if len(h2.AuthTag) != len(h.AuthTag) {
			t.Fatalf("auth tag length %d -> %d", len(h.AuthTag), len(h2.AuthTag))
		}
		if !bytes.Equal(h2.LayerPayload(), h.LayerPayload()) {
			t.Fatalf("round trip changed payload: %x -> %x", h.LayerPayload(), h2.LayerPayload())
		}
	})
}

// ipv4Seed builds a valid IPv4 datagram for the seed corpus.
func ipv4Seed(ip *IPv4, payload []byte) []byte {
	buf := NewSerializeBuffer()
	pay := Payload(payload)
	if err := SerializeLayers(buf, ip, &pay); err != nil {
		panic(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func FuzzIPv4Parse(f *testing.F) {
	f.Add(ipv4Seed(&IPv4{
		TOS: 0x10, ID: 7, TTL: 64, Protocol: ProtoUDP,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.2"),
	}, []byte("payload")))
	f.Add(ipv4Seed(&IPv4{
		Flags: 0x2, FragOff: 0x1fff, TTL: 1, Protocol: ProtoIPv4,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
	}, nil))
	f.Add([]byte{0x60, 0, 0, 0}) // IPv6 version nibble
	f.Add(bytes.Repeat([]byte{0x45}, ipv4HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		var ip IPv4
		if err := ip.DecodeFromBytes(data); err != nil {
			return
		}
		// The decoder accepts options (IHL > 5) and trailing bytes past the
		// total length; serialization canonicalizes to a bare 20-byte header
		// and recomputes the checksum, so compare the semantic fields.
		buf := NewSerializeBuffer()
		pay := Payload(ip.LayerPayload())
		if err := SerializeLayers(buf, &ip, &pay); err != nil {
			t.Fatalf("re-serialize of accepted header failed: %v", err)
		}
		var ip2 IPv4
		if err := ip2.DecodeFromBytes(buf.Bytes()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if ip2.TOS != ip.TOS || ip2.ID != ip.ID || ip2.Flags != ip.Flags ||
			ip2.FragOff != ip.FragOff || ip2.TTL != ip.TTL || ip2.Protocol != ip.Protocol ||
			ip2.Src != ip.Src || ip2.Dst != ip.Dst {
			t.Fatalf("round trip changed header:\n  %+v\n  %+v", ip, ip2)
		}
		if !bytes.Equal(ip2.LayerPayload(), ip.LayerPayload()) {
			t.Fatalf("round trip changed payload: %x -> %x", ip.LayerPayload(), ip2.LayerPayload())
		}
	})
}

func FuzzUDPParse(f *testing.F) {
	{
		buf := NewSerializeBuffer()
		pay := Payload([]byte("datagram"))
		if err := SerializeLayers(buf, &UDP{SrcPort: 1234, DstPort: TangoPort}, &pay); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.Bytes()...))
	}
	f.Add([]byte{0, 1, 0, 2, 0, 8, 0, 0}) // empty datagram
	f.Add([]byte{0, 1, 0, 2, 0, 4, 0, 0}) // length below header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var u UDP
		if err := u.DecodeFromBytes(data); err != nil {
			return
		}
		if len(u.LayerPayload()) > len(data)-udpHeaderLen {
			t.Fatalf("payload %d bytes from %d-byte datagram", len(u.LayerPayload()), len(data))
		}
		// Without SetNetworkForChecksum the serializer writes checksum 0
		// (legal for IPv4), so ports, length, and payload round-trip but the
		// decoded checksum does not.
		buf := NewSerializeBuffer()
		pay := Payload(u.LayerPayload())
		if err := SerializeLayers(buf, &u, &pay); err != nil {
			t.Fatalf("re-serialize of accepted header failed: %v", err)
		}
		var u2 UDP
		if err := u2.DecodeFromBytes(buf.Bytes()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if u2.SrcPort != u.SrcPort || u2.DstPort != u.DstPort {
			t.Fatalf("round trip changed ports: %d/%d -> %d/%d",
				u.SrcPort, u.DstPort, u2.SrcPort, u2.DstPort)
		}
		if !bytes.Equal(u2.LayerPayload(), u.LayerPayload()) {
			t.Fatalf("round trip changed payload: %x -> %x", u.LayerPayload(), u2.LayerPayload())
		}
	})
}
