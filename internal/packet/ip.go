package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by Tango packets.
const (
	ProtoUDP  = 17
	ProtoIPv4 = 4  // IPv4-in-X encapsulation
	ProtoIPv6 = 41 // IPv6-in-X encapsulation
)

// IPv6 is the fixed 40-byte IPv6 header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr

	payload []byte
}

const ipv6HeaderLen = 40

var errTruncated = errors.New("truncated")

// LayerType implements SerializableLayer and DecodingLayer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// NextLayerType maps NextHeader to a layer type.
func (ip *IPv6) NextLayerType() LayerType { return layerForProto(ip.NextHeader) }

// LayerPayload returns the bytes after the IPv6 header.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// SerializeTo prepends the IPv6 header; the current buffer contents become
// the payload and set PayloadLength.
func (ip *IPv6) SerializeTo(buf *SerializeBuffer) error {
	if !ip.Src.Is6() || !ip.Dst.Is6() {
		return fmt.Errorf("ipv6: src/dst must be IPv6 (src=%v dst=%v)", ip.Src, ip.Dst)
	}
	plen := buf.Len()
	if plen > 0xffff {
		return fmt.Errorf("ipv6: payload %d exceeds 65535", plen)
	}
	b := buf.PrependBytes(ipv6HeaderLen)
	b[0] = 6<<4 | ip.TrafficClass>>4
	b[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)&0x0f
	binary.BigEndian.PutUint16(b[2:4], uint16(ip.FlowLabel))
	binary.BigEndian.PutUint16(b[4:6], uint16(plen))
	b[6] = ip.NextHeader
	b[7] = ip.HopLimit
	src := ip.Src.As16()
	dst := ip.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return nil
}

// DecodeFromBytes parses an IPv6 header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return fmt.Errorf("ipv6: %w: %d bytes", errTruncated, len(data))
	}
	if v := data[0] >> 4; v != 6 {
		return fmt.Errorf("ipv6: version %d", v)
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(binary.BigEndian.Uint16(data[2:4]))
	plen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	var src, dst [16]byte
	copy(src[:], data[8:24])
	copy(dst[:], data[24:40])
	ip.Src = netip.AddrFrom16(src)
	ip.Dst = netip.AddrFrom16(dst)
	if len(data)-ipv6HeaderLen < plen {
		return fmt.Errorf("ipv6: %w payload: have %d want %d", errTruncated, len(data)-ipv6HeaderLen, plen)
	}
	ip.payload = data[ipv6HeaderLen : ipv6HeaderLen+plen]
	return nil
}

// IPv4 is the 20-byte (no options) IPv4 header.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr

	payload []byte
}

const ipv4HeaderLen = 20

// LayerType implements SerializableLayer and DecodingLayer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NextLayerType maps Protocol to a layer type.
func (ip *IPv4) NextLayerType() LayerType { return layerForProto(ip.Protocol) }

// LayerPayload returns the bytes after the IPv4 header.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// SerializeTo prepends the IPv4 header with a correct checksum.
func (ip *IPv4) SerializeTo(buf *SerializeBuffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("ipv4: src/dst must be IPv4 (src=%v dst=%v)", ip.Src, ip.Dst)
	}
	total := buf.Len() + ipv4HeaderLen
	if total > 0xffff {
		return fmt.Errorf("ipv4: total length %d exceeds 65535", total)
	}
	b := buf.PrependBytes(ipv4HeaderLen)
	b[0] = 4<<4 | ipv4HeaderLen/4
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:12], checksum(b, 0))
	return nil
}

// DecodeFromBytes parses an IPv4 header and verifies its checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4HeaderLen {
		return fmt.Errorf("ipv4: %w: %d bytes", errTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("ipv4: version %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(data) < ihl {
		return fmt.Errorf("ipv4: bad IHL %d", ihl)
	}
	if checksum(data[:ihl], 0) != 0 {
		return errors.New("ipv4: header checksum mismatch")
	}
	ip.TOS = data[1]
	total := int(binary.BigEndian.Uint16(data[2:4]))
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if total < ihl || len(data) < total {
		return fmt.Errorf("ipv4: %w: total %d have %d", errTruncated, total, len(data))
	}
	ip.payload = data[ihl:total]
	return nil
}

func layerForProto(proto uint8) LayerType {
	switch proto {
	case ProtoUDP:
		return LayerTypeUDP
	case ProtoIPv4:
		return LayerTypeIPv4
	case ProtoIPv6:
		return LayerTypeIPv6
	default:
		return LayerTypePayload
	}
}

// checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum.
func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)&1 != 0 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
