package packet

import "fmt"

// LayerType identifies a protocol layer.
type LayerType uint8

// Layer types understood by this package.
const (
	LayerTypeNone LayerType = iota
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeUDP
	LayerTypeTango
	LayerTypePayload
)

func (t LayerType) String() string {
	switch t {
	case LayerTypeNone:
		return "None"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTango:
		return "Tango"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// DecodingLayer is a layer that can parse itself from bytes without
// allocating, gopacket-style: the caller owns a set of preallocated layer
// structs and reuses them packet after packet.
type DecodingLayer interface {
	// DecodeFromBytes parses the layer. The layer must retain only
	// sub-slices of data (zero copy); data must stay valid while the
	// layer is in use.
	DecodeFromBytes(data []byte) error
	// LayerType identifies the layer.
	LayerType() LayerType
	// NextLayerType reports the type of the payload layer, or
	// LayerTypePayload if unknown/opaque.
	NextLayerType() LayerType
	// LayerPayload returns the bytes after this layer's header.
	LayerPayload() []byte
}

// Parser decodes a packet into a fixed set of preallocated layers,
// mirroring gopacket's DecodingLayerParser. It stops at the first layer
// type it has no decoder for (leaving the remainder as opaque payload).
type Parser struct {
	first    LayerType
	decoders [8]DecodingLayer // indexed by LayerType; small and fixed
	// Truncated is set when the last decoded layer reported a payload
	// shorter than its headers promised.
	Truncated bool
}

// NewParser builds a parser beginning at first, with the given layers as
// decode targets.
func NewParser(first LayerType, layers ...DecodingLayer) *Parser {
	p := &Parser{first: first}
	for _, l := range layers {
		p.decoders[l.LayerType()] = l
	}
	return p
}

// Decode parses data, appending the types of successfully decoded layers
// to decoded (which is reset first). It returns the remaining opaque
// payload after the last decoded layer.
func (p *Parser) Decode(data []byte, decoded *[]LayerType) ([]byte, error) {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	t := p.first
	rest := data
	for t != LayerTypePayload && t != LayerTypeNone {
		d := p.decoders[t]
		if d == nil {
			break
		}
		if err := d.DecodeFromBytes(rest); err != nil {
			return rest, fmt.Errorf("packet: decoding %v: %w", t, err)
		}
		*decoded = append(*decoded, t)
		rest = d.LayerPayload()
		t = d.NextLayerType()
	}
	return rest, nil
}
