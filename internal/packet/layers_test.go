package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcV6 = netip.MustParseAddr("2001:db8:1::1")
	dstV6 = netip.MustParseAddr("2001:db8:5::1")
	srcV4 = netip.MustParseAddr("10.0.0.1")
	dstV4 = netip.MustParseAddr("10.0.0.2")
)

func TestIPv6RoundTrip(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("hello tango"))
	ip := &IPv6{
		TrafficClass: 0xb8,
		FlowLabel:    0xabcde,
		NextHeader:   ProtoUDP,
		HopLimit:     64,
		Src:          srcV6,
		Dst:          dstV6,
	}
	if err := SerializeLayers(buf, ip, &pay); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != ipv6HeaderLen+len(pay) {
		t.Fatalf("serialized len = %d", buf.Len())
	}

	var dec IPv6
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.TrafficClass != 0xb8 || dec.FlowLabel != 0xabcde ||
		dec.NextHeader != ProtoUDP || dec.HopLimit != 64 ||
		dec.Src != srcV6 || dec.Dst != dstV6 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
	if string(dec.LayerPayload()) != "hello tango" {
		t.Fatalf("payload = %q", dec.LayerPayload())
	}
	if dec.NextLayerType() != LayerTypeUDP {
		t.Fatalf("NextLayerType = %v", dec.NextLayerType())
	}
}

func TestIPv6Errors(t *testing.T) {
	var ip IPv6
	if err := ip.DecodeFromBytes(make([]byte, 39)); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := make([]byte, 40)
	bad[0] = 4 << 4
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Payload length larger than available bytes.
	buf := NewSerializeBuffer()
	pay := Payload(make([]byte, 10))
	good := &IPv6{NextHeader: ProtoUDP, HopLimit: 1, Src: srcV6, Dst: dstV6}
	if err := SerializeLayers(buf, good, &pay); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:45]
	if err := ip.DecodeFromBytes(trunc); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Serializing with IPv4 addresses fails.
	buf.Clear()
	badIP := &IPv6{Src: srcV4, Dst: dstV6}
	if err := badIP.SerializeTo(buf); err == nil {
		t.Fatal("IPv4 src accepted by IPv6 layer")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("inner"))
	ip := &IPv4{TOS: 0x10, ID: 777, TTL: 63, Protocol: ProtoUDP, Src: srcV4, Dst: dstV4}
	if err := SerializeLayers(buf, ip, &pay); err != nil {
		t.Fatal(err)
	}
	var dec IPv4
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.TOS != 0x10 || dec.ID != 777 || dec.TTL != 63 ||
		dec.Src != srcV4 || dec.Dst != dstV4 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
	if string(dec.LayerPayload()) != "inner" {
		t.Fatalf("payload = %q", dec.LayerPayload())
	}

	// Corrupt one byte: checksum must catch it.
	raw := append([]byte{}, buf.Bytes()...)
	raw[9] ^= 0xff
	if err := dec.DecodeFromBytes(raw); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestUDPRoundTripWithChecksum(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("datagram payload"))
	u := &UDP{SrcPort: 5000, DstPort: TangoPort}
	u.SetNetworkForChecksum(srcV6, dstV6)
	if err := SerializeLayers(buf, u, &pay); err != nil {
		t.Fatal(err)
	}
	var dec UDP
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.SrcPort != 5000 || dec.DstPort != TangoPort {
		t.Fatalf("ports = %d,%d", dec.SrcPort, dec.DstPort)
	}
	if dec.NextLayerType() != LayerTypeTango {
		t.Fatalf("NextLayerType = %v", dec.NextLayerType())
	}
	if err := dec.VerifyChecksum(srcV6, dstV6, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: verification must fail.
	raw := append([]byte{}, buf.Bytes()...)
	raw[len(raw)-1] ^= 1
	var dec2 UDP
	if err := dec2.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if err := dec2.VerifyChecksum(srcV6, dstV6, raw); err == nil {
		t.Fatal("corrupted datagram passed checksum")
	}
	// Wrong pseudo-header (different dst) must fail.
	if err := dec.VerifyChecksum(srcV6, netip.MustParseAddr("2001:db8:6::1"), buf.Bytes()); err == nil {
		t.Fatal("wrong pseudo-header passed checksum")
	}
}

func TestUDPZeroChecksumPolicy(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("x"))
	u := &UDP{SrcPort: 1, DstPort: 2} // no SetNetworkForChecksum
	if err := SerializeLayers(buf, u, &pay); err != nil {
		t.Fatal(err)
	}
	var dec UDP
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.Checksum != 0 {
		t.Fatalf("checksum = %#x, want 0", dec.Checksum)
	}
	if err := dec.VerifyChecksum(srcV4, dstV4, buf.Bytes()); err != nil {
		t.Fatalf("zero checksum over IPv4 rejected: %v", err)
	}
	if err := dec.VerifyChecksum(srcV6, dstV6, buf.Bytes()); err == nil {
		t.Fatal("zero checksum over IPv6 accepted")
	}
}

func TestUDPTruncated(t *testing.T) {
	var u UDP
	if err := u.DecodeFromBytes(make([]byte, 7)); err == nil {
		t.Fatal("7-byte datagram accepted")
	}
}

func TestTangoRoundTrip(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("inner packet bytes"))
	h := &Tango{
		Flags:    TangoFlagSeq | TangoFlagTimestamp | TangoFlagInner6,
		PathID:   3,
		Seq:      0xdeadbeef,
		SendTime: 123456789012345,
	}
	if err := SerializeLayers(buf, h, &pay); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != tangoFixedLen+len(pay) {
		t.Fatalf("len = %d", buf.Len())
	}
	var dec Tango
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.Flags != h.Flags || dec.PathID != 3 || dec.Seq != 0xdeadbeef || dec.SendTime != 123456789012345 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
	if dec.NextLayerType() != LayerTypeIPv6 {
		t.Fatalf("NextLayerType = %v", dec.NextLayerType())
	}
	if string(dec.LayerPayload()) != "inner packet bytes" {
		t.Fatalf("payload = %q", dec.LayerPayload())
	}
}

func TestTangoReportBlock(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("p"))
	h := &Tango{
		Flags:    TangoFlagTimestamp | TangoFlagReport,
		PathID:   1,
		SendTime: 42,
		Report:   OWDReport{PathID: 2, SampleCount: 900, MeanOWDNano: 28_000_000},
	}
	if err := SerializeLayers(buf, h, &pay); err != nil {
		t.Fatal(err)
	}
	if h.HeaderLen() != tangoFixedLen+tangoReportLen {
		t.Fatalf("HeaderLen = %d", h.HeaderLen())
	}
	var dec Tango
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.Report != h.Report {
		t.Fatalf("report = %+v, want %+v", dec.Report, h.Report)
	}
	if string(dec.LayerPayload()) != "p" {
		t.Fatalf("payload = %q", dec.LayerPayload())
	}
	// Negative OWD (receiver clock behind sender) must survive.
	h.Report.MeanOWDNano = -5_000_000
	if err := SerializeLayers(buf, h, &pay); err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.Report.MeanOWDNano != -5_000_000 {
		t.Fatalf("negative OWD = %d", dec.Report.MeanOWDNano)
	}
}

func TestTangoErrors(t *testing.T) {
	var dec Tango
	if err := dec.DecodeFromBytes(make([]byte, 15)); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := make([]byte, 16)
	bad[0] = 9 << 4
	if err := dec.DecodeFromBytes(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Report flag set but block missing.
	short := make([]byte, 16)
	short[0] = TangoVersion<<4 | TangoFlagReport
	if err := dec.DecodeFromBytes(short); err == nil {
		t.Fatal("missing report block accepted")
	}
	// Oversized flags rejected at serialize time.
	buf := NewSerializeBuffer()
	h := &Tango{Flags: 0x1f}
	if err := h.SerializeTo(buf); err == nil {
		t.Fatal("5-bit flags accepted")
	}
}

func TestFullEncapStack(t *testing.T) {
	// Build the exact packet the Tango sender emits: outer IPv6 + UDP +
	// Tango + inner IPv6 + inner UDP + app payload.
	app := Payload([]byte("drone telemetry sample"))
	innerUDP := &UDP{SrcPort: 9000, DstPort: 9001}
	innerUDP.SetNetworkForChecksum(srcV6, dstV6)
	innerIP := &IPv6{NextHeader: ProtoUDP, HopLimit: 60, Src: srcV6, Dst: dstV6}
	tng := &Tango{Flags: TangoFlagSeq | TangoFlagTimestamp | TangoFlagInner6, PathID: 2, Seq: 7, SendTime: 1000}
	outerSrc := netip.MustParseAddr("2001:db8:100::1")
	outerDst := netip.MustParseAddr("2001:db8:200::1")
	outerUDP := &UDP{SrcPort: 40000, DstPort: TangoPort}
	outerUDP.SetNetworkForChecksum(outerSrc, outerDst)
	outerIP := &IPv6{NextHeader: ProtoUDP, HopLimit: 64, Src: outerSrc, Dst: outerDst}

	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, outerIP, outerUDP, tng, innerIP, innerUDP, &app); err != nil {
		t.Fatal(err)
	}

	// Parse it back with a preallocated parser.
	var oip IPv6
	var oudp UDP
	var oth Tango
	parser := NewParser(LayerTypeIPv6, &oip, &oudp, &oth)
	var decoded []LayerType
	rest, err := parser.Decode(buf.Bytes(), &decoded)
	if err != nil {
		t.Fatal(err)
	}
	// The parser stops at the inner IPv6 because &oip is already used;
	// it decodes outer IPv6 -> UDP -> Tango, then the next IPv6 layer
	// reuses the registered decoder. To keep zero-alloc semantics the
	// parser re-decodes into the same struct, so decoded shows IPv6
	// twice. Verify the chain prefix instead.
	if len(decoded) < 3 || decoded[0] != LayerTypeIPv6 || decoded[1] != LayerTypeUDP || decoded[2] != LayerTypeTango {
		t.Fatalf("decoded = %v", decoded)
	}
	if oth.PathID != 2 || oth.Seq != 7 || oth.SendTime != 1000 {
		t.Fatalf("tango hdr = %+v", oth)
	}
	_ = rest

	// Decode the inner packet separately, as the receiver program does
	// after computing OWD.
	var iip IPv6
	var iudp UDP
	var ipay Payload
	if err := iip.DecodeFromBytes(oth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if err := iudp.DecodeFromBytes(iip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if err := ipay.DecodeFromBytes(iudp.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if string(ipay) != "drone telemetry sample" {
		t.Fatalf("inner payload = %q", ipay)
	}
	if iip.Src != srcV6 || iudp.SrcPort != 9000 {
		t.Fatal("inner headers corrupted by encapsulation")
	}
}

// Property: Tango header round-trips for all field values.
func TestTangoRoundTripProperty(t *testing.T) {
	buf := NewSerializeBuffer()
	f := func(flags uint8, pathID uint8, seq uint32, ts int64, rep OWDReport, pay []byte) bool {
		if len(pay) > 512 {
			pay = pay[:512]
		}
		h := &Tango{Flags: flags & 0x0f, PathID: pathID, Seq: seq, SendTime: ts, Report: rep}
		p := Payload(pay)
		if err := SerializeLayers(buf, h, &p); err != nil {
			return false
		}
		var dec Tango
		if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		if dec.Flags != h.Flags || dec.PathID != pathID || dec.Seq != seq || dec.SendTime != ts {
			return false
		}
		if h.Flags&TangoFlagReport != 0 && dec.Report != rep {
			return false
		}
		return bytes.Equal(dec.LayerPayload(), pay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: IPv6 serialization/decoding round-trips arbitrary payloads.
func TestIPv6RoundTripProperty(t *testing.T) {
	buf := NewSerializeBuffer()
	f := func(tc uint8, fl uint32, nh, hl uint8, srcRaw, dstRaw [16]byte, pay []byte) bool {
		if len(pay) > 1024 {
			pay = pay[:1024]
		}
		ip := &IPv6{
			TrafficClass: tc,
			FlowLabel:    fl & 0xfffff,
			NextHeader:   nh,
			HopLimit:     hl,
			Src:          netip.AddrFrom16(srcRaw),
			Dst:          netip.AddrFrom16(dstRaw),
		}
		p := Payload(pay)
		if err := SerializeLayers(buf, ip, &p); err != nil {
			// Only 4-in-6 addresses are rejected; treat as vacuous.
			return ip.Src.Is4In6() || ip.Dst.Is4In6()
		}
		var dec IPv6
		if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return dec.TrafficClass == ip.TrafficClass && dec.FlowLabel == ip.FlowLabel &&
			dec.NextHeader == nh && dec.HopLimit == hl &&
			dec.Src == ip.Src && dec.Dst == ip.Dst &&
			bytes.Equal(dec.LayerPayload(), pay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: UDP checksum verification accepts every valid serialization
// and the checksum field is never the forbidden 0 when computed.
func TestUDPChecksumProperty(t *testing.T) {
	buf := NewSerializeBuffer()
	f := func(sp, dp uint16, pay []byte) bool {
		if len(pay) > 1024 {
			pay = pay[:1024]
		}
		u := &UDP{SrcPort: sp, DstPort: dp}
		u.SetNetworkForChecksum(srcV6, dstV6)
		p := Payload(pay)
		if err := SerializeLayers(buf, u, &p); err != nil {
			return false
		}
		var dec UDP
		if err := dec.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		if dec.Checksum == 0 {
			return false
		}
		return dec.VerifyChecksum(srcV6, dstV6, buf.Bytes()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParserUnknownLayerStops(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("opaque"))
	u := &UDP{SrcPort: 1, DstPort: 2}
	ip := &IPv6{NextHeader: ProtoUDP, HopLimit: 1, Src: srcV6, Dst: dstV6}
	if err := SerializeLayers(buf, ip, u, &pay); err != nil {
		t.Fatal(err)
	}
	var dip IPv6
	parser := NewParser(LayerTypeIPv6, &dip) // no UDP decoder registered
	var decoded []LayerType
	rest, err := parser.Decode(buf.Bytes(), &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeIPv6 {
		t.Fatalf("decoded = %v", decoded)
	}
	if len(rest) != udpHeaderLen+len(pay) {
		t.Fatalf("rest = %d bytes", len(rest))
	}
}

func TestLayerTypeString(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeNone: "None", LayerTypeIPv4: "IPv4", LayerTypeIPv6: "IPv6",
		LayerTypeUDP: "UDP", LayerTypeTango: "Tango", LayerTypePayload: "Payload",
		LayerType(99): "LayerType(99)",
	} {
		if lt.String() != want {
			t.Fatalf("String(%d) = %q", lt, lt.String())
		}
	}
}
