package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The decoders parse bytes that arrive off the wire — attacker-controlled
// input. Whatever garbage comes in, they must return an error rather than
// panic or read out of bounds.

func mustNotPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	fn()
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := r.Intn(120)
		data := make([]byte, n)
		r.Read(data)
		mustNotPanic(t, "IPv6", func() {
			var l IPv6
			_ = l.DecodeFromBytes(data)
		})
		mustNotPanic(t, "IPv4", func() {
			var l IPv4
			_ = l.DecodeFromBytes(data)
		})
		mustNotPanic(t, "UDP", func() {
			var l UDP
			_ = l.DecodeFromBytes(data)
		})
		mustNotPanic(t, "Tango", func() {
			var l Tango
			_ = l.DecodeFromBytes(data)
		})
	}
}

// Property: truncating a valid packet at any byte boundary produces an
// error from at least one decoder in the chain (never a silent success
// that mis-frames the payload) — or decodes a consistent shorter view.
func TestTruncationSafetyProperty(t *testing.T) {
	buf := NewSerializeBuffer()
	pay := Payload([]byte("payload-of-known-content"))
	hdr := &Tango{Flags: TangoFlagSeq | TangoFlagTimestamp | TangoFlagReport | TangoFlagInner6,
		ExtFlags: TangoExtAuth, PathID: 1, Seq: 7, SendTime: 42,
		Report: OWDReport{PathID: 2, SampleCount: 3, MeanOWDNano: 4, JitterNano: 5}}
	udp := &UDP{SrcPort: 1, DstPort: TangoPort}
	udp.SetNetworkForChecksum(srcV6, dstV6)
	ip := &IPv6{NextHeader: ProtoUDP, HopLimit: 9, Src: srcV6, Dst: dstV6}
	if err := SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		t.Fatal(err)
	}
	full := append([]byte{}, buf.Bytes()...)

	f := func(cut uint16) bool {
		n := int(cut) % (len(full) + 1)
		data := full[:n]
		var dip IPv6
		if err := dip.DecodeFromBytes(data); err != nil {
			return true // rejected cleanly
		}
		var dudp UDP
		if err := dudp.DecodeFromBytes(dip.LayerPayload()); err != nil {
			return true
		}
		var dtng Tango
		if err := dtng.DecodeFromBytes(dudp.LayerPayload()); err != nil {
			return true
		}
		// Fully decoded: must be the complete packet.
		return n == len(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SignTangoDatagram/VerifyTangoDatagram never panic on garbage.
func TestAuthNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	key := []byte("k")
	for i := 0; i < 3000; i++ {
		data := make([]byte, r.Intn(80))
		r.Read(data)
		mustNotPanic(t, "Sign", func() { _ = SignTangoDatagram(key, data) })
		mustNotPanic(t, "Verify", func() { _ = VerifyTangoDatagram(key, data) })
	}
	if err := SignTangoDatagram(nil, make([]byte, 64)); err == nil {
		t.Fatal("empty key accepted")
	}
	if VerifyTangoDatagram(nil, make([]byte, 64)) {
		t.Fatal("empty key verified")
	}
}

func TestParserNeverPanicsOnGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var ip IPv6
	var udp UDP
	var tng Tango
	parser := NewParser(LayerTypeIPv6, &ip, &udp, &tng)
	var decoded []LayerType
	for i := 0; i < 3000; i++ {
		data := make([]byte, r.Intn(200))
		r.Read(data)
		mustNotPanic(t, "Parser", func() { _, _ = parser.Decode(data, &decoded) })
	}
}
