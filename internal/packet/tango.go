package packet

import (
	"encoding/binary"
	"fmt"
)

// TangoVersion is the encapsulation version this package implements.
const TangoVersion = 1

// Tango header flags.
const (
	TangoFlagSeq       = 1 << 0 // Seq field is meaningful
	TangoFlagTimestamp = 1 << 1 // SendTime field is meaningful
	TangoFlagReport    = 1 << 2 // an OWD report block follows the header
	TangoFlagInner6    = 1 << 3 // inner packet is IPv6 (else IPv4)
)

// tangoFixedLen is the fixed header size; tangoReportLen the optional
// piggybacked report block; tangoRelayLen the optional relay block.
const (
	tangoFixedLen  = 16
	tangoReportLen = 20
	tangoRelayLen  = 4
)

// TangoExtRelay marks a 4-byte relay block following the fixed header
// (and report block, when present): one TTL byte plus three reserved
// bytes. A border switch holding a relay table for the packet's inner
// destination re-encapsulates the inner packet onto the next overlay
// segment instead of delivering it locally; the TTL bounds the number of
// relay hops so a misconfigured relay table cannot loop a packet
// forever. Relaying is the §6 "Tango of N" composition: each segment is
// an ordinary pairwise Tango deployment with its own path IDs, sequence
// numbers, and timestamps.
const TangoExtRelay = 1 << 1

// Tango is the encapsulation header the sender-side program inserts
// between the outer UDP header and the tunnelled (inner) packet:
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-------+-------+---------------+-------------------------------+
//	|Version| Flags |    PathID     |           Reserved            |
//	+---------------+---------------+-------------------------------+
//	|                       Sequence Number                         |
//	+----------------------------------------------------------------+
//	|                                                                |
//	+                    Send Timestamp (ns, 64 bit)                 +
//	|                                                                |
//	+----------------------------------------------------------------+
//	|          optional 20-byte Report (TangoFlagReport)             |
//
// The timestamp is the sender border switch's local clock; the receiver
// computes one-way delay as its own clock minus the timestamp. Clocks need
// not be synchronised: every path between the same switch pair sees the
// same constant offset, so path *comparisons* are exact (paper §3, §4.2).
// The per-path sequence number lets the receiver compute loss and
// reordering without touching transport protocol semantics.
//
// The optional report block piggybacks the receiver's view of a reverse
// path's performance back to the sender on ordinary data traffic — no
// probes, no separate measurement channel (paper §3 "piggyback").
type Tango struct {
	Flags uint8 // 4 bits on the wire
	// ExtFlags is the extension byte (TangoExtAuth, ...).
	ExtFlags uint8
	PathID   uint8
	Seq      uint32
	SendTime int64 // sender wall clock, nanoseconds

	// RelayTTL is the remaining relay-hop budget; valid when
	// ExtFlags&TangoExtRelay != 0. A relay forwards only when it is
	// above 1, decrementing as it re-encapsulates.
	RelayTTL uint8

	// AuthTag is the decoded authentication tag (nil when absent). It
	// aliases the decode buffer.
	AuthTag []byte

	// Report is the piggybacked reverse-path observation; valid when
	// Flags&TangoFlagReport != 0.
	Report OWDReport

	payload []byte
}

// OWDReport is the piggybacked measurement block: the mean observed
// one-way delay (in the observer's clock domain) and smoothed delay
// variation over SampleCount packets on path ReportPathID, in the
// direction opposite the carrying packet. Jitter is offset-free by
// construction (it is a difference of OWDs), so the consumer can use it
// directly.
type OWDReport struct {
	PathID      uint8
	SampleCount uint16
	MeanOWDNano int64
	JitterNano  int64
}

// LayerType implements SerializableLayer and DecodingLayer.
func (t *Tango) LayerType() LayerType { return LayerTypeTango }

// NextLayerType reports the inner packet's type from TangoFlagInner6.
func (t *Tango) NextLayerType() LayerType {
	if t.Flags&TangoFlagInner6 != 0 {
		return LayerTypeIPv6
	}
	return LayerTypeIPv4
}

// LayerPayload returns the inner (tunnelled) packet bytes.
func (t *Tango) LayerPayload() []byte { return t.payload }

// HeaderLen returns the encoded header length given the flags.
func (t *Tango) HeaderLen() int {
	n := tangoFixedLen
	if t.Flags&TangoFlagReport != 0 {
		n += tangoReportLen
	}
	if t.ExtFlags&TangoExtRelay != 0 {
		n += tangoRelayLen
	}
	if t.ExtFlags&TangoExtAuth != 0 {
		n += tangoAuthLen
	}
	return n
}

// SerializeTo prepends the Tango header.
func (t *Tango) SerializeTo(buf *SerializeBuffer) error {
	if t.Flags > 0x0f {
		return fmt.Errorf("tango: flags %#x exceed 4 bits", t.Flags)
	}
	if t.ExtFlags&TangoExtAuth != 0 {
		// Reserve a zeroed tag; the data plane signs the finished
		// datagram (it owns the key).
		buf.PrependBytes(tangoAuthLen)
	}
	if t.ExtFlags&TangoExtRelay != 0 {
		b := buf.PrependBytes(tangoRelayLen)
		b[0] = t.RelayTTL
		b[1], b[2], b[3] = 0, 0, 0
	}
	if t.Flags&TangoFlagReport != 0 {
		b := buf.PrependBytes(tangoReportLen)
		b[0] = t.Report.PathID
		binary.BigEndian.PutUint16(b[2:4], t.Report.SampleCount)
		binary.BigEndian.PutUint64(b[4:12], uint64(t.Report.MeanOWDNano))
		binary.BigEndian.PutUint64(b[12:20], uint64(t.Report.JitterNano))
	}
	b := buf.PrependBytes(tangoFixedLen)
	b[0] = TangoVersion<<4 | t.Flags
	b[1] = t.PathID
	b[2] = t.ExtFlags
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint64(b[8:16], uint64(t.SendTime))
	return nil
}

// DecodeFromBytes parses a Tango header (and report block if present).
func (t *Tango) DecodeFromBytes(data []byte) error {
	if len(data) < tangoFixedLen {
		return fmt.Errorf("tango: %w: %d bytes", errTruncated, len(data))
	}
	if v := data[0] >> 4; v != TangoVersion {
		return fmt.Errorf("tango: version %d, want %d", v, TangoVersion)
	}
	t.Flags = data[0] & 0x0f
	t.PathID = data[1]
	t.ExtFlags = data[2]
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.SendTime = int64(binary.BigEndian.Uint64(data[8:16]))
	off := tangoFixedLen
	if t.Flags&TangoFlagReport != 0 {
		if len(data) < tangoFixedLen+tangoReportLen {
			return fmt.Errorf("tango: %w report block", errTruncated)
		}
		r := data[tangoFixedLen:]
		t.Report.PathID = r[0]
		t.Report.SampleCount = binary.BigEndian.Uint16(r[2:4])
		t.Report.MeanOWDNano = int64(binary.BigEndian.Uint64(r[4:12]))
		t.Report.JitterNano = int64(binary.BigEndian.Uint64(r[12:20]))
		off += tangoReportLen
	} else {
		t.Report = OWDReport{}
	}
	if t.ExtFlags&TangoExtRelay != 0 {
		if len(data) < off+tangoRelayLen {
			return fmt.Errorf("tango: %w relay block", errTruncated)
		}
		t.RelayTTL = data[off]
		off += tangoRelayLen
	} else {
		t.RelayTTL = 0
	}
	if t.ExtFlags&TangoExtAuth != 0 {
		if len(data) < off+tangoAuthLen {
			return fmt.Errorf("tango: %w auth tag", errTruncated)
		}
		t.AuthTag = data[off : off+tangoAuthLen]
		off += tangoAuthLen
	} else {
		t.AuthTag = nil
	}
	t.payload = data[off:]
	return nil
}

// Payload is a raw application payload layer.
type Payload []byte

// LayerType implements SerializableLayer and DecodingLayer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// NextLayerType reports that nothing follows a payload.
func (p *Payload) NextLayerType() LayerType { return LayerTypeNone }

// LayerPayload returns nil: payload is the innermost layer.
func (p *Payload) LayerPayload() []byte { return nil }

// SerializeTo prepends the payload bytes.
func (p *Payload) SerializeTo(buf *SerializeBuffer) error {
	b := buf.PrependBytes(len(*p))
	copy(b, *p)
	return nil
}

// DecodeFromBytes records the payload bytes (zero copy).
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}
