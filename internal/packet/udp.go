package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// UDP is the 8-byte UDP header. Tango's outer UDP header exists for two
// reasons the paper calls out: it lets the sender *control ECMP behaviour*
// (core routers hash the 5-tuple, so a fixed tuple pins one intra-provider
// path per tunnel) and it makes the encapsulation look like ordinary
// traffic to the core.
type UDP struct {
	SrcPort, DstPort uint16

	// Checksum handling: for IPv6 the UDP checksum is mandatory, and it
	// covers a pseudo-header with the IP addresses. Callers set the
	// network addresses before serializing/verifying.
	csumSrc, csumDst netip.Addr
	haveNet          bool

	// Checksum holds the decoded checksum field after DecodeFromBytes.
	Checksum uint16

	payload []byte
}

const udpHeaderLen = 8

// TangoPort is the registered (for this simulation) destination port that
// identifies Tango-encapsulated traffic at the receiving border switch.
const TangoPort = 40897

// SetNetworkForChecksum provides the IP addresses for pseudo-header
// checksum computation and verification.
func (u *UDP) SetNetworkForChecksum(src, dst netip.Addr) {
	u.csumSrc, u.csumDst = src, dst
	u.haveNet = true
}

// LayerType implements SerializableLayer and DecodingLayer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// NextLayerType reports the payload layer: Tango when addressed to the
// Tango port, opaque payload otherwise.
func (u *UDP) NextLayerType() LayerType {
	if u.DstPort == TangoPort {
		return LayerTypeTango
	}
	return LayerTypePayload
}

// LayerPayload returns the bytes after the UDP header.
func (u *UDP) LayerPayload() []byte { return u.payload }

// SerializeTo prepends the UDP header. If network addresses were provided
// via SetNetworkForChecksum the checksum is computed; otherwise it is
// zero (legal for IPv4, not for IPv6 — the data plane always sets it).
func (u *UDP) SerializeTo(buf *SerializeBuffer) error {
	length := buf.Len() + udpHeaderLen
	if length > 0xffff {
		return fmt.Errorf("udp: length %d exceeds 65535", length)
	}
	b := buf.PrependBytes(udpHeaderLen)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(length))
	if u.haveNet {
		csum := udpChecksum(u.csumSrc, u.csumDst, buf.Bytes())
		binary.BigEndian.PutUint16(b[6:8], csum)
	}
	return nil
}

// DecodeFromBytes parses a UDP header. Checksum verification is separate
// (VerifyChecksum) because it needs the pseudo-header addresses.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return fmt.Errorf("udp: %w: %d bytes", errTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	length := int(binary.BigEndian.Uint16(data[4:6]))
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if length < udpHeaderLen || len(data) < length {
		return fmt.Errorf("udp: %w: length %d have %d", errTruncated, length, len(data))
	}
	u.payload = data[udpHeaderLen:length]
	return nil
}

// VerifyChecksum checks the decoded datagram's checksum against the
// pseudo-header built from src/dst. A zero checksum passes for IPv4
// (checksum disabled) and fails for IPv6.
func (u *UDP) VerifyChecksum(src, dst netip.Addr, datagram []byte) error {
	if u.Checksum == 0 {
		if src.Is6() && !src.Is4In6() {
			return errors.New("udp: zero checksum invalid over IPv6")
		}
		return nil
	}
	if udpChecksumRaw(src, dst, datagram) != 0 {
		return errors.New("udp: checksum mismatch")
	}
	return nil
}

// UDPChecksumFor computes the transmit checksum for a datagram whose
// checksum field is currently zero (exposed for tests and tools that
// mutate serialized packets).
func UDPChecksumFor(src, dst netip.Addr, datagram []byte) uint16 {
	return udpChecksum(src, dst, datagram)
}

// udpChecksum computes the transmit checksum for a datagram whose checksum
// field is zero. Per RFC 768 a computed 0 is transmitted as 0xffff.
func udpChecksum(src, dst netip.Addr, datagram []byte) uint16 {
	c := udpChecksumRaw(src, dst, datagram)
	if c == 0 {
		return 0xffff
	}
	return c
}

// udpChecksumRaw computes the checksum over pseudo-header + datagram as-is
// (used for verification: a valid datagram sums to zero).
func udpChecksumRaw(src, dst netip.Addr, datagram []byte) uint16 {
	var sum uint32
	addAddr := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			sum += uint32(binary.BigEndian.Uint16(b[0:2]))
			sum += uint32(binary.BigEndian.Uint16(b[2:4]))
		} else {
			b := a.As16()
			for i := 0; i < 16; i += 2 {
				sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
			}
		}
	}
	addAddr(src)
	addAddr(dst)
	sum += uint32(ProtoUDP)
	sum += uint32(len(datagram))
	// checksum() folds and complements; feed it the partial sum.
	return checksum(datagram, sum)
}
