package perf

import (
	"runtime"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/sim"
	"tango/internal/simnet"
	"tango/internal/workload"
)

// FlowBenchFlows is the concurrent-flow population of the flow micros:
// large enough that the wheel drains real buckets, small enough that one
// benchmark iteration stays sub-millisecond.
const FlowBenchFlows = 1024

// flowFixture wires two switches over a 5ms link with one tunnel each
// way and a flow table on A whose sink is bound at B — the smallest
// network on which emit, deliver, and depart all run their real paths.
func flowFixture(capacity int) (*simnet.Network, *workload.FlowTable, int) {
	w := simnet.New(4)
	na := w.AddNode("a", 0)
	nb := w.AddNode("b", 0)
	cfg := simnet.LinkConfig{Delay: simnet.FixedDelay(5 * time.Millisecond)}
	w.Connect(na, nb, cfg, cfg)
	na.SetRoute(addr.MustParsePrefix("2001:db8:b::/48"), na.Ports()[0])
	nb.SetRoute(addr.MustParsePrefix("2001:db8:a::/48"), nb.Ports()[0])
	swA := dataplane.NewSwitch(na)
	swB := dataplane.NewSwitch(nb)
	swA.AddTunnel(&dataplane.Tunnel{PathID: 1, Name: "p1",
		LocalAddr:  mustAddr("2001:db8:a::1"),
		RemoteAddr: mustAddr("2001:db8:b::1"), SrcPort: 40001})
	swB.AddTunnel(&dataplane.Tunnel{PathID: 1, Name: "p1",
		LocalAddr:  mustAddr("2001:db8:b::1"),
		RemoteAddr: mustAddr("2001:db8:a::1"), SrcPort: 40001})
	swA.Instrument(obs.NewRegistry(), "bench")

	// Uniform 1ms intervals keep the wheel's buckets dense, so one
	// drained granule fires a large batch — the shape E13 runs at.
	classes := [workload.NumClasses]workload.ClassSpec{}
	for c := range classes {
		classes[c] = workload.ClassSpec{Interval: time.Millisecond, Payload: 160}
	}
	ft := workload.NewFlowTable(w.Eng, classes, capacity)
	ep := ft.AddEndpoint(swA, mustAddr("2001:db8:aa::1"), mustAddr("2001:db8:bb::1"))
	ft.Instrument(obs.NewRegistry(), "bench")
	sink := ft.SinkFor(w.Eng)
	swB.DeliverLocal = func(inner []byte) { sink(inner) }
	return w, ft, ep
}

// BenchFlowEmit measures the steady-state per-packet cost of the flow
// table: wheel drain, template stamp, encap, link traversal, delivery,
// per-class histogram accounting — with FlowBenchFlows concurrent flows
// emitting every millisecond. One op is one emitted (and eventually
// delivered) packet.
func BenchFlowEmit(b *testing.B) {
	w, ft, ep := flowFixture(FlowBenchFlows)
	for i := 0; i < FlowBenchFlows; i++ {
		// Effectively-infinite lifetimes: no departures during the run.
		if ft.Start(ep, workload.Class(i%workload.NumClasses), 1<<31, 0) < 0 {
			b.Fatal("flow refused")
		}
	}
	// Warm every pool (wheel links, packet buffers, event freelist,
	// lazily-registered rx counters) before the measured region.
	w.Run(w.Eng.Now() + sim.Time(32*time.Millisecond))
	warm := ft.Totals()
	b.ReportAllocs()
	b.ResetTimer()
	target := warm.Sent + uint64(b.N)
	for ft.Totals().Sent < target {
		w.Run(w.Eng.Now() + sim.Time(time.Millisecond))
	}
	b.StopTimer()
	if ft.Active() != FlowBenchFlows {
		b.Fatalf("active flows %d of %d", ft.Active(), FlowBenchFlows)
	}
	if tot := ft.Totals(); tot.Sent <= warm.Sent || tot.Delivered <= warm.Delivered {
		b.Fatalf("no steady-state traffic: %+v -> %+v", warm, tot)
	}
}

// BenchFlowArriveDepart measures one full flow lifecycle: Start (slot
// claim off the endpoint free list), single emission, delivery into the
// receiver record, and departure back onto the free list. One op is one
// flow.
func BenchFlowArriveDepart(b *testing.B) {
	w, ft, ep := flowFixture(FlowBenchFlows)
	for i := 0; i < warmupIters; i++ {
		if ft.Start(ep, workload.Class(i%workload.NumClasses), 1, 0) < 0 {
			b.Fatal("flow refused")
		}
		w.Eng.RunAll()
	}
	warm := ft.Totals()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Start(ep, workload.Class(i%workload.NumClasses), 1, 0)
		w.Eng.RunAll()
	}
	b.StopTimer()
	if ft.Active() != 0 {
		b.Fatalf("flows leaked: active %d", ft.Active())
	}
	tot := ft.Totals()
	if tot.Sent != warm.Sent+uint64(b.N) || tot.Delivered != tot.Sent {
		b.Fatalf("sent/delivered %d/%d, want %d each", tot.Sent, tot.Delivered, warm.Sent+uint64(b.N))
	}
}

// memFlows sizes the memory-per-flow comparison: large enough that
// per-object overhead dominates measurement noise.
const memFlows = 20_000

// measureHeap runs build under a quiesced heap and returns the live
// bytes it retained.
func measureHeap(build func() any) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(keep)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// FlowMemoryPerFlow returns the retained heap bytes per concurrent flow
// for the flyweight table and for the per-AppGen baseline, measured on
// identical tunnel-less switches (packets drop at the sender, isolating
// generator state) after 200 ms of virtual time at a 20 ms emission
// interval — the VoIP shape. The baseline carries what every AppGen
// carries per stream: the generator object, its Ticker and pending
// event, the packet template, and a sentAt map entry per emitted packet.
func FlowMemoryPerFlow() (tableBytes, appgenBytes float64) {
	mkSwitch := func() (*simnet.Network, *dataplane.Switch) {
		w := simnet.New(1)
		n := w.AddNode("mem", 0)
		return w, dataplane.NewSwitch(n) // no tunnel: SendToPeer drops, NoTunnel++
	}

	wt, swT := mkSwitch()
	var table *workload.FlowTable
	tableTotal := measureHeap(func() any {
		classes := workload.DefaultClasses()
		table = workload.NewFlowTable(wt.Eng, classes, memFlows)
		ep := table.AddEndpoint(swT, mustAddr("2001:db8:aa::1"), mustAddr("2001:db8:bb::1"))
		for i := 0; i < memFlows; i++ {
			table.Start(ep, workload.ClassVoIP, 1<<31, 0)
		}
		wt.Run(sim.Time(200 * time.Millisecond))
		return table
	})

	wa, swA := mkSwitch()
	var gens []*workload.AppGen
	appTotal := measureHeap(func() any {
		gens = make([]*workload.AppGen, memFlows)
		for i := range gens {
			gens[i] = workload.NewAppGen(wa.Eng, swA,
				mustAddr("2001:db8:aa::1"), mustAddr("2001:db8:bb::1"),
				20*time.Millisecond, 160)
		}
		wa.Run(sim.Time(200 * time.Millisecond))
		return gens
	})

	return float64(tableTotal) / memFlows, float64(appTotal) / memFlows
}
