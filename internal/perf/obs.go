package perf

import (
	"testing"

	"tango/internal/obs"
)

// The observability instruments live on the packet fast path, so they
// are held to the same standard as the path itself: after registration
// (which may allocate freely), Counter.Inc and Histogram.Observe must
// not touch the heap. These bodies back both the -bench wrappers and
// the hard zero-allocation assertions in perf_test.go.

// BenchObsCounter measures Counter.Inc on a registered, labelled
// counter — the exact op the dataplane performs per packet.
func BenchObsCounter(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter_total", "bench", obs.L("site", "bench"))
	for i := 0; i < warmupIters; i++ {
		c.Inc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	b.StopTimer()
	if c.Value() != uint64(b.N+warmupIters) {
		b.Fatalf("counter %d of %d", c.Value(), b.N+warmupIters)
	}
}

// BenchObsHistogram measures Histogram.Observe across a spread of
// values so every branch of the log-bucket index math is exercised.
func BenchObsHistogram(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_latency_ns", "bench", obs.L("site", "bench"))
	for i := 0; i < warmupIters; i++ {
		h.Observe(int64(i) << 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) << 7)
	}
	b.StopTimer()
	if h.Count() != uint64(b.N+warmupIters) {
		b.Fatalf("histogram %d of %d", h.Count(), b.N+warmupIters)
	}
}
