// Package perf is the perf-regression harness for the packet fast path.
// It exposes the three dataplane micro-benchmarks — encap, decap, and
// link traversal — as plain functions over *testing.B so the same bodies
// back the `go test -bench` wrappers (bench_test.go), the hard
// zero-allocation assertions (perf_test.go), and the BENCH.json emitter
// (cmd/tango-bench), which runs them through testing.Benchmark outside
// a test binary.
//
// Each body warms the buffer/event freelists before ResetTimer so the
// measured region is the steady state the pools are designed for: after
// warmup the encap→inject→deliver path performs zero heap allocations,
// and the assertions in perf_test.go fail the build if that regresses.
package perf

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/simnet"
)

const payloadSize = 1024

// warmupIters primes pools (packet buffers, engine event freelist, heap
// storage) so steady-state measurement starts with everything recycled.
const warmupIters = 128

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// buildInner serializes a host-level IPv6/UDP packet with a payload of
// payloadSize zero bytes.
func buildInner() []byte {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(make([]byte, payloadSize))
	udp := &packet.UDP{SrcPort: 7000, DstPort: 7001}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: mustAddr("2001:db8:aa::1"),
		Dst: mustAddr("2001:db8:bb::1")}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// buildOuter wraps inner in a full Tango encapsulation addressed to the
// given tunnel's local endpoint, as its remote peer would send it.
func buildOuter(tun *dataplane.Tunnel, inner []byte) []byte {
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(inner)
	hdr := &packet.Tango{
		Flags:    packet.TangoFlagSeq | packet.TangoFlagTimestamp | packet.TangoFlagInner6,
		PathID:   tun.PathID,
		SendTime: 1,
	}
	udp := &packet.UDP{SrcPort: 40001, DstPort: packet.TangoPort}
	udp.SetNetworkForChecksum(tun.RemoteAddr, tun.LocalAddr)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: tun.RemoteAddr, Dst: tun.LocalAddr}
	if err := packet.SerializeLayers(buf, ip, udp, hdr, &pay); err != nil {
		panic(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// BenchEncap measures the sender program — classify, lease a pooled
// buffer, encapsulate, timestamp, checksum, inject — on 1 KiB payloads.
// The fixture has no route for the tunnel's remote endpoint, so each
// packet is consumed (and its buffer recycled) at the local node and the
// loop measures exactly one encap per iteration.
func BenchEncap(b *testing.B) {
	w := simnet.New(1)
	n := w.AddNode("bench", 0)
	sw := dataplane.NewSwitch(n)
	tun := &dataplane.Tunnel{
		PathID:     1,
		Name:       "bench",
		LocalAddr:  mustAddr("2001:db8:1::1"),
		RemoteAddr: mustAddr("2001:db8:2::1"),
		SrcPort:    40001,
	}
	sw.AddTunnel(tun)
	// The gate measures the *instrumented* path: per-packet counter
	// increments and latency observations must stay allocation-free.
	sw.Instrument(obs.NewRegistry(), "bench")
	inner := buildInner()
	for i := 0; i < warmupIters; i++ {
		sw.SendOnTunnel(tun, inner)
	}
	w.Eng.RunAll()
	b.ReportAllocs()
	b.SetBytes(int64(len(inner)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SendOnTunnel(tun, inner)
	}
	b.StopTimer()
	w.Eng.RunAll()
	if sw.Stats.Encapped != uint64(b.N+warmupIters) {
		b.Fatalf("encapped %d of %d", sw.Stats.Encapped, b.N+warmupIters)
	}
}

// BenchDecap measures the receiver program — parse, verify, one-way
// delay measurement, decap, local delivery — on 1 KiB payloads.
func BenchDecap(b *testing.B) {
	w := simnet.New(2)
	n := w.AddNode("recv", 0)
	sw := dataplane.NewSwitch(n)
	tun := &dataplane.Tunnel{PathID: 1,
		LocalAddr:  mustAddr("2001:db8:2::1"), // remote's view
		RemoteAddr: mustAddr("2001:db8:1::1"),
	}
	// Instrumented like BenchEncap: warmup covers the receive path's
	// one-time lazy rx-counter registration, so the measured region is
	// pure atomics.
	sw.Instrument(obs.NewRegistry(), "bench")
	outer := buildOuter(tun, buildInner())
	n.AddAddr(tun.LocalAddr)
	measured := 0
	sw.OnMeasure = func(dataplane.Measurement) { measured++ }
	for i := 0; i < warmupIters; i++ {
		n.Inject(outer)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(outer)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(outer)
	}
	b.StopTimer()
	if measured != b.N+warmupIters {
		b.Fatalf("measured %d of %d", measured, b.N+warmupIters)
	}
}

// BenchLinkTraverse measures one full link traversal: inject at A,
// serialize onto the line, closure-free delivery event through the
// engine, arrival and local consumption at B. Each iteration runs the
// engine to completion, so the event freelist and the packet buffer are
// recycled every op.
func BenchLinkTraverse(b *testing.B) {
	w := simnet.New(3)
	na := w.AddNode("a", 0)
	nb := w.AddNode("b", 0)
	w.Connect(na, nb,
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)},
		simnet.LinkConfig{Delay: simnet.FixedDelay(time.Millisecond)})
	dst := mustAddr("2001:db8:bb::1")
	nb.AddAddr(dst)
	na.SetRoute(addr.MustParsePrefix("2001:db8:bb::/48"), na.Ports()[0])
	pkt := buildInner()
	for i := 0; i < warmupIters; i++ {
		na.Inject(pkt)
		w.Eng.RunAll()
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		na.Inject(pkt)
		w.Eng.RunAll()
	}
	b.StopTimer()
	if nb.Stats.Delivered != uint64(b.N+warmupIters) {
		b.Fatalf("delivered %d of %d", nb.Stats.Delivered, b.N+warmupIters)
	}
}
