package perf

import "testing"

// The zero-allocation assertions are the teeth of the perf-regression
// harness: they run the micro-benchmarks through testing.Benchmark and
// hard-fail if the steady-state fast path allocates at all, so an
// accidental per-packet allocation breaks `go test ./...` rather than
// silently eroding throughput.

func assertZeroAlloc(t *testing.T, name string, fn func(*testing.B)) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping alloc regression check in -short mode")
	}
	res := testing.Benchmark(fn)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("%s allocates %d times per op (%d B/op), want 0 — the packet fast path has regressed",
			name, a, res.AllocedBytesPerOp())
	}
}

func TestEncapZeroAlloc(t *testing.T) { assertZeroAlloc(t, "BenchEncap", BenchEncap) }
func TestDecapZeroAlloc(t *testing.T) { assertZeroAlloc(t, "BenchDecap", BenchDecap) }
func TestLinkTraverseZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchLinkTraverse", BenchLinkTraverse)
}

// The wheel's schedule/fire and schedule/cancel loops must also be
// allocation-free in steady state: events come from the engine freelist
// and lazy cancellation returns them there in bulk, so a 10k-pending
// backlog costs no per-op heap traffic.

func TestSchedFireZeroAlloc(t *testing.T) { assertZeroAlloc(t, "BenchSchedFire", BenchSchedFire) }
func TestCancelZeroAlloc(t *testing.T)    { assertZeroAlloc(t, "BenchCancel", BenchCancel) }

// The telemetry instruments ride the same fast path (every encap bumps
// counters and observes a latency histogram), so they get the same
// teeth: a registered instrument's hot ops must never allocate.

func TestObsCounterZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchObsCounter", BenchObsCounter)
}
func TestObsHistogramZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchObsHistogram", BenchObsHistogram)
}

// The flyweight flow table carries the workload at edge scale, so its
// steady-state paths — batched emit through the wheel and the full
// arrive/emit/deliver/depart lifecycle — get the same teeth as the
// packet path.

func TestFlowEmitZeroAlloc(t *testing.T) { assertZeroAlloc(t, "BenchFlowEmit", BenchFlowEmit) }
func TestFlowArriveDepartZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchFlowArriveDepart", BenchFlowArriveDepart)
}

// The TE optimizer's hot ops get the same teeth: an incremental move
// evaluation (ApplyMove/MaxUtil/UndoMove) and a full steady-state
// re-solve must both run allocation-free, or the control-plane cadence
// starts generating garbage proportional to the mesh size.

func TestTEMoveEvalZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchTEMoveEval", BenchTEMoveEval)
}
func TestSolverConvergeZeroAlloc(t *testing.T) {
	assertZeroAlloc(t, "BenchSolverConverge", BenchSolverConverge)
}

// TestFlowMemoryPerFlow10x pins the flyweight claim: retained heap per
// concurrent flow must be at least 10x smaller than the per-AppGen
// object model it replaces.
func TestFlowMemoryPerFlow10x(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping memory measurement in -short mode")
	}
	table, appgen := FlowMemoryPerFlow()
	t.Logf("bytes per flow: flow table %.1f, per-AppGen baseline %.1f (%.1fx)",
		table, appgen, appgen/table)
	if table <= 0 || appgen <= 0 {
		t.Fatalf("degenerate measurement: table %.1f, appgen %.1f", table, appgen)
	}
	if appgen < 10*table {
		t.Fatalf("memory per flow %.1fB vs baseline %.1fB: reduction %.1fx < 10x",
			table, appgen, appgen/table)
	}
}

// Wrappers so `go test -bench` in this package reports the same numbers
// the assertions check.

func BenchmarkEncap(b *testing.B)         { BenchEncap(b) }
func BenchmarkDecap(b *testing.B)         { BenchDecap(b) }
func BenchmarkLinkTraverse(b *testing.B)  { BenchLinkTraverse(b) }
func BenchmarkSchedFire(b *testing.B)     { BenchSchedFire(b) }
func BenchmarkSchedFireHeap(b *testing.B) { BenchSchedFireHeap(b) }
func BenchmarkCancel(b *testing.B)        { BenchCancel(b) }
func BenchmarkCancelHeap(b *testing.B)    { BenchCancelHeap(b) }
func BenchmarkObsCounter(b *testing.B)    { BenchObsCounter(b) }
func BenchmarkObsHistogram(b *testing.B)  { BenchObsHistogram(b) }
func BenchmarkFlowEmit(b *testing.B)      { BenchFlowEmit(b) }
func BenchmarkFlowArriveDepart(b *testing.B) {
	BenchFlowArriveDepart(b)
}
func BenchmarkTEMoveEval(b *testing.B)     { BenchTEMoveEval(b) }
func BenchmarkSolverConverge(b *testing.B) { BenchSolverConverge(b) }
