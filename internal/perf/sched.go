// Scheduler micro-benchmarks: schedule+fire and schedule+cancel against a
// standing backlog of ten thousand pending events, on both the timing
// wheel (sim.Engine) and the preserved binary-heap reference (sim.Ref).
// The backlog is the point: with n≈10k pending, the heap pays O(log n)
// sift-downs on every operation while the wheel's bucket arithmetic stays
// O(1), and BENCH.json carries the pair so the gap is visible on every
// commit. cmd/tango-bench enforces wheel ≤ 0.75× heap under -check.
package perf

import (
	"testing"
	"time"

	"tango/internal/sim"
)

// schedBacklog is the standing pending-event population the hot loop runs
// against. The delays are spread exponentially from one microsecond to
// hours so the backlog occupies wheel levels 0 through 5 rather than one
// convenient bucket — cursor advances during the measured loop cross real
// cascade boundaries.
const schedBacklog = 10240

func backlogDelay(i int) time.Duration {
	return time.Duration(int64(1)<<(10+uint(i)%30)) + time.Duration(i)
}

// BenchSchedFire measures one Schedule(10µs)+Step cycle on the wheel with
// schedBacklog events pending. The scheduled event is always the earliest,
// so each iteration measures exactly one placement and one fire (bucket
// insert, due-chain pop, freelist recycle); the backlog makes the wheel
// actually maintain its levels while the clock advances.
func BenchSchedFire(b *testing.B) {
	e := sim.NewEngine()
	noop := func() {}
	for i := 0; i < schedBacklog; i++ {
		e.Schedule(time.Hour+backlogDelay(i), noop)
	}
	for i := 0; i < warmupIters; i++ {
		e.Schedule(10*time.Microsecond, noop)
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(10*time.Microsecond, noop)
		e.Step()
	}
	b.StopTimer()
	if got := e.Stats.Fired; got != uint64(b.N+warmupIters) {
		b.Fatalf("fired %d of %d", got, b.N+warmupIters)
	}
}

// BenchSchedFireHeap is BenchSchedFire on the binary-heap reference.
func BenchSchedFireHeap(b *testing.B) {
	r := sim.NewRef()
	noop := func() {}
	for i := 0; i < schedBacklog; i++ {
		r.Schedule(time.Hour+backlogDelay(i), noop)
	}
	for i := 0; i < warmupIters; i++ {
		r.Schedule(10*time.Microsecond, noop)
		r.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Schedule(10*time.Microsecond, noop)
		r.Step()
	}
	b.StopTimer()
}

// cancelWarmup pushes the cancel loop through several deferred-sweep
// cycles before measurement so the steady state — tombstones accumulating
// toward the sweep threshold, sweeps refilling the freelist — is what the
// timer sees, not the first sweep's cold start.
const cancelWarmup = 8192

// BenchCancel measures one Schedule+Cancel cycle on the wheel with
// schedBacklog live events pending. The cancel target's delay is drawn
// from the same exponential span as the backlog so it lands mid-structure
// on both schedulers (scheduling past the backlog's maximum would hand the
// heap a free O(1) last-leaf removal). Cancellation is lazy, so the
// measured cost is the O(1) tombstone write plus the amortized share of
// the deferred sweeps that reclaim tombstones in bulk.
func BenchCancel(b *testing.B) {
	e := sim.NewEngine()
	noop := func() {}
	for i := 0; i < schedBacklog; i++ {
		e.Schedule(time.Hour+backlogDelay(i), noop)
	}
	for i := 0; i < cancelWarmup; i++ {
		e.Cancel(e.Schedule(time.Hour+backlogDelay(i*31+7), noop))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.Schedule(time.Hour+backlogDelay(i*31+7), noop))
	}
	b.StopTimer()
	if got := e.Stats.Cancelled; got != uint64(b.N+cancelWarmup) {
		b.Fatalf("cancelled %d of %d", got, b.N+cancelWarmup)
	}
}

// BenchCancelHeap is BenchCancel on the binary-heap reference, where every
// cancel is an eager heap.Remove from the middle of a 10k-element heap.
func BenchCancelHeap(b *testing.B) {
	r := sim.NewRef()
	noop := func() {}
	for i := 0; i < schedBacklog; i++ {
		r.Schedule(time.Hour+backlogDelay(i), noop)
	}
	for i := 0; i < cancelWarmup; i++ {
		r.Cancel(r.Schedule(time.Hour+backlogDelay(i*31+7), noop))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cancel(r.Schedule(time.Hour+backlogDelay(i*31+7), noop))
	}
	b.StopTimer()
}
