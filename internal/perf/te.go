package perf

import (
	"testing"

	"tango/internal/te"
)

// teBenchProblem builds a mesh-shaped placement instance: 32 sites x 8
// provider trunks (an up and a down link each), 128 demands offered all
// 8 two-link provider paths. Small enough that SolverConverge stays a
// micro-benchmark, large enough that the move loop dominates setup.
func teBenchProblem() *te.Problem {
	const sites, providers = 32, 8
	links := make([]te.Link, 0, sites*providers*2)
	for s := 0; s < sites; s++ {
		for p := 0; p < providers; p++ {
			c := 1e6 * float64(1+p%3)
			links = append(links, te.Link{CapacityBps: c}, te.Link{CapacityBps: c})
		}
	}
	up := func(s, p int) int { return (s*providers + p) * 2 }
	down := func(s, p int) int { return (s*providers+p)*2 + 1 }
	var demands []te.Demand
	for s := 0; s < sites; s++ {
		for _, off := range []int{1, 5, 11, 17} {
			dst := (s + off) % sites
			paths := make([][]int, providers)
			for p := 0; p < providers; p++ {
				paths[p] = []int{up(s, p), down(dst, p)}
			}
			demands = append(demands, te.Demand{
				RateBps: float64(50_000 * (1 + s%7)),
				Paths:   paths,
			})
		}
	}
	return &te.Problem{Links: links, Demands: demands}
}

// BenchTEMoveEval measures the TE optimizer's elementary step: one
// ApplyMove/UndoMove round trip over two two-link paths plus a MaxUtil
// read — the operation the solver's inner loop performs per candidate.
// It must touch only the links on the two paths and allocate nothing.
func BenchTEMoveEval(b *testing.B) {
	prob := teBenchProblem()
	state := te.NewState(prob.Links)
	// Pre-load every demand onto its first path so moves shift real load.
	for _, d := range prob.Demands {
		state.Add(d.Paths[0], d.RateBps)
	}
	from := prob.Demands[0].Paths[0]
	to := prob.Demands[0].Paths[3]
	bps := prob.Demands[0].RateBps / te.DefaultQuanta
	for i := 0; i < warmupIters; i++ {
		state.ApplyMove(from, to, bps)
		state.MaxUtil()
		state.UndoMove(from, to, bps)
	}
	before, _ := state.MaxUtil()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state.ApplyMove(from, to, bps)
		state.MaxUtil()
		state.UndoMove(from, to, bps)
	}
	b.StopTimer()
	after, _ := state.MaxUtil()
	if after != before {
		b.Fatalf("move round trips drifted max util: %v -> %v", before, after)
	}
}

// BenchSolverConverge measures a full Link-Guided Local Search run —
// greedy construction, guided descent, bounded restarts — on the
// mesh-shaped instance. The solver reuses its preallocated scratch, so
// steady-state re-solves (the TEPolicy cadence) allocate nothing.
func BenchSolverConverge(b *testing.B) {
	solver := te.NewSolver(teBenchProblem(), 1)
	var got float64
	for i := 0; i < 2; i++ { // warm the path; Solve state is self-resetting
		got = solver.Solve()
	}
	if got <= 0 || got >= 1 {
		b.Fatalf("bench instance must be feasible and loaded, got max util %v", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Solve()
	}
	b.StopTimer()
	if again := solver.Solve(); again != got {
		b.Fatalf("Solve not deterministic across runs: %v vs %v", again, got)
	}
}
