package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// BatchWheel schedules a large population of integer-identified items —
// flows, not events — on a single-level bucket ring with one engine
// event per occupied time granule. Where the engine's hierarchical wheel
// gives every event its own Event (right for heterogeneous control
// traffic), a flow workload schedules millions of homogeneous "emit
// next packet" callbacks; giving each its own Event would cost ~64 B
// and one schedule/fire round trip apiece. The batch wheel instead
// chains item indices through one shared int32 array (4 B per item),
// keeps at most one engine event in flight, and drains every item due
// in a granule with a single callback fan-out.
//
// Semantics:
//
//   - Add(item, at) schedules the item for the granule boundary at or
//     after `at` (times are quantized up to the granule, so an item
//     never fires early; callers wanting exact periods use intervals
//     that are multiples of the granule).
//   - Items in one bucket fire in reverse insertion order (the chains
//     are prepend-only). The order is deterministic.
//   - The fire callback may re-Add its item (periodic flows). A re-Add
//     landing inside the granule currently being drained is deferred to
//     the next granule, so a drain always terminates.
//   - The ring covers [base, base+slots) granules; Add beyond that
//     horizon panics (it indicates a misconfigured wheel, not load).
//
// A BatchWheel is owned by its engine's goroutine (one per partition on
// a sharded network) and is not safe for concurrent use — exactly the
// ownership rule every simulation component follows.
type BatchWheel struct {
	eng     *Engine
	fire    func(now Time, item int32)
	granule time.Duration
	slots   int
	mask    int64
	head    []int32  // per-slot chain head (item index), -1 = empty
	next    []int32  // per-item chain link, sized by Reserve / Add
	occ     []uint64 // slot occupancy bitmap
	base    int64    // granule index of the oldest undrained bucket
	n       int      // items currently scheduled
	ev      *Event   // the single in-flight drain event
	evAt    Time
	drain   bool // inside OnSimEvent: Add defers to base+1, no event churn
}

// NewBatchWheel returns a wheel firing cb, with the given granule and a
// ring horizon of at least `horizon` into the future. Slot count is the
// next power of two covering horizon/granule (minimum 64).
func NewBatchWheel(eng *Engine, granule, horizon time.Duration, cb func(now Time, item int32)) *BatchWheel {
	if eng == nil || cb == nil {
		panic("sim: NewBatchWheel needs an engine and a callback")
	}
	if granule <= 0 || horizon <= granule {
		panic(fmt.Sprintf("sim: NewBatchWheel granule %v / horizon %v", granule, horizon))
	}
	slots := 64
	for Time(slots)*granule < horizon+2*granule {
		slots <<= 1
	}
	w := &BatchWheel{
		eng:     eng,
		fire:    cb,
		granule: granule,
		slots:   slots,
		mask:    int64(slots - 1),
		head:    make([]int32, slots),
		occ:     make([]uint64, slots/64),
		base:    int64(eng.Now()) / int64(granule),
	}
	for i := range w.head {
		w.head[i] = -1
	}
	return w
}

// Granule returns the wheel's time quantum.
func (w *BatchWheel) Granule() time.Duration { return w.granule }

// Len returns the number of items currently scheduled.
func (w *BatchWheel) Len() int { return w.n }

// Reserve grows the per-item link array to hold item indices < n, so
// later Adds below that bound never allocate. Adding an item beyond the
// reserved range grows the array amortized (an allocation).
func (w *BatchWheel) Reserve(n int) {
	if n <= len(w.next) {
		return
	}
	grown := make([]int32, n)
	copy(grown, w.next)
	for i := len(w.next); i < n; i++ {
		grown[i] = -1
	}
	w.next = grown
}

// Add schedules item to fire at the granule boundary at or after `at`.
// Past times fire as soon as possible (next engine step); an item must
// not be scheduled twice without firing in between (the wheel has one
// link per item and does not check).
func (w *BatchWheel) Add(item int32, at Time) {
	if item < 0 {
		panic("sim: BatchWheel.Add with negative item")
	}
	if int(item) >= len(w.next) {
		w.Reserve(int(item) + 1)
	}
	if w.n == 0 && !w.drain {
		// Empty wheel: catch the cursor up so an idle stretch longer
		// than the horizon cannot push a fresh Add past it.
		w.base = int64(w.eng.Now()) / int64(w.granule)
	}
	u := (int64(at) + int64(w.granule) - 1) / int64(w.granule) // ceil: never early
	floor := w.base
	if w.drain {
		floor = w.base + 1 // current granule is being drained; defer
	}
	if u < floor {
		u = floor
	}
	if u >= w.base+int64(w.slots) {
		panic(fmt.Sprintf("sim: BatchWheel.Add %v beyond horizon (%d slots of %v)",
			at, w.slots, w.granule))
	}
	slot := u & w.mask
	w.next[item] = w.head[slot]
	w.head[slot] = item
	w.occ[slot>>6] |= 1 << uint(slot&63)
	w.n++
	if !w.drain {
		w.schedule(u)
	}
}

// schedule makes sure the single drain event fires no later than bucket
// u's boundary.
func (w *BatchWheel) schedule(u int64) {
	te := Time(u) * w.granule
	if w.ev != nil {
		if te >= w.evAt {
			return
		}
		w.eng.Cancel(w.ev)
	}
	d := te - w.eng.Now() // ScheduleArg clamps negative delays to "now"
	w.ev = w.eng.ScheduleArg(d, w, nil)
	w.evAt = te
}

// OnSimEvent drains every bucket whose boundary has been reached,
// firing the callback for each item, then re-arms for the next occupied
// bucket. It implements sim.ArgHandler; only the engine calls it.
func (w *BatchWheel) OnSimEvent(any) {
	w.ev = nil
	now := w.eng.Now()
	limit := int64(now) / int64(w.granule)
	w.drain = true
	for w.base <= limit {
		slot := w.base & w.mask
		if w.occ[slot>>6]&(1<<uint(slot&63)) != 0 {
			h := w.head[slot]
			w.head[slot] = -1
			w.occ[slot>>6] &^= 1 << uint(slot&63)
			for h >= 0 {
				nxt := w.next[h]
				w.next[h] = -1
				w.n--
				w.fire(now, h)
				h = nxt
			}
		}
		w.base++
	}
	w.drain = false
	if u, ok := w.nextOccupied(); ok {
		w.schedule(u)
	}
}

// nextOccupied scans the occupancy bitmap from the base cursor and
// returns the granule index of the earliest non-empty bucket.
func (w *BatchWheel) nextOccupied() (int64, bool) {
	if w.n == 0 {
		return 0, false
	}
	start := w.base & w.mask
	words := w.slots >> 6
	for k := 0; k <= words; k++ {
		wi := (int(start>>6) + k) % words
		word := w.occ[wi]
		if k == 0 {
			word &^= (1 << uint(start&63)) - 1 // slots before base already drained
		} else if k == words {
			word &= (1 << uint(start&63)) - 1 // wrapped: only slots before base
		}
		if word != 0 {
			s := int64(wi)<<6 + int64(bits.TrailingZeros64(word))
			return w.base + ((s - start) & w.mask), true
		}
	}
	return 0, false
}

// Stop cancels the pending drain event and forgets every scheduled
// item. The wheel stays usable (Add re-arms it).
func (w *BatchWheel) Stop() {
	if w.ev != nil {
		w.eng.Cancel(w.ev)
		w.ev = nil
	}
	if w.n > 0 {
		for slot := range w.head {
			for h := w.head[slot]; h >= 0; {
				nxt := w.next[h]
				w.next[h] = -1
				h = nxt
			}
			w.head[slot] = -1
		}
		for i := range w.occ {
			w.occ[i] = 0
		}
		w.n = 0
	}
	w.base = int64(w.eng.Now()) / int64(w.granule)
}
