package sim

import (
	"testing"
	"time"
)

// collectWheel builds a wheel whose callback appends (now, item) pairs.
func collectWheel(t *testing.T, eng *Engine, granule, horizon time.Duration) (*BatchWheel, *[]struct {
	at   Time
	item int32
}) {
	t.Helper()
	var fired []struct {
		at   Time
		item int32
	}
	w := NewBatchWheel(eng, granule, horizon, func(now Time, item int32) {
		fired = append(fired, struct {
			at   Time
			item int32
		}{now, item})
	})
	return w, &fired
}

func TestBatchWheelQuantizesUpAndBatches(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 100*time.Millisecond)
	w.Reserve(8)
	// Three items inside the same granule fire together at its boundary;
	// an aligned item fires exactly on time.
	w.Add(0, Time(1300*time.Microsecond))
	w.Add(1, Time(1900*time.Microsecond))
	w.Add(2, Time(2*time.Millisecond))
	w.Add(3, Time(5*time.Millisecond))
	eng.RunAll()
	if len(*fired) != 4 {
		t.Fatalf("fired %d of 4", len(*fired))
	}
	for _, f := range (*fired)[:3] {
		if f.at != Time(2*time.Millisecond) {
			t.Fatalf("item %d fired at %v, want 2ms", f.item, f.at)
		}
	}
	if (*fired)[3].at != Time(5*time.Millisecond) || (*fired)[3].item != 3 {
		t.Fatalf("last firing = %+v", (*fired)[3])
	}
	// One bucket of three = one engine event; item 3 = a second.
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}

func TestBatchWheelBucketOrderIsLIFO(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 50*time.Millisecond)
	for i := int32(0); i < 4; i++ {
		w.Add(i, Time(3*time.Millisecond))
	}
	eng.RunAll()
	want := []int32{3, 2, 1, 0}
	for i, f := range *fired {
		if f.item != want[i] {
			t.Fatalf("firing order %v, want reverse insertion", *fired)
		}
	}
}

func TestBatchWheelPeriodicReAdd(t *testing.T) {
	eng := NewEngine()
	var fires []Time
	var w *BatchWheel
	w = NewBatchWheel(eng, time.Millisecond, 100*time.Millisecond, func(now Time, item int32) {
		fires = append(fires, now)
		if len(fires) < 5 {
			w.Add(item, now+4*time.Millisecond)
		}
	})
	w.Add(7, Time(4*time.Millisecond))
	eng.RunAll()
	if len(fires) != 5 {
		t.Fatalf("fired %d of 5", len(fires))
	}
	for i, at := range fires {
		if want := Time(4*(i+1)) * Time(time.Millisecond); at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
}

func TestBatchWheelReAddWithinCurrentGranuleDefers(t *testing.T) {
	eng := NewEngine()
	var fires []Time
	var w *BatchWheel
	w = NewBatchWheel(eng, time.Millisecond, 100*time.Millisecond, func(now Time, item int32) {
		fires = append(fires, now)
		if len(fires) == 1 {
			w.Add(item, now) // lands in the granule being drained
		}
	})
	w.Add(0, Time(2*time.Millisecond))
	eng.RunAll()
	if len(fires) != 2 {
		t.Fatalf("fired %d of 2", len(fires))
	}
	if fires[1] != Time(3*time.Millisecond) {
		t.Fatalf("deferred re-add fired at %v, want next granule 3ms", fires[1])
	}
}

func TestBatchWheelPastTimeFiresASAP(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 50*time.Millisecond)
	eng.Schedule(10*time.Millisecond, func() {})
	eng.RunAll() // now = 10ms
	w.Add(1, Time(2*time.Millisecond))
	eng.RunAll()
	if len(*fired) != 1 {
		t.Fatalf("fired %d of 1", len(*fired))
	}
	if (*fired)[0].at < Time(10*time.Millisecond) {
		t.Fatalf("past add fired at %v, before now", (*fired)[0].at)
	}
}

func TestBatchWheelEarlierAddReschedules(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 200*time.Millisecond)
	w.Add(0, Time(50*time.Millisecond))
	w.Add(1, Time(10*time.Millisecond)) // earlier: must preempt the armed event
	eng.RunAll()
	if len(*fired) != 2 {
		t.Fatalf("fired %d of 2", len(*fired))
	}
	if (*fired)[0].item != 1 || (*fired)[0].at != Time(10*time.Millisecond) {
		t.Fatalf("first firing %+v, want item 1 at 10ms", (*fired)[0])
	}
	if (*fired)[1].item != 0 || (*fired)[1].at != Time(50*time.Millisecond) {
		t.Fatalf("second firing %+v", (*fired)[1])
	}
}

func TestBatchWheelIdlePastHorizonStillAccepts(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 64*time.Millisecond)
	w.Add(0, Time(time.Millisecond))
	eng.RunAll()
	// Idle far longer than the ring horizon, then schedule again.
	eng.Schedule(10*time.Second, func() {})
	eng.RunAll()
	w.Add(0, eng.Now()+Time(5*time.Millisecond))
	eng.RunAll()
	if len(*fired) != 2 {
		t.Fatalf("fired %d of 2", len(*fired))
	}
}

func TestBatchWheelBeyondHorizonPanics(t *testing.T) {
	eng := NewEngine()
	w, _ := collectWheel(t, eng, time.Millisecond, 64*time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for an add beyond the ring horizon")
		}
	}()
	w.Add(0, Time(10*time.Second))
}

func TestBatchWheelStopForgetsAndReArms(t *testing.T) {
	eng := NewEngine()
	w, fired := collectWheel(t, eng, time.Millisecond, 100*time.Millisecond)
	w.Add(0, Time(5*time.Millisecond))
	w.Add(1, Time(7*time.Millisecond))
	w.Stop()
	if w.Len() != 0 {
		t.Fatalf("Len = %d after Stop", w.Len())
	}
	eng.RunAll()
	if len(*fired) != 0 {
		t.Fatalf("stopped wheel fired %d items", len(*fired))
	}
	w.Add(1, Time(3*time.Millisecond))
	eng.RunAll()
	if len(*fired) != 1 || (*fired)[0].item != 1 {
		t.Fatalf("post-Stop add did not fire: %v", *fired)
	}
}

func TestBatchWheelInterleavesWithEngineEvents(t *testing.T) {
	// The wheel's single event must coexist with ordinary events and
	// produce the same sequence on identical runs.
	run := func() []int {
		eng := NewEngine()
		var order []int
		w := NewBatchWheel(eng, time.Millisecond, 100*time.Millisecond, func(_ Time, item int32) {
			order = append(order, int(item)+100)
		})
		for i := 0; i < 10; i++ {
			i := i
			eng.Schedule(time.Duration(i+1)*3*time.Millisecond/2, func() { order = append(order, i) })
			w.Add(int32(i), Time(time.Duration(10-i)*2*time.Millisecond))
		}
		eng.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != 20 {
		t.Fatalf("run produced %d firings, want 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
}

func TestBatchWheelSteadyStateDoesNotAllocate(t *testing.T) {
	eng := NewEngine()
	w := NewBatchWheel(eng, time.Millisecond, 100*time.Millisecond, func(now Time, item int32) {})
	w.Reserve(64)
	// Warm the engine's event freelist.
	for i := int32(0); i < 64; i++ {
		w.Add(i, eng.Now()+Time(time.Millisecond))
	}
	eng.RunAll()
	avg := testing.AllocsPerRun(100, func() {
		for i := int32(0); i < 64; i++ {
			w.Add(i, eng.Now()+Time(time.Millisecond))
		}
		eng.RunAll()
	})
	if avg != 0 {
		t.Fatalf("steady-state add+drain allocates %.1f times per round, want 0", avg)
	}
}
