package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator advances a set of partition engines over one shared virtual
// timeline. It is the synchronization layer of the sharded simulation: a
// large mesh is partitioned into P engines (one per low-delay cluster of
// nodes), and the coordinator runs them either
//
//   - coupled: a sequential interleave that fires the globally earliest
//     event across all partitions, tie-broken by (time, partition index,
//     scheduling order). Clocks stay synchronized at every fire, so event
//     callbacks may freely touch components on other partitions — this is
//     the mode for construction, BGP convergence, and Tango establishment,
//     whose setup logic makes direct cross-site calls; or
//
//   - parallel: conservative lock-stepped epochs of length equal to the
//     lookahead (the minimum delay of any cross-partition link or session).
//     Within an epoch [T, T+L) no partition can affect another before T+L,
//     so W worker goroutines advance partitions independently; cross-
//     partition events accumulate in per-partition outboxes and are drained
//     at the barrier in a canonical (time, source, sequence) order.
//
// Both modes produce results that are independent of the worker count:
// coupled mode is sequential by construction, and parallel mode schedules
// every cross-partition event in an order derived only from virtual time
// and per-partition sequence numbers, never from goroutine arrival. The
// partition count itself is a property of the topology (see
// topo.PartitionGraph), not of the worker knob, so "1 shard" and "N
// shards" runs execute identical event sequences.
type Coordinator struct {
	parts     []*Engine
	lookahead time.Duration
	workers   int
	parallel  bool
	now       Time
	running   bool

	// inEpoch is true only while parallel epoch workers are running; it
	// routes CrossScheduleAt through the outboxes. Written strictly
	// before worker launch and after the join, so workers read it safely.
	inEpoch bool

	outbox  [][]crossMsg
	scratch []crossMsg
	hooks   []barrierHook

	// Stats counts coordinator activity for tests and benchmarks.
	Stats struct {
		Epochs   uint64
		CrossMsg uint64
	}
}

// crossMsg is one cross-partition event waiting for the next barrier.
type crossMsg struct {
	at       Time
	src, dst int32
	seq      uint32
	h        ArgHandler
	arg      any
}

type barrierHook struct {
	every time.Duration
	next  Time
	fn    func(Time)
}

// CrossPrepper is implemented by ArgHandlers whose cross-partition payload
// must be materialized on the destination side. PrepareCross runs single-
// threaded at the barrier, before the event is scheduled on the
// destination engine; the returned value replaces the payload. The packet
// layer uses this to copy staged bytes into a buffer leased from the
// destination partition's pool, keeping pools single-goroutine.
type CrossPrepper interface {
	PrepareCross(arg any) any
}

// NewCoordinator creates parts fresh engines sharing one timeline.
// lookahead is the conservative synchronization horizon: the minimum
// virtual delay of any cross-partition interaction (0 disables parallel
// mode, which is the correct degenerate case for a single partition).
func NewCoordinator(parts int, lookahead time.Duration) *Coordinator {
	if parts < 1 {
		panic("sim: NewCoordinator needs at least one partition")
	}
	c := &Coordinator{lookahead: lookahead, workers: 1}
	c.parts = make([]*Engine, parts)
	c.outbox = make([][]crossMsg, parts)
	for i := range c.parts {
		e := NewEngine()
		e.coord = c
		e.part = i
		c.parts[i] = e
	}
	return c
}

// Part returns partition engine i.
func (c *Coordinator) Part(i int) *Engine { return c.parts[i] }

// NumParts returns the partition count.
func (c *Coordinator) NumParts() int { return len(c.parts) }

// Lookahead returns the synchronization horizon.
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Now returns the shared virtual time (all partitions agree between runs).
func (c *Coordinator) Now() Time { return c.now }

// SetWorkers sets how many goroutines advance partitions in parallel
// epochs. Values are clamped to [1, partitions]. The worker count never
// affects results, only wall-clock time.
func (c *Coordinator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.parts) {
		n = len(c.parts)
	}
	c.workers = n
}

// Workers returns the configured worker count.
func (c *Coordinator) Workers() int { return c.workers }

// EnterParallel switches subsequent Runs to parallel epochs. It is a
// no-op (the coordinator stays coupled) when there is only one partition
// or no positive lookahead. Call between runs, never from a callback.
func (c *Coordinator) EnterParallel() {
	if c.running {
		panic("sim: EnterParallel during Run")
	}
	if len(c.parts) > 1 && c.lookahead > 0 {
		c.parallel = true
	}
}

// EnterCoupled switches subsequent Runs back to the sequential interleave.
func (c *Coordinator) EnterCoupled() {
	if c.running {
		panic("sim: EnterCoupled during Run")
	}
	c.parallel = false
}

// Parallel reports whether parallel epochs are active.
func (c *Coordinator) Parallel() bool { return c.parallel }

// AtBarrier registers fn to run single-threaded at epoch barriers. With
// every > 0 it fires once per elapsed period (like a Ticker, receiving the
// nominal tick instant); with every <= 0 it fires at every barrier with
// the barrier time. Hooks run after the cross-partition drain, in
// registration order — register state merges (journals, logs) before
// consumers (invariant checks).
func (c *Coordinator) AtBarrier(every time.Duration, fn func(Time)) {
	h := barrierHook{every: every, fn: fn}
	if every > 0 {
		h.next = c.now + every
	}
	c.hooks = append(c.hooks, h)
}

// Run advances all partitions to the finite virtual time until, in epochs
// of the lookahead (one epoch for the whole span when the lookahead is
// zero). Barriers — cross-partition drains plus hooks — run at every
// epoch boundary in both modes, so hook cadence does not depend on the
// mode or worker count.
func (c *Coordinator) Run(until Time) {
	if c.running {
		panic("sim: re-entrant Coordinator.Run")
	}
	if until == Forever {
		panic("sim: Coordinator.Run(Forever): sharded runs need a finite horizon")
	}
	c.running = true
	defer func() { c.running = false }()
	for c.now < until {
		end := until
		if c.lookahead > 0 && c.now+c.lookahead < until {
			end = c.now + c.lookahead
		}
		if c.parallel {
			c.runEpochParallel(end)
		} else {
			c.runEpochCoupled(end)
		}
		c.now = end
		c.Stats.Epochs++
		c.drain()
		c.fireHooks(end)
	}
}

// runEpochCoupled fires the globally earliest event until none remain at
// or before end, keeping every partition clock at the global fire instant
// so cross-partition reads and schedules behave as on a single engine.
func (c *Coordinator) runEpochCoupled(end Time) {
	for {
		best := -1
		at := Forever
		for i, e := range c.parts {
			if t, ok := e.NextAt(); ok && t < at {
				at, best = t, i
			}
		}
		if best < 0 || at > end {
			break
		}
		for _, e := range c.parts {
			e.advanceTo(at)
		}
		c.parts[best].Step()
	}
	for _, e := range c.parts {
		e.advanceTo(end)
	}
}

// runEpochParallel advances every partition to end on a worker pool.
// Partitions are claimed from an atomic counter, so slow partitions do
// not serialize behind fast ones beyond the epoch barrier itself.
func (c *Coordinator) runEpochParallel(end Time) {
	w := c.workers
	if w > len(c.parts) {
		w = len(c.parts)
	}
	// inEpoch stays set even for one worker: cross events must take the
	// outbox path in every parallel run, or their destination-side
	// scheduling order would depend on the worker count.
	c.inEpoch = true
	if w <= 1 {
		for _, e := range c.parts {
			e.Run(end)
		}
		c.inEpoch = false
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(c.parts) {
					return
				}
				c.parts[i].Run(end)
			}
		}()
	}
	wg.Wait()
	c.inEpoch = false
}

// drain moves every outbox message onto its destination engine in the
// canonical (time, source partition, per-source sequence) order. The
// ordering depends only on virtual time and scheduling order within each
// partition, so the resulting destination-side event sequence is
// identical for every worker count.
func (c *Coordinator) drain() {
	c.scratch = c.scratch[:0]
	for i := range c.outbox {
		c.scratch = append(c.scratch, c.outbox[i]...)
		c.outbox[i] = c.outbox[i][:0]
	}
	if len(c.scratch) == 0 {
		return
	}
	sort.Slice(c.scratch, func(i, j int) bool {
		a, b := &c.scratch[i], &c.scratch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range c.scratch {
		m := &c.scratch[i]
		if p, ok := m.h.(CrossPrepper); ok {
			m.arg = p.PrepareCross(m.arg)
		}
		dst := c.parts[m.dst]
		if m.at < dst.Now() {
			panic(fmt.Sprintf("sim: lookahead violation: cross event at %v behind partition %d clock %v",
				m.at, m.dst, dst.Now()))
		}
		dst.ScheduleArgAt(m.at, m.h, m.arg)
		m.h, m.arg = nil, nil
	}
	c.Stats.CrossMsg += uint64(len(c.scratch))
}

func (c *Coordinator) fireHooks(now Time) {
	for i := range c.hooks {
		h := &c.hooks[i]
		if h.every <= 0 {
			h.fn(now)
			continue
		}
		for h.next <= now {
			h.fn(h.next)
			h.next += h.every
		}
	}
}

// CrossScheduleAt schedules h.OnSimEvent(arg) at absolute virtual time at
// on dst's timeline, callable from an event running on src. On the same
// engine, without a coordinator, or in coupled mode it degrades to a
// direct schedule (clocks are synchronized, so this is exact); during a
// parallel epoch it stages the event in src's outbox for the barrier.
// Either way a CrossPrepper handler sees PrepareCross exactly once before
// the event lands on dst, so handlers observe one payload contract in
// every mode.
func CrossScheduleAt(src, dst *Engine, at Time, h ArgHandler, arg any) {
	c := src.coord
	if src == dst || c == nil || c != dst.coord || !c.inEpoch {
		if p, ok := h.(CrossPrepper); ok {
			arg = p.PrepareCross(arg)
		}
		dst.ScheduleArgAt(at, h, arg)
		return
	}
	ob := &c.outbox[src.part]
	*ob = append(*ob, crossMsg{
		at: at, src: int32(src.part), dst: int32(dst.part),
		seq: uint32(len(*ob)), h: h, arg: arg,
	})
}
