package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// fireLog records (time, tag) pairs as events land; crossTag implements
// ArgHandler so CrossScheduleAt can target it.
type fireLog struct {
	entries []string
}

type crossTag struct {
	log *fireLog
	eng *Engine
}

func (h *crossTag) OnSimEvent(arg any) {
	h.log.entries = append(h.log.entries, fmt.Sprintf("t=%v %v", h.eng.Now(), arg))
}

// prepCounter wraps crossTag with a PrepareCross that stamps the payload,
// so tests can assert it ran exactly once in every mode.
type prepCounter struct {
	crossTag
	preps int
}

func (h *prepCounter) PrepareCross(arg any) any {
	h.preps++
	return fmt.Sprintf("prepped(%v)", arg)
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("no panic, want panic containing %q", want)
		}
	}()
	fn()
}

func TestCoordinatorValidation(t *testing.T) {
	mustPanic(t, "at least one partition", func() { NewCoordinator(0, time.Millisecond) })

	c := NewCoordinator(2, time.Millisecond)
	mustPanic(t, "finite horizon", func() { c.Run(Forever) })

	// Mode switches and re-entrant Runs inside a callback must be loud:
	// they would corrupt the epoch structure mid-flight.
	c.Part(0).ScheduleAt(Time(time.Millisecond), func() {
		mustPanic(t, "EnterParallel during Run", c.EnterParallel)
		mustPanic(t, "EnterCoupled during Run", c.EnterCoupled)
		mustPanic(t, "re-entrant", func() { c.Run(Time(time.Second)) })
	})
	c.Run(Time(10 * time.Millisecond))
}

func TestCoordinatorAccessors(t *testing.T) {
	c := NewCoordinator(3, 5*time.Millisecond)
	if c.NumParts() != 3 || c.Lookahead() != 5*time.Millisecond || c.Now() != 0 {
		t.Fatalf("accessors: parts=%d lookahead=%v now=%v", c.NumParts(), c.Lookahead(), c.Now())
	}
	for i := 0; i < 3; i++ {
		e := c.Part(i)
		if e.Coord() != c || e.Part() != i {
			t.Fatalf("partition %d engine not wired to coordinator", i)
		}
	}
	if c.Workers() != 1 {
		t.Fatalf("default workers %d, want 1", c.Workers())
	}
	c.SetWorkers(0)
	if c.Workers() != 1 {
		t.Fatalf("SetWorkers(0) gave %d, want clamp to 1", c.Workers())
	}
	c.SetWorkers(64)
	if c.Workers() != 3 {
		t.Fatalf("SetWorkers(64) gave %d, want clamp to 3 partitions", c.Workers())
	}
	if c.Parallel() {
		t.Fatal("coordinator born parallel")
	}
	c.EnterParallel()
	if !c.Parallel() {
		t.Fatal("EnterParallel did not arm parallel mode")
	}
	c.EnterCoupled()
	if c.Parallel() {
		t.Fatal("EnterCoupled did not disarm parallel mode")
	}

	// The degenerate cases stay coupled: one partition, or no lookahead.
	one := NewCoordinator(1, time.Millisecond)
	one.EnterParallel()
	if one.Parallel() {
		t.Fatal("single partition must stay coupled")
	}
	flat := NewCoordinator(2, 0)
	flat.EnterParallel()
	if flat.Parallel() {
		t.Fatal("zero lookahead must stay coupled")
	}
	flat.Run(Time(time.Millisecond)) // zero lookahead: one epoch for the whole span
	if flat.Now() != Time(time.Millisecond) || flat.Stats.Epochs != 1 {
		t.Fatalf("flat run: now=%v epochs=%d", flat.Now(), flat.Stats.Epochs)
	}
}

func TestCoupledFiresGlobalTimeOrder(t *testing.T) {
	c := NewCoordinator(2, 10*time.Millisecond)
	log := &fireLog{}
	// Interleave events across partitions; coupled mode must fire them in
	// global time order with both clocks synchronized at each fire.
	for i, at := range []time.Duration{5, 1, 9, 3} {
		part, other := c.Part(i%2), c.Part((i+1)%2)
		at := at * time.Millisecond
		part.ScheduleAt(Time(at), func() {
			if part.Now() != other.Now() {
				t.Errorf("clocks diverged in coupled mode: %v vs %v", part.Now(), other.Now())
			}
			log.entries = append(log.entries, fmt.Sprintf("t=%v", part.Now()))
		})
	}
	c.Run(Time(20 * time.Millisecond))
	want := []string{"t=1ms", "t=3ms", "t=5ms", "t=9ms"}
	if !reflect.DeepEqual(log.entries, want) {
		t.Fatalf("fire order %v, want %v", log.entries, want)
	}
	if c.Now() != Time(20*time.Millisecond) {
		t.Fatalf("now=%v, want 20ms", c.Now())
	}
	if c.Stats.Epochs != 2 {
		t.Fatalf("20ms at 10ms lookahead: %d epochs, want 2", c.Stats.Epochs)
	}
}

// pingPong builds a 2-partition workload where each partition fires a
// local event every 3ms and cross-schedules a message to the other
// partition lookahead later, then runs it and returns the merged logs.
func pingPong(workers int, parallel bool) ([]string, uint64) {
	const la = 10 * time.Millisecond
	c := NewCoordinator(2, la)
	c.SetWorkers(workers)
	logs := [2]*fireLog{{}, {}}
	tags := [2]*crossTag{}
	for i := 0; i < 2; i++ {
		tags[i] = &crossTag{log: logs[i], eng: c.Part(i)}
	}
	for i := 0; i < 2; i++ {
		i := i
		src := c.Part(i)
		var tick func()
		tick = func() {
			logs[i].entries = append(logs[i].entries, fmt.Sprintf("t=%v local%d", src.Now(), i))
			CrossScheduleAt(src, c.Part(1-i), src.Now()+Time(la), tags[1-i], fmt.Sprintf("from%d", i))
			if src.Now() < Time(60*time.Millisecond) {
				src.Schedule(3*time.Millisecond, tick)
			}
		}
		src.ScheduleAt(Time(time.Millisecond), tick)
	}
	if parallel {
		c.EnterParallel()
	}
	c.Run(Time(100 * time.Millisecond))
	return append(append([]string{}, logs[0].entries...), logs[1].entries...), c.Stats.CrossMsg
}

func TestParallelInvariantToWorkersAndMode(t *testing.T) {
	base, _ := pingPong(1, false) // coupled reference
	for _, w := range []int{1, 2} {
		got, cross := pingPong(w, true)
		if cross == 0 {
			t.Fatalf("workers=%d: no cross messages rode the outboxes", w)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d parallel diverged from coupled:\n%v\nvs\n%v", w, got, base)
		}
	}
}

func TestCrossPrepperRunsOnceBothModes(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		c := NewCoordinator(2, 10*time.Millisecond)
		log := &fireLog{}
		h := &prepCounter{crossTag: crossTag{log: log, eng: c.Part(1)}}
		c.Part(0).ScheduleAt(Time(time.Millisecond), func() {
			CrossScheduleAt(c.Part(0), c.Part(1), Time(15*time.Millisecond), h, "pkt")
		})
		if parallel {
			c.EnterParallel()
		}
		c.Run(Time(30 * time.Millisecond))
		if h.preps != 1 {
			t.Errorf("parallel=%v: PrepareCross ran %d times, want 1", parallel, h.preps)
		}
		want := []string{"t=15ms prepped(pkt)"}
		if !reflect.DeepEqual(log.entries, want) {
			t.Errorf("parallel=%v: delivery %v, want %v", parallel, log.entries, want)
		}
	}
}

func TestCrossScheduleSameEngineIsDirect(t *testing.T) {
	// Same-engine and coordinator-less sends degrade to a plain schedule
	// (still running PrepareCross, preserving the payload contract).
	e := NewEngine()
	log := &fireLog{}
	h := &prepCounter{crossTag: crossTag{log: log, eng: e}}
	CrossScheduleAt(e, e, Time(2*time.Millisecond), h, "loop")
	e.Run(Time(5 * time.Millisecond))
	if h.preps != 1 || len(log.entries) != 1 {
		t.Fatalf("same-engine cross: preps=%d fired=%v", h.preps, log.entries)
	}
}

func TestBarrierHooks(t *testing.T) {
	c := NewCoordinator(2, 5*time.Millisecond)
	var every, periodic []Time
	c.AtBarrier(0, func(now Time) { every = append(every, now) })
	c.AtBarrier(7*time.Millisecond, func(now Time) { periodic = append(periodic, now) })
	c.EnterParallel()
	c.Run(Time(20 * time.Millisecond))

	wantEvery := []Time{Time(5 * time.Millisecond), Time(10 * time.Millisecond), Time(15 * time.Millisecond), Time(20 * time.Millisecond)}
	if !reflect.DeepEqual(every, wantEvery) {
		t.Fatalf("every-barrier hook fired at %v, want %v", every, wantEvery)
	}
	// The periodic hook receives nominal tick instants, not barrier times.
	wantTicks := []Time{Time(7 * time.Millisecond), Time(14 * time.Millisecond)}
	if !reflect.DeepEqual(periodic, wantTicks) {
		t.Fatalf("periodic hook fired at %v, want %v", periodic, wantTicks)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	// A cross event scheduled before its destination's epoch end is a
	// conservative-sync violation and must crash loudly at the drain.
	c := NewCoordinator(2, 10*time.Millisecond)
	log := &fireLog{}
	h := &crossTag{log: log, eng: c.Part(1)}
	c.Part(0).ScheduleAt(Time(time.Millisecond), func() {
		CrossScheduleAt(c.Part(0), c.Part(1), Time(2*time.Millisecond), h, "too-soon")
	})
	c.EnterParallel()
	mustPanic(t, "lookahead violation", func() { c.Run(Time(20 * time.Millisecond)) })
}
