package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The differential property test is the determinism gate for the wheel
// swap: random schedule/cancel/run scripts — including callbacks that
// schedule children — execute against the timing-wheel Engine and the
// binary-heap Ref side by side, and the two must produce identical
// (time, creation-index) fire sequences, identical clocks, and identical
// pending counts at every checkpoint. Delays are drawn from a mix that
// deliberately stresses every wheel path: same-instant bursts, sub-granule
// jitter, level-crossing delays, multi-level jumps, and overflow-horizon
// monsters (including delays that clamp to Forever).

type firing struct {
	at  Time
	idx int
}

// diffDriver adapts Engine and Ref to one script interpreter. Cancel
// targets are chosen among live handles only: a handle whose event fired
// or was already cancelled may point at a recycled Event (both schedulers
// reuse event structs through a freelist), so cancelling it again is
// outside the API contract.
type diffDriver struct {
	schedule func(d time.Duration, fn func()) int // returns creation index
	cancel   func(idx int)
	run      func(until Time)
	now      func() Time
	pending  func() int
	nextAt   func() (Time, bool)
}

func engineDriver() *diffDriver {
	e := NewEngine()
	handles := make(map[int]*Event)
	n := 0
	d := &diffDriver{}
	d.schedule = func(dd time.Duration, fn func()) int {
		i := n
		n++
		handles[i] = e.Schedule(dd, fn)
		return i
	}
	d.cancel = func(idx int) {
		e.Cancel(handles[idx])
		delete(handles, idx)
	}
	d.run = func(until Time) { e.Run(until) }
	d.now = e.Now
	d.pending = e.Pending
	d.nextAt = e.NextAt
	return d
}

func refDriver() *diffDriver {
	r := NewRef()
	handles := make(map[int]*RefEvent)
	n := 0
	d := &diffDriver{}
	d.schedule = func(dd time.Duration, fn func()) int {
		i := n
		n++
		handles[i] = r.Schedule(dd, fn)
		return i
	}
	d.cancel = func(idx int) {
		r.Cancel(handles[idx])
		delete(handles, idx)
	}
	d.run = func(until Time) { r.Run(until) }
	d.now = r.Now
	d.pending = r.Pending
	d.nextAt = r.NextAt
	return d
}

// drawDelay picks a delay from the stress mix.
func drawDelay(rng *rand.Rand) time.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0 // same-instant burst
	case 1:
		return time.Duration(rng.Intn(1 << granBits)) // sub-granule
	case 2:
		return time.Duration(rng.Intn(wheelSlots << granBits)) // level-0 window
	case 3, 4, 5:
		return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
	case 6, 7:
		return time.Duration(rng.Int63n(int64(2 * time.Hour))) // level 3-4
	case 8:
		return time.Duration(rng.Int63n(int64(1<<62))) | 1<<(granBits+horizonBits) // beyond horizon
	default:
		return time.Duration(1<<63 - 1 - rng.Int63n(1000)) // clamps to Forever
	}
}

// runScript executes one seeded script against a driver and returns the
// fire sequence plus the checkpoint trace.
func runScript(seed int64, mk func() *diffDriver) (fires []firing, trace []int64) {
	rng := rand.New(rand.NewSource(seed))
	var rec []firing
	var live []int // creation indices currently pending, in schedule order
	d := mk()

	removeLive := func(idx int) {
		for i, v := range live {
			if v == idx {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}

	// sched schedules one event whose callback records its fire, drops
	// itself from the live set, and, with probability, schedules a child.
	var sched func(dd time.Duration)
	sched = func(dd time.Duration) {
		var self int
		self = d.schedule(dd, func() {
			rec = append(rec, firing{d.now(), self})
			removeLive(self)
			if rng.Intn(4) == 0 {
				sched(drawDelay(rng))
			}
		})
		live = append(live, self)
	}

	ops := 300
	for op := 0; op < ops; op++ {
		switch p := rng.Intn(100); {
		case p < 55:
			sched(drawDelay(rng))
		case p < 70:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				idx := live[k]
				live = append(live[:k], live[k+1:]...)
				d.cancel(idx)
			}
		case p < 95:
			d.run(d.now() + Time(rng.Int63n(int64(500*time.Millisecond))))
		default:
			d.run(d.now() + Time(rng.Int63n(int64(48*time.Hour))))
		}
		at, ok := d.nextAt()
		okBit := int64(0)
		if ok {
			okBit = 1
		}
		trace = append(trace, int64(d.now()), int64(d.pending()), int64(at), okBit)
	}
	// Drain completely so the tail (overflow rebases, Forever events)
	// is exercised too.
	d.run(Forever)
	trace = append(trace, int64(d.now()), int64(d.pending()))
	return rec, trace
}

func TestDifferentialWheelVsHeap(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= seeds; seed++ {
		wf, wt := runScript(seed, engineDriver)
		hf, ht := runScript(seed, refDriver)
		if len(wf) != len(hf) {
			t.Fatalf("seed %d: wheel fired %d events, heap fired %d", seed, len(wf), len(hf))
		}
		for i := range wf {
			if wf[i] != hf[i] {
				t.Fatalf("seed %d: fire %d diverged: wheel (%v, #%d) vs heap (%v, #%d)",
					seed, i, wf[i].at, wf[i].idx, hf[i].at, hf[i].idx)
			}
		}
		if len(wt) != len(ht) {
			t.Fatalf("seed %d: checkpoint trace lengths differ", seed)
		}
		for i := range wt {
			if wt[i] != ht[i] {
				t.Fatalf("seed %d: checkpoint %d diverged: wheel %d vs heap %d", seed, i, wt[i], ht[i])
			}
		}
	}
}

// The wheel must also agree with itself: the same script replayed on a
// fresh Engine fires identically (no hidden iteration-order or sweep
// nondeterminism).
func TestDifferentialWheelReplay(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, at := runScript(seed, engineDriver)
		b, bt := runScript(seed, engineDriver)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay fired %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: replay diverged at fire %d", seed, i)
			}
		}
		for i := range at {
			if at[i] != bt[i] {
				t.Fatalf("seed %d: replay trace diverged at %d", seed, i)
			}
		}
	}
}
