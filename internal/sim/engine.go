// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a hierarchical timing wheel of
// scheduled events (see wheel.go). Events scheduled for the same instant
// fire in scheduling order, which—together with seeded random streams
// (see rng.go)—makes every run with the same seed bit-for-bit
// reproducible. All Tango experiments are built on this property: the
// paper's eight-day Internet measurement is replaced by a virtual-time
// trace that can be regenerated exactly.
//
// The engine is single-goroutine by design. Simulated components never
// block; they schedule continuations instead. This mirrors how an eBPF
// program or a switch pipeline is written (run-to-completion handlers) and
// avoids all locking on the simulation hot path. Independent engines are
// fully isolated, so a sweep of experiments may run one engine per
// goroutine (see internal/experiments' runner).
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is an instant in virtual time, expressed as the duration elapsed
// since the start of the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Forever is a Time later than any event a simulation will schedule.
const Forever Time = math.MaxInt64

// Event lifecycle states (Event.state).
const (
	statePending int32 = 1  // scheduled, will fire unless cancelled
	stateDone    int32 = -1 // fired, cancelled, or on the freelist
)

// Event is a scheduled callback. The callback runs exactly once, at the
// scheduled virtual time, unless cancelled first.
//
// An event carries either a plain closure (fn) or a closure-free
// (handler, payload) pair — the latter is the packet fast path: a link
// schedules delivery by storing itself and the packet buffer directly in
// the event, so per-packet scheduling allocates nothing (both fields are
// single pointers; neither boxing a pointer into an interface nor the
// freelist reuse below touches the heap).
type Event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among events at the same instant
	fn      func()
	handler ArgHandler
	arg     any
	state   int32
	next    *Event // bucket / due / freelist chain link
}

// ArgHandler consumes payload-carrying events scheduled with ScheduleArg.
// Implementations are long-lived objects (a link direction, a port); the
// engine stores the receiver itself in the event rather than a closure
// over it.
type ArgHandler interface {
	// OnSimEvent runs at the event's scheduled instant with the payload
	// that was scheduled. Ownership conventions for the payload are the
	// scheduler's business; a cancelled event's payload is dropped
	// without a callback.
	OnSimEvent(arg any)
}

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.state < 0 }

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Engine is a discrete-event simulator. The zero value is not ready for
// use; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	w       wheel
	nlive   int // pending, non-cancelled events
	ntomb   int // cancelled events still linked in a chain
	running bool
	stopped bool
	free    *Event // freelist to avoid per-event allocation in long runs
	nfree   int

	// coord/part are set when the engine is one partition of a sharded
	// simulation (see coordinator.go); standalone engines leave them zero.
	coord *Coordinator
	part  int

	// Stats counts engine activity; useful in tests and benchmarks.
	Stats struct {
		Scheduled uint64
		Fired     uint64
		Cancelled uint64
		Swept     uint64 // tombstones reclaimed (deferred sweeps and bucket expiry)
	}
}

// NewEngine returns an engine with the clock at the simulation epoch.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Coord returns the coordinator this engine is a partition of, or nil for
// a standalone engine.
func (e *Engine) Coord() *Coordinator { return e.coord }

// Part returns the engine's partition index (0 for standalone engines).
func (e *Engine) Part() int { return e.part }

// advanceTo moves the clock forward to t without firing anything. Only
// the coordinator calls it, and only when it has proven no event earlier
// than t is pending on this engine.
func (e *Engine) advanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero (fn runs at the current instant, after already-queued
// events for this instant); a delay so large that now+d overflows virtual
// time clamps to Forever instead of silently wrapping into the past.
// The returned Event may be cancelled.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	return e.scheduleAt(e.deadline(d), fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past is
// an error that indicates broken component logic, so it panics.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) in the past (now %v)", t, e.now))
	}
	return e.scheduleAt(t, fn)
}

func (e *Engine) scheduleAt(t Time, fn func()) *Event {
	ev := e.push(t)
	ev.fn = fn
	return ev
}

// ScheduleArg runs h.OnSimEvent(arg) after delay d of virtual time, like
// Schedule but without a closure: the (handler, payload) pair rides the
// event itself, so scheduling through the event freelist is
// allocation-free. Negative and overflowing delays clamp as in Schedule.
func (e *Engine) ScheduleArg(d time.Duration, h ArgHandler, arg any) *Event {
	if h == nil {
		panic("sim: ScheduleArg with nil handler")
	}
	return e.scheduleArgAt(e.deadline(d), h, arg)
}

// ScheduleArgAt is ScheduleArg at an absolute virtual time. Scheduling in
// the past panics, as with ScheduleAt.
func (e *Engine) ScheduleArgAt(t Time, h ArgHandler, arg any) *Event {
	if h == nil {
		panic("sim: ScheduleArgAt with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleArgAt(%v) in the past (now %v)", t, e.now))
	}
	return e.scheduleArgAt(t, h, arg)
}

func (e *Engine) scheduleArgAt(t Time, h ArgHandler, arg any) *Event {
	ev := e.push(t)
	ev.handler = h
	ev.arg = arg
	return ev
}

// deadline converts a relative delay into an absolute instant, clamping
// negative delays to "now" and overflowing ones to Forever. Without the
// overflow clamp, now+d wraps negative for delays near Forever and the
// event silently schedules in the past, firing immediately and out of
// order.
func (e *Engine) deadline(d time.Duration) Time {
	if d < 0 {
		return e.now
	}
	t := e.now + d
	if t < e.now {
		return Forever
	}
	return t
}

func (e *Engine) push(t Time) *Event {
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.state = statePending
	e.seq++
	e.w.place(ev)
	e.nlive++
	e.Stats.Scheduled++
	return ev
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
//
// Cancellation is lazy: the event is tombstoned in place — O(1), no
// bucket surgery — and its memory is reclaimed when its bucket expires or
// when accumulated tombstones trigger a deferred sweep, whichever comes
// first.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.state < 0 {
		return
	}
	ev.state = stateDone
	ev.fn = nil
	ev.handler = nil
	ev.arg = nil
	e.nlive--
	e.ntomb++
	e.Stats.Cancelled++
	e.maybeSweep()
}

// Sweep policy: tombstones are reclaimed in bulk once enough accumulate
// to matter, amortizing the walk over the cancels that created them. The
// floor keeps sweeps rare in cancel-light runs; the live-count ratio
// keeps a huge backlog from being walked for a handful of tombstones.
// The floor stays below the freelist cap so a sweep's reclaimed events
// are actually reusable.
const (
	sweepMinTombstones = 2048
	sweepLiveRatio     = 4 // sweep when ntomb ≥ nlive/sweepLiveRatio
)

func (e *Engine) maybeSweep() {
	if e.ntomb >= sweepMinTombstones && e.ntomb*sweepLiveRatio >= e.nlive {
		e.sweep()
	}
}

// sweep unlinks every tombstone from every chain and returns the events
// to the freelist.
func (e *Engine) sweep() {
	w := &e.w
	w.due, w.dueTail = e.filterChain(w.due)
	for l := range w.level {
		lv := &w.level[l]
		for m := lv.occupied; m != 0; m &= m - 1 {
			s := bits.TrailingZeros64(m)
			lv.slot[s], _ = e.filterChain(lv.slot[s])
			if lv.slot[s] == nil {
				lv.occupied &^= 1 << uint(s)
			}
		}
	}
	w.overflow, _ = e.filterChain(w.overflow)
	w.overflowMin = 0
	for ev := w.overflow; ev != nil; ev = ev.next {
		if u := granule(ev.at); w.overflowMin == 0 || u < w.overflowMin {
			w.overflowMin = u
		}
	}
}

// filterChain rebuilds a chain without its tombstones (order preserved,
// so the due chain stays sorted) and returns the new head and tail.
func (e *Engine) filterChain(head *Event) (*Event, *Event) {
	var out, tail *Event
	for head != nil {
		ev := head
		head = head.next
		if ev.state < 0 {
			e.reclaim(ev)
			continue
		}
		ev.next = nil
		if tail == nil {
			out = ev
		} else {
			tail.next = ev
		}
		tail = ev
	}
	return out, tail
}

// reclaim returns an unlinked tombstone to the freelist.
func (e *Engine) reclaim(ev *Event) {
	e.ntomb--
	e.Stats.Swept++
	e.release(ev)
}

// sortIntoDue filters tombstones out of an expired level-0 bucket and
// merges the survivors, sorted by (at, seq), into the due chain.
func (e *Engine) sortIntoDue(chain *Event) {
	var live *Event
	for chain != nil {
		ev := chain
		chain = chain.next
		if ev.state < 0 {
			e.reclaim(ev)
			continue
		}
		ev.next = live
		live = ev
	}
	live = mergeSortEvents(live)
	if live == nil {
		return
	}
	w := &e.w
	if w.due == nil {
		w.due = live
	} else {
		// refill only runs on an empty due chain, but a due chain can be
		// non-empty here after schedules into already-passed granules;
		// those all precede the freshly expired bucket (inv-1 held when
		// they were inserted), so the bucket appends after the tail.
		w.dueTail.next = live
	}
	tail := live
	for tail.next != nil {
		tail = tail.next
	}
	w.dueTail = tail
}

// peek returns the earliest pending event without firing it, advancing
// the wheel cursor (but never the clock) as needed. Tombstones surfacing
// at the due-chain head are reclaimed on the way.
func (e *Engine) peek() *Event {
	for {
		for ev := e.w.due; ev != nil; ev = e.w.due {
			if ev.state >= 0 {
				return ev
			}
			e.w.popDue()
			e.reclaim(ev)
		}
		if !e.w.refill(e) {
			return nil
		}
	}
}

// Step fires the single earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

func (e *Engine) fire(ev *Event) {
	e.w.popDue()
	ev.state = stateDone
	e.nlive--
	e.now = ev.at
	fn, h, arg := ev.fn, ev.handler, ev.arg
	ev.fn, ev.handler, ev.arg = nil, nil, nil
	e.release(ev)
	e.Stats.Fired++
	if fn != nil {
		fn()
	} else {
		h.OnSimEvent(arg)
	}
}

// Run fires events until the queue drains or the clock would pass until.
// It returns the number of events fired. Events scheduled exactly at until
// are fired; later ones remain queued and the clock is left at until.
func (e *Engine) Run(until Time) (fired int) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > until {
			break
		}
		e.fire(ev)
		fired++
	}
	if until != Forever && e.now < until {
		e.now = until
	}
	return fired
}

// RunAll fires events until the queue drains or Stop is called. Unlike
// Run, it leaves the clock at the last fired event's instant.
func (e *Engine) RunAll() (fired int) { return e.Run(Forever) }

// Stop makes a Run in progress return after the current event completes.
// It may be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events currently queued (cancelled events
// excluded).
func (e *Engine) Pending() int { return e.nlive }

// NextAt returns the virtual time of the earliest pending event, or
// (Forever, false) if the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return Forever, false
	}
	return ev.at, true
}

func (e *Engine) alloc() *Event {
	if e.free == nil {
		return &Event{}
	}
	ev := e.free
	e.free = ev.next
	ev.next = nil
	e.nfree--
	return ev
}

func (e *Engine) release(ev *Event) {
	const maxFree = 4096
	if e.nfree >= maxFree {
		return
	}
	ev.next = e.free
	e.free = ev
	e.nfree++
}
