// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in scheduling order,
// which—together with seeded random streams (see rng.go)—makes every run
// with the same seed bit-for-bit reproducible. All Tango experiments are
// built on this property: the paper's eight-day Internet measurement is
// replaced by a virtual-time trace that can be regenerated exactly.
//
// The engine is single-goroutine by design. Simulated components never
// block; they schedule continuations instead. This mirrors how an eBPF
// program or a switch pipeline is written (run-to-completion handlers) and
// avoids all locking on the simulation hot path.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an instant in virtual time, expressed as the duration elapsed
// since the start of the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Forever is a Time later than any event a simulation will schedule.
const Forever Time = math.MaxInt64

// Event is a scheduled callback. The callback runs exactly once, at the
// scheduled virtual time, unless cancelled first.
//
// An event carries either a plain closure (fn) or a closure-free
// (handler, payload) pair — the latter is the packet fast path: a link
// schedules delivery by storing itself and the packet buffer directly in
// the event, so per-packet scheduling allocates nothing (both fields are
// single pointers; neither boxing a pointer into an interface nor the
// freelist reuse below touches the heap).
type Event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among events at the same instant
	fn      func()
	handler ArgHandler
	arg     any
	idx     int // heap index; -1 once fired or cancelled
	next    *Event
}

// ArgHandler consumes payload-carrying events scheduled with ScheduleArg.
// Implementations are long-lived objects (a link direction, a port); the
// engine stores the receiver itself in the event rather than a closure
// over it.
type ArgHandler interface {
	// OnSimEvent runs at the event's scheduled instant with the payload
	// that was scheduled. Ownership conventions for the payload are the
	// scheduler's business; a cancelled event's payload is dropped
	// without a callback.
	OnSimEvent(arg any)
}

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.idx < 0 }

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Engine is a discrete-event simulator. The zero value is not ready for
// use; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	running bool
	stopped bool
	free    *Event // freelist to avoid per-event allocation in long runs
	nfree   int

	// Stats counts engine activity; useful in tests and benchmarks.
	Stats struct {
		Scheduled uint64
		Fired     uint64
		Cancelled uint64
	}
}

// NewEngine returns an engine with the clock at the simulation epoch.
func NewEngine() *Engine {
	e := &Engine{}
	e.pq = make(eventHeap, 0, 1024)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero (fn runs at the current instant, after already-queued
// events for this instant). The returned Event may be cancelled.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if d < 0 {
		d = 0
	}
	return e.scheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past is
// an error that indicates broken component logic, so it panics.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) in the past (now %v)", t, e.now))
	}
	return e.scheduleAt(t, fn)
}

func (e *Engine) scheduleAt(t Time, fn func()) *Event {
	ev := e.push(t)
	ev.fn = fn
	return ev
}

// ScheduleArg runs h.OnSimEvent(arg) after delay d of virtual time, like
// Schedule but without a closure: the (handler, payload) pair rides the
// event itself, so scheduling through the event freelist is
// allocation-free. A negative delay is treated as zero.
func (e *Engine) ScheduleArg(d time.Duration, h ArgHandler, arg any) *Event {
	if h == nil {
		panic("sim: ScheduleArg with nil handler")
	}
	if d < 0 {
		d = 0
	}
	return e.scheduleArgAt(e.now+d, h, arg)
}

// ScheduleArgAt is ScheduleArg at an absolute virtual time. Scheduling in
// the past panics, as with ScheduleAt.
func (e *Engine) ScheduleArgAt(t Time, h ArgHandler, arg any) *Event {
	if h == nil {
		panic("sim: ScheduleArgAt with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleArgAt(%v) in the past (now %v)", t, e.now))
	}
	return e.scheduleArgAt(t, h, arg)
}

func (e *Engine) scheduleArgAt(t Time, h ArgHandler, arg any) *Event {
	ev := e.push(t)
	ev.handler = h
	ev.arg = arg
	return ev
}

func (e *Engine) push(t Time) *Event {
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.pq, ev)
	e.Stats.Scheduled++
	return ev
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.pq, ev.idx)
	ev.idx = -1
	ev.fn = nil
	ev.handler = nil
	ev.arg = nil
	e.Stats.Cancelled++
	e.release(ev)
}

// Step fires the single earliest pending event, advancing the clock to its
// instant. It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*Event)
	ev.idx = -1
	e.now = ev.at
	fn, h, arg := ev.fn, ev.handler, ev.arg
	ev.fn, ev.handler, ev.arg = nil, nil, nil
	e.release(ev)
	e.Stats.Fired++
	if fn != nil {
		fn()
	} else {
		h.OnSimEvent(arg)
	}
	return true
}

// Run fires events until the queue drains or the clock would pass until.
// It returns the number of events fired. Events scheduled exactly at until
// are fired; later ones remain queued and the clock is left at until.
func (e *Engine) Run(until Time) (fired int) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.pq) > 0 && !e.stopped {
		if e.pq[0].at > until {
			break
		}
		e.Step()
		fired++
	}
	if until != Forever && e.now < until {
		e.now = until
	}
	return fired
}

// RunAll fires events until the queue drains or Stop is called. Unlike
// Run, it leaves the clock at the last fired event's instant.
func (e *Engine) RunAll() (fired int) { return e.Run(Forever) }

// Stop makes a Run in progress return after the current event completes.
// It may be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.pq) }

// NextAt returns the virtual time of the earliest pending event, or
// (Forever, false) if the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.pq) == 0 {
		return Forever, false
	}
	return e.pq[0].at, true
}

func (e *Engine) alloc() *Event {
	if e.free == nil {
		return &Event{}
	}
	ev := e.free
	e.free = ev.next
	ev.next = nil
	e.nfree--
	return ev
}

func (e *Engine) release(ev *Event) {
	const maxFree = 4096
	if e.nfree >= maxFree {
		return
	}
	ev.next = e.free
	e.free = ev
	e.nfree++
}

// eventHeap orders events by (time, sequence number). The sequence tie-break
// guarantees FIFO execution of events scheduled for the same instant, which
// is what makes the engine deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
