package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { fired++ })
	}
	n := e.Run(3 * time.Second)
	if n != 3 || fired != 3 {
		t.Fatalf("Run(3s) fired %d/%d, want 3", n, fired)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	// Events at exactly the boundary fire.
	e2 := NewEngine()
	hit := false
	e2.Schedule(time.Second, func() { hit = true })
	e2.Run(time.Second)
	if !hit {
		t.Fatal("event at boundary did not fire")
	}
}

func TestEngineRunAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Run(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	e.Cancel(ev)
	ev2 := e.Schedule(time.Second, func() {})
	e.RunAll()
	e.Cancel(ev2)
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	e.RunAll()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			fired++
			if fired == 4 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if fired != 4 {
		t.Fatalf("fired = %d, want 4 (Stop should halt the loop)", fired)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, rec)
		}
	}
	e.Schedule(time.Millisecond, rec)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 100*time.Millisecond {
		t.Fatalf("Now = %v, want 100ms", e.Now())
	}
}

func TestEngineScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(0, func() {})
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	e.Schedule(7*time.Second, func() {})
	at, ok := e.NextAt()
	if !ok || at != 7*time.Second {
		t.Fatalf("NextAt = %v,%v", at, ok)
	}
}

// Property: for any multiset of delays, events fire in nondecreasing time
// order and the engine ends at the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		e := NewEngine()
		var fireTimes []Time
		var max time.Duration
		for _, d := range delaysRaw {
			dd := time.Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return e.Now() == max && len(fireTimes) == len(delaysRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/cancel keeps heap indices consistent —
// every non-cancelled event fires exactly once.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n)%64 + 1
		fired := make([]int, total)
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.Schedule(time.Duration(r.Intn(1000))*time.Millisecond, func() { fired[i]++ })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < total/2; i++ {
			k := r.Intn(total)
			e.Cancel(evs[k])
			cancelled[k] = true
		}
		e.RunAll()
		for i, c := range fired {
			if cancelled[i] && c != 0 {
				return false
			}
			if !cancelled[i] && c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		s := NewStreams(42)
		r := s.Stream("load")
		var times []Time
		var spawn func()
		spawn = func() {
			times = append(times, e.Now())
			if len(times) < 500 {
				e.Schedule(time.Duration(r.Intn(1000)+1)*time.Microsecond, spawn)
			}
		}
		e.Schedule(0, spawn)
		e.RunAll()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// argRecorder implements ArgHandler for tests.
type argRecorder struct {
	got []any
	ats []Time
	eng *Engine
}

func (r *argRecorder) OnSimEvent(arg any) {
	r.got = append(r.got, arg)
	r.ats = append(r.ats, r.eng.Now())
}

func TestScheduleArgDeliversPayload(t *testing.T) {
	e := NewEngine()
	r := &argRecorder{eng: e}
	e.ScheduleArg(2*time.Millisecond, r, "b")
	e.ScheduleArg(time.Millisecond, r, "a")
	e.RunAll()
	if len(r.got) != 2 || r.got[0] != "a" || r.got[1] != "b" {
		t.Fatalf("got %v", r.got)
	}
	if r.ats[0] != time.Millisecond || r.ats[1] != 2*time.Millisecond {
		t.Fatalf("fired at %v", r.ats)
	}
}

// Closure and payload events scheduled for the same instant keep FIFO
// order across the two kinds — determinism must not depend on which
// scheduling API a component uses.
func TestScheduleArgInterleavesDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	r := &argRecorder{eng: e}
	e.Schedule(time.Millisecond, func() { order = append(order, "fn1") })
	e.ScheduleArg(time.Millisecond, r, "arg1")
	e.Schedule(time.Millisecond, func() { order = append(order, "fn2") })
	e.ScheduleArg(time.Millisecond, r, "arg2")
	e.RunAll()
	if len(r.got) != 2 || r.got[0] != "arg1" || r.got[1] != "arg2" {
		t.Fatalf("arg order %v", r.got)
	}
	if len(order) != 2 || order[0] != "fn1" || order[1] != "fn2" {
		t.Fatalf("fn order %v", order)
	}
}

func TestScheduleArgCancel(t *testing.T) {
	e := NewEngine()
	r := &argRecorder{eng: e}
	ev := e.ScheduleArg(time.Millisecond, r, 42)
	e.Cancel(ev)
	e.RunAll()
	if len(r.got) != 0 {
		t.Fatalf("cancelled arg event fired: %v", r.got)
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestScheduleArgPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleArgAt in the past did not panic")
		}
	}()
	e.ScheduleArgAt(0, &argRecorder{eng: e}, nil)
}

// counterHandler counts deliveries of a pointer payload without retaining
// anything — the steady-state shape of link delivery.
type counterHandler struct{ n int }

func (c *counterHandler) OnSimEvent(any) { c.n++ }

// The packet fast path's contract: scheduling a (handler, pointer
// payload) event through the warm freelist allocates nothing.
func TestScheduleArgSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &counterHandler{}
	payload := &struct{ x int }{1}
	// Warm the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleArg(time.Microsecond, h, payload)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(time.Microsecond, h, payload)
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScheduleArg+fire allocates %v/op", allocs)
	}
	if h.n < 1064 {
		t.Fatalf("handler fired %d times", h.n)
	}
}
