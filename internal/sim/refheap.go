package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Ref is the binary-heap reference scheduler: the exact event-queue
// implementation the timing wheel replaced, preserved with the Engine's
// semantics (same (at, seq) total order, same clock rules, same negative
// and overflow delay clamps). It exists for two jobs:
//
//   - the differential property test executes random schedule/cancel/run
//     scripts against a Ref and an Engine side by side and requires
//     byte-identical fire sequences — the determinism gate for the wheel;
//   - the scheduler micro-benchmarks measure heap vs. wheel on the same
//     op mix, so BENCH.json carries the comparison on every commit.
//
// It is deliberately not pluggable into Engine: an indirection layer on
// the schedule/fire path would cost the exact nanoseconds the wheel is
// there to save.
type Ref struct {
	now  Time
	seq  uint64
	pq   refHeap
	free *RefEvent
}

// RefEvent is a Ref-scheduled callback handle.
type RefEvent struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 once fired or cancelled
	next *RefEvent
}

// At returns the virtual time the event is (or was) scheduled for.
func (e *RefEvent) At() Time { return e.at }

// Cancelled reports whether the event was cancelled or has already fired.
func (e *RefEvent) Cancelled() bool { return e.idx < 0 }

// NewRef returns a reference scheduler with the clock at the epoch.
func NewRef() *Ref {
	r := &Ref{}
	r.pq = make(refHeap, 0, 1024)
	return r
}

// Now returns the current virtual time.
func (r *Ref) Now() Time { return r.now }

// Schedule runs fn after delay d, with the Engine's clamp rules.
func (r *Ref) Schedule(d time.Duration, fn func()) *RefEvent {
	if fn == nil {
		panic("sim: Ref.Schedule with nil fn")
	}
	t := r.now
	if d > 0 {
		t += d
		if t < r.now {
			t = Forever
		}
	}
	return r.scheduleAt(t, fn)
}

// ScheduleAt runs fn at absolute time t; scheduling in the past panics.
func (r *Ref) ScheduleAt(t Time, fn func()) *RefEvent {
	if t < r.now {
		panic(fmt.Sprintf("sim: Ref.ScheduleAt(%v) in the past (now %v)", t, r.now))
	}
	return r.scheduleAt(t, fn)
}

func (r *Ref) scheduleAt(t Time, fn func()) *RefEvent {
	ev := r.alloc()
	ev.at = t
	ev.seq = r.seq
	ev.fn = fn
	r.seq++
	heap.Push(&r.pq, ev)
	return ev
}

// Cancel prevents a scheduled event from firing; no-op on a dead handle.
func (r *Ref) Cancel(ev *RefEvent) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&r.pq, ev.idx)
	ev.idx = -1
	ev.fn = nil
	r.release(ev)
}

// Step fires the earliest pending event; reports whether one fired.
func (r *Ref) Step() bool {
	if len(r.pq) == 0 {
		return false
	}
	ev := heap.Pop(&r.pq).(*RefEvent)
	ev.idx = -1
	r.now = ev.at
	fn := ev.fn
	ev.fn = nil
	r.release(ev)
	fn()
	return true
}

// Run fires events up to and including until, with Engine's clock rules.
func (r *Ref) Run(until Time) (fired int) {
	for len(r.pq) > 0 {
		if r.pq[0].at > until {
			break
		}
		r.Step()
		fired++
	}
	if until != Forever && r.now < until {
		r.now = until
	}
	return fired
}

// RunAll fires every pending event.
func (r *Ref) RunAll() (fired int) { return r.Run(Forever) }

// Pending returns the number of events queued.
func (r *Ref) Pending() int { return len(r.pq) }

// NextAt returns the earliest pending instant, or (Forever, false).
func (r *Ref) NextAt() (Time, bool) {
	if len(r.pq) == 0 {
		return Forever, false
	}
	return r.pq[0].at, true
}

func (r *Ref) alloc() *RefEvent {
	if r.free == nil {
		return &RefEvent{}
	}
	ev := r.free
	r.free = ev.next
	ev.next = nil
	return ev
}

func (r *Ref) release(ev *RefEvent) {
	ev.next = r.free
	r.free = ev
}

// refHeap orders events by (time, sequence number), exactly as the
// engine's pre-wheel heap did.
type refHeap []*RefEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*RefEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
