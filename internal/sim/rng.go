package sim

import "math/rand"

// RNG is a named, independently-seeded random stream. Components that need
// randomness (jitter models, loss processes, traffic generators) each take
// their own stream so that adding randomness to one component never
// perturbs the draws seen by another. This keeps experiments comparable
// across configurations: the "GTT instability" draws are identical whether
// or not the controller is adaptive.
type RNG struct {
	*rand.Rand
	name string
}

// Name returns the label the stream was created with.
func (r *RNG) Name() string { return r.name }

// Streams derives named RNGs from a master seed.
type Streams struct {
	seed int64
}

// NewStreams returns a factory for named random streams derived from seed.
func NewStreams(seed int64) *Streams { return &Streams{seed: seed} }

// Stream returns an independent generator for the given name. The same
// (seed, name) pair always yields the same sequence.
func (s *Streams) Stream(name string) *RNG {
	h := fnv64(name)
	// Mix the master seed with the name hash. splitmix64 finalization
	// decorrelates nearby seeds.
	x := uint64(s.seed) ^ h
	x = splitmix64(x)
	return &RNG{Rand: rand.New(rand.NewSource(int64(x))), name: name}
}

// Seed returns the master seed the factory was created with.
func (s *Streams) Seed() int64 { return s.seed }

func fnv64(name string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Normal draws a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Exp draws an exponential variate with the given mean (not rate).
func (r *RNG) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
