package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestStreamsReproducible(t *testing.T) {
	a := NewStreams(7).Stream("jitter")
	b := NewStreams(7).Stream("jitter")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, name) produced different sequences")
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	s := NewStreams(7)
	a := s.Stream("jitter")
	b := s.Stream("loss")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams %q and %q agree on %d/100 draws; not independent", a.Name(), b.Name(), same)
	}
}

func TestStreamsIndependentBySeed(t *testing.T) {
	a := NewStreams(1).Stream("x")
	b := NewStreams(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewStreams(1).Stream("b")
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(negative) returned true")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewStreams(3).Stream("b")
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) empirical rate %.4f", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewStreams(5).Stream("n")
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("Normal(10,2): mean=%.3f std=%.3f", mean, std)
	}
}

func TestExpMean(t *testing.T) {
	r := NewStreams(5).Stream("e")
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exp(3): mean=%.3f", mean)
	}
}

// Property: stream derivation is a pure function of (seed, name).
func TestStreamDerivationProperty(t *testing.T) {
	f := func(seed int64, name string) bool {
		x := NewStreams(seed).Stream(name).Uint64()
		y := NewStreams(seed).Stream(name).Uint64()
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := NewTicker(e, 10*time.Millisecond, func(now Time) {
		ticks = append(ticks, now)
	})
	e.Run(55 * time.Millisecond)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %d, want 5", len(ticks))
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop()
	e.Run(time.Second)
	if len(ticks) != 5 {
		t.Fatalf("ticker fired after Stop: %d ticks", len(ticks))
	}
	if tk.Ticks != 5 {
		t.Fatalf("Ticks = %d, want 5", tk.Ticks)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Millisecond, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestClockOffsetAndDrift(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 5*time.Second, 0)
	if c.Now() != int64(5*time.Second) {
		t.Fatalf("clock at epoch = %d", c.Now())
	}
	e.Run(time.Second)
	if c.Now() != int64(6*time.Second) {
		t.Fatalf("clock after 1s = %d", c.Now())
	}
	if c.Offset() != 5*time.Second {
		t.Fatalf("Offset = %v", c.Offset())
	}

	// 100 ppm drift over 1000 seconds = 100 ms fast.
	e2 := NewEngine()
	d := NewClock(e2, 0, 100)
	e2.Run(1000 * time.Second)
	want := int64(1000*time.Second) + int64(100*time.Millisecond)
	if d.Now() != want {
		t.Fatalf("drifting clock = %d, want %d", d.Now(), want)
	}
}

// Property: the difference between two constant-offset clocks is constant —
// the foundation of Tango's relative one-way-delay argument.
func TestClockOffsetInvariantProperty(t *testing.T) {
	f := func(offA, offB int32, steps uint8) bool {
		e := NewEngine()
		a := NewClock(e, time.Duration(offA)*time.Microsecond, 0)
		b := NewClock(e, time.Duration(offB)*time.Microsecond, 0)
		first := a.Now() - b.Now()
		for i := 0; i < int(steps); i++ {
			e.Run(e.Now() + time.Millisecond)
			if a.Now()-b.Now() != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
