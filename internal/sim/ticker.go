package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the building block for probe generators and controller decision
// loops. The callback receives the tick's virtual time.
type Ticker struct {
	eng    *Engine
	period time.Duration
	fn     func(Time)
	ev     *Event
	stop   bool
	Ticks  uint64
}

// NewTicker schedules fn every period, with the first tick after one full
// period. Period must be positive.
func NewTicker(eng *Engine, period time.Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.Ticks++
		t.fn(t.eng.Now())
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call from inside the callback.
func (t *Ticker) Stop() {
	t.stop = true
	t.eng.Cancel(t.ev)
}

// Clock is a node-local wall clock: virtual time plus a constant offset and
// an optional linear drift. Tango's one-way-delay measurement reads the
// sender clock when encapsulating and the receiver clock when
// decapsulating; modelling per-node offsets lets tests verify the paper's
// claim that a constant offset cancels out of path *comparisons*.
type Clock struct {
	eng    *Engine
	offset time.Duration
	// DriftPPM is clock drift in parts-per-million of elapsed virtual
	// time. Zero for the experiments in the paper (constant offset).
	driftPPM float64
}

// NewClock returns a clock reading eng.Now() + offset (+ drift).
func NewClock(eng *Engine, offset time.Duration, driftPPM float64) *Clock {
	return &Clock{eng: eng, offset: offset, driftPPM: driftPPM}
}

// Now returns the node-local wall-clock reading in nanoseconds.
func (c *Clock) Now() int64 {
	t := int64(c.eng.Now())
	d := int64(float64(t) * c.driftPPM / 1e6)
	return t + int64(c.offset) + d
}

// Offset returns the configured constant offset.
func (c *Clock) Offset() time.Duration { return c.offset }
