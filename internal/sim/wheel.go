package sim

import "math/bits"

// Hierarchical timing wheel: the engine's pending-event store.
//
// The classic DES priority queue (container/heap) pays O(log n) pointer
// chasing per schedule and per fire. The wheel replaces that with O(1)
// bucket arithmetic, the same structure ns-3's calendar queue and the
// kernel's timer wheel use, adapted to exact virtual time:
//
//   - Virtual time is quantized into granules of 2^granBits ns. Level 0
//     has one bucket per granule across a 64-granule window; each higher
//     level widens its buckets by 64×, so numLevels levels cover
//     64^numLevels granules (≈9 years of virtual time at 1 µs granules).
//     Anything beyond that horizon waits on an overflow chain.
//   - An event's bucket is derived from the highest 6-bit digit in which
//     its granule index differs from the cursor's ("base"): digit L
//     differs → level L, slot = that digit. Events in the same bucket are
//     chained through Event.next (unordered — chains are prepend-only, so
//     insertion allocates nothing and touches one pointer).
//   - The cursor only moves forward. Entering a region cascades that
//     region's bucket into lower levels; expiring a level-0 bucket sorts
//     its chain by (at, seq) into the "due" chain the engine fires from.
//
// Exactness is what distinguishes this wheel from the kernel's: a timer
// wheel may fire late by up to a bucket width, but a DES scheduler must
// fire every event at its exact (at, seq) position or replay determinism
// breaks. The due-chain sort restores the total order that bucketing
// coarsened, and two invariants keep the order global rather than merely
// per-bucket:
//
//	inv-1  every bucketed event's granule index is ≥ base, and every
//	       due-chain event's is < base, so the sorted due chain strictly
//	       precedes everything still in buckets (granule(at) < base
//	       ⇒ at < base<<granBits ≤ any bucketed event's at);
//	inv-2  the cursor never moves past an occupied bucket: before the
//	       level-0 window is scanned, any bucket sitting at the cursor's
//	       own digit of a higher level (a region the cursor has entered,
//	       whose events may be due anywhere inside it) is cascaded down,
//	       and the cursor only jumps to the earliest occupied slot of the
//	       lowest non-empty level, which always precedes every slot of
//	       the levels above it.
//
// Same-instant FIFO comes out of the (at, seq) sort: seq is assigned in
// scheduling order and tie-breaks equal timestamps exactly as the old
// heap's comparison did, so the wheel fires the byte-identical sequence.
const (
	granBits    = 10 // level-0 bucket width: 2^10 ns ≈ 1 µs of virtual time
	levelBits   = 6  // 64 buckets per level
	wheelSlots  = 1 << levelBits
	slotMask    = wheelSlots - 1
	numLevels   = 8                     // 48 bits of granules ≈ 9.1 years
	horizonBits = numLevels * levelBits // granule deltas ≥ 2^48 overflow
)

type wheelLevel struct {
	slot     [wheelSlots]*Event
	occupied uint64 // bit s set ⇔ slot[s] != nil
}

type wheel struct {
	level [numLevels]wheelLevel
	// base is the cursor: the granule index the wheel has advanced to.
	// Monotonically non-decreasing; all bucketed events live at granule
	// ≥ base (inv-1).
	base int64
	// due is the sorted (at, seq) chain the engine fires from: every
	// pending event whose granule precedes base. dueTail makes the
	// common same-instant append O(1).
	due     *Event
	dueTail *Event
	// overflow chains events beyond the wheel horizon (notably timers
	// clamped to Forever). overflowMin tracks the earliest granule on the
	// chain so an exhausted wheel can rebase onto it.
	overflow    *Event
	overflowMin int64
}

func granule(t Time) int64 { return int64(t) >> granBits }

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// place files ev into the due chain, a bucket, or the overflow chain,
// according to where its granule falls relative to the cursor.
func (w *wheel) place(ev *Event) {
	u := granule(ev.at)
	if u < w.base {
		w.insertDue(ev)
		return
	}
	x := uint64(u ^ w.base)
	if bits.Len64(x) > horizonBits {
		if w.overflow == nil || u < w.overflowMin {
			w.overflowMin = u
		}
		ev.next = w.overflow
		w.overflow = ev
		return
	}
	l := 0
	if x != 0 {
		l = (bits.Len64(x) - 1) / levelBits
	}
	s := (u >> (uint(l) * levelBits)) & slotMask
	lv := &w.level[l]
	ev.next = lv.slot[s]
	lv.slot[s] = ev
	lv.occupied |= 1 << uint(s)
}

// insertDue splices ev into the sorted due chain at its (at, seq)
// position. Events scheduled for the current instant carry the largest
// seq so far, so the overwhelmingly common case is an O(1) tail append;
// mid-chain positions (an event scheduled into an earlier granule than
// the chain's tail) take a walk from the head.
func (w *wheel) insertDue(ev *Event) {
	tail := w.dueTail
	if tail == nil {
		ev.next = nil
		w.due, w.dueTail = ev, ev
		return
	}
	if eventLess(tail, ev) {
		ev.next = nil
		tail.next = ev
		w.dueTail = ev
		return
	}
	if eventLess(ev, w.due) {
		ev.next = w.due
		w.due = ev
		return
	}
	p := w.due
	for p.next != nil && eventLess(p.next, ev) {
		p = p.next
	}
	ev.next = p.next
	p.next = ev
	if ev.next == nil {
		w.dueTail = ev
	}
}

// popDue unlinks and returns the due chain's head (nil if empty).
func (w *wheel) popDue() *Event {
	ev := w.due
	if ev == nil {
		return nil
	}
	w.due = ev.next
	if w.due == nil {
		w.dueTail = nil
	}
	ev.next = nil
	return ev
}

// take detaches and returns slot s of level l.
func (w *wheel) take(l, s int) *Event {
	lv := &w.level[l]
	chain := lv.slot[s]
	lv.slot[s] = nil
	lv.occupied &^= 1 << uint(s)
	return chain
}

// refill advances the cursor to the next occupied bucket, cascading
// higher levels as regions are entered, and loads that bucket — sorted,
// tombstones dropped — into the due chain. It reports whether any live
// event became due. It never touches the clock: calling it early (NextAt
// peeking ahead) only moves events between buckets, which cannot change
// the (at, seq) fire order.
func (w *wheel) refill(e *Engine) bool {
	if e.nlive+e.ntomb == 0 {
		return false
	}
	for {
		// inv-2, part 1: cascade any occupied bucket at the cursor's own
		// digit, lowest level first. Such a bucket covers a region the
		// cursor already entered, so its events may precede anything the
		// level-0 window holds.
		cascaded := false
		for l := 1; l < numLevels; l++ {
			d := (w.base >> (uint(l) * levelBits)) & slotMask
			if w.level[l].occupied&(1<<uint(d)) != 0 {
				w.drain(e, l, int(d))
				cascaded = true
				break
			}
		}
		if cascaded {
			continue
		}
		// Level-0 window: earliest occupied slot at or after the cursor.
		if m := w.level[0].occupied &^ (1<<uint(w.base&slotMask) - 1); m != 0 {
			k := int64(bits.TrailingZeros64(m))
			u := w.base&^slotMask | k
			chain := w.take(0, int(k))
			w.base = u + 1
			e.sortIntoDue(chain)
			if w.due != nil {
				return true
			}
			continue // bucket held only tombstones
		}
		// inv-2, part 2: the level-0 window is empty, so jump the cursor
		// to the earliest occupied slot of the lowest non-empty level and
		// cascade it. A lower level's next slot always starts before any
		// higher level's (its buckets subdivide the region the higher
		// slot has yet to reach), so scanning upward finds the true next.
		jumped := false
		for l := 1; l < numLevels; l++ {
			shift := uint(l) * levelBits
			d := (w.base >> shift) & slotMask
			m := w.level[l].occupied &^ (1<<uint(d+1) - 1)
			if m == 0 {
				continue
			}
			k := int64(bits.TrailingZeros64(m))
			span := int64(1) << (shift + levelBits)
			w.base = w.base&^(span-1) | k<<shift
			w.drain(e, l, int(k))
			jumped = true
			break
		}
		if jumped {
			continue
		}
		// Wheel exhausted: rebase onto the overflow chain if it holds
		// anything (Forever timers, multi-year delays).
		if w.overflow != nil {
			w.rebase(e)
			continue
		}
		return false
	}
}

// drain cascades bucket (l, s) into lower levels (or the due chain),
// reclaiming tombstones on the way. Every event re-places strictly below
// level l because its granule now shares digit l with the cursor.
func (w *wheel) drain(e *Engine, l, s int) {
	chain := w.take(l, s)
	for chain != nil {
		ev := chain
		chain = chain.next
		if ev.state < 0 {
			e.reclaim(ev)
			continue
		}
		w.place(ev)
	}
}

// rebase moves the cursor to the overflow chain's earliest granule and
// re-places the chain; events still beyond the new horizon re-overflow
// (place retracks overflowMin).
func (w *wheel) rebase(e *Engine) {
	if w.overflowMin > w.base {
		w.base = w.overflowMin
	}
	chain := w.overflow
	w.overflow = nil
	for chain != nil {
		ev := chain
		chain = chain.next
		if ev.state < 0 {
			e.reclaim(ev)
			continue
		}
		w.place(ev)
	}
}

// mergeSortEvents sorts a bucket chain by (at, seq) — bottom-up merge
// sort on the links themselves: O(n log n), no allocation, no recursion,
// so a ten-thousand-event storm bucket sorts without growing the stack.
func mergeSortEvents(list *Event) *Event {
	if list == nil || list.next == nil {
		return list
	}
	k := 1
	for {
		p := list
		list = nil
		var tail *Event
		merges := 0
		for p != nil {
			merges++
			q := p
			psize := 0
			for i := 0; i < k && q != nil; i++ {
				q = q.next
				psize++
			}
			qsize := k
			for psize > 0 || (qsize > 0 && q != nil) {
				var ev *Event
				switch {
				case psize == 0:
					ev = q
					q = q.next
					qsize--
				case qsize == 0 || q == nil:
					ev = p
					p = p.next
					psize--
				case eventLess(q, p):
					ev = q
					q = q.next
					qsize--
				default:
					ev = p
					p = p.next
					psize--
				}
				if tail != nil {
					tail.next = ev
				} else {
					list = ev
				}
				tail = ev
			}
			p = q
		}
		tail.next = nil
		if merges <= 1 {
			return list
		}
		k *= 2
	}
}
