package sim

import (
	"math"
	"testing"
	"time"
)

// Tests in this file target the timing-wheel internals through the public
// Engine API: level-boundary placement, own-digit cascades, cursor jumps
// across empty windows, overflow rebase, the overflow clamp on Schedule,
// and the lazy-cancellation sweep. The differential test (differential_
// test.go) covers the same machinery with random scripts; these pin down
// the named edge cases so a regression points straight at the broken path.

// gran converts a granule index into the Time at that granule's start.
func gran(u int64) Time { return Time(u << granBits) }

// collectFires runs the engine dry and returns each fired event's instant.
func collectFires(t *testing.T, e *Engine, fns []func()) []Time {
	t.Helper()
	var got []Time
	for _, fn := range fns {
		fn() // schedule
	}
	for e.Step() {
		got = append(got, e.Now())
	}
	return got
}

func wantOrder(t *testing.T, got, want []Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d (got %v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v (full: %v)", i, got[i], want[i], want)
		}
	}
}

// Events on both sides of a level-1 region boundary must fire in time
// order even though they are filed at different wheel levels: granule 63
// sits in level 0's initial window while granules 64..127 start life in a
// level-1 bucket that the cursor must cascade when it crosses into the
// region (the own-digit cascade, inv-2 part 1).
func TestWheelLevelBoundaryCascade(t *testing.T) {
	e := NewEngine()
	at := []Time{gran(127) + 5, gran(64), gran(63), gran(64) + 1, gran(65)}
	var got []Time
	for _, a := range at {
		a := a
		e.ScheduleAt(a, func() { got = append(got, a) })
	}
	for e.Step() {
	}
	wantOrder(t, got, []Time{gran(63), gran(64), gran(64) + 1, gran(65), gran(127) + 5})
	if n := e.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after drain", n)
	}
}

// Placement boundaries per level: the last instant covered by level l and
// the first instant of level l+1 are adjacent in time and must fire
// adjacently, for every level the wheel has.
func TestWheelEveryLevelBoundary(t *testing.T) {
	e := NewEngine()
	var want []Time
	for l := 0; l < numLevels; l++ {
		edge := Time(int64(1) << (granBits + uint(l+1)*levelBits))
		if edge > Forever/2 {
			break
		}
		want = append(want, edge-1, edge, edge+1)
	}
	var got []Time
	for _, a := range want {
		a := a
		e.ScheduleAt(a, func() { got = append(got, a) })
	}
	for e.Step() {
	}
	wantOrder(t, got, want)
}

// An empty level-0 window must not be scanned granule by granule: the
// cursor jumps straight to the earliest occupied slot of the lowest
// non-empty level (inv-2 part 2). The jump must pick the lower level even
// when a higher level is also occupied, and NextAt must report the exact
// instant without advancing the clock.
func TestWheelJumpAcrossEmptyWindow(t *testing.T) {
	e := NewEngine()
	near := Time(int64(1) << (granBits + levelBits + 3))  // level 1 territory
	far := Time(int64(3) << (granBits + 4*levelBits + 1)) // level 4 territory
	var got []Time
	e.ScheduleAt(far, func() { got = append(got, far) })
	e.ScheduleAt(near, func() { got = append(got, near) })
	if at, ok := e.NextAt(); !ok || at != near {
		t.Fatalf("NextAt() = %v, %v; want %v, true", at, ok, near)
	}
	if e.Now() != 0 {
		t.Fatalf("NextAt advanced the clock to %v", e.Now())
	}
	for e.Step() {
	}
	wantOrder(t, got, []Time{near, far})
}

// After NextAt has pulled the cursor forward to a far event's region, a
// schedule into an already-passed granule must still fire first: it lands
// on the sorted due chain ahead of the far event (inv-1).
func TestWheelScheduleBehindCursor(t *testing.T) {
	e := NewEngine()
	far := Time(int64(1) << (granBits + 2*levelBits))
	var got []Time
	e.ScheduleAt(far, func() { got = append(got, far) })
	if at, _ := e.NextAt(); at != far {
		t.Fatalf("NextAt() = %v, want %v", at, far)
	}
	near := gran(2) + 7
	e.ScheduleAt(near, func() { got = append(got, near) })
	if at, _ := e.NextAt(); at != near {
		t.Fatalf("NextAt() after behind-cursor schedule = %v, want %v", at, near)
	}
	for e.Step() {
	}
	wantOrder(t, got, []Time{near, far})
}

// Events beyond the wheel horizon wait on the overflow chain; once the
// wheel drains, the cursor rebases onto the chain and the events fire at
// their exact instants, in order — including a second-generation overflow
// that is beyond the horizon even from the rebased cursor.
func TestWheelOverflowRebase(t *testing.T) {
	e := NewEngine()
	horizon := int64(1) << (granBits + horizonBits)
	within := Time(int64(5) << (granBits + 3*levelBits))
	over1 := Time(horizon + int64(gran(3)))
	over2 := Time(2*horizon + 12345)
	var got []Time
	for _, a := range []Time{over2, within, over1} {
		a := a
		e.ScheduleAt(a, func() { got = append(got, a) })
	}
	for e.Step() {
	}
	wantOrder(t, got, []Time{within, over1, over2})
}

// Regression for the virtual-time overflow: before the deadline clamp,
// now+d wrapped negative for delays near MaxInt64 and the event either
// fired immediately (ahead of genuinely earlier events) or corrupted the
// queue order. Huge delays must clamp to Forever, fire last, and only
// under Run(Forever).
func TestScheduleOverflowClampsToForever(t *testing.T) {
	e := NewEngine()
	e.Run(50 * time.Millisecond) // now > 0 so now+MaxInt64 definitely wraps
	var got []string
	evHuge := e.Schedule(math.MaxInt64-1, func() { got = append(got, "huge") })
	if evHuge.At() != Forever {
		t.Fatalf("huge delay scheduled at %v, want Forever", evHuge.At())
	}
	e.Schedule(time.Millisecond, func() { got = append(got, "soon") })
	e.Run(time.Second)
	if len(got) != 1 || got[0] != "soon" {
		t.Fatalf("after Run(1s) fired %v, want [soon]", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the Forever event", e.Pending())
	}
	e.RunAll()
	if len(got) != 2 || got[1] != "huge" {
		t.Fatalf("after RunAll fired %v, want [soon huge]", got)
	}
	if e.Now() != Forever {
		t.Fatalf("clock at %v after firing Forever event", e.Now())
	}
}

// The same clamp must protect the closure-free path.
func TestScheduleArgOverflowClampsToForever(t *testing.T) {
	e := NewEngine()
	e.Run(time.Millisecond)
	h := &recordingHandler{}
	ev := e.ScheduleArg(math.MaxInt64, h, "late")
	if ev.At() != Forever {
		t.Fatalf("ScheduleArg huge delay at %v, want Forever", ev.At())
	}
}

type recordingHandler struct{ args []any }

func (r *recordingHandler) OnSimEvent(arg any) { r.args = append(r.args, arg) }

// Lazy cancellation: cancelling is O(1) tombstoning, Pending drops
// immediately, and once tombstones cross the sweep thresholds they are
// reclaimed in bulk without firing anything.
func TestLazyCancelSweep(t *testing.T) {
	e := NewEngine()
	n := sweepMinTombstones + sweepMinTombstones/2
	evs := make([]*Event, n)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Hour, func() { t.Fatal("cancelled event fired") })
	}
	for _, ev := range evs {
		e.Cancel(ev)
		if !ev.Cancelled() {
			t.Fatal("Cancel did not mark the event")
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancelling everything", e.Pending())
	}
	if e.Stats.Swept == 0 {
		t.Fatalf("no deferred sweep ran after %d cancels (threshold %d)", n, sweepMinTombstones)
	}
	if fired := e.RunAll(); fired != 0 {
		t.Fatalf("RunAll fired %d cancelled events", fired)
	}
}

// A sweep must preserve the survivors and their order: interleave live and
// cancelled events across several levels, trigger the sweep, and verify
// the live ones still fire exactly in (at, seq) order.
func TestSweepPreservesSurvivors(t *testing.T) {
	e := NewEngine()
	var want []Time
	var doomed []*Event
	for i := 0; i < 2*sweepMinTombstones; i++ {
		at := Time(i+1) * Time(37*time.Microsecond) // spreads across levels 0-2
		if i%8 == 0 {
			want = append(want, at)
			e.ScheduleAt(at, func() {})
		} else {
			doomed = append(doomed, e.ScheduleAt(at, func() {}))
		}
	}
	for _, ev := range doomed {
		e.Cancel(ev)
	}
	if e.Stats.Swept == 0 {
		t.Fatal("expected a deferred sweep")
	}
	var got []Time
	for e.Step() {
		got = append(got, e.Now())
	}
	wantOrder(t, got, want)
}

// NextAt must skip a cancelled head: cancel the earliest event and the
// next-earliest becomes the answer, even after the cancelled one had
// already been surfaced to the due chain by a prior NextAt.
func TestNextAtSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	if at, _ := e.NextAt(); at != time.Millisecond {
		t.Fatalf("NextAt() = %v, want 1ms", at)
	}
	e.Cancel(first)
	if at, _ := e.NextAt(); at != 2*time.Millisecond {
		t.Fatalf("NextAt() after cancel = %v, want 2ms", at)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

// Same-granule events keep FIFO order through the bucket sort even when
// they arrive interleaved with cancels in the same bucket.
func TestWheelSameGranuleFIFOWithCancels(t *testing.T) {
	e := NewEngine()
	at := gran(40) + 3
	var got []int
	var cancels []*Event
	for i := 0; i < 32; i++ {
		i := i
		if i%3 == 1 {
			cancels = append(cancels, e.ScheduleAt(at, func() { t.Fatal("cancelled fired") }))
		} else {
			e.ScheduleAt(at, func() { got = append(got, i) })
		}
	}
	for _, ev := range cancels {
		e.Cancel(ev)
	}
	e.RunAll()
	want := 0
	for i := 0; i < 32; i++ {
		if i%3 == 1 {
			continue
		}
		if got[want] != i {
			t.Fatalf("same-granule FIFO broken: position %d fired #%d, want #%d", want, got[want], i)
		}
		want++
	}
}
