package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

func TestCapacitySerialization(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	// 8000 bits/s: the 60-byte test packet takes 60ms to serialize.
	w.Connect(a, b, LinkConfig{CapacityBps: 8000}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	var times []sim.Time
	b.SetHandler(func([]byte) { times = append(times, w.Now()) })

	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)
	a.Inject(pkt)
	a.Inject(append([]byte{}, pkt...))
	w.Run(time.Second)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != 60*time.Millisecond || times[1] != 120*time.Millisecond {
		t.Fatalf("delivery times %v, want [60ms 120ms]", times)
	}
}

// TestCapacityDelaysButNeverDrops is the contract that separates
// capacity from bandwidth: overload builds queueing delay, not loss.
func TestCapacityDelaysButNeverDrops(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{CapacityBps: 8000}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	const n = 25
	for i := 0; i < n; i++ {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	}
	w.Run(10 * time.Second)
	line := w.Links()[0].LineAB()
	if got != n || line.Stats.Dropped != 0 {
		t.Fatalf("delivered %d (want %d), dropped %d (want 0)", got, n, line.Stats.Dropped)
	}
	if line.Capacity() != 8000 {
		t.Fatalf("Capacity() = %v, want 8000", line.Capacity())
	}
}

func TestCapacityAllowedOnCrossPartitionLinks(t *testing.T) {
	const la = 10 * time.Millisecond
	w := NewSharded(1, 2, la, func(name string) int {
		if name == "b" {
			return 1
		}
		return 0
	})
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	// Bandwidth panics on a cross link (queue state straddles the
	// barrier); capacity must be accepted — its clock is send-side only.
	cfg := LinkConfig{Delay: FixedDelay(la), CapacityBps: 8000}
	w.Connect(a, b, cfg, LinkConfig{Delay: FixedDelay(la)})

	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	var times []sim.Time
	b.SetHandler(func([]byte) { times = append(times, b.Eng().Now()) })

	w.Coord().EnterParallel()
	a.Eng().ScheduleAt(sim.Time(time.Millisecond), func() {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	})
	w.Run(sim.Time(500 * time.Millisecond))
	// 60 bytes at 8000bps = 60ms serialization each, plus 10ms
	// propagation: back-to-back sends land 60ms apart.
	want := []sim.Time{sim.Time(71 * time.Millisecond), sim.Time(131 * time.Millisecond)}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("delivery times %v, want %v", times, want)
	}
	if w.LeasedBufs() != 0 {
		t.Fatalf("leaked %d buffers", w.LeasedBufs())
	}
}

func TestCapacityBandwidthMutuallyExclusive(t *testing.T) {
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		fn()
	}
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	mustPanic(func() {
		w.Connect(a, b, LinkConfig{BandwidthBps: 1e6, CapacityBps: 1e6}, LinkConfig{})
	})
	lk := w.Connect(a, b, LinkConfig{BandwidthBps: 1e6}, LinkConfig{})
	mustPanic(func() { lk.LineAB().SetCapacity(1e6) })
	// The reverse line has no bandwidth: capacity installs fine and can
	// be cleared again.
	lk.LineBA().SetCapacity(1e6)
	if lk.LineBA().Capacity() != 1e6 {
		t.Fatal("SetCapacity did not take")
	}
	lk.LineBA().SetCapacity(0)
}

func TestTakeUtilizationWindows(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{CapacityBps: 8000}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	b.SetHandler(func([]byte) {})
	line := w.Links()[0].LineAB()

	a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)) // 60 bytes
	w.Run(time.Second)
	// 480 bits offered over a 1s window at 8000 bps capacity = 6%.
	if u := line.TakeUtilization(w.Now()); u < 0.0599 || u > 0.0601 {
		t.Fatalf("utilization %v, want 0.06", u)
	}
	// The window restarted: an idle second reads zero.
	w.Run(2 * time.Second)
	if u := line.TakeUtilization(w.Now()); u != 0 {
		t.Fatalf("idle window utilization %v, want 0", u)
	}
	// Empty windows and uncapacitated lines report zero, not NaN.
	if u := line.TakeUtilization(w.Now()); u != 0 {
		t.Fatalf("empty window utilization %v, want 0", u)
	}
	uncap := w.Links()[0].LineBA()
	if u := uncap.TakeUtilization(w.Now()); u != 0 {
		t.Fatalf("uncapacitated utilization %v, want 0", u)
	}
}
