package simnet

import (
	"testing"
	"time"

	"tango/internal/transport/transporttest"
)

// TestEndpointConformance runs the shared transport.Endpoint suite
// against a simulated node: the same tests internal/transport/udp runs
// against the socket backend, so the two implementations cannot drift
// apart behind the interface.
func TestEndpointConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		w := New(1)
		n := w.AddNode("ep", 0)
		return &transporttest.Harness{
			EP: n,
			// The suite runs single-goroutine like the simulation itself,
			// so event context is just "now".
			Do:    func(fn func()) { fn() },
			Sleep: func(d time.Duration) { w.Run(w.Now() + d) },
		}
	})
}
