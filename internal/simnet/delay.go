// Package simnet is a packet-level wide-area network simulator built on
// the deterministic event engine in internal/sim.
//
// It stands in for the public Internet core in the paper's evaluation:
// nodes are hosts and routers (one router per transit AS point of
// presence), links carry real packet bytes with configurable propagation
// delay, jitter, loss, and bandwidth, and each node has its own wall
// clock (constant offset from virtual time) so that one-way-delay
// measurement behaves exactly as it does between unsynchronised machines.
//
// Delay models are mutable at runtime; the events package uses that to
// inject the paper's Figure-4 incidents (an internal routing change that
// shifts a provider's delay floor by +5 ms, and a 5-minute instability
// window with latency spikes) into a running simulation.
package simnet

import (
	"time"

	"tango/internal/sim"
)

// DelayModel produces per-packet one-way propagation delays for one
// direction of a link.
type DelayModel interface {
	// Sample returns the next packet's propagation delay. Implementations
	// draw from rng so runs are reproducible.
	Sample(now sim.Time, rng *sim.RNG) time.Duration
}

// MinDelayer is implemented by delay models with a known propagation
// floor. The sharded simulation requires it on cross-partition links: the
// floor proves no packet can cross a partition boundary faster than the
// coordinator's lookahead. Runtime mutations (shaper offsets, chaos delay
// shifts) only ever add delay, so the construction-time floor stays a
// valid lower bound for the whole run.
type MinDelayer interface {
	MinDelay() time.Duration
}

// FixedDelay is a constant propagation delay.
type FixedDelay time.Duration

// Sample implements DelayModel.
func (d FixedDelay) Sample(sim.Time, *sim.RNG) time.Duration { return time.Duration(d) }

// MinDelay implements MinDelayer.
func (d FixedDelay) MinDelay() time.Duration { return time.Duration(d) }

// GaussianDelay models a link with a hard propagation floor and normally
// distributed queueing jitter above it. Samples below Floor are clamped:
// physics guarantees a path is never faster than its propagation delay,
// which is why measured one-way delays show the sharp minimum the paper's
// Figure 4 exhibits.
type GaussianDelay struct {
	Floor time.Duration // propagation minimum
	Mean  time.Duration // mean of the distribution (>= Floor)
	Std   time.Duration // standard deviation of the jitter
}

// Sample implements DelayModel.
func (d GaussianDelay) Sample(_ sim.Time, rng *sim.RNG) time.Duration {
	v := time.Duration(rng.Normal(float64(d.Mean), float64(d.Std)))
	if v < d.Floor {
		v = d.Floor
	}
	return v
}

// MinDelay implements MinDelayer.
func (d GaussianDelay) MinDelay() time.Duration { return d.Floor }

// SpikeDelay adds a heavy upper tail: with probability Prob a packet is
// delayed by an extra Exp(Mean) capped at Cap. Layered over a base model
// it reproduces the "period of network instability" in Figure 4 (right),
// where most packets ride near the floor but spikes reach 78 ms.
type SpikeDelay struct {
	Base DelayModel
	Prob float64       // per-packet spike probability
	Mean time.Duration // mean extra delay of a spike
	Cap  time.Duration // maximum extra delay
}

// Sample implements DelayModel.
func (d SpikeDelay) Sample(now sim.Time, rng *sim.RNG) time.Duration {
	v := d.Base.Sample(now, rng)
	if rng.Bernoulli(d.Prob) {
		extra := time.Duration(rng.Exp(float64(d.Mean)))
		if d.Cap > 0 && extra > d.Cap {
			extra = d.Cap
		}
		v += extra
	}
	return v
}

// MinDelay implements MinDelayer when the base model does: spikes only
// ever add delay on top of the base sample.
func (d SpikeDelay) MinDelay() time.Duration {
	if md, ok := d.Base.(MinDelayer); ok {
		return md.MinDelay()
	}
	return 0
}

// Shaper is a mutable wrapper around a DelayModel. It is the control
// surface for scenario events: the base model can be swapped, a constant
// offset added (E4's +5 ms route shift), or the whole path taken down.
// The zero offset/overlay state is a transparent pass-through.
type Shaper struct {
	base    DelayModel
	overlay DelayModel // when non-nil, replaces base entirely
	offset  time.Duration
}

// NewShaper wraps base.
func NewShaper(base DelayModel) *Shaper { return &Shaper{base: base} }

// Sample implements DelayModel.
func (s *Shaper) Sample(now sim.Time, rng *sim.RNG) time.Duration {
	m := s.base
	if s.overlay != nil {
		m = s.overlay
	}
	return m.Sample(now, rng) + s.offset
}

// SetOffset adds a constant to every sampled delay (e.g. an intra-provider
// reroute that lengthens the physical path).
func (s *Shaper) SetOffset(d time.Duration) { s.offset = d }

// Offset returns the current constant offset.
func (s *Shaper) Offset() time.Duration { return s.offset }

// SetOverlay replaces the base model until cleared (nil restores base).
func (s *Shaper) SetOverlay(m DelayModel) { s.overlay = m }

// SwapBase replaces the base model permanently and returns the previous
// one, so a fault injector can restore it when the fault reverts. Unlike
// SetOverlay it composes with an overlay already in place.
func (s *Shaper) SwapBase(m DelayModel) DelayModel {
	old := s.base
	s.base = m
	return old
}

// Base returns the wrapped base model.
func (s *Shaper) Base() DelayModel { return s.base }
