package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
)

func TestNodeLocalOut(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{Delay: FixedDelay(time.Millisecond)}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	pay := packet.Payload([]byte("via LocalOut"))
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8::a"), Dst: dst}
	if err := a.LocalOut(ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	w.Run(time.Second)
	if got != 1 {
		t.Fatal("LocalOut packet not delivered")
	}
	// Serialization errors surface.
	bad := &packet.IPv6{Src: netip.MustParseAddr("10.0.0.1"), Dst: dst}
	if err := a.LocalOut(bad, udp, &pay); err == nil {
		t.Fatal("invalid layer accepted")
	}
}

func TestNodeSchedule(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	fired := false
	a.Schedule(10*time.Millisecond, func() { fired = true })
	w.Run(time.Second)
	if !fired {
		t.Fatal("node-scoped schedule did not fire")
	}
	if a.OwnsAddr(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("OwnsAddr false positive")
	}
	a.AddAddr(netip.MustParseAddr("2001:db8::1"))
	if !a.OwnsAddr(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("OwnsAddr false negative")
	}
}

func TestSetRouteValidation(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{}, LinkConfig{})
	for name, fn := range map[string]func(){
		"no ports":     func() { a.SetRoute(addr.MustParsePrefix("::/0")) },
		"foreign port": func() { a.SetRoute(addr.MustParsePrefix("::/0"), b.Ports()[0]) },
		"self link":    func() { w.Connect(a, a, LinkConfig{}, LinkConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	if a.FIBLen() != 0 {
		t.Fatal("FIBLen after failed inserts")
	}
}

func TestDelRoute(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{}, LinkConfig{})
	p := addr.MustParsePrefix("2001:db8::/32")
	a.SetRoute(p, a.Ports()[0])
	if !a.DelRoute(p) || a.DelRoute(p) {
		t.Fatal("DelRoute semantics wrong")
	}
}
