package simnet

import (
	"fmt"
	"time"

	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
)

// LineStats counts one direction of a link.
type LineStats struct {
	Tx      uint64
	Rx      uint64
	Lost    uint64
	Dropped uint64 // queue overflow
	Bytes   uint64
}

// Line is one direction of a Link: a delay model, an optional loss
// process, an optional bandwidth with a bounded FIFO queue, an optional
// capacity (serialization only, no queue bound — the TE layer's model),
// and an administrative up/down state.
type Line struct {
	from, to *Port
	shaper   *Shaper
	lossProb float64
	// bandwidthBps of 0 means infinite (no serialization delay, no queue).
	bandwidthBps float64
	// capBps models bits-per-virtual-second serialization without a
	// bounded queue: packets are never dropped, they just wait behind
	// busyUntil. All its state lives on the send side, so — unlike
	// bandwidthBps — it is legal on cross-partition lines.
	capBps     float64
	queueLimit int // max packets in flight waiting for serialization
	queued     int
	busyUntil  sim.Time
	// utilMark/utilSince anchor the TakeUtilization window.
	utilMark  uint64
	utilSince sim.Time
	down      bool
	// cross marks a line whose endpoints live on different partitions of a
	// sharded network; deliveries then ride the coordinator's outboxes.
	cross bool

	rngDelay *sim.RNG
	rngLoss  *sim.RNG

	// OnAdminChange, when non-nil, fires on every SetDown transition
	// (fault injectors observe flaps without polling). OnLossChange fires
	// on every SetLoss with old and new probability.
	OnAdminChange func(down bool)
	OnLossChange  func(old, new float64)

	// obsName/obsDrop/journal are set by Instrument; the drop counter
	// and journal methods are nil-safe, so uninstrumented lines pay
	// nothing on the packet path.
	obsName string
	obsDrop *obs.Counter
	journal *obs.Journal

	Stats LineStats
}

// Instrument wires the line's drop accounting to an observability
// counter and, optionally, a trace journal: every packet refused at
// admission (administratively down or queue overflow) increments the
// counter and appends a queue_drop record named after the line.
func (l *Line) Instrument(name string, drop *obs.Counter, j *obs.Journal) {
	l.obsName = name
	l.obsDrop = drop
	l.journal = j
}

// recordDrop accounts one admission drop to the instruments.
func (l *Line) recordDrop(size int) {
	if l.obsDrop == nil && l.journal == nil {
		return
	}
	l.obsDrop.Inc()
	l.journal.Record(l.from.node.eng.Now(), obs.KindQueueDrop, 0, 0, int64(size), l.obsName)
}

// Eng returns the engine owning this direction's send side — the from-
// node's partition engine. Events that mutate the line (shaper changes,
// admin flaps) must be scheduled here.
func (l *Line) Eng() *sim.Engine { return l.from.node.eng }

// Shaper returns the mutable delay shaper for this direction; scenario
// events use it to inject incidents.
func (l *Line) Shaper() *Shaper { return l.shaper }

// SetLoss sets the per-packet loss probability. Loss is sampled at send
// time: packets already in flight keep the fate they drew when sent.
func (l *Line) SetLoss(p float64) {
	old := l.lossProb
	l.lossProb = p
	if l.OnLossChange != nil && old != p {
		l.OnLossChange(old, p)
	}
}

// Loss returns the per-packet loss probability.
func (l *Line) Loss() float64 { return l.lossProb }

// SetDown sets the administrative state; a down line drops everything
// subsequently sent on it. Packets whose delivery events were already
// scheduled still arrive: admin state gates admission, not propagation.
func (l *Line) SetDown(down bool) {
	old := l.down
	l.down = down
	if l.OnAdminChange != nil && old != down {
		l.OnAdminChange(down)
	}
}

// Down reports the administrative state.
func (l *Line) Down() bool { return l.down }

// SetCapacity sets the line's capacity in bits per virtual second, or
// disables it with 0. Capacity models serialization delay only: an
// overloaded line builds queueing delay, never drops. It must be set
// from the line's owning engine (or before the simulation starts) and
// is mutually exclusive with the bandwidth/queue model.
func (l *Line) SetCapacity(bps float64) {
	if bps > 0 && l.bandwidthBps > 0 {
		panic(fmt.Sprintf("simnet: line %s->%s models both bandwidth and capacity", l.from.node.name, l.to.node.name))
	}
	l.capBps = bps
}

// Capacity returns the line's capacity in bits per virtual second
// (0 = uncapacitated).
func (l *Line) Capacity() float64 { return l.capBps }

// TakeUtilization returns the line's mean utilization — offered bits
// over capacity×elapsed — since the previous call (or since the start
// of time), and restarts the window at now. It reads the send-side
// byte counter, so it must run on the line's owning engine (Eng).
// Uncapacitated lines and empty windows report 0.
func (l *Line) TakeUtilization(now sim.Time) float64 {
	bytes := l.Stats.Bytes - l.utilMark
	elapsed := now - l.utilSince
	l.utilMark = l.Stats.Bytes
	l.utilSince = now
	if l.capBps <= 0 || elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (l.capBps * elapsed.Seconds())
}

// InFlight returns the number of packets sent but not yet received:
// Tx counts admitted packets, of which Lost were dropped by the loss
// process at send time and Rx have arrived.
func (l *Line) InFlight() uint64 { return l.Stats.Tx - l.Stats.Lost - l.Stats.Rx }

// send moves a packet across this direction of the link. It takes
// ownership of pb: a dropped or lost packet is released here, a
// delivered one is handed to the engine as a closure-free payload event
// and released by the receiving node — so per-packet link traversal
// allocates nothing.
func (l *Line) send(pb *packet.Buf) {
	eng := l.from.node.eng
	if l.down {
		l.Stats.Dropped++
		l.recordDrop(pb.Len())
		pb.Release()
		return
	}
	size := pb.Len()
	now := eng.Now()
	// Admission control runs before any counter moves so that Tx counts
	// only admitted packets and Tx == Lost + Rx + InFlight holds exactly
	// (the chaos conservation invariant depends on it).
	if l.bandwidthBps > 0 && l.queueLimit > 0 && l.busyUntil > now && l.queued >= l.queueLimit {
		l.Stats.Dropped++
		l.recordDrop(size)
		pb.Release()
		return
	}
	l.Stats.Tx++
	l.Stats.Bytes += uint64(size)
	if l.rngLoss.Bernoulli(l.lossProb) {
		l.Stats.Lost++
		pb.Release()
		return
	}
	var txDone sim.Time
	switch {
	case l.bandwidthBps > 0:
		ser := time.Duration(float64(size) * 8 / l.bandwidthBps * float64(time.Second))
		start := now
		if l.busyUntil > start {
			start = l.busyUntil
		}
		l.busyUntil = start + ser
		txDone = l.busyUntil
		l.queued++
	case l.capBps > 0:
		// Capacity mode: serialization delay with an unbounded queue.
		// busyUntil is read and written only here, on the send-side
		// engine, and delay only ever grows — so a cross-partition
		// delivery still leaves at least the propagation floor after
		// txDone and the conservative epoch scheme stays sound.
		ser := time.Duration(float64(size) * 8 / l.capBps * float64(time.Second))
		start := now
		if l.busyUntil > start {
			start = l.busyUntil
		}
		l.busyUntil = start + ser
		txDone = l.busyUntil
	default:
		txDone = now
	}
	prop := l.shaper.Sample(now, l.rngDelay)
	if l.cross {
		l.sendCross(txDone+prop, pb)
		return
	}
	eng.ScheduleArgAt(txDone+prop, l, pb)
}

// sendCross stages a partition-crossing packet: the payload bytes are
// copied into a recycled carrier owned by the sending partition, the
// source-pool buffer is released immediately, and the delivery event is
// routed through the coordinator. PrepareCross later rehydrates the bytes
// into the destination partition's pool — so each pool stays touched by
// exactly one goroutine, and steady state allocates nothing once carrier
// capacity has warmed up.
func (l *Line) sendCross(at sim.Time, pb *packet.Buf) {
	src := l.from.node
	cp := src.net.stages[src.part].get()
	cp.data = append(cp.data[:0], pb.Bytes()...)
	pb.Release()
	sim.CrossScheduleAt(src.eng, l.to.node.eng, at, l, cp)
}

// PrepareCross implements sim.CrossPrepper: it runs single-threaded at the
// barrier (or inline in coupled mode) and converts the staged byte carrier
// into a buffer leased from the destination partition's pool.
func (l *Line) PrepareCross(arg any) any {
	cp := arg.(*crossPkt)
	pb := l.to.node.pool.Get()
	pb.SetBytes(cp.data)
	l.from.node.net.stages[l.from.node.part].put(cp)
	return pb
}

// OnSimEvent implements sim.ArgHandler: it is the arrival half of send,
// fired by the engine at the packet's delivery instant with the in-flight
// buffer as payload. Ownership of the buffer passes to the receiving
// node. On a cross line the event fires on the destination partition's
// engine; Rx and the delivery path touch destination-side state only
// (Tx/Lost/Bytes stay source-side words, so the two sides never race).
func (l *Line) OnSimEvent(arg any) {
	pb := arg.(*packet.Buf)
	if l.bandwidthBps > 0 {
		l.queued--
	}
	l.Stats.Rx++
	l.to.node.deliverFromLink(l.to, pb)
}

// Port is a node's attachment to one end of a link.
type Port struct {
	node *Node
	link *Link
	// out is the direction leaving this port; in the one arriving.
	out *Line
	in  *Line
	idx int // port index on the node, for naming
}

// Node returns the owning node.
func (p *Port) Node() *Node { return p.node }

// Link returns the attached link.
func (p *Port) Link() *Link { return p.link }

// Peer returns the node at the other end of the link.
func (p *Port) Peer() *Node { return p.out.to.node }

// Out returns the outgoing line (for delay/loss configuration).
func (p *Port) Out() *Line { return p.out }

// In returns the incoming line.
func (p *Port) In() *Line { return p.in }

// Name returns "node:idx".
func (p *Port) Name() string { return fmt.Sprintf("%s:%d", p.node.name, p.idx) }

// transmit hands a packet (ownership included) to the outgoing line.
func (p *Port) transmit(pb *packet.Buf) { p.out.send(pb) }

// Link is a full-duplex connection between two nodes, with an independent
// Line per direction (the paper measures one-way behaviour precisely
// because the two directions of a wide-area path differ).
type Link struct {
	name string
	a, b *Port
	ab   *Line // a -> b
	ba   *Line // b -> a
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// PortA and PortB return the two attachment points.
func (l *Link) PortA() *Port { return l.a }

// PortB returns the b-side attachment point.
func (l *Link) PortB() *Port { return l.b }

// LineAB returns the a-to-b direction.
func (l *Link) LineAB() *Line { return l.ab }

// LineBA returns the b-to-a direction.
func (l *Link) LineBA() *Line { return l.ba }

// LineFrom returns the direction leaving the given node.
func (l *Link) LineFrom(n *Node) *Line {
	switch n {
	case l.a.node:
		return l.ab
	case l.b.node:
		return l.ba
	}
	panic("simnet: LineFrom with node not on link")
}
