package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
)

// midflightNet builds a -- b with 10 ms fixed lines and a delivery
// counter on b.
func midflightNet(t *testing.T) (*Network, *Node, *Line, *int) {
	t.Helper()
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	lk := w.Connect(a, b,
		LinkConfig{Delay: FixedDelay(10 * time.Millisecond)},
		LinkConfig{Delay: FixedDelay(10 * time.Millisecond)})
	b.AddAddr(netip.MustParseAddr("2001:db8::b"))
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	delivered := 0
	b.SetHandler(func([]byte) { delivered++ })
	return w, a, lk.LineAB(), &delivered
}

// TestSetDownMidFlight pins the admin-down contract: SetDown gates
// admission, not propagation. A packet whose delivery event was already
// scheduled still arrives after the line goes down; packets offered while
// down are refused at admission (counted Dropped) and never delivered,
// even if the line comes back up before their would-be delivery time.
func TestSetDownMidFlight(t *testing.T) {
	w, a, ln, delivered := midflightNet(t)
	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)

	// t=0: packet admitted; delivery scheduled for t=10ms.
	a.Inject(pkt)
	// t=5ms: line goes down with the packet mid-flight.
	w.Eng.ScheduleAt(5*time.Millisecond, func() { ln.SetDown(true) })
	// t=6ms: a second packet is offered while down — refused at admission
	// (counted Dropped, never Tx'd).
	w.Eng.ScheduleAt(6*time.Millisecond, func() { a.Inject(pkt) })
	// t=7ms: line back up — well before the dropped packet's would-be
	// arrival at 16ms, which must NOT be resurrected.
	w.Eng.ScheduleAt(7*time.Millisecond, func() { ln.SetDown(false) })
	w.Run(100 * time.Millisecond)

	if *delivered != 1 {
		t.Fatalf("delivered %d packets, want 1 (in-flight survives, down-drop stays dropped)", *delivered)
	}
	if ln.Stats.Tx != 1 || ln.Stats.Dropped != 1 || ln.Stats.Rx != 1 {
		t.Fatalf("line stats tx=%d dropped=%d rx=%d, want 1/1/1",
			ln.Stats.Tx, ln.Stats.Dropped, ln.Stats.Rx)
	}
	if ln.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain, want 0", ln.InFlight())
	}
}

// TestSetLossMidFlight pins the loss contract: loss is sampled at send
// time, so packets already in flight keep the fate they drew when sent.
// Raising loss to 1.0 mid-flight cannot claw back an admitted packet, and
// lowering it back to 0 cannot save one offered during the burst.
func TestSetLossMidFlight(t *testing.T) {
	w, a, ln, delivered := midflightNet(t)
	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)

	a.Inject(pkt)
	w.Eng.ScheduleAt(5*time.Millisecond, func() { ln.SetLoss(1.0) })
	w.Eng.ScheduleAt(6*time.Millisecond, func() { a.Inject(pkt) })
	w.Eng.ScheduleAt(7*time.Millisecond, func() { ln.SetLoss(0) })
	w.Run(100 * time.Millisecond)

	if *delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", *delivered)
	}
	if ln.Stats.Tx != 2 || ln.Stats.Lost != 1 || ln.Stats.Rx != 1 {
		t.Fatalf("line stats tx=%d lost=%d rx=%d, want 2/1/1", ln.Stats.Tx, ln.Stats.Lost, ln.Stats.Rx)
	}
}

// TestAdminAndLossChangeHooks verifies the chaos-facing notification
// hooks fire only on real transitions, with the values they claim.
func TestAdminAndLossChangeHooks(t *testing.T) {
	_, _, ln, _ := midflightNet(t)
	var adminEvents []bool
	var lossEvents [][2]float64
	ln.OnAdminChange = func(down bool) { adminEvents = append(adminEvents, down) }
	ln.OnLossChange = func(old, new float64) { lossEvents = append(lossEvents, [2]float64{old, new}) }

	ln.SetDown(true)
	ln.SetDown(true) // no transition: no event
	ln.SetDown(false)
	ln.SetLoss(0.25)
	ln.SetLoss(0.25) // no transition: no event
	ln.SetLoss(0)

	if len(adminEvents) != 2 || adminEvents[0] != true || adminEvents[1] != false {
		t.Fatalf("admin events = %v, want [true false]", adminEvents)
	}
	want := [][2]float64{{0, 0.25}, {0.25, 0}}
	if len(lossEvents) != 2 || lossEvents[0] != want[0] || lossEvents[1] != want[1] {
		t.Fatalf("loss events = %v, want %v", lossEvents, want)
	}
}

// TestInFlightTracksScheduledDeliveries checks the InFlight derivation
// used by the buffer-balance invariant: it must equal the number of
// packets admitted but not yet delivered or lost, at event boundaries.
func TestInFlightTracksScheduledDeliveries(t *testing.T) {
	w, a, ln, _ := midflightNet(t)
	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)

	var during, after uint64
	a.Inject(pkt)
	w.Eng.ScheduleAt(3*time.Millisecond, func() { a.Inject(pkt) })
	w.Eng.ScheduleAt(5*time.Millisecond, func() { during = ln.InFlight() })
	w.Eng.ScheduleAt(50*time.Millisecond, func() { after = ln.InFlight() })
	w.Run(100 * time.Millisecond)

	if during != 2 {
		t.Fatalf("in-flight at 5ms = %d, want 2", during)
	}
	if after != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", after)
	}
}
