package simnet

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tango/internal/packet"
	"tango/internal/sim"
)

// Network owns the nodes and links of one simulated internet, plus the
// packet-buffer pool every in-flight packet lives in. Like the engine,
// the pool is single-goroutine: one Network, one goroutine.
type Network struct {
	Eng     *sim.Engine
	Streams *sim.Streams

	nodes map[string]*Node
	links []*Link
	pool  *packet.BufPool
}

// New creates an empty network over a fresh engine seeded with seed.
func New(seed int64) *Network {
	return &Network{
		Eng:     sim.NewEngine(),
		Streams: sim.NewStreams(seed),
		nodes:   make(map[string]*Node),
		pool:    packet.NewBufPool(),
	}
}

// BufPool returns the network's packet-buffer pool. Components that
// originate packets (the Tango data plane) lease buffers here and hand
// them to InjectBuf; see the ownership rules on packet.Buf.
func (w *Network) BufPool() *packet.BufPool { return w.pool }

// AddNode creates a node with the given wall-clock offset from virtual
// time. Duplicate names panic: scenario construction bugs should be loud.
func (w *Network) AddNode(name string, clockOffset time.Duration) *Node {
	if _, dup := w.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	n := &Node{
		name:  name,
		net:   w,
		clock: sim.NewClock(w.Eng, clockOffset, 0),
		owned: make(map[netip.Addr]int),
	}
	w.nodes[name] = n
	return n
}

// Node returns the named node, or nil.
func (w *Network) Node(name string) *Node { return w.nodes[name] }

// Nodes returns all nodes sorted by name.
func (w *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(w.nodes))
	for _, n := range w.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Links returns all links in creation order.
func (w *Network) Links() []*Link { return w.links }

// LinkConfig parameterizes one direction of a new link.
type LinkConfig struct {
	Delay DelayModel
	// Loss is the per-packet loss probability.
	Loss float64
	// BandwidthBps of 0 disables serialization delay and queueing.
	BandwidthBps float64
	// QueueLimit bounds the packets awaiting serialization (0 =
	// unbounded); only meaningful with BandwidthBps > 0.
	QueueLimit int
}

// Connect joins two nodes with a full-duplex link; cfgAB shapes the a-to-b
// direction and cfgBA the reverse.
func (w *Network) Connect(a, b *Node, cfgAB, cfgBA LinkConfig) *Link {
	if a.net != w || b.net != w {
		panic("simnet: Connect across networks")
	}
	if a == b {
		panic("simnet: self-link")
	}
	name := fmt.Sprintf("%s<->%s", a.name, b.name)
	l := &Link{name: name}
	pa := &Port{node: a, link: l, idx: len(a.ports)}
	pb := &Port{node: b, link: l, idx: len(b.ports)}
	l.a, l.b = pa, pb
	l.ab = newLine(pa, pb, cfgAB, w.Streams.Stream(name+"/ab"))
	l.ba = newLine(pb, pa, cfgBA, w.Streams.Stream(name+"/ba"))
	pa.out, pa.in = l.ab, l.ba
	pb.out, pb.in = l.ba, l.ab
	a.ports = append(a.ports, pa)
	b.ports = append(b.ports, pb)
	w.links = append(w.links, l)
	return l
}

func newLine(from, to *Port, cfg LinkConfig, rng *sim.RNG) *Line {
	dm := cfg.Delay
	if dm == nil {
		dm = FixedDelay(0)
	}
	return &Line{
		from:         from,
		to:           to,
		shaper:       NewShaper(dm),
		lossProb:     cfg.Loss,
		bandwidthBps: cfg.BandwidthBps,
		queueLimit:   cfg.QueueLimit,
		rngDelay:     rng,
		rngLoss:      rng, // same stream: loss and delay draws interleave deterministically
	}
}

// Run advances the simulation to the given virtual time.
func (w *Network) Run(until sim.Time) { w.Eng.Run(until) }

// Now returns the current virtual time.
func (w *Network) Now() sim.Time { return w.Eng.Now() }
