package simnet

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tango/internal/packet"
	"tango/internal/sim"
)

// Network owns the nodes and links of one simulated internet, plus the
// packet-buffer pools every in-flight packet lives in. A classic network
// runs on one engine and one pool (single-goroutine, as before). A
// sharded network (NewSharded) runs each partition of the node set on its
// own engine with its own pool, synchronized by a sim.Coordinator; every
// pool is still touched by exactly one goroutine at a time, because
// cross-partition packets are staged as plain bytes and materialized into
// the destination pool at epoch barriers.
type Network struct {
	// Eng is the engine of a classic network, and partition 0's engine of
	// a sharded one (construction-time conveniences may use it; per-node
	// work must go through Node.Eng).
	Eng     *sim.Engine
	Streams *sim.Streams

	nodes map[string]*Node
	links []*Link

	coord  *sim.Coordinator
	assign func(string) int
	pools  []*packet.BufPool
	stages []*crossStage
}

// New creates an empty network over a fresh engine seeded with seed.
func New(seed int64) *Network {
	return &Network{
		Eng:     sim.NewEngine(),
		Streams: sim.NewStreams(seed),
		nodes:   make(map[string]*Node),
		pools:   []*packet.BufPool{packet.NewBufPool()},
	}
}

// NewSharded creates an empty network whose nodes are partitioned over
// parts engines under one coordinator. assign maps a node name to its
// partition (it must be total over every node subsequently added, and is
// a function of topology and seed only — never of the worker count).
// lookahead is the conservative horizon from the partitioner: no
// cross-partition link or session may interact faster than it.
func NewSharded(seed int64, parts int, lookahead time.Duration, assign func(string) int) *Network {
	if parts < 1 {
		panic("simnet: NewSharded needs at least one partition")
	}
	c := sim.NewCoordinator(parts, lookahead)
	w := &Network{
		Eng:     c.Part(0),
		Streams: sim.NewStreams(seed),
		nodes:   make(map[string]*Node),
		coord:   c,
		assign:  assign,
		pools:   make([]*packet.BufPool, parts),
		stages:  make([]*crossStage, parts),
	}
	for i := 0; i < parts; i++ {
		w.pools[i] = packet.NewBufPool()
		w.stages[i] = &crossStage{}
	}
	return w
}

// Coord returns the coordinator of a sharded network, or nil.
func (w *Network) Coord() *sim.Coordinator { return w.coord }

// Sharded reports whether the network runs partitioned.
func (w *Network) Sharded() bool { return w.coord != nil }

// BufPool returns the network's packet-buffer pool (partition 0's pool on
// a sharded network). Components that originate packets lease buffers
// from their own node's pool (Node.Pool); see the ownership rules on
// packet.Buf.
func (w *Network) BufPool() *packet.BufPool { return w.pools[0] }

// LeasedBufs returns the outstanding buffer leases summed over every
// partition pool — the quantity the chaos buffer-balance invariant
// compares against packets in flight.
func (w *Network) LeasedBufs() uint64 {
	var leased uint64
	for _, p := range w.pools {
		leased += p.Stats.Gets - p.Stats.Puts
	}
	return leased
}

// AddNode creates a node with the given wall-clock offset from virtual
// time. Duplicate names panic: scenario construction bugs should be loud.
func (w *Network) AddNode(name string, clockOffset time.Duration) *Node {
	if _, dup := w.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	part := 0
	eng := w.Eng
	if w.coord != nil {
		part = w.assign(name)
		if part < 0 || part >= w.coord.NumParts() {
			panic(fmt.Sprintf("simnet: node %q assigned to partition %d of %d", name, part, w.coord.NumParts()))
		}
		eng = w.coord.Part(part)
	}
	n := &Node{
		name:  name,
		net:   w,
		eng:   eng,
		part:  part,
		pool:  w.pools[part],
		clock: sim.NewClock(eng, clockOffset, 0),
		owned: make(map[netip.Addr]int),
	}
	w.nodes[name] = n
	return n
}

// Node returns the named node, or nil.
func (w *Network) Node(name string) *Node { return w.nodes[name] }

// Nodes returns all nodes sorted by name.
func (w *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(w.nodes))
	for _, n := range w.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Links returns all links in creation order.
func (w *Network) Links() []*Link { return w.links }

// LinkConfig parameterizes one direction of a new link.
type LinkConfig struct {
	Delay DelayModel
	// Loss is the per-packet loss probability.
	Loss float64
	// BandwidthBps of 0 disables serialization delay and queueing.
	BandwidthBps float64
	// QueueLimit bounds the packets awaiting serialization (0 =
	// unbounded); only meaningful with BandwidthBps > 0.
	QueueLimit int
	// CapacityBps of 0 disables capacity modelling. A positive value
	// adds bits-per-virtual-second serialization with an unbounded
	// queue (delay instead of drops) — the model the TE layer's
	// utilization accounting is built on. Unlike BandwidthBps its
	// state is purely send-side, so it is allowed on cross-partition
	// links. Mutually exclusive with BandwidthBps.
	CapacityBps float64
}

// Connect joins two nodes with a full-duplex link; cfgAB shapes the a-to-b
// direction and cfgBA the reverse.
func (w *Network) Connect(a, b *Node, cfgAB, cfgBA LinkConfig) *Link {
	if a.net != w || b.net != w {
		panic("simnet: Connect across networks")
	}
	if a == b {
		panic("simnet: self-link")
	}
	name := fmt.Sprintf("%s<->%s", a.name, b.name)
	l := &Link{name: name}
	pa := &Port{node: a, link: l, idx: len(a.ports)}
	pb := &Port{node: b, link: l, idx: len(b.ports)}
	l.a, l.b = pa, pb
	l.ab = newLine(pa, pb, cfgAB, w.Streams.Stream(name+"/ab"))
	l.ba = newLine(pb, pa, cfgBA, w.Streams.Stream(name+"/ba"))
	if a.part != b.part {
		w.checkCross(name, cfgAB)
		w.checkCross(name, cfgBA)
		l.ab.cross = true
		l.ba.cross = true
	}
	pa.out, pa.in = l.ab, l.ba
	pb.out, pb.in = l.ba, l.ab
	a.ports = append(a.ports, pa)
	b.ports = append(b.ports, pb)
	w.links = append(w.links, l)
	return l
}

func newLine(from, to *Port, cfg LinkConfig, rng *sim.RNG) *Line {
	dm := cfg.Delay
	if dm == nil {
		dm = FixedDelay(0)
	}
	if cfg.BandwidthBps > 0 && cfg.CapacityBps > 0 {
		panic(fmt.Sprintf("simnet: link %s->%s models both bandwidth and capacity", from.node.name, to.node.name))
	}
	return &Line{
		from:         from,
		to:           to,
		shaper:       NewShaper(dm),
		lossProb:     cfg.Loss,
		bandwidthBps: cfg.BandwidthBps,
		capBps:       cfg.CapacityBps,
		queueLimit:   cfg.QueueLimit,
		rngDelay:     rng,
		rngLoss:      rng, // same stream: loss and delay draws interleave deterministically
	}
}

// checkCross validates one direction of a partition-crossing link: the
// conservative epoch scheme is only sound when every cross-partition
// packet is in flight for at least the lookahead, and the bandwidth
// queue would put mutable state (queued) on both sides of a barrier.
// CapacityBps is fine: its serialization clock is purely send-side and
// only ever adds delay on top of the propagation floor.
func (w *Network) checkCross(name string, cfg LinkConfig) {
	if cfg.BandwidthBps > 0 {
		panic(fmt.Sprintf("simnet: cross-partition link %s must not model bandwidth", name))
	}
	la := w.coord.Lookahead()
	if la <= 0 {
		return
	}
	md, ok := cfg.Delay.(MinDelayer)
	if !ok {
		panic(fmt.Sprintf("simnet: cross-partition link %s needs a delay model with a known minimum", name))
	}
	if md.MinDelay() < la {
		panic(fmt.Sprintf("simnet: cross-partition link %s min delay %v below lookahead %v",
			name, md.MinDelay(), la))
	}
}

// Run advances the simulation to the given virtual time.
func (w *Network) Run(until sim.Time) {
	if w.coord != nil {
		w.coord.Run(until)
		return
	}
	w.Eng.Run(until)
}

// Now returns the current virtual time.
func (w *Network) Now() sim.Time {
	if w.coord != nil {
		return w.coord.Now()
	}
	return w.Eng.Now()
}

// crossStage recycles the byte carriers of cross-partition packets for
// one source partition: get runs on the partition's goroutine during an
// epoch, put runs single-threaded at the barrier when the bytes have been
// copied into the destination pool. Steady state allocates nothing.
type crossStage struct {
	free *crossPkt
}

// crossPkt is one staged cross-partition packet: a copy of the payload
// bytes, detached from any buffer pool.
type crossPkt struct {
	data []byte
	next *crossPkt
}

func (s *crossStage) get() *crossPkt {
	cp := s.free
	if cp == nil {
		return &crossPkt{}
	}
	s.free = cp.next
	cp.next = nil
	return cp
}

func (s *crossStage) put(cp *crossPkt) {
	cp.data = cp.data[:0]
	cp.next = s.free
	s.free = cp
}
