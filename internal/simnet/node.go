package simnet

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/transport"
)

// Handler consumes packets delivered locally to a node (the destination
// address is owned by the node). The data slice is a borrow: it views a
// pooled packet buffer that the node releases as soon as the handler
// returns, so a handler that wants to keep bytes must copy them. It is
// the transport-level delivery callback: Node is the simulated backend
// of transport.Endpoint, and the handler contract is owned there.
type Handler = transport.Handler

// Node implements transport.Endpoint: the dataplane drives a simulated
// node through exactly the surface a real-socket backend provides.
var _ transport.Endpoint = (*Node)(nil)

// NodeStats counts per-node data-plane activity.
type NodeStats struct {
	Sent       uint64 // packets originated here
	Forwarded  uint64 // packets transited
	Delivered  uint64 // packets consumed locally
	NoRoute    uint64 // dropped: no FIB entry
	TTLExpired uint64
	ParseErr   uint64
}

// Node is a host or router. Routers forward by longest-prefix match over
// the FIB; hosts additionally own addresses and consume packets via the
// Handler. One Node typically models one AS point of presence: the paper's
// topology has one border router per transit provider plus the two Tango
// servers.
type Node struct {
	name  string
	net   *Network
	eng   *sim.Engine // the node's partition engine (the network engine when unsharded)
	part  int
	pool  *packet.BufPool // the partition's buffer pool
	clock *sim.Clock

	fib   addr.Trie[*RouteEntry]
	owned map[netip.Addr]int // refcounted: tunnels may share an address
	// fibCache memoizes full-address FIB lookups (nil = cached miss);
	// any FIB mutation flushes it. Real routers keep the same structure
	// as a host/route cache in front of the LPM table, and the simulated
	// traffic concentrates on a handful of destinations, so this turns
	// the per-packet bit-by-bit trie walk into one map probe.
	fibCache map[netip.Addr]*RouteEntry
	ports    []*Port
	handler  Handler

	Stats NodeStats
}

// RouteEntry is a FIB entry: one or more equal-cost output ports. With
// several ports the node hashes the packet's flow (ECMP) to pick one —
// the behaviour Tango's fixed outer UDP tuple is designed to pin down.
type RouteEntry struct {
	Ports []*Port
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Clock returns the node's local wall clock.
func (n *Node) Clock() *sim.Clock { return n.clock }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// Eng returns the engine of the node's partition (the network engine on
// an unsharded network).
func (n *Node) Eng() *sim.Engine { return n.eng }

// Now returns the node's current event time: its partition engine's
// virtual time (transport.Endpoint surface).
func (n *Node) Now() sim.Time { return n.eng.Now() }

// Part returns the node's partition index (0 on an unsharded network).
func (n *Node) Part() int { return n.part }

// Pool returns the buffer pool of the node's partition. Components that
// originate packets from this node must lease from it — never from
// another partition's pool.
func (n *Node) Pool() *packet.BufPool { return n.pool }

// Ports returns the node's attachment points in creation order.
func (n *Node) Ports() []*Port { return n.ports }

// SetHandler installs the local-delivery callback.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// AddAddr marks ip as owned: packets to ip are delivered locally. Claims
// are refcounted — several tunnels may legitimately share one local
// address — so an address stays owned until RemoveAddr balances every
// AddAddr.
func (n *Node) AddAddr(ip netip.Addr) { n.owned[ip]++ }

// RemoveAddr drops one claim on ip, releasing local delivery once no
// claims remain (e.g. a withdrawn tunnel endpoint). Removing an address
// that was never added is a no-op.
func (n *Node) RemoveAddr(ip netip.Addr) {
	if c, ok := n.owned[ip]; ok {
		if c <= 1 {
			delete(n.owned, ip)
		} else {
			n.owned[ip] = c - 1
		}
	}
}

// OwnsAddr reports whether ip is local to this node.
func (n *Node) OwnsAddr(ip netip.Addr) bool { return n.owned[ip] > 0 }

// SetRoute installs (or replaces) a FIB route for p via the given ports.
func (n *Node) SetRoute(p addr.Prefix, ports ...*Port) {
	if len(ports) == 0 {
		panic("simnet: SetRoute with no ports")
	}
	for _, pt := range ports {
		if pt.node != n {
			panic(fmt.Sprintf("simnet: route on %s via foreign port %s", n.name, pt.Name()))
		}
	}
	n.fib.Insert(p, &RouteEntry{Ports: ports})
	clear(n.fibCache)
}

// DelRoute removes the FIB route for p, reporting whether it existed.
func (n *Node) DelRoute(p addr.Prefix) bool {
	clear(n.fibCache)
	return n.fib.Delete(p)
}

// lookupCached resolves dst through the route cache, falling back to the
// LPM trie and memoizing the result (including misses).
func (n *Node) lookupCached(dst netip.Addr) *RouteEntry {
	if ent, ok := n.fibCache[dst]; ok {
		return ent
	}
	ent, _, found := n.fib.Lookup(dst)
	if !found {
		ent = nil
	}
	if n.fibCache == nil {
		n.fibCache = make(map[netip.Addr]*RouteEntry)
	} else if len(n.fibCache) >= maxFIBCacheEntries {
		clear(n.fibCache) // bound memory under adversarial dst churn
	}
	n.fibCache[dst] = ent
	return ent
}

// maxFIBCacheEntries bounds the route cache; simulated traffic uses a
// handful of destinations, so the bound only matters for scans.
const maxFIBCacheEntries = 4096

// LookupRoute returns the FIB entry matching ip.
func (n *Node) LookupRoute(ip netip.Addr) (*RouteEntry, addr.Prefix, bool) {
	return n.fib.Lookup(ip)
}

// FIBLen returns the number of installed routes.
func (n *Node) FIBLen() int { return n.fib.Len() }

// Inject originates a packet from this node: it is routed exactly as if
// it had arrived from a local application. The bytes are copied into a
// pooled buffer (the caller keeps ownership of data); components on the
// fast path serialize directly into a leased buffer and use InjectBuf
// instead, which copies nothing.
func (n *Node) Inject(data []byte) {
	pb := n.pool.Get()
	pb.SetBytes(data)
	n.InjectBuf(pb)
}

// InjectBuf originates a packet held in a pooled buffer, taking ownership
// of pb: the network releases it when the packet is consumed (delivered,
// dropped, or lost), and the caller must not touch pb afterwards.
func (n *Node) InjectBuf(pb *packet.Buf) {
	n.Stats.Sent++
	n.route(nil, pb)
}

// deliverFromLink is called when a packet arrives on one of the node's
// ports after traversing a link. Ownership of pb passes to the node.
func (n *Node) deliverFromLink(from *Port, pb *packet.Buf) {
	n.route(from, pb)
}

// route implements the forwarding pipeline: parse destination, local
// delivery check, TTL, LPM, ECMP port choice, transmit. It owns pb:
// every non-transmit exit releases the buffer (local delivery hands the
// handler a borrowed view first), and transmit passes ownership onward.
func (n *Node) route(from *Port, pb *packet.Buf) {
	data := pb.Bytes()
	dst, hop, ok := parseForForwarding(data)
	if !ok {
		n.Stats.ParseErr++
		pb.Release()
		return
	}
	if n.owned[dst] > 0 {
		n.Stats.Delivered++
		if n.handler != nil {
			n.handler(data)
		}
		pb.Release()
		return
	}
	if from != nil { // transit: decrement hop limit
		if hop <= 1 {
			n.Stats.TTLExpired++
			pb.Release()
			return
		}
		decHopLimit(data)
		n.Stats.Forwarded++
	}
	ent := n.lookupCached(dst)
	if ent == nil {
		n.Stats.NoRoute++
		pb.Release()
		return
	}
	port := ent.Ports[0]
	if len(ent.Ports) > 1 {
		port = ent.Ports[flowHash(data)%uint32(len(ent.Ports))]
	}
	port.transmit(pb)
}

// parseForForwarding extracts the destination address and hop limit from
// the IP header without a full decode.
func parseForForwarding(data []byte) (dst netip.Addr, hopLimit uint8, ok bool) {
	if len(data) < 1 {
		return netip.Addr{}, 0, false
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 40 {
			return netip.Addr{}, 0, false
		}
		var d [16]byte
		copy(d[:], data[24:40])
		return netip.AddrFrom16(d), data[7], true
	case 4:
		if len(data) < 20 {
			return netip.Addr{}, 0, false
		}
		return netip.AddrFrom4([4]byte(data[16:20])), data[8], true
	}
	return netip.Addr{}, 0, false
}

func decHopLimit(data []byte) {
	switch data[0] >> 4 {
	case 6:
		data[7]--
	case 4:
		data[8]--
		// A real router would also update the header checksum
		// incrementally (RFC 1624); do the same so receivers that
		// verify checksums keep working.
		fixIPv4Checksum(data)
	}
}

func fixIPv4Checksum(data []byte) {
	ihl := int(data[0]&0x0f) * 4
	if len(data) < ihl {
		return
	}
	data[10], data[11] = 0, 0
	c := ipv4HeaderChecksum(data[:ihl])
	data[10] = byte(c >> 8)
	data[11] = byte(c)
}

func ipv4HeaderChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// flowHash hashes the packet's 5-tuple-ish bytes (IP src/dst + first 4
// transport bytes, i.e. the ports) the way a core router's ECMP stage
// does. Same flow, same hash, same path — unless intermediate headers
// vary, which is exactly the measurement hazard the paper's outer UDP
// encapsulation eliminates.
func flowHash(data []byte) uint32 {
	var h uint32 = 2166136261
	mix := func(b []byte) {
		for _, v := range b {
			h ^= uint32(v)
			h *= 16777619
		}
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 48 {
			return h
		}
		mix(data[8:40])  // src+dst
		mix(data[40:44]) // transport ports
	case 4:
		if len(data) < 24 {
			return h
		}
		mix(data[12:20])
		mix(data[20:24])
	}
	return h
}

// LocalOut builds a convenience sender bound to this node: it serializes
// the given layers straight into a pooled buffer and injects the result,
// so even the convenience path is allocation-free in steady state.
func (n *Node) LocalOut(layers ...packet.SerializableLayer) error {
	pb := n.pool.Get()
	if err := packet.SerializeLayers(&pb.SerializeBuffer, layers...); err != nil {
		pb.Release()
		return err
	}
	n.InjectBuf(pb)
	return nil
}

// Schedule is a convenience for scheduling node-scoped work.
func (n *Node) Schedule(d time.Duration, fn func()) *sim.Event {
	return n.eng.Schedule(d, fn)
}
