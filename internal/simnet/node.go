package simnet

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/sim"
)

// Handler consumes packets delivered locally to a node (the destination
// address is owned by the node). The data slice is owned by the callee.
type Handler func(from *Port, data []byte)

// NodeStats counts per-node data-plane activity.
type NodeStats struct {
	Sent       uint64 // packets originated here
	Forwarded  uint64 // packets transited
	Delivered  uint64 // packets consumed locally
	NoRoute    uint64 // dropped: no FIB entry
	TTLExpired uint64
	ParseErr   uint64
}

// Node is a host or router. Routers forward by longest-prefix match over
// the FIB; hosts additionally own addresses and consume packets via the
// Handler. One Node typically models one AS point of presence: the paper's
// topology has one border router per transit provider plus the two Tango
// servers.
type Node struct {
	name  string
	net   *Network
	clock *sim.Clock

	fib     addr.Trie[*RouteEntry]
	owned   map[netip.Addr]bool
	ports   []*Port
	handler Handler

	Stats NodeStats
}

// RouteEntry is a FIB entry: one or more equal-cost output ports. With
// several ports the node hashes the packet's flow (ECMP) to pick one —
// the behaviour Tango's fixed outer UDP tuple is designed to pin down.
type RouteEntry struct {
	Ports []*Port
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Clock returns the node's local wall clock.
func (n *Node) Clock() *sim.Clock { return n.clock }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// Ports returns the node's attachment points in creation order.
func (n *Node) Ports() []*Port { return n.ports }

// SetHandler installs the local-delivery callback.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// AddAddr marks ip as owned: packets to ip are delivered locally.
func (n *Node) AddAddr(ip netip.Addr) { n.owned[ip] = true }

// OwnsAddr reports whether ip is local to this node.
func (n *Node) OwnsAddr(ip netip.Addr) bool { return n.owned[ip] }

// SetRoute installs (or replaces) a FIB route for p via the given ports.
func (n *Node) SetRoute(p addr.Prefix, ports ...*Port) {
	if len(ports) == 0 {
		panic("simnet: SetRoute with no ports")
	}
	for _, pt := range ports {
		if pt.node != n {
			panic(fmt.Sprintf("simnet: route on %s via foreign port %s", n.name, pt.Name()))
		}
	}
	n.fib.Insert(p, &RouteEntry{Ports: ports})
}

// DelRoute removes the FIB route for p, reporting whether it existed.
func (n *Node) DelRoute(p addr.Prefix) bool { return n.fib.Delete(p) }

// LookupRoute returns the FIB entry matching ip.
func (n *Node) LookupRoute(ip netip.Addr) (*RouteEntry, addr.Prefix, bool) {
	return n.fib.Lookup(ip)
}

// FIBLen returns the number of installed routes.
func (n *Node) FIBLen() int { return n.fib.Len() }

// Inject originates a packet from this node: it is routed exactly as if
// it had arrived from a local application.
func (n *Node) Inject(data []byte) {
	n.Stats.Sent++
	n.route(nil, data)
}

// deliverFromLink is called when a packet arrives on one of the node's
// ports after traversing a link.
func (n *Node) deliverFromLink(from *Port, data []byte) {
	n.route(from, data)
}

// route implements the forwarding pipeline: parse destination, local
// delivery check, TTL, LPM, ECMP port choice, transmit.
func (n *Node) route(from *Port, data []byte) {
	dst, hop, ok := parseForForwarding(data)
	if !ok {
		n.Stats.ParseErr++
		return
	}
	if n.owned[dst] {
		n.Stats.Delivered++
		if n.handler != nil {
			n.handler(from, data)
		}
		return
	}
	if from != nil { // transit: decrement hop limit
		if hop <= 1 {
			n.Stats.TTLExpired++
			return
		}
		decHopLimit(data)
		n.Stats.Forwarded++
	}
	ent, _, found := n.fib.Lookup(dst)
	if !found {
		n.Stats.NoRoute++
		return
	}
	port := ent.Ports[0]
	if len(ent.Ports) > 1 {
		port = ent.Ports[flowHash(data)%uint32(len(ent.Ports))]
	}
	port.transmit(data)
}

// parseForForwarding extracts the destination address and hop limit from
// the IP header without a full decode.
func parseForForwarding(data []byte) (dst netip.Addr, hopLimit uint8, ok bool) {
	if len(data) < 1 {
		return netip.Addr{}, 0, false
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 40 {
			return netip.Addr{}, 0, false
		}
		var d [16]byte
		copy(d[:], data[24:40])
		return netip.AddrFrom16(d), data[7], true
	case 4:
		if len(data) < 20 {
			return netip.Addr{}, 0, false
		}
		return netip.AddrFrom4([4]byte(data[16:20])), data[8], true
	}
	return netip.Addr{}, 0, false
}

func decHopLimit(data []byte) {
	switch data[0] >> 4 {
	case 6:
		data[7]--
	case 4:
		data[8]--
		// A real router would also update the header checksum
		// incrementally (RFC 1624); do the same so receivers that
		// verify checksums keep working.
		fixIPv4Checksum(data)
	}
}

func fixIPv4Checksum(data []byte) {
	ihl := int(data[0]&0x0f) * 4
	if len(data) < ihl {
		return
	}
	data[10], data[11] = 0, 0
	c := ipv4HeaderChecksum(data[:ihl])
	data[10] = byte(c >> 8)
	data[11] = byte(c)
}

func ipv4HeaderChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// flowHash hashes the packet's 5-tuple-ish bytes (IP src/dst + first 4
// transport bytes, i.e. the ports) the way a core router's ECMP stage
// does. Same flow, same hash, same path — unless intermediate headers
// vary, which is exactly the measurement hazard the paper's outer UDP
// encapsulation eliminates.
func flowHash(data []byte) uint32 {
	var h uint32 = 2166136261
	mix := func(b []byte) {
		for _, v := range b {
			h ^= uint32(v)
			h *= 16777619
		}
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 48 {
			return h
		}
		mix(data[8:40])  // src+dst
		mix(data[40:44]) // transport ports
	case 4:
		if len(data) < 24 {
			return h
		}
		mix(data[12:20])
		mix(data[20:24])
	}
	return h
}

// LocalOut builds a convenience sender bound to this node: it serializes
// the given layers into a fresh buffer and injects the result. Intended
// for tests and simple workloads; the Tango data plane manages its own
// buffers.
func (n *Node) LocalOut(layers ...packet.SerializableLayer) error {
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf, layers...); err != nil {
		return err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	n.Inject(out)
	return nil
}

// Schedule is a convenience for scheduling node-scoped work.
func (n *Node) Schedule(d time.Duration, fn func()) *sim.Event {
	return n.net.Eng.Schedule(d, fn)
}
