package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/obs"
)

// TestLineInstrumentAdminDrop checks a down line accounts every refused
// packet to both the drop counter and the trace journal.
func TestLineInstrumentAdminDrop(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{}, LinkConfig{})
	b.AddAddr(netip.MustParseAddr("2001:db8::b"))
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])

	reg := obs.NewRegistry()
	j := obs.NewJournal(16)
	line := w.Links()[0].LineAB()
	drop := reg.Counter("tango_line_drops_total",
		"Packets refused at line admission.", obs.L("line", "a->b"))
	line.Instrument("a->b", drop, j)

	line.SetDown(true)
	for i := 0; i < 3; i++ {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	}
	w.Run(time.Second)

	if line.Stats.Dropped != 3 {
		t.Fatalf("Stats.Dropped = %d, want 3", line.Stats.Dropped)
	}
	if got := drop.Value(); got != 3 {
		t.Fatalf("drop counter = %d, want 3", got)
	}
	recs := j.Tail(0)
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Kind != obs.KindQueueDrop || r.Target() != "a->b" || r.V == 0 {
			t.Fatalf("drop record wrong: kind %v target %q size %d", r.Kind, r.Target(), r.V)
		}
	}
}

// TestLineInstrumentQueueOverflowDrop checks queue-overflow drops feed
// the same instruments and record the refused packet's size.
func TestLineInstrumentQueueOverflowDrop(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{BandwidthBps: 8000, QueueLimit: 2}, LinkConfig{})
	b.AddAddr(netip.MustParseAddr("2001:db8::b"))
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])

	reg := obs.NewRegistry()
	j := obs.NewJournal(32)
	line := w.Links()[0].LineAB()
	drop := reg.Counter("tango_line_drops_total",
		"Packets refused at line admission.", obs.L("line", "a->b"))
	line.Instrument("a->b", drop, j)

	for i := 0; i < 10; i++ {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	}
	w.Run(10 * time.Second)

	if line.Stats.Dropped == 0 {
		t.Fatal("no queue drops with limit 2")
	}
	if got := drop.Value(); got != line.Stats.Dropped {
		t.Fatalf("drop counter = %d, Stats.Dropped = %d", got, line.Stats.Dropped)
	}
	recs := j.Tail(0)
	if uint64(len(recs)) != line.Stats.Dropped {
		t.Fatalf("journal has %d records, want %d", len(recs), line.Stats.Dropped)
	}
	if recs[0].V != 60 { // 40 IPv6 + 8 UDP + 12 payload
		t.Fatalf("recorded drop size %d, want 60", recs[0].V)
	}
}

// TestLineUninstrumentedNoJournal pins the fast-path contract: without
// Instrument, drops only move Stats.
func TestLineUninstrumentedNoJournal(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{}, LinkConfig{})
	b.AddAddr(netip.MustParseAddr("2001:db8::b"))
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])

	line := w.Links()[0].LineAB()
	line.SetDown(true)
	a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	w.Run(time.Second)
	if line.Stats.Dropped != 1 {
		t.Fatalf("Stats.Dropped = %d, want 1", line.Stats.Dropped)
	}
}
