package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/sim"
)

// shardedPair builds a two-partition network, one node per partition,
// joined by a fixed-delay link at exactly the lookahead.
func shardedPair(t *testing.T, la time.Duration) (*Network, *Node, *Node) {
	t.Helper()
	w := NewSharded(1, 2, la, func(name string) int {
		if name == "b" {
			return 1
		}
		return 0
	})
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	cfg := LinkConfig{Delay: FixedDelay(la)}
	w.Connect(a, b, cfg, cfg)
	return w, a, b
}

func TestShardedDeliveryAcrossPartitions(t *testing.T) {
	const la = 10 * time.Millisecond
	w, a, b := shardedPair(t, la)
	if !w.Sharded() || w.Coord() == nil || w.Coord().NumParts() != 2 {
		t.Fatal("network not sharded over 2 partitions")
	}
	if a.Part() != 0 || b.Part() != 1 {
		t.Fatalf("partition assignment: a=%d b=%d", a.Part(), b.Part())
	}
	if a.Pool() == b.Pool() {
		t.Fatal("partitions must not share a buffer pool")
	}
	if w.BufPool() != a.Pool() {
		t.Fatal("BufPool must return partition 0's pool")
	}
	if a.Eng() == b.Eng() || a.Eng() != w.Eng {
		t.Fatal("per-partition engines wired wrong")
	}
	if a.Network() != w || a.Clock() == nil {
		t.Fatal("node accessors broken")
	}

	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	if _, _, ok := a.LookupRoute(dst); !ok {
		t.Fatal("route not installed")
	}

	var gotAt sim.Time
	deliveries := 0
	b.SetHandler(func(data []byte) {
		gotAt = b.Eng().Now()
		deliveries++
	})

	// Parallel epochs: the delivery must ride the outbox (sendCross →
	// barrier drain → PrepareCross into b's pool) and still land at
	// exactly the propagation delay.
	w.Coord().EnterParallel()
	a.Eng().ScheduleAt(sim.Time(time.Millisecond), func() {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	})
	w.Run(sim.Time(50 * time.Millisecond))
	if deliveries != 1 {
		t.Fatalf("cross-partition packet not delivered (got %d)", deliveries)
	}
	if gotAt != sim.Time(time.Millisecond+la) {
		t.Fatalf("delivered at %v, want 11ms", gotAt)
	}
	if w.Now() != sim.Time(50*time.Millisecond) {
		t.Fatalf("Now()=%v, want 50ms", w.Now())
	}
	// The staged carrier was recycled and both pools balance: nothing
	// leaks across the partition boundary.
	if w.LeasedBufs() != 0 {
		t.Fatalf("leaked %d buffers across the boundary", w.LeasedBufs())
	}

	// A second round reuses the recycled carrier (crossStage.get hits the
	// freelist) and must behave identically.
	a.Eng().ScheduleAt(sim.Time(60*time.Millisecond), func() {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	})
	w.Run(sim.Time(100 * time.Millisecond))
	if deliveries != 2 || w.LeasedBufs() != 0 {
		t.Fatalf("second round: %d deliveries, %d leaked", deliveries, w.LeasedBufs())
	}

	// RemoveAddr drops local delivery once claims balance.
	b.AddAddr(dst)
	b.RemoveAddr(dst)
	if !b.OwnsAddr(dst) {
		t.Fatal("refcounted address released too early")
	}
	b.RemoveAddr(dst)
	if b.OwnsAddr(dst) {
		t.Fatal("address still owned after claims balanced")
	}
	b.RemoveAddr(dst) // never-added / over-removed: no-op
}

func TestShardedCrossLinkValidation(t *testing.T) {
	mustPanic := func(want string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("no panic, want %q", want)
			}
		}()
		fn()
	}

	build := func() (*Network, *Node, *Node) {
		w := NewSharded(1, 2, 5*time.Millisecond, func(name string) int {
			if name == "b" {
				return 1
			}
			return 0
		})
		return w, w.AddNode("a", 0), w.AddNode("b", 0)
	}

	// Cross-partition links must not model bandwidth: queue state would
	// straddle the barrier.
	w, a, b := build()
	mustPanic("must not model bandwidth", func() {
		w.Connect(a, b,
			LinkConfig{Delay: FixedDelay(5 * time.Millisecond), BandwidthBps: 1e6},
			LinkConfig{Delay: FixedDelay(5 * time.Millisecond)})
	})

	// The delay model must declare a floor...
	w, a, b = build()
	mustPanic("needs a delay model with a known minimum", func() {
		w.Connect(a, b,
			LinkConfig{Delay: noFloor{}},
			LinkConfig{Delay: FixedDelay(5 * time.Millisecond)})
	})

	// ...and the floor must clear the lookahead.
	w, a, b = build()
	mustPanic("below lookahead", func() {
		w.Connect(a, b,
			LinkConfig{Delay: FixedDelay(time.Millisecond)},
			LinkConfig{Delay: FixedDelay(5 * time.Millisecond)})
	})

	// Same-partition links stay unconstrained: bandwidth and floorless
	// models are fine inside one engine.
	w = NewSharded(1, 2, 5*time.Millisecond, func(string) int { return 0 })
	a, b = w.AddNode("a", 0), w.AddNode("b", 0)
	lk := w.Connect(a, b, LinkConfig{Delay: noFloor{}, BandwidthBps: 1e6}, LinkConfig{})
	if lk.Name() != "a<->b" || lk.PortB().Node() != b {
		t.Fatalf("link accessors: name=%q", lk.Name())
	}
	ln := lk.LineAB()
	if ln.Eng() != a.Eng() || ln.Shaper() == nil || ln.Loss() != 0 {
		t.Fatal("line accessors broken")
	}

	mustPanic("at least one partition", func() { NewSharded(1, 0, 0, nil) })
}

// noFloor is a delay model without a declared minimum.
type noFloor struct{}

func (noFloor) Sample(sim.Time, *sim.RNG) time.Duration { return 2 * time.Millisecond }

func TestDelayModelFloors(t *testing.T) {
	if FixedDelay(3*time.Millisecond).MinDelay() != 3*time.Millisecond {
		t.Fatal("FixedDelay floor")
	}
	g := GaussianDelay{Floor: 2 * time.Millisecond, Mean: 3 * time.Millisecond, Std: time.Millisecond}
	if g.MinDelay() != 2*time.Millisecond {
		t.Fatal("GaussianDelay floor")
	}
	sp := SpikeDelay{Base: g, Prob: 0.1, Mean: time.Millisecond}
	if sp.MinDelay() != 2*time.Millisecond {
		t.Fatal("SpikeDelay must inherit its base floor")
	}
	if (SpikeDelay{Base: noFloor{}}).MinDelay() != 0 {
		t.Fatal("SpikeDelay over a floorless base must report 0")
	}

	// SwapBase replaces the model permanently and returns the old one.
	sh := NewShaper(FixedDelay(time.Millisecond))
	old := sh.SwapBase(FixedDelay(9 * time.Millisecond))
	if old != FixedDelay(time.Millisecond) || sh.Base() != FixedDelay(9*time.Millisecond) {
		t.Fatal("SwapBase did not exchange the base model")
	}
}
