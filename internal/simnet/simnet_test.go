package simnet

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/packet"
	"tango/internal/sim"
)

// mkPkt builds a minimal IPv6 packet from src to dst with the given hop
// limit and ports.
func mkPkt(t *testing.T, src, dst string, hop uint8, sport, dport uint16) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("test-payload"))
	udp := &packet.UDP{SrcPort: sport, DstPort: dport}
	ip := &packet.IPv6{
		NextHeader: packet.ProtoUDP,
		HopLimit:   hop,
		Src:        netip.MustParseAddr(src),
		Dst:        netip.MustParseAddr(dst),
	}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestDirectDelivery(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{Delay: FixedDelay(10 * time.Millisecond)}, LinkConfig{Delay: FixedDelay(10 * time.Millisecond)})

	dstIP := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dstIP)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])

	var gotAt sim.Time
	var got []byte
	b.SetHandler(func(data []byte) {
		gotAt = w.Now()
		got = data
	})

	a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	w.Run(time.Second)

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if gotAt != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", gotAt)
	}
	if a.Stats.Sent != 1 || b.Stats.Delivered != 1 {
		t.Fatalf("stats: sent=%d delivered=%d", a.Stats.Sent, b.Stats.Delivered)
	}
}

func TestMultiHopForwardingAndTTL(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	r := w.AddNode("r", 0)
	b := w.AddNode("b", 0)
	cfg := LinkConfig{Delay: FixedDelay(5 * time.Millisecond)}
	w.Connect(a, r, cfg, cfg)
	w.Connect(r, b, cfg, cfg)

	dst := addr.MustParsePrefix("2001:db8:b::/48")
	b.AddAddr(netip.MustParseAddr("2001:db8:b::1"))
	a.SetRoute(dst, a.Ports()[0])
	r.SetRoute(dst, r.Ports()[1])

	delivered := 0
	var hopAtDelivery uint8
	b.SetHandler(func(data []byte) {
		delivered++
		hopAtDelivery = data[7]
	})

	a.Inject(mkPkt(t, "2001:db8:a::1", "2001:db8:b::1", 64, 1, 2))
	w.Run(time.Second)
	if delivered != 1 {
		t.Fatal("multi-hop packet not delivered")
	}
	if r.Stats.Forwarded != 1 {
		t.Fatalf("router forwarded = %d", r.Stats.Forwarded)
	}
	if hopAtDelivery != 63 {
		t.Fatalf("hop limit at delivery = %d, want 63", hopAtDelivery)
	}

	// TTL expiry: hop limit 1 dies at the router.
	delivered = 0
	a.Inject(mkPkt(t, "2001:db8:a::1", "2001:db8:b::1", 1, 1, 2))
	w.Run(2 * time.Second)
	if delivered != 0 {
		t.Fatal("expired packet delivered")
	}
	if r.Stats.TTLExpired != 1 {
		t.Fatalf("TTLExpired = %d", r.Stats.TTLExpired)
	}
}

func TestNoRouteDrop(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	a.Inject(mkPkt(t, "2001:db8::1", "2001:db8::2", 64, 1, 2))
	w.Run(time.Second)
	if a.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", a.Stats.NoRoute)
	}
}

func TestParseErrDrop(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	a.Inject([]byte{0xff, 0x00})
	a.Inject(nil)
	w.Run(time.Second)
	if a.Stats.ParseErr != 2 {
		t.Fatalf("ParseErr = %d", a.Stats.ParseErr)
	}
}

func TestLoss(t *testing.T) {
	w := New(7)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b,
		LinkConfig{Delay: FixedDelay(time.Millisecond), Loss: 0.5},
		LinkConfig{Delay: FixedDelay(time.Millisecond)})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	const n = 2000
	for i := 0; i < n; i++ {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	}
	w.Run(time.Second)
	line := w.Links()[0].LineAB()
	if line.Stats.Lost+uint64(got) != n {
		t.Fatalf("lost %d + delivered %d != %d", line.Stats.Lost, got, n)
	}
	frac := float64(got) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("delivery fraction %.3f with 50%% loss", frac)
	}
}

func TestLinkDown(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	l := w.Connect(a, b, LinkConfig{}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	l.LineAB().SetDown(true)
	a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	w.Run(time.Second)
	if got != 0 || l.LineAB().Stats.Dropped != 1 {
		t.Fatalf("down line delivered: got=%d dropped=%d", got, l.LineAB().Stats.Dropped)
	}
	if !l.LineAB().Down() {
		t.Fatal("Down() false")
	}
	l.LineAB().SetDown(false)
	a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	w.Run(2 * time.Second)
	if got != 1 {
		t.Fatal("restored line did not deliver")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	// 8000 bits/s: a 100-byte packet takes 100ms to serialize.
	w.Connect(a, b, LinkConfig{BandwidthBps: 8000}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	var times []sim.Time
	b.SetHandler(func([]byte) { times = append(times, w.Now()) })

	pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2)
	if len(pkt) != 60 { // 40 IPv6 + 8 UDP + 12 payload
		t.Fatalf("test packet length %d", len(pkt))
	}
	// 60 bytes at 8000bps = 60ms each; two back-to-back packets queue.
	a.Inject(pkt)
	a.Inject(append([]byte{}, pkt...))
	w.Run(time.Second)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != 60*time.Millisecond || times[1] != 120*time.Millisecond {
		t.Fatalf("delivery times %v, want [60ms 120ms]", times)
	}
}

func TestQueueOverflow(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	w.Connect(a, b, LinkConfig{BandwidthBps: 8000, QueueLimit: 2}, LinkConfig{})
	dst := netip.MustParseAddr("2001:db8::b")
	b.AddAddr(dst)
	a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	for i := 0; i < 10; i++ {
		a.Inject(mkPkt(t, "2001:db8::a", "2001:db8::b", 64, 1, 2))
	}
	w.Run(10 * time.Second)
	line := w.Links()[0].LineAB()
	if line.Stats.Dropped == 0 {
		t.Fatal("no queue drops with limit 2")
	}
	if got+int(line.Stats.Dropped) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", got, line.Stats.Dropped)
	}
}

func TestECMPPinsFlows(t *testing.T) {
	// a has two equal-cost ports toward b's prefix (via r1 and r2).
	w := New(3)
	a := w.AddNode("a", 0)
	r1 := w.AddNode("r1", 0)
	r2 := w.AddNode("r2", 0)
	b := w.AddNode("b", 0)
	cfg := LinkConfig{Delay: FixedDelay(time.Millisecond)}
	w.Connect(a, r1, cfg, cfg)
	w.Connect(a, r2, cfg, cfg)
	w.Connect(r1, b, cfg, cfg)
	w.Connect(r2, b, cfg, cfg)

	dst := addr.MustParsePrefix("2001:db8:b::/48")
	b.AddAddr(netip.MustParseAddr("2001:db8:b::1"))
	a.SetRoute(dst, a.Ports()[0], a.Ports()[1])
	r1.SetRoute(dst, r1.Ports()[1])
	r2.SetRoute(dst, r2.Ports()[1])
	got := 0
	b.SetHandler(func([]byte) { got++ })

	// Same flow always takes the same router.
	for i := 0; i < 50; i++ {
		a.Inject(mkPkt(t, "2001:db8:a::1", "2001:db8:b::1", 64, 5000, 6000))
	}
	w.Run(time.Second)
	if got != 50 {
		t.Fatalf("delivered %d/50", got)
	}
	f1, f2 := r1.Stats.Forwarded, r2.Stats.Forwarded
	if !(f1 == 50 && f2 == 0) && !(f1 == 0 && f2 == 50) {
		t.Fatalf("single flow split across ECMP: r1=%d r2=%d", f1, f2)
	}

	// Varying source ports spread across both routers.
	for i := 0; i < 200; i++ {
		a.Inject(mkPkt(t, "2001:db8:a::1", "2001:db8:b::1", 64, uint16(1000+i), 6000))
	}
	w.Run(2 * time.Second)
	f1, f2 = r1.Stats.Forwarded, r2.Stats.Forwarded
	if f1 == 0 || f2 == 0 {
		t.Fatalf("ECMP did not spread flows: r1=%d r2=%d", f1, f2)
	}
}

func TestGaussianDelayStats(t *testing.T) {
	rng := sim.NewStreams(1).Stream("g")
	d := GaussianDelay{Floor: 28 * time.Millisecond, Mean: 30 * time.Millisecond, Std: time.Millisecond}
	var sum time.Duration
	minSeen := time.Hour
	for i := 0; i < 10000; i++ {
		v := d.Sample(0, rng)
		if v < minSeen {
			minSeen = v
		}
		sum += v
	}
	if minSeen < 28*time.Millisecond {
		t.Fatalf("sample below floor: %v", minSeen)
	}
	mean := sum / 10000
	if mean < 29*time.Millisecond || mean > 31*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestSpikeDelay(t *testing.T) {
	rng := sim.NewStreams(2).Stream("s")
	base := FixedDelay(28 * time.Millisecond)
	d := SpikeDelay{Base: base, Prob: 0.1, Mean: 20 * time.Millisecond, Cap: 50 * time.Millisecond}
	spikes := 0
	maxSeen := time.Duration(0)
	for i := 0; i < 10000; i++ {
		v := d.Sample(0, rng)
		if v > 28*time.Millisecond {
			spikes++
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if spikes < 800 || spikes > 1200 {
		t.Fatalf("spike count %d for p=0.1", spikes)
	}
	if maxSeen > 78*time.Millisecond {
		t.Fatalf("spike exceeded cap: %v", maxSeen)
	}
	if maxSeen < 40*time.Millisecond {
		t.Fatalf("max spike only %v; tail too light", maxSeen)
	}
}

func TestShaper(t *testing.T) {
	rng := sim.NewStreams(1).Stream("sh")
	s := NewShaper(FixedDelay(10 * time.Millisecond))
	if s.Sample(0, rng) != 10*time.Millisecond {
		t.Fatal("pass-through broken")
	}
	s.SetOffset(5 * time.Millisecond)
	if s.Sample(0, rng) != 15*time.Millisecond {
		t.Fatal("offset not applied")
	}
	if s.Offset() != 5*time.Millisecond {
		t.Fatal("Offset getter")
	}
	s.SetOverlay(FixedDelay(40 * time.Millisecond))
	if s.Sample(0, rng) != 45*time.Millisecond {
		t.Fatal("overlay + offset not applied")
	}
	s.SetOverlay(nil)
	s.SetOffset(0)
	if s.Sample(0, rng) != 10*time.Millisecond {
		t.Fatal("restore broken")
	}
	if _, ok := s.Base().(FixedDelay); !ok {
		t.Fatal("Base lost")
	}
}

func TestIPv4ForwardingChecksumRepair(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	r := w.AddNode("r", 0)
	b := w.AddNode("b", 0)
	cfg := LinkConfig{Delay: FixedDelay(time.Millisecond)}
	w.Connect(a, r, cfg, cfg)
	w.Connect(r, b, cfg, cfg)

	dst := addr.MustParsePrefix("10.2.0.0/16")
	b.AddAddr(netip.MustParseAddr("10.2.0.1"))
	a.SetRoute(dst, a.Ports()[0])
	r.SetRoute(dst, r.Ports()[1])

	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("v4"))
	ip := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.1"), Dst: netip.MustParseAddr("10.2.0.1")}
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len())
	copy(raw, buf.Bytes())

	var delivered []byte
	b.SetHandler(func(data []byte) { delivered = append([]byte(nil), data...) })
	a.Inject(raw)
	w.Run(time.Second)
	if delivered == nil {
		t.Fatal("v4 packet not delivered")
	}
	var dec packet.IPv4
	if err := dec.DecodeFromBytes(delivered); err != nil {
		t.Fatalf("checksum not repaired after TTL decrement: %v", err)
	}
	if dec.TTL != 63 {
		t.Fatalf("TTL = %d", dec.TTL)
	}
}

func TestNodesSortedAndLookups(t *testing.T) {
	w := New(1)
	w.AddNode("zeta", 0)
	w.AddNode("alpha", 0)
	ns := w.Nodes()
	if len(ns) != 2 || ns[0].Name() != "alpha" || ns[1].Name() != "zeta" {
		t.Fatalf("Nodes() = %v", ns)
	}
	if w.Node("alpha") == nil || w.Node("missing") != nil {
		t.Fatal("Node lookup broken")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	w := New(1)
	w.AddNode("a", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	w.AddNode("a", 0)
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, sim.Time) {
		w := New(99)
		a := w.AddNode("a", 0)
		b := w.AddNode("b", 0)
		w.Connect(a, b,
			LinkConfig{Delay: GaussianDelay{Floor: 10 * time.Millisecond, Mean: 12 * time.Millisecond, Std: 2 * time.Millisecond}, Loss: 0.1},
			LinkConfig{})
		dst := netip.MustParseAddr("2001:db8::b")
		b.AddAddr(dst)
		a.SetRoute(addr.MustParsePrefix("2001:db8::/32"), a.Ports()[0])
		var lastAt sim.Time
		b.SetHandler(func([]byte) { lastAt = w.Now() })
		for i := 0; i < 500; i++ {
			pkt := mkPkt(t, "2001:db8::a", "2001:db8::b", 64, uint16(i), 2)
			w.Eng.Schedule(time.Duration(i)*time.Millisecond, func() { a.Inject(pkt) })
		}
		w.Run(10 * time.Second)
		return b.Stats.Delivered, lastAt
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Fatalf("replay diverged: (%d,%v) vs (%d,%v)", d1, t1, d2, t2)
	}
	if d1 == 0 || d1 == 500 {
		t.Fatalf("loss process degenerate: delivered %d/500", d1)
	}
}

func TestLineFromAndPortAccessors(t *testing.T) {
	w := New(1)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	l := w.Connect(a, b, LinkConfig{}, LinkConfig{})
	if l.LineFrom(a) != l.LineAB() || l.LineFrom(b) != l.LineBA() {
		t.Fatal("LineFrom wrong")
	}
	pa := l.PortA()
	if pa.Node() != a || pa.Peer() != b || pa.Link() != l {
		t.Fatal("port accessors wrong")
	}
	if pa.Out() != l.LineAB() || pa.In() != l.LineBA() {
		t.Fatal("port line accessors wrong")
	}
	if pa.Name() != "a:0" {
		t.Fatalf("port name %q", pa.Name())
	}
	c := w.AddNode("c", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("LineFrom foreign node did not panic")
		}
	}()
	l.LineFrom(c)
}
