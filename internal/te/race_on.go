//go:build race

package te

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive tests relax their bounds under it.
const raceEnabled = true
