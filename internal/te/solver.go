package te

import "fmt"

const (
	// DefaultQuanta is the demand split resolution: weights come out as
	// multiples of 1/8, fine enough to balance a 16-path set without
	// blowing up the move space.
	DefaultQuanta = 8
	// DefaultRestarts is the number of perturbed restarts after the
	// first descent.
	DefaultRestarts = 3
	// eps separates "strictly better" from float noise on utilizations,
	// which are O(1) values.
	eps = 1e-9
)

// Solver runs Link-Guided Local Search over a Problem. All working
// memory is allocated by NewSolver; Solve itself allocates nothing, so
// re-solving after a demand or capacity refresh is garbage-free.
//
// The search is deterministic: greedy construction in demand order,
// first-improvement descent scanning quanta in index order with the
// most-utilized link as the guide, and restart perturbations drawn from
// a private splitmix64 stream seeded by the constructor. Equal inputs
// and seed reproduce the exact placement.
type Solver struct {
	prob   *Problem
	state  *State
	quanta int
	// Restarts bounds the perturbed restarts per Solve (negative means
	// DefaultRestarts; 0 disables restarts).
	Restarts int

	seed uint64
	rng  uint64

	assign  []uint16 // quantum index -> path index within its demand
	best    []uint16
	bestMax float64
	rate    []float64 // per-demand quantum rate in bps
	moveCap int
}

// NewSolver validates the problem and allocates all solver state. It
// panics on malformed input (a demand without paths, or a path index
// out of range): placement problems are built by construction code, so
// bugs should be loud.
func NewSolver(p *Problem, seed int64) *Solver {
	q := p.quanta()
	for di, d := range p.Demands {
		if len(d.Paths) == 0 {
			panic(fmt.Sprintf("te: demand %d (%s) has no candidate paths", di, d.Name))
		}
		if len(d.Paths) > 1<<16 {
			panic(fmt.Sprintf("te: demand %d (%s) has too many paths", di, d.Name))
		}
		for _, path := range d.Paths {
			for _, li := range path {
				if li < 0 || li >= len(p.Links) {
					panic(fmt.Sprintf("te: demand %d (%s) references link %d of %d", di, d.Name, li, len(p.Links)))
				}
			}
		}
	}
	n := len(p.Demands) * q
	s := &Solver{
		prob:     p,
		state:    NewState(p.Links),
		quanta:   q,
		Restarts: DefaultRestarts,
		seed:     uint64(seed),
		assign:   make([]uint16, n),
		best:     make([]uint16, n),
		rate:     make([]float64, len(p.Demands)),
		moveCap:  64*n + 1024,
	}
	for di, d := range p.Demands {
		s.rate[di] = d.RateBps / float64(q)
	}
	return s
}

// next advances the private splitmix64 stream.
func (s *Solver) next() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Solve runs the full search from scratch and returns the best maximum
// utilization found. The final assignment (read through Counts or
// Weights) is the one achieving that value. Demand rates and link
// capacities are re-read from the problem on every call, so a caller
// (e.g. control.TEPolicy's Refresh hook) may mutate them in place
// between solves. Zero allocations.
func (s *Solver) Solve() float64 {
	s.rng = s.seed
	for di := range s.prob.Demands {
		s.rate[di] = s.prob.Demands[di].RateBps / float64(s.quanta)
	}
	for i := range s.prob.Links {
		if c := s.prob.Links[i].CapacityBps; c > 0 {
			s.state.invCap[i] = 1 / c
		} else {
			s.state.invCap[i] = 0
		}
	}
	s.state.Reset()
	s.greedyInit()
	s.descend()
	s.bestMax, _ = s.state.MaxUtil()
	copy(s.best, s.assign)

	restarts := s.Restarts
	if restarts < 0 {
		restarts = DefaultRestarts
	}
	for r := 0; r < restarts; r++ {
		s.kick()
		s.descend()
		if m, _ := s.state.MaxUtil(); m < s.bestMax-eps {
			s.bestMax = m
			copy(s.best, s.assign)
		}
	}

	// Leave the state holding the best placement.
	s.state.Reset()
	copy(s.assign, s.best)
	for q, pi := range s.assign {
		d := q / s.quanta
		s.state.Add(s.prob.Demands[d].Paths[pi], s.rate[d])
	}
	return s.bestMax
}

// greedyInit places quanta one at a time, each on the candidate path
// whose worst link stays lowest after the placement — a capacity-aware
// generalization of shortest-path herding. Ties break to the lowest
// path index, so construction is deterministic.
func (s *Solver) greedyInit() {
	st := s.state
	for q := range s.assign {
		d := q / s.quanta
		dem := &s.prob.Demands[d]
		bps := s.rate[d]
		bestPath, bestCost := 0, 0.0
		for pi, path := range dem.Paths {
			cost := 0.0
			for _, li := range path {
				if u := (st.load[li] + bps) * st.invCap[li]; u > cost {
					cost = u
				}
			}
			if pi == 0 || cost < bestCost-eps {
				bestPath, bestCost = pi, cost
			}
		}
		s.assign[q] = uint16(bestPath)
		st.Add(dem.Paths[bestPath], bps)
	}
}

// descend runs first-improvement local search to a local optimum: find
// the most utilized link, scan quanta routed over it, and accept the
// first move that strictly unloads it without pushing any gaining link
// to the current ceiling. Each accepted move drains load from the
// maximal plateau without admitting new members, so the descent
// terminates; moveCap bounds it defensively. The scan resumes where the
// last accepted move left off (round-robin) so one pass over the quanta
// is amortized across many accepted moves; a full fruitless cycle still
// proves the local optimum.
func (s *Solver) descend() {
	n := len(s.assign)
	if n == 0 {
		return
	}
	moves, start := 0, 0
	for moves < s.moveCap {
		oldMax, ml := s.state.MaxUtil()
		if oldMax <= eps {
			return
		}
		improved := false
		for k := 0; k < n; k++ {
			q := start + k
			if q >= n {
				q -= n
			}
			d := q / s.quanta
			dem := &s.prob.Demands[d]
			cur := dem.Paths[s.assign[q]]
			if !pathHas(cur, ml) {
				continue
			}
			bps := s.rate[d]
			for alt, altPath := range dem.Paths {
				if alt == int(s.assign[q]) {
					continue
				}
				if s.admissible(cur, altPath, bps, oldMax, ml) {
					s.state.ApplyMove(cur, altPath, bps)
					s.assign[q] = uint16(alt)
					improved = true
					moves++
					start = q + 1
					if start == n {
						start = 0
					}
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			return
		}
	}
}

// admissible reports whether moving bps from one path to the other is
// an accepted step: the guided link ml must strictly lose load (it sits
// on from and not on to), and every link that gains load must end
// strictly below the current maximum. Links that only lose load need no
// check — they cannot raise the ceiling.
func (s *Solver) admissible(from, to []int, bps, oldMax float64, ml int) bool {
	if pathHas(to, ml) {
		return false
	}
	st := s.state
	for _, li := range to {
		if pathHas(from, li) {
			continue // net unchanged
		}
		if u := (st.load[li] + bps) * st.invCap[li]; u >= oldMax-eps {
			return false
		}
	}
	return true
}

// kick perturbs the current placement before a restart: a seeded
// fraction of quanta jump to a random candidate path. The descent that
// follows repairs the damage from a different basin.
func (s *Solver) kick() {
	n := 1 + len(s.assign)/16
	for i := 0; i < n; i++ {
		q := int(s.next() % uint64(len(s.assign)))
		d := q / s.quanta
		dem := &s.prob.Demands[d]
		pi := int(s.next() % uint64(len(dem.Paths)))
		if pi == int(s.assign[q]) {
			continue
		}
		s.state.ApplyMove(dem.Paths[s.assign[q]], dem.Paths[pi], s.rate[d])
		s.assign[q] = uint16(pi)
	}
}

func pathHas(p []int, li int) bool {
	for _, x := range p {
		if x == li {
			return true
		}
	}
	return false
}

// MaxUtil returns the maximum utilization of the current placement.
func (s *Solver) MaxUtil() float64 {
	m, _ := s.state.MaxUtil()
	return m
}

// State exposes the solver's utilization state (read-only use).
func (s *Solver) State() *State { return s.state }

// Counts writes the number of quanta demand d currently places on each
// of its candidate paths into out, which must have room for the
// demand's path count, and returns it. Zero allocations when out has
// capacity.
func (s *Solver) Counts(d int, out []int) []int {
	np := len(s.prob.Demands[d].Paths)
	out = out[:0]
	for i := 0; i < np; i++ {
		out = append(out, 0)
	}
	for q := d * s.quanta; q < (d+1)*s.quanta; q++ {
		out[s.assign[q]]++
	}
	return out
}

// Weights returns demand d's placement as fractions per candidate path
// (they sum to 1). Convenience form of Counts; allocates its result.
func (s *Solver) Weights(d int) []float64 {
	counts := s.Counts(d, make([]int, 0, len(s.prob.Demands[d].Paths)))
	w := make([]float64, len(counts))
	for i, c := range counts {
		w[i] = float64(c) / float64(s.quanta)
	}
	return w
}
