package te

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// twoPathProblem: one demand of 100 bps over two disjoint unit links of
// capacity 100 each. The optimum is an even split at 0.5 utilization.
func twoPathProblem() *Problem {
	return &Problem{
		Links: []Link{{Name: "a", CapacityBps: 100}, {Name: "b", CapacityBps: 100}},
		Demands: []Demand{
			{Name: "d", RateBps: 100, Paths: [][]int{{0}, {1}}},
		},
	}
}

func TestSolverFindsEvenSplit(t *testing.T) {
	s := NewSolver(twoPathProblem(), 1)
	got := s.Solve()
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Solve() = %v, want 0.5", got)
	}
	w := s.Weights(0)
	if math.Abs(w[0]-0.5) > 1e-9 || math.Abs(w[1]-0.5) > 1e-9 {
		t.Fatalf("Weights(0) = %v, want [0.5 0.5]", w)
	}
}

// TestSolverBeatsSinglePathHerding builds the herding instance the TE
// layer exists to fix: every demand's first path crosses one shared
// link, with a private alternative each. Any single-best-path policy
// (all demands on path 0) overloads the shared link 4x; the solver must
// spread onto the alternatives.
func TestSolverBeatsSinglePathHerding(t *testing.T) {
	const n = 8
	links := []Link{{Name: "shared", CapacityBps: 100}}
	var demands []Demand
	for i := 0; i < n; i++ {
		links = append(links, Link{Name: "alt", CapacityBps: 100})
		demands = append(demands, Demand{
			RateBps: 50,
			Paths:   [][]int{{0}, {len(links) - 1}},
		})
	}
	s := NewSolver(&Problem{Links: links, Demands: demands}, 7)
	got := s.Solve()
	herded := float64(n) * 50 / 100 // everyone on the shared link
	if got >= 1 {
		t.Fatalf("Solve() = %v, want < 1 (herded baseline %v)", got, herded)
	}
	if got > 0.5+1e-9 {
		t.Fatalf("Solve() = %v, want <= 0.5 (each demand fits on its alternative)", got)
	}
}

func TestSolverDeterministicPerSeed(t *testing.T) {
	build := func() *Problem {
		links := make([]Link, 24)
		for i := range links {
			links[i] = Link{CapacityBps: float64(100 + 7*(i%5))}
		}
		var demands []Demand
		for d := 0; d < 30; d++ {
			paths := [][]int{
				{d % 24, (d + 5) % 24},
				{(d + 11) % 24, (d + 17) % 24},
				{(d + 3) % 24},
			}
			demands = append(demands, Demand{RateBps: float64(20 + d%9), Paths: paths})
		}
		return &Problem{Links: links, Demands: demands}
	}
	a, b := NewSolver(build(), 99), NewSolver(build(), 99)
	ma, mb := a.Solve(), b.Solve()
	if ma != mb {
		t.Fatalf("same seed, different max util: %v vs %v", ma, mb)
	}
	for d := 0; d < 30; d++ {
		if !reflect.DeepEqual(a.Weights(d), b.Weights(d)) {
			t.Fatalf("same seed, different weights for demand %d: %v vs %v", d, a.Weights(d), b.Weights(d))
		}
	}
	// Re-solving the same instance is a pure function too.
	if again := a.Solve(); again != ma {
		t.Fatalf("re-Solve drifted: %v vs %v", again, ma)
	}
}

func TestSolverCountsSumToQuanta(t *testing.T) {
	p := twoPathProblem()
	p.Quanta = 12
	s := NewSolver(p, 3)
	s.Solve()
	counts := s.Counts(0, make([]int, 0, 2))
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 12 {
		t.Fatalf("counts %v sum to %d, want 12", counts, sum)
	}
}

func TestNewSolverRejectsMalformedProblems(t *testing.T) {
	for name, p := range map[string]*Problem{
		"no paths":          {Links: []Link{{CapacityBps: 1}}, Demands: []Demand{{RateBps: 1}}},
		"link out of range": {Links: []Link{{CapacityBps: 1}}, Demands: []Demand{{RateBps: 1, Paths: [][]int{{1}}}}},
		"negative link":     {Links: []Link{{CapacityBps: 1}}, Demands: []Demand{{RateBps: 1, Paths: [][]int{{-1}}}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewSolver did not panic", name)
				}
			}()
			NewSolver(p, 1)
		}()
	}
}

// e15ScaleProblem mirrors the E15 mesh's shape: 64 sites with 16
// provider trunks each (an up and a down link per trunk), demands on
// ring and chord pairs in three flow classes, every demand offered all
// 16 two-link provider paths.
func e15ScaleProblem() *Problem {
	const sites, providers = 64, 16
	links := make([]Link, 0, sites*providers*2)
	for s := 0; s < sites; s++ {
		for p := 0; p < providers; p++ {
			cap := 4e6 * float64(1+p%4)
			links = append(links, Link{CapacityBps: cap}, Link{CapacityBps: cap})
		}
	}
	up := func(s, p int) int { return (s*providers + p) * 2 }
	down := func(s, p int) int { return (s*providers+p)*2 + 1 }
	var demands []Demand
	for s := 0; s < sites; s++ {
		for _, off := range []int{1, 3, 9, 19} {
			dst := (s + off) % sites
			for class := 0; class < 3; class++ {
				paths := make([][]int, providers)
				for p := 0; p < providers; p++ {
					paths[p] = []int{up(s, p), down(dst, p)}
				}
				demands = append(demands, Demand{
					RateBps: float64(64_000 * (1 + class*3 + (s % 5))),
					Paths:   paths,
				})
			}
		}
	}
	return &Problem{Links: links, Demands: demands}
}

// TestSolverE15ScaleConvergesFast pins the acceptance criterion that a
// full solve at E15 scale stays sub-second. The bound is relaxed under
// the race detector, whose instrumentation slows pure compute several
// fold.
func TestSolverE15ScaleConvergesFast(t *testing.T) {
	s := NewSolver(e15ScaleProblem(), 15)
	start := time.Now()
	got := s.Solve()
	elapsed := time.Since(start)
	limit := time.Second
	if raceEnabled {
		limit = 8 * time.Second
	}
	if elapsed > limit {
		t.Fatalf("Solve took %v, want < %v", elapsed, limit)
	}
	if got <= 0 || got >= 1 {
		t.Fatalf("Solve() = %v, want a feasible placement in (0, 1)", got)
	}
	t.Logf("E15-scale solve: %d demands, max util %.4f in %v", 64*4*3, got, elapsed)
}
